// Audit: the formula-dependency visualisation use case (Sec. I). A financial
// model is written to an .xlsx file, loaded back (exercising the xlsx
// substrate, including shared formulas), and every cell feeding a reported
// total is traced through the compressed graph — the "where did this number
// come from" audit spreadsheet users run to find sources of errors.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"taco"
)

func main() {
	// A small financial model: monthly revenue and cost, margin per month,
	// cumulative profit, and a year total referencing a tax-rate cell.
	s := taco.NewSheet("model")
	for m := 1; m <= 12; m++ {
		s.SetValue(taco.MustCell(fmt.Sprintf("A%d", m)), 1000+float64(m)*50) // revenue
		s.SetValue(taco.MustCell(fmt.Sprintf("B%d", m)), 700+float64(m)*30)  // cost
	}
	s.SetValue(taco.MustCell("H1"), 0.21) // tax rate
	s.SetFormula(taco.MustCell("C1"), "A1-B1")
	s.FillDown(taco.MustCell("C1"), 12) // margin, derived column (in-row RR)
	s.SetFormula(taco.MustCell("D1"), "SUM($C$1:C1)")
	s.FillDown(taco.MustCell("D1"), 12) // cumulative profit (FR)
	s.SetFormula(taco.MustCell("E1"), "C1*(1-$H$1)")
	s.FillDown(taco.MustCell("E1"), 12) // after-tax margin (RR + FF)
	s.SetFormula(taco.MustCell("F1"), "SUM(E1:E12)")

	// Round-trip through the xlsx substrate, as a real audit tool would.
	dir, err := os.MkdirTemp("", "taco-audit")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.xlsx")
	if err := taco.WriteXLSX(path, []*taco.Sheet{s}, true); err != nil {
		panic(err)
	}
	sheets, err := taco.ReadXLSX(path)
	if err != nil {
		panic(err)
	}
	model := sheets[0]
	g, err := taco.SheetGraph(model, taco.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded %q: %d cells, %d dependencies -> %d compressed edges\n",
		model.Name, len(model.Cells), g.NumDependencies(), g.NumEdges())

	// Trace the reported total back to its sources.
	fmt.Println("\nprecedents of F1 (everything the year total depends on):")
	precs := g.FindPrecedents(taco.MustRange("F1"))
	fmt.Printf("  %d cells across %d ranges:\n", taco.CountCells(precs), len(precs))
	for _, r := range precs {
		fmt.Printf("  %s\n", r)
	}

	// And check the blast radius of the tax-rate assumption.
	deps := g.FindDependents(taco.MustRange("H1"))
	fmt.Printf("\ndependents of the tax rate H1: %d cells (%v)\n",
		taco.CountCells(deps), deps)
}
