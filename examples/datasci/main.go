// Datasci: the derived-column workload from Sec. VI-B (feature engineering
// in spreadsheets — normalised copies, extracted substrings, rolling
// aggregates). It contrasts the TACO-InRow variant, which only captures
// derived columns, with TACO-Full, which also compresses the rolling windows
// and the fixed normalisation constants — reproducing the Table II gap
// between the two variants on a single sheet.
package main

import (
	"fmt"
	"math/rand"

	"taco"
	"taco/internal/workload"
)

func main() {
	const rows = 2000
	s := workload.NewSheet("features")
	rng := rand.New(rand.NewSource(7))
	s.AddDataColumn(1, rows, rng)                     // A: raw metric
	s.SetValue(taco.MustCell("Z1"), 0.5)              // Z1: scaling constant
	s.AddDerivedColumn(2, 1, rows)                    // B: scaled copy (in-row RR)
	s.AddFixedLookup(3, 1, taco.MustCell("Z1"), rows) // C: normalised by Z1 (FF)
	s.AddSlidingWindow(4, 1, 7, rows)                 // D: 7-row rolling sum (RR)
	s.AddRunningTotal(5, 1, rows)                     // E: cumulative feature (FR)

	deps, err := taco.SheetDependencies(s)
	if err != nil {
		panic(err)
	}
	inRow := taco.BuildGraph(deps, taco.InRowOptions())
	full := taco.BuildGraph(deps, taco.DefaultOptions())

	fmt.Printf("dependencies: %d\n", len(deps))
	fmt.Printf("TACO-InRow : %5d edges (captures only the derived column B)\n", inRow.NumEdges())
	fmt.Printf("TACO-Full  : %5d edges (also compresses C, D, E)\n", full.NumEdges())

	fmt.Println("\nTACO-Full edges:")
	full.Edges(func(e *taco.Edge) bool {
		fmt.Printf("  %s\n", e)
		return true
	})

	// The compressed graph answers lineage queries instantly: which features
	// are affected if raw row 1000 is corrected?
	hit := taco.MustRange("A1000")
	fmt.Printf("\nfeatures affected by editing %s: %d cells in %d ranges\n",
		hit, taco.CountCells(full.FindDependents(hit)), len(full.FindDependents(hit)))
}
