// Recalc: the asynchronous recalculation scenario that motivates the paper
// (Sec. I). A large sheet with deep dependency chains is loaded into the
// spreadsheet engine twice — once with TACO, once with the uncompressed
// NoComp graph — and the same cell edit is applied to both. The time to
// identify the dirty set is the time until the UI returns control to the
// user; TACO makes it orders of magnitude smaller on pattern-heavy sheets.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"taco"
	"taco/internal/engine"
	"taco/internal/nocomp"
	"taco/internal/workload"
)

func main() {
	// A sheet with a long chain and several derived columns: worst case for
	// per-edge traversal, best case for RR-Chain compression.
	const rows = 4000
	s := workload.NewSheet("big")
	rng := rand.New(rand.NewSource(1))
	s.AddDataColumn(1, rows, rng)
	s.AddChain(2, 1, rows)         // B: running balance (RR-Chain)
	s.AddDerivedColumn(3, 2, rows) // C: fee on balance (in-row RR)
	s.AddSlidingWindow(4, 2, 5, rows)
	s.AddRunningTotal(5, 1, rows)

	tacoEng, err := engine.Load(s, nil)
	if err != nil {
		panic(err)
	}
	ncEng, err := engine.Load(s, engine.NoComp{G: nocomp.NewGraph()})
	if err != nil {
		panic(err)
	}

	edit := taco.MustCell("A1")
	fmt.Printf("sheet: %d cells, editing %s (everything downstream must go dirty)\n\n",
		tacoEng.NumCells(), edit)

	// The edit below is the interactive step: latency until control returns.
	start := time.Now()
	dirtyTACO := tacoEng.SetValue(edit, taco.Num(123))
	tTACO := time.Since(start)

	start = time.Now()
	dirtyNC := ncEng.SetValue(edit, taco.Num(123))
	tNC := time.Since(start)

	fmt.Printf("identify dirty set (return control): TACO %-10v NoComp %v\n", tTACO, tNC)
	fmt.Printf("dirty cells: TACO %d, NoComp %d (must match)\n",
		taco.CountCells(dirtyTACO), taco.CountCells(dirtyNC))
	if taco.CountCells(dirtyTACO) != taco.CountCells(dirtyNC) {
		panic("dirty sets disagree")
	}

	// Background phase: evaluation proceeds after control has returned.
	start = time.Now()
	n := tacoEng.RecalculateAll()
	fmt.Printf("\nbackground recalculation of %d cells took %v\n", n, time.Since(start))
	fmt.Printf("B%d (end of chain) = %s\n", rows, tacoEng.Value(taco.MustCell(fmt.Sprintf("B%d", rows))))

	if tNC > tTACO {
		fmt.Printf("\nTACO returned control %.1fx faster\n", float64(tNC)/float64(tTACO))
	}
}
