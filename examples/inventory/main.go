// Inventory: an interactive session against the inventory-tracking scenario
// from the paper's introduction, run on the asynchronous engine. Every
// received/shipped edit must re-derive the running stock level (an RR-Chain)
// and the reorder flags; the latency until control returns is the formula-
// graph traversal TACO compresses.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"taco"
	"taco/internal/workload"
)

func main() {
	const days = 3000
	sheet := workload.InventoryTracker(days, rand.New(rand.NewSource(9)))
	eng, err := taco.LoadEngine(sheet)
	if err != nil {
		panic(err)
	}
	async := taco.NewAsyncEngine(eng)
	defer async.Close()

	stockEnd := taco.Ref{Col: 4, Row: days}
	fmt.Printf("inventory ledger: %d days, stock level D%d = %s\n",
		days, days, async.Get(stockEnd))

	// A correction arrives for day 2's receipts: control returns as soon as
	// the dirty set is identified; evaluation completes in the background.
	start := time.Now()
	dirty := async.Set(taco.Ref{Col: 2, Row: 2}, taco.Num(500))
	returned := time.Since(start)

	stale, clean := async.Peek(stockEnd)
	fmt.Printf("edited B2: control returned in %v, %d cells marked dirty\n",
		returned, taco.CountCells(dirty))
	fmt.Printf("immediately after: D%d = %s (clean=%v — the UI greys it out)\n",
		days, stale, clean)

	// Get blocks until the background recalculation reaches the cell.
	fresh := async.Get(stockEnd)
	fmt.Printf("after background recalc: D%d = %s\n", days, fresh)

	// Audit: which days' reorder flags depend on the reorder threshold G1?
	flagged := async.Dependents(taco.MustRange("G1"))
	fmt.Printf("cells depending on the reorder threshold G1: %d\n",
		taco.CountCells(flagged))
}
