# Tier-1 gate: everything CI runs, runnable locally with `make check`.

GO ?= go

.PHONY: check fmt vet build test race bench-server bench-core bench-eval fuzz-smoke perf-check crash-smoke failover-smoke

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Refresh the serving perf baseline. Includes the drain probe (mixed read +
# giant-drain scenario): read_p50_during_drain_ms and drain_cells_per_sec
# land in the report and are gated by benchdiff alongside edits/s.
# -metrics-url adds server_metrics (drain-hold percentiles, spill traffic,
# parse-cache hit rate) to the report; benchdiff ignores unknown fields.
# -standby-url inproc boots a warm standby shipping the primary's journals,
# so the baseline measures the replicated configuration and reports the
# replication lag mirrored reads observed. -churn-rounds exercises the
# delta-snapshot spill path (spill_bytes_per_edit) and -fork-storm the
# copy-on-write fork latency (fork_p50_ms); benchdiff gates both.
bench-server:
	$(GO) run ./cmd/tacoload -sessions 32 -edits 100 -rows 100 -max-resident 12 -durable -churn-rounds 4 -fork-storm 64 -metrics-url /metrics -standby-url inproc -json > BENCH_server.json
	@cat BENCH_server.json

# Core traversal/maintenance microbenchmarks. CI smoke-runs every benchmark
# once so a regression that breaks (or hangs) the compressed-graph hot path
# fails the build; drop -benchtime for real measurements.
bench-core:
	$(GO) test ./internal/core -run '^$$' -bench=. -benchtime=1x

# Refresh the evaluation perf baseline: the range-aggregation shapes (bulk
# range resolver vs the per-cell probe path) and the recalculation shapes
# (parallel wavefront drain vs the serial resolver, 4 workers).
bench-eval:
	$(GO) run ./cmd/tacoeval -json > BENCH_eval.json
	@cat BENCH_eval.json

# Bounded native-fuzz smoke, mirrored by CI. The nightly workflow runs the
# same targets at 10 minutes each (see .github/workflows/nightly.yml).
fuzz-smoke:
	$(GO) test ./internal/formula -run '^$$' -fuzz '^FuzzParse$$' -fuzztime=15s
	$(GO) test ./internal/formula -run '^$$' -fuzz '^FuzzEval$$' -fuzztime=15s
	$(GO) test ./internal/formula -run '^$$' -fuzz '^FuzzBytecodeEval$$' -fuzztime=15s
	$(GO) test ./internal/engine -run '^$$' -fuzz '^FuzzRecalcParallel$$' -fuzztime=15s
	$(GO) test ./internal/journal -run '^$$' -fuzz '^FuzzJournalDecode$$' -fuzztime=15s

# Local mirror of CI's perf-regression gate: measure now, compare against
# the checked-in baselines, fail on >25% regression (edits/s, mid-drain
# read p50, drain throughput, per-shape ns/op), a bulk range speedup under
# 2x, a wavefront recalc speedup under the baseline's per-shape floor
# (1.5x on wide fanout; enforced only on hosts with >= 4 CPUs), or a
# pattern-run drain speedup under its baseline floor (3x on the 100k-row
# column shape; enforced on every host — the advantage is algorithmic).
perf-check:
	$(GO) run ./cmd/tacoload -sessions 32 -edits 100 -rows 100 -max-resident 12 -durable -churn-rounds 4 -fork-storm 64 -metrics-url /metrics -standby-url inproc -json > /tmp/taco_bench_server.json
	$(GO) run ./cmd/benchdiff -tol 0.25 BENCH_server.json /tmp/taco_bench_server.json
	$(GO) run ./cmd/tacoeval -json > /tmp/taco_bench_eval.json
	$(GO) run ./cmd/benchdiff -tol 0.25 -min-speedup 2.0 BENCH_eval.json /tmp/taco_bench_eval.json

# Kill-and-restart smoke, mirrored by CI's perf job: journaled edits into a
# durable tacoserve, SIGKILL mid-stream, restart on the same spill dir, and
# `tacoload -replay` verifies every session converges to the never-crashed
# result (no torn files, nothing quarantined).
crash-smoke:
	$(GO) build -o bin/ ./cmd/tacoserve ./cmd/tacoload
	BIN=bin sh scripts/crash_smoke.sh

# Failover smoke, mirrored by CI's perf job: a warm standby ships a durable
# primary's journals, the primary is SIGKILLed mid-workload, the standby is
# promoted, and `tacoload -replay` verifies the promoted server serves an
# exact prefix of the acknowledged batches (async replication may lag, but
# must never be wrong).
failover-smoke:
	$(GO) build -o bin/ ./cmd/tacoserve ./cmd/tacoload
	BIN=bin sh scripts/failover_smoke.sh
