# Tier-1 gate: everything CI runs, runnable locally with `make check`.

GO ?= go

.PHONY: check fmt vet build test race bench-server bench-core

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Refresh the serving perf baseline.
bench-server:
	$(GO) run ./cmd/tacoload -sessions 32 -edits 100 -rows 100 -max-resident 12 -json > BENCH_server.json
	@cat BENCH_server.json

# Core traversal/maintenance microbenchmarks. CI smoke-runs every benchmark
# once so a regression that breaks (or hangs) the compressed-graph hot path
# fails the build; drop -benchtime for real measurements.
bench-core:
	$(GO) test ./internal/core -run '^$$' -bench=. -benchtime=1x
