// Package taco is a Go implementation of TACO — Tabular-locality-based
// Compression of spreadsheet formula graphs (Tang et al., "Efficient and
// Compact Spreadsheet Formula Graphs", ICDE 2023).
//
// A formula graph records, for every formula cell, the ranges it references.
// Real spreadsheets exhibit tabular locality: adjacent cells carry
// structurally similar formulae (autofill, copy-paste, programmatic
// generation), so runs of dependencies can be compressed into constant-size
// edges following one of five patterns — RR, RF, FR, FF, and RR-Chain.
// TACO builds that compressed graph greedily, answers dependent/precedent
// queries directly on it without decompression, and maintains it
// incrementally under edits.
//
// # Quick start
//
//	g := taco.NewGraph(taco.DefaultOptions())
//	g.AddDependency(taco.Dependency{
//		Prec: taco.MustRange("A1:A3"),
//		Dep:  taco.MustCell("B1"),
//	})
//	deps := g.FindDependents(taco.MustRange("A2"))
//
// To work from .xlsx files:
//
//	sheets, err := taco.ReadXLSX("book.xlsx")
//	g, err := taco.SheetGraph(sheets[0], taco.DefaultOptions())
//
// And to run a live spreadsheet with TACO-driven recalculation:
//
//	e := taco.NewEngine()
//	e.SetValue(taco.MustCell("A1"), taco.Num(2))
//	e.SetFormula(taco.MustCell("B1"), "A1*10")
//
// The subpackages under internal/ implement the substrates: the formula
// language, the R-tree index, the uncompressed baseline, the comparators
// from the paper's evaluation, the synthetic corpus generators, and the
// experiment harness (cmd/tacobench) that regenerates every table and
// figure.
package taco

import (
	"io"

	"taco/internal/core"
	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/server"
	"taco/internal/workload"
	"taco/internal/xlsx"
)

// Geometry types.
type (
	// Ref is a cell position (1-based column and row).
	Ref = ref.Ref
	// Range is a rectangular cell region with Head (top-left) and Tail
	// (bottom-right) corners.
	Range = ref.Range
	// Offset is a relative displacement between cells.
	Offset = ref.Offset
	// Axis orients a compressed run (column or row).
	Axis = ref.Axis
)

// Graph types.
type (
	// Graph is the TACO compressed formula graph.
	Graph = core.Graph
	// Options configures compression (patterns, heuristics, variants).
	Options = core.Options
	// Dependency is one uncompressed edge: formula cell Dep references
	// range Prec.
	Dependency = core.Dependency
	// Edge is a (possibly compressed) edge of the graph.
	Edge = core.Edge
	// PatternType identifies a compression pattern.
	PatternType = core.PatternType
	// PatternStat aggregates per-pattern compression effectiveness.
	PatternStat = core.PatternStat
	// Stats summarises graph sizes.
	Stats = core.Stats
)

// Spreadsheet types.
type (
	// Sheet is a sparse spreadsheet (cells with values or formulae).
	Sheet = workload.Sheet
	// Cell is one populated sheet cell.
	Cell = workload.Cell
	// Engine is a spreadsheet host with TACO-driven recalculation.
	Engine = engine.Engine
	// AsyncEngine runs recalculation on a background worker, returning
	// control after the dirty set is identified (the DataSpread model).
	AsyncEngine = engine.AsyncEngine
	// Book is a multi-sheet workbook; each sheet has its own TACO graph.
	Book = engine.Book
	// Value is a spreadsheet value (number, text, bool, error, empty).
	Value = formula.Value
)

// Compression patterns.
const (
	// Single marks an uncompressed edge.
	Single = core.Single
	// RR is Relative-Relative: a sliding window.
	RR = core.RR
	// RF is Relative-Fixed: a shrinking window.
	RF = core.RF
	// FR is Fixed-Relative: an expanding window (cumulative totals).
	FR = core.FR
	// FF is Fixed-Fixed: a shared fixed range (rates, lookup tables).
	FF = core.FF
	// RRChain is the extended chain pattern of Sec. V.
	RRChain = core.RRChain
)

// Axes.
const (
	// AxisCol marks a vertical (column) run.
	AxisCol = ref.AxisCol
	// AxisRow marks a horizontal (row) run.
	AxisRow = ref.AxisRow
)

// SafeGraph is a Graph wrapped with a read-write lock for concurrent use.
type SafeGraph = core.SafeGraph

// Serving types.
type (
	// Server is the multi-tenant spreadsheet HTTP service: many concurrent
	// workbook sessions, each backed by an Engine over a TACO graph, behind
	// a sharded session store with LRU spill-to-disk. It implements
	// http.Handler; run it standalone with cmd/tacoserve.
	Server = server.Server
	// ServerOptions configures a Server.
	ServerOptions = server.Options
	// SessionStoreOptions configures the server's sharded session store
	// (shard count, resident cap, spill directory).
	SessionStoreOptions = server.StoreOptions
	// SessionStoreStats is the store-wide health snapshot.
	SessionStoreStats = server.StoreStats
)

// NewGraph returns an empty compressed formula graph.
func NewGraph(opts Options) *Graph { return core.NewGraph(opts) }

// BuildGraph compresses a dependency list into a new graph with the greedy
// insertion algorithm (Alg. 2 of the paper).
func BuildGraph(deps []Dependency, opts Options) *Graph { return core.Build(deps, opts) }

// BuildGraphBulk compresses a column-major dependency stream with the
// streaming fast path, which avoids the per-dependency candidate search.
// Use it when loading whole files; use Graph.AddDependency for interactive
// edits.
func BuildGraphBulk(deps []Dependency, opts Options) *Graph { return core.BuildBulk(deps, opts) }

// NewSafeGraph returns a thread-safe compressed graph.
func NewSafeGraph(opts Options) *SafeGraph { return core.NewSafeGraph(opts) }

// ReadGraphSnapshot loads a graph serialised with Graph.WriteSnapshot.
func ReadGraphSnapshot(r io.Reader, opts Options) (*Graph, error) {
	return core.ReadSnapshot(r, opts)
}

// DefaultOptions enables all patterns with the paper's heuristics
// (the TACO-Full configuration).
func DefaultOptions() Options { return core.DefaultOptions() }

// InRowOptions returns the restricted TACO-InRow configuration, which only
// compresses derived columns.
func InRowOptions() Options { return core.InRowOptions() }

// CountCells sums the sizes of disjoint ranges, e.g. a FindDependents result.
func CountCells(rs []Range) int { return core.CountCells(rs) }

// ParseCell parses "B2"-style notation (accepting $ markers).
func ParseCell(s string) (Ref, error) { return ref.ParseA1(s) }

// ParseRange parses "A1:B3"-style notation.
func ParseRange(s string) (Range, error) { return ref.ParseRangeA1(s) }

// MustCell parses a cell reference, panicking on error. For tests, examples
// and constants.
func MustCell(s string) Ref { return ref.MustCell(s) }

// MustRange parses a range reference, panicking on error.
func MustRange(s string) Range { return ref.MustRange(s) }

// Num returns a numeric spreadsheet value.
func Num(v float64) Value { return formula.Num(v) }

// Str returns a text spreadsheet value.
func Str(s string) Value { return formula.Str(s) }

// NewSheet returns an empty named sheet.
func NewSheet(name string) *Sheet { return workload.NewSheet(name) }

// SheetDependencies parses every formula of the sheet and returns the
// uncompressed dependency list in column-major load order.
func SheetDependencies(s *Sheet) ([]Dependency, error) { return s.Dependencies() }

// SheetGraph builds a compressed formula graph for a sheet.
func SheetGraph(s *Sheet, opts Options) (*Graph, error) {
	deps, err := s.Dependencies()
	if err != nil {
		return nil, err
	}
	return core.Build(deps, opts), nil
}

// ReadXLSX loads the sheets of an .xlsx file.
func ReadXLSX(path string) ([]*Sheet, error) { return xlsx.ReadFile(path) }

// WriteXLSX writes sheets to an .xlsx file. When sharedFormulas is true,
// autofill-equivalent formula runs are stored as shared formulas (Excel's
// on-disk dedup).
func WriteXLSX(path string, sheets []*Sheet, sharedFormulas bool) error {
	return xlsx.WriteFile(path, sheets, xlsx.WriteOptions{SharedFormulas: sharedFormulas})
}

// NewEngine returns a spreadsheet engine backed by a TACO graph with the
// default options.
func NewEngine() *Engine { return engine.New(nil) }

// LoadEngine populates an engine from a sheet and evaluates all formulae,
// using TACO as the dependency graph.
func LoadEngine(s *Sheet) (*Engine, error) { return engine.Load(s, nil) }

// NewAsyncEngine wraps an engine with a background recalculation worker.
// Callers must Close it and must not use the wrapped engine directly.
func NewAsyncEngine(e *Engine) *AsyncEngine { return engine.NewAsync(e) }

// NewServer builds the multi-tenant spreadsheet service. Mount the returned
// handler on any mux, or serve it directly with http.ListenAndServe.
func NewServer(opts ServerOptions) (*Server, error) { return server.NewServer(opts) }

// RestoreEngineSnapshot loads a live engine serialised with
// Engine.WriteSnapshot — the whole-session persistence the serving layer
// uses to spill cold sessions.
func RestoreEngineSnapshot(r io.Reader) (*Engine, error) { return engine.RestoreSnapshot(r) }

// OpenWorkbook reads an .xlsx file into a live multi-sheet workbook with
// TACO-driven recalculation.
func OpenWorkbook(path string) (*Book, error) {
	sheets, err := xlsx.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return engine.LoadBook(sheets)
}

// ExtractReferences parses a formula (with or without a leading '=') and
// returns the ranges it references as dependencies of the given cell,
// carrying the $-marker cues.
func ExtractReferences(src string, at Ref) ([]Dependency, error) {
	refs, err := formula.ExtractRefs(src)
	if err != nil {
		return nil, err
	}
	out := make([]Dependency, len(refs))
	for i, r := range refs {
		out[i] = Dependency{Prec: r.At, Dep: at, HeadFixed: r.HeadFixed, TailFixed: r.TailFixed}
	}
	return out, nil
}
