#!/bin/sh
# Failover smoke: boot a durable primary plus a warm standby shipping its
# journals, SIGKILL the primary mid-workload, promote the standby, and
# verify with `tacoload -replay` that every session the standby serves is
# exactly a prefix of the primary's acknowledged batches — replication is
# asynchronous, so the standby may be behind, but it must never be wrong.
#
# Usage: BIN=bin scripts/failover_smoke.sh   (BIN holds tacoserve + tacoload)
set -eu

BIN=${BIN:-bin}
# Kernel-chosen free ports so parallel CI jobs on a shared runner never
# collide; each server writes its bound address to its own port file.
ADDR=${ADDR:-127.0.0.1:0}
PRI_SPILL=$(mktemp -d)
SBY_SPILL=$(mktemp -d)
PRI_PORT_FILE=$(mktemp)
SBY_PORT_FILE=$(mktemp)
pri_pid=""
sby_pid=""
cleanup() {
    [ -n "$pri_pid" ] && kill "$pri_pid" 2>/dev/null || true
    [ -n "$sby_pid" ] && kill "$sby_pid" 2>/dev/null || true
    rm -rf "$PRI_SPILL" "$SBY_SPILL" "$PRI_PORT_FILE" "$SBY_PORT_FILE"
}
trap cleanup EXIT

# wait_ready PORT_FILE polls for the bound address (written atomically once
# the listener is up), then confirms the API answers. Sets BOUND.
wait_ready() {
    for _ in $(seq 1 50); do
        if [ -s "$1" ]; then
            BOUND=$(cat "$1")
            curl -sf "http://$BOUND/sessions" >/dev/null && return 0
        fi
        sleep 0.2
    done
    echo "failover_smoke: server at ${BOUND:-$ADDR} never became ready" >&2
    return 1
}

# The workload flags must match between the edit run and -replay: the
# verifier regenerates the same sessions and edit streams from them.
LOAD_FLAGS="-sessions 8 -edits 800 -rows 40 -batch 4"

# The primary runs with a resident cap below the session count: evicted
# sessions spill as base + delta chains, so the standby's bootstrap ships a
# spilled base and the chain records over the journal endpoint — the
# evicted-but-lightly-edited transfer path.
"$BIN/tacoserve" -addr "$ADDR" -port-file "$PRI_PORT_FILE" -durable -max-resident 4 -spill-dir "$PRI_SPILL" &
pri_pid=$!
wait_ready "$PRI_PORT_FILE"
PRI_BOUND=$BOUND

# The standby tails the primary's journals on a tight poll so a short run
# still ships most of the stream before the kill.
"$BIN/tacoserve" -addr "$ADDR" -port-file "$SBY_PORT_FILE" -durable -spill-dir "$SBY_SPILL" \
    -standby -primary-url "http://$PRI_BOUND" -repl-interval 25ms &
sby_pid=$!
wait_ready "$SBY_PORT_FILE"
SBY_BOUND=$BOUND

# Sanity: the standby is fenced before promotion — a write must answer 503.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$SBY_BOUND/sessions" -d '{}')
if [ "$code" != "503" ]; then
    echo "failover_smoke: standby write fence answered $code, want 503" >&2
    exit 1
fi

# Drive the edit stream and SIGKILL the primary under it — no shutdown
# hooks, no final ship. The driver's connection errors are the expected
# collateral.
# shellcheck disable=SC2086
"$BIN/tacoload" -addr "http://$PRI_BOUND" $LOAD_FLAGS -drain-probes 0 &
load_pid=$!
# Long enough that every session exists and shipping is under way, short
# enough that the stream is still in flight.
sleep 0.4
kill -9 "$pri_pid"
wait "$load_pid" 2>/dev/null || true
wait "$pri_pid" 2>/dev/null || true
pri_pid=""

# Promote: the standby fences its shipping cursor and starts taking writes.
promote=$(curl -sf -X POST "http://$SBY_BOUND/admin/promote")
echo "failover_smoke: promote -> $promote"
case $promote in
*'"promoted":true'*) ;;
*)
    echo "failover_smoke: promotion did not report promoted:true" >&2
    exit 1
    ;;
esac

# The promoted standby must serve every shipped session at a state that is
# exactly the prefix of acknowledged batches its rev claims — tacoload
# -replay regenerates the streams and compares cell by cell.
# shellcheck disable=SC2086
"$BIN/tacoload" -addr "http://$SBY_BOUND" $LOAD_FLAGS -replay

# And it must be writable: a fresh session create succeeds post-promotion.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$SBY_BOUND/sessions" -d '{}')
if [ "$code" != "201" ]; then
    echo "failover_smoke: write after promotion answered $code, want 201" >&2
    exit 1
fi

# Atomic writes: the standby's tree must be clean, and nothing anywhere may
# be quarantined. The dead primary's dir is allowed a stranded .tmp — a
# SIGKILL mid-spill legitimately leaves one, and the boot sweep reclaims it
# on restart, but this primary is never restarted (the runbook rebuilds it
# as a standby).
leftovers=$(find "$SBY_SPILL" -name '*.tmp' -o -name '*.corrupt' | wc -l)
quarantined=$(find "$PRI_SPILL" -name '*.corrupt' | wc -l)
if [ "$leftovers" -ne 0 ] || [ "$quarantined" -ne 0 ]; then
    echo "failover_smoke: torn or quarantined files in spill dirs:" >&2
    find "$PRI_SPILL" "$SBY_SPILL" -name '*.tmp' -o -name '*.corrupt' >&2
    exit 1
fi
echo "failover_smoke: OK"
