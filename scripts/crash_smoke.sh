#!/bin/sh
# Crash-recovery smoke: drive journaled edits into a durable tacoserve,
# SIGKILL it mid-stream, restart it on the same spill directory, and verify
# with `tacoload -replay` that every session is rediscovered and replays to
# the exact values of a never-crashed run. The server runs with a resident
# cap well below the session count, so the stream is also an eviction-churn
# drill: spills land as base snapshots plus delta chains (delta snapshots
# default on), and the kill can tear a delta append or a chain compaction
# mid-write. A second load-kill-restart round replays on top of recovered,
# chained sessions.
#
# Usage: BIN=bin scripts/crash_smoke.sh   (BIN holds tacoserve + tacoload)
set -eu

BIN=${BIN:-bin}
# Default to a kernel-chosen free port so parallel CI jobs on a shared
# runner never collide; the server writes the bound address to PORT_FILE.
# Set ADDR to pin a fixed address instead.
ADDR=${ADDR:-127.0.0.1:0}
SPILL=$(mktemp -d)
# Outside the spill dir: recovery treats that directory as its own.
PORT_FILE=$(mktemp)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$SPILL" "$PORT_FILE"
}
trap cleanup EXIT

# wait_ready polls the port file for the bound address (written atomically
# once the listener is up), then confirms the API answers. Sets BOUND.
wait_ready() {
    for _ in $(seq 1 50); do
        if [ -s "$PORT_FILE" ]; then
            BOUND=$(cat "$PORT_FILE")
            curl -sf "http://$BOUND/sessions" >/dev/null && return 0
        fi
        sleep 0.2
    done
    echo "crash_smoke: server at ${BOUND:-$ADDR} never became ready" >&2
    return 1
}

# The workload flags must match between the edit run and -replay: the
# verifier regenerates the same sessions and edit streams from them.
LOAD_FLAGS="-sessions 8 -edits 800 -rows 40 -batch 4"
# A resident cap below the session count makes every run an eviction-churn
# drill over the delta-snapshot spill path.
SERVE_FLAGS="-durable -max-resident 4"

# shellcheck disable=SC2086
"$BIN/tacoserve" -addr "$ADDR" -port-file "$PORT_FILE" $SERVE_FLAGS -spill-dir "$SPILL" &
server_pid=$!
wait_ready

# Run the edit stream and SIGKILL the server under it — no shutdown hooks,
# no final fsync, exactly a crash. The driver's connection errors are the
# expected collateral.
# shellcheck disable=SC2086
"$BIN/tacoload" -addr "http://$BOUND" $LOAD_FLAGS -drain-probes 0 &
load_pid=$!
# Long enough that every session exists, short enough that the stream is
# still in flight; if a slow host finishes the stream first the kill still
# exercises recovery, just without in-flight batches.
sleep 0.4
kill -9 "$server_pid"
wait "$load_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Restart on the same spill dir: the registry and journals must bring every
# session back. A fresh free port (and a fresh port file — the spill dir
# survives, the file must not) proves recovery is address-independent.
rm -f "$PORT_FILE"
# shellcheck disable=SC2086
"$BIN/tacoserve" -addr "$ADDR" -port-file "$PORT_FILE" $SERVE_FLAGS -spill-dir "$SPILL" &
server_pid=$!
wait_ready

# shellcheck disable=SC2086
"$BIN/tacoload" -addr "http://$BOUND" $LOAD_FLAGS -replay

# Round two: another load burst on top of the recovered sessions — whose
# state is now base + delta chains — killed and recovered again. Sessions
# share names across rounds, which -replay handles: each regenerates the
# same stream and is verified against its own acknowledged rev prefix.
# shellcheck disable=SC2086
"$BIN/tacoload" -addr "http://$BOUND" $LOAD_FLAGS -drain-probes 0 &
load_pid=$!
sleep 0.4
kill -9 "$server_pid"
wait "$load_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

rm -f "$PORT_FILE"
# shellcheck disable=SC2086
"$BIN/tacoserve" -addr "$ADDR" -port-file "$PORT_FILE" $SERVE_FLAGS -spill-dir "$SPILL" &
server_pid=$!
wait_ready

# shellcheck disable=SC2086
"$BIN/tacoload" -addr "http://$BOUND" $LOAD_FLAGS -replay

# A torn snapshot must never be observable at a final path: atomic writes
# leave no *.tmp behind, and recovery quarantined nothing.
leftovers=$(find "$SPILL" -name '*.tmp' -o -name '*.corrupt' | wc -l)
if [ "$leftovers" -ne 0 ]; then
    echo "crash_smoke: torn or quarantined files in spill dir:" >&2
    find "$SPILL" -name '*.tmp' -o -name '*.corrupt' >&2
    exit 1
fi
echo "crash_smoke: OK"
