package taco_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"taco"
)

// TestPublicServerAPI drives the serving layer through the public package
// surface: taco.NewServer mounted as a plain http.Handler.
func TestPublicServerAPI(t *testing.T) {
	srv, err := taco.NewServer(taco.ServerOptions{
		Store: taco.SessionStoreOptions{MaxResident: 2, SpillDir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	body, _ := json.Marshal(map[string]any{"scenario": "financial", "rows": 20, "seed": 3})
	resp, err := http.Post(hs.URL+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var info struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Cells == 0 {
		t.Fatalf("info = %+v", info)
	}

	q, err := http.Get(hs.URL + "/sessions/" + info.ID + "/dependents?of=B1")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Body.Close()
	var qr struct {
		Cells int `json:"cells"`
	}
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cells == 0 {
		t.Fatal("B1 has no dependents in the financial scenario")
	}
}
