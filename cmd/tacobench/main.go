// Command tacobench regenerates the tables and figures of the paper's
// evaluation (Sec. VI) on the synthetic corpora.
//
// Usage:
//
//	tacobench [-exp all] [-scale 1.0] [-timeout 10s]
//
// Experiments: fig1, sizes (Tables II-IV), table5, fig10, fig11, fig12,
// fig13 (runs Figs. 13-15 together), fig16, cem, all.
//
// Absolute numbers depend on the host; the shapes — who wins, by what
// factor, where DNFs appear — are what reproduce the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"taco/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig1|sizes|table5|fig10|fig11|fig12|fig13|fig16|accesses|cem|all")
	scale := flag.Float64("scale", 1.0, "corpus scale factor (sheet sizes and counts)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-measurement DNF timeout for the baseline experiments")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Timeout: *timeout, Out: os.Stdout}

	run := map[string]func(){
		"fig1":     func() { experiments.RunFig1(cfg) },
		"sizes":    func() { experiments.RunSizes(cfg) },
		"table5":   func() { experiments.RunTable5(cfg) },
		"fig10":    func() { experiments.RunFig10(cfg) },
		"fig11":    func() { experiments.RunFig11(cfg) },
		"fig12":    func() { experiments.RunFig12(cfg) },
		"fig13":    func() { experiments.RunFig13to15(cfg) },
		"fig16":    func() { experiments.RunFig16(cfg) },
		"accesses": func() { experiments.RunAccesses(cfg) },
		"cem":      func() { experiments.RunCEM(cfg) },
	}
	order := []string{"fig1", "sizes", "table5", "fig10", "fig11", "fig12", "fig13", "fig16", "accesses", "cem"}

	selected := strings.Split(*exp, ",")
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		fn, ok := run[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "tacobench: unknown experiment %q (want one of %s, or all)\n",
				name, strings.Join(order, "|"))
			os.Exit(2)
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
