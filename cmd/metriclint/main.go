// Command metriclint validates a Prometheus text-format exposition page: it
// parses the page, checks the format invariants (HELP/TYPE present, known
// types, histogram bucket shape), and optionally enforces a minimum family
// count. CI curls tacoserve's /metrics into a file and runs this over it, so
// a change that breaks the exposition — a malformed label, a histogram
// missing its +Inf bucket, a family losing its HELP — fails the build
// instead of silently breaking scrapers.
//
// Usage:
//
//	metriclint [-min-families N] [file]
//
// Reads the named file, or stdin when no file is given. Exits 0 when the
// page is valid, 1 with one line per violation otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"taco/internal/telemetry"
)

func main() {
	minFamilies := flag.Int("min-families", 0, "fail unless the page exposes at least this many metric families")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "metriclint: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, lintErr := range telemetry.Lint(bytes.NewReader(data)) {
		fmt.Fprintf(os.Stderr, "metriclint: %s: %v\n", name, lintErr)
		failed = true
	}
	if !failed && *minFamilies > 0 {
		s, err := telemetry.ParseText(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %v\n", name, err)
			os.Exit(1)
		}
		if n := len(s.Families); n < *minFamilies {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %d metric families, want >= %d\n", name, n, *minFamilies)
			failed = true
		} else {
			fmt.Printf("metriclint: %s: ok (%d families)\n", name, n)
		}
	}
	if failed {
		os.Exit(1)
	}
}
