// Command benchdiff compares a current benchmark report against a
// checked-in baseline and exits non-zero on regression — the comparator
// behind CI's perf-regression job.
//
// Usage:
//
//	benchdiff [-tol 0.25] [-min-speedup 2.0] baseline.json current.json
//
// The report kind is read from the "bench" field:
//
//   - "server" (BENCH_server.json / tacoload -json): edits_per_sec must not
//     drop more than tol below the baseline; read_p50_during_drain_ms (the
//     drain probe's mid-drain read latency) must not rise more than tol
//     above it (plus a small absolute grace for sub-millisecond noise), and
//     drain_cells_per_sec must not drop more than tol below it. Two
//     structural-sharing series gate the same way: spill_bytes_per_edit
//     (eviction write amplification — the delta-snapshot win) must not rise
//     more than tol above the baseline, and fork_p50_ms (copy-on-write fork
//     latency) must not rise more than tol plus the latency grace. Every
//     optional series is gated only when the baseline carries it, so old
//     baselines stay comparable.
//   - "eval" (BENCH_eval.json / tacoeval -json): per shape, ns_op_bulk must
//     not rise more than tol above the baseline, and the bulk-vs-percell
//     speedup — host-independent, so it also holds on CI runners whose
//     absolute numbers differ from the baseline host's — must stay at or
//     above min-speedup. Recalc shapes are gated the same way on
//     ns_op_parallel, plus a per-shape serial-vs-parallel speedup floor the
//     baseline itself declares (min_speedup — policy travels with the
//     checked-in report). A speedup floor is only enforced when the
//     current host has at least as many CPUs as the shape ran workers:
//     wall-clock parallel speedup on fewer cores than workers is
//     physically meaningless, and the regression ceiling still applies.
//     Pattern shapes ("patterns") are gated on ns_op_vectorized with the
//     same ceiling, plus the baseline's min_speedup floor on the
//     ast-vs-vectorized ratio. Unlike the recalc floors, a pattern floor
//     is enforced on any host, including single-CPU runners: the
//     vectorized drain is algorithmically cheaper than the per-cell AST
//     walk (batched sweeps, warm schedules), not merely more parallel, so
//     the ratio must hold regardless of core count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type serverReport struct {
	Bench                string  `json:"bench"`
	EditsPerSec          float64 `json:"edits_per_sec"`
	ReadP50DuringDrainMs float64 `json:"read_p50_during_drain_ms"`
	DrainCellsPerSec     float64 `json:"drain_cells_per_sec"`
	SpillBytesPerEdit    float64 `json:"spill_bytes_per_edit"`
	ForkP50Ms            float64 `json:"fork_p50_ms"`
}

// latencyGraceMs is absolute headroom added to latency ceilings: a p50 of a
// fraction of a millisecond would otherwise turn scheduler jitter on a
// shared runner into a fractional "regression".
const latencyGraceMs = 0.25

type evalResult struct {
	NsOpBulk    float64 `json:"ns_op_bulk"`
	NsOpPercell float64 `json:"ns_op_percell"`
	Speedup     float64 `json:"speedup"`
}

type recalcResult struct {
	Workers      int     `json:"workers"`
	CPUs         int     `json:"cpus"`
	NsOpSerial   float64 `json:"ns_op_serial"`
	NsOpParallel float64 `json:"ns_op_parallel"`
	Speedup      float64 `json:"speedup"`
	MinSpeedup   float64 `json:"min_speedup"`
}

type patternResult struct {
	NsOpAst        float64 `json:"ns_op_ast"`
	NsOpVectorized float64 `json:"ns_op_vectorized"`
	Speedup        float64 `json:"speedup"`
	MinSpeedup     float64 `json:"min_speedup"`
}

type evalReport struct {
	Bench    string                   `json:"bench"`
	Results  map[string]evalResult    `json:"results"`
	Recalc   map[string]recalcResult  `json:"recalc"`
	Patterns map[string]patternResult `json:"patterns"`
}

func readJSON(path string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

func main() {
	tol := flag.Float64("tol", 0.25, "allowed fractional regression vs baseline")
	minSpeedup := flag.Float64("min-speedup", 2.0, "eval reports: minimum bulk-vs-percell speedup")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.25] [-min-speedup 2.0] baseline.json current.json")
		os.Exit(2)
	}
	basePath, curPath := flag.Arg(0), flag.Arg(1)

	var kind struct {
		Bench string `json:"bench"`
	}
	if err := readJSON(basePath, &kind); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var failures []string
	switch kind.Bench {
	case "server":
		var base, cur serverReport
		if err := readJSON(basePath, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := readJSON(curPath, &cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if base.EditsPerSec <= 0 || cur.EditsPerSec <= 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: server reports need positive edits_per_sec")
			os.Exit(2)
		}
		floor := base.EditsPerSec * (1 - *tol)
		fmt.Printf("edits/s: baseline %.0f, current %.0f (floor %.0f)\n",
			base.EditsPerSec, cur.EditsPerSec, floor)
		if cur.EditsPerSec < floor {
			failures = append(failures, fmt.Sprintf(
				"edits_per_sec regressed: %.0f -> %.0f (>%.0f%% drop)",
				base.EditsPerSec, cur.EditsPerSec, *tol*100))
		}
		if base.ReadP50DuringDrainMs > 0 {
			ceiling := base.ReadP50DuringDrainMs*(1+*tol) + latencyGraceMs
			fmt.Printf("read p50 during drain: baseline %.3fms, current %.3fms (ceiling %.3fms)\n",
				base.ReadP50DuringDrainMs, cur.ReadP50DuringDrainMs, ceiling)
			if cur.ReadP50DuringDrainMs > ceiling {
				failures = append(failures, fmt.Sprintf(
					"read_p50_during_drain_ms regressed: %.3f -> %.3f (ceiling %.3f)",
					base.ReadP50DuringDrainMs, cur.ReadP50DuringDrainMs, ceiling))
			}
		}
		if base.DrainCellsPerSec > 0 {
			floor := base.DrainCellsPerSec * (1 - *tol)
			fmt.Printf("drain throughput: baseline %.0f cells/s, current %.0f (floor %.0f)\n",
				base.DrainCellsPerSec, cur.DrainCellsPerSec, floor)
			if cur.DrainCellsPerSec < floor {
				failures = append(failures, fmt.Sprintf(
					"drain_cells_per_sec regressed: %.0f -> %.0f (>%.0f%% drop)",
					base.DrainCellsPerSec, cur.DrainCellsPerSec, *tol*100))
			}
		}
		// Spill write amplification: bytes the store wrote per journaled edit
		// (delta snapshots exist to keep this small under eviction churn).
		// Gated only when the baseline carries the series, so older baselines
		// stay comparable.
		if base.SpillBytesPerEdit > 0 {
			ceiling := base.SpillBytesPerEdit * (1 + *tol)
			fmt.Printf("spill write amp: baseline %.1f B/edit, current %.1f (ceiling %.1f)\n",
				base.SpillBytesPerEdit, cur.SpillBytesPerEdit, ceiling)
			if cur.SpillBytesPerEdit > ceiling {
				failures = append(failures, fmt.Sprintf(
					"spill_bytes_per_edit regressed: %.1f -> %.1f (>%.0f%% rise)",
					base.SpillBytesPerEdit, cur.SpillBytesPerEdit, *tol*100))
			}
		}
		// Copy-on-write fork latency: must stay flat regardless of how large
		// the parent sheet is — that O(1) shape is the point of forks sharing
		// the parent's base + delta chain. Same absolute grace as the other
		// latency gate: fork p50s are fractions of a millisecond.
		if base.ForkP50Ms > 0 {
			ceiling := base.ForkP50Ms*(1+*tol) + latencyGraceMs
			fmt.Printf("fork p50: baseline %.3fms, current %.3fms (ceiling %.3fms)\n",
				base.ForkP50Ms, cur.ForkP50Ms, ceiling)
			if cur.ForkP50Ms > ceiling {
				failures = append(failures, fmt.Sprintf(
					"fork_p50_ms regressed: %.3f -> %.3f (ceiling %.3f)",
					base.ForkP50Ms, cur.ForkP50Ms, ceiling))
			}
		}
	case "eval":
		var base, cur evalReport
		if err := readJSON(basePath, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := readJSON(curPath, &cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		for name, b := range base.Results {
			c, ok := cur.Results[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: missing from current report", name))
				continue
			}
			ceiling := b.NsOpBulk * (1 + *tol)
			fmt.Printf("%-18s bulk %.0f ns/op (baseline %.0f, ceiling %.0f), speedup %.2fx (min %.2fx)\n",
				name, c.NsOpBulk, b.NsOpBulk, ceiling, c.Speedup, *minSpeedup)
			if c.NsOpBulk > ceiling {
				failures = append(failures, fmt.Sprintf(
					"%s: ns_op_bulk regressed: %.0f -> %.0f (>%.0f%% rise)",
					name, b.NsOpBulk, c.NsOpBulk, *tol*100))
			}
			if c.Speedup < *minSpeedup {
				failures = append(failures, fmt.Sprintf(
					"%s: bulk speedup %.2fx below the %.2fx floor", name, c.Speedup, *minSpeedup))
			}
		}
		for name, b := range base.Recalc {
			c, ok := cur.Recalc[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: missing from current report", name))
				continue
			}
			ceiling := b.NsOpParallel * (1 + *tol)
			fmt.Printf("%-18s parallel %.0f ns/op (baseline %.0f, ceiling %.0f), speedup %.2fx",
				name, c.NsOpParallel, b.NsOpParallel, ceiling, c.Speedup)
			if c.NsOpParallel > ceiling {
				failures = append(failures, fmt.Sprintf(
					"%s: ns_op_parallel regressed: %.0f -> %.0f (>%.0f%% rise)",
					name, b.NsOpParallel, c.NsOpParallel, *tol*100))
			}
			switch {
			case b.MinSpeedup <= 0:
				fmt.Println(" (no floor)")
			case c.Workers != b.Workers:
				// The floor was calibrated for the baseline's worker count;
				// holding a different parallelism to it would gate apples
				// against oranges.
				fmt.Printf(" (floor %.2fx skipped: measured at %d workers, baseline at %d)\n",
					b.MinSpeedup, c.Workers, b.Workers)
			case c.CPUs < c.Workers:
				// The floor is policy for hosts that can actually run the
				// workers; a 1-CPU box cannot show wall-clock speedup.
				fmt.Printf(" (floor %.2fx skipped: %d CPUs < %d workers)\n", b.MinSpeedup, c.CPUs, c.Workers)
			default:
				fmt.Printf(" (floor %.2fx)\n", b.MinSpeedup)
				if c.Speedup < b.MinSpeedup {
					failures = append(failures, fmt.Sprintf(
						"%s: parallel speedup %.2fx below the baseline's %.2fx floor",
						name, c.Speedup, b.MinSpeedup))
				}
			}
		}
		for name, b := range base.Patterns {
			c, ok := cur.Patterns[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: missing from current report", name))
				continue
			}
			ceiling := b.NsOpVectorized * (1 + *tol)
			fmt.Printf("%-18s vectorized %.0f ns/op (baseline %.0f, ceiling %.0f), speedup %.2fx",
				name, c.NsOpVectorized, b.NsOpVectorized, ceiling, c.Speedup)
			if c.NsOpVectorized > ceiling {
				failures = append(failures, fmt.Sprintf(
					"%s: ns_op_vectorized regressed: %.0f -> %.0f (>%.0f%% rise)",
					name, b.NsOpVectorized, c.NsOpVectorized, *tol*100))
			}
			if b.MinSpeedup <= 0 {
				fmt.Println(" (no floor)")
				continue
			}
			// No CPU/worker skip here: the ast-vs-vectorized ratio compares two
			// drains of the same cells on the same host, and the vectorized
			// side's advantage is algorithmic, so the floor binds everywhere.
			fmt.Printf(" (floor %.2fx)\n", b.MinSpeedup)
			if c.Speedup < b.MinSpeedup {
				failures = append(failures, fmt.Sprintf(
					"%s: vectorized speedup %.2fx below the baseline's %.2fx floor",
					name, c.Speedup, b.MinSpeedup))
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown bench kind %q in %s\n", kind.Bench, basePath)
		os.Exit(2)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
