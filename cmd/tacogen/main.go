// Command tacogen writes synthetic spreadsheets to .xlsx files: either one
// of the named application scenarios (financial, inventory, gradebook,
// planning) or a whole Enron-/Github-like corpus. The files open in any
// spreadsheet system and feed tacotrace, making the synthetic workloads
// inspectable.
//
// Usage:
//
//	tacogen -scenario financial -rows 200 -out model.xlsx
//	tacogen -corpus Enron -scale 0.2 -dir ./corpus
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"taco"
	"taco/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "", "scenario to generate: "+strings.Join(workload.ScenarioNames, "|"))
	rows := flag.Int("rows", 100, "scenario size (rows/months/students/quarters)")
	out := flag.String("out", "sheet.xlsx", "output file for -scenario")
	corpus := flag.String("corpus", "", "corpus to generate: Enron|Github")
	scale := flag.Float64("scale", 0.1, "corpus scale factor")
	dir := flag.String("dir", ".", "output directory for -corpus")
	seed := flag.Int64("seed", 1, "random seed for -scenario")
	shared := flag.Bool("shared", true, "store autofill runs as shared formulas")
	flag.Parse()

	switch {
	case *scenario != "":
		s, err := workload.BuildScenario(*scenario, *rows, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatal(err)
		}
		if err := taco.WriteXLSX(*out, []*taco.Sheet{s}, *shared); err != nil {
			fatal(err)
		}
		g, err := taco.SheetGraph(s, taco.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d cells, %d dependencies -> %d compressed edges\n",
			*out, len(s.Cells), g.NumDependencies(), g.NumEdges())
	case *corpus != "":
		var spec workload.CorpusSpec
		switch strings.ToLower(*corpus) {
		case "enron":
			spec = workload.EnronSpec(*scale)
		case "github":
			spec = workload.GithubSpec(*scale)
		default:
			fatal(fmt.Errorf("unknown corpus %q (want Enron or Github)", *corpus))
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		sheets := workload.Generate(spec)
		for _, s := range sheets {
			path := filepath.Join(*dir, s.Name+".xlsx")
			if err := taco.WriteXLSX(path, []*taco.Sheet{s}, *shared); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d %s-like workbooks to %s\n", len(sheets), spec.Name, *dir)
	default:
		fmt.Fprintln(os.Stderr, "tacogen: pass -scenario or -corpus")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tacogen:", err)
	os.Exit(1)
}
