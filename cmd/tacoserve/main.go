// Command tacoserve runs the multi-tenant spreadsheet service: many
// concurrent workbook sessions, each backed by a TACO compressed formula
// graph, behind a JSON HTTP API.
//
// Usage:
//
//	tacoserve [-addr :8737] [-port-file PATH] [-shards 16] [-max-resident 0]
//	          [-spill-dir DIR] [-durable] [-fsync interval] [-fsync-interval 50ms]
//	          [-recalc-parallelism 0] [-recalc-workers 0] [-recalc-chunk 0]
//	          [-recalc-pool 0] [-debug-addr ADDR] [-access-log]
//	          [-standby -primary-url URL] [-repl-interval 100ms]
//
// Endpoints:
//
//	POST   /sessions                   create (blank or {"scenario":...,"rows":...})
//	POST   /sessions/xlsx              create from an uploaded .xlsx body
//	GET    /sessions                   list sessions
//	GET    /sessions/{id}              session stats (rev, cells, graph sizes)
//	DELETE /sessions/{id}              drop a session
//	POST   /sessions/{id}/fork         copy-on-write fork of the session (durable stores)
//	POST   /sessions/{id}/edits        batched edits {"edits":[{"cell":"B2","value":3},...]}
//	GET    /sessions/{id}/cells        ?at=B2 or ?range=A1:C10
//	GET    /sessions/{id}/dependents   ?of=A1:A3
//	GET    /sessions/{id}/precedents   ?of=B2
//	GET    /stats                      store-wide stats
//	GET    /metrics                    Prometheus text-format telemetry (see TELEMETRY.md)
//	GET    /replication/sessions       replication manifest (for standbys)
//	GET    /replication/sessions/{id}/snapshot   engine snapshot + X-Snapshot-Rev
//	GET    /replication/sessions/{id}/journal    journal tail ?from=REV (journal wire format)
//	POST   /admin/promote              promote a standby to primary
//
// With -max-resident N, at most N sessions stay in memory; colder ones are
// spilled to -spill-dir as engine snapshots and restored lazily when touched.
//
// With -durable, every accepted edit batch is journaled to -spill-dir before
// the response commits and a persistent session registry makes restarts warm:
// a relaunched tacoserve pointed at the same -spill-dir rediscovers every
// session and replays journal tails on top of snapshots at first touch.
// -fsync picks the journal fsync policy (always|interval|never) and
// -fsync-interval the background flush period; see README.md "Durability".
//
// With -standby -primary-url URL, the server boots as a warm standby: the
// store is read-only (writes answer 503 with Retry-After), a replicator
// bootstraps every session from the primary's snapshots and tails its
// journals every -repl-interval, reads carry X-Replication-Lag-Rev/-Ms
// headers, and POST /admin/promote fences shipping and makes it the new
// primary. See README.md "Replication & degradation".
//
// The TACO_FAULTS environment variable installs a fault-injection plan on
// the file layer (internal/faultfs) for durability drills, e.g.
// TACO_FAULTS="write:.tacoj:enospc:count=1".
//
// With -debug-addr, a second listener serves net/http/pprof under /debug/pprof/
// on its own mux — profiling stays off the public API surface and can bind a
// loopback-only address.
//
// An -addr ending in :0 binds a kernel-chosen free port — the right choice
// for scripts and CI jobs, which otherwise collide on shared runners. The
// actual address is logged, and -port-file writes it (host:port, one line)
// atomically to a path scripts can poll instead of scraping logs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"taco/internal/faultfs"
	"taco/internal/server"
)

func main() {
	// Serving default: trade heap headroom for fewer GC cycles. The session
	// store's pools keep the steady-state allocation rate low, but spill
	// churn still allocates; a 300% target roughly halves GC CPU on
	// eviction-heavy workloads. GOGC in the environment still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}
	addr := flag.String("addr", ":8737", "listen address (use :0 for a kernel-chosen free port)")
	portFile := flag.String("port-file", "", "write the bound host:port to this file once listening (for scripts using -addr :0)")
	shards := flag.Int("shards", 16, "session store shard count")
	maxResident := flag.Int("max-resident", 0, "max in-memory sessions (0 = unlimited)")
	spillDir := flag.String("spill-dir", "", "directory for evicted session snapshots (required with -max-resident and -durable)")
	durable := flag.Bool("durable", false, "journal edits and persist the session registry in -spill-dir; restarts recover every session")
	fsyncPolicy := flag.String("fsync", "interval", "journal fsync policy with -durable: always|interval|never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "background journal flush period with -fsync interval (0 = default 50ms)")
	deltaSnapshots := flag.Bool("delta-snapshots", true, "with -durable: spill value-only edit tails as delta files chained off the base snapshot instead of rewriting it")
	deltaMaxChain := flag.Int("delta-max-chain", 0, "delta chain length that forces compaction into a fresh full base (0 = default 16)")
	recalcPar := flag.Int("recalc-parallelism", 0, "wavefront evaluators per session level (0 = CPUs capped at 8, -1 = serial)")
	recalcWorkers := flag.Int("recalc-workers", 0, "background drain workers pulling sessions off the recalc queue (0 = CPUs, -1 = disable background draining)")
	recalcChunk := flag.Int("recalc-chunk", 0, "evaluations per session-lock hold while draining (0 = default 256); readers interleave between holds")
	recalcPool := flag.Int("recalc-pool", 0, "shared wavefront evaluation pool size (0 = (parallelism-1) x workers, -1 = per-drain goroutines)")
	debugAddr := flag.String("debug-addr", "", "listen address for net/http/pprof (empty = disabled); bind loopback, e.g. 127.0.0.1:6060")
	accessLog := flag.Bool("access-log", false, "log one structured line per request to stderr")
	standby := flag.Bool("standby", false, "run as a warm standby: read-only, tailing -primary-url's journals; POST /admin/promote to take over")
	primaryURL := flag.String("primary-url", "", "primary's base URL with -standby (e.g. http://host:8737)")
	replInterval := flag.Duration("repl-interval", 0, "journal-shipping poll period with -standby (0 = default 100ms)")
	flag.Parse()

	if *standby && *primaryURL == "" {
		fmt.Fprintln(os.Stderr, "tacoserve: -standby requires -primary-url")
		os.Exit(2)
	}
	if installed, err := faultfs.InstallFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "tacoserve: %s: %v\n", faultfs.EnvVar, err)
		os.Exit(2)
	} else if installed {
		log.Printf("tacoserve: fault injection active (%s)", faultfs.EnvVar)
	}

	var al *slog.Logger
	if *accessLog {
		al = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srvOpts := server.Options{
		Store: server.StoreOptions{
			Shards:            *shards,
			MaxResident:       *maxResident,
			SpillDir:          *spillDir,
			RecalcParallelism: *recalcPar,
			RecalcWorkers:     *recalcWorkers,
			RecalcChunk:       *recalcChunk,
			RecalcPoolSize:    *recalcPool,
			Durable:           *durable,
			FsyncPolicy:       *fsyncPolicy,
			FsyncInterval:     *fsyncInterval,
			DeltaSnapshots:    *deltaSnapshots,
			DeltaMaxChain:     *deltaMaxChain,
		},
		AccessLog: al,
	}
	if *standby {
		srvOpts.Standby = server.StandbyOptions{PrimaryURL: *primaryURL, Interval: *replInterval}
	}
	srv, err := server.NewServer(srvOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tacoserve: %v\n", err)
		os.Exit(2)
	}

	if *debugAddr != "" {
		// pprof on its own mux and listener: the default http.ServeMux picks
		// up the net/http/pprof handlers via its init, but mounting them
		// explicitly on a private mux keeps them off the API listener even if
		// something else ever serves DefaultServeMux.
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("tacoserve: pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dm); err != nil {
				log.Printf("tacoserve: pprof listener: %v", err)
			}
		}()
	}

	// Bind before serving: with -addr :0 the kernel picks the port, and the
	// bound address — not the requested one — is what gets logged and written
	// to -port-file. The write is atomic (tmp + rename) so a polling script
	// never reads a half-written line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tacoserve: %v\n", err)
		os.Exit(2)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		tmp := *portFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("tacoserve: port file: %v", err)
		}
		if err := os.Rename(tmp, *portFile); err != nil {
			log.Fatalf("tacoserve: port file: %v", err)
		}
	}

	hs := &http.Server{Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("tacoserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			// Timeout or listener error: in-flight requests were cut off.
			log.Printf("tacoserve: shutdown: %v", err)
		}
		srv.Close() // stop background recalculation workers
	}()

	// Log the effective recalculation configuration (defaults resolved by the
	// store), so a deployment's drain behaviour is readable from its logs.
	eff := srv.Store().Options()
	durability := "off"
	if eff.Durable {
		durability = fmt.Sprintf("fsync=%s interval=%s delta-snapshots=%t recovered=%d",
			*fsyncPolicy, eff.FsyncInterval, eff.DeltaSnapshots, srv.Store().Stats().RecoveredSessions)
	}
	role := "primary"
	if *standby {
		role = "standby of " + *primaryURL
	}
	log.Printf("tacoserve: listening on %s as %s (shards=%d max-resident=%d recalc-workers=%d recalc-parallelism=%d recalc-chunk=%d recalc-pool=%d graph-pin=%t durable=%s)",
		bound, role, eff.Shards, eff.MaxResident, eff.RecalcWorkers, eff.RecalcParallelism,
		eff.RecalcChunk, eff.RecalcPoolSize, !eff.NoGraphPin, durability)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tacoserve: %v", err)
	}
	<-done
}
