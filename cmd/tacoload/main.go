// Command tacoload drives a tacoserve instance with a concurrent,
// scenario-derived workload and reports throughput and latency percentiles.
// It is the serving counterpart of cmd/tacobench: where tacobench measures
// the graph substrate, tacoload measures the whole service — session
// creation, batched edits through live TACO graphs, dependent queries, and
// (when the server runs with -max-resident) spill/restore traffic.
//
// Usage:
//
//	tacoload [-addr http://host:8737] [-inproc] [-sessions 32] [-rows 100]
//	         [-edits 200] [-batch 8] [-read-ratio 0] [-formula-ratio -1]
//	         [-flush-ratio 0] [-scenario mixed] [-seed 1] [-max-resident 0]
//	         [-durable] [-fsync interval] [-replay]
//	         [-recalc-parallelism 0] [-recalc-workers 0]
//	         [-drain-sessions 4] [-drain-fanout 8000] [-drain-span 2000]
//	         [-drain-probes 3] [-metrics-url URL] [-standby-url URL]
//	         [-standby-read-ratio 0.25] [-json] [-cpuprofile FILE]
//
// With -inproc (the default when -addr is empty) the service is hosted
// inside the process on a loopback listener, so a single command produces a
// self-contained benchmark. -json emits the machine-readable report written
// to BENCH_server.json.
//
// -read-ratio mixes value reads into the stream: it is the mean number of
// range reads issued per edit batch (fractional values thin them out), which
// exercises the non-blocking read path — reads return last-computed values
// immediately while background recalculation drains. The report counts how
// many reads observed a session with recalculation still pending.
//
// -formula-ratio makes recalculation pressure a dial: it is the probability
// an edit rewrites a formula cell (graph clear + re-add plus a transitive
// dirty fan-out) instead of the scenario's default 15% share; a
// recalc-heavy mix (0.5+) keeps the background wavefront drains saturated.
// -flush-ratio interleaves read-your-writes barriers (POST .../flush) at
// the given mean rate per batch; their latencies — the time for pending
// recalculation to drain — are reported under latency_ms.flush, next to
// the final per-session flush every run issues.
//
// After the main workload, the drain probe (-drain-*) runs the mixed
// read + giant-drain scenario: dedicated wide-fanout sessions are dirtied
// wholesale and point-read while the store's background workers drain them
// in bounded lock holds. Reads answered with recalculation pending yield
// read_p50_during_drain_ms (how long a reader is blocked by a live drain —
// the per-level lock-release contract measured end to end) and the rounds'
// wall time yields drain_cells_per_sec (cross-session drain throughput on
// the shared evaluation pool). Both are gated by benchdiff.
//
// -replay turns tacoload into a crash-recovery verifier: pointed (with the
// original run's flags) at a server that was killed mid-workload and
// restarted on the same spill directory, it regenerates each load session's
// edit stream, applies exactly the batches the server acknowledged to a
// local engine, and requires every cell to match bit-for-bit. -durable and
// -fsync configure the in-process server's edit journaling, matching
// tacoserve's flags of the same names.
//
// With -standby-url, a warm standby shadows the run: a slice of the read
// traffic (-standby-read-ratio mirrored reads per edit batch) is replayed
// against it, and the lag each read observed — the standby's
// X-Replication-Lag-Rev/-Ms response headers — reports as percentiles under
// "standby", next to the mirrored reads' own latency (latency_ms
// .standby_cells). "inproc" boots the standby in-process, following the
// target server over journal shipping — with -durable, one self-contained
// command benchmarks the replicated configuration. Mirrored reads that
// arrive before the standby has bootstrapped a session count as not_found
// rather than failing the run.
//
// With -metrics-url (a full URL, or a bare path like /metrics resolved
// against the target server), the run is bracketed by two telemetry scrapes
// and the report gains server_metrics: the server's own account of the run —
// drain-hold p50/p99 from inside the session locks, cells evaluated,
// spill/restore traffic, schedule build/resume counts, and the parse cache
// hit rate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/server"
	"taco/internal/stats"
	"taco/internal/telemetry"
	"taco/internal/workload"
)

type config struct {
	Addr         string  `json:"addr,omitempty"`
	InProc       bool    `json:"inproc"`
	Sessions     int     `json:"sessions"`
	Rows         int     `json:"rows"`
	Edits        int     `json:"edits_per_session"`
	Batch        int     `json:"batch_size"`
	ReadRatio    float64 `json:"read_ratio"`
	FormulaRatio float64 `json:"formula_ratio"`
	FlushRatio   float64 `json:"flush_ratio"`
	Scenario     string  `json:"scenario"`
	Seed         int64   `json:"seed"`
	MaxResident  int     `json:"max_resident"`
	// Durability knobs for the in-process server: journal edits (and pay the
	// fsync policy's cost) so the benchmark measures the crash-safe
	// configuration.
	Durable     bool   `json:"durable,omitempty"`
	FsyncPolicy string `json:"fsync,omitempty"`
	// DeltaSnapshots enables base + delta-chain spills on the in-process
	// durable server (tacoserve's -delta-snapshots).
	DeltaSnapshots bool `json:"delta_snapshots,omitempty"`
	// ChurnRounds appends value-only single-edit rounds over every load
	// session after the main workload — with -max-resident below the session
	// count each round is an eviction-churn pass, the shape whose spill
	// write-amplification delta snapshots collapse.
	ChurnRounds int `json:"churn_rounds,omitempty"`
	// ForkStorm forks the first load session this many times after the
	// workload (POST /sessions/{id}/fork), measuring copy-on-write fork
	// latency; children are deleted afterwards.
	ForkStorm int `json:"fork_storm,omitempty"`
	// Recalc knobs for the in-process server (0 = store defaults).
	RecalcParallelism int `json:"recalc_parallelism,omitempty"`
	RecalcWorkers     int `json:"recalc_workers,omitempty"`
	// Drain-probe scenario (see runDrainProbe): sessions × fanout-sized
	// dirty sets per probe round, reads issued against the live drains.
	DrainSessions int `json:"drain_sessions"`
	DrainFanout   int `json:"drain_fanout"`
	DrainSpan     int `json:"drain_span"`
	DrainProbes   int `json:"drain_probes"`
	// MetricsURL is the /metrics endpoint scraped before and after the run
	// for server-side deltas ("" = disabled).
	MetricsURL string `json:"metrics_url,omitempty"`
	// StandbyURL mirrors a fraction of reads to a warm standby ("" =
	// disabled; "inproc" boots one in-process following the target server).
	StandbyURL string `json:"standby_url,omitempty"`
	// StandbyReadRatio is the mean standby reads mirrored per primary read.
	StandbyReadRatio float64 `json:"standby_read_ratio,omitempty"`
}

// report is the machine-readable output schema of -json (and the checked-in
// BENCH_server.json baseline).
type report struct {
	Bench         string                          `json:"bench"`
	Config        config                          `json:"config"`
	ElapsedMs     float64                         `json:"elapsed_ms"`
	Requests      int                             `json:"requests"`
	EditsApplied  int                             `json:"edits_applied"`
	RequestsPerS  float64                         `json:"requests_per_sec"`
	EditsPerS     float64                         `json:"edits_per_sec"`
	Reads         int                             `json:"reads"`
	PendingReads  int                             `json:"pending_reads"`
	Flushes       int                             `json:"flushes"`
	Latency       map[string]stats.LatencySummary `json:"latency_ms"`
	Store         server.StoreStats               `json:"store"`
	DirtyPerBatch float64                         `json:"mean_dirty_cells_per_batch"`
	// Drain-probe series (the mixed read + giant-drain scenario): reads
	// that landed while a wavefront drain was live, their p50, and the
	// cross-session drain throughput. Gated by benchdiff — the p50 is the
	// "a reader is blocked for at most one bounded hold" contract measured
	// end to end.
	ReadsDuringDrain     int     `json:"reads_during_drain"`
	ReadP50DuringDrainMs float64 `json:"read_p50_during_drain_ms"`
	DrainCellsPerSec     float64 `json:"drain_cells_per_sec"`
	// SpillBytesPerEdit is the server's spill traffic over the whole run
	// (taco_store_spill_bytes_total scrape delta, delta files included)
	// divided by the edits applied — the write-amplification figure delta
	// snapshots exist to shrink. Present only with -metrics-url. Gated by
	// benchdiff.
	SpillBytesPerEdit float64 `json:"spill_bytes_per_edit,omitempty"`
	// Fork-storm series (-fork-storm): copy-on-write fork latency. The p50 is
	// gated by benchdiff — it must stay flat as parent sheets grow.
	Forks     int     `json:"forks,omitempty"`
	ForkP50Ms float64 `json:"fork_p50_ms,omitempty"`
	ForkP99Ms float64 `json:"fork_p99_ms,omitempty"`
	// ServerMetrics carries server-side telemetry deltas between a /metrics
	// scrape before the workload and one after the drain probe — the
	// server's own account of the run, next to the client-side percentiles
	// above. Present only with -metrics-url.
	ServerMetrics *serverMetricsDelta `json:"server_metrics,omitempty"`
	// Standby reports the replication view of the run: mirrored-read
	// latency and the lag each mirrored read observed. Present only with
	// -standby-url.
	Standby *standbyReport `json:"standby,omitempty"`
}

// standbyReport summarises the reads mirrored to a warm standby: how far
// behind the standby was (revisions and milliseconds, from its
// X-Replication-Lag-* headers) and how fast it answered. NotFound counts
// mirrored reads that raced session bootstrap (the standby had not created
// the session yet).
type standbyReport struct {
	URL           string               `json:"url"`
	MirroredReads int                  `json:"mirrored_reads"`
	NotFound      int                  `json:"not_found"`
	LagRevsP50    float64              `json:"lag_revs_p50"`
	LagRevsP99    float64              `json:"lag_revs_p99"`
	LagRevsMax    float64              `json:"lag_revs_max"`
	LagMsP50      float64              `json:"lag_ms_p50"`
	LagMsP99      float64              `json:"lag_ms_p99"`
	LagMsMax      float64              `json:"lag_ms_max"`
	ReadLatency   stats.LatencySummary `json:"read_latency_ms"`
}

// serverMetricsDelta is the server's view of one tacoload run, computed as
// the difference of two /metrics scrapes bracketing the workload. The
// client-side latencies in the report include network and JSON costs; these
// come from inside the server's locks and caches.
type serverMetricsDelta struct {
	// Drain-hold histogram over the run: how long session write locks were
	// held per recalculation chunk, the server-side counterpart of the
	// client's read_p50_during_drain_ms.
	DrainHoldP50Ms    float64 `json:"drain_hold_p50_ms"`
	DrainHoldP99Ms    float64 `json:"drain_hold_p99_ms"`
	DrainHoldSamples  uint64  `json:"drain_hold_samples"`
	CellsEvaluated    float64 `json:"cells_evaluated"`
	Evictions         float64 `json:"evictions"`
	SnapshotSkips     float64 `json:"snapshot_skips"`
	SpillBytes        float64 `json:"spill_bytes"`
	DeltaWrites       float64 `json:"delta_writes,omitempty"`
	DeltaBytes        float64 `json:"delta_bytes,omitempty"`
	DeltaCompactions  float64 `json:"delta_compactions,omitempty"`
	Restores          float64 `json:"restores"`
	ScheduleBuilds    float64 `json:"schedule_builds"`
	ScheduleResumes   float64 `json:"schedule_resumes"`
	ParseCacheHitRate float64 `json:"parse_cache_hit_rate"`
}

// scrapeMetrics fetches and parses one /metrics page.
func scrapeMetrics(client *http.Client, url string) (*telemetry.Scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	s, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", url, err)
	}
	return s, nil
}

// metricsDelta reduces two scrapes bracketing the run to the report's
// server-side summary.
func metricsDelta(before, after *telemetry.Scrape) *serverMetricsDelta {
	d := &serverMetricsDelta{}
	counter := func(name string) float64 {
		a, _ := after.Value(name, nil)
		b, _ := before.Value(name, nil)
		return a - b
	}
	d.CellsEvaluated = counter("taco_engine_cells_evaluated_total")
	d.Evictions = counter("taco_store_evictions_total")
	d.SnapshotSkips = counter("taco_store_snapshot_skips_total")
	d.SpillBytes = counter("taco_store_spill_bytes_total")
	d.DeltaWrites = counter("taco_snap_delta_writes_total")
	d.DeltaBytes = counter("taco_snap_delta_bytes_total")
	d.DeltaCompactions = counter("taco_snap_delta_compactions_total")
	d.Restores = counter("taco_store_restores_total")
	d.ScheduleBuilds = counter("taco_sched_builds_total")
	d.ScheduleResumes = counter("taco_sched_resumes_total")
	hits := counter("taco_parse_cache_hits_total")
	misses := counter("taco_parse_cache_misses_total")
	if hits+misses > 0 {
		d.ParseCacheHitRate = hits / (hits + misses)
	}
	// Histogram delta: per-bucket counts over the run, quantiles estimated
	// from the differenced buckets.
	bounds, cAfter, _, _, okA := after.Histogram("taco_store_drain_hold_seconds")
	bBounds, cBefore, _, _, okB := before.Histogram("taco_store_drain_hold_seconds")
	if okA {
		diff := make([]uint64, len(cAfter))
		copy(diff, cAfter)
		if okB && len(cBefore) == len(cAfter) && len(bBounds) == len(bounds) {
			for i := range diff {
				diff[i] -= cBefore[i]
			}
		}
		for _, c := range diff {
			d.DrainHoldSamples += c
		}
		d.DrainHoldP50Ms = telemetry.Quantile(bounds, diff, 0.50) * 1000
		d.DrainHoldP99Ms = telemetry.Quantile(bounds, diff, 0.99) * 1000
	}
	return d
}

func main() {
	addr := flag.String("addr", "", "target server base URL (empty: host in-process)")
	inproc := flag.Bool("inproc", false, "host the server in-process on a loopback listener")
	sessions := flag.Int("sessions", 32, "concurrent sessions")
	rows := flag.Int("rows", 100, "scenario size per session")
	edits := flag.Int("edits", 200, "edits per session")
	batch := flag.Int("batch", 8, "edits per batch request")
	readRatio := flag.Float64("read-ratio", 0, "mean range reads per edit batch (read-heavy mixes exercise the non-blocking read path)")
	formulaRatio := flag.Float64("formula-ratio", -1, "probability an edit rewrites a formula cell (-1 = scenario default 0.15; higher = recalc-heavy)")
	flushRatio := flag.Float64("flush-ratio", 0, "mean read-your-writes flush barriers per edit batch (their drain latency reports as latency_ms.flush)")
	scenario := flag.String("scenario", "mixed", "workload scenario: financial|inventory|gradebook|planning|mixed")
	seed := flag.Int64("seed", 1, "workload seed")
	maxResident := flag.Int("max-resident", 0, "in-process server only: session cap forcing spill traffic")
	durable := flag.Bool("durable", false, "in-process server only: journal edits and persist the session registry (crash-safe configuration)")
	fsyncPolicy := flag.String("fsync", "interval", "in-process server only: journal fsync policy with -durable: always|interval|never")
	deltaSnapshots := flag.Bool("delta-snapshots", true, "in-process server only: spill value-only edit tails as delta files chained off the base snapshot")
	churnRounds := flag.Int("churn-rounds", 0, "after the workload, this many round-robin rounds of one value edit per session (with -max-resident below -sessions: pure eviction churn, the delta-snapshot target shape)")
	forkStorm := flag.Int("fork-storm", 0, "after the workload, fork the first load session this many times and report fork latency percentiles (needs -durable in-process)")
	replay := flag.Bool("replay", false, "crash-recovery verification: rediscover this workload's loadN sessions on the target server, regenerate their edit streams from the same flags, and require every cell to match a never-crashed local replay")
	recalcPar := flag.Int("recalc-parallelism", 0, "in-process server only: wavefront evaluators per level (0 = auto, -1 = serial)")
	recalcWorkers := flag.Int("recalc-workers", 0, "in-process server only: background drain workers (0 = auto)")
	drainSessions := flag.Int("drain-sessions", 4, "drain probe: concurrent giant-drain sessions")
	drainFanout := flag.Int("drain-fanout", 8000, "drain probe: formulas dirtied per session per probe")
	drainSpan := flag.Int("drain-span", 2000, "drain probe: rows each probe formula aggregates over")
	drainProbes := flag.Int("drain-probes", 3, "drain probe: edit rounds (0 disables the probe)")
	metricsURL := flag.String("metrics-url", "", "scrape this /metrics endpoint before and after the run and report server-side deltas (a bare path like /metrics resolves against the target server)")
	standbyURL := flag.String("standby-url", "", "mirror reads to a warm standby at this base URL and report replication lag percentiles (\"inproc\" boots one in-process following the target server)")
	standbyReadRatio := flag.Float64("standby-read-ratio", 0.25, "mean standby reads mirrored per edit batch with -standby-url")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *sessions < 1 || *rows < 1 || *edits < 1 || *batch < 1 {
		fmt.Fprintln(os.Stderr, "tacoload: -sessions, -rows, -edits, and -batch must all be >= 1")
		os.Exit(2)
	}
	if *readRatio < 0 || *flushRatio < 0 {
		fmt.Fprintln(os.Stderr, "tacoload: -read-ratio and -flush-ratio must be >= 0")
		os.Exit(2)
	}
	if *formulaRatio > 1 {
		fmt.Fprintln(os.Stderr, "tacoload: -formula-ratio must be <= 1")
		os.Exit(2)
	}
	if *drainProbes > 0 && (*drainSessions < 1 || *drainFanout < 1 || *drainSpan < 1) {
		fmt.Fprintln(os.Stderr, "tacoload: -drain-sessions, -drain-fanout, and -drain-span must all be >= 1")
		os.Exit(2)
	}
	if *standbyReadRatio < 0 {
		fmt.Fprintln(os.Stderr, "tacoload: -standby-read-ratio must be >= 0")
		os.Exit(2)
	}
	if *churnRounds < 0 || *forkStorm < 0 {
		fmt.Fprintln(os.Stderr, "tacoload: -churn-rounds and -fork-storm must be >= 0")
		os.Exit(2)
	}
	if *forkStorm > 0 && (*addr == "" || *inproc) && !*durable {
		// Fork is a registry operation: the in-process server needs -durable.
		fmt.Fprintln(os.Stderr, "tacoload: -fork-storm needs -durable")
		os.Exit(2)
	}
	if *standbyURL == "inproc" && (*addr == "" || *inproc) && !*durable {
		// Journal shipping needs a journaling primary: without -durable the
		// in-process server has no journals to tail.
		fmt.Fprintln(os.Stderr, "tacoload: -standby-url inproc needs -durable")
		os.Exit(2)
	}
	cfg := config{
		Addr: *addr, InProc: *addr == "" || *inproc, Sessions: *sessions, Rows: *rows,
		Edits: *edits, Batch: *batch, ReadRatio: *readRatio, FormulaRatio: *formulaRatio,
		FlushRatio: *flushRatio, Scenario: *scenario,
		Seed: *seed, MaxResident: *maxResident,
		Durable: *durable, FsyncPolicy: *fsyncPolicy, DeltaSnapshots: *deltaSnapshots,
		ChurnRounds: *churnRounds, ForkStorm: *forkStorm,
		RecalcParallelism: *recalcPar, RecalcWorkers: *recalcWorkers,
		DrainSessions: *drainSessions, DrainFanout: *drainFanout,
		DrainSpan: *drainSpan, DrainProbes: *drainProbes,
		MetricsURL: *metricsURL,
		StandbyURL: *standbyURL, StandbyReadRatio: *standbyReadRatio,
	}
	if *replay {
		if *addr == "" {
			fmt.Fprintln(os.Stderr, "tacoload: -replay needs -addr pointing at the restarted server")
			os.Exit(2)
		}
		if err := runReplay(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "tacoload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tacoload: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tacoload: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	printReport(rep)
}

func run(cfg config) (*report, error) {
	base := cfg.Addr
	// The default transport keeps only two idle connections per host, so a
	// wide driver would churn TCP connections instead of measuring the
	// server. Keep one warm connection per session worker.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = cfg.Sessions + 8
	tr.MaxIdleConnsPerHost = cfg.Sessions + 8
	client := &http.Client{Transport: tr}
	if cfg.InProc {
		// Match tacoserve's serving-process GC target so the in-process
		// benchmark measures the same configuration production runs.
		if os.Getenv("GOGC") == "" {
			debug.SetGCPercent(300)
		}
		spill, err := os.MkdirTemp("", "tacoload-spill")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(spill)
		srv, err := server.NewServer(server.Options{Store: server.StoreOptions{
			MaxResident: cfg.MaxResident, SpillDir: spill,
			Durable: cfg.Durable, FsyncPolicy: cfg.FsyncPolicy,
			DeltaSnapshots:    cfg.DeltaSnapshots,
			RecalcParallelism: cfg.RecalcParallelism, RecalcWorkers: cfg.RecalcWorkers,
		}})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	// A warm standby mirrors a slice of the read traffic. -standby-url names
	// a running standby, or "inproc" boots one in-process following the
	// target server — the form the CI bench uses, so one self-contained
	// command measures the durable+shipping configuration end to end.
	standbyBase := cfg.StandbyURL
	if standbyBase == "inproc" {
		sbySpill, err := os.MkdirTemp("", "tacoload-standby")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(sbySpill)
		sby, err := server.NewServer(server.Options{
			Store:   server.StoreOptions{SpillDir: sbySpill, Durable: true, FsyncPolicy: cfg.FsyncPolicy, DeltaSnapshots: cfg.DeltaSnapshots},
			Standby: server.StandbyOptions{PrimaryURL: base, Interval: 0},
		})
		if err != nil {
			return nil, fmt.Errorf("standby: %w", err)
		}
		defer sby.Close()
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		shs := &http.Server{Handler: sby}
		go shs.Serve(sln)
		defer shs.Close()
		standbyBase = "http://" + sln.Addr().String()
	}

	// Bracket the run with /metrics scrapes when asked. A bare path resolves
	// against the target server (in-process included).
	metricsURL := cfg.MetricsURL
	if metricsURL != "" && !strings.Contains(metricsURL, "://") {
		metricsURL = base + "/" + strings.TrimPrefix(metricsURL, "/")
	}
	var metricsBefore *telemetry.Scrape
	if metricsURL != "" {
		var err error
		if metricsBefore, err = scrapeMetrics(client, metricsURL); err != nil {
			return nil, fmt.Errorf("metrics scrape: %w", err)
		}
	}

	scenarios := []string{cfg.Scenario}
	if cfg.Scenario == "mixed" {
		scenarios = workload.ScenarioNames
	}

	type sample struct {
		kind string
		ms   float64
	}
	var mu sync.Mutex
	var samples []sample
	editsApplied := 0
	dirtyTotal, batches := 0, 0
	reads, pendingReads := 0, 0
	flushes := 0
	record := func(kind string, start time.Time) {
		mu.Lock()
		samples = append(samples, sample{kind, float64(time.Since(start).Microseconds()) / 1000})
		mu.Unlock()
	}
	// Replication lag observed by mirrored standby reads, from the
	// X-Replication-Lag-* response headers. notFound counts reads that raced
	// the standby's session bootstrap.
	var sbyLagRevs, sbyLagMs []float64
	sbyNotFound := 0

	begin := time.Now()
	var wg sync.WaitGroup
	// Session IDs by worker index, for the churn and fork phases after the
	// workload. Each worker writes only its own slot; wg.Wait publishes them.
	ids := make([]string, cfg.Sessions)
	errc := make(chan error, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scen := scenarios[i%len(scenarios)]
			seed := cfg.Seed + int64(i)
			// Create the session from a generated scenario (bulk path).
			start := time.Now()
			var info server.SessionInfo
			if err := call(client, "POST", base+"/sessions",
				server.CreateRequest{Name: fmt.Sprintf("load%d", i), Scenario: scen, Rows: cfg.Rows, Seed: seed},
				&info); err != nil {
				errc <- fmt.Errorf("session %d create: %w", i, err)
				return
			}
			record("create", start)
			ids[i] = info.ID

			// The same sheet, regenerated locally, scripts the edit stream.
			sheet, err := workload.BuildScenario(scen, cfg.Rows, rand.New(rand.NewSource(seed)))
			if err != nil {
				errc <- err
				return
			}
			rng := rand.New(rand.NewSource(seed + 10000))
			stream := workload.EditStreamMix(sheet, cfg.Edits, rng, cfg.FormulaRatio)
			queries := workload.QueryStream(sheet, cfg.Edits/cfg.Batch+1, rng)

			// flush issues one read-your-writes barrier: its latency is the
			// time for the session's pending recalculation to drain.
			flush := func() error {
				start := time.Now()
				if err := call(client, "POST", base+"/sessions/"+info.ID+"/flush", nil, nil); err != nil {
					return err
				}
				record("flush", start)
				mu.Lock()
				flushes++
				mu.Unlock()
				return nil
			}

			// readCells issues one range read and tallies whether the session
			// still had recalculation pending when it answered.
			readCells := func(rangeA1 string) error {
				start := time.Now()
				var cr server.CellsResult
				if err := call(client, "GET", base+"/sessions/"+info.ID+"/cells?range="+rangeA1, nil, &cr); err != nil {
					return err
				}
				record("cells", start)
				mu.Lock()
				reads++
				if cr.Pending > 0 {
					pendingReads++
				}
				mu.Unlock()
				return nil
			}

			// mirrorRead issues the same range read against the standby and
			// samples the replication lag it observed. call() hides response
			// headers, so this is a raw request.
			mirrorRead := func(rangeA1 string) error {
				start := time.Now()
				resp, err := client.Get(standbyBase + "/sessions/" + info.ID + "/cells?range=" + rangeA1)
				if err != nil {
					return err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound {
					// The standby has not bootstrapped this session yet —
					// expected early in the run, counted rather than fatal.
					mu.Lock()
					sbyNotFound++
					mu.Unlock()
					return nil
				}
				if resp.StatusCode >= 300 {
					return fmt.Errorf("status %d", resp.StatusCode)
				}
				record("standby_cells", start)
				lagRev, _ := strconv.ParseFloat(resp.Header.Get("X-Replication-Lag-Rev"), 64)
				lagMs, _ := strconv.ParseFloat(resp.Header.Get("X-Replication-Lag-Ms"), 64)
				mu.Lock()
				sbyLagRevs = append(sbyLagRevs, lagRev)
				sbyLagMs = append(sbyLagMs, lagMs)
				mu.Unlock()
				return nil
			}

			readsDue, flushDue, mirrorDue := 0.0, 0.0, 0.0
			for b := 0; b*cfg.Batch < len(stream); b++ {
				lo := b * cfg.Batch
				hi := min(lo+cfg.Batch, len(stream))
				eb := server.EditBatch{}
				for _, e := range stream[lo:hi] {
					op := server.EditOp{Cell: ref.FormatA1(e.At)}
					switch e.Kind {
					case workload.EditValue:
						v := e.Value
						op.Value = &v
					case workload.EditFormula:
						f := e.Formula
						op.Formula = &f
					case workload.EditClear:
						op.Clear = true
					}
					eb.Edits = append(eb.Edits, op)
				}
				start := time.Now()
				var res server.EditResult
				if err := call(client, "POST", base+"/sessions/"+info.ID+"/edits", eb, &res); err != nil {
					errc <- fmt.Errorf("session %d batch %d: %w", i, b, err)
					return
				}
				record("edits", start)
				mu.Lock()
				editsApplied += res.Applied
				dirtyTotal += res.DirtyCells
				batches++
				mu.Unlock()

				// Read-heavy mixes: non-blocking range reads right behind the
				// edits, while background recalculation may still be
				// draining (the report counts how many observed that).
				for readsDue += cfg.ReadRatio; readsDue >= 1; readsDue-- {
					row := 1 + rng.Intn(cfg.Rows)
					rangeA1 := fmt.Sprintf("A%d:H%d", row, row+9)
					if err := readCells(rangeA1); err != nil {
						errc <- fmt.Errorf("session %d read: %w", i, err)
						return
					}
				}

				// Mirror a slice of the read traffic to the warm standby,
				// sampling how far behind the primary it answers.
				if standbyBase != "" {
					for mirrorDue += cfg.StandbyReadRatio; mirrorDue >= 1; mirrorDue-- {
						row := 1 + rng.Intn(cfg.Rows)
						if err := mirrorRead(fmt.Sprintf("A%d:H%d", row, row+9)); err != nil {
							errc <- fmt.Errorf("session %d standby read: %w", i, err)
							return
						}
					}
				}

				// Recalc-heavy mixes: read-your-writes barriers whose
				// latency is the pending drain, reported as latency_ms.flush.
				for flushDue += cfg.FlushRatio; flushDue >= 1; flushDue-- {
					if err := flush(); err != nil {
						errc <- fmt.Errorf("session %d flush: %w", i, err)
						return
					}
				}

				// Interleave a dependents query — the TACO headline op.
				q := queries[b%len(queries)]
				start = time.Now()
				if err := call(client, "GET", base+"/sessions/"+info.ID+"/dependents?of="+q.String(), nil, nil); err != nil {
					errc <- fmt.Errorf("session %d query: %w", i, err)
					return
				}
				record("dependents", start)
			}

			// Every session ends with one barrier plus a range read, so the
			// flush percentiles are populated even at -flush-ratio 0.
			if err := flush(); err != nil {
				errc <- fmt.Errorf("session %d flush: %w", i, err)
				return
			}
			if err := readCells("A1:H10"); err != nil {
				errc <- fmt.Errorf("session %d read: %w", i, err)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}
	elapsed := time.Since(begin)
	mainRequests := len(samples) // probe samples below must not inflate req/s
	mainEdits := editsApplied    // churn edits below must not inflate edits/s

	// Eviction-churn rounds: one value edit per session, round-robin. With
	// -max-resident below -sessions every touch faults a cold session in and
	// evicts another whose journal tail since its snapshot is a single value
	// edit — the shape delta snapshots collapse from O(sheet) to O(edit)
	// spill bytes. Serial on purpose: interleaving across sessions defeats
	// LRU reuse and maximizes churn.
	if cfg.ChurnRounds > 0 {
		for r := 0; r < cfg.ChurnRounds; r++ {
			for i, id := range ids {
				v := float64(r*len(ids) + i)
				eb := server.EditBatch{Edits: []server.EditOp{{Cell: "A1", Value: &v}}}
				start := time.Now()
				var res server.EditResult
				if err := call(client, "POST", base+"/sessions/"+id+"/edits", eb, &res); err != nil {
					return nil, fmt.Errorf("churn round %d session %d: %w", r, i, err)
				}
				record("churn_edits", start)
				editsApplied += res.Applied
			}
		}
	}

	// Fork storm: repeated copy-on-write forks of the first load session.
	// Children are deleted immediately — the probe measures fork latency and
	// the refcounted release of shared base/delta artifacts, not store growth.
	if cfg.ForkStorm > 0 {
		parent := ids[0]
		for n := 0; n < cfg.ForkStorm; n++ {
			start := time.Now()
			var child server.SessionInfo
			if err := call(client, "POST", base+"/sessions/"+parent+"/fork",
				server.ForkRequest{Name: fmt.Sprintf("storm%d", n)}, &child); err != nil {
				return nil, fmt.Errorf("fork %d: %w", n, err)
			}
			record("fork", start)
			if err := call(client, "DELETE", base+"/sessions/"+child.ID, nil, nil); err != nil {
				return nil, fmt.Errorf("fork %d delete: %w", n, err)
			}
		}
	}

	// The mixed read + giant-drain probe: dedicated wide-fanout sessions,
	// dirtied wholesale and read while the background drain runs.
	var probe drainResult
	if cfg.DrainProbes > 0 {
		var err error
		probe, err = runDrainProbe(client, base, cfg, record)
		if err != nil {
			return nil, err
		}
	}

	var st server.StoreStats
	if err := call(client, "GET", base+"/stats", nil, &st); err != nil {
		return nil, err
	}

	byKind := map[string][]float64{}
	for _, s := range samples {
		byKind[s.kind] = append(byKind[s.kind], s.ms)
	}
	lat := make(map[string]stats.LatencySummary, len(byKind))
	for k, v := range byKind {
		lat[k] = stats.Summarize(v)
	}
	rep := &report{
		Bench:                "server",
		Config:               cfg,
		ElapsedMs:            float64(elapsed.Microseconds()) / 1000,
		Requests:             mainRequests,
		EditsApplied:         mainEdits,
		RequestsPerS:         float64(mainRequests) / elapsed.Seconds(),
		EditsPerS:            float64(mainEdits) / elapsed.Seconds(),
		Reads:                reads,
		PendingReads:         pendingReads,
		Flushes:              flushes,
		Latency:              lat,
		Store:                st,
		ReadsDuringDrain:     probe.reads,
		ReadP50DuringDrainMs: probe.p50,
		DrainCellsPerSec:     probe.cellsPerSec,
	}
	if batches > 0 {
		rep.DirtyPerBatch = float64(dirtyTotal) / float64(batches)
	}
	if standbyBase != "" {
		sr := &standbyReport{URL: standbyBase, MirroredReads: len(sbyLagRevs), NotFound: sbyNotFound}
		sr.ReadLatency = lat["standby_cells"]
		if len(sbyLagRevs) > 0 {
			// Summarize names its fields in ms; for the rev series only the
			// percentile arithmetic is borrowed.
			rev, ms := stats.Summarize(sbyLagRevs), stats.Summarize(sbyLagMs)
			sr.LagRevsP50, sr.LagRevsP99, sr.LagRevsMax = rev.P50Ms, rev.P99Ms, rev.MaxMs
			sr.LagMsP50, sr.LagMsP99, sr.LagMsMax = ms.P50Ms, ms.P99Ms, ms.MaxMs
		}
		rep.Standby = sr
	}
	if cfg.ForkStorm > 0 {
		fs := lat["fork"]
		rep.Forks = cfg.ForkStorm
		rep.ForkP50Ms, rep.ForkP99Ms = fs.P50Ms, fs.P99Ms
	}
	if metricsBefore != nil {
		after, err := scrapeMetrics(client, metricsURL)
		if err != nil {
			return nil, fmt.Errorf("metrics scrape: %w", err)
		}
		rep.ServerMetrics = metricsDelta(metricsBefore, after)
		// Write amplification over every edit the server journaled, churn
		// included — the spill traffic in the numerator covers the whole run.
		if editsApplied > 0 {
			rep.SpillBytesPerEdit = rep.ServerMetrics.SpillBytes / float64(editsApplied)
		}
	}
	return rep, nil
}

// drainResult is the drain probe's measurement.
type drainResult struct {
	reads       int     // reads that observed a live drain
	p50         float64 // their p50 latency, ms
	cellsPerSec float64 // cross-session drain throughput
}

// runDrainProbe measures the serving layer's two drain-path properties that
// the main workload's small dirty sets cannot: how long a reader is blocked
// when it lands mid-way through a giant wavefront drain (the per-level lock
// release contract, measured end to end as read latency), and how fast the
// store's shared pool drains several sessions' giant dirty sets at once
// (cross-session drain throughput). It builds DrainSessions wide-fanout
// sessions — DrainFanout formulas, each a SUMSQ over a DrainSpan-cell
// column; SUMSQ streams per cell rather than taking the batched SUM fold,
// so the drain exercises evaluator throughput — then, per probe round,
// dirties every session with one edit and polls point reads round-robin
// across them until every drain settles. Reads answered with recalculation
// still pending are the "reader issued mid-drain" samples.
func runDrainProbe(client *http.Client, base string, cfg config, record func(string, time.Time)) (drainResult, error) {
	var out drainResult
	ids := make([]string, cfg.DrainSessions)
	for i := range ids {
		var info server.SessionInfo
		if err := call(client, "POST", base+"/sessions",
			server.CreateRequest{Name: fmt.Sprintf("drainprobe%d", i)}, &info); err != nil {
			return out, err
		}
		ids[i] = info.ID
		eb := server.EditBatch{}
		for r := 1; r <= cfg.DrainSpan; r++ {
			v := float64(r) / 3
			eb.Edits = append(eb.Edits, server.EditOp{Cell: ref.FormatA1(ref.Ref{Col: 1, Row: r}), Value: &v})
		}
		src := fmt.Sprintf("SUMSQ(A$1:A$%d)*2", cfg.DrainSpan)
		for r := 1; r <= cfg.DrainFanout; r++ {
			f := src
			eb.Edits = append(eb.Edits, server.EditOp{Cell: ref.FormatA1(ref.Ref{Col: 2, Row: r}), Formula: &f})
		}
		if err := call(client, "POST", base+"/sessions/"+ids[i]+"/edits?wait=1", eb, nil); err != nil {
			return out, fmt.Errorf("drain probe setup: %w", err)
		}
	}

	var lats []float64
	var drainTime time.Duration
	for p := 0; p < cfg.DrainProbes; p++ {
		t0 := time.Now()
		for _, id := range ids {
			v := float64(p + 7)
			eb := server.EditBatch{Edits: []server.EditOp{{Cell: "A1", Value: &v}}}
			if err := call(client, "POST", base+"/sessions/"+id+"/edits", eb, nil); err != nil {
				return out, err
			}
		}
		pending := make(map[string]bool, len(ids))
		for _, id := range ids {
			pending[id] = true
		}
		for polls := 0; len(pending) > 0; polls++ {
			if polls > 100000 {
				return out, fmt.Errorf("drain probe: %d sessions never settled", len(pending))
			}
			for _, id := range ids {
				if !pending[id] {
					continue
				}
				start := time.Now()
				var cr server.CellsResult
				if err := call(client, "GET", base+"/sessions/"+id+"/cells?at=B42", nil, &cr); err != nil {
					return out, err
				}
				if cr.Pending == 0 {
					delete(pending, id)
					continue
				}
				record("read_during_drain", start)
				lats = append(lats, float64(time.Since(start).Microseconds())/1000)
			}
		}
		drainTime += time.Since(t0)
	}
	out.reads = len(lats)
	if len(lats) > 0 {
		out.p50 = stats.Summarize(lats).P50Ms
	}
	if sec := drainTime.Seconds(); sec > 0 {
		out.cellsPerSec = float64(cfg.DrainProbes*cfg.DrainSessions*cfg.DrainFanout) / sec
	}
	for _, id := range ids {
		if err := call(client, "DELETE", base+"/sessions/"+id, nil, nil); err != nil {
			return out, err
		}
	}
	return out, nil
}

// runReplay is the crash-recovery verifier (-replay): it lists the target
// server's sessions, matches the loadN sessions this workload's flags would
// have created, regenerates each one's scenario and edit stream from the
// same seeds, applies exactly the batches the server acknowledged (its rev)
// to a local serial engine, and requires every cell the workload could have
// touched to match bit-for-bit. Run it against a server that was SIGKILLed
// mid-stream and restarted on the same spill dir: it proves each journaled
// batch replayed and reconverged to the never-crashed result.
func runReplay(cfg config) error {
	client := &http.Client{}
	base := cfg.Addr
	var sessions []server.SessionInfo
	if err := call(client, "GET", base+"/sessions", nil, &sessions); err != nil {
		return err
	}
	scenarios := []string{cfg.Scenario}
	if cfg.Scenario == "mixed" {
		scenarios = workload.ScenarioNames
	}
	verified, cellsChecked := 0, 0
	for _, si := range sessions {
		var idx int
		if n, err := fmt.Sscanf(si.Name, "load%d", &idx); n != 1 || err != nil {
			continue
		}
		scen := scenarios[idx%len(scenarios)]
		seed := cfg.Seed + int64(idx)
		sheet, err := workload.BuildScenario(scen, cfg.Rows, rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		eng, err := engine.LoadBulk(sheet)
		if err != nil {
			return err
		}
		stream := workload.EditStreamMix(sheet, cfg.Edits, rand.New(rand.NewSource(seed+10000)), cfg.FormulaRatio)
		batches := (len(stream) + cfg.Batch - 1) / cfg.Batch
		if int(si.Rev) > batches {
			return fmt.Errorf("session %s: server rev %d exceeds the %d batches these flags generate — rerun -replay with the original workload's flags",
				si.Name, si.Rev, batches)
		}
		// The server acknowledged exactly si.Rev batches; apply the same
		// prefix locally. Every op is an absolute assignment, mirroring the
		// HTTP handler's applyBatch.
		touched := map[ref.Ref]struct{}{{Col: 1, Row: 1}: {}}
		for at := range sheet.Cells {
			touched[at] = struct{}{}
		}
		for b := 0; b < int(si.Rev); b++ {
			lo := b * cfg.Batch
			hi := min(lo+cfg.Batch, len(stream))
			for _, e := range stream[lo:hi] {
				touched[e.At] = struct{}{}
				switch e.Kind {
				case workload.EditValue:
					eng.SetValue(e.At, formula.Num(e.Value))
				case workload.EditFormula:
					if _, err := eng.SetFormula(e.At, e.Formula); err != nil {
						return fmt.Errorf("session %s batch %d: %w", si.Name, b, err)
					}
				case workload.EditClear:
					eng.ClearCell(e.At)
				}
			}
		}
		eng.RecalculateAll()
		// Barrier first so the server's replayed cells have drained, then
		// compare cell by cell.
		if err := call(client, "POST", base+"/sessions/"+si.ID+"/flush", nil, nil); err != nil {
			return fmt.Errorf("session %s flush: %w", si.Name, err)
		}
		for at := range touched {
			var cr server.CellsResult
			if err := call(client, "GET", base+"/sessions/"+si.ID+"/cells?at="+ref.FormatA1(at), nil, &cr); err != nil {
				return fmt.Errorf("session %s read %s: %w", si.Name, ref.FormatA1(at), err)
			}
			var got server.CellOut
			if len(cr.Cells) > 0 {
				got = cr.Cells[0]
			}
			if err := compareCell(at, got, eng.Value(at)); err != nil {
				return fmt.Errorf("session %s (%s) at rev %d: %w", si.Name, si.ID, si.Rev, err)
			}
			cellsChecked++
		}
		verified++
	}
	if verified == 0 {
		return fmt.Errorf("no load* sessions found on %s — nothing to verify (wrong server, or recovery lost the registry)", base)
	}
	fmt.Printf("tacoload: replay verified %d sessions, %d cells identical to a never-crashed run\n", verified, cellsChecked)
	return nil
}

// compareCell requires the server's answer for one cell to equal the local
// replay's value exactly (numbers compared by bit pattern; JSON round-trips
// float64 losslessly).
func compareCell(at ref.Ref, got server.CellOut, want formula.Value) error {
	ok := false
	switch want.Kind {
	case formula.KindEmpty:
		ok = got.Kind == "" || got.Kind == "empty"
	case formula.KindNumber:
		ok = got.Kind == "number" && math.Float64bits(got.Num) == math.Float64bits(want.Num)
	case formula.KindString:
		ok = got.Kind == "string" && got.Str == want.Str
	case formula.KindBool:
		ok = got.Kind == "bool" && got.Bool == want.Bool
	case formula.KindError:
		ok = got.Kind == "error" && got.Error == want.Err
	}
	if !ok {
		return fmt.Errorf("cell %s diverged: server {kind=%s num=%v str=%q bool=%v err=%q}, replay %v",
			ref.FormatA1(at), got.Kind, got.Num, got.Str, got.Bool, got.Error, want)
	}
	return nil
}

// call performs one JSON request; non-2xx responses become errors carrying
// the server's error body.
func call(client *http.Client, method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func printReport(r *report) {
	fmt.Printf("tacoload: %d sessions x %d edits (batch %d, scenario %s)\n",
		r.Config.Sessions, r.Config.Edits, r.Config.Batch, r.Config.Scenario)
	fmt.Printf("elapsed %.1fms  |  %d requests (%.0f req/s)  |  %d edits (%.0f edits/s)  |  mean dirty/batch %.1f\n\n",
		r.ElapsedMs, r.Requests, r.RequestsPerS, r.EditsApplied, r.EditsPerS, r.DirtyPerBatch)
	tbl := stats.NewTable("op", "count", "mean", "p50", "p90", "p99", "max")
	for _, k := range []string{"create", "edits", "churn_edits", "fork", "dependents", "cells", "standby_cells", "flush", "read_during_drain"} {
		s, ok := r.Latency[k]
		if !ok {
			continue
		}
		tbl.AddRow(k, s.Count, fmtMs(s.MeanMs), fmtMs(s.P50Ms), fmtMs(s.P90Ms), fmtMs(s.P99Ms), fmtMs(s.MaxMs))
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nreads: %d (%d answered with recalculation pending)  |  flush barriers: %d\n", r.Reads, r.PendingReads, r.Flushes)
	if r.Config.DrainProbes > 0 {
		fmt.Printf("drain probe: %d mid-drain reads (p50 %.3fms)  |  %.0f cells/s across %d sessions\n",
			r.ReadsDuringDrain, r.ReadP50DuringDrainMs, r.DrainCellsPerSec, r.Config.DrainSessions)
	}
	if sb := r.Standby; sb != nil {
		fmt.Printf("standby: %d mirrored reads (%d before bootstrap)  |  lag p50 %.0f revs / %.0fms  p99 %.0f revs / %.0fms  max %.0f revs / %.0fms\n",
			sb.MirroredReads, sb.NotFound, sb.LagRevsP50, sb.LagMsP50,
			sb.LagRevsP99, sb.LagMsP99, sb.LagRevsMax, sb.LagMsMax)
	}
	fmt.Printf("store: %d sessions (%d resident, %d spilled), %d evictions (%d snapshot writes skipped), %d restores, %d background recalcs\n",
		r.Store.Sessions, r.Store.Resident, r.Store.Spilled, r.Store.Evictions, r.Store.SnapSkips, r.Store.Restores, r.Store.Recalcs)
	if sm := r.ServerMetrics; sm != nil {
		fmt.Printf("server metrics: drain hold p50 %.3fms p99 %.3fms (%d holds)  |  %.0f cells evaluated  |  parse cache hit rate %.1f%%\n",
			sm.DrainHoldP50Ms, sm.DrainHoldP99Ms, sm.DrainHoldSamples, sm.CellsEvaluated, sm.ParseCacheHitRate*100)
		fmt.Printf("                %.0f evictions (%.0f snapshot skips, %.0f spill bytes), %.0f restores  |  %.0f schedule builds, %.0f resumes\n",
			sm.Evictions, sm.SnapshotSkips, sm.SpillBytes, sm.Restores, sm.ScheduleBuilds, sm.ScheduleResumes)
		if sm.DeltaWrites > 0 || r.Config.DeltaSnapshots {
			fmt.Printf("                %.0f delta spills (%.0f bytes, %.0f compactions)  |  %.2f spill bytes/edit\n",
				sm.DeltaWrites, sm.DeltaBytes, sm.DeltaCompactions, r.SpillBytesPerEdit)
		}
	}
	if r.Forks > 0 {
		fmt.Printf("fork storm: %d forks  |  p50 %.3fms  p99 %.3fms\n", r.Forks, r.ForkP50Ms, r.ForkP99Ms)
	}
}

func fmtMs(v float64) string { return fmt.Sprintf("%.3fms", v) }
