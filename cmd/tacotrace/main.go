// Command tacotrace loads an .xlsx workbook and traces the dependents or
// precedents of a cell or range directly on the TACO-compressed formula
// graph — the third-party dependency-audit use case of Sec. VI-A (the
// "TACO Lens" style tool).
//
// Usage:
//
//	tacotrace -file book.xlsx [-sheet 0] -cell B2 [-precedents] [-stats]
//
// With -stats it also prints compression statistics for every sheet.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"taco"
	"taco/internal/core"
	"taco/internal/stats"
)

func main() {
	file := flag.String("file", "", "xlsx file to load (required)")
	sheetIdx := flag.Int("sheet", 0, "sheet index")
	cell := flag.String("cell", "", "cell or range to trace, e.g. B2 or A1:A10")
	precedents := flag.Bool("precedents", false, "trace precedents instead of dependents")
	showStats := flag.Bool("stats", false, "print per-sheet compression statistics")
	saveSnap := flag.String("save-graph", "", "write the compressed graph snapshot of the selected sheet to this file")
	flag.Parse()

	if *file == "" {
		fmt.Fprintln(os.Stderr, "tacotrace: -file is required")
		flag.Usage()
		os.Exit(2)
	}
	sheets, err := taco.ReadXLSX(*file)
	if err != nil {
		fatal(err)
	}
	if len(sheets) == 0 {
		fatal(fmt.Errorf("no sheets in %s", *file))
	}

	if *showStats {
		t := stats.NewTable("Sheet", "Cells", "Deps", "Edges", "Remaining", "Patterns")
		for _, s := range sheets {
			g, err := taco.SheetGraph(s, taco.DefaultOptions())
			if err != nil {
				fatal(err)
			}
			st := g.Stats()
			frac := 0.0
			if st.Dependencies > 0 {
				frac = float64(st.Edges) / float64(st.Dependencies)
			}
			t.AddRow(s.Name, len(s.Cells), stats.FormatCount(st.Dependencies),
				stats.FormatCount(st.Edges), stats.FormatPercent(frac), patternSummary(g))
		}
		fmt.Print(t)
	}

	if *cell == "" && *saveSnap == "" {
		return
	}
	if *sheetIdx < 0 || *sheetIdx >= len(sheets) {
		fatal(fmt.Errorf("sheet index %d out of range (file has %d sheets)", *sheetIdx, len(sheets)))
	}
	s := sheets[*sheetIdx]
	g, err := taco.SheetGraph(s, taco.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	if *saveSnap != "" {
		f, err := os.Create(*saveSnap)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteSnapshot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote compressed graph snapshot (%d edges) to %s\n", g.NumEdges(), *saveSnap)
	}
	if *cell == "" {
		return
	}
	target, err := taco.ParseRange(*cell)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var result []taco.Range
	kind := "dependents"
	if *precedents {
		kind = "precedents"
		result = g.FindPrecedents(target)
	} else {
		result = g.FindDependents(target)
	}
	elapsed := time.Since(start)

	sort.Slice(result, func(i, j int) bool {
		a, b := result[i].Head, result[j].Head
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Row < b.Row
	})
	fmt.Printf("%s of %s in sheet %q: %d cells in %d ranges (found in %s)\n",
		kind, target, s.Name, taco.CountCells(result), len(result), elapsed.Round(time.Microsecond))
	for _, r := range result {
		fmt.Printf("  %s\n", r)
	}
}

func patternSummary(g *taco.Graph) string {
	st := g.PatternStats()
	order := []core.PatternType{core.RR, core.RF, core.FR, core.FF, core.RRChain, core.Single}
	out := ""
	for _, p := range order {
		if st[p].Edges > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%d", p, st[p].Edges)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tacotrace:", err)
	os.Exit(1)
}
