// Command tacoeval measures the range-aggregation cost of the formula
// evaluator: SUM over a 10k-cell range resolved through the engine's
// columnar bulk path (formula.RangeResolver) versus the per-cell
// CellValue probe path, on dense, sparse, and single-column shapes.
//
// Usage:
//
//	tacoeval [-json] [-mintime 300ms]
//
// With -json it emits the BENCH_eval.json report that CI's perf-regression
// job feeds to benchdiff: absolute ns/op per path plus the bulk-vs-percell
// speedup, which is host-independent and therefore the primary gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
)

// Result is one benchmark shape's measurement.
type Result struct {
	Cells       int     `json:"cells"`     // range size
	Populated   int     `json:"populated"` // cells actually stored
	Iters       int     `json:"iters"`
	NsOpBulk    float64 `json:"ns_op_bulk"`
	NsOpPercell float64 `json:"ns_op_percell"`
	Speedup     float64 `json:"speedup"` // percell / bulk
}

// Report is the BENCH_eval.json schema.
type Report struct {
	Bench   string            `json:"bench"`
	Config  map[string]any    `json:"config"`
	Results map[string]Result `json:"results"`
}

// buildGrid populates a cols×rows block keeping every strideth cell.
func buildGrid(cols, rows, stride int) (*engine.Engine, ref.Range, int) {
	var pcells []engine.ParsedCell
	i := 0
	for col := 1; col <= cols; col++ {
		for row := 1; row <= rows; row++ {
			if i++; i%stride != 0 {
				continue
			}
			pcells = append(pcells, engine.ParsedCell{
				At:    ref.Ref{Col: col, Row: row},
				Value: formula.Num(float64(col*row) / 7),
			})
		}
	}
	e := engine.LoadBulkParsed(pcells)
	rng := ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: cols, Row: rows}}
	return e, rng, len(pcells)
}

// measure times fn until it has run for at least minTime, testing.B-style.
func measure(minTime time.Duration, fn func()) (nsOp float64, iters int) {
	fn() // warm up caches and any lazy state
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return float64(elapsed.Nanoseconds()) / float64(n), n
		}
		if next := n * 4; elapsed <= 0 {
			n = next
		} else {
			// Aim past minTime with 1.5x headroom, capped at 4x growth.
			target := int(float64(n) * 1.5 * float64(minTime) / float64(elapsed))
			if target > n*4 {
				target = n * 4
			}
			if target <= n {
				target = n + 1
			}
			n = target
		}
	}
}

func runShape(cols, rows, stride int, minTime time.Duration) Result {
	e, rng, populated := buildGrid(cols, rows, stride)
	ast := formula.MustParse(fmt.Sprintf("=SUM(%s)", rng))
	bulkRes := e.ValueResolver()
	percellRes := formula.ResolverFunc(e.Value)
	if b, p := formula.Eval(ast, bulkRes), formula.Eval(ast, percellRes); b != p {
		fmt.Fprintf(os.Stderr, "tacoeval: paths disagree: bulk=%v percell=%v\n", b, p)
		os.Exit(1)
	}
	var r Result
	r.Cells = rng.Size()
	r.Populated = populated
	r.NsOpBulk, r.Iters = measure(minTime, func() { formula.Eval(ast, bulkRes) })
	r.NsOpPercell, _ = measure(minTime, func() { formula.Eval(ast, percellRes) })
	r.Speedup = r.NsOpPercell / r.NsOpBulk
	return r
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	minTime := flag.Duration("mintime", 300*time.Millisecond, "minimum measurement time per path")
	flag.Parse()

	shapes := []struct {
		name               string
		cols, rows, stride int
	}{
		{"range_sum_dense", 10, 1000, 1},   // 10k cells, all populated
		{"range_sum_sparse", 10, 1000, 10}, // 10k cells, 1 in 10 populated
		{"range_sum_column", 1, 10000, 1},  // one 10k-row column
	}
	rep := Report{
		Bench: "eval",
		Config: map[string]any{
			"mintime_ms": minTime.Milliseconds(),
		},
		Results: map[string]Result{},
	}
	for _, s := range shapes {
		rep.Results[s.name] = runShape(s.cols, s.rows, s.stride, *minTime)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "tacoeval:", err)
			os.Exit(1)
		}
		return
	}
	for _, s := range shapes {
		r := rep.Results[s.name]
		fmt.Printf("%-18s %6d cells (%5d populated)  bulk %10.0f ns/op  percell %10.0f ns/op  speedup %.2fx\n",
			s.name, r.Cells, r.Populated, r.NsOpBulk, r.NsOpPercell, r.Speedup)
	}
}
