// Command tacoeval measures the evaluation-side hot paths of the engine:
//
//   - Range aggregation: an aggregate over a 10k-cell range resolved
//     through the engine's columnar bulk path (formula.RangeResolver /
//     CondFolder) versus the per-cell CellValue probe path, on dense,
//     sparse, single-column, SUMIF, and SUMPRODUCT-rectangle shapes.
//   - Recalculation: draining a dirtied sheet through the parallel
//     wavefront scheduler versus the serial resolver, on deep-chain,
//     wide-fanout, diamond, and mixed dependency shapes.
//   - Pattern runs: columns of shift-identical formulas drained through
//     the run-vectorized wavefront (one interned bytecode program swept
//     across contiguous rows) versus per-cell AST evaluation.
//
// Usage:
//
//	tacoeval [-json] [-mintime 300ms] [-workers 4]
//
// With -json it emits the BENCH_eval.json report that CI's perf-regression
// job feeds to benchdiff: absolute ns/op per path plus the speedups, which
// are host-independent and therefore the primary gates. The wide-fanout
// recalc shape carries a min_speedup the checked-in baseline turns into a
// CI floor — the shape with maximal level width is where wavefront
// parallelism must pay, regardless of runner speed. The pattern shapes
// carry min_speedup floors too, and theirs hold on any host: the drain is
// algorithmically cheaper than the AST walk, not merely more parallel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
)

// Result is one benchmark shape's measurement.
type Result struct {
	Cells       int     `json:"cells"`     // range size
	Populated   int     `json:"populated"` // cells actually stored
	Iters       int     `json:"iters"`
	NsOpBulk    float64 `json:"ns_op_bulk"`
	NsOpPercell float64 `json:"ns_op_percell"`
	Speedup     float64 `json:"speedup"` // percell / bulk
}

// RecalcResult is one recalculation shape's measurement: the same dirtied
// sheet drained serially and through the wavefront scheduler.
type RecalcResult struct {
	Dirty        int     `json:"dirty"` // cells drained per iteration
	Workers      int     `json:"workers"`
	CPUs         int     `json:"cpus"` // CPUs visible on the measuring host
	Iters        int     `json:"iters"`
	NsOpSerial   float64 `json:"ns_op_serial"`
	NsOpParallel float64 `json:"ns_op_parallel"`
	Speedup      float64 `json:"speedup"` // serial / parallel
	// MinSpeedup, when set, is the floor benchdiff enforces for this shape
	// (policy travels with the checked-in baseline): shapes with real level
	// width must keep paying for their workers; shapes that are serial by
	// construction (deep chains) carry none.
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

// PatternResult is one pattern-run shape's measurement: the same dirtied
// sheet drained with run vectorization on (interned bytecode programs swept
// over contiguous rows against the column slabs) and fully off (per-cell
// AST tree-walk through the serial resolver).
type PatternResult struct {
	Rows    int `json:"rows"`
	Cells   int `json:"cells"` // formula cells drained per iteration
	Workers int `json:"workers"`
	CPUs    int `json:"cpus"`
	Iters   int `json:"iters"`
	// NsOpAst is per-cell AST evaluation (pattern runs off, serial drain);
	// NsOpVectorized is the run-batched bytecode drain of the same edit.
	NsOpAst        float64 `json:"ns_op_ast"`
	NsOpVectorized float64 `json:"ns_op_vectorized"`
	Speedup        float64 `json:"speedup"` // ast / vectorized
	// MinSpeedup is the floor benchdiff enforces for this shape. Unlike the
	// recalc floors it is not CPU-gated: the vectorized drain beats the AST
	// walk by doing less work per cell, so the floor binds on any host.
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

// Report is the BENCH_eval.json schema.
type Report struct {
	Bench    string                   `json:"bench"`
	Config   map[string]any           `json:"config"`
	Results  map[string]Result        `json:"results"`
	Recalc   map[string]RecalcResult  `json:"recalc"`
	Patterns map[string]PatternResult `json:"patterns"`
}

// buildGrid populates a cols×rows block keeping every strideth cell.
func buildGrid(cols, rows, stride int) (*engine.Engine, ref.Range, int) {
	var pcells []engine.ParsedCell
	i := 0
	for col := 1; col <= cols; col++ {
		for row := 1; row <= rows; row++ {
			if i++; i%stride != 0 {
				continue
			}
			pcells = append(pcells, engine.ParsedCell{
				At:    ref.Ref{Col: col, Row: row},
				Value: formula.Num(float64(col*row) / 7),
			})
		}
	}
	e := engine.LoadBulkParsed(pcells)
	rng := ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: cols, Row: rows}}
	return e, rng, len(pcells)
}

// measure times fn until it has run for at least minTime, testing.B-style.
func measure(minTime time.Duration, fn func()) (nsOp float64, iters int) {
	fn() // warm up caches and any lazy state
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return float64(elapsed.Nanoseconds()) / float64(n), n
		}
		if next := n * 4; elapsed <= 0 {
			n = next
		} else {
			// Aim past minTime with 1.5x headroom, capped at 4x growth.
			target := int(float64(n) * 1.5 * float64(minTime) / float64(elapsed))
			if target > n*4 {
				target = n * 4
			}
			if target <= n {
				target = n + 1
			}
			n = target
		}
	}
}

// runShape measures one range-aggregation shape. src, when non-empty, is
// the formula to evaluate instead of the default SUM over the whole grid —
// the hook the SUMIF/SUMPRODUCT shapes use to steer into the conditional
// folds.
func runShape(cols, rows, stride int, src string, minTime time.Duration) Result {
	e, rng, populated := buildGrid(cols, rows, stride)
	if src == "" {
		src = fmt.Sprintf("=SUM(%s)", rng)
	}
	ast := formula.MustParse(src)
	bulkRes := e.ValueResolver()
	percellRes := formula.ResolverFunc(e.Value)
	if b, p := formula.Eval(ast, bulkRes), formula.Eval(ast, percellRes); b != p {
		fmt.Fprintf(os.Stderr, "tacoeval: paths disagree: bulk=%v percell=%v\n", b, p)
		os.Exit(1)
	}
	var r Result
	r.Cells = rng.Size()
	r.Populated = populated
	r.NsOpBulk, r.Iters = measure(minTime, func() { formula.Eval(ast, bulkRes) })
	r.NsOpPercell, _ = measure(minTime, func() { formula.Eval(ast, percellRes) })
	r.Speedup = r.NsOpPercell / r.NsOpBulk
	return r
}

// recalcShape builds one dependency shape for the recalculation benchmarks.
// build populates a fresh engine; dirty re-dirties it (the measured
// iteration is dirty + full drain). A non-zero budget drains through
// repeated RecalculateN(budget) calls instead of one RecalculateAll — the
// serving layer's chunked-hold pattern, which measures how well the
// resumable schedule amortises levelling across chunks.
type recalcShape struct {
	name       string
	minSpeedup float64
	budget     int
	build      func(e *engine.Engine)
	dirty      func(e *engine.Engine, v float64)
}

func mustSetFormula(e *engine.Engine, at ref.Ref, src string) {
	if _, err := e.SetFormula(at, src); err != nil {
		fmt.Fprintf(os.Stderr, "tacoeval: %v: %v\n", at, err)
		os.Exit(1)
	}
}

func recalcShapes() []recalcShape {
	a1 := ref.Ref{Col: 1, Row: 1}
	bump := func(e *engine.Engine, v float64) {
		e.SetValue(a1, formula.Num(v))
	}
	// SUMSQ rather than SUM keeps each cell's evaluation streamed per cell:
	// SUM now folds off the slabs in one batched pass, which made the cells
	// too cheap for a wall-clock parallelism floor to be meaningful — the
	// shape gates level parallelism, so its per-cell work must stay real.
	wideFanout := func(e *engine.Engine) {
		for r := 1; r <= 100; r++ {
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)/7))
		}
		for col := 3; col <= 7; col++ {
			for r := 1; r <= 1000; r++ {
				mustSetFormula(e, ref.Ref{Col: col, Row: r},
					fmt.Sprintf("SUMSQ(A$1:A$100)*%d+%d", col, r))
			}
		}
	}
	return []recalcShape{
		{
			// Every level is one cell wide: the scheduler's worst case, kept
			// honest by the regression ceiling (no speedup floor — there is
			// no parallelism to find in a chain).
			name: "recalc_deep_chain",
			build: func(e *engine.Engine) {
				e.SetValue(a1, formula.Num(1))
				mustSetFormula(e, ref.Ref{Col: 2, Row: 1}, "A1+1")
				for i := 2; i <= 2000; i++ {
					mustSetFormula(e, ref.Ref{Col: 2, Row: i}, fmt.Sprintf("B%d*1.0001+1", i-1))
				}
			},
			dirty: bump,
		},
		{
			// One input, one huge level: maximal level width, the shape the
			// wavefront exists for — gated at 1.5x with 4 workers.
			name:       "recalc_wide_fanout",
			minSpeedup: 1.5,
			build:      wideFanout,
			dirty:      bump,
		},
		{
			// The same fanout drained in 256-evaluation chunks, the serving
			// layer's bounded-hold pattern. The resumable schedule levels
			// once and resumes per chunk, so the parallel ns/op here must
			// track the unbudgeted shape above instead of paying ~20
			// re-levellings per drain (the regression ceiling enforces it).
			name:   "recalc_budgeted_fanout",
			budget: 256,
			build:  wideFanout,
			dirty:  bump,
		},
		{
			// Alternating wide/narrow levels: fan out, reconverge through an
			// aggregation, repeat — leveling overhead meets real width.
			name: "recalc_diamond",
			build: func(e *engine.Engine) {
				e.SetValue(a1, formula.Num(2))
				join := "A1"
				for b := 0; b < 8; b++ {
					col := 4 + b*2
					for i := 1; i <= 250; i++ {
						mustSetFormula(e, ref.Ref{Col: col, Row: i},
							fmt.Sprintf("%s*1.001+%d", join, i))
					}
					jref := ref.Ref{Col: col + 1, Row: 1}
					colA1 := ref.FormatA1(ref.Ref{Col: col, Row: 1})
					colEnd := ref.FormatA1(ref.Ref{Col: col, Row: 250})
					mustSetFormula(e, jref, fmt.Sprintf("SUM(%s:%s)/250", colA1, colEnd))
					join = ref.FormatA1(jref)
				}
			},
			dirty: bump,
		},
		{
			// A mixed sheet: prefix-sum column, a chain over it, and a
			// fan-out over both — the closest shape to real scenario sheets.
			name: "recalc_mixed",
			build: func(e *engine.Engine) {
				for r := 1; r <= 400; r++ {
					e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)/3))
				}
				for r := 1; r <= 400; r++ {
					mustSetFormula(e, ref.Ref{Col: 2, Row: r}, fmt.Sprintf("SUM(A$1:A$%d)+A%d", r, r))
				}
				mustSetFormula(e, ref.Ref{Col: 3, Row: 1}, "SUM(B1:B400)")
				for r := 2; r <= 200; r++ {
					mustSetFormula(e, ref.Ref{Col: 3, Row: r}, fmt.Sprintf("C%d*1.0001+MAX(B1:B20)", r-1))
				}
				for r := 1; r <= 800; r++ {
					mustSetFormula(e, ref.Ref{Col: 5, Row: r}, fmt.Sprintf("$C$1+AVERAGE(B1:B40)*%d", r))
				}
			},
			dirty: bump,
		},
	}
}

// runRecalcShape measures one shape: identical engines drained serially and
// through the wavefront, verified value-identical first.
func runRecalcShape(s recalcShape, workers int, minTime time.Duration) RecalcResult {
	build := func(parallelism int) *engine.Engine {
		e := engine.New(nil)
		s.build(e)
		e.RecalculateAll()
		e.SetRecalcParallelism(parallelism)
		return e
	}
	drain := func(e *engine.Engine) {
		if s.budget <= 0 {
			e.RecalculateAll()
			return
		}
		for e.Pending() > 0 {
			if e.RecalculateN(s.budget) == 0 {
				break
			}
		}
	}
	serial := build(1)
	parallel := build(workers)

	// Equivalence gate: one identically-dirtied drain each, every cell
	// byte-identical afterwards.
	s.dirty(serial, 42)
	s.dirty(parallel, 42)
	dirty := serial.Pending()
	drain(serial)
	drain(parallel)
	serial.ScanRange(ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 64, Row: 1 << 20}},
		func(at ref.Ref, v formula.Value, _ string, _ bool) bool {
			if pv := parallel.Value(at); pv != v {
				fmt.Fprintf(os.Stderr, "tacoeval: %s: %v serial=%v parallel=%v\n", s.name, at, v, pv)
				os.Exit(1)
			}
			return true
		})

	var r RecalcResult
	r.Dirty = dirty
	r.Workers = workers
	r.CPUs = runtime.NumCPU()
	r.MinSpeedup = s.minSpeedup
	tick := 0.0
	r.NsOpSerial, r.Iters = measure(minTime, func() {
		tick++
		s.dirty(serial, tick)
		drain(serial)
	})
	tick = 0
	r.NsOpParallel, _ = measure(minTime, func() {
		tick++
		s.dirty(parallel, tick)
		drain(parallel)
	})
	r.Speedup = r.NsOpSerial / r.NsOpParallel
	return r
}

// patternShape is one pattern-run benchmark: a sheet whose formula columns
// are shift-copies of a single template, so the wavefront can intern one
// bytecode program per column and drain each as a vectorized sweep.
type patternShape struct {
	name       string
	minSpeedup float64
	rows       int
	build      func(e *engine.Engine, rows int)
	dirty      func(e *engine.Engine, v float64)
}

func patternShapes() []patternShape {
	f1 := ref.Ref{Col: 6, Row: 1}
	bumpF1 := func(e *engine.Engine, v float64) {
		e.SetValue(f1, formula.Num(v))
	}
	return []patternShape{
		{
			// The canonical column drain from the compressed graph's
			// RR-chain patterns: two data columns, a scale column off $F$1,
			// and a combine column over all three. Editing F1 re-dirties
			// both formula columns, which the scheduler recovers as two
			// full-column runs — 3x is the algorithmic floor for skipping
			// the per-cell walk + interface dispatch, CPU count regardless.
			name:       "pattern_mul_add_column",
			minSpeedup: 3.0,
			rows:       100_000,
			build: func(e *engine.Engine, rows int) {
				e.SetValue(f1, formula.Num(1.5))
				for r := 1; r <= rows; r++ {
					e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)/7))
					e.SetValue(ref.Ref{Col: 2, Row: r}, formula.Num(float64(r%97)+0.5))
					mustSetFormula(e, ref.Ref{Col: 3, Row: r}, fmt.Sprintf("B%d*$F$1", r))
					mustSetFormula(e, ref.Ref{Col: 4, Row: r}, fmt.Sprintf("A%d*B%d+C%d", r, r, r))
				}
			},
			dirty: bumpF1,
		},
		{
			// A sliding SUMPRODUCT rectangle: every row folds a 10-row
			// window of two columns. The heavy lifting is the slab fold on
			// both paths, so the vectorized margin is the dispatch around
			// it — the floor is correspondingly modest.
			name:       "pattern_sumproduct_rect",
			minSpeedup: 1.1,
			rows:       20_000,
			build: func(e *engine.Engine, rows int) {
				e.SetValue(f1, formula.Num(2))
				for r := 1; r <= rows+10; r++ {
					e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r%13)-3))
					e.SetValue(ref.Ref{Col: 2, Row: r}, formula.Num(float64(r%7)+0.25))
				}
				for r := 1; r <= rows; r++ {
					mustSetFormula(e, ref.Ref{Col: 4, Row: r},
						fmt.Sprintf("SUMPRODUCT(A%d:A%d,B%d:B%d)*$F$1", r, r+9, r, r+9))
				}
			},
			dirty: bumpF1,
		},
	}
}

// runPatternShape measures one pattern shape: identical engines drained
// with the run-vectorized wavefront and with per-cell AST evaluation
// (pattern runs off, serial resolver), verified value-identical first.
func runPatternShape(s patternShape, workers int, minTime time.Duration) PatternResult {
	build := func(vectorized bool) *engine.Engine {
		e := engine.New(nil)
		s.build(e, s.rows)
		e.RecalculateAll()
		if vectorized {
			e.SetRecalcParallelism(workers)
		} else {
			e.SetPatternRuns(false)
			e.SetRecalcParallelism(1)
		}
		return e
	}
	ast := build(false)
	vec := build(true)

	// Equivalence gate: the vectorized drain must stay byte-identical to
	// the per-cell AST walk on every cell it touches.
	s.dirty(ast, 42)
	s.dirty(vec, 42)
	dirty := ast.Pending()
	ast.RecalculateAll()
	vec.RecalculateAll()
	ast.ScanRange(ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 64, Row: 1 << 20}},
		func(at ref.Ref, v formula.Value, _ string, _ bool) bool {
			if pv := vec.Value(at); pv != v {
				fmt.Fprintf(os.Stderr, "tacoeval: %s: %v ast=%v vectorized=%v\n", s.name, at, v, pv)
				os.Exit(1)
			}
			return true
		})

	var r PatternResult
	r.Rows = s.rows
	r.Cells = dirty
	r.Workers = workers
	r.CPUs = runtime.NumCPU()
	r.MinSpeedup = s.minSpeedup
	tick := 0.0
	r.NsOpAst, r.Iters = measure(minTime, func() {
		tick++
		s.dirty(ast, tick)
		ast.RecalculateAll()
	})
	tick = 0
	r.NsOpVectorized, _ = measure(minTime, func() {
		tick++
		s.dirty(vec, tick)
		vec.RecalculateAll()
	})
	r.Speedup = r.NsOpAst / r.NsOpVectorized
	return r
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	minTime := flag.Duration("mintime", 300*time.Millisecond, "minimum measurement time per path")
	workers := flag.Int("workers", 4, "wavefront workers for the recalc benchmarks")
	flag.Parse()

	shapes := []struct {
		name               string
		cols, rows, stride int
		formula            string // "" = SUM over the whole grid
	}{
		{"range_sum_dense", 10, 1000, 1, ""},   // 10k cells, all populated
		{"range_sum_sparse", 10, 1000, 10, ""}, // 10k cells, 1 in 10 populated
		{"range_sum_column", 1, 10000, 1, ""},  // one 10k-row column
		// Conditional folds: SUMIF on a 10k-row column pair and SUMPRODUCT
		// on a 2x5000 rectangle pair, both resolved through the CondFolder
		// slab folds on the bulk path.
		{"range_sumif_column", 2, 10000, 1, "=SUMIF(A1:A10000,\">700\",B1:B10000)"},
		{"range_sumproduct_rect", 4, 5000, 1, "=SUMPRODUCT(A1:B5000,C1:D5000)"},
	}
	rep := Report{
		Bench: "eval",
		Config: map[string]any{
			"mintime_ms":     minTime.Milliseconds(),
			"recalc_workers": *workers,
		},
		Results:  map[string]Result{},
		Recalc:   map[string]RecalcResult{},
		Patterns: map[string]PatternResult{},
	}
	for _, s := range shapes {
		rep.Results[s.name] = runShape(s.cols, s.rows, s.stride, s.formula, *minTime)
	}
	rshapes := recalcShapes()
	for _, s := range rshapes {
		rep.Recalc[s.name] = runRecalcShape(s, *workers, *minTime)
	}
	pshapes := patternShapes()
	for _, s := range pshapes {
		rep.Patterns[s.name] = runPatternShape(s, *workers, *minTime)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "tacoeval:", err)
			os.Exit(1)
		}
		return
	}
	for _, s := range shapes {
		r := rep.Results[s.name]
		fmt.Printf("%-22s %6d cells (%5d populated)  bulk %10.0f ns/op  percell %10.0f ns/op  speedup %.2fx\n",
			s.name, r.Cells, r.Populated, r.NsOpBulk, r.NsOpPercell, r.Speedup)
	}
	for _, s := range rshapes {
		r := rep.Recalc[s.name]
		fmt.Printf("%-22s %6d dirty (%d workers)       serial %9.0f ns/op  parallel %9.0f ns/op  speedup %.2fx\n",
			s.name, r.Dirty, r.Workers, r.NsOpSerial, r.NsOpParallel, r.Speedup)
	}
	for _, s := range pshapes {
		r := rep.Patterns[s.name]
		fmt.Printf("%-22s %6d dirty (%d rows)          ast %12.0f ns/op  vectorized %9.0f ns/op  speedup %.2fx (floor %.2fx)\n",
			s.name, r.Cells, r.Rows, r.NsOpAst, r.NsOpVectorized, r.Speedup, r.MinSpeedup)
	}
}
