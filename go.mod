module taco

go 1.24.0
