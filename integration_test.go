package taco_test

// End-to-end integration tests crossing every subsystem the way a release
// user would: generate a workload, persist it as .xlsx, reopen it as a live
// workbook, edit through the async engine, snapshot the compressed graph,
// and reload it — verifying values and dependency answers at each step.

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"taco"
	"taco/internal/engine"
	"taco/internal/nocomp"
	"taco/internal/workload"
)

func TestEndToEndScenarioPipeline(t *testing.T) {
	for _, name := range workload.ScenarioNames {
		name := name
		t.Run(name, func(t *testing.T) {
			sheet, err := workload.BuildScenario(name, 40, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}

			// 1. Persist as xlsx (with shared formulas) and reopen.
			path := filepath.Join(t.TempDir(), name+".xlsx")
			if err := taco.WriteXLSX(path, []*taco.Sheet{sheet}, true); err != nil {
				t.Fatal(err)
			}
			book, err := taco.OpenWorkbook(path)
			if err != nil {
				t.Fatal(err)
			}
			eng := book.Sheet(name)
			if eng == nil {
				t.Fatalf("sheet %q missing; names=%v", name, book.Names())
			}

			// 2. The reopened workbook computes the same values as loading
			// the sheet directly.
			direct, err := taco.LoadEngine(sheet)
			if err != nil {
				t.Fatal(err)
			}
			for at := range sheet.Cells {
				a, b := eng.Value(at), direct.Value(at)
				if a.String() != b.String() {
					t.Fatalf("cell %v: xlsx path %v vs direct %v", at, a, b)
				}
			}

			// 3. The TACO graph and a NoComp graph agree on dependency
			// queries over the file-parsed sheet.
			deps := sheet.MustDependencies()
			tg := taco.BuildGraph(deps, taco.DefaultOptions())
			ng := nocomp.Build(deps)
			seed := taco.MustRange("A1")
			if taco.CountCells(tg.FindDependents(seed)) != taco.CountCells(ng.FindDependents(seed)) {
				t.Fatalf("dependents disagree from %v", seed)
			}

			// 4. Snapshot the compressed graph and reload it; queries match.
			var buf bytes.Buffer
			if err := tg.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := taco.ReadGraphSnapshot(&buf, taco.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if taco.CountCells(loaded.FindDependents(seed)) != taco.CountCells(tg.FindDependents(seed)) {
				t.Fatal("snapshot round trip changed query results")
			}
		})
	}
}

func TestEndToEndAsyncEditing(t *testing.T) {
	sheet := workload.InventoryTracker(200, rand.New(rand.NewSource(4)))
	eng, err := taco.LoadEngine(sheet)
	if err != nil {
		t.Fatal(err)
	}
	async := taco.NewAsyncEngine(eng)
	defer async.Close()

	stockEnd := taco.Ref{Col: 4, Row: 200}
	before := async.Get(stockEnd)

	dirty := async.Set(taco.Ref{Col: 2, Row: 1}, taco.Num(10000))
	if taco.CountCells(dirty) < 200 {
		t.Fatalf("dirty = %d cells", taco.CountCells(dirty))
	}
	after := async.Get(stockEnd)
	if after.Num == before.Num {
		t.Fatalf("edit did not propagate: %v", after)
	}
	// The chain arithmetic is exact: +10000 minus the original B1.
	origB1 := sheet.Cells[taco.MustCell("B1")].Value.Num
	if diff := after.Num - before.Num; diff != 10000-origB1 {
		t.Fatalf("stock delta = %v, want %v", diff, 10000-origB1)
	}
}

func TestEndToEndCorpusThroughEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus pipeline is slow")
	}
	sheets := workload.Generate(workload.CorpusSpec{
		Name: "it", Sheets: 2, MedianRows: 80, MaxRows: 150, Seed: 31, MessyFraction: 0.1,
	})
	path := filepath.Join(t.TempDir(), "corpus.xlsx")
	if err := taco.WriteXLSX(path, sheets, true); err != nil {
		t.Fatal(err)
	}
	book, err := taco.OpenWorkbook(path)
	if err != nil {
		t.Fatal(err)
	}
	if book.NumSheets() != 2 {
		t.Fatalf("sheets = %d", book.NumSheets())
	}
	for name, st := range book.Stats() {
		if st.Edges == 0 || st.Edges >= st.Dependencies {
			t.Fatalf("sheet %s poorly compressed: %+v", name, st)
		}
	}
}

func TestEngineGraphBackendsInterchangeable(t *testing.T) {
	// The engine produces identical spreadsheets regardless of graph
	// backend — TACO is a drop-in replacement, the paper's integration
	// claim.
	sheet := workload.FinancialModel(36, rand.New(rand.NewSource(2)))
	withTACO, err := engine.Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	withNoComp, err := engine.Load(sheet, engine.NoComp{G: nocomp.NewGraph()})
	if err != nil {
		t.Fatal(err)
	}
	edit := taco.MustCell("B7")
	withTACO.SetValue(edit, taco.Num(1234))
	withNoComp.SetValue(edit, taco.Num(1234))
	withTACO.RecalculateAll()
	withNoComp.RecalculateAll()
	for at := range sheet.Cells {
		a, b := withTACO.Value(at), withNoComp.Value(at)
		if a.String() != b.String() {
			t.Fatalf("cell %v: %v vs %v", at, a, b)
		}
	}
}
