package graphdb

import (
	"testing"

	"taco/internal/core"
	"taco/internal/ref"
)

func dep(prec, cell string) core.Dependency {
	return core.Dependency{Prec: ref.MustRange(prec), Dep: ref.MustCell(cell)}
}

func TestDecomposeBlowsUpRanges(t *testing.T) {
	deps := []core.Dependency{dep("A1:A100", "B1")}
	edges := Decompose(deps)
	if len(edges) != 100 {
		t.Fatalf("decomposed edges = %d, want 100", len(edges))
	}
}

func TestBFSOnDecomposedGraph(t *testing.T) {
	deps := []core.Dependency{
		dep("A1:A3", "B1"), dep("B1", "C1"), dep("A2", "B2"),
	}
	s := Build(deps)
	if s.NumEdges() != 5 {
		t.Fatalf("edges = %d", s.NumEdges())
	}
	got := s.FindDependents(ref.MustRange("A2"))
	want := map[ref.Ref]bool{
		ref.MustCell("B1"): true, ref.MustCell("B2"): true, ref.MustCell("C1"): true,
	}
	if len(got) != len(want) {
		t.Fatalf("dependents = %v", got)
	}
	for _, r := range got {
		if !want[r.Head] {
			t.Errorf("unexpected dependent %v", r)
		}
	}
	precs := s.FindPrecedents(ref.MustRange("C1"))
	if len(precs) != 4 { // B1 and A1..A3
		t.Fatalf("precedents = %v", precs)
	}
}

func TestClear(t *testing.T) {
	s := Build([]core.Dependency{dep("A1:A3", "B1"), dep("B1", "C1")})
	s.Clear(ref.MustRange("B1"))
	if got := s.FindDependents(ref.MustRange("A1")); len(got) != 0 {
		t.Fatalf("dependents after clear = %v", got)
	}
	// C1 still depends on B1 directly.
	if got := s.FindDependents(ref.MustRange("B1")); len(got) != 1 {
		t.Fatalf("B1 dependents = %v", got)
	}
	if s.NumEdges() != 1 {
		t.Fatalf("edges = %d", s.NumEdges())
	}
}

func TestVertices(t *testing.T) {
	s := Build([]core.Dependency{dep("A1:A2", "B1")})
	if s.NumVertices() != 3 {
		t.Fatalf("vertices = %d", s.NumVertices())
	}
}
