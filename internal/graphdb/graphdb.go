// Package graphdb is an in-memory property-graph store standing in for the
// RedisGraph comparator of the paper's Sec. VI-D. Like RedisGraph (and graph
// databases generally), it has no notion of spatial ranges: vertices are
// individual cells, so every formula-graph edge whose precedent is a range
// must be decomposed into one cell-to-cell edge per covered cell before
// loading — exactly the decomposition (and blow-up) the paper performs with
// the RedisGraph bulk loader.
package graphdb

import (
	"taco/internal/core"
	"taco/internal/ref"
)

// EdgeRec is one decomposed cell-to-cell edge, the bulk loader's CSV row.
type EdgeRec struct {
	From ref.Ref
	To   ref.Ref
}

// Decompose expands range-precedent dependencies into cell-to-cell edges.
func Decompose(deps []core.Dependency) []EdgeRec {
	var out []EdgeRec
	for _, d := range deps {
		d.Prec.Cells(func(c ref.Ref) bool {
			out = append(out, EdgeRec{From: c, To: d.Dep})
			return true
		})
	}
	return out
}

// Store is the in-memory graph: adjacency lists keyed by cell.
type Store struct {
	out map[ref.Ref][]ref.Ref
	in  map[ref.Ref][]ref.Ref
	n   int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{out: map[ref.Ref][]ref.Ref{}, in: map[ref.Ref][]ref.Ref{}}
}

// BulkLoad ingests decomposed edges, mirroring redisgraph-bulk-loader.
func (s *Store) BulkLoad(edges []EdgeRec) {
	for _, e := range edges {
		s.out[e.From] = append(s.out[e.From], e.To)
		s.in[e.To] = append(s.in[e.To], e.From)
		s.n++
	}
}

// Build decomposes and loads a dependency list.
func Build(deps []core.Dependency) *Store {
	s := NewStore()
	s.BulkLoad(Decompose(deps))
	return s
}

// BuildCapped decomposes and loads, aborting once the decomposed edge count
// exceeds maxEdges (ok=false). Real graph databases hit memory limits on
// exactly these inputs — the paper's RedisGraph DNFs — so the harness uses
// the cap to mark DNF without exhausting host memory.
func BuildCapped(deps []core.Dependency, maxEdges int) (*Store, bool) {
	s := NewStore()
	for _, d := range deps {
		if s.n+d.Prec.Size() > maxEdges {
			return nil, false
		}
		d.Prec.Cells(func(c ref.Ref) bool {
			s.out[c] = append(s.out[c], d.Dep)
			s.in[d.Dep] = append(s.in[d.Dep], c)
			s.n++
			return true
		})
	}
	return s, true
}

// NumEdges returns the number of cell-to-cell edges stored.
func (s *Store) NumEdges() int { return s.n }

// NumVertices returns the number of distinct cells.
func (s *Store) NumVertices() int {
	seen := map[ref.Ref]bool{}
	for c := range s.out {
		seen[c] = true
	}
	for c := range s.in {
		seen[c] = true
	}
	return len(seen)
}

// FindDependents returns the transitive dependents of every cell in r, as
// 1x1 ranges (cell granularity is all the store knows).
func (s *Store) FindDependents(r ref.Range) []ref.Range {
	visited := map[ref.Ref]bool{}
	var queue []ref.Ref
	r.Cells(func(c ref.Ref) bool {
		queue = append(queue, c)
		return true
	})
	var out []ref.Range
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, next := range s.out[c] {
			if !visited[next] {
				visited[next] = true
				out = append(out, ref.CellRange(next))
				queue = append(queue, next)
			}
		}
	}
	return out
}

// FindPrecedents returns the transitive precedents of every cell in r.
func (s *Store) FindPrecedents(r ref.Range) []ref.Range {
	visited := map[ref.Ref]bool{}
	var queue []ref.Ref
	r.Cells(func(c ref.Ref) bool {
		queue = append(queue, c)
		return true
	})
	var out []ref.Range
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, next := range s.in[c] {
			if !visited[next] {
				visited[next] = true
				out = append(out, ref.CellRange(next))
				queue = append(queue, next)
			}
		}
	}
	return out
}

// Clear removes every edge whose destination (formula cell) lies in rng,
// the Cypher DELETE the paper issues for maintenance.
func (s *Store) Clear(rng ref.Range) {
	rng.Cells(func(c ref.Ref) bool {
		for _, from := range s.in[c] {
			outs := s.out[from]
			kept := outs[:0]
			for _, to := range outs {
				if to != c {
					kept = append(kept, to)
				} else {
					s.n--
				}
			}
			s.out[from] = kept
		}
		delete(s.in, c)
		return true
	})
}
