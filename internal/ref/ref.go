// Package ref provides the cell and range geometry underlying spreadsheet
// formula graphs: positions in the tabular layout, A1-style notation,
// rectangular ranges with bounding union (the paper's ⨁ operator),
// intersection, containment, rectangle subtraction, and transposition.
//
// Columns and rows are 1-based, matching spreadsheet conventions: cell A1 is
// (Col 1, Row 1). A Range is identified by its top-left (Head) and
// bottom-right (Tail) cells, like the paper's head/tail terminology.
package ref

import (
	"errors"
	"fmt"
	"strings"
)

// Ref is the position of a single cell: column and row indices, both 1-based.
type Ref struct {
	Col int
	Row int
}

// Offset is a relative displacement between two cells, as used by the RR/RF/FR
// pattern metadata (the paper's (p, q) pairs: p = column distance, q = row
// distance).
type Offset struct {
	DCol int
	DRow int
}

// Add returns r displaced by o.
func (r Ref) Add(o Offset) Ref { return Ref{r.Col + o.DCol, r.Row + o.DRow} }

// Sub returns the offset from b to r, i.e. r = b.Add(r.Sub(b)).
func (r Ref) Sub(b Ref) Offset { return Offset{r.Col - b.Col, r.Row - b.Row} }

// T transposes the reference, swapping column and row. Transposition lets all
// pattern algorithms be written once for the column-major orientation.
func (r Ref) T() Ref { return Ref{r.Row, r.Col} }

// T transposes the offset.
func (o Offset) T() Offset { return Offset{o.DRow, o.DCol} }

// Valid reports whether the reference lies in the spreadsheet space
// (both indices >= 1).
func (r Ref) Valid() bool { return r.Col >= 1 && r.Row >= 1 }

// Before reports whether r precedes b in row-major order. It provides a total
// order used for deterministic iteration and testing.
func (r Ref) Before(b Ref) bool {
	if r.Row != b.Row {
		return r.Row < b.Row
	}
	return r.Col < b.Col
}

// String renders the cell in A1 notation.
func (r Ref) String() string { return FormatA1(r) }

// ColumnMajorCompare orders cells column by column, top to bottom — the
// load order that hands the bulk compressor its adjacent runs and that
// keeps snapshots deterministic. Every sorter feeding either path must use
// it (directly or via ColumnMajorLess) so the orderings cannot diverge.
func ColumnMajorCompare(a, b Ref) int {
	if a.Col != b.Col {
		return a.Col - b.Col
	}
	return a.Row - b.Row
}

// ColumnMajorLess is ColumnMajorCompare as a less function.
func ColumnMajorLess(a, b Ref) bool { return ColumnMajorCompare(a, b) < 0 }

// Range is a rectangular region of cells identified by its top-left (Head)
// and bottom-right (Tail) corners, inclusive on all sides.
type Range struct {
	Head Ref
	Tail Ref
}

// RangeOf returns the range with the given corners normalised so that Head is
// the top-left and Tail the bottom-right.
func RangeOf(a, b Ref) Range {
	return Range{
		Head: Ref{minInt(a.Col, b.Col), minInt(a.Row, b.Row)},
		Tail: Ref{maxInt(a.Col, b.Col), maxInt(a.Row, b.Row)},
	}
}

// CellRange returns the 1x1 range holding a single cell.
func CellRange(r Ref) Range { return Range{r, r} }

// Valid reports whether the range is a well-formed rectangle inside the
// spreadsheet space.
func (g Range) Valid() bool {
	return g.Head.Valid() && g.Head.Col <= g.Tail.Col && g.Head.Row <= g.Tail.Row
}

// IsCell reports whether the range covers exactly one cell.
func (g Range) IsCell() bool { return g.Head == g.Tail }

// Cols returns the number of columns spanned.
func (g Range) Cols() int { return g.Tail.Col - g.Head.Col + 1 }

// Rows returns the number of rows spanned.
func (g Range) Rows() int { return g.Tail.Row - g.Head.Row + 1 }

// Size returns the number of cells in the range.
func (g Range) Size() int { return g.Cols() * g.Rows() }

// T transposes the range (reflection across the main diagonal).
func (g Range) T() Range { return Range{g.Head.T(), g.Tail.T()} }

// Shift returns the range displaced by o.
func (g Range) Shift(o Offset) Range { return Range{g.Head.Add(o), g.Tail.Add(o)} }

// Contains reports whether cell r lies inside the range.
func (g Range) Contains(r Ref) bool {
	return r.Col >= g.Head.Col && r.Col <= g.Tail.Col &&
		r.Row >= g.Head.Row && r.Row <= g.Tail.Row
}

// ContainsRange reports whether the whole of b lies inside g.
func (g Range) ContainsRange(b Range) bool {
	return g.Contains(b.Head) && g.Contains(b.Tail)
}

// Overlaps reports whether the two ranges share at least one cell.
func (g Range) Overlaps(b Range) bool {
	return g.Head.Col <= b.Tail.Col && b.Head.Col <= g.Tail.Col &&
		g.Head.Row <= b.Tail.Row && b.Head.Row <= g.Tail.Row
}

// Intersect returns the common sub-rectangle of g and b. ok is false when the
// ranges do not overlap.
func (g Range) Intersect(b Range) (Range, bool) {
	if !g.Overlaps(b) {
		return Range{}, false
	}
	return Range{
		Head: Ref{maxInt(g.Head.Col, b.Head.Col), maxInt(g.Head.Row, b.Head.Row)},
		Tail: Ref{minInt(g.Tail.Col, b.Tail.Col), minInt(g.Tail.Row, b.Tail.Row)},
	}, true
}

// Bound returns the minimal bounding range of g and b — the paper's ⨁
// operator used to merge precedents and dependents of compressed edges.
func (g Range) Bound(b Range) Range {
	return Range{
		Head: Ref{minInt(g.Head.Col, b.Head.Col), minInt(g.Head.Row, b.Head.Row)},
		Tail: Ref{maxInt(g.Tail.Col, b.Tail.Col), maxInt(g.Tail.Row, b.Tail.Row)},
	}
}

// Subtract removes b from g, returning the remaining region as a list of at
// most four disjoint rectangles (top, bottom, left, right bands). If the
// ranges do not overlap the result is {g}; if b covers g the result is empty.
// This is the primitive behind removeDep and the visited-set bookkeeping of
// the compressed BFS.
func (g Range) Subtract(b Range) []Range {
	cut, ok := g.Intersect(b)
	if !ok {
		return []Range{g}
	}
	var out []Range
	// Top band: rows above the cut.
	if cut.Head.Row > g.Head.Row {
		out = append(out, Range{
			Head: g.Head,
			Tail: Ref{g.Tail.Col, cut.Head.Row - 1},
		})
	}
	// Bottom band: rows below the cut.
	if cut.Tail.Row < g.Tail.Row {
		out = append(out, Range{
			Head: Ref{g.Head.Col, cut.Tail.Row + 1},
			Tail: g.Tail,
		})
	}
	// Left band: columns left of the cut, limited to the cut's rows.
	if cut.Head.Col > g.Head.Col {
		out = append(out, Range{
			Head: Ref{g.Head.Col, cut.Head.Row},
			Tail: Ref{cut.Head.Col - 1, cut.Tail.Row},
		})
	}
	// Right band: columns right of the cut, limited to the cut's rows.
	if cut.Tail.Col < g.Tail.Col {
		out = append(out, Range{
			Head: Ref{cut.Tail.Col + 1, cut.Head.Row},
			Tail: Ref{g.Tail.Col, cut.Tail.Row},
		})
	}
	return out
}

// SubtractAll removes every range in bs from g, returning the remaining
// disjoint rectangles.
func (g Range) SubtractAll(bs []Range) []Range {
	rest := []Range{g}
	for _, b := range bs {
		var next []Range
		for _, piece := range rest {
			next = append(next, piece.Subtract(b)...)
		}
		rest = next
		if len(rest) == 0 {
			break
		}
	}
	return rest
}

// Cells calls fn for every cell in the range in row-major order. It stops
// early if fn returns false.
func (g Range) Cells(fn func(Ref) bool) {
	for row := g.Head.Row; row <= g.Tail.Row; row++ {
		for col := g.Head.Col; col <= g.Tail.Col; col++ {
			if !fn(Ref{col, row}) {
				return
			}
		}
	}
}

// String renders the range in A1 notation ("A1" for single cells, "A1:B3"
// otherwise).
func (g Range) String() string {
	if g.IsCell() {
		return FormatA1(g.Head)
	}
	return FormatA1(g.Head) + ":" + FormatA1(g.Tail)
}

// Adjacent reports whether b touches g along the given axis without
// overlapping: for AxisCol, b is directly above or below g; for AxisRow,
// directly left or right.
func (g Range) Adjacent(b Range, axis Axis) bool {
	if axis == AxisCol {
		sameCols := g.Head.Col == b.Head.Col && g.Tail.Col == b.Tail.Col
		return sameCols && (b.Head.Row == g.Tail.Row+1 || b.Tail.Row == g.Head.Row-1)
	}
	sameRows := g.Head.Row == b.Head.Row && g.Tail.Row == b.Tail.Row
	return sameRows && (b.Head.Col == g.Tail.Col+1 || b.Tail.Col == g.Head.Col-1)
}

// Axis identifies the orientation along which a run of formula cells is
// compressed: AxisCol for a vertical run within one column (the paper's
// default presentation), AxisRow for a horizontal run within one row.
type Axis uint8

const (
	// AxisCol compresses adjacent formula cells stacked in a column.
	AxisCol Axis = iota
	// AxisRow compresses adjacent formula cells laid out in a row.
	AxisRow
)

// String returns a human-readable axis name.
func (a Axis) String() string {
	if a == AxisCol {
		return "column"
	}
	return "row"
}

// ErrBadA1 is returned by ParseA1/ParseRangeA1 for malformed notation.
var ErrBadA1 = errors.New("ref: malformed A1 notation")

// MaxA1Row and MaxA1Col bound parseable references. Spreadsheets bound both
// axes (far below these), and the caps keep the cell space overflow-safe:
// the digit and letter accumulation loops below would otherwise wrap on
// adversarial inputs like a 600-digit row number, producing coordinates
// near MaxInt64 whose range iteration never terminates.
const (
	MaxA1Row = 1 << 30
	MaxA1Col = 1 << 20
)

// FormatA1 renders a cell reference in A1 notation (e.g. {1,1} -> "A1",
// {28,12} -> "AB12").
func FormatA1(r Ref) string {
	return ColName(r.Col) + itoa(r.Row)
}

// ColName converts a 1-based column index to its spreadsheet letters:
// 1 -> "A", 26 -> "Z", 27 -> "AA".
func ColName(col int) string {
	if col < 1 {
		return "?"
	}
	var buf [8]byte
	i := len(buf)
	for col > 0 {
		col--
		i--
		buf[i] = byte('A' + col%26)
		col /= 26
	}
	return string(buf[i:])
}

// ColIndex converts spreadsheet column letters to a 1-based index:
// "A" -> 1, "Z" -> 26, "AA" -> 27. It returns 0 for invalid input.
func ColIndex(name string) int {
	col := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c < 'A' || c > 'Z' {
			return 0
		}
		col = col*26 + int(c-'A'+1)
		if col > MaxA1Col {
			return 0
		}
	}
	return col
}

// ParseA1 parses a single-cell A1 reference, accepting and ignoring `$`
// absolute markers ("$B$2" parses as B2).
func ParseA1(s string) (Ref, error) {
	r, _, _, err := ParseA1Flags(s)
	return r, err
}

// ParseA1Flags parses a single-cell A1 reference and reports whether the
// column and row carried `$` absolute markers. The markers are the autofill
// cues the greedy compressor's heuristics consume (Sec. IV-A).
func ParseA1Flags(s string) (r Ref, colFixed, rowFixed bool, err error) {
	i := 0
	if i < len(s) && s[i] == '$' {
		colFixed = true
		i++
	}
	j := i
	for j < len(s) && isLetter(s[j]) {
		j++
	}
	if j == i {
		return Ref{}, false, false, fmt.Errorf("%w: %q", ErrBadA1, s)
	}
	col := ColIndex(s[i:j])
	if col == 0 {
		return Ref{}, false, false, fmt.Errorf("%w: %q", ErrBadA1, s)
	}
	i = j
	if i < len(s) && s[i] == '$' {
		rowFixed = true
		i++
	}
	j = i
	row := 0
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		row = row*10 + int(s[j]-'0')
		if row > MaxA1Row {
			return Ref{}, false, false, fmt.Errorf("%w: %q", ErrBadA1, s)
		}
		j++
	}
	if j == i || j != len(s) || row == 0 {
		return Ref{}, false, false, fmt.Errorf("%w: %q", ErrBadA1, s)
	}
	return Ref{col, row}, colFixed, rowFixed, nil
}

// ParseRangeA1 parses "A1" or "A1:B3" (with optional `$` markers) into a
// normalised Range.
func ParseRangeA1(s string) (Range, error) {
	if k := strings.IndexByte(s, ':'); k >= 0 {
		a, err := ParseA1(s[:k])
		if err != nil {
			return Range{}, err
		}
		b, err := ParseA1(s[k+1:])
		if err != nil {
			return Range{}, err
		}
		return RangeOf(a, b), nil
	}
	a, err := ParseA1(s)
	if err != nil {
		return Range{}, err
	}
	return CellRange(a), nil
}

// MustRange parses a range in A1 notation and panics on error. Intended for
// tests and examples.
func MustRange(s string) Range {
	g, err := ParseRangeA1(s)
	if err != nil {
		panic(err)
	}
	return g
}

// MustCell parses a cell in A1 notation and panics on error. Intended for
// tests and examples.
func MustCell(s string) Ref {
	r, err := ParseA1(s)
	if err != nil {
		panic(err)
	}
	return r
}

func isLetter(c byte) bool {
	return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
