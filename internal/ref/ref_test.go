package ref

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestColNameRoundTrip(t *testing.T) {
	cases := map[int]string{
		1: "A", 2: "B", 26: "Z", 27: "AA", 28: "AB", 52: "AZ", 53: "BA",
		702: "ZZ", 703: "AAA", 16384: "XFD",
	}
	for idx, name := range cases {
		if got := ColName(idx); got != name {
			t.Errorf("ColName(%d) = %q, want %q", idx, got, name)
		}
		if got := ColIndex(name); got != idx {
			t.Errorf("ColIndex(%q) = %d, want %d", name, got, idx)
		}
	}
}

func TestColIndexInvalid(t *testing.T) {
	for _, s := range []string{"", "1A", "A1", "@", "a1"} {
		if got := ColIndex(s); got != 0 {
			t.Errorf("ColIndex(%q) = %d, want 0", s, got)
		}
	}
}

func TestColNameLowercaseAccepted(t *testing.T) {
	if got := ColIndex("ab"); got != 28 {
		t.Errorf("ColIndex(ab) = %d, want 28", got)
	}
}

func TestParseA1(t *testing.T) {
	cases := map[string]Ref{
		"A1":     {1, 1},
		"B2":     {2, 2},
		"$B$2":   {2, 2},
		"$C4":    {3, 4},
		"D$5":    {4, 5},
		"AA100":  {27, 100},
		"XFD999": {16384, 999},
	}
	for s, want := range cases {
		got, err := ParseA1(s)
		if err != nil {
			t.Fatalf("ParseA1(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParseA1(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestParseA1Flags(t *testing.T) {
	r, cf, rf, err := ParseA1Flags("$B$2")
	if err != nil || r != (Ref{2, 2}) || !cf || !rf {
		t.Fatalf("ParseA1Flags($B$2) = %v %v %v %v", r, cf, rf, err)
	}
	r, cf, rf, err = ParseA1Flags("B$2")
	if err != nil || r != (Ref{2, 2}) || cf || !rf {
		t.Fatalf("ParseA1Flags(B$2) = %v %v %v %v", r, cf, rf, err)
	}
	r, cf, rf, err = ParseA1Flags("$B2")
	if err != nil || r != (Ref{2, 2}) || !cf || rf {
		t.Fatalf("ParseA1Flags($B2) = %v %v %v %v", r, cf, rf, err)
	}
}

func TestParseA1Errors(t *testing.T) {
	for _, s := range []string{"", "1", "A", "A0", "$", "$1", "A1B", "A-1", "1A"} {
		if _, err := ParseA1(s); err == nil {
			t.Errorf("ParseA1(%q): want error", s)
		}
	}
}

func TestParseRangeA1(t *testing.T) {
	g, err := ParseRangeA1("A1:B3")
	if err != nil {
		t.Fatal(err)
	}
	if g.Head != (Ref{1, 1}) || g.Tail != (Ref{2, 3}) {
		t.Errorf("got %v", g)
	}
	// Reversed corners normalise.
	g, err = ParseRangeA1("B3:A1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Head != (Ref{1, 1}) || g.Tail != (Ref{2, 3}) {
		t.Errorf("normalised got %v", g)
	}
	// Single cell.
	g, err = ParseRangeA1("C7")
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCell() || g.Head != (Ref{3, 7}) {
		t.Errorf("cell got %v", g)
	}
	if _, err := ParseRangeA1("A1:"); err == nil {
		t.Error("want error for open range")
	}
	if _, err := ParseRangeA1(":B2"); err == nil {
		t.Error("want error for open range")
	}
}

func TestRangeString(t *testing.T) {
	if s := MustRange("A1:B3").String(); s != "A1:B3" {
		t.Errorf("got %q", s)
	}
	if s := MustRange("C7").String(); s != "C7" {
		t.Errorf("got %q", s)
	}
	if s := MustCell("AB12").String(); s != "AB12" {
		t.Errorf("got %q", s)
	}
}

func TestBound(t *testing.T) {
	a := MustRange("A1:A3")
	b := MustRange("A2:A5")
	got := a.Bound(b)
	if got != MustRange("A1:A5") {
		t.Errorf("Bound = %v, want A1:A5", got)
	}
	// Disjoint ranges still produce the minimal bounding rectangle.
	got = MustRange("A1").Bound(MustRange("C3"))
	if got != MustRange("A1:C3") {
		t.Errorf("Bound = %v, want A1:C3", got)
	}
}

func TestIntersect(t *testing.T) {
	a := MustRange("A1:C3")
	b := MustRange("B2:D4")
	got, ok := a.Intersect(b)
	if !ok || got != MustRange("B2:C3") {
		t.Errorf("Intersect = %v %v", got, ok)
	}
	_, ok = MustRange("A1:A2").Intersect(MustRange("B1:B2"))
	if ok {
		t.Error("disjoint ranges must not intersect")
	}
}

func TestOverlapsAndContains(t *testing.T) {
	g := MustRange("B2:D4")
	if !g.Contains(MustCell("C3")) || g.Contains(MustCell("A1")) {
		t.Error("Contains wrong")
	}
	if !g.ContainsRange(MustRange("B2:C3")) || g.ContainsRange(MustRange("B2:E3")) {
		t.Error("ContainsRange wrong")
	}
	if !g.Overlaps(MustRange("D4:F6")) || g.Overlaps(MustRange("E5:F6")) {
		t.Error("Overlaps wrong")
	}
}

func TestSubtract(t *testing.T) {
	g := MustRange("A1:C3")

	// No overlap: unchanged.
	rest := g.Subtract(MustRange("E5:F6"))
	if len(rest) != 1 || rest[0] != g {
		t.Fatalf("no-overlap subtract = %v", rest)
	}

	// Full cover: empty.
	rest = g.Subtract(MustRange("A1:C3"))
	if len(rest) != 0 {
		t.Fatalf("full-cover subtract = %v", rest)
	}

	// Middle cell: four bands.
	rest = g.Subtract(MustRange("B2"))
	if len(rest) != 4 {
		t.Fatalf("middle subtract = %v", rest)
	}
	checkPartition(t, g, MustRange("B2"), rest)

	// Column-segment subtraction used by removeDep: remove C2 from C1:C4.
	col := MustRange("C1:C4")
	rest = col.Subtract(MustRange("C2"))
	if len(rest) != 2 || rest[0] != MustRange("C1") || rest[1] != MustRange("C3:C4") {
		t.Fatalf("column subtract = %v", rest)
	}
}

func checkPartition(t *testing.T, whole, removed Range, rest []Range) {
	t.Helper()
	// Every remaining cell is in exactly one piece and not in removed.
	count := 0
	whole.Cells(func(c Ref) bool {
		in := 0
		for _, p := range rest {
			if p.Contains(c) {
				in++
			}
		}
		if removed.Contains(c) {
			if in != 0 {
				t.Errorf("cell %v removed but still present", c)
			}
		} else {
			if in != 1 {
				t.Errorf("cell %v appears in %d pieces", c, in)
			}
		}
		count++
		return true
	})
	if count != whole.Size() {
		t.Errorf("iterated %d cells, want %d", count, whole.Size())
	}
}

func TestSubtractAll(t *testing.T) {
	g := MustRange("A1:A10")
	rest := g.SubtractAll([]Range{MustRange("A2:A3"), MustRange("A7")})
	total := 0
	for _, p := range rest {
		total += p.Size()
	}
	if total != 7 {
		t.Errorf("remaining cells = %d, want 7 (%v)", total, rest)
	}
}

func TestAdjacent(t *testing.T) {
	a := MustRange("C1:C3")
	if !a.Adjacent(MustRange("C4"), AxisCol) {
		t.Error("C4 should be column-adjacent below C1:C3")
	}
	if a.Adjacent(MustRange("C5"), AxisCol) {
		t.Error("C5 is not adjacent to C1:C3")
	}
	if a.Adjacent(MustRange("D1"), AxisCol) {
		t.Error("different column is not column-adjacent")
	}
	b := MustRange("B2:D2")
	if !b.Adjacent(MustRange("E2"), AxisRow) || !b.Adjacent(MustRange("A2"), AxisRow) {
		t.Error("row adjacency failed")
	}
	if b.Adjacent(MustRange("E3"), AxisRow) {
		t.Error("different row is not row-adjacent")
	}
}

func TestAxisString(t *testing.T) {
	if AxisCol.String() != "column" || AxisRow.String() != "row" {
		t.Error("axis names wrong")
	}
}

func TestTransposeProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randRange(r))
			}
		},
	}
	// T is an involution and preserves size.
	err := quick.Check(func(g Range) bool {
		return g.T().T() == g && g.T().Size() == g.Size()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
	// Transposition commutes with Bound and Intersect.
	err = quick.Check(func(a, b Range) bool {
		if a.Bound(b).T() != a.T().Bound(b.T()) {
			return false
		}
		x, okX := a.Intersect(b)
		y, okY := a.T().Intersect(b.T())
		if okX != okY {
			return false
		}
		return !okX || x.T() == y
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSubtractProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		g := randRange(r)
		b := randRange(r)
		rest := g.Subtract(b)
		area := 0
		for j, p := range rest {
			if !p.Valid() {
				t.Fatalf("invalid piece %v from %v - %v", p, g, b)
			}
			area += p.Size()
			for k := j + 1; k < len(rest); k++ {
				if p.Overlaps(rest[k]) {
					t.Fatalf("pieces overlap: %v %v from %v - %v", p, rest[k], g, b)
				}
			}
		}
		cut, ok := g.Intersect(b)
		cutArea := 0
		if ok {
			cutArea = cut.Size()
		}
		if area != g.Size()-cutArea {
			t.Fatalf("area mismatch: %d + %d != %d for %v - %v", area, cutArea, g.Size(), g, b)
		}
	}
}

func TestRefOrderAndOffsets(t *testing.T) {
	a := Ref{3, 5}
	b := Ref{1, 2}
	o := a.Sub(b)
	if o != (Offset{2, 3}) || b.Add(o) != a {
		t.Error("Sub/Add mismatch")
	}
	if o.T() != (Offset{3, 2}) {
		t.Error("Offset.T wrong")
	}
	if !b.Before(a) || a.Before(b) {
		t.Error("Before wrong")
	}
	if !(Ref{5, 2}).Before(Ref{1, 3}) {
		t.Error("Before must order by row first")
	}
}

func TestValid(t *testing.T) {
	if (Ref{0, 1}).Valid() || (Ref{1, 0}).Valid() || !(Ref{1, 1}).Valid() {
		t.Error("Ref.Valid wrong")
	}
	if (Range{Ref{2, 2}, Ref{1, 1}}).Valid() {
		t.Error("inverted range must be invalid")
	}
}

func TestCellsEarlyStop(t *testing.T) {
	n := 0
	MustRange("A1:C3").Cells(func(Ref) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("early stop visited %d cells", n)
	}
}

func randRange(r *rand.Rand) Range {
	a := Ref{1 + r.Intn(12), 1 + r.Intn(12)}
	b := Ref{1 + r.Intn(12), 1 + r.Intn(12)}
	return RangeOf(a, b)
}
