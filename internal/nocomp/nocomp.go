// Package nocomp implements the paper's NoComp baseline (Sec. IV-D): an
// uncompressed formula graph stored as an adjacency list with an R-tree over
// the vertices. Every dependency is one edge; finding dependents or
// precedents is a conventional BFS that, unlike TACO, must visit each
// dependency individually.
package nocomp

import (
	"taco/internal/core"
	"taco/internal/ref"
	"taco/internal/rtree"
)

// Edge is one uncompressed dependency edge.
type Edge struct {
	Prec ref.Range
	Dep  ref.Ref
}

// Graph is the uncompressed formula graph.
type Graph struct {
	edges  map[*Edge]struct{}
	byPrec *rtree.Tree[*Edge]
	byDep  *rtree.Tree[*Edge]
}

// NewGraph returns an empty uncompressed graph.
func NewGraph() *Graph {
	return &Graph{
		edges:  make(map[*Edge]struct{}),
		byPrec: rtree.New[*Edge](),
		byDep:  rtree.New[*Edge](),
	}
}

// Build constructs the graph from a dependency list.
func Build(deps []core.Dependency) *Graph {
	g := NewGraph()
	for _, d := range deps {
		g.AddDependency(d)
	}
	return g
}

// AddDependency inserts one dependency (always as its own edge).
func (g *Graph) AddDependency(d core.Dependency) {
	e := &Edge{Prec: d.Prec, Dep: d.Dep}
	g.edges[e] = struct{}{}
	g.byPrec.Insert(e.Prec, e)
	g.byDep.Insert(ref.CellRange(e.Dep), e)
}

// NumEdges returns |E'|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumVertices returns |V'|: the number of distinct ranges among precedents
// and dependent cells.
func (g *Graph) NumVertices() int {
	seen := make(map[ref.Range]struct{}, 2*len(g.edges))
	for e := range g.edges {
		seen[e.Prec] = struct{}{}
		seen[ref.CellRange(e.Dep)] = struct{}{}
	}
	return len(seen)
}

// FindDependents returns the transitive dependent cells of r as disjoint
// ranges (each dependent is a single formula cell, so the result is a list
// of 1x1 ranges).
func (g *Graph) FindDependents(r ref.Range) []ref.Range {
	var result []ref.Range
	visited := map[ref.Ref]bool{}
	queue := []ref.Range{r}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		g.byPrec.Search(cur, func(_ ref.Range, e *Edge) bool {
			if !visited[e.Dep] {
				visited[e.Dep] = true
				c := ref.CellRange(e.Dep)
				result = append(result, c)
				queue = append(queue, c)
			}
			return true
		})
	}
	return result
}

// FindPrecedents returns the transitive precedent ranges of r. Because
// precedents are ranges, the visited set needs the same rectangle
// subtraction bookkeeping TACO uses.
func (g *Graph) FindPrecedents(r ref.Range) []ref.Range {
	var result []ref.Range
	visited := rtree.New[struct{}]()
	queue := []ref.Range{r}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		g.byDep.Search(cur, func(_ ref.Range, e *Edge) bool {
			var overlapping []ref.Range
			visited.Search(e.Prec, func(seen ref.Range, _ struct{}) bool {
				overlapping = append(overlapping, seen)
				return true
			})
			for _, part := range e.Prec.SubtractAll(overlapping) {
				visited.Insert(part, struct{}{})
				result = append(result, part)
				queue = append(queue, part)
			}
			return true
		})
	}
	return result
}

// DirectPrecedents calls fn with the one-hop precedent ranges of r — every
// edge whose formula cell lies in r contributes its precedent range, without
// transitive traversal or deduplication. The uncompressed mirror of
// core.Graph.DirectPrecedents, so either backend can drive the engine's
// wavefront recalculation scheduler.
func (g *Graph) DirectPrecedents(r ref.Range, fn func(ref.Range) bool) {
	g.byDep.Search(r, func(_ ref.Range, e *Edge) bool {
		if r.Contains(e.Dep) {
			return fn(e.Prec)
		}
		return true
	})
}

// Clear removes every dependency whose formula cell lies in s.
func (g *Graph) Clear(s ref.Range) {
	var doomed []*Edge
	g.byDep.Search(s, func(_ ref.Range, e *Edge) bool {
		if s.Contains(e.Dep) {
			doomed = append(doomed, e)
		}
		return true
	})
	for _, e := range doomed {
		delete(g.edges, e)
		g.byPrec.Delete(e.Prec, func(x *Edge) bool { return x == e })
		g.byDep.Delete(ref.CellRange(e.Dep), func(x *Edge) bool { return x == e })
	}
}
