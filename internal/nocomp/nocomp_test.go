package nocomp

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/ref"
)

func dep(prec, cell string) core.Dependency {
	return core.Dependency{Prec: ref.MustRange(prec), Dep: ref.MustCell(cell)}
}

func cellsOf(rs []ref.Range) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	for _, g := range rs {
		g.Cells(func(c ref.Ref) bool {
			out[c] = true
			return true
		})
	}
	return out
}

func TestFig3Graph(t *testing.T) {
	// The paper's Fig. 3 spreadsheet: B1=SUM(A1:A3), B2=SUM(A1:A3),
	// C1=B1+B3, C2=AVG(B2:B3).
	deps := []core.Dependency{
		dep("A1:A3", "B1"),
		dep("A1:A3", "B2"),
		dep("B1", "C1"),
		dep("B3", "C1"),
		dep("B2:B3", "C2"),
	}
	g := Build(deps)
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Dependents of A1 are {B1, B2, C1, C2} (paper's example).
	got := cellsOf(g.FindDependents(ref.MustRange("A1")))
	want := cellsOf([]ref.Range{ref.MustRange("B1"), ref.MustRange("B2"),
		ref.MustRange("C1"), ref.MustRange("C2")})
	if len(got) != len(want) {
		t.Fatalf("dependents of A1 = %v", got)
	}
	for c := range want {
		if !got[c] {
			t.Errorf("missing dependent %v", c)
		}
	}
	// Precedents of C2: B2:B3 and, through B2, A1:A3.
	gotP := cellsOf(g.FindPrecedents(ref.MustRange("C2")))
	for _, c := range []string{"B2", "B3", "A1", "A2", "A3"} {
		if !gotP[ref.MustCell(c)] {
			t.Errorf("missing precedent %s", c)
		}
	}
}

func TestClear(t *testing.T) {
	g := Build([]core.Dependency{
		dep("A1:A3", "B1"), dep("A1:A3", "B2"), dep("B1", "C1"),
	})
	g.Clear(ref.MustRange("B1:B2"))
	if g.NumEdges() != 1 {
		t.Fatalf("edges after clear = %d", g.NumEdges())
	}
	if got := g.FindDependents(ref.MustRange("A1")); len(got) != 0 {
		t.Fatalf("dependents after clear = %v", got)
	}
}

func TestVertices(t *testing.T) {
	g := Build([]core.Dependency{
		dep("A1:A3", "B1"), dep("A1:A3", "B2"),
	})
	// Vertices: A1:A3, B1, B2.
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
}

// TestAgreesWithTACO cross-checks NoComp and TACO on random workloads: both
// must return the same dependent and precedent cell sets.
func TestAgreesWithTACO(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var deps []core.Dependency
		rows := 15 + rng.Intn(10)
		for col := 2; col <= 6; col++ {
			for row := 1; row <= rows; row++ {
				if rng.Intn(8) == 0 {
					continue
				}
				src := 1 + rng.Intn(col-1)
				h := rng.Intn(3)
				deps = append(deps, core.Dependency{
					Prec: ref.RangeOf(ref.Ref{Col: src, Row: row}, ref.Ref{Col: src, Row: row + h}),
					Dep:  ref.Ref{Col: col, Row: row},
				})
			}
		}
		nc := Build(deps)
		tg := core.Build(deps, core.DefaultOptions())
		for q := 0; q < 8; q++ {
			r := ref.CellRange(ref.Ref{Col: 1 + rng.Intn(6), Row: 1 + rng.Intn(rows)})
			a := cellsOf(nc.FindDependents(r))
			b := cellsOf(tg.FindDependents(r))
			if len(a) != len(b) {
				t.Fatalf("seed %d query %v: nocomp %d deps, taco %d", seed, r, len(a), len(b))
			}
			for c := range a {
				if !b[c] {
					t.Fatalf("seed %d query %v: taco missing %v", seed, r, c)
				}
			}
			ap := cellsOf(nc.FindPrecedents(r))
			bp := cellsOf(tg.FindPrecedents(r))
			if len(ap) != len(bp) {
				t.Fatalf("seed %d query %v: nocomp %d precs, taco %d", seed, r, len(ap), len(bp))
			}
		}
	}
}
