package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"taco/internal/engine"
	"taco/internal/faultfs"
	"taco/internal/formula"
	"taco/internal/journal"
	"taco/internal/ref"
)

// deltaStoreOpts is the delta-snapshot test configuration: one shard, one
// resident slot (every cross-session touch is an eviction), serial recalc.
func deltaStoreOpts(dir string) StoreOptions {
	return StoreOptions{
		Shards: 1, MaxResident: 1, RecalcWorkers: -1,
		Durable: true, SpillDir: dir, FsyncPolicy: "never",
		DeltaSnapshots: true,
	}
}

// sheetBatch builds one structural bulk batch: `rows` value cells in column A
// and rows/4 SUM formulas over them in column B.
func sheetBatch(rows int) []EditOp {
	var b []EditOp
	for r := 1; r <= rows; r++ {
		b = append(b, EditOp{Cell: fmt.Sprintf("A%d", r), Value: num(float64(r))})
	}
	for r := 1; r <= rows/4; r++ {
		b = append(b, EditOp{Cell: fmt.Sprintf("B%d", r), Formula: str(fmt.Sprintf("SUM(A%d:A%d)", r, r+3))})
	}
	return b
}

// chainLen reads a session's delta chain length under its lock.
func chainLen(s *Session) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chain)
}

// globCount counts spill-dir files matching pattern.
func globCount(t *testing.T, dir, pattern string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestDeltaSpillRestoreRoundTrip drives the tentpole write path: a session's
// first eviction writes a full base, every later value-only eviction extends
// a delta chain instead of re-encoding the sheet, and restores — both a
// fault-in on the live store and a cold restart whose journals were
// truncated at checkpoint — replay base + chain to exactly the reference
// values.
func TestDeltaSpillRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := deltaStoreOpts(dir)
	st1, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st1.Close)
	st1.ckptBytes = 1 // every spill checkpoints the registry and truncates the journal

	var batches [][]EditOp
	batches = append(batches, sheetBatch(16))
	a := st1.Create("a", engine.New(nil)).ID
	applyJournaled(t, st1, a, batches[0])
	b := st1.Create("b", engine.New(nil)).ID // evicts a: full base snapshot
	sa, _ := st1.Peek(a)
	if sa.Resident() {
		t.Fatal("a still resident past the cap")
	}
	if n := chainLen(sa); n != 0 {
		t.Fatalf("first eviction built a chain of %d, want full base", n)
	}

	// Alternating value-only touches: each edit of a faults it in and evicts
	// b, each edit of b evicts a — whose tail is one value batch, the delta
	// shape.
	for round := 1; round <= 3; round++ {
		batch := []EditOp{{Cell: "A1", Value: num(float64(1000 * round))}}
		batches = append(batches, batch)
		applyJournaled(t, st1, a, batch)
		applyJournaled(t, st1, b, []EditOp{{Cell: "A1", Value: num(float64(round))}})
	}
	if n := chainLen(sa); n != 3 {
		t.Fatalf("chain length = %d, want 3 (one delta per value-only eviction)", n)
	}
	if n := globCount(t, dir, "*"+deltaSuffix); n == 0 {
		t.Fatal("no delta files on disk")
	}

	refEng := engine.New(nil)
	for _, batch := range batches {
		ops, err := parseBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		applyBatch(refEng, ops)
	}
	refEng.RecalculateAll()
	verify := func(st *Store, label string) {
		t.Helper()
		if err := st.Wait(a); err != nil {
			t.Fatalf("%s: wait: %v", label, err)
		}
		err := st.View(a, func(_ *Session, eng *engine.Engine) error {
			for _, at := range touchedRefs(batches) {
				if got, want := eng.Value(at), refEng.Value(at); !sameValue(got, want) {
					t.Errorf("%s: cell %s: got %v, want %v", label, ref.FormatA1(at), got, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	verify(st1, "live fault-in") // base + chain replay on the running store

	st1.Close()
	st2, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// The journals were truncated at every checkpoint, so this restore can
	// only come from the registry's base + chain state.
	verify(st2, "cold restart")
	s2, err := st2.Peek(a)
	if err != nil {
		t.Fatal(err)
	}
	if n := chainLen(s2); n == 0 {
		t.Fatal("restart lost the chain: registry entry carried no links")
	}
	assertNoTempFiles(t, dir)
}

// TestDeltaCompactionCollapsesChain: a chain at DeltaMaxChain forces the next
// eviction to rewrite a fresh full base, reset the chain, and delete the
// superseded delta files (their refcounts reach zero only after the registry
// durably points at the new base).
func TestDeltaCompactionCollapsesChain(t *testing.T) {
	dir := t.TempDir()
	opts := deltaStoreOpts(dir)
	opts.DeltaMaxChain = 2
	st, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	a := st.Create("a", engine.New(nil)).ID
	applyJournaled(t, st, a, sheetBatch(16))
	b := st.Create("b", engine.New(nil)).ID // full base
	sa, _ := st.Peek(a)
	for round := 1; round <= 2; round++ {
		applyJournaled(t, st, a, []EditOp{{Cell: "A2", Value: num(float64(round))}})
		applyJournaled(t, st, b, []EditOp{{Cell: "A1", Value: num(1)}})
	}
	if n := chainLen(sa); n != 2 {
		t.Fatalf("chain = %d, want 2 (at the cap)", n)
	}
	if n := globCount(t, dir, "*"+deltaSuffix); n == 0 {
		t.Fatal("no delta files before compaction")
	}
	// One more cycle: the chain is at its cap, so this eviction compacts.
	applyJournaled(t, st, a, []EditOp{{Cell: "A3", Value: num(7)}})
	applyJournaled(t, st, b, []EditOp{{Cell: "A1", Value: num(2)}})
	if n := chainLen(sa); n != 0 {
		t.Fatalf("chain = %d after compaction, want 0", n)
	}
	// a's deltas are unreferenced and deleted; b (never compacted) may still
	// own chain files, so count a's specifically.
	if n := globCount(t, dir, a+".*"+deltaSuffix); n != 0 {
		t.Fatalf("%d stale delta files survived compaction", n)
	}
	if _, err := os.Stat(filepath.Join(dir, a+".tacos")); err != nil {
		t.Fatalf("compacted base missing: %v", err)
	}
}

// TestForkSharesBaseWithoutFaultIn is the O(1)-fork proof, stated in bytes
// and file identity rather than wall-clock: forking a spilled parent must not
// fault its engine in, and the only artifact it may create is the frozen
// base — a hard link to the parent's existing snapshot, not a copy. Registry
// growth is bounded by a constant, so the assertions hold identically for a
// 16-row parent and a 100k-row one.
func TestForkSharesBaseWithoutFaultIn(t *testing.T) {
	plain, err := NewStore(StoreOptions{RecalcWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	p := plain.Create("p", engine.New(nil))
	if _, err := plain.Fork(p.ID, "f"); !errors.Is(err, ErrForkUnsupported) {
		t.Fatalf("fork on a non-durable store: err = %v, want ErrForkUnsupported", err)
	}
	plain.Close()

	dir := t.TempDir()
	st, err := NewStore(deltaStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := st.Create("a", engine.New(nil)).ID
	applyJournaled(t, st, a, sheetBatch(400))
	st.Create("b", engine.New(nil)) // evicts a
	sa, _ := st.Peek(a)
	if sa.Resident() {
		t.Fatal("parent still resident")
	}

	before := map[string]int64{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		before[e.Name()] = fi.Size()
	}

	child, err := st.Fork(a, "what-if")
	if err != nil {
		t.Fatal(err)
	}
	if sa.Resident() {
		t.Fatal("fork faulted the spilled parent in — not O(1)")
	}

	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var grown int64
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if old, ok := before[fi.Name()]; ok {
			grown += fi.Size() - old
			continue
		}
		// The only new file allowed is the frozen base, and it must share the
		// parent snapshot's inode (a link, not an O(sheet) copy).
		if filepath.Ext(fi.Name()) != baseSuffix {
			t.Fatalf("fork created %s; only a %s freeze is allowed", fi.Name(), baseSuffix)
		}
		spillFi, err := os.Stat(filepath.Join(dir, a+".tacos"))
		if err != nil {
			t.Fatal(err)
		}
		if !os.SameFile(fi, spillFi) {
			t.Fatalf("frozen base %s is a copy, want a hard link to the parent snapshot", fi.Name())
		}
	}
	if grown > 4096 {
		t.Fatalf("fork grew pre-existing files by %d bytes, want O(1) registry appends", grown)
	}

	// The child serves the parent's values, then diverges without back-flow.
	at := ref.Ref{Col: 1, Row: 1} // A1
	err = st.View(child.ID, func(_ *Session, eng *engine.Engine) error {
		if v := eng.Value(at); v.Num != 1 {
			t.Fatalf("child A1 = %v, want the parent's 1", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	applyJournaled(t, st, child.ID, []EditOp{{Cell: "A1", Value: num(999)}})
	err = st.View(a, func(_ *Session, eng *engine.Engine) error {
		if v := eng.Value(at); v.Num != 1 {
			t.Fatalf("child edit leaked into the parent: A1 = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForkSurvivesParentDelete: the frozen base is refcounted, so deleting
// the parent (even before the child ever materialised) leaves the child
// restorable; deleting the child too releases every shared artifact.
func TestForkSurvivesParentDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(deltaStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := st.Create("a", engine.New(nil)).ID
	applyJournaled(t, st, a, sheetBatch(16))
	st.Create("b", engine.New(nil)) // evicts a
	// A value tail checkpointed by the fork itself, so the child also shares
	// a delta link, not just the base.
	applyJournaled(t, st, a, []EditOp{{Cell: "A1", Value: num(555)}})
	child, err := st.Fork(a, "heir")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(a); err != nil {
		t.Fatal(err)
	}
	if err := st.Wait(child.ID); err != nil {
		t.Fatal(err)
	}
	err = st.View(child.ID, func(_ *Session, eng *engine.Engine) error {
		if v := eng.Value(ref.Ref{Col: 1, Row: 1}); v.Num != 555 {
			t.Fatalf("orphaned child A1 = %v, want 555 (base + delta replay)", v)
		}
		if v := eng.Value(ref.Ref{Col: 2, Row: 1}); v.Kind != formula.KindNumber {
			t.Fatalf("orphaned child lost its formulas: B1 = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(child.ID); err != nil {
		t.Fatal(err)
	}
	if n := globCount(t, dir, "*"+baseSuffix) + globCount(t, dir, a+".*"+deltaSuffix); n != 0 {
		t.Fatalf("%d shared artifacts leaked after the last referent died", n)
	}
}

// TestCorruptMidChainDeltaQuarantines: a bit flip inside a chained delta file
// fails the restore with ErrSnapshotCorrupt, renames the file aside as
// .corrupt, and poisons only the owning session — the bystander keeps
// serving.
func TestCorruptMidChainDeltaQuarantines(t *testing.T) {
	dir := t.TempDir()
	opts := deltaStoreOpts(dir)
	st1, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st1.Close)
	st1.ckptBytes = 1 // chain state lands in the registry, journals truncate

	a := st1.Create("a", engine.New(nil)).ID
	applyJournaled(t, st1, a, sheetBatch(16))
	b := st1.Create("b", engine.New(nil)).ID // evicts a: full base
	applyJournaled(t, st1, a, []EditOp{{Cell: "A1", Value: num(42)}})
	applyJournaled(t, st1, b, []EditOp{{Cell: "A1", Value: num(1)}}) // evicts a: delta
	sa, _ := st1.Peek(a)
	if n := chainLen(sa); n != 1 {
		t.Fatalf("chain = %d, want 1", n)
	}
	st1.Close()

	deltas, err := filepath.Glob(filepath.Join(dir, a+".*"+deltaSuffix))
	if err != nil || len(deltas) != 1 {
		t.Fatalf("delta files = %v (err %v), want exactly one", deltas, err)
	}
	data, err := os.ReadFile(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(deltas[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for i := 0; i < 2; i++ { // poisoned: every touch fails identically
		err := st2.View(a, func(*Session, *engine.Engine) error { return nil })
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("touch %d: err = %v, want ErrSnapshotCorrupt", i, err)
		}
	}
	if _, err := os.Stat(deltas[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt delta not quarantined: %v", err)
	}
	if got := st2.Stats().QuarantinedSnapshots; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if err := st2.View(b, func(*Session, *engine.Engine) error { return nil }); err != nil {
		t.Fatalf("bystander poisoned by a's corrupt delta: %v", err)
	}
}

// TestDeltaRenameFaultFallsBackThenDegrades: a failed delta publish alone is
// not a fault — the spill falls back to a full snapshot and the store stays
// healthy. Only when the fallback fails too does the session degrade, and
// clearing the fault lets the repairer converge it onto a fresh chain-free
// base.
func TestDeltaRenameFaultFallsBackThenDegrades(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(deltaStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := st.Create("a", engine.New(nil)).ID
	applyJournaled(t, st, a, sheetBatch(16))
	b := st.Create("b", engine.New(nil)).ID // evicts a: full base
	sa, _ := st.Peek(a)

	// Phase 1: only the delta rename faults. The eviction silently writes a
	// full snapshot instead — graceful fallback, no degradation.
	defer faultfs.Clear()
	faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpRename, PathContains: deltaSuffix,
		Fault: faultfs.Fault{Err: syscall.EIO},
	})
	applyJournaled(t, st, a, []EditOp{{Cell: "A1", Value: num(2)}})
	applyJournaled(t, st, b, []EditOp{{Cell: "A1", Value: num(1)}}) // evicts a
	if got := st.Stats().DegradedSessions; got != 0 {
		t.Fatalf("delta fault with a working full path degraded %d sessions, want fallback", got)
	}
	if n := chainLen(sa); n != 0 {
		t.Fatalf("chain = %d after fallback, want 0 (full rewrite)", n)
	}

	// Phase 2: the full path faults too (Inject replaces the plan, so both
	// rules go in together) — now the spill has nowhere to land and the
	// session must degrade rather than drop durability.
	faultfs.Inject(
		faultfs.Rule{Op: faultfs.OpRename, PathContains: deltaSuffix,
			Fault: faultfs.Fault{Err: syscall.EIO}},
		faultfs.Rule{Op: faultfs.OpRename, PathContains: ".tacos",
			Fault: faultfs.Fault{Err: syscall.EIO}},
	)
	applyJournaled(t, st, a, []EditOp{{Cell: "A1", Value: num(3)}})
	st.Create("c", engine.New(nil)) // forces the faulted eviction
	if got := st.Stats().DegradedSessions; got == 0 {
		t.Fatal("spill with both paths faulted did not degrade")
	}

	// Disk heals: the repairer rewrites a full base and lifts the fence.
	faultfs.Clear()
	waitRepaired(t, st)
	applyJournaled(t, st, a, []EditOp{{Cell: "A2", Value: num(9)}})
	if err := st.Wait(a); err != nil {
		t.Fatal(err)
	}
	err = st.View(a, func(_ *Session, eng *engine.Engine) error {
		if v := eng.Value(ref.Ref{Col: 1, Row: 1}); v.Num != 3 {
			t.Fatalf("A1 = %v after repair, want 3", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBootRefcountsAndOrphanSweep: restart refcounts are rebuilt from the
// registry — shared artifacts referenced by any surviving entry stay, and
// files no entry references (crash leftovers) are swept at boot.
func TestBootRefcountsAndOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	opts := deltaStoreOpts(dir)
	st1, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st1.Close)
	st1.ckptBytes = 1
	a := st1.Create("a", engine.New(nil)).ID
	applyJournaled(t, st1, a, sheetBatch(16))
	st1.Create("b", engine.New(nil)) // evicts a
	child, err := st1.Fork(a, "kept")
	if err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Crash leftovers: a delta and a frozen base no registry entry names.
	orphanDelta := filepath.Join(dir, "deadbeef.9"+deltaSuffix)
	orphanBase := filepath.Join(dir, "deadbeef.9"+baseSuffix)
	for _, p := range []string{orphanDelta, orphanBase} {
		if err := os.WriteFile(p, append([]byte(nil), journal.DeltaMagic...), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, p := range []string{orphanDelta, orphanBase} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("orphan %s survived the boot sweep (err=%v)", filepath.Base(p), err)
		}
	}
	// The referenced frozen base survived, and both referents still restore.
	if n := globCount(t, dir, a+".*"+baseSuffix); n != 1 {
		t.Fatalf("frozen base count = %d, want 1", n)
	}
	for _, id := range []string{a, child.ID} {
		if err := st2.View(id, func(*Session, *engine.Engine) error { return nil }); err != nil {
			t.Fatalf("session %s does not restore after restart: %v", id, err)
		}
	}
}
