package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status code and size for metrics and
// access logs. Unwrap exposes the underlying writer so http.ResponseController
// (and anything else that probes optional interfaces through it) still works.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// requestID returns the caller-supplied X-Request-ID, or mints one. IDs tie
// an access-log line to a client retry or a support report; honouring the
// inbound header lets a proxy in front of the server own the ID space.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		return id
	}
	var b [8]byte
	rand.Read(b[:]) // never fails (crypto/rand panics internally if it would)
	return hex.EncodeToString(b[:])
}

// observe wraps the route mux with the HTTP telemetry: request counts by
// route and status, a latency histogram by route, an in-flight gauge, request
// IDs echoed on every response, and (when accessLog is non-nil) one
// structured line per request.
//
// The route label is the mux's matched pattern (r.Pattern, set by ServeMux
// during dispatch on this same request), not the raw URL — so label
// cardinality is bounded by the route table, never by client-chosen IDs.
func observe(mux *http.ServeMux, accessLog *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		httpInFlight.Add(1)
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		httpInFlight.Add(-1)
		if sw.status == 0 {
			// Handler wrote nothing; net/http sends 200 on return.
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		httpRequests.With(route, strconv.Itoa(sw.status)).Inc()
		httpDuration.With(route).Observe(elapsed.Seconds())
		if accessLog != nil {
			accessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
