package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"taco/internal/engine"
	"taco/internal/faultfs"
	"taco/internal/journal"
)

// This file is the store's durability layer (StoreOptions.Durable): a
// session becomes `snapshot + journal replay`. Every accepted edit batch is
// appended to the session's journal before the response commits; spills
// write their snapshot atomically and — once the journal passes the
// checkpoint threshold — advance the session's registry entry and truncate
// the journal; and a restarted store replays the registry at boot,
// re-registering every session as non-resident. Restoring a session then
// means: read the snapshot (integrity-checked, quarantined on corruption),
// replay the journal tail through the live edit path, and let the normal
// drain reconverge values.
//
// Crash ordering. Journal records carry the post-batch revision and replay
// skips records at or below the snapshot's revision, while every edit op is
// an absolute assignment — so replaying a suffix of batches that the
// snapshot already contains is harmless. That idempotence is what makes each
// crash window safe: snapshot rename before registry update (re-replays the
// tail), registry update before journal truncation (stale records are
// skipped), truncation last (nothing left to replay).
//
// Durability grades. Appends and snapshot renames are synchronous write(2)s,
// so SIGKILL loses nothing under any policy; the fsync policy only decides
// what a power failure can take: `always` fsyncs journals on every commit
// and snapshots before rename, `interval` (default) bounds loss to one
// background-sync tick, `never` leaves write-back to the kernel.

// registryFile is the session manifest's name inside SpillDir.
const registryFile = "sessions.tacor"

// journalSuffix names per-session edit journals, next to the .tacos spills.
const journalSuffix = ".tacoj"

// ErrSnapshotCorrupt marks a session whose spill file failed its integrity
// check at restore. The file has been quarantined (renamed *.corrupt) and
// the session keeps failing with this error rather than serving bad data —
// one corrupt session never degrades the rest of the store.
var ErrSnapshotCorrupt = errors.New("server: session snapshot corrupt (quarantined)")

func (st *Store) journalPath(id string) string {
	return filepath.Join(st.opts.SpillDir, id+journalSuffix)
}

// syncFiles reports whether snapshot writes should fsync before rename:
// only under `fsync=always` — eviction-heavy workloads spill hundreds of
// times per second, and rename atomicity alone already survives anything
// short of power loss.
func (st *Store) syncFiles() bool {
	return st.opts.Durable && st.pol == journal.SyncAlways
}

// openDurability wires the durability layer into a new store: the fsync
// policy, the shared background syncer (interval policy only), and the
// session registry. Called from NewStore before any session exists.
func (st *Store) openDurability() error {
	pol, err := journal.ParsePolicy(st.opts.FsyncPolicy)
	if err != nil {
		return err
	}
	st.pol = pol
	st.ckptBytes = journalCheckpointBytes
	if pol == journal.SyncInterval {
		st.syncer = journal.NewSyncer(st.opts.FsyncInterval)
	}
	st.reg, err = journal.OpenRegistry(filepath.Join(st.opts.SpillDir, registryFile), pol, st.syncer)
	if err != nil {
		if st.syncer != nil {
			st.syncer.Close()
		}
		return fmt.Errorf("server: open session registry: %w", err)
	}
	return nil
}

// bootRecover re-registers every session the registry knows about, as
// non-resident: restore stays lazy, exactly like a spilled session, so a
// warm boot costs one registry replay plus one journal header scan per
// session regardless of corpus size. A session's revision resumes at its
// journal head (every acknowledged batch), or its snapshot revision when
// the journal is empty or truncated away.
func (st *Store) bootRecover() {
	for _, e := range st.reg.Entries() {
		head, _, err := journal.ScanFile(st.journalPath(e.ID), journal.JournalMagic, nil)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			head = 0 // unreadable journal: serve the snapshot alone
		}
		s := &Session{
			ID: e.ID, Name: e.Name, rev: e.SnapRev, snapRev: e.SnapRev, snapHeld: e.SnapHeld,
			baseID: e.BaseID, baseRev: e.BaseRev,
			chain: append([]journal.ChainLink(nil), e.Chain...),
		}
		if e.BaseID == "" && len(e.Chain) == 0 {
			// Pre-extension entry (or chain-free session): the own-file base
			// holds exactly the snapshot revision.
			s.baseRev = e.SnapRev
		}
		if head > s.rev {
			s.rev = head
		}
		// Every registry entry is a live referent of its shared artifacts;
		// the post-recovery orphan sweep relies on these counts being
		// complete before the store serves.
		for _, p := range st.sharedRefsLocked(s) {
			st.incref(p)
		}
		s.tick.Store(st.clock.Add(1))
		sh := st.shardFor(e.ID)
		s.shard = sh
		sh.mu.Lock()
		sh.sessions[e.ID] = s
		sh.mu.Unlock()
		st.recovered.Add(1)
		mRecoveredSessions.Inc()
	}
}

// closeDurability flushes and closes every journal, the syncer, and the
// registry. Called once from Close after the drain workers have stopped.
func (st *Store) closeDurability() {
	st.Each(func(s *Session) bool {
		s.mu.Lock()
		if s.jw != nil {
			s.jw.Close()
			s.jw = nil
		}
		s.mu.Unlock()
		return true
	})
	if st.syncer != nil {
		st.syncer.Close()
	}
	st.reg.Close()
}

// sessionJournal lazily opens the session's journal writer. Called with
// s.mu held.
func (st *Store) sessionJournal(s *Session) (*journal.Writer, error) {
	if s.jw != nil {
		return s.jw, nil
	}
	w, err := journal.Open(st.journalPath(s.ID), journal.JournalMagic, st.pol, st.syncer)
	if err != nil {
		return nil, err
	}
	s.jw = w
	return w, nil
}

// recordCreate makes a freshly created session durable before it is
// published: a non-empty engine gets an initial snapshot at revision 0 (so
// a crash before the first spill still restores its loaded content), and
// the registry learns the session either way. The engine is still owned
// exclusively by Create's caller, so no locks are taken. Failures degrade
// the session to non-durable with a metric rather than failing creation —
// the spill path's philosophy (a non-TACO graph backend, for example, has
// no snapshot encoding at all).
func (st *Store) recordCreate(s *Session, eng *engine.Engine) {
	if eng.NumCells() > 0 {
		buf := bufPool.Get().(*bytes.Buffer)
		defer func() { buf.Reset(); bufPool.Put(buf) }()
		buf.Reset()
		blob, gen, err := eng.WriteSnapshotCached(buf, nil, 0)
		if err == nil {
			err = writeFileAtomic(st.spillPath(s.ID), buf.Bytes(), st.syncFiles())
		}
		if err != nil {
			mDurabilityErrors.Inc()
			return
		}
		s.graphBlob, s.graphBlobGen = blob, gen
		s.snapHeld = true
		s.snapRev = 0
		s.baseRev = 0
		s.baseBytes = int64(buf.Len())
		mSpillBytes.Add(uint64(buf.Len()))
	}
	if err := st.reg.Put(regEntryLocked(s)); err != nil {
		mDurabilityErrors.Inc()
		return
	}
	if err := st.reg.Sync(); err != nil {
		mDurabilityErrors.Inc()
	}
}

// journalCheckpointBytes is the journal size above which a spill checkpoints
// durable state: advance the registry to the new snapshot revision, then
// truncate the journal. Below it the spill leaves both alone — the registry
// entry goes stale, which replay idempotence makes safe (a recovered session
// re-applies absolute-assignment batches its snapshot already contains) —
// so eviction-heavy workloads pay the registry append and ftruncate once per
// ~256KB of log instead of once per spill.
const journalCheckpointBytes = 256 << 10

// noteSpilled runs after a spill wrote (or reused) the session's snapshot.
// When the journal has grown past the checkpoint threshold: advance the
// registry entry, make it durable, and only then truncate the journal —
// records the snapshot supersedes are skipped (or idempotently re-applied)
// by replay, so truncating last means no crash window can lose an
// acknowledged batch. Called with victim.mu held.
func (st *Store) noteSpilled(victim *Session) {
	if !st.opts.Durable {
		return
	}
	if victim.jw == nil || victim.jw.Size() < st.ckptBytes {
		return // registry entry from create (or the last checkpoint) still serves
	}
	err := st.reg.Put(regEntryLocked(victim))
	if err == nil {
		err = st.reg.Sync()
	}
	if err != nil {
		mDurabilityErrors.Inc()
		return // keep the journal: replay still reconstructs past the stale entry
	}
	if err := victim.jw.Reset(); err != nil {
		mDurabilityErrors.Inc()
	}
}

// recordDelete erases a session's durable state: journal file and registry
// entry. The journal writer was detached and closed by Delete already.
func (st *Store) recordDelete(id string) {
	os.Remove(st.journalPath(id))
	if err := st.reg.Delete(id); err != nil {
		mDurabilityErrors.Inc()
		return
	}
	if err := st.reg.Sync(); err != nil {
		mDurabilityErrors.Inc()
	}
}

// restoreEngine rebuilds a non-resident session's engine: snapshot first
// (integrity-checked; corruption quarantines the file and poisons the
// session with ErrSnapshotCorrupt), then the journal tail replayed through
// the live edit path. Replayed cells come back dirty and reconverge on the
// normal drain. Called with s.mu held.
func (st *Store) restoreEngine(s *Session) (*engine.Engine, error) {
	if s.corrupt {
		return nil, fmt.Errorf("%w: session %s", ErrSnapshotCorrupt, s.ID)
	}
	var eng *engine.Engine
	if s.snapHeld {
		var err error
		eng, err = st.readSpill(st.baseFilePathLocked(s), s.graph)
		if err != nil {
			if errors.Is(err, engine.ErrSnapshotChecksum) || errors.Is(err, engine.ErrBadEngineSnapshot) {
				st.quarantine(s)
				return nil, fmt.Errorf("%w: session %s: %v", ErrSnapshotCorrupt, s.ID, err)
			}
			return nil, err
		}
	} else {
		// A session that never had a snapshot (created blank, then only
		// journaled edits): replay rebuilds it from an empty engine.
		eng = engine.New(nil)
	}
	// Delta chain between base and journal tail: each link's value-only
	// records re-apply through the same bulk path. The chain leaves the
	// compressed graph untouched, so the cached graph blob stays valid.
	if len(s.chain) > 0 {
		if err := st.replayChain(s, eng); err != nil {
			return nil, err
		}
	}
	if st.opts.Durable && s.rev > s.snapRev {
		if err := st.replayJournal(s, eng); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// quarantine renames a corrupt base snapshot aside (the session's own spill
// file, or the frozen shared base it chains off) and poisons the session so
// every subsequent touch fails the same way instead of retrying the decode.
func (st *Store) quarantine(s *Session) {
	path := st.baseFilePathLocked(s)
	os.Rename(path, path+".corrupt")
	s.corrupt = true
	st.quarantined.Add(1)
	mQuarantined.Inc()
}

// replayJournal applies the session's journal tail — records above the
// snapshot revision — onto eng through the same parse/apply path as live
// edits. Called with s.mu held, eng not yet published.
func (st *Store) replayJournal(s *Session, eng *engine.Engine) error {
	start := time.Now()
	replayed := 0
	_, _, err := journal.ScanFile(st.journalPath(s.ID), journal.JournalMagic, func(rev uint64, payload []byte) error {
		if rev <= s.snapRev {
			return nil // the snapshot already contains this batch
		}
		edits, err := decodeEditOps(payload)
		if err != nil {
			return fmt.Errorf("record rev %d: %w", rev, err)
		}
		ops, err := parseBatch(edits)
		if err != nil {
			return fmt.Errorf("record rev %d: %w", rev, err)
		}
		applyBatch(eng, ops)
		replayed++
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		// A record with a valid checksum that fails to decode or re-parse is
		// a format bug or version skew, not disk corruption; fail the restore
		// loudly rather than serving a silently incomplete session.
		return fmt.Errorf("replay journal for session %s: %w", s.ID, err)
	}
	if replayed > 0 {
		// The engine no longer matches the snapshot (and the bulk path may
		// have rebuilt it around a fresh graph): drop the cached graph blob.
		s.graphBlob = nil
		st.replayed.Add(uint64(replayed))
		mReplayRecords.Add(uint64(replayed))
		mReplayDuration.Observe(time.Since(start).Seconds())
	}
	return nil
}

// writeFileAtomic writes data via a same-directory temp file and rename, so
// no reader — concurrent or post-crash — can ever observe a torn file at
// the final path. With sync set, the file is fsynced before the rename and
// the directory after it (power-loss durability for the rename itself).
// File operations run through faultfs so tests can tear any step.
func writeFileAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	f, err := faultfs.CreateTemp(dir, ".spill-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil && sync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = faultfs.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		if d, derr := os.Open(dir); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Edit-batch journal codec
// ---------------------------------------------------------------------------

// Journal payload op kinds, mirroring EditOp's exactly-one-of shape.
const (
	journalOpValue = iota
	journalOpText
	journalOpFormula
	journalOpClear
)

// maxJournalCellRef bounds the cell-reference field on decode.
const maxJournalCellRef = 64

// encodeEditOps serialises a validated edit batch for the journal:
// uvarint(count), then per op the A1 cell reference, a kind byte, and the
// kind's payload (float64 bits little-endian, or a length-prefixed string).
// The batch has passed parseBatch, so every op has exactly one kind set.
func encodeEditOps(edits []EditOp) []byte {
	var vb [binary.MaxVarintLen64]byte
	putUvarint := func(dst []byte, v uint64) []byte {
		n := binary.PutUvarint(vb[:], v)
		return append(dst, vb[:n]...)
	}
	putString := func(dst []byte, s string) []byte {
		dst = putUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
	buf := putUvarint(nil, uint64(len(edits)))
	for _, op := range edits {
		buf = putString(buf, op.Cell)
		switch {
		case op.Value != nil:
			buf = append(buf, journalOpValue)
			var fb [8]byte
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(*op.Value))
			buf = append(buf, fb[:]...)
		case op.Text != nil:
			buf = append(buf, journalOpText)
			buf = putString(buf, *op.Text)
		case op.Formula != nil:
			buf = append(buf, journalOpFormula)
			buf = putString(buf, *op.Formula)
		default:
			buf = append(buf, journalOpClear)
		}
	}
	return buf
}

// decodeEditOps is encodeEditOps's inverse, with the same bounds the HTTP
// layer enforces so a journal can never smuggle in what a request couldn't.
func decodeEditOps(payload []byte) ([]EditOp, error) {
	bad := errors.New("server: malformed journal edit record")
	takeString := func(limit int) (string, error) {
		n, m := binary.Uvarint(payload)
		if m <= 0 || n > uint64(limit) || uint64(len(payload)-m) < n {
			return "", bad
		}
		s := string(payload[m : m+int(n)])
		payload = payload[m+int(n):]
		return s, nil
	}
	count, m := binary.Uvarint(payload)
	if m <= 0 || count > uint64(len(payload)) {
		return nil, bad
	}
	payload = payload[m:]
	edits := make([]EditOp, 0, count)
	for i := uint64(0); i < count; i++ {
		var op EditOp
		var err error
		if op.Cell, err = takeString(maxJournalCellRef); err != nil {
			return nil, err
		}
		if len(payload) == 0 {
			return nil, bad
		}
		kind := payload[0]
		payload = payload[1:]
		switch kind {
		case journalOpValue:
			if len(payload) < 8 {
				return nil, bad
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload))
			payload = payload[8:]
			op.Value = &v
		case journalOpText:
			s, err := takeString(maxEditStringBytes)
			if err != nil {
				return nil, err
			}
			op.Text = &s
		case journalOpFormula:
			s, err := takeString(maxEditStringBytes)
			if err != nil {
				return nil, err
			}
			op.Formula = &s
		case journalOpClear:
			op.Clear = true
		default:
			return nil, bad
		}
		edits = append(edits, op)
	}
	if len(payload) != 0 {
		return nil, bad
	}
	return edits, nil
}

// Durable reports whether the store journals edits (StoreOptions.Durable).
func (st *Store) Durable() bool { return st.opts.Durable }

// UpdateJournaled is Update(id, true, fn) plus the durability contract: when
// the store is durable and record (an encodeEditOps payload) is non-nil, the
// record is appended to the session's journal at the bumped revision before
// UpdateJournaled returns, and the policy's fsync barrier has run — the
// caller can acknowledge the batch knowing a crashed server will replay it.
//
// A journal append failure degrades the session (degrade.go) instead of
// failing the request or silently dropping durability: the batch is applied
// and acknowledged (engine state must stay consistent with what readers
// already saw), its record is buffered for the background repairer, and
// every subsequent write is fenced with ErrSessionDegraded until the
// repairer lands the buffered records. A failed group-commit fsync under
// `always` both degrades and surfaces the error, since an fsynced
// acknowledgement is exactly the guarantee that policy sells.
func (st *Store) UpdateJournaled(id string, record []byte, fn func(*Session, *engine.Engine) error) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	var jw *journal.Writer
	degradedNow := false
	err = st.withResident(s, func(eng *engine.Engine) error {
		if s.degraded {
			return ErrSessionDegraded
		}
		if err := fn(s, eng); err != nil {
			return err
		}
		s.rev++
		if st.opts.Durable && record != nil {
			w, jerr := st.sessionJournal(s)
			if jerr == nil {
				jerr = w.Append(s.rev, record)
			}
			if jerr != nil {
				mDurabilityErrors.Inc()
				st.degradeLocked(s, degradedJournal, &pendingRecord{rev: s.rev, payload: record})
				degradedNow = true
			} else {
				jw = w
			}
		}
		return nil
	})
	if degradedNow {
		st.scheduleRepair(s)
	}
	if err == nil && jw != nil {
		// Group commit outside the session lock: concurrent batches on other
		// sessions (or this one) share the fsync instead of queueing on it.
		if serr := jw.Sync(); serr != nil {
			mDurabilityErrors.Inc()
			s.mu.Lock()
			st.degradeLocked(s, degradedJournal, nil)
			s.mu.Unlock()
			st.scheduleRepair(s)
			return fmt.Errorf("%w: %w", ErrSessionDegraded, serr)
		}
	}
	return err
}
