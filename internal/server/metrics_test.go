package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"taco/internal/telemetry"
)

// scrapeMetrics fetches and parses /metrics from the test server.
func scrapeMetrics(t *testing.T, tc *testClient) (*telemetry.Scrape, string) {
	t.Helper()
	resp, err := tc.c.Get(tc.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	s, err := telemetry.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return s, string(body)
}

// TestMetricsEndToEnd drives edits, reads, and a flush through the HTTP API
// and asserts /metrics exposes lint-clean families from every layer of the
// stack with activity recorded. Counters are process-global, so assertions
// are on deltas between two scrapes bracketing the workload.
func TestMetricsEndToEnd(t *testing.T) {
	// Background draining off: the flush barrier drains inline, so the
	// drain-hold histogram deterministically gets samples before the second
	// scrape.
	_, tc := newTestServer(t, Options{Store: StoreOptions{RecalcWorkers: -1}})

	before, _ := scrapeMetrics(t, tc)

	var info SessionInfo
	if code := tc.do("POST", "/sessions", CreateRequest{Name: "m"}, &info); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	edits := EditBatch{Edits: []EditOp{
		{Cell: "A1", Value: num(2)},
		{Cell: "A2", Formula: str("=A1*3")},
		{Cell: "A3", Formula: str("=A2+A1")},
	}}
	var er EditResult
	if code := tc.do("POST", "/sessions/"+info.ID+"/edits", edits, &er); code != http.StatusOK {
		t.Fatalf("edits = %d", code)
	}
	// A second, incremental batch: the first takes the eager bulk-build
	// path, this one dirties the dependent chain and leaves it pending
	// (background draining is off), so the flush below drains inline and
	// records drain-hold samples.
	incr := EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(5)}}}
	if code := tc.do("POST", "/sessions/"+info.ID+"/edits", incr, &er); code != http.StatusOK {
		t.Fatalf("incremental edits = %d", code)
	}
	if er.Pending == 0 {
		t.Fatalf("incremental edit left nothing pending; test cannot exercise the drain path")
	}
	var fr FlushResult
	if code := tc.do("POST", "/sessions/"+info.ID+"/flush", nil, &fr); code != http.StatusOK {
		t.Fatalf("flush = %d", code)
	}
	var cr CellsResult
	if code := tc.do("GET", "/sessions/"+info.ID+"/cells?range=A1:A3", nil, &cr); code != http.StatusOK {
		t.Fatalf("cells = %d", code)
	}
	if code := tc.do("GET", "/sessions/absent/cells?range=A1:A1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing session = %d, want 404", code)
	}

	after, text := scrapeMetrics(t, tc)

	// The exposition must lint clean and span every instrumented layer.
	if errs := telemetry.Lint(strings.NewReader(text)); len(errs) != 0 {
		t.Errorf("/metrics fails lint: %v", errs)
	}
	layers := map[string][]string{
		"http":    {"taco_http_requests_total", "taco_http_request_duration_seconds", "taco_http_requests_in_flight"},
		"store":   {"taco_store_sessions_created_total", "taco_store_drain_hold_seconds", "taco_store_evictions_total", "taco_store_sessions", "taco_store_recalc_queue_depth"},
		"engine":  {"taco_engine_cells_evaluated_total", "taco_sched_builds_total", "taco_sched_levels_drained_total"},
		"parse":   {"taco_parse_cache_hits_total", "taco_parse_cache_misses_total", "taco_parse_cache_bytes"},
		"runtime": {"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total"},
	}
	families := 0
	for layer, fams := range layers {
		for _, fam := range fams {
			if after.Families[fam] == nil {
				t.Errorf("layer %s: family %s missing from /metrics", layer, fam)
				continue
			}
			families++
		}
	}
	if families < 12 {
		t.Errorf("only %d families verified, want >= 12", families)
	}

	delta := func(name string, labels map[string]string) float64 {
		a, _ := after.Value(name, labels)
		b, _ := before.Value(name, labels)
		return a - b
	}
	if d := delta("taco_store_sessions_created_total", nil); d < 1 {
		t.Errorf("sessions_created delta = %v, want >= 1", d)
	}
	if d := delta("taco_engine_cells_evaluated_total", nil); d < 2 {
		t.Errorf("cells_evaluated delta = %v, want >= 2 (two formulas flushed)", d)
	}
	if d := delta("taco_store_drain_hold_seconds_count", nil); d < 1 {
		t.Errorf("drain hold samples delta = %v, want >= 1", d)
	}
	if d := delta("taco_parse_cache_misses_total", nil); d < 1 {
		t.Errorf("parse cache misses delta = %v, want >= 1", d)
	}
	if d := delta("taco_http_requests_total", map[string]string{"route": "POST /sessions/{id}/edits", "code": "200"}); d < 1 {
		t.Errorf("http requests delta for edits route = %v, want >= 1", d)
	}
	if d := delta("taco_http_requests_total", map[string]string{"code": "404"}); d < 1 {
		t.Errorf("http 404 delta = %v, want >= 1", d)
	}
	if d := delta("taco_http_request_duration_seconds_count", map[string]string{"route": "POST /sessions/{id}/flush"}); d < 1 {
		t.Errorf("latency histogram delta for flush route = %v, want >= 1", d)
	}

	// Histogram reassembly from the scrape works against live data.
	if _, counts, _, count, ok := after.Histogram("taco_store_drain_hold_seconds"); !ok || count == 0 || len(counts) == 0 {
		t.Errorf("drain hold histogram unreadable from scrape: ok=%v count=%d", ok, count)
	}
}

// TestRequestIDHeader checks every response carries a request ID and a
// client-supplied one is echoed back.
func TestRequestIDHeader(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	resp, err := tc.c.Get(tc.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}

	req, _ := http.NewRequest("GET", tc.base+"/stats", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-7")
	resp, err = tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-7" {
		t.Errorf("X-Request-ID = %q, want echoed caller-chosen-7", got)
	}
}
