package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// newPair boots a durable primary and a warm standby following it over
// HTTP, both on httptest servers.
func newPair(t *testing.T) (pri *Server, priTC *testClient, sby *Server, sbyTC *testClient) {
	t.Helper()
	pri, priTC = newTestServer(t, Options{Store: StoreOptions{
		SpillDir: t.TempDir(), Durable: true, FsyncPolicy: "never",
	}})
	sby, err := NewServer(Options{
		Store:   StoreOptions{SpillDir: t.TempDir(), Durable: true, FsyncPolicy: "never"},
		Standby: StandbyOptions{PrimaryURL: priTC.base, Interval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sby.Close)
	hs := httptest.NewServer(sby)
	t.Cleanup(hs.Close)
	return pri, priTC, sby, &testClient{t: t, base: hs.URL, c: hs.Client()}
}

// waitCaughtUp polls until the standby hosts the session at (at least) rev.
func waitCaughtUp(t *testing.T, sby *Server, id string, rev uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, err := sby.Store().Peek(id); err == nil && s.Rev() >= rev {
			return
		}
		if time.Now().After(deadline) {
			s, err := sby.Store().Peek(id)
			if err != nil {
				t.Fatalf("standby never created session %s: %v", id, err)
			}
			t.Fatalf("standby stuck at rev %d, want %d", s.Rev(), rev)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStandbyShipsAndServesReads is the tentpole replication flow: the
// standby bootstraps a scenario session from the primary's snapshot, tails
// its journal, serves byte-identical reads with lag headers, and rejects
// writes with 503.
func TestStandbyShipsAndServesReads(t *testing.T) {
	_, priTC, sby, sbyTC := newPair(t)

	var info SessionInfo
	priTC.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 30, Seed: 7}, &info)
	var er EditResult
	for i := 0; i < 5; i++ {
		priTC.do("POST", "/sessions/"+info.ID+"/edits",
			EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(float64(i))}}}, &er)
	}
	waitCaughtUp(t, sby, info.ID, er.Rev)

	// Reads match the primary cell-for-cell once both sides settle.
	read := func(tc *testClient) CellsResult {
		var cr CellsResult
		if code := tc.do("GET", "/sessions/"+info.ID+"/cells?range=A1:H30&wait=1", nil, &cr); code != http.StatusOK {
			t.Fatalf("cells = %d", code)
		}
		return cr
	}
	want, got := read(priTC), read(sbyTC)
	if want.Rev != got.Rev || !reflect.DeepEqual(want.Cells, got.Cells) {
		t.Fatalf("standby read diverges: primary rev %d (%d cells), standby rev %d (%d cells)",
			want.Rev, len(want.Cells), got.Rev, len(got.Cells))
	}

	// Standby responses carry the replication lag headers.
	resp, err := http.Get(sbyTC.base + "/sessions/" + info.ID + "/cells?at=A1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Replication-Lag-Rev") == "" || resp.Header.Get("X-Replication-Lag-Ms") == "" {
		t.Fatalf("standby response missing lag headers: %v", resp.Header)
	}

	// Writes are fenced with 503 (+Retry-After) on every mutating route.
	if code := sbyTC.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "B1", Value: num(1)}}}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("standby edit = %d, want 503", code)
	}
	if code := sbyTC.do("POST", "/sessions", CreateRequest{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("standby create = %d, want 503", code)
	}
	if code := sbyTC.do("DELETE", "/sessions/"+info.ID, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("standby delete = %d, want 503", code)
	}

	// A session dropped on the primary is pruned from the standby.
	if code := priTC.do("DELETE", "/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("primary delete = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := sby.Store().Peek(info.ID); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never pruned the deleted session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPromoteLiftsFenceAndFencesCursor: promotion makes the standby
// writable, is idempotent, and guarantees no shipped record applies after.
func TestPromoteLiftsFenceAndFencesCursor(t *testing.T) {
	_, priTC, sby, sbyTC := newPair(t)

	var info SessionInfo
	priTC.do("POST", "/sessions", CreateRequest{Name: "wb"}, &info)
	var er EditResult
	priTC.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(42)}}}, &er)
	waitCaughtUp(t, sby, info.ID, er.Rev)

	var pr PromoteResult
	if code := sbyTC.do("POST", "/admin/promote", nil, &pr); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	if !pr.Promoted || pr.AlreadyPrimary {
		t.Fatalf("promote result = %+v", pr)
	}
	// Writable now — and the write lands on the promoted store.
	if code := sbyTC.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A2", Value: num(43)}}}, &er); code != http.StatusOK {
		t.Fatalf("edit after promote = %d", code)
	}
	// The fence holds: edits still flowing into the old primary never reach
	// the promoted standby.
	priTC.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A3", Value: num(99)}}}, nil)
	time.Sleep(50 * time.Millisecond)
	var cr CellsResult
	sbyTC.do("GET", "/sessions/"+info.ID+"/cells?range=A1:A3&wait=1", nil, &cr)
	for _, c := range cr.Cells {
		if c.Cell == "A3" {
			t.Fatalf("shipped record applied after promotion: %+v", cr.Cells)
		}
	}
	// Idempotent.
	if code := sbyTC.do("POST", "/admin/promote", nil, &pr); code != http.StatusOK || !pr.AlreadyPrimary {
		t.Fatalf("second promote = %d %+v", code, pr)
	}
	// Promotion on a server that was never a standby reports AlreadyPrimary.
	if code := priTC.do("POST", "/admin/promote", nil, &pr); code != http.StatusOK || !pr.AlreadyPrimary {
		t.Fatalf("primary promote = %d %+v", code, pr)
	}
}

// TestStandbyRebasesPastCheckpoint: when the primary checkpoints a journal
// (snapshot advances, records truncated), a standby whose cursor predates
// the checkpoint gets 409 from the journal endpoint and re-bases from the
// snapshot instead of missing records.
func TestStandbyRebasesPastCheckpoint(t *testing.T) {
	pri, priTC := newTestServer(t, Options{Store: StoreOptions{
		SpillDir: t.TempDir(), Durable: true, FsyncPolicy: "never", MaxResident: 1,
	}})
	pri.Store().ckptBytes = 1 // every spill checkpoints

	var a SessionInfo
	priTC.do("POST", "/sessions", CreateRequest{Name: "a"}, &a)
	var er EditResult
	for i := 0; i < 4; i++ {
		priTC.do("POST", "/sessions/"+a.ID+"/edits",
			EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(float64(i))}}}, &er)
	}
	// Force a of spill/checkpoint: a second session evicts the first.
	priTC.do("POST", "/sessions", CreateRequest{Name: "b"}, nil)

	// The standby starts AFTER the checkpoint: its from=0 cursor predates
	// the primary's snapshot revision, so the first journal fetch 409s and
	// the replicator must bootstrap from the snapshot.
	sby, err := NewServer(Options{
		Store:   StoreOptions{SpillDir: t.TempDir(), Durable: true, FsyncPolicy: "never"},
		Standby: StandbyOptions{PrimaryURL: priTC.base, Interval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()
	waitCaughtUp(t, sby, a.ID, er.Rev)
	hs := httptest.NewServer(sby)
	defer hs.Close()
	sbyTC := &testClient{t: t, base: hs.URL, c: hs.Client()}
	var cr CellsResult
	if code := sbyTC.do("GET", "/sessions/"+a.ID+"/cells?at=A1&wait=1", nil, &cr); code != http.StatusOK {
		t.Fatalf("standby read = %d", code)
	}
	if len(cr.Cells) != 1 || cr.Cells[0].Num != 3 {
		t.Fatalf("re-based standby serves wrong state: %+v", cr.Cells)
	}
}
