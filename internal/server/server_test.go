package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taco/internal/workload"
	"taco/internal/xlsx"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newTestServer(t *testing.T, opts Options) (*Server, *testClient) {
	t.Helper()
	if opts.Store.MaxResident > 0 && opts.Store.SpillDir == "" {
		opts.Store.SpillDir = t.TempDir()
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, &testClient{t: t, base: hs.URL, c: hs.Client()}
}

func (tc *testClient) do(method, path string, body any, out any) int {
	tc.t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		buf, err := json.Marshal(body)
		if err != nil {
			tc.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			tc.t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

func num(v float64) *float64 { return &v }
func str(s string) *string   { return &s }

func TestCreateBlankAndEdit(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	if code := tc.do("POST", "/sessions", CreateRequest{Name: "t"}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if info.ID == "" || info.Cells != 0 {
		t.Fatalf("info = %+v", info)
	}

	// First batch against a fresh session takes the bulk path.
	batch := EditBatch{Edits: []EditOp{
		{Cell: "A1", Value: num(2)},
		{Cell: "A2", Value: num(3)},
		{Cell: "B1", Formula: str("A1*10")},
		{Cell: "B2", Formula: str("A2*10")},
	}}
	var res EditResult
	if code := tc.do("POST", "/sessions/"+info.ID+"/edits", batch, &res); code != http.StatusOK {
		t.Fatalf("edits: status %d", code)
	}
	if !res.Bulk || res.Applied != 4 || res.Rev != 1 {
		t.Fatalf("res = %+v", res)
	}

	var cells CellsResult
	if code := tc.do("GET", "/sessions/"+info.ID+"/cells?range=A1:B2", nil, &cells); code != http.StatusOK {
		t.Fatalf("cells: status %d", code)
	}
	byCell := map[string]CellOut{}
	for _, c := range cells.Cells {
		byCell[c.Cell] = c
	}
	if byCell["B1"].Num != 20 || byCell["B2"].Num != 30 {
		t.Fatalf("cells = %+v", byCell)
	}

	// Incremental edit: change A1, B1 recalculates in the background; the
	// wait=1 read gives read-your-writes.
	res = EditResult{}
	tc.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(5)}}}, &res)
	if res.Bulk || res.DirtyCells != 1 || res.Rev != 2 {
		t.Fatalf("res = %+v", res)
	}
	cells = CellsResult{}
	tc.do("GET", "/sessions/"+info.ID+"/cells?at=B1&wait=1", nil, &cells)
	if cells.Rev != 2 || cells.Pending != 0 || len(cells.Cells) != 1 || cells.Cells[0].Num != 50 {
		t.Fatalf("B1 = %+v", cells)
	}

	// Dependents of A1 are exactly B1.
	var q QueryResult
	if code := tc.do("GET", "/sessions/"+info.ID+"/dependents?of=A1", nil, &q); code != http.StatusOK {
		t.Fatalf("dependents: status %d", code)
	}
	if q.Cells != 1 || len(q.Ranges) != 1 || q.Ranges[0] != "B1" {
		t.Fatalf("dependents = %+v", q)
	}
	q = QueryResult{}
	tc.do("GET", "/sessions/"+info.ID+"/precedents?of=B2", nil, &q)
	if q.Cells != 1 || q.Ranges[0] != "A2" {
		t.Fatalf("precedents = %+v", q)
	}
}

func TestCreateFromScenario(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	code := tc.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 50, Seed: 9}, &info)
	if code != http.StatusCreated {
		t.Fatalf("status %d", code)
	}
	if info.Cells == 0 || info.Formulas == 0 || info.Graph == nil {
		t.Fatalf("info = %+v", info)
	}
	if info.Graph.Edges >= info.Graph.Dependencies {
		t.Fatalf("scenario graph not compressed: %+v", *info.Graph)
	}
	// Editing a revenue cell dirties the derived columns.
	var res EditResult
	tc.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "B1", Value: num(9999)}}}, &res)
	if res.DirtyCells < 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCreateFromXLSX(t *testing.T) {
	sheet := workload.Gradebook(25, rand.New(rand.NewSource(2)))
	path := filepath.Join(t.TempDir(), "g.xlsx")
	if err := xlsx.WriteFile(path, []*workload.Sheet{sheet}, xlsx.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	if code := tc.do("POST", "/sessions/xlsx", raw, &info); code != http.StatusCreated {
		t.Fatalf("status %d", code)
	}
	if info.Name != "gradebook" || info.Formulas == 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestBadRequests(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{}, &info)

	cases := []struct {
		name string
		code int
		do   func() int
	}{
		{"unknown scenario", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions", CreateRequest{Scenario: "nope"}, nil)
		}},
		{"missing session", http.StatusNotFound, func() int {
			return tc.do("GET", "/sessions/doesnotexist", nil, nil)
		}},
		{"empty batch", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions/"+info.ID+"/edits", EditBatch{}, nil)
		}},
		{"bad cell", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions/"+info.ID+"/edits",
				EditBatch{Edits: []EditOp{{Cell: "!!", Value: num(1)}}}, nil)
		}},
		{"two payloads", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions/"+info.ID+"/edits",
				EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(1), Clear: true}}}, nil)
		}},
		{"bad formula", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions/"+info.ID+"/edits",
				EditBatch{Edits: []EditOp{{Cell: "A1", Formula: str("SUM(")}}}, nil)
		}},
		{"bad range", http.StatusBadRequest, func() int {
			return tc.do("GET", "/sessions/"+info.ID+"/cells?range=zzz!", nil, nil)
		}},
		{"no query", http.StatusBadRequest, func() int {
			return tc.do("GET", "/sessions/"+info.ID+"/dependents", nil, nil)
		}},
		{"bad xlsx", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions/xlsx", []byte("not a zip"), nil)
		}},
		{"oversized text payload", http.StatusBadRequest, func() int {
			big := strings.Repeat("x", maxEditStringBytes+1)
			return tc.do("POST", "/sessions/"+info.ID+"/edits",
				EditBatch{Edits: []EditOp{{Cell: "A1", Text: &big}}}, nil)
		}},
		{"rows beyond cap", http.StatusBadRequest, func() int {
			return tc.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 1 << 30}, nil)
		}},
		{"range beyond cap", http.StatusBadRequest, func() int {
			return tc.do("GET", "/sessions/"+info.ID+"/cells?range=A1:XFD1048576", nil, nil)
		}},
	}
	for _, c := range cases {
		if got := c.do(); got != c.code {
			t.Errorf("%s: status %d, want %d", c.name, got, c.code)
		}
	}
}

func TestBatchAtomicity(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{}, &info)
	tc.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(1)}}}, nil)

	// A batch with a bad op anywhere applies nothing: A1 keeps its value and
	// the revision counter does not advance.
	code := tc.do("POST", "/sessions/"+info.ID+"/edits", EditBatch{Edits: []EditOp{
		{Cell: "A1", Value: num(777)},
		{Cell: "B1", Formula: str("SUM(")},
	}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
	var cells CellsResult
	tc.do("GET", "/sessions/"+info.ID+"/cells?at=A1", nil, &cells)
	if len(cells.Cells) != 1 || cells.Cells[0].Num != 1 {
		t.Fatalf("A1 = %+v after rejected batch", cells)
	}
	var si SessionInfo
	tc.do("GET", "/sessions/"+info.ID, nil, &si)
	if si.Rev != 1 {
		t.Fatalf("rev = %d after rejected batch", si.Rev)
	}
}

func TestListDoesNotRestoreSpilled(t *testing.T) {
	srv, tc := newTestServer(t, Options{Store: StoreOptions{Shards: 2, MaxResident: 1}})
	var a SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 10}, &a)
	tc.do("POST", "/sessions", CreateRequest{Scenario: "inventory", Rows: 10}, nil)

	var list []SessionInfo
	tc.do("GET", "/sessions", nil, &list)
	resident := 0
	for _, si := range list {
		if si.Resident {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("list reports %d resident, want 1: %+v", resident, list)
	}
	// Neither the listing nor a single-session stats read faulted the
	// spilled session back in.
	tc.do("GET", "/sessions/"+a.ID, nil, nil)
	if st := srv.Store().Stats(); st.Restores != 0 {
		t.Fatalf("metadata reads caused %d restores", st.Restores)
	}
}

func TestDeleteSession(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Scenario: "inventory", Rows: 10}, &info)
	if code := tc.do("DELETE", "/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := tc.do("GET", "/sessions/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
	if code := tc.do("DELETE", "/sessions/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("second delete: status %d", code)
	}
}

func TestListAndStoreStats(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	for i := 0; i < 3; i++ {
		tc.do("POST", "/sessions", CreateRequest{Name: fmt.Sprintf("s%d", i)}, nil)
	}
	var list []SessionInfo
	if code := tc.do("GET", "/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != 3 {
		t.Fatalf("list = %d sessions", len(list))
	}
	var st StoreStats
	tc.do("GET", "/stats", nil, &st)
	if st.Sessions != 3 || st.Resident != 3 || st.Spilled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
