package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

// buildFanoutSheet populates a two-tier sheet: ten inputs in column A
// fanning out to six 60-cell formula columns, reconverging into a 60-cell
// SUM tier — wide enough for real wavefront levels, deep enough that a
// drain spans several bounded holds.
func buildFanoutSheet(t testing.TB, eng *engine.Engine) {
	t.Helper()
	for r := 1; r <= 10; r++ {
		eng.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
	}
	for col := 3; col <= 8; col++ {
		for r := 1; r <= 60; r++ {
			src := fmt.Sprintf("SUM(A$1:A$10)*%d+%d", col, r)
			if _, err := eng.SetFormula(ref.Ref{Col: col, Row: r}, src); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 1; r <= 60; r++ {
		if _, err := eng.SetFormula(ref.Ref{Col: 10, Row: r}, fmt.Sprintf("SUM(C%d:H%d)", r, r)); err != nil {
			t.Fatal(err)
		}
	}
	eng.RecalculateAll()
}

// drainBackends names the two graph backends the schedule-invalidation
// stress must hold on: the compressed TACO graph (one-hop precedents off
// compressed edges) and the NoComp mirror.
var drainBackends = map[string]func() engine.Graph{
	"taco":   func() engine.Graph { return nil }, // engine.New defaults to TACO
	"nocomp": func() engine.Graph { return engine.NoComp{G: nocomp.NewGraph()} },
}

// TestEditDuringDrainConverges is the edit-during-drain invalidation proof,
// run under -race in CI: a single writer keeps mutating input cells while
// the background workers drain the resulting wavefronts in short lock holds
// (each edit landing mid-drain invalidates and rebuilds the remaining
// schedule), and concurrent readers hammer the shared-lock read paths the
// whole time. After the final barrier, every cell must be byte-identical to
// a serial engine that applied the same edit sequence — on both graph
// backends.
func TestEditDuringDrainConverges(t *testing.T) {
	for name, mkGraph := range drainBackends {
		t.Run(name, func(t *testing.T) {
			iters := 30
			if testing.Short() {
				iters = 8
			}
			store, err := NewStore(StoreOptions{
				Shards: 2, RecalcWorkers: 2, RecalcChunk: 16, RecalcParallelism: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			eng := engine.New(mkGraph())
			buildFanoutSheet(t, eng)
			id := store.Create("drain", eng).ID

			// The deterministic edit script a serial reference replays.
			type edit struct {
				at ref.Ref
				v  float64
			}
			var script []edit
			for i := 0; i < iters; i++ {
				script = append(script, edit{ref.Ref{Col: 1, Row: 1 + i%10}, float64(i*13 + 7)})
			}

			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // the single writer: edits land between drain holds
				defer wg.Done()
				for _, ed := range script {
					err := store.Update(id, true, func(_ *Session, e *engine.Engine) error {
						e.SetValue(ed.at, formula.Num(ed.v))
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for w := 0; w < 3; w++ { // readers interleave with the drains
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters*4; i++ {
						err := store.View(id, func(_ *Session, e *engine.Engine) error {
							switch i % 3 {
							case 0:
								e.Peek(ref.Ref{Col: 10, Row: 1 + (i+w)%60})
							case 1:
								e.ScanRange(ref.MustRange("C1:J60"), func(ref.Ref, formula.Value, string, bool) bool {
									return true
								})
							default:
								e.Dependents(ref.CellRange(ref.Ref{Col: 1, Row: 1 + (i+w)%10}))
							}
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err := store.Wait(id); err != nil {
				t.Fatal(err)
			}

			// Serial reference: same backend, same script, drained serially.
			want := engine.New(mkGraph())
			buildFanoutSheet(t, want)
			for _, ed := range script {
				want.SetValue(ed.at, formula.Num(ed.v))
			}
			want.RecalculateAll()
			err = store.View(id, func(_ *Session, e *engine.Engine) error {
				all := ref.MustRange("A1:J60")
				want.ScanRange(all, func(at ref.Ref, v formula.Value, _ string, _ bool) bool {
					if got := e.Value(at); got != v {
						t.Errorf("%v: store=%v serial=%v", at, got, v)
					}
					return true
				})
				e.ScanRange(all, func(at ref.Ref, v formula.Value, _ string, clean bool) bool {
					if !clean {
						t.Errorf("%v still dirty after barrier", at)
					}
					return true
				})
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDrainGoroutinesBounded pins the shared-pool contract: however many
// sessions have pending recalculation, the store never spawns drain
// goroutines beyond its fixed complement (drain workers + eval pool) — the
// per-drain goroutine fan-out is gone.
func TestDrainGoroutinesBounded(t *testing.T) {
	store, err := NewStore(StoreOptions{
		Shards: 2, RecalcWorkers: 2, RecalcChunk: 32, RecalcParallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if ps := store.Stats().EvalPoolWorkers; ps != (4-1)*2 {
		t.Fatalf("pool sized %d, want %d", ps, (4-1)*2)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		eng := engine.New(nil)
		buildFanoutSheet(t, eng)
		ids = append(ids, store.Create(fmt.Sprintf("s%d", i), eng).ID)
	}
	baseline := runtime.NumGoroutine()
	for _, id := range ids { // dirty every session's whole fanout at once
		err := store.Update(id, true, func(_ *Session, e *engine.Engine) error {
			e.SetValue(ref.Ref{Col: 1, Row: 1}, formula.Num(99))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	peak := baseline
	for i := 0; i < 400; i++ {
		if n := runtime.NumGoroutine(); n > peak {
			peak = n
		}
		settled := true
		for _, id := range ids {
			s, err := store.Peek(id)
			if err != nil {
				t.Fatal(err)
			}
			if s.Pending() > 0 {
				settled = false
				break
			}
		}
		if settled && i > 10 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Everything above the pre-dirty baseline would be drain-spawned; allow
	// a little slack for runtime/test housekeeping goroutines.
	if peak > baseline+5 {
		t.Fatalf("goroutines peaked at %d with baseline %d: drains are spawning beyond the pool", peak, baseline)
	}
	for _, id := range ids {
		if err := store.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWaitTerminatesUnderWritePressure pins the barrier's liveness: Wait
// releases the session lock between chunks (readers interleave), but a
// writer re-dirtying the sheet in those gaps must not be able to starve it
// — once the entry backlog's budget is spent, Wait finishes the drain under
// one uninterrupted hold and returns.
func TestWaitTerminatesUnderWritePressure(t *testing.T) {
	store, err := NewStore(StoreOptions{RecalcWorkers: -1, RecalcChunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := engine.New(nil)
	buildFanoutSheet(t, eng)
	id := store.Create("pressure", eng).ID
	if err := store.Update(id, true, func(_ *Session, e *engine.Engine) error {
		e.SetValue(ref.Ref{Col: 1, Row: 1}, formula.Num(1))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // re-dirties the whole fanout in every between-hold gap
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			err := store.Update(id, true, func(_ *Session, e *engine.Engine) error {
				e.SetValue(ref.Ref{Col: 1, Row: 1 + i%10}, formula.Num(float64(i)))
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- store.Wait(id) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Wait starved by a concurrent writer")
	}
	stop.Store(true)
	wg.Wait()
}

// TestBulkBatchKeepsRecalcConfig: the bulk edit path rebuilds the engine
// around a fresh graph, which used to reset its recalc configuration to
// zero values — the session then silently drained serially, off the shared
// pool. The store's policy must survive the rebuild.
func TestBulkBatchKeepsRecalcConfig(t *testing.T) {
	srv, tc := newTestServer(t, Options{Store: StoreOptions{RecalcParallelism: 4}})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "bulk"}, &info)
	var res EditResult
	tc.do("POST", "/sessions/"+info.ID+"/edits", wideBatch(100, 5), &res)
	if !res.Bulk {
		t.Fatalf("batch did not take the bulk path: %+v", res)
	}
	err := srv.Store().View(info.ID, func(_ *Session, eng *engine.Engine) error {
		if got := eng.RecalcParallelism(); got != 4 {
			t.Fatalf("bulk rebuild dropped RecalcParallelism: %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatsExposeScheduler: the store stats report the drain queue and pool
// shape, and session stats carry the engine's scheduler snapshot.
func TestStatsExposeScheduler(t *testing.T) {
	store, err := NewStore(StoreOptions{RecalcWorkers: -1, RecalcParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := engine.New(nil)
	buildFanoutSheet(t, eng)
	sess := store.Create("stats", eng)
	err = store.Update(sess.ID, true, func(_ *Session, e *engine.Engine) error {
		e.SetValue(ref.Ref{Col: 1, Row: 2}, formula.Num(17))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	info := sessionInfo(sess)
	if info.Recalc == nil || info.Recalc.Pending == 0 {
		t.Fatalf("session stats carry no pending scheduler state: %+v", info.Recalc)
	}
	st := store.Stats()
	if st.EvalPoolWorkers != 3 { // (4-1) * max(-1 workers -> 1)
		t.Fatalf("eval_pool_workers = %d, want 3", st.EvalPoolWorkers)
	}
	if st.DrainsInFlight != 0 {
		t.Fatalf("drains_in_flight = %d with workers disabled", st.DrainsInFlight)
	}
	if err := store.Wait(sess.ID); err != nil {
		t.Fatal(err)
	}
	info = sessionInfo(sess)
	if info.Recalc == nil || info.Recalc.Pending != 0 {
		t.Fatalf("settled session still reports pending: %+v", info.Recalc)
	}
	if info.Recalc.LevelsDrained == 0 || info.Recalc.ScheduleBuilds == 0 {
		t.Fatalf("drain left no scheduler trace: %+v", info.Recalc)
	}
}
