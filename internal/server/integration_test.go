package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"taco/internal/ref"
	"taco/internal/workload"
)

// TestManyConcurrentSessions is the serving acceptance demo in miniature:
// 32+ sessions driven concurrently through the HTTP API with batched edits
// and dependency queries, under an eviction cap tight enough that sessions
// cycle through spill/restore while being served.
func TestManyConcurrentSessions(t *testing.T) {
	const sessions = 36
	rows := 30
	if testing.Short() {
		rows = 10
	}
	_, tc := newTestServer(t, Options{Store: StoreOptions{
		Shards: 8, MaxResident: sessions / 3,
	}})

	scenarios := workload.ScenarioNames
	ids := make([]string, sessions)
	sheets := make([]*workload.Sheet, sessions)
	for i := range ids {
		scen := scenarios[i%len(scenarios)]
		var info SessionInfo
		if code := tc.do("POST", "/sessions",
			CreateRequest{Name: fmt.Sprintf("s%d", i), Scenario: scen, Rows: rows, Seed: int64(i)}, &info); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids[i] = info.ID
		sheet, err := workload.BuildScenario(scen, rows, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		sheets[i] = sheet
	}

	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			edits := workload.EditStream(sheets[i], 30, rng)
			queries := workload.QueryStream(sheets[i], 10, rng)
			// Replay in batches of 5 with interleaved dependent queries.
			for start := 0; start < len(edits); start += 5 {
				batch := EditBatch{}
				for _, e := range edits[start:min(start+5, len(edits))] {
					op := EditOp{Cell: ref.FormatA1(e.At)}
					switch e.Kind {
					case workload.EditValue:
						v := e.Value
						op.Value = &v
					case workload.EditFormula:
						f := e.Formula
						op.Formula = &f
					case workload.EditClear:
						op.Clear = true
					}
					batch.Edits = append(batch.Edits, op)
				}
				var res EditResult
				if code := tc.do("POST", "/sessions/"+ids[i]+"/edits", batch, &res); code != http.StatusOK {
					errc <- fmt.Errorf("session %d: edit batch status %d", i, code)
					return
				}
				q := queries[(start/5)%len(queries)]
				var qr QueryResult
				if code := tc.do("GET", "/sessions/"+ids[i]+"/dependents?of="+q.String(), nil, &qr); code != http.StatusOK {
					errc <- fmt.Errorf("session %d: query status %d", i, code)
					return
				}
			}
			// Final read sanity: the session still answers.
			var cells CellsResult
			if code := tc.do("GET", "/sessions/"+ids[i]+"/cells?range=A1:H5", nil, &cells); code != http.StatusOK {
				errc <- fmt.Errorf("session %d: cells status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	var st StoreStats
	tc.do("GET", "/stats", nil, &st)
	if st.Sessions != sessions {
		t.Fatalf("sessions = %d, want %d", st.Sessions, sessions)
	}
	if st.Resident > sessions/3 {
		t.Fatalf("resident = %d exceeds cap %d", st.Resident, sessions/3)
	}
	if st.Evictions == 0 || st.Restores == 0 {
		t.Fatalf("no spill traffic under cap: %+v", st)
	}
	t.Logf("store after run: %+v", st)
}

// TestConcurrentDeterminism replays the same edit stream into two sessions
// concurrently (one touched enough to stay hot, one repeatedly evicted) and
// verifies they converge to identical values — spilling is invisible to
// session semantics.
func TestConcurrentDeterminism(t *testing.T) {
	_, tc := newTestServer(t, Options{Store: StoreOptions{Shards: 2, MaxResident: 1}})
	sheet := workload.FinancialModel(25, rand.New(rand.NewSource(77)))
	edits := workload.EditStream(sheet, 40, rand.New(rand.NewSource(78)))

	var a, b SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 25, Seed: 77}, &a)
	tc.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 25, Seed: 77}, &b)

	apply := func(id string) {
		for _, e := range edits {
			op := EditOp{Cell: ref.FormatA1(e.At)}
			switch e.Kind {
			case workload.EditValue:
				v := e.Value
				op.Value = &v
			case workload.EditFormula:
				f := e.Formula
				op.Formula = &f
			case workload.EditClear:
				op.Clear = true
			}
			if code := tc.do("POST", "/sessions/"+id+"/edits", EditBatch{Edits: []EditOp{op}}, nil); code != http.StatusOK {
				t.Errorf("session %s: status %d", id, code)
				return
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); apply(a.ID) }()
	go func() { defer wg.Done(); apply(b.ID) }()
	wg.Wait()

	// wait=1: both sessions must be fully drained before comparing — the
	// read-your-writes barrier of the asynchronous model.
	var ca, cb CellsResult
	tc.do("GET", "/sessions/"+a.ID+"/cells?range=A1:H25&wait=1", nil, &ca)
	tc.do("GET", "/sessions/"+b.ID+"/cells?range=A1:H25&wait=1", nil, &cb)
	if ca.Pending != 0 || cb.Pending != 0 {
		t.Fatalf("pending after wait: %d vs %d", ca.Pending, cb.Pending)
	}
	if len(ca.Cells) == 0 || len(ca.Cells) != len(cb.Cells) {
		t.Fatalf("cell counts: %d vs %d", len(ca.Cells), len(cb.Cells))
	}
	for i := range ca.Cells {
		if ca.Cells[i] != cb.Cells[i] {
			t.Fatalf("cell %d: %+v vs %+v", i, ca.Cells[i], cb.Cells[i])
		}
	}
}
