// Package server is the multi-tenant serving layer: it hosts many concurrent
// workbook sessions, each backed by an engine.Engine over its own TACO
// graph, behind a sharded session store and a JSON HTTP API. This is the
// DataSpread-style deployment the paper targets — compressed formula graphs
// answering dependents queries and driving incremental recalculation for
// live, concurrently edited spreadsheets.
package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"taco/internal/engine"
)

// ErrSessionNotFound is returned for unknown session IDs.
var ErrSessionNotFound = errors.New("server: session not found")

// ErrSessionDeleted is returned when a request races a deletion.
var ErrSessionDeleted = errors.New("server: session deleted")

// StoreOptions configures the session store.
type StoreOptions struct {
	// Shards is the number of hash shards (default 16). More shards reduce
	// contention on the session index; sessions themselves are locked
	// individually.
	Shards int
	// MaxResident caps in-memory sessions across the store. When exceeded,
	// the least recently used sessions are spilled to SpillDir as engine
	// snapshots and restored lazily on next touch. 0 means unlimited.
	MaxResident int
	// SpillDir is where evicted sessions are written. Required when
	// MaxResident > 0.
	SpillDir string
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	return o
}

// Session is one hosted workbook session. The zero rev is the freshly
// created state; every successful edit batch increments it, so clients can
// detect missed updates cheaply.
type Session struct {
	// ID is the server-assigned session identifier.
	ID string
	// Name is the optional client-supplied label.
	Name string

	mu      sync.RWMutex
	eng     *engine.Engine // nil while spilled
	rev     uint64
	deleted bool

	shard *shard
	elem  *list.Element // LRU position; nil while spilled (guarded by shard.mu)
	// tick is the store-wide logical time of the last touch; eviction picks
	// the resident session with the smallest tick across shard tails.
	tick atomic.Uint64
	// unevictable marks a session whose snapshot failed to write (disk
	// full, oversized content). Eviction skips it so one bad session cannot
	// stall the LRU and let residents grow unboundedly.
	unevictable atomic.Bool
}

// Rev returns the session's revision counter.
func (s *Session) Rev() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// Resident reports whether the session is currently in memory.
func (s *Session) Resident() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng != nil
}

type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
	lru      *list.List // resident sessions; front = most recently used
	resident int
}

// Store is the sharded session store. Sessions are hash-sharded by ID; each
// shard has its own index lock and LRU list, and each session its own
// RWMutex, so requests for different sessions never serialise on shared
// state beyond the brief index lookup.
type Store struct {
	opts   StoreOptions
	shards []*shard

	clock     atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	restores  atomic.Uint64
}

// NewStore builds a session store. It creates SpillDir when eviction is
// enabled.
func NewStore(opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if opts.MaxResident > 0 {
		if opts.SpillDir == "" {
			return nil, errors.New("server: MaxResident requires SpillDir")
		}
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return nil, err
		}
	}
	st := &Store{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range st.shards {
		st.shards[i] = &shard{sessions: make(map[string]*Session), lru: list.New()}
	}
	return st, nil
}

func (st *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new session around an engine and returns it. The
// insertion may push the store over MaxResident, in which case the coldest
// sessions are spilled before Create returns.
func (st *Store) Create(name string, eng *engine.Engine) *Session {
	s := &Session{ID: newSessionID(), Name: name, eng: eng}
	s.tick.Store(st.clock.Add(1))
	sh := st.shardFor(s.ID)
	s.shard = sh
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	s.elem = sh.lru.PushFront(s)
	sh.resident++
	sh.mu.Unlock()
	st.evictOverflow()
	return s
}

// View runs fn with the session's engine under the session read lock. Safe
// for graph queries and metadata; use Update for anything that can evaluate
// or mutate cells (the engine evaluates lazily, so value reads are updates).
func (st *Store) View(id string, fn func(*Session, *engine.Engine) error) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	s.mu.RLock()
	if s.eng != nil && !s.deleted {
		defer s.mu.RUnlock()
		return fn(s, s.eng)
	}
	s.mu.RUnlock()
	// Spilled (or racing a delete): take the write lock and restore.
	return st.withResident(s, func(eng *engine.Engine) error { return fn(s, eng) })
}

// Update runs fn with the session's engine under the session write lock,
// restoring it from its spill file first when necessary. When fn returns nil
// and bumpRev is true, the revision counter is incremented.
func (st *Store) Update(id string, bumpRev bool, fn func(*Session, *engine.Engine) error) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	return st.withResident(s, func(eng *engine.Engine) error {
		if err := fn(s, eng); err != nil {
			return err
		}
		if bumpRev {
			s.rev++
		}
		return nil
	})
}

// Peek finds a session without touching its LRU position or miss/hit
// counters — for metadata reads that must not influence eviction.
func (st *Store) Peek(id string) (*Session, error) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	sh.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return s, nil
}

// lookup finds the session and touches its LRU position.
func (st *Store) lookup(id string) (*Session, error) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	if s != nil {
		s.tick.Store(st.clock.Add(1))
		if s.elem != nil {
			sh.lru.MoveToFront(s.elem)
		}
	}
	sh.mu.Unlock()
	if s == nil {
		st.misses.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	st.hits.Add(1)
	return s, nil
}

// withResident runs fn under the session write lock, restoring the engine
// from disk if it was spilled. Eviction overflow is handled after the
// session lock is released — a goroutine never holds two session locks, so
// spills cannot deadlock with restores.
func (st *Store) withResident(s *Session, fn func(*engine.Engine) error) error {
	s.mu.Lock()
	if s.deleted {
		s.mu.Unlock()
		return ErrSessionDeleted
	}
	restored := false
	if s.eng == nil {
		eng, err := st.readSpill(s.ID)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("server: restore session %s: %w", s.ID, err)
		}
		s.eng = eng
		restored = true
		st.restores.Add(1)
		sh := s.shard
		sh.mu.Lock()
		s.elem = sh.lru.PushFront(s)
		sh.resident++
		sh.mu.Unlock()
	}
	err := fn(s.eng)
	s.mu.Unlock()
	if restored {
		st.evictOverflow()
	}
	return err
}

// Delete removes a session and its spill file. It is idempotent.
func (st *Store) Delete(id string) error {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	if s == nil {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	delete(sh.sessions, id)
	sh.mu.Unlock()
	s.mu.Lock()
	s.deleted = true
	s.eng = nil
	// Unlink from the LRU while still holding s.mu (the permitted s.mu ->
	// sh.mu order): a restore that raced the map removal above may have
	// re-registered the session, and leaving it listed would permanently
	// overcount residents and skew eviction.
	sh.mu.Lock()
	if s.elem != nil {
		sh.lru.Remove(s.elem)
		s.elem = nil
		sh.resident--
	}
	sh.mu.Unlock()
	s.mu.Unlock()
	if st.opts.SpillDir != "" {
		os.Remove(st.spillPath(id))
	}
	return nil
}

// Each visits every session (unspecified order) until fn returns false.
func (st *Store) Each(fn func(*Session) bool) {
	for _, sh := range st.shards {
		sh.mu.Lock()
		batch := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			batch = append(batch, s)
		}
		sh.mu.Unlock()
		for _, s := range batch {
			if !fn(s) {
				return
			}
		}
	}
}

func (st *Store) spillPath(id string) string {
	return filepath.Join(st.opts.SpillDir, id+".tacos")
}

// evictOverflow spills least-recently-used sessions until the resident count
// is back under MaxResident. Called only while the caller holds no session
// lock.
func (st *Store) evictOverflow() {
	if st.opts.MaxResident <= 0 {
		return
	}
	for st.residentCount() > st.opts.MaxResident {
		victim := st.coldest()
		if victim == nil {
			return
		}
		if err := st.spill(victim); err != nil {
			// Spill failure (disk full, unsnapshottable content): put the
			// victim back so it stays servable, mark it so coldest skips
			// it from now on, and keep shrinking with other victims.
			victim.unevictable.Store(true)
			sh := victim.shard
			sh.mu.Lock()
			if victim.elem == nil {
				victim.elem = sh.lru.PushFront(victim)
				sh.resident++
			}
			sh.mu.Unlock()
		}
	}
}

// coldest pops the globally least-recently-touched evictable session,
// approximated as the oldest tick among the shard LRU tails (unevictable
// sessions are passed over). Returns nil when nothing is evictable.
func (st *Store) coldest() *Session {
	// evictableTail walks from the shard's LRU tail past unevictable
	// entries. Caller holds sh.mu.
	evictableTail := func(sh *shard) *list.Element {
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			if !el.Value.(*Session).unevictable.Load() {
				return el
			}
		}
		return nil
	}
	var best *shard
	var bestTick uint64
	for _, sh := range st.shards {
		sh.mu.Lock()
		if el := evictableTail(sh); el != nil {
			t := el.Value.(*Session).tick.Load()
			if best == nil || t < bestTick {
				best, bestTick = sh, t
			}
		}
		sh.mu.Unlock()
	}
	if best == nil {
		return nil
	}
	best.mu.Lock()
	defer best.mu.Unlock()
	el := evictableTail(best)
	if el == nil {
		return nil
	}
	victim := el.Value.(*Session)
	best.lru.Remove(el)
	victim.elem = nil
	best.resident--
	return victim
}

// spill writes the victim's engine snapshot and releases the in-memory
// state. A session touched between LRU removal and here is simply spilled
// anyway — the next touch restores it (approximate LRU).
func (st *Store) spill(victim *Session) error {
	victim.mu.Lock()
	defer victim.mu.Unlock()
	if victim.eng == nil || victim.deleted {
		return nil
	}
	path := st.spillPath(victim.ID)
	f, err := os.CreateTemp(st.opts.SpillDir, "."+victim.ID+".tmp*")
	if err != nil {
		return err
	}
	if err := victim.eng.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	victim.eng = nil
	st.evictions.Add(1)
	return nil
}

func (st *Store) readSpill(id string) (*engine.Engine, error) {
	f, err := os.Open(st.spillPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return engine.RestoreSnapshot(f)
}

func (st *Store) residentCount() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += sh.resident
		sh.mu.Unlock()
	}
	return n
}

// StoreStats is the store-wide health snapshot served by GET /stats.
type StoreStats struct {
	Sessions  int    `json:"sessions"`
	Resident  int    `json:"resident"`
	Spilled   int    `json:"spilled"`
	Shards    int    `json:"shards"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Restores  uint64 `json:"restores"`
}

// Stats summarises the store.
func (st *Store) Stats() StoreStats {
	total := 0
	resident := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		total += len(sh.sessions)
		resident += sh.resident
		sh.mu.Unlock()
	}
	return StoreStats{
		Sessions:  total,
		Resident:  resident,
		Spilled:   total - resident,
		Shards:    len(st.shards),
		Hits:      st.hits.Load(),
		Misses:    st.misses.Load(),
		Evictions: st.evictions.Load(),
		Restores:  st.restores.Load(),
	}
}
