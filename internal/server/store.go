// Package server is the multi-tenant serving layer: it hosts many concurrent
// workbook sessions, each backed by an engine.Engine over its own TACO
// graph, behind a sharded session store and a JSON HTTP API. This is the
// DataSpread-style deployment the paper targets — compressed formula graphs
// answering dependents queries and driving incremental recalculation for
// live, concurrently edited spreadsheets.
package server

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"taco/internal/core"
	"taco/internal/engine"
	"taco/internal/faultfs"
	"taco/internal/journal"
)

// ErrSessionNotFound is returned for unknown session IDs.
var ErrSessionNotFound = errors.New("server: session not found")

// ErrSessionDeleted is returned when a request races a deletion.
var ErrSessionDeleted = errors.New("server: session deleted")

// StoreOptions configures the session store.
type StoreOptions struct {
	// Shards is the number of hash shards (default 16). More shards reduce
	// contention on the session index; sessions themselves are locked
	// individually.
	Shards int
	// MaxResident caps in-memory sessions across the store. When exceeded,
	// the least recently used sessions are spilled to SpillDir as engine
	// snapshots and restored lazily on next touch. 0 means unlimited.
	MaxResident int
	// SpillDir is where evicted sessions are written. Required when
	// MaxResident > 0.
	SpillDir string
	// RecalcWorkers sets the background recalculation worker pool size. An
	// edit batch returns after graph maintenance and the dirty-set traversal
	// only; these store-owned workers drain the resulting dirty cells behind
	// the response. 0 means one worker per available CPU; -1 disables
	// background draining entirely — recalculation then happens only on
	// Wait/flush barriers and on spill (useful for deterministic tests).
	RecalcWorkers int
	// RecalcChunk bounds the evaluations started per session-lock hold while
	// a worker drains (default 256), so readers interleave with a large
	// recalculation instead of stalling behind it. The engine's resumable
	// wavefront schedule survives across holds — levelling runs once per
	// dirty generation however small the chunk — so the bound applies
	// uniformly to serial and parallel drains: a wavefront hold covers at
	// most one (possibly truncated) level's worth of this many evaluations,
	// and a reader arriving mid-drain waits for at most that.
	RecalcChunk int
	// RecalcParallelism bounds the wavefront evaluators working one
	// session's level concurrently (engine.SetRecalcParallelism). With it
	// set above 1, levels are executed on the store's shared evaluation
	// pool — recalc latency drops by roughly the worker count on wide dirty
	// sets. 0 means one worker per available CPU (capped at 8); -1 (or 1)
	// keeps recalculation serial.
	RecalcParallelism int
	// RecalcPoolSize sets the store-owned shared evaluation pool: the one
	// bounded set of goroutines that executes every session's wavefront
	// levels, whatever the session count — drain concurrency is a
	// configuration constant, not sessions × workers. 0 sizes it
	// automatically at (RecalcParallelism-1) × max(RecalcWorkers, 1), so a
	// drain worker plus its pool helpers together never exceed
	// RecalcParallelism evaluators per level; -1 disables the shared pool
	// (engines then fan each wide level out on transient goroutines of
	// their own, the pre-pool behaviour).
	RecalcPoolSize int
	// NoGraphPin disables keeping a spilled session's compressed formula
	// graph in memory. Pinning (the default) trades a small per-session
	// footprint — the graph is the compact part, which is the paper's thesis
	// — for dependents/precedents queries that never touch disk and
	// restores that skip the graph decode.
	NoGraphPin bool
	// Durable enables crash-safe sessions: every accepted edit batch is
	// appended to a per-session journal before the response commits, a
	// persistent registry in SpillDir maps sessions to their snapshots and
	// journals, and a restarted store re-registers every session at boot,
	// replaying journal tails on top of snapshots at first touch. Requires
	// SpillDir (with or without MaxResident eviction).
	Durable bool
	// FsyncPolicy picks the journal fsync discipline when Durable:
	// "interval" (default) flushes dirty journals every FsyncInterval on a
	// background syncer, "always" group-commits an fsync before every edit
	// acknowledgement, "never" leaves write-back to the kernel. All three
	// survive a process crash (appends are synchronous write(2)s); the
	// policy only decides what a power failure can take.
	FsyncPolicy string
	// FsyncInterval is the background flush period under FsyncPolicy
	// "interval" (default 50ms) — the upper bound on edits a power failure
	// can lose.
	FsyncInterval time.Duration
	// DeltaSnapshots enables base + delta-chain spills on a durable store:
	// when everything since the held snapshot is value-only edits, eviction
	// checkpoints the journal tail as a delta record file instead of
	// re-encoding the whole engine — O(edits) written instead of O(sheet).
	// Copy-on-write forks share bases and chains through the same machinery
	// and work regardless of this flag (a fork checkpoint falls back to a
	// full snapshot when deltas are off or ineligible). See delta.go.
	DeltaSnapshots bool
	// DeltaMaxChain caps the delta-chain length before a spill compacts the
	// chain into a fresh full base (default 16). Longer chains amortise more
	// eviction churn but cost more replay at restore.
	DeltaMaxChain int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.RecalcWorkers == 0 {
		o.RecalcWorkers = runtime.GOMAXPROCS(0)
	}
	if o.RecalcWorkers < 0 {
		o.RecalcWorkers = -1
	}
	if o.RecalcChunk <= 0 {
		o.RecalcChunk = 256
	}
	if o.RecalcParallelism == 0 {
		o.RecalcParallelism = min(runtime.GOMAXPROCS(0), 8)
	}
	if o.RecalcParallelism < 0 {
		o.RecalcParallelism = 1
	}
	if o.RecalcPoolSize == 0 {
		o.RecalcPoolSize = (o.RecalcParallelism - 1) * max(o.RecalcWorkers, 1)
	}
	if o.RecalcPoolSize < 0 || o.RecalcParallelism <= 1 {
		o.RecalcPoolSize = 0
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.DeltaMaxChain <= 0 {
		o.DeltaMaxChain = 16
	}
	return o
}

// Session is one hosted workbook session. The zero rev is the freshly
// created state; every successful edit batch increments it, so clients can
// detect missed updates cheaply.
type Session struct {
	// ID is the server-assigned session identifier.
	ID string
	// Name is the optional client-supplied label.
	Name string

	mu      sync.RWMutex
	eng     *engine.Engine // nil while spilled
	rev     uint64
	deleted bool
	// pending counts dirty cells awaiting background recalculation (guarded
	// by mu). Reads serve last-computed values and report this so clients
	// can distinguish settled values from in-flight ones.
	pending int
	// snapRev is the revision the session's spill file holds; the file is
	// authoritative for the current state when snapHeld && rev == snapRev,
	// letting eviction drop residency without rewriting an unchanged
	// snapshot. Guarded by mu.
	snapRev  uint64
	snapHeld bool
	// graph pins the session's compressed formula graph across a spill (nil
	// while resident or with graph pinning disabled). The compressed graph
	// is the compact part of a session, so keeping it lets dependents
	// queries run in memory against spilled sessions and lets restores skip
	// the graph decode. Guarded by mu; valid only while eng == nil.
	graph *core.Graph
	// graphBlob caches the encoded graph section at graphBlobGen, so spills
	// after value-only edits skip re-encoding the unchanged edge set.
	// Guarded by mu.
	graphBlob    []byte
	graphBlobGen uint64
	// queued marks membership in the store's recalc queue (guarded by the
	// store's recalc mutex, not the session lock).
	queued bool
	// jw is the session's edit journal writer, opened lazily on the first
	// journaled edit of a durable store (guarded by mu).
	jw *journal.Writer
	// Delta-chain state (delta.go), guarded by mu. baseID names the session
	// whose frozen base snapshot (<baseID>.<baseRev>.tacob) roots this
	// session's chain — the copy-on-write sharing edge; empty means the
	// session's own spill file is the base, at baseRev. chain lists the
	// delta files replayed on top; snapRev always equals the last link's
	// rev (or baseRev with no chain). baseBytes/chainBytes drive the
	// compaction byte-ratio (0 baseBytes = unknown, e.g. boot-recovered).
	baseID     string
	baseRev    uint64
	chain      []journal.ChainLink
	baseBytes  int64
	chainBytes int64
	// corrupt poisons a session whose spill file failed its integrity check
	// at restore; the file is quarantined and every touch returns
	// ErrSnapshotCorrupt rather than serving bad data. Guarded by mu.
	corrupt bool
	// Degradation state (degrade.go), guarded by mu: while degraded, writes
	// are fenced with ErrSessionDegraded (reads still serve) and the store's
	// repair worker retries the broken durability path on repairBackoff.
	// pendingRecs buffers acknowledged batches whose journal append failed,
	// in rev order, until the repairer lands them.
	degraded       bool
	degradedReason string
	degradedSince  time.Time
	pendingRecs    []pendingRecord
	repairBackoff  journal.Backoff

	shard *shard
	elem  *list.Element // LRU position; nil while spilled (guarded by shard.mu)
	// tick is the store-wide logical time of the last touch; eviction picks
	// the resident session with the smallest tick across shard tails.
	tick atomic.Uint64
	// unevictable marks a session whose snapshot failed to write (disk
	// full, oversized content). Eviction skips it so one bad session cannot
	// stall the LRU and let residents grow unboundedly.
	unevictable atomic.Bool
}

// Rev returns the session's revision counter.
func (s *Session) Rev() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// Pending returns the number of cells awaiting background recalculation.
func (s *Session) Pending() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pending
}

// Resident reports whether the session is currently in memory.
func (s *Session) Resident() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng != nil
}

type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
	lru      *list.List // resident sessions; front = most recently used
	resident int
}

// Store is the sharded session store. Sessions are hash-sharded by ID; each
// shard has its own index lock and LRU list, and each session its own
// RWMutex, so requests for different sessions never serialise on shared
// state beyond the brief index lookup.
type Store struct {
	opts   StoreOptions
	shards []*shard

	// recalc is the store-owned background recalculation queue: sessions
	// with pending dirty cells, drained by the worker pool in bounded
	// chunks. The queue is FIFO and a session goes to the tail after every
	// bounded hold, so drain capacity round-robins fairly across sessions —
	// one giant recalculation shares the workers with everyone else instead
	// of monopolising them. Lock order: rq.mu is leaf-only on the enqueue
	// side (callers may hold a session lock); workers never hold rq.mu
	// while taking a session lock.
	rq struct {
		mu     sync.Mutex
		cond   *sync.Cond
		queue  []*Session
		closed bool
	}
	wg sync.WaitGroup
	// pool is the shared wavefront evaluation pool (nil when serial or
	// disabled): every hosted engine executes its wide levels here, so
	// total drain goroutines are fixed by configuration regardless of how
	// many sessions have pending work.
	pool *evalPool
	// drainsInFlight counts drainChunk turns currently holding a session —
	// the live occupancy of the drain workers, surfaced in Stats.
	drainsInFlight atomic.Int64

	// Durability layer (nil / zero unless StoreOptions.Durable): fsync
	// policy, the shared background syncer (interval policy), and the
	// persistent session registry. See durability.go.
	pol       journal.Policy
	syncer    *journal.Syncer
	reg       *journal.Registry
	ckptBytes int64 // journal size that makes a spill checkpoint the registry

	// refs counts live sessions referencing each shared snapshot artifact
	// (frozen bases, delta files) by path; the last decref unlinks the file.
	// Rebuilt from the registry at boot. refMu is a leaf lock, safe under a
	// session lock. See delta.go.
	refMu sync.Mutex
	refs  map[string]int

	// repq is the degraded-session repair queue (degrade.go): one worker,
	// deduplicated entries, per-session capped backoff between attempts.
	// Lock order: repq.mu is a leaf, safe under a session lock.
	repq struct {
		mu     sync.Mutex
		cond   *sync.Cond
		queue  []*Session
		queued map[*Session]bool
		closed bool
	}
	degradedCount atomic.Int64

	// readOnly fences every write path with ErrStandby (503): the store is
	// following a primary and applies nothing except shipped records.
	// Promotion flips it off (replication.go).
	readOnly atomic.Bool

	clock       atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	restores    atomic.Uint64
	recalcs     atomic.Uint64 // background drains completed
	snapSkips   atomic.Uint64 // evictions that skipped an unchanged snapshot write
	spillReads  atomic.Uint64 // reads served from spill files without restoring
	recovered   atomic.Uint64 // sessions re-registered from the registry at boot
	replayed    atomic.Uint64 // journal records replayed at restores
	quarantined atomic.Uint64 // spill files quarantined as corrupt
}

// NewStore builds a session store. It creates SpillDir when eviction is
// enabled.
func NewStore(opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if opts.MaxResident > 0 && opts.SpillDir == "" {
		return nil, errors.New("server: MaxResident requires SpillDir")
	}
	if opts.Durable && opts.SpillDir == "" {
		return nil, errors.New("server: Durable requires SpillDir")
	}
	if opts.SpillDir != "" {
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return nil, err
		}
	}
	st := &Store{opts: opts, shards: make([]*shard, opts.Shards)}
	st.refs = make(map[string]int)
	for i := range st.shards {
		st.shards[i] = &shard{sessions: make(map[string]*Session), lru: list.New()}
	}
	if opts.Durable {
		if err := st.openDurability(); err != nil {
			return nil, err
		}
		st.bootRecover()
		st.sweepOrphans()
	}
	st.rq.cond = sync.NewCond(&st.rq.mu)
	st.repq.cond = sync.NewCond(&st.repq.mu)
	st.repq.queued = make(map[*Session]bool)
	st.wg.Add(1)
	go st.repairWorker()
	if opts.RecalcPoolSize > 0 {
		st.pool = newEvalPool(opts.RecalcPoolSize)
	}
	if opts.RecalcWorkers > 0 {
		st.wg.Add(opts.RecalcWorkers)
		for i := 0; i < opts.RecalcWorkers; i++ {
			go st.recalcWorker()
		}
	}
	storeGaugesOnce.Do(registerStoreGauges)
	liveStores.Store(st, struct{}{})
	return st, nil
}

// Options returns the store's effective configuration (defaults applied) —
// for startup logging and diagnostics.
func (st *Store) Options() StoreOptions { return st.opts }

// configureEngine applies the store's recalculation policy to a hosted
// engine: the per-level worker bound, and the shared pool as its level
// executor so drains never spawn goroutines of their own. Called at Create
// and at every restore (the engine is rebuilt from the snapshot).
func (st *Store) configureEngine(eng *engine.Engine) {
	eng.SetRecalcParallelism(st.opts.RecalcParallelism)
	if st.pool != nil {
		eng.SetLevelRunner(st.pool.run)
	}
}

// Close stops the background recalculation workers and the shared
// evaluation pool, waiting for both to exit. Undrained sessions simply keep
// their dirty sets; the spill path drains before writing, so no state is
// lost. Inline drains after Close (Wait barriers, spills) still complete:
// the pool's run contract never depends on pool evaluators for progress.
func (st *Store) Close() {
	liveStores.Delete(st)
	st.rq.mu.Lock()
	closed := st.rq.closed
	if !closed {
		st.rq.closed = true
		st.rq.cond.Broadcast()
	}
	st.rq.mu.Unlock()
	st.repq.mu.Lock()
	if !st.repq.closed {
		st.repq.closed = true
		st.repq.cond.Broadcast()
	}
	st.repq.mu.Unlock()
	st.wg.Wait()
	if st.pool != nil && !closed {
		st.pool.close()
	}
	if st.opts.Durable && !closed {
		st.closeDurability()
	}
}

// enqueueRecalc registers a session for background draining. Safe to call
// while holding the session lock; duplicate enqueues collapse.
func (st *Store) enqueueRecalc(s *Session) {
	st.rq.mu.Lock()
	if !st.rq.closed && !s.queued {
		s.queued = true
		st.rq.queue = append(st.rq.queue, s)
		st.rq.cond.Signal()
	}
	st.rq.mu.Unlock()
}

func (st *Store) recalcWorker() {
	defer st.wg.Done()
	for {
		st.rq.mu.Lock()
		for len(st.rq.queue) == 0 && !st.rq.closed {
			st.rq.cond.Wait()
		}
		if st.rq.closed {
			st.rq.mu.Unlock()
			return
		}
		s := st.rq.queue[0]
		st.rq.queue = st.rq.queue[1:]
		s.queued = false
		st.rq.mu.Unlock()
		st.drainChunk(s)
	}
}

// evalGrab is the number of level cells an evaluator claims per fetch from
// a level task's shared cursor — the pool-side mirror of the engine's
// per-level sharding granularity.
const evalGrab = 32

// levelTask is one wavefront level submitted to the shared pool: a bag of
// independent evaluations drained cooperatively by the submitting drain
// worker and any pool evaluators that pick the task up. The cursor hands
// out disjoint shards (each eval(i) runs exactly once); fin closes when the
// last shard completes.
type levelTask struct {
	n      int
	eval   func(int)
	cursor atomic.Int64
	done   atomic.Int64
	fin    chan struct{}
}

// work drains shards until the cursor is exhausted. Safe to call from any
// number of goroutines; a call against an already-finished task returns
// immediately (stale queue entries are harmless).
func (t *levelTask) work() {
	for {
		lo := t.cursor.Add(evalGrab) - evalGrab
		if lo >= int64(t.n) {
			return
		}
		hi := min(lo+evalGrab, int64(t.n))
		for i := lo; i < hi; i++ {
			t.eval(int(i))
		}
		if t.done.Add(hi-lo) == int64(t.n) {
			close(t.fin)
		}
	}
}

// evalPool is the store-owned shared evaluation pool: one bounded set of
// goroutines executing every session's wavefront levels. Before it, each
// drain fanned its levels out on goroutines of its own, so a server with
// many concurrently draining sessions oversubscribed its cores by
// sessions × parallelism; now drain concurrency is a configuration constant
// (the drain workers plus this pool) however many sessions are dirty.
// Tasks from different sessions interleave on the FIFO task channel, so
// pool capacity is shared fairly rather than captured by whichever drain
// got there first.
type evalPool struct {
	tasks chan *levelTask
	quit  chan struct{}
	size  int
	wg    sync.WaitGroup
}

func newEvalPool(size int) *evalPool {
	p := &evalPool{
		tasks: make(chan *levelTask, 2*size),
		quit:  make(chan struct{}),
		size:  size,
	}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case t := <-p.tasks:
					t.work()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// run implements engine.LevelRunner on the shared pool. The caller (a drain
// worker holding its session's write lock) always participates — progress
// never depends on pool availability — and helpers are invited with
// non-blocking sends: a saturated pool just means the caller evaluates more
// of its own level. Returns when every evaluation has completed.
func (p *evalPool) run(n int, eval func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || n <= evalGrab {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	t := &levelTask{n: n, eval: eval, fin: make(chan struct{})}
	invites := min(p.size, (n-1)/evalGrab)
invite:
	for i := 0; i < invites; i++ {
		select {
		case p.tasks <- t:
		default:
			break invite // saturated: the caller picks up the slack
		}
	}
	t.work()
	<-t.fin
}

// close stops the pool's evaluators. In-flight tasks complete via their
// submitting caller (run never depends on the pool for progress), so close
// needs no drain handshake.
func (p *evalPool) close() {
	close(p.quit)
	p.wg.Wait()
}

// drainChunk recalculates one bounded chunk of a session's dirty cells
// under one short session-lock hold and re-queues the session at the tail
// if work remains. The engine's resumable wavefront schedule persists
// across holds — levelling runs once per dirty generation, not once per
// chunk — so the hold can stay fine-grained (RecalcChunk evaluations, at
// most one truncated level) without re-levelling overhead: readers take
// the lock between every hold, and an edit landing between holds simply
// starts a new dirty generation whose first hold rebuilds the remaining
// schedule. Wide levels are executed on the store's shared pool via the
// LevelRunner injected at Create/restore.
func (st *Store) drainChunk(s *Session) {
	st.drainsInFlight.Add(1)
	defer st.drainsInFlight.Add(-1)
	s.mu.Lock()
	if s.deleted || s.eng == nil {
		// Deleted, or spilled before the worker got here — the spill path
		// drained (or preserved) the dirty set in the snapshot already.
		s.pending = 0
		s.mu.Unlock()
		return
	}
	// The hold timer runs inside the lock so the histogram sample is
	// published before any barrier observes pending == 0 — and because the
	// lock hold IS the quantity being measured: how long a reader can stall
	// behind one drain chunk.
	holdStart := time.Now()
	s.eng.RecalculateN(st.opts.RecalcChunk)
	mDrainHold.Observe(time.Since(holdStart).Seconds())
	s.pending = s.eng.Pending()
	more := s.pending > 0
	s.mu.Unlock()
	if more {
		st.enqueueRecalc(s)
	} else {
		st.recalcs.Add(1)
		mDrains.Inc()
	}
}

// Wait is the read-your-writes barrier: it blocks until the session has no
// pending recalculation, draining inline in bounded holds under the session
// write lock (a waiter steals the work instead of sleeping on the
// background pool, but still releases the lock between chunks so readers
// interleave with the barrier exactly as they do with background drains). A
// spilled or already-clean session is a no-op — the spill path drains
// before writing, so non-residency implies drained — which keeps barriers
// from faulting cold sessions back in and evicting warm ones.
func (st *Store) Wait(id string) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	s.mu.RLock()
	deleted := s.deleted
	// A boot-recovered session whose journal tail has not been replayed yet
	// (rev ahead of the snapshot) is NOT settled even though it has no
	// engine: the barrier must fault it in so its replayed cells drain. A
	// spilled session carrying a delta chain is in the same position — the
	// delta spill dropped residency without draining, and restore re-dirties
	// every chained edit.
	tail := s.eng == nil && (s.rev != s.snapRev || len(s.chain) > 0)
	settled := !tail && (s.eng == nil || s.pending == 0)
	pending0 := s.pending
	s.mu.RUnlock()
	if deleted {
		return ErrSessionDeleted
	}
	if settled {
		return nil
	}
	if tail {
		if err := st.withResident(s, func(*engine.Engine) error { return nil }); err != nil {
			return err
		}
		pending0 = s.Pending()
	}
	// Chunked holds are bounded by the work observed at entry (plus slack):
	// a concurrent editor re-dirtying the sheet between holds could
	// otherwise outpace the chunks and starve the barrier forever. Once the
	// budget is spent, the final hold drains to completion without
	// releasing the lock — the pre-chunking behaviour, and a guaranteed
	// terminating one, since it blocks the editor it was racing.
	budget := pending0 + 8*st.opts.RecalcChunk
	drained := 0
	for {
		s.mu.Lock()
		if s.deleted {
			s.mu.Unlock()
			return ErrSessionDeleted
		}
		if s.eng == nil || s.eng.Pending() == 0 {
			s.pending = 0
			s.mu.Unlock()
			return nil
		}
		holdStart := time.Now()
		if drained >= budget {
			s.eng.RecalculateAll()
			mDrainHold.Observe(time.Since(holdStart).Seconds())
			s.pending = s.eng.Pending()
			s.mu.Unlock()
			return nil
		}
		drained += s.eng.RecalculateN(st.opts.RecalcChunk)
		mDrainHold.Observe(time.Since(holdStart).Seconds())
		s.pending = s.eng.Pending()
		s.mu.Unlock()
	}
}

func (st *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new session around an engine and returns it. The
// insertion may push the store over MaxResident, in which case the coldest
// sessions are spilled before Create returns.
func (st *Store) Create(name string, eng *engine.Engine) *Session {
	st.configureEngine(eng)
	s := &Session{ID: newSessionID(), Name: name, eng: eng}
	if st.opts.Durable {
		st.recordCreate(s, eng)
	}
	s.tick.Store(st.clock.Add(1))
	sh := st.shardFor(s.ID)
	s.shard = sh
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	s.elem = sh.lru.PushFront(s)
	sh.resident++
	sh.mu.Unlock()
	mSessionsCreated.Inc()
	st.evictOverflow()
	return s
}

// View runs fn with the session's engine under the session read lock.
// Engine reads are side-effect-free (Value/Peek never evaluate), so graph
// queries, value reads, and metadata are all safe here and run concurrently;
// use Update for mutations.
func (st *Store) View(id string, fn func(*Session, *engine.Engine) error) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	s.mu.RLock()
	if s.eng != nil && !s.deleted {
		defer s.mu.RUnlock()
		return fn(s, s.eng)
	}
	s.mu.RUnlock()
	// Spilled (or racing a delete): take the write lock and restore.
	return st.withResident(s, func(eng *engine.Engine) error { return fn(s, eng) })
}

// Update runs fn with the session's engine under the session write lock,
// restoring it from its spill file first when necessary. When fn returns nil
// and bumpRev is true, the revision counter is incremented. Revision-bumping
// updates (the write path) are fenced while the session is degraded.
func (st *Store) Update(id string, bumpRev bool, fn func(*Session, *engine.Engine) error) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	return st.withResident(s, func(eng *engine.Engine) error {
		if bumpRev && s.degraded {
			return ErrSessionDegraded
		}
		if err := fn(s, eng); err != nil {
			return err
		}
		if bumpRev {
			s.rev++
		}
		return nil
	})
}

// Flush drains every resident session's pending recalculation. Used by
// graceful shutdown paths and tests; spilled sessions are already drained on
// disk.
func (st *Store) Flush() {
	st.Each(func(s *Session) bool {
		s.mu.Lock()
		if s.eng != nil && !s.deleted {
			s.eng.RecalculateAll()
			s.pending = 0
		}
		s.mu.Unlock()
		return true
	})
}

// TryView runs fn under the session read lock only if the session is
// resident, reporting whether it ran. A false return with nil error means
// the session is spilled — the caller can serve the read from the spill
// file via ReadSpilled without faulting the session back in.
func (st *Store) TryView(id string, fn func(*Session, *engine.Engine) error) (bool, error) {
	s, err := st.lookup(id)
	if err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.deleted {
		return false, ErrSessionDeleted
	}
	if s.eng == nil {
		return false, nil
	}
	return true, fn(s, s.eng)
}

// ViewPinnedGraph runs fn against the compressed formula graph a spilled
// session left pinned in memory, under the session read lock. Returns
// handled=false when the session is resident (use the live engine) or no
// graph is pinned (decode the spill file instead). The traversal runs
// entirely in memory — no disk, no cell materialisation.
func (st *Store) ViewPinnedGraph(id string, fn func(g *core.Graph, rev uint64) error) (handled bool, err error) {
	s, err := st.lookup(id)
	if err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.deleted {
		return false, ErrSessionDeleted
	}
	if s.eng != nil || s.graph == nil {
		return false, nil
	}
	st.spillReads.Add(1)
	mSpillReads.Inc()
	return true, fn(s.graph, s.rev)
}

// ReadSpilled decodes the session's spill file with fn, holding the session
// read lock for the duration. While a session is spilled its file is
// authoritative — the spill path drains pending recalculation and writes
// before dropping residency — and holding the read lock over the
// (sub-millisecond) decode excludes the restore → edit → re-spill sequence
// that could otherwise rewrite the file mid-read. Returns handled=false
// when the session is resident (serve the live engine instead), when the
// file is missing, or when fn fails to decode — callers then fall back to
// the faulting path, which surfaces genuine errors.
func (st *Store) ReadSpilled(id string, fn func(br *bufio.Reader, rev uint64) error) (handled bool, err error) {
	s, err := st.lookup(id)
	if err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.deleted {
		return false, ErrSessionDeleted
	}
	if s.eng != nil {
		return false, nil
	}
	if s.rev != s.snapRev || s.corrupt || len(s.chain) > 0 {
		// Boot-recovered with an unreplayed journal tail (the file is stale),
		// quarantined, or chained (the base alone is not the current state):
		// fall back to the faulting path.
		return false, nil
	}
	f, err := os.Open(st.baseFilePathLocked(s))
	if err != nil {
		return false, nil
	}
	defer f.Close()
	br := brPool.Get().(*bufio.Reader)
	br.Reset(f)
	defer func() {
		br.Reset(nil)
		brPool.Put(br)
	}()
	if fn(br, s.rev) != nil {
		return false, nil
	}
	st.spillReads.Add(1)
	mSpillReads.Inc()
	return true, nil
}

// Peek finds a session without touching its LRU position or miss/hit
// counters — for metadata reads that must not influence eviction.
func (st *Store) Peek(id string) (*Session, error) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	sh.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return s, nil
}

// lookup finds the session and touches its LRU position.
func (st *Store) lookup(id string) (*Session, error) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	if s != nil {
		s.tick.Store(st.clock.Add(1))
		if s.elem != nil {
			sh.lru.MoveToFront(s.elem)
		}
	}
	sh.mu.Unlock()
	if s == nil {
		st.misses.Add(1)
		mLookupMisses.Inc()
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	st.hits.Add(1)
	mLookupHits.Inc()
	return s, nil
}

// withResident runs fn under the session write lock, restoring the engine
// from disk if it was spilled. Eviction overflow is handled after the
// session lock is released — a goroutine never holds two session locks, so
// spills cannot deadlock with restores.
func (st *Store) withResident(s *Session, fn func(*engine.Engine) error) error {
	s.mu.Lock()
	if s.deleted {
		s.mu.Unlock()
		return ErrSessionDeleted
	}
	restored := false
	if s.eng == nil {
		// restoreEngine reads the snapshot (integrity-checked) and replays
		// any journal tail. When rev == snapRev afterwards the file holds
		// exactly this state and eviction can drop residency without
		// rewriting; a replayed session keeps rev > snapRev, forcing the
		// next spill to write a fresh snapshot.
		eng, err := st.restoreEngine(s)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("server: restore session %s: %w", s.ID, err)
		}
		st.configureEngine(eng)
		s.eng = eng
		s.graph = nil // live again; the engine owns it now
		restored = true
		st.restores.Add(1)
		mRestores.Inc()
		sh := s.shard
		sh.mu.Lock()
		s.elem = sh.lru.PushFront(s)
		sh.resident++
		sh.mu.Unlock()
	}
	err := fn(s.eng)
	// Refresh the pending count and hand any new dirty cells to the
	// background pool. This is the asynchronous model's control-return
	// point: fn did graph maintenance and the dirty-set traversal only.
	s.pending = s.eng.Pending()
	enqueue := s.pending > 0 && st.opts.RecalcWorkers > 0
	s.mu.Unlock()
	if enqueue {
		st.enqueueRecalc(s)
	}
	if restored {
		st.evictOverflow()
	}
	return err
}

// Delete removes a session and its spill file. It is idempotent.
func (st *Store) Delete(id string) error {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	if s == nil {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	delete(sh.sessions, id)
	sh.mu.Unlock()
	s.mu.Lock()
	s.deleted = true
	s.eng = nil
	s.graph = nil
	s.graphBlob = nil
	if s.degraded {
		s.degraded = false
		s.pendingRecs = nil
		st.degradedCount.Add(-1)
	}
	jw := s.jw
	s.jw = nil
	sharedRefs := st.sharedRefsLocked(s)
	s.baseID = ""
	s.chain = nil
	// Unlink from the LRU while still holding s.mu (the permitted s.mu ->
	// sh.mu order): a restore that raced the map removal above may have
	// re-registered the session, and leaving it listed would permanently
	// overcount residents and skew eviction.
	sh.mu.Lock()
	if s.elem != nil {
		sh.lru.Remove(s.elem)
		s.elem = nil
		sh.resident--
	}
	sh.mu.Unlock()
	s.mu.Unlock()
	if jw != nil {
		jw.Close()
	}
	if st.opts.SpillDir != "" {
		os.Remove(st.spillPath(id))
	}
	// Shared artifacts (frozen base, delta files) go away only with their
	// last referent — a forked child keeps its parent's base and chain alive
	// past the parent's deletion.
	for _, p := range sharedRefs {
		st.decref(p)
	}
	if st.opts.Durable {
		st.recordDelete(id)
	}
	mSessionsDeleted.Inc()
	return nil
}

// Each visits every session (unspecified order) until fn returns false.
func (st *Store) Each(fn func(*Session) bool) {
	for _, sh := range st.shards {
		sh.mu.Lock()
		batch := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			batch = append(batch, s)
		}
		sh.mu.Unlock()
		for _, s := range batch {
			if !fn(s) {
				return
			}
		}
	}
}

func (st *Store) spillPath(id string) string {
	return filepath.Join(st.opts.SpillDir, id+".tacos")
}

// evictOverflow spills least-recently-used sessions until the resident count
// is back under MaxResident. Called only while the caller holds no session
// lock.
func (st *Store) evictOverflow() {
	if st.opts.MaxResident <= 0 {
		return
	}
	for st.residentCount() > st.opts.MaxResident {
		victim := st.coldest()
		if victim == nil {
			return
		}
		if err := st.spill(victim); err != nil {
			// Spill failure (disk full, unsnapshottable content): put the
			// victim back so it stays servable, mark it so coldest skips
			// it from now on, and keep shrinking with other victims. The
			// session degrades — reads fine, writes fenced — until the
			// repair worker lands a snapshot again.
			mSpillErrors.Inc()
			victim.unevictable.Store(true)
			victim.mu.Lock()
			st.degradeLocked(victim, degradedSpill, nil)
			victim.mu.Unlock()
			st.scheduleRepair(victim)
			sh := victim.shard
			sh.mu.Lock()
			if victim.elem == nil {
				victim.elem = sh.lru.PushFront(victim)
				sh.resident++
			}
			sh.mu.Unlock()
		}
	}
}

// coldest pops the globally least-recently-touched evictable session,
// approximated as the oldest tick among the shard LRU tails (unevictable
// sessions are passed over). Returns nil when nothing is evictable.
func (st *Store) coldest() *Session {
	// evictableTail walks from the shard's LRU tail past unevictable
	// entries. Caller holds sh.mu.
	evictableTail := func(sh *shard) *list.Element {
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			if !el.Value.(*Session).unevictable.Load() {
				return el
			}
		}
		return nil
	}
	var best *shard
	var bestTick uint64
	for _, sh := range st.shards {
		sh.mu.Lock()
		if el := evictableTail(sh); el != nil {
			t := el.Value.(*Session).tick.Load()
			if best == nil || t < bestTick {
				best, bestTick = sh, t
			}
		}
		sh.mu.Unlock()
	}
	if best == nil {
		return nil
	}
	best.mu.Lock()
	defer best.mu.Unlock()
	el := evictableTail(best)
	if el == nil {
		return nil
	}
	victim := el.Value.(*Session)
	best.lru.Remove(el)
	victim.elem = nil
	best.resident--
	return victim
}

// bufPool recycles spill serialisation buffers; brPool recycles sized read
// buffers. Both exist because the eviction loop runs constantly under a
// resident cap — one allocation per spill or restore is one allocation too
// many.
var (
	bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	brPool  = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 64<<10) }}
)

// spill writes the victim's engine snapshot and releases the in-memory
// state. A session touched between LRU removal and here is simply spilled
// anyway — the next touch restores it (approximate LRU).
func (st *Store) spill(victim *Session) error {
	victim.mu.Lock()
	defer victim.mu.Unlock()
	if victim.eng == nil || victim.deleted {
		return nil
	}
	if victim.snapHeld && victim.snapRev == victim.rev {
		// The on-disk snapshot already holds this exact logical state — the
		// session has only been read since its last spill or restore. Drop
		// residency without rewriting: restoring the file reproduces the
		// engine (including any still-unevaluated oversized-value cells,
		// which the snapshot round-trips as dirty).
		if !st.opts.NoGraphPin {
			victim.graph = victim.eng.TACOGraph()
		}
		victim.eng.Recycle()
		victim.eng = nil
		victim.pending = 0
		st.snapSkips.Add(1)
		st.evictions.Add(1)
		mSnapSkips.Inc()
		mEvictions.Inc()
		return nil
	}
	// Delta path: when the journal tail since the held snapshot is pure
	// value edits, checkpoint the tail as a delta file chained off the base
	// — O(edits) written instead of O(sheet). Restore replays the chain
	// through the bulk-edit path, leaving those cells dirty exactly like a
	// journal-tail replay, so draining is not required before dropping
	// residency here. Any ineligibility or write failure falls through to
	// the full snapshot below.
	if st.deltaEligibleLocked(victim) && st.writeDeltaLocked(victim) {
		if !st.opts.NoGraphPin {
			victim.graph = victim.eng.TACOGraph()
		}
		victim.eng.Recycle()
		victim.eng = nil
		victim.pending = 0
		st.noteSpilled(victim)
		st.evictions.Add(1)
		mEvictions.Inc()
		return nil
	}
	// Full snapshot (writeFullLocked serialises to a pooled buffer, then
	// publishes atomically: same-directory temp file + rename, so neither a
	// crash mid-write nor a restarted durable store can ever observe a torn
	// snapshot at the final path). A fresh base also compacts any delta
	// chain away.
	if err := st.writeFullLocked(victim); err != nil {
		return err
	}
	// WriteSnapshot drained the pending recalculation before serialising, so
	// the stored values are authoritative.
	if !st.opts.NoGraphPin {
		victim.graph = victim.eng.TACOGraph()
	}
	victim.eng.Recycle()
	victim.eng = nil
	victim.pending = 0
	st.noteSpilled(victim)
	st.evictions.Add(1)
	mEvictions.Inc()
	return nil
}

// readSpill restores an engine from the snapshot file at path, verifying
// the snapshot's whole-file checksum first (a TACOE1 file from before
// checksums passes vacuously). With a pinned graph the restore decodes only
// the cell section and rebuilds around it.
func (st *Store) readSpill(path string, pinned *core.Graph) (*engine.Engine, error) {
	data, err := faultfs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := engine.CheckSnapshotIntegrity(data); err != nil {
		return nil, err
	}
	br := brPool.Get().(*bufio.Reader)
	br.Reset(bytes.NewReader(data))
	defer func() { br.Reset(nil); brPool.Put(br) }()
	if pinned != nil {
		return engine.RestoreSnapshotWithGraph(br, pinned)
	}
	return engine.RestoreSnapshot(br)
}

func (st *Store) residentCount() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += sh.resident
		sh.mu.Unlock()
	}
	return n
}

// StoreStats is the store-wide health snapshot served by GET /stats.
type StoreStats struct {
	Sessions  int    `json:"sessions"`
	Resident  int    `json:"resident"`
	Spilled   int    `json:"spilled"`
	Shards    int    `json:"shards"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Restores  uint64 `json:"restores"`
	// Recalcs counts background drains completed by the worker pool.
	Recalcs uint64 `json:"recalcs"`
	// SnapSkips counts evictions that dropped residency without rewriting an
	// unchanged snapshot.
	SnapSkips uint64 `json:"snap_skips"`
	// SpillReads counts reads served directly from spill files without
	// faulting the session back to residency.
	SpillReads uint64 `json:"spill_reads"`
	// RecalcQueue is the number of sessions currently queued for a drain
	// worker — the recalculation backlog's breadth.
	RecalcQueue int `json:"recalc_queue"`
	// DrainsInFlight is the number of drain turns holding a session right
	// now (bounded by RecalcWorkers).
	DrainsInFlight int `json:"drains_in_flight"`
	// EvalPoolWorkers is the size of the shared wavefront evaluation pool
	// (0 = serial or pool disabled). Together with RecalcWorkers it is the
	// store's total drain-goroutine bound, independent of session count.
	EvalPoolWorkers int `json:"eval_pool_workers"`
	// Durable reports whether the store journals edits for crash recovery.
	Durable bool `json:"durable,omitempty"`
	// RecoveredSessions counts sessions re-registered from the persistent
	// registry at warm boot.
	RecoveredSessions uint64 `json:"recovered_sessions,omitempty"`
	// ReplayedRecords counts journal records replayed onto restored
	// snapshots since boot.
	ReplayedRecords uint64 `json:"replayed_records,omitempty"`
	// QuarantinedSnapshots counts spill files that failed their integrity
	// check and were renamed aside as *.corrupt.
	QuarantinedSnapshots uint64 `json:"quarantined_snapshots,omitempty"`
	// DegradedSessions is the number of sessions currently write-fenced by a
	// durability fault (journal append or snapshot write failure) awaiting
	// background repair.
	DegradedSessions int `json:"degraded_sessions,omitempty"`
	// ReadOnly reports a standby store: writes are rejected with 503 until
	// promotion.
	ReadOnly bool `json:"read_only,omitempty"`
}

// Stats summarises the store.
func (st *Store) Stats() StoreStats {
	total := 0
	resident := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		total += len(sh.sessions)
		resident += sh.resident
		sh.mu.Unlock()
	}
	st.rq.mu.Lock()
	queued := len(st.rq.queue)
	st.rq.mu.Unlock()
	poolWorkers := 0
	if st.pool != nil {
		poolWorkers = st.pool.size
	}
	return StoreStats{
		Sessions:        total,
		Resident:        resident,
		Spilled:         total - resident,
		Shards:          len(st.shards),
		Hits:            st.hits.Load(),
		Misses:          st.misses.Load(),
		Evictions:       st.evictions.Load(),
		Restores:        st.restores.Load(),
		Recalcs:         st.recalcs.Load(),
		SnapSkips:       st.snapSkips.Load(),
		SpillReads:      st.spillReads.Load(),
		RecalcQueue:     queued,
		DrainsInFlight:  int(st.drainsInFlight.Load()),
		EvalPoolWorkers: poolWorkers,

		Durable:              st.opts.Durable,
		RecoveredSessions:    st.recovered.Load(),
		ReplayedRecords:      st.replayed.Load(),
		QuarantinedSnapshots: st.quarantined.Load(),
		DegradedSessions:     int(st.degradedCount.Load()),
		ReadOnly:             st.readOnly.Load(),
	}
}
