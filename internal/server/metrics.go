package server

import (
	"sync"

	"taco/internal/telemetry"
)

// The serving layer's instruments, registered once per process on the
// telemetry default registry. Counters are package-global rather than
// per-Store so any number of Store instances (tests, embedded drivers)
// compose into one process-wide view without duplicate-registration
// panics; instantaneous state (resident counts, queue depth) comes from
// gauge callbacks that sum over the live stores at scrape time.
var (
	// HTTP layer — maintained by the middleware in middleware.go.
	httpRequests = telemetry.NewCounterVec("taco_http_requests_total",
		"HTTP requests served, by matched route pattern and status code.",
		"route", "code")
	httpDuration = telemetry.NewHistogramVec("taco_http_request_duration_seconds",
		"HTTP request latency by matched route pattern.",
		telemetry.DurationBounds(), "route")
	httpInFlight = telemetry.NewGauge("taco_http_requests_in_flight",
		"HTTP requests currently being handled.")

	// Store lifecycle.
	mSessionsCreated = telemetry.NewCounter("taco_store_sessions_created_total",
		"Sessions created.")
	mSessionsDeleted = telemetry.NewCounter("taco_store_sessions_deleted_total",
		"Sessions deleted.")
	mRestores = telemetry.NewCounter("taco_store_restores_total",
		"Spilled sessions restored to residency from their snapshot.")
	mEvictions = telemetry.NewCounter("taco_store_evictions_total",
		"Sessions evicted from residency (snapshot written or reused).")
	mSnapSkips = telemetry.NewCounter("taco_store_snapshot_skips_total",
		"Evictions that dropped residency without rewriting an unchanged snapshot.")
	mSpillBytes = telemetry.NewCounter("taco_store_spill_bytes_total",
		"Bytes of session snapshots written to spill files.")
	mSpillErrors = telemetry.NewCounter("taco_store_spill_errors_total",
		"Failed snapshot writes; the victim is kept resident and marked unevictable.")
	mSpillReads = telemetry.NewCounter("taco_store_spill_reads_total",
		"Reads served directly from spill files or pinned graphs without restoring.")
	mLookupHits = telemetry.NewCounter("taco_store_lookup_hits_total",
		"Session lookups that found the session.")
	mLookupMisses = telemetry.NewCounter("taco_store_lookup_misses_total",
		"Session lookups for unknown IDs.")

	// Drain path. The hold histogram is the store's tail-latency instrument:
	// every session-lock hold taken to evaluate a recalculation chunk —
	// background drain turns and inline Wait barriers alike — records its
	// duration, so the p99 bounds how long a concurrent reader can stall
	// behind recalculation.
	mDrainHold = telemetry.NewHistogram("taco_store_drain_hold_seconds",
		"Session write-lock hold duration per recalculation chunk (background and barrier drains).",
		telemetry.DurationBounds())
	mDrains = telemetry.NewCounter("taco_store_drains_total",
		"Background drains completed (session reached zero pending cells).")

	// Durability and crash recovery (durability.go). taco_journal_* families
	// live in internal/journal.
	mRecoveredSessions = telemetry.NewCounter("taco_recovery_sessions_total",
		"Sessions re-registered from the persistent registry at warm boot.")
	mReplayRecords = telemetry.NewCounter("taco_recovery_replay_records_total",
		"Journal records replayed onto restored snapshots.")
	mReplayDuration = telemetry.NewHistogram("taco_recovery_replay_seconds",
		"Journal-tail replay duration per session restore.",
		telemetry.DurationBounds())
	mQuarantined = telemetry.NewCounter("taco_recovery_quarantined_snapshots_total",
		"Spill files that failed their integrity check at restore and were renamed aside as *.corrupt.")
	mDurabilityErrors = telemetry.NewCounter("taco_store_durability_errors_total",
		"Failed journal appends or registry updates; the session degrades to non-durable rather than failing the request.")

	// Graceful degradation (degrade.go).
	mDegradedEvents = telemetry.NewCounterVec("taco_durability_degraded_total",
		"Sessions entering the degraded state (writes fenced, repair scheduled), by cause.", "reason")
	mRepairs = telemetry.NewCounter("taco_durability_repairs_total",
		"Degraded sessions repaired: durability re-armed and the write fence lifted.")
	mRepairFailures = telemetry.NewCounter("taco_durability_repair_failures_total",
		"Repair attempts that failed and were re-scheduled on backoff.")

	// Delta snapshots and copy-on-write forks (delta.go).
	mDeltaWrites = telemetry.NewCounter("taco_snap_delta_writes_total",
		"Evictions and fork checkpoints that wrote a delta record file instead of a full snapshot.")
	mDeltaBytes = telemetry.NewCounter("taco_snap_delta_bytes_total",
		"Bytes written to delta record files (also included in taco_store_spill_bytes_total).")
	mDeltaCompactions = telemetry.NewCounter("taco_snap_delta_compactions_total",
		"Delta chains collapsed into a fresh full base snapshot.")
	mDeltaReplayed = telemetry.NewCounter("taco_snap_delta_records_replayed_total",
		"Delta-chain records replayed onto base snapshots at session restores.")
	mForks = telemetry.NewCounter("taco_fork_sessions_total",
		"Copy-on-write session forks created.")
	mForkDuration = telemetry.NewHistogram("taco_fork_seconds",
		"Fork creation latency: parent checkpoint, base freeze, and registry update.",
		telemetry.DurationBounds())

	// Journal shipping (replication.go). mReplShipped counts on the primary,
	// the rest on the standby.
	mReplShipped = telemetry.NewCounter("taco_repl_records_shipped_total",
		"Journal records streamed to followers over /replication endpoints.")
	mReplApplied = telemetry.NewCounter("taco_repl_records_applied_total",
		"Shipped journal records applied by this standby.")
	mReplSnapshots = telemetry.NewCounter("taco_repl_snapshots_total",
		"Session bootstraps from a primary snapshot on this standby.")
	mReplErrors = telemetry.NewCounter("taco_repl_errors_total",
		"Failed shipping cycles (the replicator retries on capped backoff).")
	mReplLagRevs = telemetry.NewGauge("taco_repl_lag_revs",
		"Revisions the standby is behind the primary, summed over sessions, at the last poll.")
	mPromotions = telemetry.NewCounter("taco_repl_promotions_total",
		"Standby promotions: replicator fenced and the write fence lifted.")
)

// liveStores tracks open Stores for the scrape-time gauges. NewStore
// registers, Close unregisters.
var liveStores sync.Map // *Store -> struct{}

// storeGaugesOnce delays gauge registration to first store construction so
// merely importing the package (e.g. from the client library) doesn't
// expose store families with no store behind them.
var storeGaugesOnce sync.Once

// sumStores folds fn over the live stores' stats snapshots at scrape time.
func sumStores(fn func(StoreStats) float64) float64 {
	total := 0.0
	liveStores.Range(func(k, _ any) bool {
		total += fn(k.(*Store).Stats())
		return true
	})
	return total
}

func registerStoreGauges() {
	telemetry.NewGaugeFunc("taco_store_sessions",
		"Sessions currently hosted (resident + spilled), across all stores.",
		func() float64 { return sumStores(func(s StoreStats) float64 { return float64(s.Sessions) }) })
	telemetry.NewGaugeFunc("taco_store_resident_sessions",
		"Sessions currently resident in memory, across all stores.",
		func() float64 { return sumStores(func(s StoreStats) float64 { return float64(s.Resident) }) })
	telemetry.NewGaugeFunc("taco_store_recalc_queue_depth",
		"Sessions queued for a background drain worker.",
		func() float64 { return sumStores(func(s StoreStats) float64 { return float64(s.RecalcQueue) }) })
	telemetry.NewGaugeFunc("taco_store_drains_in_flight",
		"Drain turns currently holding a session lock.",
		func() float64 { return sumStores(func(s StoreStats) float64 { return float64(s.DrainsInFlight) }) })
	telemetry.NewGaugeFunc("taco_store_eval_pool_workers",
		"Shared wavefront evaluation pool size, across all stores.",
		func() float64 { return sumStores(func(s StoreStats) float64 { return float64(s.EvalPoolWorkers) }) })
	telemetry.NewGaugeFunc("taco_durability_degraded_sessions",
		"Sessions currently write-fenced by a durability fault, awaiting repair.",
		func() float64 { return sumStores(func(s StoreStats) float64 { return float64(s.DegradedSessions) }) })
}
