package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"taco/internal/engine"
	"taco/internal/faultfs"
	"taco/internal/journal"
)

// Delta snapshots and copy-on-write forks: structural sharing for the
// persistence layer. The paper's thesis — spreadsheet state is dominated by
// repeated structure that should be stored once and shared — applies to
// snapshots as much as to formula graphs. A session's durable state becomes
// `base snapshot + delta chain`: when eviction finds that everything since
// the held snapshot is value-only edits, it checkpoints the journal tail as
// a delta record file (<id>.<rev>.tacod, the journal's own record framing
// under DeltaMagic, carrying the journal edit codec) instead of re-encoding
// the whole engine — write amplification drops from O(sheet) to O(edits). A
// compaction policy (chain length, chain-vs-base byte ratio) collapses the
// chain back into a fresh full base.
//
// Forks build on the same sharing: a fork is a new registry entry pointing
// at the parent's base snapshot plus its delta chain — O(1) in sheet size.
// Because the parent's own .tacos file is renamed over on compaction, the
// base a fork shares is first *frozen* under a revision-stamped immutable
// name (<id>.<rev>.tacob, hard-linked when the filesystem allows). Frozen
// bases and delta files are immutable once published — only ever created
// and deleted — so any number of sessions can reference one by path; a
// refcount (rebuilt from the registry at boot) deletes each artifact with
// its last referent, which is what lets a parent die without stranding its
// children.
//
// Crash ordering mirrors the journal's: artifacts are written before any
// registry entry references them, and chain-superseding compaction deletes
// old artifacts only after the registry durably points at the new base.
// Artifacts orphaned inside those windows are swept at the next boot.

// deltaSuffix names delta record files; baseSuffix names frozen bases.
const (
	deltaSuffix = ".tacod"
	baseSuffix  = ".tacob"
)

// maxDeltaRecords bounds one delta file's record count: past it the journal
// tail is cheaper to fold into a full rewrite than to replay on every
// restore.
const maxDeltaRecords = 4096

// ErrForkUnsupported rejects forks on a store without a durability layer —
// the registry and journal are the fork's storage.
var ErrForkUnsupported = errors.New("server: fork requires a durable store")

func (st *Store) deltaPath(owner string, rev uint64) string {
	return filepath.Join(st.opts.SpillDir, fmt.Sprintf("%s.%d%s", owner, rev, deltaSuffix))
}

func (st *Store) basePath(owner string, rev uint64) string {
	return filepath.Join(st.opts.SpillDir, fmt.Sprintf("%s.%d%s", owner, rev, baseSuffix))
}

// baseFilePathLocked is the file holding the session's base snapshot: its
// frozen shared base when chained off one, its own spill file otherwise.
// Called with s.mu held (read or write).
func (st *Store) baseFilePathLocked(s *Session) string {
	if s.baseID != "" {
		return st.basePath(s.baseID, s.baseRev)
	}
	return st.spillPath(s.ID)
}

// ---------------------------------------------------------------------------
// Artifact refcounts
// ---------------------------------------------------------------------------

// incref records one more session referencing the artifact at path.
func (st *Store) incref(path string) {
	st.refMu.Lock()
	st.refs[path]++
	st.refMu.Unlock()
}

// decref drops one reference; the last referent's death unlinks the file.
func (st *Store) decref(path string) {
	st.refMu.Lock()
	n := st.refs[path] - 1
	if n <= 0 {
		delete(st.refs, path)
	} else {
		st.refs[path] = n
	}
	st.refMu.Unlock()
	if n <= 0 {
		os.Remove(path)
	}
}

// sharedRefsLocked lists the refcounted artifact paths the session's
// snapshot state references: its frozen base (when chained off one) and
// every delta link. Called with s.mu held, or on a not-yet-published
// session.
func (st *Store) sharedRefsLocked(s *Session) []string {
	var out []string
	if s.baseID != "" {
		out = append(out, st.basePath(s.baseID, s.baseRev))
	}
	for _, l := range s.chain {
		out = append(out, st.deltaPath(l.ID, l.Rev))
	}
	return out
}

// sweepOrphans removes delta and frozen-base files that no registry entry
// references — leftovers of the crash windows between artifact creation and
// the registry update, or between compaction's registry update and the old
// chain's deletion. Called once at boot, after refcounts are rebuilt from
// the registry and before the store serves.
func (st *Store) sweepOrphans() {
	for _, pat := range []string{"*" + deltaSuffix, "*" + baseSuffix} {
		matches, _ := filepath.Glob(filepath.Join(st.opts.SpillDir, pat))
		for _, m := range matches {
			st.refMu.Lock()
			_, referenced := st.refs[m]
			st.refMu.Unlock()
			if !referenced {
				os.Remove(m)
			}
		}
	}
	// Atomic-write temp files are stranded by a crash mid-write (a live
	// writeFileAtomic always removes its own on failure); nothing references
	// a temp by name, and no writer runs during boot, so all are stale.
	matches, _ := filepath.Glob(filepath.Join(st.opts.SpillDir, ".spill-*.tmp"))
	for _, m := range matches {
		os.Remove(m)
	}
}

// regEntryLocked builds the session's registry entry from its in-memory
// snapshot state. Called with s.mu held, or on a not-yet-published session.
func regEntryLocked(s *Session) journal.Entry {
	return journal.Entry{
		ID: s.ID, Name: s.Name,
		SnapRev: s.snapRev, SnapHeld: s.snapHeld,
		BaseID: s.baseID, BaseRev: s.baseRev,
		Chain: append([]journal.ChainLink(nil), s.chain...),
	}
}

// ---------------------------------------------------------------------------
// Delta writes
// ---------------------------------------------------------------------------

// deltaEligibleLocked reports whether the next spill may extend the chain
// instead of rewriting the base: delta snapshots on, a base held, the chain
// under its caps, and the session healthy. Called with s.mu held.
func (st *Store) deltaEligibleLocked(s *Session) bool {
	if !st.opts.Durable || !st.opts.DeltaSnapshots || !s.snapHeld || s.degraded || s.corrupt {
		return false
	}
	if len(s.chain) >= st.opts.DeltaMaxChain {
		return false
	}
	// Byte-ratio cap: once the chain outweighs half the base, replaying it
	// approaches the cost of restoring the sheet itself — compact instead.
	// A boot-recovered session's base size is unknown (0) until its next
	// full write; the length cap alone bounds it meanwhile.
	if s.baseBytes > 0 && s.chainBytes > s.baseBytes/2 {
		return false
	}
	return true
}

// collectValueTailLocked scans the session's journal for the records
// covering exactly (snapRev, rev] and returns them framed as a delta file
// body (DeltaMagic + journal records) when the run is contiguous and every
// op is a plain value assignment. ok=false — a structural edit, a gap (torn
// or degraded journal), or an oversized tail — means the caller must write
// a full snapshot instead. Called with s.mu held.
func (st *Store) collectValueTailLocked(s *Session) (body []byte, ok bool) {
	want := s.rev - s.snapRev
	if want == 0 || want > maxDeltaRecords {
		return nil, false
	}
	buf := append([]byte(nil), journal.DeltaMagic...)
	var count uint64
	next := s.snapRev + 1
	good := true
	_, _, err := journal.ScanFile(st.journalPath(s.ID), journal.JournalMagic, func(rev uint64, payload []byte) error {
		if !good || rev <= s.snapRev || rev > s.rev {
			return nil
		}
		if rev != next {
			good = false
			return nil
		}
		edits, err := decodeEditOps(payload)
		if err != nil {
			good = false
			return nil
		}
		for _, op := range edits {
			if op.Value == nil {
				good = false
				return nil
			}
		}
		buf = appendJournalRecord(buf, rev, payload)
		count++
		next++
		return nil
	})
	if err != nil || !good || count != want {
		return nil, false
	}
	return buf, true
}

// writeDeltaLocked checkpoints the session's value-only journal tail as a
// delta file chained onto the held snapshot state, advancing snapRev to rev
// without re-encoding the engine — the O(edits) spill. Reports whether the
// delta landed; false means the caller falls back to a full snapshot (and
// to the existing degradation path if that fails too). Called with s.mu
// held.
func (st *Store) writeDeltaLocked(s *Session) bool {
	body, ok := st.collectValueTailLocked(s)
	if !ok {
		return false
	}
	path := st.deltaPath(s.ID, s.rev)
	if err := writeFileAtomic(path, body, st.syncFiles()); err != nil {
		return false
	}
	st.incref(path)
	s.chain = append(s.chain, journal.ChainLink{ID: s.ID, Rev: s.rev})
	s.chainBytes += int64(len(body))
	s.snapRev = s.rev
	mDeltaWrites.Inc()
	mDeltaBytes.Add(uint64(len(body)))
	mSpillBytes.Add(uint64(len(body)))
	return true
}

// writeFullLocked serialises the resident engine to the session's own base
// snapshot file at s.rev and completes the chain bookkeeping. Called with
// s.mu held and s.eng non-nil.
func (st *Store) writeFullLocked(s *Session) error {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); bufPool.Put(buf) }()
	buf.Reset()
	if st.opts.NoGraphPin {
		if err := s.eng.WriteSnapshot(buf); err != nil {
			return err
		}
	} else {
		blob, gen, err := s.eng.WriteSnapshotCached(buf, s.graphBlob, s.graphBlobGen)
		if err != nil {
			return err
		}
		s.graphBlob, s.graphBlobGen = blob, gen
	}
	if err := writeFileAtomic(st.spillPath(s.ID), buf.Bytes(), st.syncFiles()); err != nil {
		return err
	}
	mSpillBytes.Add(uint64(buf.Len()))
	st.completeFullSnapshotLocked(s, buf.Len())
	return nil
}

// completeFullSnapshotLocked records a successful full snapshot write at
// s.rev. A fresh base supersedes the delta chain, so the chain (and any
// frozen base) lose this session's references — but only after the registry
// durably points at the new state: a crash at any point still boots against
// files that exist. On a registry failure the old artifacts are kept (the
// stale entry still references them) and leak until the next boot's orphan
// sweep. Called with s.mu held.
func (st *Store) completeFullSnapshotLocked(s *Session, size int) {
	hadChain := s.baseID != "" || len(s.chain) > 0
	var oldRefs []string
	if hadChain {
		oldRefs = st.sharedRefsLocked(s)
	}
	s.snapHeld = true
	s.snapRev = s.rev
	s.baseID = ""
	s.baseRev = s.rev
	s.chain = nil
	s.baseBytes = int64(size)
	s.chainBytes = 0
	if !hadChain {
		return
	}
	err := st.reg.Put(regEntryLocked(s))
	if err == nil {
		err = st.reg.Sync()
	}
	if err != nil {
		mDurabilityErrors.Inc()
		return
	}
	for _, p := range oldRefs {
		st.decref(p)
	}
	mDeltaCompactions.Inc()
}

// ---------------------------------------------------------------------------
// Chain replay (restore path)
// ---------------------------------------------------------------------------

// replayChain applies each delta file in s.chain onto eng, in order,
// verifying that every link replays through exactly its named revision.
// Delta records are value-only absolute assignments, so re-applying
// revisions the base already contains (a crash-rewritten delta covering a
// longer range) is harmless, and the compressed graph — with its cached
// encoding — is untouched. A link that cannot reach its revision (torn,
// missing, or corrupt mid-chain delta) is quarantined and poisons only this
// session. Called with s.mu held, eng not yet published.
func (st *Store) replayChain(s *Session, eng *engine.Engine) error {
	replayed := 0
	for _, link := range s.chain {
		path := st.deltaPath(link.ID, link.Rev)
		var last uint64
		_, _, err := journal.ScanFile(path, journal.DeltaMagic, func(rev uint64, payload []byte) error {
			edits, err := decodeEditOps(payload)
			if err != nil {
				return fmt.Errorf("delta %s rev %d: %w", filepath.Base(path), rev, err)
			}
			ops, err := parseBatch(edits)
			if err != nil {
				return fmt.Errorf("delta %s rev %d: %w", filepath.Base(path), rev, err)
			}
			applyBatch(eng, ops)
			last = rev
			replayed++
			return nil
		})
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			// Valid CRC but undecodable is a format bug, not corruption:
			// fail the restore loudly rather than serve a partial session.
			return fmt.Errorf("replay delta chain for session %s: %w", s.ID, err)
		}
		if last != link.Rev {
			// The scanner's valid-prefix semantics stop silently at the first
			// bad record, so a short replay IS the corruption signal.
			st.quarantineDelta(s, path)
			return fmt.Errorf("%w: session %s: delta %s replays to rev %d, want %d",
				ErrSnapshotCorrupt, s.ID, filepath.Base(path), last, link.Rev)
		}
	}
	if replayed > 0 {
		mDeltaReplayed.Add(uint64(replayed))
	}
	return nil
}

// quarantineDelta renames a broken delta file aside and poisons the session,
// mirroring the base-snapshot quarantine. Sessions sharing the same broken
// file fail the same way at their own restore; sessions that don't reference
// it are untouched.
func (st *Store) quarantineDelta(s *Session, path string) {
	os.Rename(path, path+".corrupt")
	s.corrupt = true
	st.quarantined.Add(1)
	mQuarantined.Inc()
}

// ---------------------------------------------------------------------------
// Copy-on-write forks
// ---------------------------------------------------------------------------

// freezeBase publishes an immutable copy of a session's own base snapshot
// under its revision-stamped shared name. A hard link is O(1) and shares
// blocks; filesystems without links get a copy. An already-frozen path is
// fine — the content at a given revision is the same state.
func freezeBase(src, dst string) error {
	err := os.Link(src, dst)
	if err == nil || errors.Is(err, os.ErrExist) {
		return nil
	}
	data, rerr := faultfs.ReadFile(src)
	if rerr != nil {
		return rerr
	}
	return writeFileAtomic(dst, data, false)
}

// Fork creates a copy-on-write child of the parent session: a new registry
// entry whose snapshot state points at the parent's (frozen) base snapshot
// plus its delta chain — O(1) in sheet size, O(edits) when the parent's
// journal tail must first be checkpointed as a delta. The child materialises
// lazily on first touch exactly like a spilled session; its first write
// opens its own journal, its own spills extend the shared chain with
// child-owned deltas, and its first compaction cuts it loose onto a private
// base. Shared artifacts are refcounted, so deleting the parent never
// strands a child.
func (st *Store) Fork(parentID, name string) (*Session, error) {
	if !st.opts.Durable {
		return nil, ErrForkUnsupported
	}
	start := time.Now()
	p, err := st.lookup(parentID)
	if err != nil {
		return nil, err
	}
	// Fast path: the parent's snapshot state already reaches rev, or a
	// value-only journal tail can be checkpointed as a delta — no engine
	// fault-in, no O(sheet) work, resident or not.
	p.mu.Lock()
	child, err, done := st.forkLocked(p, name, false)
	p.mu.Unlock()
	if !done {
		// Structural edits since the last snapshot, or no snapshot at all:
		// fault the parent in and write a full base, forking inside the hold
		// so no edit can slip between checkpoint and fork.
		err = st.withResident(p, func(*engine.Engine) error {
			var ferr error
			child, ferr, _ = st.forkLocked(p, name, true)
			return ferr
		})
	}
	if err != nil {
		return nil, err
	}
	child.tick.Store(st.clock.Add(1))
	sh := st.shardFor(child.ID)
	child.shard = sh
	sh.mu.Lock()
	sh.sessions[child.ID] = child
	sh.mu.Unlock()
	mSessionsCreated.Inc()
	mForks.Inc()
	mForkDuration.Observe(time.Since(start).Seconds())
	return child, nil
}

// forkLocked checkpoints the parent through its current revision and builds
// the child. done=false means the checkpoint needs the parent's engine
// (structural tail) and the caller must retry under withResident with
// haveEngine set. Called with p.mu held.
func (st *Store) forkLocked(p *Session, name string, haveEngine bool) (*Session, error, bool) {
	if p.deleted {
		return nil, ErrSessionDeleted, true
	}
	if p.corrupt {
		return nil, fmt.Errorf("%w: session %s", ErrSnapshotCorrupt, p.ID), true
	}
	if p.degraded {
		return nil, ErrSessionDegraded, true
	}
	if !p.snapHeld || p.snapRev != p.rev {
		switch {
		case !p.snapHeld && p.rev == 0:
			// Blank parent: the child is a blank session too.
		case p.snapHeld && p.rev > p.snapRev && st.deltaEligibleLocked(p) && st.writeDeltaLocked(p):
			// Tail checkpointed as a delta — the fork stays O(edits).
		case haveEngine && p.eng != nil:
			if err := st.writeFullLocked(p); err != nil {
				return nil, fmt.Errorf("server: fork checkpoint of %s: %w", p.ID, err), true
			}
		default:
			return nil, nil, false
		}
	}
	// Freeze the base: children must reference an immutable file, and the
	// parent's own .tacos is renamed over on its next compaction.
	if p.snapHeld && p.baseID == "" {
		frozen := st.basePath(p.ID, p.baseRev)
		if err := freezeBase(st.spillPath(p.ID), frozen); err != nil {
			return nil, fmt.Errorf("server: freeze base of %s: %w", p.ID, err), true
		}
		st.incref(frozen) // the parent's own reference
		p.baseID = p.ID
	}
	c := &Session{
		ID: newSessionID(), Name: name,
		rev: p.rev, snapRev: p.snapRev, snapHeld: p.snapHeld,
		baseID: p.baseID, baseRev: p.baseRev,
		chain:     append([]journal.ChainLink(nil), p.chain...),
		baseBytes: p.baseBytes, chainBytes: p.chainBytes,
	}
	for _, path := range st.sharedRefsLocked(c) {
		st.incref(path)
	}
	// Persist both sides: the child must exist durably before it is served,
	// and the parent's entry now names its frozen base.
	err := st.reg.Put(regEntryLocked(c))
	if err == nil {
		err = st.reg.Put(regEntryLocked(p))
	}
	if err == nil {
		err = st.reg.Sync()
	}
	if err != nil {
		for _, path := range st.sharedRefsLocked(c) {
			st.decref(path)
		}
		mDurabilityErrors.Inc()
		return nil, fmt.Errorf("server: fork %s: %w", p.ID, err), true
	}
	return c, nil, true
}

// ReadSpilledBase streams a spilled session's base snapshot file — even when
// a delta chain extends past it — under the session read lock, reporting the
// revision the base holds. The replication snapshot endpoint uses this to
// ship `base + chain` instead of a freshly encoded full sheet: the standby
// bootstraps from the base and receives the chain through the journal
// endpoint. handled=false when the session is resident, corrupt, or holds no
// snapshot (fall back to encoding the live engine).
func (st *Store) ReadSpilledBase(id string, fn func(br *bufio.Reader, baseRev uint64) error) (handled bool, err error) {
	s, err := st.lookup(id)
	if err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.deleted {
		return false, ErrSessionDeleted
	}
	if s.eng != nil || !s.snapHeld || s.corrupt {
		return false, nil
	}
	f, err := os.Open(st.baseFilePathLocked(s))
	if err != nil {
		return false, nil
	}
	defer f.Close()
	br := brPool.Get().(*bufio.Reader)
	br.Reset(f)
	defer func() {
		br.Reset(nil)
		brPool.Put(br)
	}()
	if fn(br, s.baseRev) != nil {
		return false, nil
	}
	st.spillReads.Add(1)
	mSpillReads.Inc()
	return true, nil
}
