package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"taco/internal/core"
	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

// TestRaceStress drives the three concurrency layers at once under the race
// detector: raw SafeGraph readers/writers, an AsyncEngine absorbing edits
// while being read, and the session store cycling sessions through
// edit/query/spill/restore. Run with -race (the CI default) to make it a
// synchronisation proof rather than just a load test.
func TestRaceStress(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	var wg sync.WaitGroup

	// Layer 1: SafeGraph — concurrent AddDependency/Clear against
	// FindDependents/FindPrecedents/Stats.
	sg := core.NewSafeGraph(core.DefaultOptions())
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				dep := ref.Ref{Col: 2 + w, Row: 1 + i}
				sg.AddDependency(core.Dependency{
					Prec: ref.CellRange(ref.Ref{Col: 1, Row: 1 + i}),
					Dep:  dep,
				})
				if i%7 == 0 {
					sg.Clear(ref.CellRange(dep))
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sg.FindDependents(ref.CellRange(ref.Ref{Col: 1, Row: 1 + i}))
				sg.FindPrecedents(ref.CellRange(ref.Ref{Col: 2 + w, Row: 1 + i}))
				sg.Stats()
			}
		}(w)
	}

	// Layer 2: AsyncEngine — writers race the background recalculation
	// worker and blocking readers.
	sheet := workload.InventoryTracker(80, rand.New(rand.NewSource(21)))
	eng, err := engine.Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	async := engine.NewAsync(eng)
	defer async.Close()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				async.Set(ref.Ref{Col: 2, Row: 1 + rng.Intn(80)}, workloadNum(rng))
				async.Peek(ref.Ref{Col: 4, Row: 80})
				if i%5 == 0 {
					async.Get(ref.Ref{Col: 4, Row: 40})
					async.Dependents(ref.CellRange(ref.Ref{Col: 2, Row: 1 + rng.Intn(80)}))
				}
			}
		}(w)
	}

	// Layer 3: the session store — mixed batched edits, value reads, and
	// dependent queries across sessions cycling through spill/restore.
	store, err := NewStore(StoreOptions{Shards: 4, MaxResident: 3, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var ids []string
	for i := 0; i < 8; i++ {
		sheet, err := workload.BuildScenario("financial", 25, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.LoadBulk(sheet)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, store.Create(fmt.Sprintf("stress%d", i), e).ID)
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < iters; i++ {
				id := ids[rng.Intn(len(ids))]
				switch i % 3 {
				case 0:
					err := store.Update(id, true, func(_ *Session, e *engine.Engine) error {
						e.SetValue(ref.Ref{Col: 2, Row: 1 + rng.Intn(25)}, workloadNum(rng))
						e.RecalculateAll()
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				case 1:
					// Value reads are side-effect-free: they run under the
					// shared read lock, racing the background recalc workers.
					err := store.View(id, func(_ *Session, e *engine.Engine) error {
						e.Peek(ref.Ref{Col: 5, Row: 1 + rng.Intn(25)})
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				case 2:
					err := store.View(id, func(_ *Session, e *engine.Engine) error {
						e.Dependents(ref.CellRange(ref.Ref{Col: 2, Row: 1 + rng.Intn(25)}))
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	wg.Wait()
	async.Flush()
	if err := sg.Check(); err != nil {
		t.Fatalf("SafeGraph invariants violated after stress: %v", err)
	}
	st := store.Stats()
	if st.Resident > 3 {
		t.Fatalf("resident = %d exceeds cap", st.Resident)
	}
	if st.Evictions == 0 || st.Restores == 0 {
		t.Fatalf("stress produced no spill traffic: %+v", st)
	}
}

func workloadNum(rng *rand.Rand) formula.Value { return formula.Num(float64(rng.Intn(10000))) }

// TestWavefrontDrainReadStress hammers value reads, range scans, and graph
// queries against sessions whose dirty sets are being drained by the
// parallel wavefront scheduler. The scheduler's workers run strictly inside
// the session write lock, so under -race this proves the level-barrier
// synchronisation and the read paths' side-effect freedom compose: readers
// never observe a torn value and never race a wavefront worker.
func TestWavefrontDrainReadStress(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 10
	}
	store, err := NewStore(StoreOptions{Shards: 2, RecalcParallelism: 4, RecalcWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// One wide sheet: a shared input column fanning out to hundreds of
	// formulas, so every edit dirties a set large enough for the wavefront
	// path (and wide enough for real level parallelism).
	eng := engine.New(nil)
	for r := 1; r <= 10; r++ {
		eng.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
	}
	for col := 3; col <= 8; col++ {
		for r := 1; r <= 60; r++ {
			src := fmt.Sprintf("SUM(A$1:A$10)*%d+%d", col, r)
			if _, err := eng.SetFormula(ref.Ref{Col: col, Row: r}, src); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A second tier so every drain has at least two levels.
	for r := 1; r <= 60; r++ {
		if _, err := eng.SetFormula(ref.Ref{Col: 10, Row: r}, fmt.Sprintf("SUM(C%d:H%d)", r, r)); err != nil {
			t.Fatal(err)
		}
	}
	eng.RecalculateAll()
	id := store.Create("wavefront", eng).ID

	var wg sync.WaitGroup
	// Writers: value edits that dirty the whole fan-out, handed to the
	// background pool (which drains via the wavefront scheduler).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for i := 0; i < iters; i++ {
				err := store.Update(id, true, func(_ *Session, e *engine.Engine) error {
					e.SetValue(ref.Ref{Col: 1, Row: 1 + rng.Intn(10)}, workloadNum(rng))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: point reads, columnar range scans, and graph traversals under
	// the shared read lock, interleaving with the drains.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + w)))
			for i := 0; i < iters*4; i++ {
				err := store.View(id, func(_ *Session, e *engine.Engine) error {
					switch i % 3 {
					case 0:
						e.Peek(ref.Ref{Col: 10, Row: 1 + rng.Intn(60)})
					case 1:
						e.ScanRange(ref.MustRange("C1:J60"), func(ref.Ref, formula.Value, string, bool) bool {
							return true
						})
					default:
						e.Dependents(ref.CellRange(ref.Ref{Col: 1, Row: 1 + rng.Intn(10)}))
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := store.Wait(id); err != nil {
		t.Fatal(err)
	}
	// After the barrier every value is settled and consistent: each tier-2
	// cell must equal the sum of its row across the fan-out columns.
	err = store.View(id, func(_ *Session, e *engine.Engine) error {
		var a float64
		for r := 1; r <= 10; r++ {
			a += e.Value(ref.Ref{Col: 1, Row: r}).Num
		}
		for r := 1; r <= 60; r++ {
			want := 0.0
			for col := 3; col <= 8; col++ {
				want += a*float64(col) + float64(r)
			}
			if got := e.Value(ref.Ref{Col: 10, Row: r}).Num; got != want {
				t.Errorf("J%d = %v, want %v", r, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
