package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"taco/internal/core"
	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
	"taco/internal/xlsx"
)

// Options configures a Server.
type Options struct {
	// Store options (sharding, eviction).
	Store StoreOptions
	// MaxUploadBytes caps .xlsx upload size (default 32 MiB).
	MaxUploadBytes int64
	// MaxBatchEdits caps the number of edits in one batch (default 10000).
	MaxBatchEdits int
	// MaxRangeCells caps the rectangle size of a cells read (default
	// 65536): range iteration runs under the session lock, so unbounded
	// rectangles would let one GET starve a session.
	MaxRangeCells int
	// MaxScenarioRows caps the size of generated scenario sessions
	// (default 100000) so one create request cannot exhaust host memory.
	MaxScenarioRows int
}

func (o Options) withDefaults() Options {
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	if o.MaxBatchEdits <= 0 {
		o.MaxBatchEdits = 10000
	}
	if o.MaxRangeCells <= 0 {
		o.MaxRangeCells = 65536
	}
	if o.MaxScenarioRows <= 0 {
		o.MaxScenarioRows = 100000
	}
	return o
}

// Server is the multi-tenant spreadsheet HTTP service. It implements
// http.Handler; mount it directly or under a prefix.
type Server struct {
	opts  Options
	store *Store
	mux   *http.ServeMux
}

// NewServer builds a server with its session store.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	store, err := NewStore(opts.Store)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /sessions", s.handleCreate)
	s.mux.HandleFunc("POST /sessions/xlsx", s.handleCreateXLSX)
	s.mux.HandleFunc("GET /sessions", s.handleList)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionStats)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /sessions/{id}/edits", s.handleEdits)
	s.mux.HandleFunc("GET /sessions/{id}/cells", s.handleCells)
	s.mux.HandleFunc("GET /sessions/{id}/dependents", s.handleQuery(true))
	s.mux.HandleFunc("GET /sessions/{id}/precedents", s.handleQuery(false))
	s.mux.HandleFunc("GET /stats", s.handleStoreStats)
	return s, nil
}

// Store exposes the underlying session store (load drivers, tests).
func (s *Server) Store() *Store { return s.store }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

// CreateRequest creates a session: blank by default, or generated from a
// named workload scenario.
type CreateRequest struct {
	Name     string `json:"name,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Rows     int    `json:"rows,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// SessionInfo describes one session.
type SessionInfo struct {
	ID       string      `json:"id"`
	Name     string      `json:"name,omitempty"`
	Rev      uint64      `json:"rev"`
	Resident bool        `json:"resident"`
	Cells    int         `json:"cells,omitempty"`
	Formulas int         `json:"formulas,omitempty"`
	Graph    *core.Stats `json:"graph,omitempty"`
}

// EditOp is one operation of a batch. Exactly one of Value, Text, Formula,
// Clear must be set.
type EditOp struct {
	Cell    string   `json:"cell"`
	Value   *float64 `json:"value,omitempty"`
	Text    *string  `json:"text,omitempty"`
	Formula *string  `json:"formula,omitempty"`
	Clear   bool     `json:"clear,omitempty"`
}

// EditBatch is the body of POST /sessions/{id}/edits.
type EditBatch struct {
	Edits []EditOp `json:"edits"`
}

// EditResult reports an applied batch.
type EditResult struct {
	Rev     uint64 `json:"rev"`
	Applied int    `json:"applied"`
	// DirtyCells is the total size of the dirty sets — the cells the
	// asynchronous model marks before control returns.
	DirtyCells int `json:"dirty_cells"`
	// Bulk reports whether the batch took the column-major bulk-build path.
	Bulk bool `json:"bulk"`
}

// CellOut is one cell in a read response.
type CellOut struct {
	Cell    string  `json:"cell"`
	Kind    string  `json:"kind"`
	Num     float64 `json:"num,omitempty"`
	Str     string  `json:"str,omitempty"`
	Bool    bool    `json:"bool,omitempty"`
	Error   string  `json:"error,omitempty"`
	Formula string  `json:"formula,omitempty"`
}

// QueryResult is a dependents/precedents answer.
type QueryResult struct {
	Of     string   `json:"of"`
	Ranges []string `json:"ranges"`
	Cells  int      `json:"cells"`
}

type errorBody struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionDeleted):
		return http.StatusGone
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var eng *engine.Engine
	if req.Scenario == "" {
		eng = engine.New(nil)
	} else {
		rows := req.Rows
		if rows <= 0 {
			rows = 100
		}
		if rows > s.opts.MaxScenarioRows {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("rows %d exceeds limit %d", rows, s.opts.MaxScenarioRows))
			return
		}
		sheet, err := workload.BuildScenario(req.Scenario, rows, rand.New(rand.NewSource(req.Seed)))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		eng, err = engine.LoadBulk(sheet)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	sess := s.store.Create(req.Name, eng)
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Server) handleCreateXLSX(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxUploadBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(body)) > s.opts.MaxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("upload exceeds %d bytes", s.opts.MaxUploadBytes))
		return
	}
	sheets, err := xlsx.Read(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse xlsx: %w", err))
		return
	}
	if len(sheets) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("xlsx has no sheets"))
		return
	}
	sheet := sheets[0]
	if want := r.URL.Query().Get("sheet"); want != "" {
		sheet = nil
		for _, sh := range sheets {
			if sh.Name == want {
				sheet = sh
				break
			}
		}
		if sheet == nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("xlsx has no sheet %q", want))
			return
		}
	}
	// Reject cell strings the spill path could not round-trip: a session
	// must never be admitted that cannot later be snapshotted and restored.
	var tooBig ref.Ref
	for at, c := range sheet.Cells {
		if len(c.Formula) > engine.MaxSnapshotString || len(c.Value.Str) > engine.MaxSnapshotString {
			tooBig = at
			break
		}
	}
	if tooBig.Valid() {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("cell %v holds a string over the %d-byte limit", tooBig, engine.MaxSnapshotString))
		return
	}
	eng, err := engine.LoadBulk(sheet)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = sheet.Name
	}
	sess := s.store.Create(name, eng)
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

// sessionInfo snapshots a session's metadata under its read lock without
// faulting a spilled session back in (a spilled session reports Rev and
// Resident=false only) and without touching LRU state — listing and stats
// reads must not reorder eviction.
func sessionInfo(sess *Session) SessionInfo {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	info := SessionInfo{ID: sess.ID, Name: sess.Name, Rev: sess.rev}
	if sess.eng != nil {
		info.Resident = true
		info.Cells = sess.eng.NumCells()
		info.Formulas = sess.eng.NumFormulas()
		if gs, ok := sess.eng.GraphStats(); ok {
			info.Graph = &gs
		}
	}
	return info
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := []SessionInfo{}
	s.store.Each(func(sess *Session) bool {
		out = append(out, sessionInfo(sess))
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.Peek(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("id")); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var batch EditBatch
	// The same byte cap as uploads: json.Decoder buffers strings in full,
	// so an unbounded body would sidestep every other per-request limit.
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	if len(batch.Edits) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty edit batch"))
		return
	}
	if len(batch.Edits) > s.opts.MaxBatchEdits {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(batch.Edits), s.opts.MaxBatchEdits))
		return
	}
	// Validate up front — cell refs, op shape, and formula syntax — so a
	// batch is all-or-nothing: nothing is applied unless every op is valid.
	ops, err := parseBatch(batch.Edits)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var res EditResult
	err = s.store.Update(id, true, func(sess *Session, eng *engine.Engine) error {
		applied, dirty, bulk := applyBatch(eng, ops)
		res = EditResult{Rev: sess.rev + 1, Applied: applied, DirtyCells: dirty, Bulk: bulk}
		return nil
	})
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type parsedOp struct {
	at  ref.Ref
	op  EditOp
	ast formula.Node // pre-parsed formula (EditOp.Formula ops only)
}

type badEditError struct {
	index int
	err   error
}

func (e *badEditError) Error() string { return fmt.Sprintf("edit %d: %v", e.index, e.err) }
func (e *badEditError) Unwrap() error { return e.err }

// maxEditStringBytes caps formula and text payload sizes — kept below the
// engine snapshot's string limit so no batch can build a session that the
// spill path cannot round-trip.
const maxEditStringBytes = 1 << 20

func parseBatch(edits []EditOp) ([]parsedOp, error) {
	ops := make([]parsedOp, len(edits))
	for i, op := range edits {
		at, err := ref.ParseA1(op.Cell)
		if err != nil {
			return nil, &badEditError{i, err}
		}
		if op.Formula != nil && len(*op.Formula) > maxEditStringBytes {
			return nil, &badEditError{i, fmt.Errorf("formula of %d bytes exceeds limit %d", len(*op.Formula), maxEditStringBytes)}
		}
		if op.Text != nil && len(*op.Text) > maxEditStringBytes {
			return nil, &badEditError{i, fmt.Errorf("text of %d bytes exceeds limit %d", len(*op.Text), maxEditStringBytes)}
		}
		set := 0
		for _, on := range []bool{op.Value != nil, op.Text != nil, op.Formula != nil, op.Clear} {
			if on {
				set++
			}
		}
		if set != 1 {
			return nil, &badEditError{i, errors.New("exactly one of value, text, formula, clear required")}
		}
		var ast formula.Node
		if op.Formula != nil {
			ast, err = formula.Parse(*op.Formula)
			if err != nil {
				return nil, &badEditError{i, err}
			}
		}
		ops[i] = parsedOp{at: at, op: op, ast: ast}
	}
	return ops, nil
}

// applyBatch applies parsed edits; parseBatch has already validated every
// op, so application cannot fail. A batch of pure sets against a fresh
// (empty) session takes the column-major bulk path: the already-parsed
// cells go straight to the streaming compressor, exactly like a file open
// and without a second parse.
func applyBatch(eng *engine.Engine, ops []parsedOp) (applied, dirty int, bulk bool) {
	if eng.NumCells() == 0 && !anyClear(ops) {
		uniq := make(map[ref.Ref]parsedOp, len(ops)) // later ops win, as in sequential apply
		for _, p := range ops {
			uniq[p.at] = p
		}
		pcells := make([]engine.ParsedCell, 0, len(uniq))
		for at, p := range uniq {
			pc := engine.ParsedCell{At: at}
			switch {
			case p.op.Value != nil:
				pc.Value = formula.Num(*p.op.Value)
			case p.op.Text != nil:
				pc.Value = formula.Str(*p.op.Text)
			case p.op.Formula != nil:
				pc.Src, pc.AST = *p.op.Formula, p.ast
			}
			pcells = append(pcells, pc)
		}
		*eng = *engine.LoadBulkParsed(pcells)
		return len(ops), 0, true
	}
	for _, p := range ops {
		switch {
		case p.op.Value != nil:
			dirty += countCells(eng.SetValue(p.at, formula.Num(*p.op.Value)))
		case p.op.Text != nil:
			dirty += countCells(eng.SetValue(p.at, formula.Str(*p.op.Text)))
		case p.op.Formula != nil:
			dirty += countCells(eng.SetFormulaParsed(p.at, *p.op.Formula, p.ast))
		case p.op.Clear:
			dirty += countCells(eng.ClearCell(p.at))
		}
		applied++
	}
	// No eager recalculation: the response returns after the dirty-set
	// traversal (the asynchronous model's control-return point), and reads
	// self-clean — Engine.Value evaluates dirty cells on demand, and the
	// spill path recalculates before snapshotting.
	return applied, dirty, false
}

func anyClear(ops []parsedOp) bool {
	for _, p := range ops {
		if p.op.Clear {
			return true
		}
	}
	return false
}

func countCells(rs []ref.Range) int {
	n := 0
	for _, r := range rs {
		n += r.Size()
	}
	return n
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	var rng ref.Range
	switch {
	case q.Get("at") != "":
		at, err := ref.ParseA1(q.Get("at"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rng = ref.CellRange(at)
	case q.Get("range") != "":
		var err error
		rng, err = ref.ParseRangeA1(q.Get("range"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, errors.New("need ?at=B2 or ?range=A1:C10"))
		return
	}
	if rng.Size() > s.opts.MaxRangeCells {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("range of %d cells exceeds limit %d", rng.Size(), s.opts.MaxRangeCells))
		return
	}
	out := []CellOut{}
	// Update, not View: reading a dirty cell evaluates it.
	err := s.store.Update(id, false, func(sess *Session, eng *engine.Engine) error {
		rng.Cells(func(at ref.Ref) bool {
			v := eng.Value(at)
			src := eng.Formula(at)
			if v.Kind == formula.KindEmpty && src == "" {
				return true
			}
			out = append(out, cellOut(at, v, src))
			return true
		})
		return nil
	})
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func cellOut(at ref.Ref, v formula.Value, src string) CellOut {
	c := CellOut{Cell: ref.FormatA1(at), Formula: src}
	switch v.Kind {
	case formula.KindEmpty:
		c.Kind = "empty"
	case formula.KindNumber:
		c.Kind, c.Num = "number", v.Num
	case formula.KindString:
		c.Kind, c.Str = "string", v.Str
	case formula.KindBool:
		c.Kind, c.Bool = "bool", v.Bool
	case formula.KindError:
		c.Kind, c.Error = "error", v.Err
	}
	return c
}

func (s *Server) handleQuery(dependents bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		of := r.URL.Query().Get("of")
		if of == "" {
			writeErr(w, http.StatusBadRequest, errors.New("need ?of=A1 or ?of=A1:B3"))
			return
		}
		rng, err := ref.ParseRangeA1(of)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var res QueryResult
		err = s.store.View(id, func(sess *Session, eng *engine.Engine) error {
			var rs []ref.Range
			if dependents {
				rs = eng.Dependents(rng)
			} else {
				rs = eng.Precedents(rng)
			}
			res = QueryResult{Of: rng.String(), Ranges: make([]string, len(rs)), Cells: countCells(rs)}
			for i, rr := range rs {
				res.Ranges[i] = rr.String()
			}
			return nil
		})
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}
