package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"slices"
	"strconv"

	"taco/internal/core"
	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/telemetry"
	"taco/internal/workload"
	"taco/internal/xlsx"
)

// Options configures a Server.
type Options struct {
	// Store options (sharding, eviction).
	Store StoreOptions
	// MaxUploadBytes caps .xlsx upload size (default 32 MiB).
	MaxUploadBytes int64
	// MaxBatchEdits caps the number of edits in one batch (default 10000).
	MaxBatchEdits int
	// MaxRangeCells caps the rectangle size of a cells read (default
	// 65536): range iteration runs under the session lock, so unbounded
	// rectangles would let one GET starve a session.
	MaxRangeCells int
	// MaxScenarioRows caps the size of generated scenario sessions
	// (default 100000) so one create request cannot exhaust host memory.
	MaxScenarioRows int
	// AccessLog, when set, receives one structured line per request
	// (request ID, method, route, status, bytes, duration). Nil disables
	// access logging; metrics are collected either way.
	AccessLog *slog.Logger
	// Standby, when PrimaryURL is set, boots the server as a warm standby:
	// the store is read-only (writes answer 503), a replicator tails the
	// primary's journals, and POST /admin/promote makes it the new primary.
	Standby StandbyOptions
}

func (o Options) withDefaults() Options {
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	if o.MaxBatchEdits <= 0 {
		o.MaxBatchEdits = 10000
	}
	if o.MaxRangeCells <= 0 {
		o.MaxRangeCells = 65536
	}
	if o.MaxScenarioRows <= 0 {
		o.MaxScenarioRows = 100000
	}
	return o
}

// Server is the multi-tenant spreadsheet HTTP service. It implements
// http.Handler; mount it directly or under a prefix.
type Server struct {
	opts    Options
	store   *Store
	mux     *http.ServeMux
	handler http.Handler // mux wrapped with the observability middleware
	// repl is the standby's shipping loop (nil on a primary). It survives
	// promotion — fenced — so lag headers can keep reporting the final
	// deficit.
	repl *Replicator
}

// NewServer builds a server with its session store.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	store, err := NewStore(opts.Store)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /sessions", s.handleCreate)
	s.mux.HandleFunc("POST /sessions/xlsx", s.handleCreateXLSX)
	s.mux.HandleFunc("GET /sessions", s.handleList)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionStats)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /sessions/{id}/fork", s.handleFork)
	s.mux.HandleFunc("POST /sessions/{id}/edits", s.handleEdits)
	s.mux.HandleFunc("POST /sessions/{id}/flush", s.handleFlush)
	s.mux.HandleFunc("GET /sessions/{id}/cells", s.handleCells)
	s.mux.HandleFunc("GET /sessions/{id}/dependents", s.handleQuery(true))
	s.mux.HandleFunc("GET /sessions/{id}/precedents", s.handleQuery(false))
	s.mux.HandleFunc("GET /stats", s.handleStoreStats)
	s.mux.Handle("GET /metrics", telemetry.Handler())
	s.mux.HandleFunc("GET /replication/sessions", s.handleReplSessions)
	s.mux.HandleFunc("GET /replication/sessions/{id}/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /replication/sessions/{id}/journal", s.handleReplJournal)
	s.mux.HandleFunc("POST /admin/promote", s.handlePromote)
	s.handler = observe(s.mux, opts.AccessLog)
	if opts.Standby.PrimaryURL != "" {
		store.SetReadOnly(true)
		s.repl = NewReplicator(store, opts.Standby)
		s.repl.Start()
	}
	return s, nil
}

// Store exposes the underlying session store (load drivers, tests).
func (s *Server) Store() *Store { return s.store }

// Close stops the replicator (if any) and the store's background workers.
func (s *Server) Close() {
	if s.repl != nil {
		s.repl.Close()
	}
	s.store.Close()
}

// ServeHTTP implements http.Handler. A standby stamps every response with
// its replication lag, so readers that tolerate staleness can see how stale.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.repl != nil && s.store.ReadOnly() {
		h := w.Header()
		h.Set("X-Replication-Lag-Rev", strconv.FormatUint(s.repl.LagRevs(), 10))
		h.Set("X-Replication-Lag-Ms", strconv.FormatInt(s.repl.LagMs(), 10))
	}
	s.handler.ServeHTTP(w, r)
}

// fenceWrites rejects the request on a standby store. Every mutating
// handler calls it first; shipped records bypass it (ApplyReplicated is not
// an HTTP path).
func (s *Server) fenceWrites(w http.ResponseWriter) bool {
	if !s.store.ReadOnly() {
		return false
	}
	writeErr(w, http.StatusServiceUnavailable, ErrStandby)
	return true
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

// CreateRequest creates a session: blank by default, or generated from a
// named workload scenario.
type CreateRequest struct {
	Name     string `json:"name,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Rows     int    `json:"rows,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// SessionInfo describes one session.
type SessionInfo struct {
	ID       string      `json:"id"`
	Name     string      `json:"name,omitempty"`
	Rev      uint64      `json:"rev"`
	Resident bool        `json:"resident"`
	Pending  int         `json:"pending,omitempty"`
	Cells    int         `json:"cells,omitempty"`
	Formulas int         `json:"formulas,omitempty"`
	Graph    *core.Stats `json:"graph,omitempty"`
	// CellStore describes the columnar cell storage backing range reads.
	CellStore *engine.CellStoreStats `json:"cell_store,omitempty"`
	// Recalc describes the recalculation scheduler: the dirty backlog, the
	// live resumable schedule (if a budgeted drain is mid-flight), and the
	// cumulative level/build counters.
	Recalc *engine.RecalcStats `json:"recalc,omitempty"`
}

// EditOp is one operation of a batch. Exactly one of Value, Text, Formula,
// Clear must be set.
type EditOp struct {
	Cell    string   `json:"cell"`
	Value   *float64 `json:"value,omitempty"`
	Text    *string  `json:"text,omitempty"`
	Formula *string  `json:"formula,omitempty"`
	Clear   bool     `json:"clear,omitempty"`
}

// EditBatch is the body of POST /sessions/{id}/edits.
type EditBatch struct {
	Edits []EditOp `json:"edits"`
}

// EditResult reports an applied batch. The response is sent after graph
// maintenance and the dirty-set traversal only; recalculation drains on the
// store's background workers (POST /sessions/{id}/flush or ?wait=1 reads
// give read-your-writes when needed).
type EditResult struct {
	Rev     uint64 `json:"rev"`
	Applied int    `json:"applied"`
	// DirtyCells is the total size of the dirty sets — the cells the
	// asynchronous model marks before control returns.
	DirtyCells int `json:"dirty_cells"`
	// Pending is the number of formula cells still awaiting background
	// recalculation when the response was sent.
	Pending int `json:"pending"`
	// Bulk reports whether the batch took the column-major bulk-build path.
	Bulk bool `json:"bulk"`
}

// CellOut is one cell in a read response.
type CellOut struct {
	Cell    string  `json:"cell"`
	Kind    string  `json:"kind"`
	Num     float64 `json:"num,omitempty"`
	Str     string  `json:"str,omitempty"`
	Bool    bool    `json:"bool,omitempty"`
	Error   string  `json:"error,omitempty"`
	Formula string  `json:"formula,omitempty"`
	// Pending marks a cell whose recalculation is still in flight; the
	// carried value is the last computed one (grey it out client-side).
	Pending bool `json:"pending,omitempty"`
}

// CellsResult is the body of GET /sessions/{id}/cells: the requested cells
// at a consistent revision, with the session-wide count of cells still
// awaiting recalculation.
type CellsResult struct {
	Rev     uint64    `json:"rev"`
	Pending int       `json:"pending"`
	Cells   []CellOut `json:"cells"`
}

// FlushResult is the body of POST /sessions/{id}/flush.
type FlushResult struct {
	Rev uint64 `json:"rev"`
}

// QueryResult is a dependents/precedents answer.
type QueryResult struct {
	Of     string   `json:"of"`
	Ranges []string `json:"ranges"`
	Cells  int      `json:"cells"`
}

type errorBody struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	switch status {
	case http.StatusInsufficientStorage, http.StatusServiceUnavailable:
		// Degraded sessions and standbys heal on their own (background
		// repair, promotion): tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionDeleted):
		return http.StatusGone
	case errors.Is(err, ErrSessionDegraded):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrForkUnsupported):
		return http.StatusBadRequest
	case errors.Is(err, ErrStandby):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.fenceWrites(w) {
		return
	}
	var req CreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var eng *engine.Engine
	if req.Scenario == "" {
		eng = engine.New(nil)
	} else {
		rows := req.Rows
		if rows <= 0 {
			rows = 100
		}
		if rows > s.opts.MaxScenarioRows {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("rows %d exceeds limit %d", rows, s.opts.MaxScenarioRows))
			return
		}
		sheet, err := workload.BuildScenario(req.Scenario, rows, rand.New(rand.NewSource(req.Seed)))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		eng, err = engine.LoadBulk(sheet)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	sess := s.store.Create(req.Name, eng)
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

// ForkRequest is the (optional) body of POST /sessions/{id}/fork.
type ForkRequest struct {
	Name string `json:"name,omitempty"`
}

// handleFork creates a copy-on-write child of the session: a registry entry
// sharing the parent's base snapshot and delta chain, O(1) in sheet size,
// materialised lazily on first touch. Requires a durable store.
func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	if s.fenceWrites(w) {
		return
	}
	var req ForkRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	child, err := s.store.Fork(r.PathValue("id"), req.Name)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo(child))
}

func (s *Server) handleCreateXLSX(w http.ResponseWriter, r *http.Request) {
	if s.fenceWrites(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxUploadBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(body)) > s.opts.MaxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("upload exceeds %d bytes", s.opts.MaxUploadBytes))
		return
	}
	sheets, err := xlsx.Read(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse xlsx: %w", err))
		return
	}
	if len(sheets) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("xlsx has no sheets"))
		return
	}
	sheet := sheets[0]
	if want := r.URL.Query().Get("sheet"); want != "" {
		sheet = nil
		for _, sh := range sheets {
			if sh.Name == want {
				sheet = sh
				break
			}
		}
		if sheet == nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("xlsx has no sheet %q", want))
			return
		}
	}
	// Reject cell strings the spill path could not round-trip: a session
	// must never be admitted that cannot later be snapshotted and restored.
	var tooBig ref.Ref
	for at, c := range sheet.Cells {
		if len(c.Formula) > engine.MaxSnapshotString || len(c.Value.Str) > engine.MaxSnapshotString {
			tooBig = at
			break
		}
	}
	if tooBig.Valid() {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("cell %v holds a string over the %d-byte limit", tooBig, engine.MaxSnapshotString))
		return
	}
	eng, err := engine.LoadBulk(sheet)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = sheet.Name
	}
	sess := s.store.Create(name, eng)
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

// sessionInfo snapshots a session's metadata under its read lock without
// faulting a spilled session back in (a spilled session reports Rev and
// Resident=false only) and without touching LRU state — listing and stats
// reads must not reorder eviction.
func sessionInfo(sess *Session) SessionInfo {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	info := SessionInfo{ID: sess.ID, Name: sess.Name, Rev: sess.rev, Pending: sess.pending}
	if sess.eng != nil {
		info.Resident = true
		info.Cells = sess.eng.NumCells()
		info.Formulas = sess.eng.NumFormulas()
		if gs, ok := sess.eng.GraphStats(); ok {
			info.Graph = &gs
		}
		cs := sess.eng.CellStats()
		info.CellStore = &cs
		rs := sess.eng.RecalcStats()
		info.Recalc = &rs
	}
	return info
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := []SessionInfo{}
	s.store.Each(func(sess *Session) bool {
		out = append(out, sessionInfo(sess))
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.Peek(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.fenceWrites(w) {
		return
	}
	if err := s.store.Delete(r.PathValue("id")); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	if s.fenceWrites(w) {
		return
	}
	id := r.PathValue("id")
	var batch EditBatch
	// The same byte cap as uploads: json.Decoder buffers strings in full,
	// so an unbounded body would sidestep every other per-request limit.
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	if len(batch.Edits) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty edit batch"))
		return
	}
	if len(batch.Edits) > s.opts.MaxBatchEdits {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(batch.Edits), s.opts.MaxBatchEdits))
		return
	}
	// Validate up front — cell refs, op shape, and formula syntax — so a
	// batch is all-or-nothing: nothing is applied unless every op is valid.
	ops, err := parseBatch(batch.Edits)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// In a durable store the validated batch is re-encoded for the session's
	// edit journal; UpdateJournaled appends it (and runs the fsync policy's
	// barrier) before the 200 commits, so an acknowledged batch survives a
	// crash and replays at the next restore.
	var record []byte
	if s.store.Durable() {
		record = encodeEditOps(batch.Edits)
	}
	var res EditResult
	err = s.store.UpdateJournaled(id, record, func(sess *Session, eng *engine.Engine) error {
		applied, dirty, bulk := applyBatch(eng, ops)
		if bulk {
			// The bulk path rebuilt the engine around a fresh graph; the
			// cached graph-section blob (keyed by the old instance's
			// generation counter) no longer describes it. The rebuild also
			// reset the engine's recalc configuration (parallelism, shared
			// level runner) to zero values — re-apply the store's policy or
			// this session would silently drain serially from here on.
			sess.graphBlob = nil
			s.store.configureEngine(eng)
		}
		res = EditResult{
			Rev: sess.rev + 1, Applied: applied, DirtyCells: dirty,
			Pending: eng.Pending(), Bulk: bulk,
		}
		return nil
	})
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		if err := s.store.Wait(id); err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		res.Pending = 0
	}
	writeJSON(w, http.StatusOK, res)
}

// handleFlush is the explicit read-your-writes barrier: it returns once the
// session's pending recalculation has drained.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.store.Wait(id); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	sess, err := s.store.Peek(id)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, FlushResult{Rev: sess.Rev()})
}

type parsedOp struct {
	at  ref.Ref
	op  EditOp
	ast formula.Node // pre-parsed formula (EditOp.Formula ops only)
}

type badEditError struct {
	index int
	err   error
}

func (e *badEditError) Error() string { return fmt.Sprintf("edit %d: %v", e.index, e.err) }
func (e *badEditError) Unwrap() error { return e.err }

// maxEditStringBytes caps formula and text payload sizes — kept below the
// engine snapshot's string limit so no batch can build a session that the
// spill path cannot round-trip.
const maxEditStringBytes = 1 << 20

func parseBatch(edits []EditOp) ([]parsedOp, error) {
	ops := make([]parsedOp, len(edits))
	for i, op := range edits {
		at, err := ref.ParseA1(op.Cell)
		if err != nil {
			return nil, &badEditError{i, err}
		}
		if op.Formula != nil && len(*op.Formula) > maxEditStringBytes {
			return nil, &badEditError{i, fmt.Errorf("formula of %d bytes exceeds limit %d", len(*op.Formula), maxEditStringBytes)}
		}
		if op.Text != nil && len(*op.Text) > maxEditStringBytes {
			return nil, &badEditError{i, fmt.Errorf("text of %d bytes exceeds limit %d", len(*op.Text), maxEditStringBytes)}
		}
		set := 0
		for _, on := range []bool{op.Value != nil, op.Text != nil, op.Formula != nil, op.Clear} {
			if on {
				set++
			}
		}
		if set != 1 {
			return nil, &badEditError{i, errors.New("exactly one of value, text, formula, clear required")}
		}
		var ast formula.Node
		if op.Formula != nil {
			// Cached parse: edit streams replay formulae that load paths
			// (and other tenants' identical sheets) have already parsed.
			ast, err = formula.ParseCached(*op.Formula)
			if err != nil {
				return nil, &badEditError{i, err}
			}
		}
		ops[i] = parsedOp{at: at, op: op, ast: ast}
	}
	return ops, nil
}

// applyBatch applies parsed edits; parseBatch has already validated every
// op, so application cannot fail. A batch of pure sets against a fresh
// (empty) session takes the column-major bulk path: the already-parsed
// cells go straight to the streaming compressor, exactly like a file open
// and without a second parse.
func applyBatch(eng *engine.Engine, ops []parsedOp) (applied, dirty int, bulk bool) {
	if eng.NumCells() == 0 && !anyClear(ops) {
		uniq := make(map[ref.Ref]parsedOp, len(ops)) // later ops win, as in sequential apply
		for _, p := range ops {
			uniq[p.at] = p
		}
		pcells := make([]engine.ParsedCell, 0, len(uniq))
		for at, p := range uniq {
			pc := engine.ParsedCell{At: at}
			switch {
			case p.op.Value != nil:
				pc.Value = formula.Num(*p.op.Value)
			case p.op.Text != nil:
				pc.Value = formula.Str(*p.op.Text)
			case p.op.Formula != nil:
				pc.Src, pc.AST = *p.op.Formula, p.ast
			}
			pcells = append(pcells, pc)
		}
		*eng = *engine.LoadBulkParsed(pcells)
		return len(ops), 0, true
	}
	for _, p := range ops {
		switch {
		case p.op.Value != nil:
			dirty += countCells(eng.SetValue(p.at, formula.Num(*p.op.Value)))
		case p.op.Text != nil:
			dirty += countCells(eng.SetValue(p.at, formula.Str(*p.op.Text)))
		case p.op.Formula != nil:
			dirty += countCells(eng.SetFormulaParsed(p.at, *p.op.Formula, p.ast))
		case p.op.Clear:
			dirty += countCells(eng.ClearCell(p.at))
		}
		applied++
	}
	// No eager recalculation: the response returns after the dirty-set
	// traversal (the asynchronous model's control-return point). The
	// store's background workers drain the dirty set behind the response;
	// Wait/?wait=1 barriers and the spill path (which recalculates before
	// snapshotting) drain it inline when they need settled values.
	return applied, dirty, false
}

func anyClear(ops []parsedOp) bool {
	for _, p := range ops {
		if p.op.Clear {
			return true
		}
	}
	return false
}

func countCells(rs []ref.Range) int {
	n := 0
	for _, r := range rs {
		n += r.Size()
	}
	return n
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	var rng ref.Range
	switch {
	case q.Get("at") != "":
		at, err := ref.ParseA1(q.Get("at"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rng = ref.CellRange(at)
	case q.Get("range") != "":
		var err error
		rng, err = ref.ParseRangeA1(q.Get("range"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, errors.New("need ?at=B2 or ?range=A1:C10"))
		return
	}
	if rng.Size() > s.opts.MaxRangeCells {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("range of %d cells exceeds limit %d", rng.Size(), s.opts.MaxRangeCells))
		return
	}
	// ?wait=1 drains pending recalculation first — the read-your-writes
	// barrier. Plain reads serve last-computed values immediately.
	wait := q.Get("wait") == "1"
	if wait {
		if err := s.store.Wait(id); err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
	}
	res := CellsResult{Cells: []CellOut{}}
	liveRead := func(sess *Session, eng *engine.Engine) error {
		res.Rev = sess.rev
		res.Pending = eng.Pending()
		// Columnar scan: contiguous per-column slabs instead of a Peek map
		// probe per cell of the (possibly mostly-empty) rectangle.
		eng.ScanRange(rng, func(at ref.Ref, v formula.Value, src string, clean bool) bool {
			if v.Kind == formula.KindEmpty && src == "" && clean {
				return true // value-less placeholder; same shape the probe path skipped
			}
			res.Cells = append(res.Cells, cellOut(at, v, src, !clean))
			return true
		})
		return nil
	}
	// View, not Update: reads are side-effect-free, so they run under the
	// session read lock and never block behind (or trigger) recalculation.
	// A spilled session is served straight from its spill file — which is
	// authoritative while the session is non-resident — without faulting it
	// back in and evicting someone else.
	handled := wait
	var err error
	if wait {
		err = s.store.View(id, liveRead)
	} else {
		handled, err = s.store.TryView(id, liveRead)
	}
	if err == nil && !handled {
		handled, err = s.readSpilledCells(id, rng, &res)
	}
	if err == nil && !handled {
		err = s.store.View(id, liveRead) // lost the race: fault it in
	}
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// readSpilledCells serves a range read from the session's spill file. The
// scan streams the snapshot's cell records — no engine, graph, or parse
// work — decoding only the records inside the requested rectangle; the
// rest are length-skipped off the snapshot's column-major layout. Pending
// still reports the (rare) cells the snapshot round-trips dirty, counted
// snapshot-wide by the skimming scan.
func (s *Server) readSpilledCells(id string, rng ref.Range, res *CellsResult) (bool, error) {
	type hit struct {
		at  ref.Ref
		out CellOut
	}
	var hits []hit
	handled, err := s.store.ReadSpilled(id, func(br *bufio.Reader, rev uint64) error {
		res.Rev = rev
		pending, err := engine.ScanSnapshotCellsInRange(br, rng, func(sc engine.SnapshotCell) bool {
			hits = append(hits, hit{sc.At, cellOut(sc.At, sc.Value, sc.Src, sc.Dirty)})
			return true
		})
		res.Pending = pending
		return err
	})
	if err != nil || !handled {
		res.Rev, res.Pending = 0, 0
		return false, err
	}
	// Snapshots are column-major; the API serves row-major like live reads.
	slices.SortFunc(hits, func(a, b hit) int {
		if a.at.Row != b.at.Row {
			return a.at.Row - b.at.Row
		}
		return a.at.Col - b.at.Col
	})
	for _, h := range hits {
		res.Cells = append(res.Cells, h.out)
	}
	return true, nil
}

func cellOut(at ref.Ref, v formula.Value, src string, pending bool) CellOut {
	c := CellOut{Cell: ref.FormatA1(at), Formula: src, Pending: pending}
	switch v.Kind {
	case formula.KindEmpty:
		c.Kind = "empty"
	case formula.KindNumber:
		c.Kind, c.Num = "number", v.Num
	case formula.KindString:
		c.Kind, c.Str = "string", v.Str
	case formula.KindBool:
		c.Kind, c.Bool = "bool", v.Bool
	case formula.KindError:
		c.Kind, c.Error = "error", v.Err
	}
	return c
}

func (s *Server) handleQuery(dependents bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		of := r.URL.Query().Get("of")
		if of == "" {
			writeErr(w, http.StatusBadRequest, errors.New("need ?of=A1 or ?of=A1:B3"))
			return
		}
		rng, err := ref.ParseRangeA1(of)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var res QueryResult
		build := func(rs []ref.Range) {
			res = QueryResult{Of: rng.String(), Ranges: make([]string, len(rs)), Cells: countCells(rs)}
			for i, rr := range rs {
				res.Ranges[i] = rr.String()
			}
		}
		liveQuery := func(sess *Session, eng *engine.Engine) error {
			if dependents {
				build(eng.Dependents(rng))
			} else {
				build(eng.Precedents(rng))
			}
			return nil
		}
		// Resident sessions answer under the read lock; spilled sessions
		// answer from the pinned in-memory graph when available, else from a
		// graph-only decode of the spill file (the cell section is skimmed,
		// not materialised) — either way without faulting residency.
		handled, err := s.store.TryView(id, liveQuery)
		if err == nil && !handled {
			handled, err = s.store.ViewPinnedGraph(id, func(g *core.Graph, rev uint64) error {
				if dependents {
					build(g.FindDependents(rng))
				} else {
					build(g.FindPrecedents(rng))
				}
				return nil
			})
		}
		if err == nil && !handled {
			handled, err = s.store.ReadSpilled(id, func(br *bufio.Reader, rev uint64) error {
				g, gerr := engine.ReadSnapshotGraph(br)
				if gerr != nil {
					return gerr
				}
				if dependents {
					build(g.FindDependents(rng))
				} else {
					build(g.FindPrecedents(rng))
				}
				return nil
			})
		}
		if err == nil && !handled {
			err = s.store.View(id, liveQuery) // lost the race: fault it in
		}
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}
