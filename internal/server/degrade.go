package server

import (
	"errors"
	"time"

	"taco/internal/journal"
)

// Graceful degradation: a disk fault on a session's durability path — a
// journal append that fails, a snapshot that won't write — no longer risks
// poisoning the store or silently dropping the durability contract. The
// session enters a typed degraded state: reads keep serving (the in-memory
// engine is fine), writes are rejected with 507 + Retry-After (accepting
// more edits would silently widen the window of acknowledged-but-
// unjournaled data), and a background repairer retries with capped backoff
// until the fault clears — reopening torn journal writers, re-appending the
// records that failed, rewriting failed snapshots — then re-arms durability
// and lifts the write fence.
//
// The one batch that triggered journal degradation IS acknowledged (it was
// applied before the append failed; unwinding applied engine state would
// trade a durability gap for a consistency lie) and is buffered in memory
// until the repairer lands it on disk. A crash inside that window loses
// exactly the buffered batches of degraded sessions — the same window a
// non-durable store has for everything, bounded here to one batch per
// degraded session because subsequent writes are fenced.

// ErrSessionDegraded rejects writes to a session whose durability path is
// broken (HTTP 507 + Retry-After). Reads are unaffected; the background
// repairer clears the state once appends/spills succeed again.
var ErrSessionDegraded = errors.New("server: session degraded (durability fault, retry later)")

// Degradation reasons, for telemetry and repair dispatch.
const (
	degradedJournal = "journal" // append or group-commit fsync failed
	degradedSpill   = "spill"   // snapshot write failed (evict or checkpoint)
)

// pendingRecord is an acknowledged edit batch whose journal append failed,
// held in memory (in rev order) until the repairer lands it.
type pendingRecord struct {
	rev     uint64
	payload []byte
}

// degradeLocked moves the session into the degraded state (idempotently)
// and buffers rec if the failed append's payload must be replayed by the
// repairer. Called with s.mu held; the caller schedules the repair after
// releasing the lock (scheduleRepair is session-lock-safe, but keeping it
// out of fn-callback paths keeps lock holds short).
func (st *Store) degradeLocked(s *Session, reason string, rec *pendingRecord) {
	if rec != nil {
		s.pendingRecs = append(s.pendingRecs, *rec)
	}
	if s.degraded {
		return
	}
	s.degraded = true
	s.degradedReason = reason
	s.degradedSince = time.Now()
	s.repairBackoff = journal.Backoff{Base: 50 * time.Millisecond, Cap: 5 * time.Second}
	st.degradedCount.Add(1)
	mDegradedEvents.With(reason).Inc()
}

// scheduleRepair queues the session for the repair worker (deduplicated).
// Safe to call while holding a session lock: repq.mu is a leaf.
func (st *Store) scheduleRepair(s *Session) {
	st.repq.mu.Lock()
	if !st.repq.closed && !st.repq.queued[s] {
		st.repq.queued[s] = true
		st.repq.queue = append(st.repq.queue, s)
		st.repq.cond.Signal()
	}
	st.repq.mu.Unlock()
}

// repairWorker drains the repair queue. A failed attempt re-schedules the
// session on its capped exponential backoff via a timer, so one stubborn
// fault never busy-loops the worker or starves other degraded sessions.
func (st *Store) repairWorker() {
	defer st.wg.Done()
	for {
		st.repq.mu.Lock()
		for len(st.repq.queue) == 0 && !st.repq.closed {
			st.repq.cond.Wait()
		}
		if st.repq.closed {
			st.repq.mu.Unlock()
			return
		}
		s := st.repq.queue[0]
		st.repq.queue = st.repq.queue[1:]
		delete(st.repq.queued, s)
		st.repq.mu.Unlock()
		if st.repairSession(s) {
			continue
		}
		mRepairFailures.Inc()
		s.mu.Lock()
		delay := s.repairBackoff.Next()
		s.mu.Unlock()
		time.AfterFunc(delay, func() { st.scheduleRepair(s) })
	}
}

// repairSession attempts to restore the session's durability and reports
// whether the session no longer needs repair (fixed, deleted, or never
// degraded). On success the degraded fence lifts and writes flow again.
func (st *Store) repairSession(s *Session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.degraded || s.deleted {
		return true
	}
	switch s.degradedReason {
	case degradedSpill:
		if !st.repairSpillLocked(s) {
			return false
		}
	default:
		if !st.repairJournalLocked(s) {
			return false
		}
	}
	s.degraded = false
	s.degradedReason = ""
	s.degradedSince = time.Time{}
	s.repairBackoff.Reset()
	st.degradedCount.Add(-1)
	mRepairs.Inc()
	return true
}

// repairJournalLocked re-arms a session's journal: reopen (revalidating the
// file and clearing any torn poison), drop buffered records a checkpointed
// snapshot has since superseded, re-append the rest in rev order, and run
// the policy's fsync barrier. Called with s.mu held.
func (st *Store) repairJournalLocked(s *Session) bool {
	w, err := st.sessionJournal(s)
	if err != nil {
		return false
	}
	if _, err := w.Reopen(); err != nil {
		return false
	}
	// A spill that checkpointed past a buffered rev makes its record moot:
	// the snapshot already contains the batch.
	for len(s.pendingRecs) > 0 && s.pendingRecs[0].rev <= s.snapRev {
		s.pendingRecs = s.pendingRecs[1:]
	}
	for len(s.pendingRecs) > 0 {
		pr := s.pendingRecs[0]
		if err := w.Append(pr.rev, pr.payload); err != nil {
			return false
		}
		s.pendingRecs = s.pendingRecs[1:]
	}
	if err := w.Sync(); err != nil {
		return false
	}
	return true
}

// repairSpillLocked retries the snapshot write that failed at eviction (or
// checkpoint). On success the session holds a current snapshot again and
// rejoins the evictable pool. Called with s.mu held.
func (st *Store) repairSpillLocked(s *Session) bool {
	if s.eng == nil {
		// Spilled successfully since (or deleted race): the snapshot write
		// that defines this degradation has already happened.
		s.unevictable.Store(false)
		return true
	}
	// A full snapshot write also collapses any delta chain: the degradation
	// may have been a failed delta append, and repairing onto a fresh
	// chain-free base converges the session in one step.
	if err := st.writeFullLocked(s); err != nil {
		return false
	}
	s.unevictable.Store(false)
	return true
}

// Degraded reports whether the session's durability path is currently
// broken (writes fenced with ErrSessionDegraded).
func (s *Session) Degraded() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degraded
}
