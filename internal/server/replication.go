package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"taco/internal/engine"
	"taco/internal/journal"
)

// Replication is journal shipping: the compressed formula graphs keep
// sessions compact enough that `snapshot + journal tail` is a cheap wire
// format, so a warm standby is just a store that bootstraps each session
// from the primary's snapshot and then tails its journal over HTTP,
// applying records through the same replay path crash recovery uses.
//
// Primary side: three read-only endpoints under /replication — the session
// manifest, per-session snapshots, and per-session journal tails streamed
// in the journal's own record format from a requested revision. Standby
// side: a Replicator polls the manifest, bootstraps missing sessions,
// applies shipped records (bumping each session's rev to the shipped rev,
// journaling them locally when the standby is itself durable), deletes
// sessions the primary dropped, and tracks how far behind it is. The store
// is read-only while following — writes are rejected with 503 — and
// POST /admin/promote fences the replicator's cursor and lifts the fence,
// making the standby the new primary.

// ErrStandby rejects writes while the store follows a primary (HTTP 503).
var ErrStandby = errors.New("server: standby is read-only (not promoted)")

// StandbyOptions configures follower mode.
type StandbyOptions struct {
	// PrimaryURL is the primary's base URL (e.g. http://host:port). Empty
	// disables follower mode.
	PrimaryURL string
	// Interval is the shipping poll period (default 100ms). Transient
	// errors back off exponentially from Interval to 32x.
	Interval time.Duration
}

// replSession is one row of the primary's replication manifest.
type replSession struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Rev     uint64 `json:"rev"`
	SnapRev uint64 `json:"snap_rev"`
}

// PromoteResult is the body of POST /admin/promote.
type PromoteResult struct {
	Promoted bool `json:"promoted"`
	// AlreadyPrimary reports an idempotent promote (never a standby, or
	// promoted earlier).
	AlreadyPrimary bool `json:"already_primary,omitempty"`
	// Sessions is the hosted session count at promotion.
	Sessions int `json:"sessions"`
	// LagRevs is the shipping deficit at the moment of promotion — revisions
	// the dead primary acknowledged that this standby never received.
	LagRevs uint64 `json:"lag_revs"`
}

// ---------------------------------------------------------------------------
// Primary-side endpoints
// ---------------------------------------------------------------------------

// handleReplSessions serves the replication manifest: every session's ID,
// name, revision, and snapshot revision.
func (s *Server) handleReplSessions(w http.ResponseWriter, r *http.Request) {
	out := []replSession{}
	s.store.Each(func(sess *Session) bool {
		sess.mu.RLock()
		if !sess.deleted {
			out = append(out, replSession{ID: sess.ID, Name: sess.Name, Rev: sess.rev, SnapRev: sess.snapRev})
		}
		sess.mu.RUnlock()
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

// handleReplSnapshot streams the session's engine snapshot (drained and
// serialised under the session write lock) with X-Snapshot-Rev naming the
// revision it captures. The standby bootstraps (or re-bases) from this.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); bufPool.Put(buf) }()
	buf.Reset()
	var rev uint64
	// A spilled session's base file is authoritative up to its revision and
	// already in snapshot format: stream its bytes instead of faulting the
	// session resident — a standby bootstrapping every cold session must not
	// evict the hot set. With a delta chain, the base plus the chain records
	// served by the journal endpoint reconstruct the full state, so an
	// evicted-but-lightly-edited session ships the delta, not the sheet.
	handled, err := s.store.ReadSpilledBase(id, func(br *bufio.Reader, baseRev uint64) error {
		rev = baseRev
		_, err := buf.ReadFrom(br)
		return err
	})
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	if !handled {
		buf.Reset()
		err := s.store.Update(id, false, func(sess *Session, eng *engine.Engine) error {
			if err := eng.WriteSnapshot(buf); err != nil {
				return err
			}
			rev = sess.rev
			return nil
		})
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Rev", strconv.FormatUint(rev, 10))
	w.Write(buf.Bytes())
}

// handleReplJournal streams the session's journal records with rev > from,
// re-encoded in the journal's own format (magic + CRC-trailed records) so
// the standby applies them with the same decoder recovery uses. When the
// requested revision predates the snapshot (the journal was checkpointed
// past it), it answers 409: the follower must re-base from the snapshot.
func (s *Server) handleReplJournal(w http.ResponseWriter, r *http.Request) {
	if !s.store.Durable() {
		writeErr(w, http.StatusNotFound, errors.New("replication journal requires a durable store"))
		return
	}
	id := r.PathValue("id")
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad ?from: %w", err))
		return
	}
	sess, err := s.store.Peek(id)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	sess.mu.RLock()
	head, snapRev := sess.rev, sess.snapRev
	chain := append([]journal.ChainLink(nil), sess.chain...)
	floor := snapRev
	if len(chain) > 0 {
		// With a delta chain the snapshot endpoint ships the base alone, so
		// the journal endpoint covers everything above the base: the chain's
		// records first, then the live journal tail.
		floor = sess.baseRev
	}
	sess.mu.RUnlock()
	if from < floor {
		// Records at or below the floor may have been truncated away by a
		// checkpoint; the snapshot is the only complete source.
		w.Header().Set("X-Snapshot-Rev", strconv.FormatUint(floor, 10))
		writeErr(w, http.StatusConflict,
			fmt.Errorf("rev %d predates snapshot rev %d: fetch the snapshot", from, floor))
		return
	}
	// A transient follower over the journal file: valid-prefix reads are
	// safe against the live writer, so no session lock is held while
	// streaming. Records are re-framed with their own CRCs so the wire
	// format IS the journal format.
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); bufPool.Put(buf) }()
	buf.Reset()
	buf.Write(journal.JournalMagic)
	var rec []byte
	shipped := 0
	// Delta files are immutable once published, so they are read without any
	// lock; records the follower already holds (rev <= from) are skipped, and
	// any overlap with the journal tail below is dropped by the standby's
	// exactly-once revision guard.
	for _, link := range chain {
		if link.Rev <= from {
			continue
		}
		_, _, err := journal.ScanFile(s.store.deltaPath(link.ID, link.Rev), journal.DeltaMagic,
			func(rev uint64, payload []byte) error {
				if rev <= from {
					return nil
				}
				rec = appendJournalRecord(rec[:0], rev, payload)
				buf.Write(rec)
				shipped++
				return nil
			})
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	fl := journal.NewFollower(s.store.journalPath(id), journal.JournalMagic, from)
	if _, err := fl.Poll(func(rev uint64, payload []byte) error {
		rec = appendJournalRecord(rec[:0], rev, payload)
		buf.Write(rec)
		shipped++
		return nil
	}); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	mReplShipped.Add(uint64(shipped))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Journal-Head", strconv.FormatUint(head, 10))
	w.Header().Set("X-Snapshot-Rev", strconv.FormatUint(snapRev, 10))
	w.Write(buf.Bytes())
}

// appendJournalRecord mirrors the journal's record framing:
// uvarint(len) | uvarint(rev) payload | crc32c.
func appendJournalRecord(dst []byte, rev uint64, payload []byte) []byte {
	var rb [binary.MaxVarintLen64]byte
	rn := binary.PutUvarint(rb[:], rev)
	var lb [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(lb[:], uint64(rn+len(payload)))
	dst = append(dst, lb[:ln]...)
	body := len(dst)
	dst = append(dst, rb[:rn]...)
	dst = append(dst, payload...)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc32.Checksum(dst[body:], crc32.MakeTable(crc32.Castagnoli)))
	return append(dst, cb[:]...)
}

// handlePromote fences the replicator (no further shipped records apply)
// and lifts the read-only fence: the standby becomes the new primary.
// Idempotent; on a server that was never a standby it reports
// AlreadyPrimary.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	res := PromoteResult{Promoted: true, Sessions: s.store.Stats().Sessions}
	repl := s.repl
	if repl == nil || !repl.fence() {
		res.AlreadyPrimary = true
	} else {
		res.LagRevs = repl.LagRevs()
		mPromotions.Inc()
	}
	s.store.SetReadOnly(false)
	writeJSON(w, http.StatusOK, res)
}

// ---------------------------------------------------------------------------
// Store-side replica operations
// ---------------------------------------------------------------------------

// SetReadOnly flips the store's write fence (standby mode).
func (st *Store) SetReadOnly(v bool) { st.readOnly.Store(v) }

// ReadOnly reports whether writes are fenced (store is a standby).
func (st *Store) ReadOnly() bool { return st.readOnly.Load() }

// CreateReplica registers a session replicated from a primary, under the
// primary's session ID, with its engine restored from the primary's
// snapshot at revision rev. On a durable store the snapshot is persisted
// and registered immediately, so a standby crash re-bootstraps from local
// disk instead of the wire.
func (st *Store) CreateReplica(id, name string, eng *engine.Engine, rev uint64) (*Session, error) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	if _, exists := sh.sessions[id]; exists {
		sh.mu.Unlock()
		return nil, fmt.Errorf("server: replica %s already exists", id)
	}
	sh.mu.Unlock()
	st.configureEngine(eng)
	s := &Session{ID: id, Name: name, eng: eng, rev: rev, snapRev: rev, baseRev: rev}
	if st.opts.Durable {
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := eng.WriteSnapshot(buf); err == nil {
			if err := writeFileAtomic(st.spillPath(id), buf.Bytes(), st.syncFiles()); err == nil {
				s.snapHeld = true
				s.baseBytes = int64(buf.Len())
				mSpillBytes.Add(uint64(buf.Len()))
			} else {
				mDurabilityErrors.Inc()
			}
		} else {
			mDurabilityErrors.Inc()
		}
		buf.Reset()
		bufPool.Put(buf)
		if err := st.reg.Put(regEntryLocked(s)); err != nil {
			mDurabilityErrors.Inc()
		} else if err := st.reg.Sync(); err != nil {
			mDurabilityErrors.Inc()
		}
	}
	s.tick.Store(st.clock.Add(1))
	s.shard = sh
	sh.mu.Lock()
	if _, exists := sh.sessions[id]; exists {
		sh.mu.Unlock()
		return nil, fmt.Errorf("server: replica %s already exists", id)
	}
	sh.sessions[id] = s
	s.elem = sh.lru.PushFront(s)
	sh.resident++
	sh.mu.Unlock()
	mSessionsCreated.Inc()
	st.evictOverflow()
	return s, nil
}

// ApplyReplicated applies one shipped journal record: decode with the
// recovery codec, apply through the live edit path, and set the session's
// revision to the shipped revision (revs are assigned by the primary).
// Records at or below the local revision are duplicates of state the
// snapshot or an earlier poll already delivered and are skipped — shipping
// is at-least-once, application exactly-once. On a durable standby the
// record is re-journaled locally under the same revision.
func (st *Store) ApplyReplicated(id string, rev uint64, payload []byte) error {
	s, err := st.lookup(id)
	if err != nil {
		return err
	}
	var jw *journal.Writer
	err = st.withResident(s, func(eng *engine.Engine) error {
		if rev <= s.rev {
			return nil
		}
		edits, err := decodeEditOps(payload)
		if err != nil {
			return fmt.Errorf("shipped record rev %d: %w", rev, err)
		}
		ops, err := parseBatch(edits)
		if err != nil {
			return fmt.Errorf("shipped record rev %d: %w", rev, err)
		}
		_, _, bulk := applyBatch(eng, ops)
		if bulk {
			s.graphBlob = nil
			st.configureEngine(eng)
		}
		s.rev = rev
		if st.opts.Durable {
			w, jerr := st.sessionJournal(s)
			if jerr == nil {
				jerr = w.Append(rev, payload)
			}
			if jerr != nil {
				mDurabilityErrors.Inc()
			} else {
				jw = w
			}
		}
		mReplApplied.Inc()
		return nil
	})
	if err == nil && jw != nil {
		if serr := jw.Sync(); serr != nil {
			mDurabilityErrors.Inc()
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Standby-side replicator
// ---------------------------------------------------------------------------

// Replicator is the standby's shipping loop: poll the primary's manifest,
// bootstrap missing sessions from snapshots, tail journals from each local
// revision, prune dropped sessions, track lag. One goroutine; transient
// errors retry with capped exponential backoff.
type Replicator struct {
	store    *Store
	base     string
	client   *http.Client
	interval time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	fenced atomic.Bool

	lagRevs atomic.Uint64
	// behindNanos is the wall-clock (UnixNano) when the standby last fell
	// behind; 0 while caught up. Lag-ms = now - behindNanos.
	behindNanos atomic.Int64
}

// NewReplicator builds (without starting) a replicator against the
// primary's base URL.
func NewReplicator(store *Store, opts StandbyOptions) *Replicator {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Replicator{
		store:    store,
		base:     opts.PrimaryURL,
		client:   &http.Client{Timeout: 30 * time.Second},
		interval: opts.Interval,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
}

// Start launches the shipping loop.
func (rp *Replicator) Start() {
	go func() {
		defer close(rp.done)
		bo := journal.Backoff{Base: rp.interval, Cap: 32 * rp.interval}
		for {
			delay := rp.interval
			if err := rp.cycle(); err != nil {
				delay = bo.Next()
				mReplErrors.Inc()
			} else {
				bo.Reset()
			}
			select {
			case <-rp.ctx.Done():
				return
			case <-time.After(delay):
			}
		}
	}()
}

// fence stops the loop and reports whether this call did the fencing
// (false: already fenced). After fence returns, no further shipped record
// will ever apply — the promotion guarantee.
func (rp *Replicator) fence() bool {
	if !rp.fenced.CompareAndSwap(false, true) {
		return false
	}
	rp.cancel()
	<-rp.done
	return true
}

// Close stops the replicator (idempotent with fence).
func (rp *Replicator) Close() { rp.fence() }

// LagRevs returns the shipping deficit observed by the last poll: the sum
// over sessions of primary rev - local rev.
func (rp *Replicator) LagRevs() uint64 { return rp.lagRevs.Load() }

// LagMs returns how long the standby has been behind, in milliseconds
// (0 = caught up at the last poll).
func (rp *Replicator) LagMs() int64 {
	since := rp.behindNanos.Load()
	if since == 0 {
		return 0
	}
	return (time.Now().UnixNano() - since) / int64(time.Millisecond)
}

// cycle runs one shipping pass.
func (rp *Replicator) cycle() error {
	var manifest []replSession
	if err := rp.getJSON("/replication/sessions", &manifest); err != nil {
		return err
	}
	primary := make(map[string]bool, len(manifest))
	var lag uint64
	var firstErr error
	for i := range manifest {
		if rp.ctx.Err() != nil {
			return rp.ctx.Err()
		}
		ps := &manifest[i]
		primary[ps.ID] = true
		localRev, err := rp.syncSession(ps)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ps.Rev > localRev {
			lag += ps.Rev - localRev
		}
	}
	// Prune sessions the primary dropped.
	var stale []string
	rp.store.Each(func(s *Session) bool {
		if !primary[s.ID] {
			stale = append(stale, s.ID)
		}
		return true
	})
	for _, id := range stale {
		rp.store.Delete(id)
	}
	rp.lagRevs.Store(lag)
	if lag == 0 {
		rp.behindNanos.Store(0)
	} else {
		rp.behindNanos.CompareAndSwap(0, time.Now().UnixNano())
	}
	mReplLagRevs.Set(int64(lag))
	return firstErr
}

// syncSession brings one session up to the primary's revision: bootstrap
// from a snapshot when missing (or when the journal tail is truncated past
// our cursor), then apply the journal tail. Returns the local revision
// after the pass.
func (rp *Replicator) syncSession(ps *replSession) (uint64, error) {
	local, err := rp.store.Peek(ps.ID)
	if errors.Is(err, ErrSessionNotFound) {
		if err := rp.bootstrap(ps); err != nil {
			return 0, err
		}
		if local, err = rp.store.Peek(ps.ID); err != nil {
			return 0, err
		}
	} else if err != nil {
		return 0, err
	}
	localRev := local.Rev()
	if ps.Rev <= localRev {
		return localRev, nil
	}
	applied, status, err := rp.shipJournal(ps.ID, localRev)
	if status == http.StatusConflict {
		// Our cursor predates the primary's snapshot: the tail we need was
		// checkpointed away. Re-base from the snapshot.
		if err := rp.store.Delete(ps.ID); err != nil {
			return localRev, err
		}
		if err := rp.bootstrap(ps); err != nil {
			return localRev, err
		}
		if local, err = rp.store.Peek(ps.ID); err != nil {
			return 0, err
		}
		return local.Rev(), nil
	}
	if err != nil {
		return localRev, err
	}
	_ = applied
	return local.Rev(), nil
}

// bootstrap creates the local replica from the primary's snapshot.
func (rp *Replicator) bootstrap(ps *replSession) error {
	body, hdr, err := rp.get("/replication/sessions/" + ps.ID + "/snapshot")
	if err != nil {
		return err
	}
	rev, err := strconv.ParseUint(hdr.Get("X-Snapshot-Rev"), 10, 64)
	if err != nil {
		return fmt.Errorf("replication: snapshot of %s: bad X-Snapshot-Rev: %w", ps.ID, err)
	}
	eng, err := engine.RestoreSnapshot(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("replication: snapshot of %s: %w", ps.ID, err)
	}
	if _, err := rp.store.CreateReplica(ps.ID, ps.Name, eng, rev); err != nil {
		return err
	}
	mReplSnapshots.Inc()
	return nil
}

// shipJournal fetches and applies the session's journal tail past rev.
func (rp *Replicator) shipJournal(id string, from uint64) (int, int, error) {
	resp, err := rp.client.Get(rp.base + "/replication/sessions/" + id + "/journal?from=" + strconv.FormatUint(from, 10))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, resp.StatusCode, fmt.Errorf("replication: journal of %s: HTTP %d", id, resp.StatusCode)
	}
	applied := 0
	_, _, err = journal.Scan(resp.Body, journal.JournalMagic, func(rev uint64, payload []byte) error {
		if rp.fenced.Load() {
			return errors.New("replication: fenced")
		}
		if err := rp.store.ApplyReplicated(id, rev, payload); err != nil {
			return err
		}
		applied++
		return nil
	})
	return applied, resp.StatusCode, err
}

func (rp *Replicator) get(path string) ([]byte, http.Header, error) {
	resp, err := rp.client.Get(rp.base + path)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("replication: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return body, resp.Header, nil
}

func (rp *Replicator) getJSON(path string, v any) error {
	body, _, err := rp.get(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
