package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
)

// wideBatch returns a bulk batch: one value cell A1 plus n formulas in
// column B, every one aggregating over a fixed range anchored at $A$1 — a
// dirty set that is wide but shallow (no chains), so a background drain
// proceeds in many small chunks, and each evaluation does enough range work
// that a large drain spans many scheduler quanta even on one CPU.
func wideBatch(n, span int) EditBatch {
	batch := EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(1)}}}
	f := fmt.Sprintf("SUM($A$1:$A$%d)*2", span)
	for row := 1; row <= n; row++ {
		batch.Edits = append(batch.Edits, EditOp{Cell: ref.FormatA1(ref.Ref{Col: 2, Row: row}), Formula: str(f)})
	}
	return batch
}

// TestReadsServePendingWithoutBlocking is the deterministic proof that the
// read path never blocks on (or triggers) recalculation: with background
// workers disabled, a large dirty set stays pending indefinitely, yet reads
// return immediately with last-computed values and the pending flag, and a
// flush barrier drains on demand.
func TestReadsServePendingWithoutBlocking(t *testing.T) {
	const n = 2000
	_, tc := newTestServer(t, Options{Store: StoreOptions{RecalcWorkers: -1}})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "wide"}, &info)
	if code := tc.do("POST", "/sessions/"+info.ID+"/edits", wideBatch(n, 2), nil); code != http.StatusOK {
		t.Fatalf("bulk batch: status %d", code)
	}

	// Dirty the whole column. The response returns after the traversal with
	// the full dirty set still pending — nothing drains it.
	var res EditResult
	tc.do("POST", "/sessions/"+info.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(21)}}}, &res)
	if res.DirtyCells != n || res.Pending != n {
		t.Fatalf("edit result = %+v, want %d dirty and pending", res, n)
	}

	// A plain read completes while the recalculation is entirely undrained:
	// stale values, flagged pending, at the new revision.
	var cells CellsResult
	if code := tc.do("GET", "/sessions/"+info.ID+"/cells?at=B7", nil, &cells); code != http.StatusOK {
		t.Fatalf("read: status %d", code)
	}
	if cells.Rev != 2 || cells.Pending != n {
		t.Fatalf("read = rev %d pending %d, want rev 2 pending %d", cells.Rev, cells.Pending, n)
	}
	if len(cells.Cells) != 1 || !cells.Cells[0].Pending || cells.Cells[0].Num != 2 {
		t.Fatalf("B7 = %+v, want stale 2 flagged pending", cells.Cells)
	}

	// The flush barrier drains inline and gives read-your-writes.
	var fr FlushResult
	if code := tc.do("POST", "/sessions/"+info.ID+"/flush", nil, &fr); code != http.StatusOK || fr.Rev != 2 {
		t.Fatalf("flush: status %d, %+v", code, fr)
	}
	cells = CellsResult{}
	tc.do("GET", "/sessions/"+info.ID+"/cells?at=B7", nil, &cells)
	if cells.Pending != 0 || len(cells.Cells) != 1 || cells.Cells[0].Pending || cells.Cells[0].Num != 42 {
		t.Fatalf("after flush: %+v", cells)
	}
}

// TestReadsCompleteDuringLargeDrain is the live-worker acceptance check: a
// large recalculation drains on the background pool in bounded chunks, and
// cell reads complete (and observe the pending state) while it is still in
// flight.
func TestReadsCompleteDuringLargeDrain(t *testing.T) {
	const n = 8000
	const span = 1000
	_, tc := newTestServer(t, Options{Store: StoreOptions{RecalcChunk: 8}})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "drain"}, &info)
	// Populate the summed column densely: the columnar bulk resolver skips
	// unpopulated cells, so a sparse column would make each SUM near-free
	// and the drain too fast for reads to ever overlap it. SUMSQ rather than
	// SUM for the same reason: SUM folds off the slabs in one batched pass
	// now, which again made the whole drain finish before a read could land.
	batch := wideBatch(n, span)
	sumsq := fmt.Sprintf("SUMSQ($A$1:$A$%d)*2", span)
	for i := range batch.Edits {
		if batch.Edits[i].Formula != nil {
			batch.Edits[i].Formula = &sumsq
		}
	}
	for row := 2; row <= span; row++ {
		batch.Edits = append(batch.Edits, EditOp{Cell: ref.FormatA1(ref.Ref{Col: 1, Row: row}), Value: num(float64(row))})
	}
	if code := tc.do("POST", "/sessions/"+info.ID+"/edits", batch, nil); code != http.StatusOK {
		t.Fatalf("bulk batch: status %d", code)
	}

	sawPending := false
	lastRev := uint64(0)
	for attempt := 1; attempt <= 5 && !sawPending; attempt++ {
		var res EditResult
		tc.do("POST", "/sessions/"+info.ID+"/edits",
			EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(float64(attempt))}}}, &res)
		// ~n/8 chunked lock holds stand between this response and a drained
		// session; these reads land in between and must not block.
		for i := 0; i < 50; i++ {
			var cells CellsResult
			if code := tc.do("GET", "/sessions/"+info.ID+"/cells?at=B42", nil, &cells); code != http.StatusOK {
				t.Fatalf("read during drain: status %d", code)
			}
			if cells.Rev < lastRev {
				t.Fatalf("revision went backwards: %d after %d", cells.Rev, lastRev)
			}
			lastRev = cells.Rev
			if cells.Pending > 0 {
				sawPending = true
				break
			}
		}
	}
	if !sawPending {
		t.Fatal("never observed a read overlapping the background drain")
	}
	// Read-your-writes once the caller asks for it.
	var cells CellsResult
	tc.do("GET", "/sessions/"+info.ID+"/cells?at=B42&wait=1", nil, &cells)
	if cells.Pending != 0 || len(cells.Cells) != 1 || cells.Cells[0].Pending {
		t.Fatalf("after wait: %+v", cells)
	}
}

// TestConcurrentReadersObserveMonotonicRevs runs editors against readers
// (under -race in CI): every reader must see non-decreasing revisions and
// structurally sound responses while background recalculation churns.
func TestConcurrentReadersObserveMonotonicRevs(t *testing.T) {
	_, tc := newTestServer(t, Options{Store: StoreOptions{RecalcChunk: 16}})
	var info SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "mono"}, &info)
	if code := tc.do("POST", "/sessions/"+info.ID+"/edits", wideBatch(500, 5), nil); code != http.StatusOK {
		t.Fatal("bulk batch failed")
	}

	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var res EditResult
			if code := tc.do("POST", "/sessions/"+info.ID+"/edits",
				EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(float64(i))}}}, &res); code != http.StatusOK {
				errc <- fmt.Errorf("edit %d: status %d", i, code)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < iters; i++ {
				var cells CellsResult
				if code := tc.do("GET", "/sessions/"+info.ID+"/cells?range=B1:B20", nil, &cells); code != http.StatusOK {
					errc <- fmt.Errorf("reader %d: status %d", r, code)
					return
				}
				if cells.Rev < last {
					errc <- fmt.Errorf("reader %d: rev regressed %d -> %d", r, last, cells.Rev)
					return
				}
				last = cells.Rev
				for _, c := range cells.Cells {
					if c.Kind != "number" {
						errc <- fmt.Errorf("reader %d: torn cell %+v", r, c)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEvictionDrainsPendingAndRoundTrips: spilling a session with a pending
// dirty set must drain the recalculation first, so the snapshot holds
// settled values and the spilled session answers reads correctly — without
// being faulted back in.
func TestEvictionDrainsPendingAndRoundTrips(t *testing.T) {
	srv, tc := newTestServer(t, Options{Store: StoreOptions{
		Shards: 2, MaxResident: 1, RecalcWorkers: -1,
	}})
	var a SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "victim"}, &a)
	tc.do("POST", "/sessions/"+a.ID+"/edits", EditBatch{Edits: []EditOp{
		{Cell: "A1", Value: num(2)},
		{Cell: "B1", Formula: str("A1*10")},
	}}, nil)
	// Dirty B1; with workers disabled it stays pending.
	var res EditResult
	tc.do("POST", "/sessions/"+a.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(5)}}}, &res)
	if res.Pending != 1 {
		t.Fatalf("edit result = %+v, want 1 pending", res)
	}

	// Evict the victim by creating another session under MaxResident=1.
	tc.do("POST", "/sessions", CreateRequest{Name: "pusher"}, nil)
	sess, err := srv.Store().lookup(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Resident() {
		t.Fatal("victim still resident")
	}

	// The spilled read serves the drained value — the spill recalculated
	// B1 before writing — with nothing pending, and does not fault it in.
	var cells CellsResult
	tc.do("GET", "/sessions/"+a.ID+"/cells?at=B1", nil, &cells)
	if cells.Pending != 0 || len(cells.Cells) != 1 || cells.Cells[0].Num != 50 || cells.Cells[0].Pending {
		t.Fatalf("spilled read = %+v, want drained B1=50", cells)
	}
	if sess.Resident() {
		t.Fatal("read faulted the session in")
	}
	// And a faulting read (wait=1 restores) agrees.
	cells = CellsResult{}
	tc.do("GET", "/sessions/"+a.ID+"/cells?at=B1&wait=1", nil, &cells)
	if len(cells.Cells) != 1 || cells.Cells[0].Num != 50 {
		t.Fatalf("restored read = %+v", cells)
	}
}

// TestQueryAgainstSpilledSession: dependents/precedents of a spilled session
// are answered from the pinned compressed graph (or a graph-only decode)
// without restoring the cell store.
func TestQueryAgainstSpilledSession(t *testing.T) {
	for _, noPin := range []bool{false, true} {
		t.Run(fmt.Sprintf("noGraphPin=%v", noPin), func(t *testing.T) {
			srv, tc := newTestServer(t, Options{Store: StoreOptions{
				Shards: 2, MaxResident: 1, NoGraphPin: noPin,
			}})
			var a SessionInfo
			tc.do("POST", "/sessions", CreateRequest{Name: "q"}, &a)
			tc.do("POST", "/sessions/"+a.ID+"/edits", EditBatch{Edits: []EditOp{
				{Cell: "A1", Value: num(1)},
				{Cell: "B1", Formula: str("A1*2")},
				{Cell: "C1", Formula: str("B1*2")},
			}}, nil)
			tc.do("POST", "/sessions", CreateRequest{Name: "pusher"}, nil)

			sess, err := srv.Store().lookup(a.ID)
			if err != nil {
				t.Fatal(err)
			}
			if sess.Resident() {
				t.Fatal("session still resident")
			}
			var q QueryResult
			if code := tc.do("GET", "/sessions/"+a.ID+"/dependents?of=A1", nil, &q); code != http.StatusOK {
				t.Fatalf("query: status %d", code)
			}
			if q.Cells != 2 {
				t.Fatalf("dependents = %+v, want B1+C1", q)
			}
			if sess.Resident() {
				t.Fatal("query faulted the session in")
			}
			if st := srv.Store().Stats(); st.SpillReads == 0 {
				t.Fatalf("query did not use the spill read path: %+v", st)
			}
		})
	}
}

// TestStoreWaitDrainsInline exercises the store-level barrier directly.
func TestStoreWaitDrainsInline(t *testing.T) {
	store, err := NewStore(StoreOptions{RecalcWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	e := engine.New(nil)
	s := store.Create("w", e)
	err = store.Update(s.ID, true, func(_ *Session, eng *engine.Engine) error {
		eng.SetValue(ref.MustCell("A1"), formula.Num(3))
		if _, err := eng.SetFormula(ref.MustCell("B1"), "A1+1"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pending() == 0 {
		t.Fatal("no pending work recorded")
	}
	if err := store.Wait(s.ID); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after Wait", s.Pending())
	}
	store.View(s.ID, func(_ *Session, eng *engine.Engine) error {
		if v, clean := eng.Peek(ref.MustCell("B1")); !clean || v.Num != 4 {
			t.Fatalf("B1 = %v clean=%v", v, clean)
		}
		return nil
	})
}
