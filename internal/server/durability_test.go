package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"taco/internal/engine"
	"taco/internal/formula"
	"taco/internal/ref"
)

// crashBatches scripts a deterministic edit sequence: batch 0 builds a
// fanout sheet through the bulk path (values + formulas into an empty
// engine), later batches perturb inputs, rewrite formulas, and clear cells —
// every op an absolute assignment, exactly what the journal replays.
func crashBatches() [][]EditOp {
	var batches [][]EditOp
	var b0 []EditOp
	for r := 1; r <= 10; r++ {
		b0 = append(b0, EditOp{Cell: fmt.Sprintf("A%d", r), Value: num(float64(r))})
	}
	for col := 'C'; col <= 'E'; col++ {
		for r := 1; r <= 20; r++ {
			b0 = append(b0, EditOp{Cell: fmt.Sprintf("%c%d", col, r),
				Formula: str(fmt.Sprintf("SUM(A$1:A$10)*%d+%d", col-'A', r))})
		}
	}
	for r := 1; r <= 20; r++ {
		b0 = append(b0, EditOp{Cell: fmt.Sprintf("F%d", r), Formula: str(fmt.Sprintf("SUM(C%d:E%d)", r, r))})
	}
	batches = append(batches, b0)
	for i := 0; i < 8; i++ {
		var b []EditOp
		for j := 0; j < 4; j++ {
			b = append(b, EditOp{Cell: fmt.Sprintf("A%d", 1+(i*4+j)%10), Value: num(float64(i*131 + j*17))})
		}
		switch i % 3 {
		case 0:
			b = append(b, EditOp{Cell: fmt.Sprintf("C%d", 1+i), Formula: str(fmt.Sprintf("SUM(A$1:A$10)+%d", i*1000))})
		case 1:
			b = append(b, EditOp{Cell: fmt.Sprintf("D%d", 1+i), Clear: true})
		}
		batches = append(batches, b)
	}
	return batches
}

// touchedRefs is the cell domain a batch script could have written.
func touchedRefs(batches [][]EditOp) []ref.Ref {
	seen := map[ref.Ref]struct{}{}
	var out []ref.Ref
	for _, b := range batches {
		for _, op := range b {
			at, err := ref.ParseA1(op.Cell)
			if err != nil {
				panic(err)
			}
			if _, ok := seen[at]; !ok {
				seen[at] = struct{}{}
				out = append(out, at)
			}
		}
	}
	return out
}

func sameValue(a, b formula.Value) bool {
	return reflect.DeepEqual(a, b)
}

// applyJournaled mirrors handleEdits: parse, apply through the store with
// the encoded batch journaled, and re-apply the bulk path's engine
// reconfiguration.
func applyJournaled(t *testing.T, st *Store, id string, batch []EditOp) {
	t.Helper()
	ops, err := parseBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	err = st.UpdateJournaled(id, encodeEditOps(batch), func(sess *Session, eng *engine.Engine) error {
		if _, _, bulk := applyBatch(eng, ops); bulk {
			sess.graphBlob = nil
			st.configureEngine(eng)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) > 0 {
		t.Fatalf("temp files left at final-path directory: %v", tmps)
	}
}

// TestCrashRecoveryConvergence is the kill-and-restart proof, run under
// -race in CI: a durable store takes journaled edit batches and is then
// abandoned without Close or Flush — its background drain workers still
// mid-wavefront, exactly a SIGKILL's view of memory — while a second store
// opens the same directory. Every session must be rediscovered, replay its
// journal, and settle to values byte-identical to a serial reference engine
// that applied the same batches and never crashed. The reference runs on
// both graph backends.
func TestCrashRecoveryConvergence(t *testing.T) {
	for name, mkGraph := range drainBackends {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := StoreOptions{
				Shards: 2, RecalcWorkers: 2, RecalcChunk: 16,
				Durable: true, SpillDir: dir, FsyncPolicy: "never",
			}
			st1, err := NewStore(opts)
			if err != nil {
				t.Fatal(err)
			}
			// Closed only at test end (after verification), standing in for
			// the killed process finally disappearing.
			t.Cleanup(st1.Close)

			batches := crashBatches()
			const nSessions = 3
			ids := make([]string, nSessions)
			for i := range ids {
				// Blank creates: all content arrives as journaled batches, so
				// recovery rebuilds each session purely from its journal
				// (SnapHeld=false registry entries) — which also lets the
				// reference use the nocomp backend while recovered engines
				// are TACO.
				ids[i] = st1.Create(fmt.Sprintf("crash%d", i), engine.New(mkGraph())).ID
			}
			for _, batch := range batches {
				for _, id := range ids {
					applyJournaled(t, st1, id, batch)
				}
			}
			// No Wait, no Flush, no Close: drains are in flight right now.

			st2, err := NewStore(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if got := st2.Stats().RecoveredSessions; got != nSessions {
				t.Fatalf("recovered %d sessions, want %d", got, nSessions)
			}
			refEng := engine.New(mkGraph())
			for _, batch := range batches {
				ops, err := parseBatch(batch)
				if err != nil {
					t.Fatal(err)
				}
				applyBatch(refEng, ops)
			}
			refEng.RecalculateAll()
			domain := touchedRefs(batches)
			for i, id := range ids {
				s, err := st2.Peek(id)
				if err != nil {
					t.Fatalf("session %d not discoverable after crash: %v", i, err)
				}
				if s.Rev() != uint64(len(batches)) {
					t.Fatalf("session %d rev = %d, want %d", i, s.Rev(), len(batches))
				}
				if err := st2.Wait(id); err != nil {
					t.Fatalf("session %d wait: %v", i, err)
				}
				err = st2.View(id, func(_ *Session, eng *engine.Engine) error {
					for _, at := range domain {
						if got, want := eng.Value(at), refEng.Value(at); !sameValue(got, want) {
							t.Errorf("session %d cell %s: recovered %v, reference %v", i, ref.FormatA1(at), got, want)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if got := st2.Stats().ReplayedRecords; got != uint64(nSessions*len(batches)) {
				t.Fatalf("replayed %d records, want %d", got, nSessions*len(batches))
			}
			assertNoTempFiles(t, dir)
		})
	}
}

// TestCrashRecoveryWithSnapshotTail covers the snapshot-plus-tail shape:
// eviction spills a snapshot (truncating the journal), further edits journal
// on top, then the store is abandoned. Recovery must restore the snapshot
// and replay only the tail.
func TestCrashRecoveryWithSnapshotTail(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{
		Shards: 1, MaxResident: 1, RecalcWorkers: -1,
		Durable: true, SpillDir: dir, FsyncPolicy: "never",
	}
	st1, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st1.Close)
	// Force every spill to checkpoint (registry advance + journal truncate);
	// the default threshold amortises checkpoints over ~256KB of journal,
	// which these small batches would never reach.
	st1.ckptBytes = 1
	batches := crashBatches()
	split := 5

	a := st1.Create("tail", engine.New(nil)).ID
	for _, batch := range batches[:split] {
		applyJournaled(t, st1, a, batch)
	}
	// Touching a second session evicts the first: snapshot written, journal
	// truncated, registry advanced.
	b := st1.Create("other", engine.New(nil)).ID
	applyJournaled(t, st1, b, []EditOp{{Cell: "A1", Value: num(1)}})
	if s, _ := st1.Peek(a); s.Resident() {
		t.Fatal("expected session to be spilled by the resident cap")
	}
	// The tail: more journaled edits, which fault the session back in.
	for _, batch := range batches[split:] {
		applyJournaled(t, st1, a, batch)
	}

	st2, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Wait(a); err != nil {
		t.Fatal(err)
	}
	refEng := engine.New(nil)
	for _, batch := range batches {
		ops, err := parseBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		applyBatch(refEng, ops)
	}
	refEng.RecalculateAll()
	err = st2.View(a, func(_ *Session, eng *engine.Engine) error {
		for _, at := range touchedRefs(batches) {
			if got, want := eng.Value(at), refEng.Value(at); !sameValue(got, want) {
				t.Errorf("cell %s: recovered %v, reference %v", ref.FormatA1(at), got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the post-spill batches should have replayed.
	if got := st2.Stats().ReplayedRecords; got != uint64(len(batches)-split) {
		t.Fatalf("replayed %d records, want %d (the journal tail)", got, len(batches)-split)
	}
	assertNoTempFiles(t, dir)
}

// TestWarmRestartHTTP drives recovery end to end through the HTTP API: a
// durable server hosts a scenario session plus edits, shuts down cleanly,
// and a second server over the same directory must list the session under
// the same ID, name, and revision, serve identical values, and accept
// further edits.
func TestWarmRestartHTTP(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Store: StoreOptions{Durable: true, SpillDir: dir, FsyncPolicy: "always"}}
	srv1, tc1 := newTestServer(t, opts)
	var info SessionInfo
	if code := tc1.do("POST", "/sessions", CreateRequest{Name: "warm", Scenario: "financial", Rows: 12, Seed: 7}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for i := 0; i < 4; i++ {
		batch := EditBatch{Edits: []EditOp{
			{Cell: fmt.Sprintf("B%d", 2+i), Value: num(float64(100*i + 1))},
			{Cell: "C2", Formula: str(fmt.Sprintf("SUM(B2:B%d)", 5+i))},
		}}
		if code := tc1.do("POST", "/sessions/"+info.ID+"/edits?wait=1", batch, nil); code != http.StatusOK {
			t.Fatalf("edit %d: status %d", i, code)
		}
	}
	var before CellsResult
	if code := tc1.do("GET", "/sessions/"+info.ID+"/cells?range=A1:H12&wait=1", nil, &before); code != http.StatusOK {
		t.Fatalf("read: status %d", code)
	}
	srv1.Close() // graceful restart: journals and registry flushed

	_, tc2 := newTestServer(t, opts)
	var listed []SessionInfo
	if code := tc2.do("GET", "/sessions", nil, &listed); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if len(listed) != 1 || listed[0].ID != info.ID || listed[0].Name != "warm" {
		t.Fatalf("restart lost the session: %+v", listed)
	}
	if listed[0].Rev != before.Rev {
		t.Fatalf("restart rev = %d, want %d", listed[0].Rev, before.Rev)
	}
	var after CellsResult
	if code := tc2.do("GET", "/sessions/"+info.ID+"/cells?range=A1:H12&wait=1", nil, &after); code != http.StatusOK {
		t.Fatalf("read after restart: status %d", code)
	}
	if !reflect.DeepEqual(before.Cells, after.Cells) {
		t.Fatalf("values diverged across restart:\nbefore %+v\nafter  %+v", before.Cells, after.Cells)
	}
	// The recovered session keeps working: another journaled edit.
	if code := tc2.do("POST", "/sessions/"+info.ID+"/edits?wait=1",
		EditBatch{Edits: []EditOp{{Cell: "B2", Value: num(42)}}}, nil); code != http.StatusOK {
		t.Fatalf("edit after restart: status %d", code)
	}
	assertNoTempFiles(t, dir)
}

// TestQuarantineCorruptSnapshot flips a byte in a session's spill file and
// restarts: the restore must fail with ErrSnapshotCorrupt, rename the file
// aside as *.corrupt, and keep failing the same way — without affecting the
// store's other sessions.
func TestQuarantineCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{Durable: true, SpillDir: dir, FsyncPolicy: "never", RecalcWorkers: -1}
	st1, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(nil)
	for r := 1; r <= 8; r++ {
		eng.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
	}
	victim := st1.Create("victim", eng).ID
	okEng := engine.New(nil)
	okEng.SetValue(ref.Ref{Col: 1, Row: 1}, formula.Num(9))
	ok := st1.Create("bystander", okEng).ID
	st1.Close()

	path := filepath.Join(dir, victim+".tacos")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for i := 0; i < 2; i++ { // poisoned: every touch fails identically
		err := st2.View(victim, func(*Session, *engine.Engine) error { return nil })
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("touch %d: err = %v, want ErrSnapshotCorrupt", i, err)
		}
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file still at final path (err=%v)", err)
	}
	if got := st2.Stats().QuarantinedSnapshots; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	// The bystander is untouched.
	err = st2.View(ok, func(_ *Session, e *engine.Engine) error {
		if v := e.Value(ref.Ref{Col: 1, Row: 1}); v.Num != 9 {
			t.Fatalf("bystander value = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEditOpsCodec round-trips every op shape and rejects malformed bytes.
func TestEditOpsCodec(t *testing.T) {
	in := []EditOp{
		{Cell: "A1", Value: num(3.25)},
		{Cell: "B2", Value: num(-0.0)},
		{Cell: "C3", Text: str("héllo\x00world")},
		{Cell: "D4", Formula: str("SUM(A1:A10)*2")},
		{Cell: "E5", Clear: true},
		{Cell: "F6", Text: str("")},
	}
	enc := encodeEditOps(in)
	out, err := decodeEditOps(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\nin  %+v\nout %+v", in, out)
	}
	for i := 1; i < len(enc); i++ {
		if _, err := decodeEditOps(enc[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", i)
		}
	}
	if _, err := decodeEditOps([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
