package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"taco/internal/engine"
)

// TestEvictionRestoreEquivalence is the acceptance check: a session spilled
// to a snapshot and touched again answers with identical cell values and
// query results, and stays editable.
func TestEvictionRestoreEquivalence(t *testing.T) {
	spill := t.TempDir()
	srv, tc := newTestServer(t, Options{Store: StoreOptions{
		Shards: 4, MaxResident: 2, SpillDir: spill,
	}})

	var victim SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Scenario: "financial", Rows: 40, Seed: 1}, &victim)

	readAll := func() ([]CellOut, QueryResult, QueryResult) {
		var cells CellsResult
		tc.do("GET", "/sessions/"+victim.ID+"/cells?range=A1:H40", nil, &cells)
		var dep, prec QueryResult
		tc.do("GET", "/sessions/"+victim.ID+"/dependents?of=B1:B5", nil, &dep)
		tc.do("GET", "/sessions/"+victim.ID+"/precedents?of=E10", nil, &prec)
		return cells.Cells, dep, prec
	}
	beforeCells, beforeDep, beforePrec := readAll()
	if len(beforeCells) == 0 || beforeDep.Cells == 0 {
		t.Fatalf("empty baseline: %d cells, dep %+v", len(beforeCells), beforeDep)
	}

	// Push the victim out with newer sessions.
	for i := 0; i < 4; i++ {
		tc.do("POST", "/sessions", CreateRequest{Scenario: "inventory", Rows: 20, Seed: int64(i)}, nil)
	}
	sess, err := srv.Store().lookup(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Resident() {
		t.Fatal("victim still resident after overflow")
	}
	if _, err := os.Stat(filepath.Join(spill, victim.ID+".tacos")); err != nil {
		t.Fatalf("spill file: %v", err)
	}

	// Reads against the spilled session answer identically — served from
	// the spill file (cells) and the pinned graph (queries) without
	// faulting the session back to residency.
	afterCells, afterDep, afterPrec := readAll()
	if !reflect.DeepEqual(beforeCells, afterCells) {
		t.Fatal("cell values changed across evict/restore")
	}
	if !reflect.DeepEqual(beforeDep, afterDep) || !reflect.DeepEqual(beforePrec, afterPrec) {
		t.Fatal("query results changed across evict/restore")
	}
	if sess.Resident() {
		t.Fatal("plain reads must not fault a spilled session back in")
	}
	if st := srv.Store().Stats(); st.SpillReads == 0 {
		t.Fatalf("reads were not served from the spill state: %+v", st)
	}

	// An edit faults it in and the session remains live.
	var res EditResult
	if code := tc.do("POST", "/sessions/"+victim.ID+"/edits",
		EditBatch{Edits: []EditOp{{Cell: "B1", Value: num(424242)}}}, &res); code != http.StatusOK {
		t.Fatalf("edit after restore: status %d", code)
	}
	if res.DirtyCells == 0 {
		t.Fatalf("edit after restore: %+v", res)
	}
	if !sess.Resident() {
		t.Fatal("victim not resident after edit")
	}

	var st StoreStats
	tc.do("GET", "/stats", nil, &st)
	if st.Evictions == 0 || st.Restores == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Resident > 2 {
		t.Fatalf("resident = %d exceeds cap", st.Resident)
	}
}

func TestStoreRevCounter(t *testing.T) {
	store, err := NewStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s := store.Create("r", engine.New(nil))
	for i := 1; i <= 5; i++ {
		if err := store.Update(s.ID, true, func(*Session, *engine.Engine) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rev() != 5 {
		t.Fatalf("rev = %d", s.Rev())
	}
	// View does not bump.
	store.View(s.ID, func(*Session, *engine.Engine) error { return nil })
	if s.Rev() != 5 {
		t.Fatalf("rev after view = %d", s.Rev())
	}
}

func TestStoreShardDistribution(t *testing.T) {
	store, err := NewStore(StoreOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := 0; i < 200; i++ {
		store.Create(fmt.Sprintf("s%d", i), engine.New(nil))
	}
	occupied := 0
	for _, sh := range store.shards {
		if len(sh.sessions) > 0 {
			occupied++
		}
	}
	if occupied < 6 {
		t.Fatalf("only %d/8 shards occupied — bad hashing", occupied)
	}
}

func TestSpillFailureDoesNotStallStore(t *testing.T) {
	spill := filepath.Join(t.TempDir(), "spill")
	store, err := NewStore(StoreOptions{Shards: 2, MaxResident: 1, SpillDir: spill})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	a := store.Create("a", engine.New(nil))
	// Break the spill directory: every snapshot write now fails.
	if err := os.RemoveAll(spill); err != nil {
		t.Fatal(err)
	}
	b := store.Create("b", engine.New(nil)) // triggers eviction; spill fails
	c := store.Create("c", engine.New(nil)) // must not loop forever on the bad victims

	// All three stay resident (nothing could be spilled) and readable; the
	// spill failures degrade their victims, so writes may be fenced with
	// ErrSessionDegraded — but never fail any other way, and never stall.
	for _, s := range []*Session{a, b, c} {
		if err := store.View(s.ID, func(*Session, *engine.Engine) error { return nil }); err != nil {
			t.Fatalf("session %s unreadable after spill failure: %v", s.ID, err)
		}
		err := store.Update(s.ID, true, func(*Session, *engine.Engine) error { return nil })
		if err != nil && !errors.Is(err, ErrSessionDegraded) {
			t.Fatalf("session %s write after spill failure: %v", s.ID, err)
		}
	}
	if st := store.Stats(); st.Resident != 3 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Heal the disk: the background repairer re-arms every victim and lifts
	// the write fence.
	if err := os.MkdirAll(spill, 0o755); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.Stats().DegradedSessions > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("degraded sessions never repaired: %+v", store.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, s := range []*Session{a, b, c} {
		if err := store.Update(s.ID, true, func(*Session, *engine.Engine) error { return nil }); err != nil {
			t.Fatalf("session %s write after repair: %v", s.ID, err)
		}
	}
}

func TestStoreConcurrentCreateDelete(t *testing.T) {
	store, err := NewStore(StoreOptions{Shards: 4, MaxResident: 8, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s := store.Create(fmt.Sprintf("w%d-%d", w, i), engine.New(nil))
				store.Update(s.ID, true, func(*Session, *engine.Engine) error { return nil })
				if i%3 == 0 {
					store.Delete(s.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	st := store.Stats()
	if st.Resident > 8 {
		t.Fatalf("resident = %d exceeds cap", st.Resident)
	}
	want := 8 * 25 * 2 / 3 // two thirds survive (ceil-ish); just sanity-check scale
	if st.Sessions < want-20 || st.Sessions > 8*25 {
		t.Fatalf("sessions = %d", st.Sessions)
	}
}
