package server

import (
	"net/http"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"taco/internal/engine"
	"taco/internal/faultfs"
)

// waitRepaired polls until the store reports no degraded sessions.
func waitRepaired(t *testing.T, st *Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().DegradedSessions > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("degraded sessions never repaired: %+v", st.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalENOSPCDegradesAndRecovers is the tentpole degradation flow:
// a journal append hitting a full disk applies and acknowledges the batch,
// fences further writes on that session only (507, reads keep serving),
// and — once the disk heals — the background repairer re-lands the buffered
// record so a restart replays every acknowledged batch.
func TestJournalENOSPCDegradesAndRecovers(t *testing.T) {
	spill := t.TempDir()
	srv, tc := newTestServer(t, Options{Store: StoreOptions{
		SpillDir: spill, Durable: true, FsyncPolicy: "never",
	}})
	var a, b SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "a"}, &a)
	tc.do("POST", "/sessions", CreateRequest{Name: "b"}, &b)
	edit := func(id string, cell string, v float64) (EditResult, int) {
		var er EditResult
		code := tc.do("POST", "/sessions/"+id+"/edits",
			EditBatch{Edits: []EditOp{{Cell: cell, Value: num(v)}}}, &er)
		return er, code
	}
	if _, code := edit(a.ID, "A1", 1); code != http.StatusOK {
		t.Fatalf("edit before fault = %d", code)
	}

	// Fill the disk for session a's journal only.
	defer faultfs.Clear()
	faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpWrite, PathContains: a.ID + ".tacoj",
		Fault: faultfs.Fault{Err: syscall.ENOSPC},
	})
	er, code := edit(a.ID, "A2", 2)
	if code != http.StatusOK || er.Rev != 2 {
		t.Fatalf("degrading edit = %d rev %d, want 200 rev 2 (applied and acknowledged)", code, er.Rev)
	}
	if _, code := edit(a.ID, "A3", 3); code != http.StatusInsufficientStorage {
		t.Fatalf("write while degraded = %d, want 507", code)
	}
	var cr CellsResult
	if code := tc.do("GET", "/sessions/"+a.ID+"/cells?range=A1:A2&wait=1", nil, &cr); code != http.StatusOK {
		t.Fatalf("read while degraded = %d, want 200", code)
	}
	if len(cr.Cells) != 2 || cr.Cells[1].Num != 2 {
		t.Fatalf("degraded session lost its acknowledged batch: %+v", cr.Cells)
	}
	// The fault is scoped to one session: b keeps writing.
	if _, code := edit(b.ID, "A1", 9); code != http.StatusOK {
		t.Fatalf("unrelated session write = %d, want 200", code)
	}
	if st := srv.Store().Stats(); st.DegradedSessions != 1 {
		t.Fatalf("degraded sessions = %d, want 1", st.DegradedSessions)
	}

	// Disk heals: the repairer re-lands the buffered record and lifts the
	// fence.
	faultfs.Clear()
	waitRepaired(t, srv.Store())
	if er, code := edit(a.ID, "A3", 3); code != http.StatusOK || er.Rev != 3 {
		t.Fatalf("edit after repair = %d rev %d", code, er.Rev)
	}

	// A restarted store replays every acknowledged batch, including the one
	// whose original append hit ENOSPC.
	srv.Close()
	srv2, err := NewServer(Options{Store: StoreOptions{
		SpillDir: spill, Durable: true, FsyncPolicy: "never",
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := srv2.Store().Wait(a.ID); err != nil {
		t.Fatal(err)
	}
	err = srv2.Store().View(a.ID, func(_ *Session, eng *engine.Engine) error {
		if n := eng.NumCells(); n != 3 {
			t.Fatalf("recovered session has %d cells, want 3", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFsyncEIODegradesUnderAlways: under fsync=always the acknowledgement
// IS the fsync, so a failed group commit must surface the error — and
// degrade the session rather than silently downgrading the policy.
func TestFsyncEIODegradesUnderAlways(t *testing.T) {
	srv, tc := newTestServer(t, Options{Store: StoreOptions{
		SpillDir: t.TempDir(), Durable: true, FsyncPolicy: "always",
	}})
	var a SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "a"}, &a)
	edit := func(cell string, v float64) int {
		return tc.do("POST", "/sessions/"+a.ID+"/edits",
			EditBatch{Edits: []EditOp{{Cell: cell, Value: num(v)}}}, nil)
	}
	if code := edit("A1", 1); code != http.StatusOK {
		t.Fatalf("edit before fault = %d", code)
	}
	defer faultfs.Clear()
	faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpSync, PathContains: a.ID + ".tacoj",
		Fault: faultfs.Fault{Err: syscall.EIO},
	})
	if code := edit("A2", 2); code != http.StatusInsufficientStorage {
		t.Fatalf("edit with failing fsync = %d, want 507", code)
	}
	if st := srv.Store().Stats(); st.DegradedSessions != 1 {
		t.Fatalf("degraded sessions = %d, want 1", st.DegradedSessions)
	}
	if code := tc.do("GET", "/sessions/"+a.ID+"/cells?at=A1", nil, nil); code != http.StatusOK {
		t.Fatalf("read while degraded = %d", code)
	}
	faultfs.Clear()
	waitRepaired(t, srv.Store())
	if code := edit("A3", 3); code != http.StatusOK {
		t.Fatalf("edit after repair = %d", code)
	}
}

// TestTornSpillRenameDegradesAndRecovers: a spill whose atomic-publish
// rename fails leaves the victim resident, unevictable, and degraded; after
// the disk heals the repairer lands the snapshot and eviction works again.
func TestTornSpillRenameDegradesAndRecovers(t *testing.T) {
	store, err := NewStore(StoreOptions{
		Shards: 2, MaxResident: 1, SpillDir: filepath.Join(t.TempDir(), "spill"),
		RecalcWorkers: -1, Durable: true, FsyncPolicy: "never",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	a := store.Create("a", engine.New(nil))
	if err := store.Update(a.ID, true, func(*Session, *engine.Engine) error { return nil }); err != nil {
		t.Fatal(err)
	}
	defer faultfs.Clear()
	faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpRename, PathContains: ".tacos",
		Fault: faultfs.Fault{Err: syscall.EIO},
	})
	b := store.Create("b", engine.New(nil)) // forces eviction of a; rename tears
	if st := store.Stats(); st.DegradedSessions == 0 {
		t.Fatalf("torn spill rename did not degrade: %+v", st)
	}
	// Reads keep serving; rev-bumping writes are fenced on the victim.
	if err := store.View(a.ID, func(*Session, *engine.Engine) error { return nil }); err != nil {
		t.Fatalf("read of degraded victim: %v", err)
	}
	faultfs.Clear()
	waitRepaired(t, store)
	for _, s := range []*Session{a, b} {
		if err := store.Update(s.ID, true, func(*Session, *engine.Engine) error { return nil }); err != nil {
			t.Fatalf("write after repair: %v", err)
		}
	}
	// The repaired snapshot makes the victim evictable again.
	store.Create("c", engine.New(nil))
	if st := store.Stats(); st.Evictions == 0 {
		t.Fatalf("no eviction after repair: %+v", st)
	}
}

// TestSlowFsyncDoesNotDegrade: latency is not a fault — a slow disk under
// group commit just makes edits slower, never 507s.
func TestSlowFsyncDoesNotDegrade(t *testing.T) {
	srv, tc := newTestServer(t, Options{Store: StoreOptions{
		SpillDir: t.TempDir(), Durable: true, FsyncPolicy: "always",
	}})
	var a SessionInfo
	tc.do("POST", "/sessions", CreateRequest{Name: "a"}, &a)
	defer faultfs.Clear()
	faultfs.Inject(faultfs.Rule{
		Op: faultfs.OpSync, PathContains: ".tacoj",
		Fault: faultfs.Fault{Delay: 20 * time.Millisecond},
	})
	for i := 0; i < 3; i++ {
		code := tc.do("POST", "/sessions/"+a.ID+"/edits",
			EditBatch{Edits: []EditOp{{Cell: "A1", Value: num(float64(i))}}}, nil)
		if code != http.StatusOK {
			t.Fatalf("edit %d under slow fsync = %d", i, code)
		}
	}
	if st := srv.Store().Stats(); st.DegradedSessions != 0 {
		t.Fatalf("slow fsync degraded sessions: %+v", st)
	}
}
