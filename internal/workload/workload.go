// Package workload generates deterministic synthetic spreadsheets whose
// formula structure mirrors the two real-world corpora the paper evaluates
// on (Enron xls files and xlsx files crawled from Github). The real corpora
// are not redistributable, so these generators are the documented
// substitution: they produce the same pattern mix the paper measures —
// RR-dominant tabular locality with FF lookups, RR-Chains, cumulative FR/RF
// totals, derived columns, and a fraction of messy non-local formulae — with
// heavy-tailed sheet sizes, so every compression, query, and maintenance
// code path real files would drive is exercised.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math/rand"
	"slices"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/ref"
)

// Cell is one populated spreadsheet cell: either a pure value or a formula
// (Formula holds the source without the leading '=').
type Cell struct {
	Formula string
	Value   formula.Value
}

// IsFormula reports whether the cell holds a formula.
func (c Cell) IsFormula() bool { return c.Formula != "" }

// Sheet is a synthetic spreadsheet: a sparse cell map plus a name.
type Sheet struct {
	Name  string
	Cells map[ref.Ref]Cell
}

// NewSheet returns an empty named sheet.
func NewSheet(name string) *Sheet {
	return &Sheet{Name: name, Cells: make(map[ref.Ref]Cell)}
}

// SetValue stores a pure numeric value.
func (s *Sheet) SetValue(at ref.Ref, v float64) {
	s.Cells[at] = Cell{Value: formula.Num(v)}
}

// SetText stores a pure text value.
func (s *Sheet) SetText(at ref.Ref, v string) {
	s.Cells[at] = Cell{Value: formula.Str(v)}
}

// SetFormula stores a formula (source without '=').
func (s *Sheet) SetFormula(at ref.Ref, src string) {
	s.Cells[at] = Cell{Formula: src}
}

// NumFormulas returns the number of formula cells.
func (s *Sheet) NumFormulas() int {
	n := 0
	for _, c := range s.Cells {
		if c.IsFormula() {
			n++
		}
	}
	return n
}

// Dependencies parses every formula cell and returns the uncompressed
// dependency list in column-major order (the paper configures POI to load
// spreadsheets by columns, which is what gives the greedy compressor its
// adjacent-run insertion order).
func (s *Sheet) Dependencies() ([]core.Dependency, error) {
	cells := make([]ref.Ref, 0, len(s.Cells))
	for at, c := range s.Cells {
		if c.IsFormula() {
			cells = append(cells, at)
		}
	}
	sortColumnMajor(cells)
	var deps []core.Dependency
	for _, at := range cells {
		refs, err := formula.ExtractRefs(s.Cells[at].Formula)
		if err != nil {
			return nil, fmt.Errorf("workload: cell %v: %w", at, err)
		}
		for _, r := range refs {
			deps = append(deps, core.Dependency{
				Prec:      r.At,
				Dep:       at,
				HeadFixed: r.HeadFixed,
				TailFixed: r.TailFixed,
			})
		}
	}
	return deps, nil
}

// MustDependencies is Dependencies panicking on parse errors; generators only
// emit valid formulae.
func (s *Sheet) MustDependencies() []core.Dependency {
	deps, err := s.Dependencies()
	if err != nil {
		panic(err)
	}
	return deps
}

func sortColumnMajor(cells []ref.Ref) {
	// Insertion-friendly order: column by column, top to bottom.
	slices.SortFunc(cells, ref.ColumnMajorCompare)
}

// FillDown autofills the formula at src down through rows src.Row+1..lastRow,
// applying the spreadsheet relative/absolute shifting rules — the exact
// mechanism that creates tabular locality in real sheets.
func (s *Sheet) FillDown(src ref.Ref, lastRow int) {
	c, ok := s.Cells[src]
	if !ok || !c.IsFormula() {
		panic(fmt.Sprintf("workload: FillDown source %v is not a formula", src))
	}
	ast := formula.MustParse(c.Formula)
	for row := src.Row + 1; row <= lastRow; row++ {
		s.SetFormula(ref.Ref{Col: src.Col, Row: row}, formula.Text(formula.Shift(ast, 0, row-src.Row)))
	}
}

// FillRight autofills the formula at src right through columns
// src.Col+1..lastCol.
func (s *Sheet) FillRight(src ref.Ref, lastCol int) {
	c, ok := s.Cells[src]
	if !ok || !c.IsFormula() {
		panic(fmt.Sprintf("workload: FillRight source %v is not a formula", src))
	}
	ast := formula.MustParse(c.Formula)
	for col := src.Col + 1; col <= lastCol; col++ {
		s.SetFormula(ref.Ref{Col: col, Row: src.Row}, formula.Text(formula.Shift(ast, col-src.Col, 0)))
	}
}

// a1 renders a relative A1 reference.
func a1(col, row int) string { return ref.FormatA1(ref.Ref{Col: col, Row: row}) }

// abs renders a fully anchored reference ($C$R).
func abs(col, row int) string {
	return "$" + ref.ColName(col) + "$" + itoa(row)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// ---------------------------------------------------------------------------
// Pattern-shaped region generators
// ---------------------------------------------------------------------------

// AddDataColumn fills rows 1..rows of col with deterministic numbers.
func (s *Sheet) AddDataColumn(col, rows int, rng *rand.Rand) {
	for row := 1; row <= rows; row++ {
		s.SetValue(ref.Ref{Col: col, Row: row}, float64(rng.Intn(1000))/10)
	}
}

// AddSlidingWindow writes an RR run: col[row] = SUM over a window of srcCol
// ending at the current row, for rows window..rows.
func (s *Sheet) AddSlidingWindow(col, srcCol, window, rows int) {
	start := window
	src := ref.Ref{Col: col, Row: start}
	s.SetFormula(src, fmt.Sprintf("SUM(%s:%s)", a1(srcCol, start-window+1), a1(srcCol, start)))
	s.FillDown(src, rows)
}

// AddRunningTotal writes an FR run: col[row] = SUM($src$1:src row).
func (s *Sheet) AddRunningTotal(col, srcCol, rows int) {
	src := ref.Ref{Col: col, Row: 1}
	s.SetFormula(src, fmt.Sprintf("SUM(%s:%s)", abs(srcCol, 1), a1(srcCol, 1)))
	s.FillDown(src, rows)
}

// AddReverseTotal writes an RF run: col[row] = SUM(src row:$src$rows) — the
// remaining-to-go total.
func (s *Sheet) AddReverseTotal(col, srcCol, rows int) {
	src := ref.Ref{Col: col, Row: 1}
	s.SetFormula(src, fmt.Sprintf("SUM(%s:%s)", a1(srcCol, 1), abs(srcCol, rows)))
	s.FillDown(src, rows)
}

// AddFixedLookup writes an FF run: every cell multiplies the row's value by a
// fixed rate cell.
func (s *Sheet) AddFixedLookup(col, srcCol int, rate ref.Ref, rows int) {
	src := ref.Ref{Col: col, Row: 1}
	s.SetFormula(src, fmt.Sprintf("%s*%s", a1(srcCol, 1), abs(rate.Col, rate.Row)))
	s.FillDown(src, rows)
}

// AddVlookupColumn writes an FF range-lookup run against a fixed table.
func (s *Sheet) AddVlookupColumn(col, keyCol int, table ref.Range, rows int) {
	src := ref.Ref{Col: col, Row: 1}
	s.SetFormula(src, fmt.Sprintf("VLOOKUP(%s,%s:%s,2)",
		a1(keyCol, 1), abs(table.Head.Col, table.Head.Row), abs(table.Tail.Col, table.Tail.Row)))
	s.FillDown(src, rows)
}

// AddChain writes an RR-Chain: col[1] = seed, col[row] = col[row-1] + srcCol[row].
func (s *Sheet) AddChain(col, srcCol, rows int) {
	s.SetFormula(ref.Ref{Col: col, Row: 1}, a1(srcCol, 1))
	src := ref.Ref{Col: col, Row: 2}
	s.SetFormula(src, fmt.Sprintf("%s+%s", a1(col, 1), a1(srcCol, 2)))
	s.FillDown(src, rows)
}

// AddDerivedColumn writes an in-row RR run: col[row] = f(srcCol[row]) — the
// derived-column shape TACO-InRow targets.
func (s *Sheet) AddDerivedColumn(col, srcCol, rows int) {
	src := ref.Ref{Col: col, Row: 1}
	s.SetFormula(src, fmt.Sprintf("ROUND(%s*1.08,2)", a1(srcCol, 1)))
	s.FillDown(src, rows)
}

// AddFig2Column reproduces the paper's Fig. 2 Enron column: an IF formula
// referencing the group key of this and the previous row, the cell to the
// left, and the running value above.
func (s *Sheet) AddFig2Column(keyCol, valCol, outCol, rows int) {
	s.SetFormula(ref.Ref{Col: outCol, Row: 2}, a1(valCol, 2))
	src := ref.Ref{Col: outCol, Row: 3}
	s.SetFormula(src, fmt.Sprintf("IF(%s=%s,%s+%s,%s)",
		a1(keyCol, 3), a1(keyCol, 2), a1(outCol, 2), a1(valCol, 3), a1(valCol, 3)))
	s.FillDown(src, rows)
}

// AddGapOneColumn writes formulae on every other row, each referencing the
// cell to its left — the RR-GapOne shape of Sec. V that plain adjacent
// patterns cannot compress (the intermediate rows are pure values).
func (s *Sheet) AddGapOneColumn(col, srcCol, rows int) {
	for row := 1; row <= rows; row += 2 {
		s.SetFormula(ref.Ref{Col: col, Row: row}, fmt.Sprintf("%s*2", a1(srcCol, row)))
	}
}

// AddMessyRegion writes formulae with no tabular locality: scattered cells
// with random references, producing Single edges and outliers that break
// runs.
func (s *Sheet) AddMessyRegion(col, rows, count int, maxSrcCol int, rng *rand.Rand) {
	for i := 0; i < count; i++ {
		at := ref.Ref{Col: col, Row: 1 + rng.Intn(rows)}
		if _, taken := s.Cells[at]; taken {
			continue
		}
		sc := 1 + rng.Intn(maxSrcCol)
		sr := 1 + rng.Intn(rows)
		h := rng.Intn(4)
		if h == 0 {
			s.SetFormula(at, fmt.Sprintf("%s*2", a1(sc, sr)))
		} else {
			s.SetFormula(at, fmt.Sprintf("SUM(%s:%s)", a1(sc, sr), a1(sc, sr+h)))
		}
	}
}
