package workload

import (
	"math/rand"
	"testing"
)

func TestEditStreamDeterministic(t *testing.T) {
	sheet := FinancialModel(50, rand.New(rand.NewSource(1)))
	a := EditStream(sheet, 100, rand.New(rand.NewSource(2)))
	b := EditStream(sheet, 100, rand.New(rand.NewSource(2)))
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edit %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEditStreamMix(t *testing.T) {
	sheet := InventoryTracker(80, rand.New(rand.NewSource(3)))
	stream := EditStream(sheet, 500, rand.New(rand.NewSource(4)))
	counts := map[EditKind]int{}
	for _, e := range stream {
		counts[e.Kind]++
		switch e.Kind {
		case EditValue, EditClear:
			if c, ok := sheet.Cells[e.At]; !ok || c.IsFormula() {
				t.Fatalf("edit %+v does not target a data cell", e)
			}
		case EditFormula:
			if e.Formula == "" {
				t.Fatalf("formula edit with empty source: %+v", e)
			}
		}
	}
	if counts[EditValue] < 300 || counts[EditFormula] == 0 || counts[EditClear] == 0 {
		t.Fatalf("mix = %v", counts)
	}
}

func TestQueryStreamTargetsPopulatedCells(t *testing.T) {
	sheet := Gradebook(40, rand.New(rand.NewSource(5)))
	for _, q := range QueryStream(sheet, 50, rand.New(rand.NewSource(6))) {
		if !q.IsCell() {
			t.Fatalf("query %v is not a cell", q)
		}
		if _, ok := sheet.Cells[q.Head]; !ok {
			t.Fatalf("query %v targets an empty cell", q)
		}
	}
}
