package workload

import (
	"fmt"
	"math"
	"math/rand"

	"taco/internal/ref"
)

// CorpusSpec parameterises a synthetic corpus. Scale multiplies sheet sizes;
// 1.0 keeps the defaults laptop-friendly while preserving the heavy-tailed
// shape of the real datasets.
type CorpusSpec struct {
	// Name labels the corpus in experiment output ("Enron", "Github").
	Name string
	// Sheets is the number of spreadsheets to generate.
	Sheets int
	// MedianRows controls the typical sheet height; sizes are drawn from a
	// log-normal-like distribution around it so a few sheets are much larger
	// (the paper's Fig. 1 tails).
	MedianRows int
	// MaxRows caps sheet height.
	MaxRows int
	// Seed makes the corpus deterministic.
	Seed int64
	// MessyFraction is the share of formula columns with no tabular
	// locality (Single edges after compression).
	MessyFraction float64
}

// EnronSpec mirrors the Enron corpus: xls-era sheets (64K row limit), a few
// hundred large files, RR-dominated with FF lookups and occasional chains.
func EnronSpec(scale float64) CorpusSpec {
	return CorpusSpec{
		Name:          "Enron",
		Sheets:        maxInt(4, int(24*scale)),
		MedianRows:    maxInt(64, int(400*scale)),
		MaxRows:       maxInt(256, int(8000*scale)),
		Seed:          1001,
		MessyFraction: 0.10,
	}
}

// GithubSpec mirrors the Github xlsx corpus: more files, larger sheets
// (the 1M-row xlsx format), an even higher share of programmatically
// generated — hence pattern-regular — formulae.
func GithubSpec(scale float64) CorpusSpec {
	return CorpusSpec{
		Name:          "Github",
		Sheets:        maxInt(6, int(36*scale)),
		MedianRows:    maxInt(96, int(700*scale)),
		MaxRows:       maxInt(512, int(20000*scale)),
		Seed:          2002,
		MessyFraction: 0.06,
	}
}

// Generate builds the corpus. Sheet i is named "<corpus>-i".
func Generate(spec CorpusSpec) []*Sheet {
	rng := rand.New(rand.NewSource(spec.Seed))
	sheets := make([]*Sheet, 0, spec.Sheets)
	for i := 0; i < spec.Sheets; i++ {
		rows := drawRows(rng, spec.MedianRows, spec.MaxRows)
		s := GenerateSheet(fmt.Sprintf("%s-%02d", spec.Name, i), rows, spec.MessyFraction,
			rand.New(rand.NewSource(spec.Seed+int64(i)*7919)))
		sheets = append(sheets, s)
	}
	return sheets
}

// drawRows samples a heavy-tailed sheet height.
func drawRows(rng *rand.Rand, median, maxRows int) int {
	// exp(normal) around ln(median), sigma tuned so ~5% of sheets approach
	// the cap.
	v := math.Exp(math.Log(float64(median)) + rng.NormFloat64()*0.9)
	rows := int(v)
	if rows < 16 {
		rows = 16
	}
	if rows > maxRows {
		rows = maxRows
	}
	return rows
}

// GenerateSheet builds one synthetic spreadsheet with the paper's pattern
// mix: two data columns, then a sequence of formula columns drawn from the
// observed pattern frequencies (RR sliding windows and derived columns
// dominate, then FF point/range lookups, then chains, then FR/RF totals,
// plus a messy fraction).
func GenerateSheet(name string, rows int, messyFraction float64, rng *rand.Rand) *Sheet {
	s := NewSheet(name)
	// Data substrate: key + value columns, a rate cell, and a lookup table.
	s.AddDataColumn(1, rows, rng)             // A: keys (numeric groups)
	s.AddDataColumn(2, rows, rng)             // B: values
	s.SetValue(ref.Ref{Col: 26, Row: 1}, 1.1) // Z1: fixed conversion rate
	for r := 1; r <= 8; r++ {                 // AA1:AB8: lookup table
		s.SetValue(ref.Ref{Col: 27, Row: r}, float64(r))
		s.SetValue(ref.Ref{Col: 28, Row: r}, float64(r)*3)
	}

	nCols := 4 + rng.Intn(8) // formula columns C..(C+nCols-1), staying < Z
	for i := 0; i < nCols; i++ {
		col := 3 + i
		if col >= 26 {
			break
		}
		srcCol := 2
		if i > 0 && rng.Intn(3) == 0 {
			srcCol = 3 + rng.Intn(i) // reference an earlier formula column
		}
		if rng.Float64() < messyFraction {
			s.AddMessyRegion(col, rows, rows/2, col-1, rng)
			continue
		}
		switch pick(rng, 33, 21, 16, 12, 6, 5, 5, 2) {
		case 0: // RR sliding window
			s.AddSlidingWindow(col, srcCol, 2+rng.Intn(4), rows)
		case 1: // derived column (in-row RR)
			s.AddDerivedColumn(col, srcCol, rows)
		case 2: // FF point lookup against the fixed rate
			s.AddFixedLookup(col, srcCol, ref.Ref{Col: 26, Row: 1}, rows)
		case 3: // FF range lookup
			s.AddVlookupColumn(col, 1, ref.MustRange("AA1:AB8"), rows)
		case 4: // RR-Chain cumulative walk
			s.AddChain(col, srcCol, rows)
		case 5: // FR running total
			s.AddRunningTotal(col, srcCol, rows)
		case 6: // RF remaining total
			s.AddReverseTotal(col, srcCol, rows)
		default: // RR-GapOne: every-other-row formulae (Sec. V)
			s.AddGapOneColumn(col, srcCol, rows)
		}
	}
	// A Fig. 2 style grouped-total column on some sheets.
	if rng.Intn(3) == 0 && rows >= 8 {
		s.AddFig2Column(1, 2, 25, rows) // writes into column Y
	}
	return s
}

// pick draws an index with the given weights.
func pick(rng *rand.Rand, weights ...int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	v := rng.Intn(total)
	for i, w := range weights {
		if v < w {
			return i
		}
		v -= w
	}
	return len(weights) - 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
