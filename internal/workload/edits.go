package workload

import (
	"math/rand"

	"taco/internal/formula"
	"taco/internal/ref"
)

// This file derives interactive edit streams from generated sheets — the
// realistic traffic a serving layer replays against live sessions. The mix
// follows the interaction studies the async engine models: mostly data-cell
// updates (whose latency is the dependents traversal), a smaller share of
// formula rewrites (clear + re-add in the graph), and occasional deletions.

// EditKind discriminates an Edit.
type EditKind uint8

const (
	// EditValue writes a numeric value.
	EditValue EditKind = iota
	// EditFormula (re)writes a formula.
	EditFormula
	// EditClear removes the cell.
	EditClear
)

// Edit is one scripted edit operation.
type Edit struct {
	Kind    EditKind
	At      ref.Ref
	Value   float64 // EditValue payload
	Formula string  // EditFormula payload (source without '=')
}

// EditStream derives n edits from a sheet, deterministic in rng. Roughly 80%
// perturb existing data cells, 15% rewrite existing formula cells in place,
// and 5% clear data cells. Streams derived with the same seed replay
// identically, so two hosts applying one stream converge to equal sheets.
func EditStream(s *Sheet, n int, rng *rand.Rand) []Edit {
	var values, formulas []ref.Ref
	for at, c := range s.Cells {
		if c.IsFormula() {
			formulas = append(formulas, at)
		} else if c.Value.Kind == formula.KindNumber { // numbers only; keep labels intact
			values = append(values, at)
		}
	}
	sortColumnMajor(values)
	sortColumnMajor(formulas)
	out := make([]Edit, 0, n)
	for i := 0; i < n; i++ {
		roll := rng.Float64()
		switch {
		case roll < 0.80 && len(values) > 0:
			at := values[rng.Intn(len(values))]
			out = append(out, Edit{Kind: EditValue, At: at, Value: float64(rng.Intn(100000)) / 10})
		case roll < 0.95 && len(formulas) > 0:
			at := formulas[rng.Intn(len(formulas))]
			out = append(out, Edit{Kind: EditFormula, At: at, Formula: s.Cells[at].Formula})
		case len(values) > 0:
			at := values[rng.Intn(len(values))]
			out = append(out, Edit{Kind: EditClear, At: at})
		default:
			out = append(out, Edit{Kind: EditValue, At: ref.Ref{Col: 1, Row: 1}, Value: float64(i)})
		}
	}
	return out
}

// QueryStream derives n dependency-query seed ranges from a sheet's populated
// region, deterministic in rng — the read half of a serving workload.
func QueryStream(s *Sheet, n int, rng *rand.Rand) []ref.Range {
	var cells []ref.Ref
	for at := range s.Cells {
		cells = append(cells, at)
	}
	sortColumnMajor(cells)
	out := make([]ref.Range, 0, n)
	for i := 0; i < n; i++ {
		if len(cells) == 0 {
			out = append(out, ref.MustRange("A1"))
			continue
		}
		at := cells[rng.Intn(len(cells))]
		out = append(out, ref.CellRange(at))
	}
	return out
}
