package workload

import (
	"math/rand"

	"taco/internal/formula"
	"taco/internal/ref"
)

// This file derives interactive edit streams from generated sheets — the
// realistic traffic a serving layer replays against live sessions. The mix
// follows the interaction studies the async engine models: mostly data-cell
// updates (whose latency is the dependents traversal), a smaller share of
// formula rewrites (clear + re-add in the graph), and occasional deletions.

// EditKind discriminates an Edit.
type EditKind uint8

const (
	// EditValue writes a numeric value.
	EditValue EditKind = iota
	// EditFormula (re)writes a formula.
	EditFormula
	// EditClear removes the cell.
	EditClear
)

// Edit is one scripted edit operation.
type Edit struct {
	Kind    EditKind
	At      ref.Ref
	Value   float64 // EditValue payload
	Formula string  // EditFormula payload (source without '=')
}

// EditStream derives n edits from a sheet, deterministic in rng. Roughly 80%
// perturb existing data cells, 15% rewrite existing formula cells in place,
// and 5% clear data cells. Streams derived with the same seed replay
// identically, so two hosts applying one stream converge to equal sheets.
func EditStream(s *Sheet, n int, rng *rand.Rand) []Edit {
	return EditStreamMix(s, n, rng, -1)
}

// EditStreamMix is EditStream with an explicit formula-edit share:
// formulaRatio in [0, 1] is the probability an edit rewrites a formula cell
// (the remainder keeps the 16:1 value-perturbation-to-clear split), which
// makes recalc pressure a workload dial — every formula rewrite clears and
// re-adds graph dependencies and dirties the cell's whole transitive
// fan-out. A negative ratio keeps EditStream's default 15% share. Streams
// derived with the same seed and ratio replay identically.
func EditStreamMix(s *Sheet, n int, rng *rand.Rand, formulaRatio float64) []Edit {
	var values, formulas []ref.Ref
	for at, c := range s.Cells {
		if c.IsFormula() {
			formulas = append(formulas, at)
		} else if c.Value.Kind == formula.KindNumber { // numbers only; keep labels intact
			values = append(values, at)
		}
	}
	sortColumnMajor(values)
	sortColumnMajor(formulas)
	// The default mix: 80% value, 15% formula, 5% clear. An explicit ratio
	// reassigns the formula share and splits the rest 16:1 between value
	// perturbations and clears, preserving the default's proportions.
	formulaShare := 0.15
	if formulaRatio >= 0 {
		formulaShare = min(formulaRatio, 1)
	}
	valueShare := (1 - formulaShare) * 16.0 / 17.0
	out := make([]Edit, 0, n)
	for i := 0; i < n; i++ {
		roll := rng.Float64()
		switch {
		case roll < valueShare && len(values) > 0:
			at := values[rng.Intn(len(values))]
			out = append(out, Edit{Kind: EditValue, At: at, Value: float64(rng.Intn(100000)) / 10})
		case roll < valueShare+formulaShare && len(formulas) > 0:
			at := formulas[rng.Intn(len(formulas))]
			out = append(out, Edit{Kind: EditFormula, At: at, Formula: s.Cells[at].Formula})
		case len(values) > 0:
			at := values[rng.Intn(len(values))]
			out = append(out, Edit{Kind: EditClear, At: at})
		default:
			out = append(out, Edit{Kind: EditValue, At: ref.Ref{Col: 1, Row: 1}, Value: float64(i)})
		}
	}
	return out
}

// QueryStream derives n dependency-query seed ranges from a sheet's populated
// region, deterministic in rng — the read half of a serving workload.
func QueryStream(s *Sheet, n int, rng *rand.Rand) []ref.Range {
	var cells []ref.Ref
	for at := range s.Cells {
		cells = append(cells, at)
	}
	sortColumnMajor(cells)
	out := make([]ref.Range, 0, n)
	for i := 0; i < n; i++ {
		if len(cells) == 0 {
			out = append(out, ref.MustRange("A1"))
			continue
		}
		at := cells[rng.Intn(len(cells))]
		out = append(out, ref.CellRange(at))
	}
	return out
}
