package workload

import (
	"fmt"
	"math/rand"

	"taco/internal/ref"
)

// This file builds complete, realistic spreadsheets for the application
// scenarios the paper's introduction motivates — planning, inventory
// tracking, and financial/scientific analysis. They are used by tests, the
// examples, and cmd/tacogen (which writes them to .xlsx files you can open
// in a real spreadsheet system).

// FinancialModel builds a months-long revenue model:
//
//	A: month index      B: revenue        C: cost
//	D: margin (=B-C)                      (in-row RR)
//	E: cumulative margin (=SUM($D$1:Dn))  (FR)
//	F: after-tax margin (=D*(1-$H$1))     (RR + FF on the tax rate)
//	G: 3-month rolling revenue            (RR sliding window)
//	H1: tax rate
func FinancialModel(months int, rng *rand.Rand) *Sheet {
	s := NewSheet("financial")
	for m := 1; m <= months; m++ {
		s.SetValue(ref.Ref{Col: 1, Row: m}, float64(m))
		s.SetValue(ref.Ref{Col: 2, Row: m}, 1000+float64(rng.Intn(500)))
		s.SetValue(ref.Ref{Col: 3, Row: m}, 600+float64(rng.Intn(300)))
	}
	s.SetValue(ref.Ref{Col: 8, Row: 1}, 0.21)
	s.SetFormula(ref.Ref{Col: 4, Row: 1}, "B1-C1")
	s.FillDown(ref.Ref{Col: 4, Row: 1}, months)
	s.SetFormula(ref.Ref{Col: 5, Row: 1}, "SUM($D$1:D1)")
	s.FillDown(ref.Ref{Col: 5, Row: 1}, months)
	s.SetFormula(ref.Ref{Col: 6, Row: 1}, "D1*(1-$H$1)")
	s.FillDown(ref.Ref{Col: 6, Row: 1}, months)
	if months >= 3 {
		s.SetFormula(ref.Ref{Col: 7, Row: 3}, "AVERAGE(B1:B3)")
		s.FillDown(ref.Ref{Col: 7, Row: 3}, months)
	}
	return s
}

// InventoryTracker builds a transactions ledger with a running stock level:
//
//	A: day   B: received   C: shipped
//	D: stock level (=D(n-1)+Bn-Cn)   (RR-Chain + in-row RRs)
//	E: reorder flag (=IF(Dn<$G$1,1,0))  (RR + FF on the threshold)
//	G1: reorder threshold
func InventoryTracker(days int, rng *rand.Rand) *Sheet {
	s := NewSheet("inventory")
	for d := 1; d <= days; d++ {
		s.SetValue(ref.Ref{Col: 1, Row: d}, float64(d))
		s.SetValue(ref.Ref{Col: 2, Row: d}, float64(rng.Intn(30)))
		s.SetValue(ref.Ref{Col: 3, Row: d}, float64(rng.Intn(25)))
	}
	s.SetValue(ref.Ref{Col: 7, Row: 1}, 20.0)
	s.SetFormula(ref.Ref{Col: 4, Row: 1}, "B1-C1+100")
	if days >= 2 {
		s.SetFormula(ref.Ref{Col: 4, Row: 2}, "D1+B2-C2")
		s.FillDown(ref.Ref{Col: 4, Row: 2}, days)
	}
	s.SetFormula(ref.Ref{Col: 5, Row: 1}, "IF(D1<$G$1,1,0)")
	s.FillDown(ref.Ref{Col: 5, Row: 1}, days)
	return s
}

// Gradebook builds a class sheet with per-student statistics and a grade
// lookup:
//
//	A: student id   B-D: assignment scores
//	E: total (=SUM(Bn:Dn))              (in-row RR over a row range)
//	F: rank-ish curve (=En/$E$<last>)    (RR + FF)
//	G: letter grade (=VLOOKUP on a fixed scale)   (FF range lookup)
func Gradebook(students int, rng *rand.Rand) *Sheet {
	s := NewSheet("gradebook")
	for i := 1; i <= students; i++ {
		s.SetValue(ref.Ref{Col: 1, Row: i}, float64(1000+i))
		for c := 2; c <= 4; c++ {
			s.SetValue(ref.Ref{Col: c, Row: i}, float64(50+rng.Intn(50)))
		}
	}
	// Grade scale at J1:K4 (thresholds must be found exactly; use a numeric
	// bucket column produced by FLOOR in column H).
	scale := [][2]float64{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	for i, row := range scale {
		s.SetValue(ref.Ref{Col: 10, Row: i + 1}, row[0])
		s.SetValue(ref.Ref{Col: 11, Row: i + 1}, row[1])
	}
	s.SetFormula(ref.Ref{Col: 5, Row: 1}, "SUM(B1:D1)")
	s.FillDown(ref.Ref{Col: 5, Row: 1}, students)
	last := fmt.Sprintf("$E$%d", students)
	s.SetFormula(ref.Ref{Col: 6, Row: 1}, "E1/"+last)
	s.FillDown(ref.Ref{Col: 6, Row: 1}, students)
	s.SetFormula(ref.Ref{Col: 8, Row: 1}, "FLOOR(F1*4)")
	s.FillDown(ref.Ref{Col: 8, Row: 1}, students)
	s.SetFormula(ref.Ref{Col: 9, Row: 1},
		fmt.Sprintf("VLOOKUP(H1,%s:%s,2)", "$J$1", fmt.Sprintf("$K$%d", len(scale))))
	s.FillDown(ref.Ref{Col: 9, Row: 1}, students)
	return s
}

// PlanningBudget builds a quarterly planning sheet where each quarter's
// budget derives from the previous quarter's actuals — a chain across a
// row-major layout (quarters as columns), exercising the row axis:
//
//	row 1: quarter labels
//	row 2: actuals (data)
//	row 3: budget (=previous budget * growth)  (row-axis RR-Chain + FF)
//	row 4: variance (=actual-budget)           (row-axis in-row RR)
func PlanningBudget(quarters int, rng *rand.Rand) *Sheet {
	s := NewSheet("planning")
	for q := 1; q <= quarters; q++ {
		s.SetText(ref.Ref{Col: q, Row: 1}, fmt.Sprintf("Q%d", q))
		s.SetValue(ref.Ref{Col: q, Row: 2}, 900+float64(rng.Intn(200)))
	}
	growth := ref.Ref{Col: quarters + 2, Row: 1}
	s.SetValue(growth, 1.05)
	s.SetValue(ref.Ref{Col: 1, Row: 3}, 1000)
	if quarters >= 2 {
		s.SetFormula(ref.Ref{Col: 2, Row: 3},
			fmt.Sprintf("A3*$%s$%d", ref.ColName(growth.Col), growth.Row))
		s.FillRight(ref.Ref{Col: 2, Row: 3}, quarters)
	}
	s.SetFormula(ref.Ref{Col: 1, Row: 4}, "A2-A3")
	s.FillRight(ref.Ref{Col: 1, Row: 4}, quarters)
	return s
}

// Scenario names Generate-able by BuildScenario.
var ScenarioNames = []string{"financial", "inventory", "gradebook", "planning"}

// BuildScenario constructs a named scenario sheet of roughly n data rows.
func BuildScenario(name string, n int, rng *rand.Rand) (*Sheet, error) {
	switch name {
	case "financial":
		return FinancialModel(n, rng), nil
	case "inventory":
		return InventoryTracker(n, rng), nil
	case "gradebook":
		return Gradebook(n, rng), nil
	case "planning":
		return PlanningBudget(n, rng), nil
	default:
		return nil, fmt.Errorf("workload: unknown scenario %q (want one of %v)", name, ScenarioNames)
	}
}
