package workload

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

func TestFillDownCreatesRRRun(t *testing.T) {
	s := NewSheet("t")
	s.AddDataColumn(1, 20, rand.New(rand.NewSource(1)))
	s.AddSlidingWindow(2, 1, 3, 20)
	deps := s.MustDependencies()
	g := core.Build(deps, core.DefaultOptions())
	st := g.PatternStats()
	if st[core.RR].Edges != 1 {
		t.Fatalf("stats = %+v, want one RR edge", st)
	}
	if st[core.RR].Reduced != len(deps)-1 {
		t.Fatalf("reduced = %d, want %d", st[core.RR].Reduced, len(deps)-1)
	}
}

func TestRunningTotalIsFR(t *testing.T) {
	s := NewSheet("t")
	s.AddDataColumn(1, 15, rand.New(rand.NewSource(1)))
	s.AddRunningTotal(2, 1, 15)
	g := core.Build(s.MustDependencies(), core.DefaultOptions())
	if st := g.PatternStats(); st[core.FR].Edges != 1 {
		t.Fatalf("stats = %+v, want one FR edge", st)
	}
}

func TestReverseTotalIsRF(t *testing.T) {
	s := NewSheet("t")
	s.AddDataColumn(1, 15, rand.New(rand.NewSource(1)))
	s.AddReverseTotal(2, 1, 15)
	g := core.Build(s.MustDependencies(), core.DefaultOptions())
	if st := g.PatternStats(); st[core.RF].Edges != 1 {
		t.Fatalf("stats = %+v, want one RF edge", st)
	}
}

func TestFixedLookupIsFF(t *testing.T) {
	s := NewSheet("t")
	s.AddDataColumn(1, 15, rand.New(rand.NewSource(1)))
	s.SetValue(ref.MustCell("Z1"), 2.5)
	s.AddFixedLookup(2, 1, ref.MustCell("Z1"), 15)
	g := core.Build(s.MustDependencies(), core.DefaultOptions())
	st := g.PatternStats()
	// One FF run (the rate) and one in-row RR run (the source column).
	if st[core.FF].Edges != 1 || st[core.RR].Edges != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChainIsRRChain(t *testing.T) {
	s := NewSheet("t")
	s.AddDataColumn(1, 25, rand.New(rand.NewSource(1)))
	s.AddChain(2, 1, 25)
	g := core.Build(s.MustDependencies(), core.DefaultOptions())
	if st := g.PatternStats(); st[core.RRChain].Edges != 1 {
		t.Fatalf("stats = %+v, want one RR-Chain edge", st)
	}
}

func TestFig2ColumnCompresses(t *testing.T) {
	s := NewSheet("t")
	rng := rand.New(rand.NewSource(1))
	s.AddDataColumn(1, 40, rng)
	s.AddDataColumn(2, 40, rng)
	s.AddFig2Column(1, 2, 3, 40)
	deps := s.MustDependencies()
	g := core.Build(deps, core.DefaultOptions())
	if g.NumEdges() > 8 {
		t.Fatalf("fig2 column edges = %d (deps %d)", g.NumEdges(), len(deps))
	}
}

func TestFillRight(t *testing.T) {
	s := NewSheet("t")
	for c := 1; c <= 10; c++ {
		s.SetValue(ref.Ref{Col: c, Row: 1}, float64(c))
	}
	s.SetFormula(ref.Ref{Col: 1, Row: 2}, "A1*2")
	s.FillRight(ref.Ref{Col: 1, Row: 2}, 10)
	g := core.Build(s.MustDependencies(), core.DefaultOptions())
	var rowEdges int
	g.Edges(func(e *core.Edge) bool {
		if e.Pattern == core.RR && e.Axis == ref.AxisRow {
			rowEdges++
		}
		return true
	})
	if rowEdges != 1 {
		t.Fatalf("row-axis RR edges = %d", rowEdges)
	}
}

func TestFillDownPanicsOnNonFormula(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s := NewSheet("t")
	s.SetValue(ref.MustCell("A1"), 1)
	s.FillDown(ref.MustCell("A1"), 5)
}

func TestCorpusDeterminism(t *testing.T) {
	a := Generate(EnronSpec(0.1))
	b := Generate(EnronSpec(0.1))
	if len(a) != len(b) {
		t.Fatalf("sheet counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		da, db := a[i].MustDependencies(), b[i].MustDependencies()
		if len(da) != len(db) {
			t.Fatalf("sheet %d: %d vs %d deps", i, len(da), len(db))
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("sheet %d dep %d differs", i, j)
			}
		}
	}
}

func TestCorpusShape(t *testing.T) {
	sheets := Generate(GithubSpec(0.1))
	if len(sheets) < 6 {
		t.Fatalf("sheets = %d", len(sheets))
	}
	totalDeps := 0
	ratioSum := 0.0
	for _, s := range sheets {
		deps := s.MustDependencies()
		if len(deps) == 0 {
			t.Fatalf("sheet %s has no dependencies", s.Name)
		}
		totalDeps += len(deps)
		g := core.Build(deps, core.DefaultOptions())
		ratioSum += float64(g.NumEdges()) / float64(len(deps))
	}
	avgRatio := ratioSum / float64(len(sheets))
	// The paper's TACO-Full mean remaining-edge fraction is 3.4-7.4%; the
	// synthetic corpus should land in the same order of magnitude.
	if avgRatio > 0.25 {
		t.Fatalf("average remaining edge fraction %.2f too high — corpus lacks tabular locality", avgRatio)
	}
	if totalDeps < 1000 {
		t.Fatalf("corpus too small: %d deps", totalDeps)
	}
}

func TestMetrics(t *testing.T) {
	s := NewSheet("t")
	rng := rand.New(rand.NewSource(3))
	s.AddDataColumn(1, 30, rng)
	s.AddChain(2, 1, 30)
	deps := s.MustDependencies()
	m := Metrics(deps)
	// The chain gives a path of ~30 edges and the top cells reach everything.
	if m.LongestPath < 25 {
		t.Fatalf("longest path = %d", m.LongestPath)
	}
	if m.MaxDependents < 29 {
		t.Fatalf("max dependents = %d", m.MaxDependents)
	}
	// The max-dependents seed must actually attain the count.
	g := nocomp.Build(deps)
	n := core.CountCells(g.FindDependents(ref.CellRange(m.MaxDependentsCell)))
	if n != m.MaxDependents {
		t.Fatalf("seed %v yields %d, recorded %d", m.MaxDependentsCell, n, m.MaxDependents)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := Metrics(nil)
	if m.MaxDependents != 0 || m.LongestPath != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestMessyRegionProducesSingles(t *testing.T) {
	s := NewSheet("t")
	rng := rand.New(rand.NewSource(9))
	s.AddDataColumn(1, 50, rng)
	s.AddMessyRegion(2, 50, 25, 1, rng)
	g := core.Build(s.MustDependencies(), core.DefaultOptions())
	st := g.PatternStats()
	if st[core.Single].Edges == 0 {
		t.Fatalf("stats = %+v, want Single edges from messy region", st)
	}
}

func TestSheetAccessors(t *testing.T) {
	s := NewSheet("t")
	s.SetText(ref.MustCell("A1"), "hello")
	s.SetValue(ref.MustCell("A2"), 4)
	s.SetFormula(ref.MustCell("A3"), "A2*2")
	if s.NumFormulas() != 1 {
		t.Fatalf("formulas = %d", s.NumFormulas())
	}
	if !s.Cells[ref.MustCell("A3")].IsFormula() || s.Cells[ref.MustCell("A1")].IsFormula() {
		t.Fatal("IsFormula wrong")
	}
}

func TestDependenciesParseError(t *testing.T) {
	s := NewSheet("t")
	s.SetFormula(ref.MustCell("A1"), "SUM(")
	if _, err := s.Dependencies(); err == nil {
		t.Fatal("want parse error")
	}
}
