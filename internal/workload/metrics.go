package workload

import (
	"taco/internal/core"
	"taco/internal/nocomp"
	"taco/internal/ref"
	"taco/internal/rtree"
)

// This file computes the per-sheet structural metrics of the paper's Fig. 1:
// the maximum number of dependents of any single cell and the longest path
// in the formula graph, plus helpers for locating the cells that attain them
// (the Maximum Dependents and Longest Path query cases of Sec. VI-C).

// SheetMetrics summarises the formula graph of one sheet.
type SheetMetrics struct {
	// MaxDependents is the largest transitive dependent count of any root
	// cell, and MaxDependentsCell attains it.
	MaxDependents     int
	MaxDependentsCell ref.Ref
	// LongestPath is the largest number of edges on any dependency path,
	// and LongestPathCell is the root from which it starts.
	LongestPath     int
	LongestPathCell ref.Ref
}

// Metrics computes SheetMetrics from the dependency list. Roots — cells that
// appear in precedent ranges but have no dependencies of their own — seed
// both searches; for dependents, the NoComp graph supplies the transitive
// closure.
func Metrics(deps []core.Dependency) SheetMetrics {
	var m SheetMetrics
	if len(deps) == 0 {
		return m
	}

	formulaCells := make(map[ref.Ref]bool, len(deps))
	for _, d := range deps {
		formulaCells[d.Dep] = true
	}

	// Longest path via memoised DFS over formula cells: depth(c) = 1 + max
	// depth over the formula cells inside the precedents of c (data cells
	// have depth 0).
	byDep := make(map[ref.Ref][]core.Dependency, len(deps))
	for _, d := range deps {
		byDep[d.Dep] = append(byDep[d.Dep], d)
	}
	cellIndex := rtree.New[ref.Ref]()
	for c := range formulaCells {
		cellIndex.Insert(ref.CellRange(c), c)
	}
	depth := make(map[ref.Ref]int, len(formulaCells))
	var depthOf func(c ref.Ref) int
	depthOf = func(c ref.Ref) int {
		if v, ok := depth[c]; ok {
			return v
		}
		depth[c] = 0 // cycle guard; workloads are DAGs
		best := 1
		for _, d := range byDep[c] {
			// The edge itself contributes one step; extend through formula
			// cells inside the precedent.
			cellIndex.Search(d.Prec, func(_ ref.Range, p ref.Ref) bool {
				if v := depthOf(p) + 1; v > best {
					best = v
				}
				return true
			})
		}
		depth[c] = best
		return best
	}
	for c := range formulaCells {
		if d := depthOf(c); d > m.LongestPath {
			m.LongestPath = d
			m.LongestPathCell = c
		}
	}
	// The query seed is the *root* of the longest path (the paper queries
	// from the cell whose update triggers the longest recalculation chain):
	// walk back from the deepest cell through precedents of strictly
	// decreasing depth until the path starts at a data cell.
	cur := m.LongestPathCell
	for cur.Valid() {
		var next ref.Ref
		found := false
		for _, d := range byDep[cur] {
			cellIndex.Search(d.Prec, func(_ ref.Range, p ref.Ref) bool {
				if depth[p] == depth[cur]-1 {
					next = p
					found = true
					return false
				}
				return true
			})
			if found {
				break
			}
		}
		if !found {
			// The path head: seed from this cell's first data precedent.
			if dlist := byDep[cur]; len(dlist) > 0 {
				m.LongestPathCell = dlist[0].Prec.Head
			} else {
				m.LongestPathCell = cur
			}
			break
		}
		cur = next
	}

	// Maximum dependents: evaluate the transitive dependent count from data
	// roots (precedent heads that are not formula cells). Trying every root
	// is quadratic on large sheets, so when there are many we take a
	// deterministic stride sample biased toward the top rows, where the
	// widest fan-outs (running totals, chains) start.
	g := nocomp.Build(deps)
	rootSet := map[ref.Ref]bool{}
	for _, d := range deps {
		if seed := d.Prec.Head; !formulaCells[seed] {
			rootSet[seed] = true
		}
	}
	roots := make([]ref.Ref, 0, len(rootSet))
	for c := range rootSet {
		roots = append(roots, c)
	}
	sortColumnMajor(roots)
	const maxProbes = 64
	if len(roots) > maxProbes {
		sampled := make([]ref.Ref, 0, maxProbes)
		// Always include the first few roots of each column.
		lastCol, taken := -1, 0
		for _, c := range roots {
			if c.Col != lastCol {
				lastCol, taken = c.Col, 0
			}
			if taken < 3 {
				sampled = append(sampled, c)
				taken++
			}
		}
		stride := len(roots) / (maxProbes - len(sampled) + 1)
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(roots) && len(sampled) < maxProbes; i += stride {
			sampled = append(sampled, roots[i])
		}
		roots = sampled
	}
	for _, seed := range roots {
		n := core.CountCells(g.FindDependents(ref.CellRange(seed)))
		if n > m.MaxDependents {
			m.MaxDependents = n
			m.MaxDependentsCell = seed
		}
	}
	return m
}
