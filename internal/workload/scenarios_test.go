package workload

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/ref"
)

func buildScenario(t *testing.T, name string, n int) (*Sheet, *core.Graph) {
	t.Helper()
	s, err := BuildScenario(name, n, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	deps := s.MustDependencies()
	if len(deps) == 0 {
		t.Fatalf("%s: no dependencies", name)
	}
	return s, core.Build(deps, core.DefaultOptions())
}

func TestFinancialModelCompresses(t *testing.T) {
	_, g := buildScenario(t, "financial", 48)
	st := g.PatternStats()
	// Margin column (RR), cumulative (FR), after-tax (RR + FF), rolling (RR).
	if st[core.RR].Edges < 2 || st[core.FR].Edges < 1 || st[core.FF].Edges < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if g.NumEdges() > 10 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInventoryTrackerHasChain(t *testing.T) {
	_, g := buildScenario(t, "inventory", 120)
	st := g.PatternStats()
	if st[core.RRChain].Edges < 1 {
		t.Fatalf("no chain: %+v", st)
	}
	// Editing day 1's receipts dirties the whole stock column.
	got := core.CountCells(g.FindDependents(ref.MustRange("B1")))
	if got < 2*120-2 {
		t.Fatalf("dependents of B1 = %d", got)
	}
}

func TestGradebookLookups(t *testing.T) {
	_, g := buildScenario(t, "gradebook", 60)
	st := g.PatternStats()
	if st[core.FF].Edges < 2 { // curve denominator + VLOOKUP scale
		t.Fatalf("stats = %+v", st)
	}
	// The grade scale is a shared precedent: editing it touches all grades.
	got := core.CountCells(g.FindDependents(ref.MustRange("J1:K4")))
	if got < 60 {
		t.Fatalf("dependents of the scale = %d", got)
	}
}

func TestPlanningBudgetRowAxis(t *testing.T) {
	_, g := buildScenario(t, "planning", 24)
	rowEdges := 0
	g.Edges(func(e *core.Edge) bool {
		if e.Pattern != core.Single && e.Axis == ref.AxisRow {
			rowEdges++
		}
		return true
	})
	if rowEdges < 2 {
		t.Fatalf("row-axis edges = %d", rowEdges)
	}
	// The budget chain propagates: Q1 actuals edit reaches later variances.
	got := core.CountCells(g.FindDependents(ref.MustRange("A3")))
	if got < 24 {
		t.Fatalf("dependents of A3 = %d", got)
	}
}

func TestBuildScenarioUnknown(t *testing.T) {
	if _, err := BuildScenario("nope", 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error")
	}
}

func TestScenariosEvaluate(t *testing.T) {
	// Every scenario's formulae must evaluate without #NAME?/#VALUE! noise.
	for _, name := range ScenarioNames {
		s, err := BuildScenario(name, 20, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		deps := s.MustDependencies()
		_ = deps
		// Spot-check via the formula evaluator through a simple resolver.
		// (Full evaluation happens in the engine tests; here we just parse.)
		for at, c := range s.Cells {
			if c.IsFormula() {
				if _, err := s.Dependencies(); err != nil {
					t.Fatalf("%s %v: %v", name, at, err)
				}
				break
			}
		}
	}
}
