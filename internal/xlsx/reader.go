package xlsx

import (
	"archive/zip"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"path"
	"strconv"
	"strings"

	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

// ReadFile opens an .xlsx file and returns its sheets.
func ReadFile(name string) ([]*workload.Sheet, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data), int64(len(data)))
}

// Read parses an xlsx package from r.
func Read(r io.ReaderAt, size int64) ([]*workload.Sheet, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("xlsx: not a zip package: %w", err)
	}
	parts := map[string]*zip.File{}
	for _, f := range zr.File {
		parts[f.Name] = f
	}

	sharedStrings, err := readSharedStrings(parts["xl/sharedStrings.xml"])
	if err != nil {
		return nil, err
	}
	names, targets, err := readWorkbook(parts)
	if err != nil {
		return nil, err
	}

	var sheets []*workload.Sheet
	for i, target := range targets {
		f := parts[target]
		if f == nil {
			return nil, fmt.Errorf("xlsx: missing worksheet part %s", target)
		}
		s, err := readSheet(f, names[i], sharedStrings)
		if err != nil {
			return nil, fmt.Errorf("xlsx: sheet %s: %w", names[i], err)
		}
		sheets = append(sheets, s)
	}
	return sheets, nil
}

// readWorkbook resolves sheet names and their worksheet part paths via the
// workbook relationships.
func readWorkbook(parts map[string]*zip.File) (names, targets []string, err error) {
	type relXML struct {
		ID     string `xml:"Id,attr"`
		Target string `xml:"Target,attr"`
	}
	rels := map[string]string{}
	if f := parts["xl/_rels/workbook.xml.rels"]; f != nil {
		var doc struct {
			Rels []relXML `xml:"Relationship"`
		}
		if err := decodePart(f, &doc); err != nil {
			return nil, nil, err
		}
		for _, rel := range doc.Rels {
			rels[rel.ID] = path.Join("xl", rel.Target)
		}
	}
	wb := parts["xl/workbook.xml"]
	if wb == nil {
		return nil, nil, fmt.Errorf("xlsx: missing xl/workbook.xml")
	}
	var doc struct {
		Sheets []struct {
			Name string `xml:"name,attr"`
			RID  string `xml:"id,attr"`
		} `xml:"sheets>sheet"`
	}
	if err := decodePart(wb, &doc); err != nil {
		return nil, nil, err
	}
	for i, sh := range doc.Sheets {
		target := rels[sh.RID]
		if target == "" {
			// Fall back to positional naming used by many writers.
			target = fmt.Sprintf("xl/worksheets/sheet%d.xml", i+1)
		}
		names = append(names, sh.Name)
		targets = append(targets, target)
	}
	return names, targets, nil
}

func readSharedStrings(f *zip.File) ([]string, error) {
	if f == nil {
		return nil, nil
	}
	var doc struct {
		SI []struct {
			T string `xml:"t"`
			R []struct {
				T string `xml:"t"`
			} `xml:"r"`
		} `xml:"si"`
	}
	if err := decodePart(f, &doc); err != nil {
		return nil, err
	}
	out := make([]string, len(doc.SI))
	for i, si := range doc.SI {
		if si.T != "" {
			out[i] = si.T
			continue
		}
		// Rich-text runs concatenate.
		var sb strings.Builder
		for _, run := range si.R {
			sb.WriteString(run.T)
		}
		out[i] = sb.String()
	}
	return out, nil
}

// xmlCell mirrors the <c> element.
type xmlCell struct {
	R string `xml:"r,attr"`
	T string `xml:"t,attr"`
	V string `xml:"v"`
	F *struct {
		T    string `xml:"t,attr"`
		Ref  string `xml:"ref,attr"`
		SI   string `xml:"si,attr"`
		Body string `xml:",chardata"`
	} `xml:"f"`
	IS *struct {
		T string `xml:"t"`
	} `xml:"is"`
}

func readSheet(f *zip.File, name string, sharedStrings []string) (*workload.Sheet, error) {
	var doc struct {
		Rows []struct {
			Cells []xmlCell `xml:"c"`
		} `xml:"sheetData>row"`
	}
	if err := decodePart(f, &doc); err != nil {
		return nil, err
	}
	s := workload.NewSheet(name)
	type master struct {
		at  ref.Ref
		ast formula.Node
	}
	sharedMasters := map[string]master{}

	for _, row := range doc.Rows {
		for _, c := range row.Cells {
			at, err := ref.ParseA1(c.R)
			if err != nil {
				return nil, fmt.Errorf("bad cell ref %q: %w", c.R, err)
			}
			if c.F != nil {
				src := strings.TrimSpace(c.F.Body)
				switch {
				case c.F.T == "shared" && src != "":
					// Master cell of a shared formula group.
					ast, err := formula.Parse(src)
					if err != nil {
						return nil, fmt.Errorf("cell %s: %w", c.R, err)
					}
					sharedMasters[c.F.SI] = master{at: at, ast: ast}
					s.SetFormula(at, src)
				case c.F.T == "shared":
					m, ok := sharedMasters[c.F.SI]
					if !ok {
						return nil, fmt.Errorf("cell %s: shared formula si=%s has no master", c.R, c.F.SI)
					}
					shifted := formula.Shift(m.ast, at.Col-m.at.Col, at.Row-m.at.Row)
					s.SetFormula(at, formula.Text(shifted))
				case src != "":
					s.SetFormula(at, src)
				}
				continue
			}
			switch c.T {
			case "s":
				idx, err := strconv.Atoi(strings.TrimSpace(c.V))
				if err != nil || idx < 0 || idx >= len(sharedStrings) {
					return nil, fmt.Errorf("cell %s: bad shared string index %q", c.R, c.V)
				}
				s.SetText(at, sharedStrings[idx])
			case "inlineStr":
				if c.IS != nil {
					s.SetText(at, c.IS.T)
				}
			case "b":
				s.Cells[at] = workload.Cell{Value: formula.Boolean(strings.TrimSpace(c.V) == "1")}
			case "str":
				s.SetText(at, c.V)
			default: // numeric (or blank)
				v := strings.TrimSpace(c.V)
				if v == "" {
					continue
				}
				num, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("cell %s: bad number %q", c.R, c.V)
				}
				s.SetValue(at, num)
			}
		}
	}
	return s, nil
}

func decodePart(f *zip.File, v any) error {
	rc, err := f.Open()
	if err != nil {
		return fmt.Errorf("xlsx: open %s: %w", f.Name, err)
	}
	defer rc.Close()
	dec := xml.NewDecoder(rc)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("xlsx: parse %s: %w", f.Name, err)
	}
	return nil
}

// WriteFile serialises sheets to the named .xlsx file.
func WriteFile(name string, sheets []*workload.Sheet, opts WriteOptions) error {
	var buf bytes.Buffer
	if err := Write(&buf, sheets, opts); err != nil {
		return err
	}
	return os.WriteFile(name, buf.Bytes(), 0o644)
}
