package xlsx

import (
	"archive/zip"
	"bytes"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// buildPackage assembles an xlsx zip from raw part bodies, letting tests
// exercise reader tolerance for files written by other producers.
func buildPackage(t *testing.T, parts map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for name, body := range parts {
		w, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const minimalWorkbook = `<?xml version="1.0"?>
<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheets><sheet name="S1" sheetId="1" r:id="rId1" xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/relationships"/></sheets>
</workbook>`

func TestReaderFallsBackWithoutRels(t *testing.T) {
	// No workbook.xml.rels: the reader falls back to positional sheet paths.
	data := buildPackage(t, map[string]string{
		"xl/workbook.xml": minimalWorkbook,
		"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1"><c r="A1"><v>42</v></c></row></sheetData></worksheet>`,
	})
	sheets, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(sheets) != 1 || sheets[0].Name != "S1" {
		t.Fatalf("sheets = %v", sheets)
	}
	if v := sheets[0].Cells[ref.MustCell("A1")].Value; v.Num != 42 {
		t.Fatalf("A1 = %v", v)
	}
}

func TestReaderInlineStrings(t *testing.T) {
	data := buildPackage(t, map[string]string{
		"xl/workbook.xml": minimalWorkbook,
		"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1">
<c r="A1" t="inlineStr"><is><t>hello inline</t></is></c>
<c r="B1" t="str"><v>formula-cached-text</v></c>
</row></sheetData></worksheet>`,
	})
	sheets, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	s := sheets[0]
	if s.Cells[ref.MustCell("A1")].Value.Str != "hello inline" {
		t.Fatalf("A1 = %+v", s.Cells[ref.MustCell("A1")])
	}
	if s.Cells[ref.MustCell("B1")].Value.Str != "formula-cached-text" {
		t.Fatalf("B1 = %+v", s.Cells[ref.MustCell("B1")])
	}
}

func TestReaderRichTextSharedStrings(t *testing.T) {
	data := buildPackage(t, map[string]string{
		"xl/workbook.xml": minimalWorkbook,
		"xl/sharedStrings.xml": `<?xml version="1.0"?>
<sst xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main" count="1" uniqueCount="1">
<si><r><t>rich </t></r><r><t>text</t></r></si></sst>`,
		"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1"><c r="A1" t="s"><v>0</v></c></row></sheetData></worksheet>`,
	})
	sheets, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got := sheets[0].Cells[ref.MustCell("A1")].Value.Str; got != "rich text" {
		t.Fatalf("rich text = %q", got)
	}
}

func TestReaderSkipsEmptyAndUnknownCells(t *testing.T) {
	data := buildPackage(t, map[string]string{
		"xl/workbook.xml": minimalWorkbook,
		"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1">
<c r="A1"/>
<c r="B1"><v>7</v></c>
</row></sheetData></worksheet>`,
	})
	sheets, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if _, present := sheets[0].Cells[ref.MustCell("A1")]; present {
		t.Fatal("empty cell should be skipped")
	}
	if sheets[0].Cells[ref.MustCell("B1")].Value.Num != 7 {
		t.Fatal("numeric cell lost")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]map[string]string{
		"missing workbook": {
			"xl/worksheets/sheet1.xml": `<worksheet/>`,
		},
		"missing worksheet part": {
			"xl/workbook.xml": minimalWorkbook,
		},
		"bad shared string index": {
			"xl/workbook.xml": minimalWorkbook,
			"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1"><c r="A1" t="s"><v>99</v></c></row></sheetData></worksheet>`,
		},
		"bad cell reference": {
			"xl/workbook.xml": minimalWorkbook,
			"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1"><c r="NOT-A-REF"><v>1</v></c></row></sheetData></worksheet>`,
		},
		"orphan shared formula": {
			"xl/workbook.xml": minimalWorkbook,
			"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1"><c r="A1"><f t="shared" si="9"/></c></row></sheetData></worksheet>`,
		},
		"bad number": {
			"xl/workbook.xml": minimalWorkbook,
			"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1"><c r="A1"><v>abc</v></c></row></sheetData></worksheet>`,
		},
	}
	for name, parts := range cases {
		data := buildPackage(t, parts)
		if _, err := Read(bytes.NewReader(data), int64(len(data))); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReaderBooleanCells(t *testing.T) {
	data := buildPackage(t, map[string]string{
		"xl/workbook.xml": minimalWorkbook,
		"xl/worksheets/sheet1.xml": `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData><row r="1">
<c r="A1" t="b"><v>1</v></c><c r="B1" t="b"><v>0</v></c>
</row></sheetData></worksheet>`,
	})
	sheets, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	a := sheets[0].Cells[ref.MustCell("A1")].Value
	b := sheets[0].Cells[ref.MustCell("B1")].Value
	if a.Kind != formula.KindBool || !a.Bool || b.Kind != formula.KindBool || b.Bool {
		t.Fatalf("bools = %v %v", a, b)
	}
}
