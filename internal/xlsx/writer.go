// Package xlsx reads and writes Office Open XML spreadsheets (.xlsx) using
// only the standard library (archive/zip + encoding/xml). It plays the role
// Apache POI plays in the paper's prototype: turning spreadsheet files into
// a stream of (cell, value/formula) pairs for the formula-graph builders,
// and generating synthetic corpus files.
//
// The subset implemented covers what formula graphs need: numeric, boolean,
// shared-string and inline-string cell values, formula cells, and shared
// formulas (<f t="shared">), which the reader expands using the same
// relative/absolute shifting rules as autofill. Styling, charts, and other
// parts are ignored on read and omitted on write.
package xlsx

import (
	"archive/zip"
	"fmt"
	"io"
	"sort"
	"strings"

	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

// WriteOptions configures the writer.
type WriteOptions struct {
	// SharedFormulas groups vertical runs of autofill-equivalent formulae
	// into <f t="shared"> master/slave cells, the on-disk dedup Excel itself
	// performs. The reader expands them back.
	SharedFormulas bool
}

// Write serialises the sheets into an xlsx package on w.
func Write(w io.Writer, sheets []*workload.Sheet, opts WriteOptions) error {
	zw := zip.NewWriter(w)

	var strTable []string
	strIndex := map[string]int{}
	intern := func(s string) int {
		if i, ok := strIndex[s]; ok {
			return i
		}
		strIndex[s] = len(strTable)
		strTable = append(strTable, s)
		return len(strTable) - 1
	}

	sheetXMLs := make([]string, len(sheets))
	for i, s := range sheets {
		sheetXMLs[i] = sheetXML(s, intern, opts)
	}

	files := []struct{ name, body string }{
		{"[Content_Types].xml", contentTypesXML(len(sheets))},
		{"_rels/.rels", relsXML},
		{"xl/workbook.xml", workbookXML(sheets)},
		{"xl/_rels/workbook.xml.rels", workbookRelsXML(len(sheets))},
		{"xl/sharedStrings.xml", sharedStringsXML(strTable)},
	}
	for i, body := range sheetXMLs {
		files = append(files, struct{ name, body string }{
			fmt.Sprintf("xl/worksheets/sheet%d.xml", i+1), body,
		})
	}
	for _, f := range files {
		fw, err := zw.Create(f.name)
		if err != nil {
			return fmt.Errorf("xlsx: create %s: %w", f.name, err)
		}
		if _, err := io.WriteString(fw, f.body); err != nil {
			return fmt.Errorf("xlsx: write %s: %w", f.name, err)
		}
	}
	return zw.Close()
}

func contentTypesXML(nSheets int) string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>` + "\n")
	sb.WriteString(`<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">`)
	sb.WriteString(`<Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>`)
	sb.WriteString(`<Default Extension="xml" ContentType="application/xml"/>`)
	sb.WriteString(`<Override PartName="/xl/workbook.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml"/>`)
	sb.WriteString(`<Override PartName="/xl/sharedStrings.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.sharedStrings+xml"/>`)
	for i := 1; i <= nSheets; i++ {
		fmt.Fprintf(&sb, `<Override PartName="/xl/worksheets/sheet%d.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.worksheet+xml"/>`, i)
	}
	sb.WriteString(`</Types>`)
	return sb.String()
}

const relsXML = `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships"><Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="xl/workbook.xml"/></Relationships>`

func workbookXML(sheets []*workload.Sheet) string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>` + "\n")
	sb.WriteString(`<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main" xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/relationships"><sheets>`)
	for i, s := range sheets {
		fmt.Fprintf(&sb, `<sheet name="%s" sheetId="%d" r:id="rId%d"/>`, xmlEscape(s.Name), i+1, i+1)
	}
	sb.WriteString(`</sheets></workbook>`)
	return sb.String()
}

func workbookRelsXML(nSheets int) string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>` + "\n")
	sb.WriteString(`<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">`)
	for i := 1; i <= nSheets; i++ {
		fmt.Fprintf(&sb, `<Relationship Id="rId%d" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/worksheet" Target="worksheets/sheet%d.xml"/>`, i, i)
	}
	fmt.Fprintf(&sb, `<Relationship Id="rId%d" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/sharedStrings" Target="sharedStrings.xml"/>`, nSheets+1)
	sb.WriteString(`</Relationships>`)
	return sb.String()
}

func sharedStringsXML(table []string) string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>` + "\n")
	fmt.Fprintf(&sb, `<sst xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main" count="%d" uniqueCount="%d">`, len(table), len(table))
	for _, s := range table {
		sb.WriteString(`<si><t>`)
		sb.WriteString(xmlEscape(s))
		sb.WriteString(`</t></si>`)
	}
	sb.WriteString(`</sst>`)
	return sb.String()
}

// sharedRun describes a detected shared-formula run in one column.
type sharedRun struct {
	si       int
	master   ref.Ref
	lastRow  int
	masterFx string
}

func sheetXML(s *workload.Sheet, intern func(string) int, opts WriteOptions) string {
	// Organise cells row-major for the sheetData layout.
	byRow := map[int][]ref.Ref{}
	var rows []int
	for at := range s.Cells {
		if len(byRow[at.Row]) == 0 {
			rows = append(rows, at.Row)
		}
		byRow[at.Row] = append(byRow[at.Row], at)
	}
	sort.Ints(rows)

	shared := map[ref.Ref]*sharedRun{} // master and member cells -> run
	if opts.SharedFormulas {
		detectSharedRuns(s, shared)
	}

	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>` + "\n")
	sb.WriteString(`<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main"><sheetData>`)
	for _, rowIdx := range rows {
		cells := byRow[rowIdx]
		sort.Slice(cells, func(i, j int) bool { return cells[i].Col < cells[j].Col })
		fmt.Fprintf(&sb, `<row r="%d">`, rowIdx)
		for _, at := range cells {
			writeCell(&sb, s, at, intern, shared)
		}
		sb.WriteString(`</row>`)
	}
	sb.WriteString(`</sheetData></worksheet>`)
	return sb.String()
}

// detectSharedRuns finds maximal vertical runs where each formula equals the
// master shifted by its row offset — the dedup Excel stores via pointers to
// the first formula [CellFormula docs].
func detectSharedRuns(s *workload.Sheet, shared map[ref.Ref]*sharedRun) {
	byCol := map[int][]ref.Ref{}
	for at, c := range s.Cells {
		if c.IsFormula() {
			byCol[at.Col] = append(byCol[at.Col], at)
		}
	}
	nextSI := 0
	for _, cells := range byCol {
		sort.Slice(cells, func(i, j int) bool { return cells[i].Row < cells[j].Row })
		i := 0
		for i < len(cells) {
			master := cells[i]
			masterAst, err := formula.Parse(s.Cells[master].Formula)
			if err != nil {
				i++
				continue
			}
			canonical := formula.Text(masterAst)
			j := i + 1
			for j < len(cells) && cells[j].Row == cells[j-1].Row+1 {
				want := formula.Text(formula.Shift(masterAst, 0, cells[j].Row-master.Row))
				got, err := formula.Parse(s.Cells[cells[j]].Formula)
				if err != nil || formula.Text(got) != want {
					break
				}
				j++
			}
			if j-i >= 2 {
				run := &sharedRun{si: nextSI, master: master, lastRow: cells[j-1].Row, masterFx: canonical}
				nextSI++
				for k := i; k < j; k++ {
					shared[cells[k]] = run
				}
			}
			i = j
		}
	}
}

func writeCell(sb *strings.Builder, s *workload.Sheet, at ref.Ref, intern func(string) int, shared map[ref.Ref]*sharedRun) {
	c := s.Cells[at]
	a1 := ref.FormatA1(at)
	if c.IsFormula() {
		if run, ok := shared[at]; ok {
			if run.master == at {
				fmt.Fprintf(sb, `<c r="%s"><f t="shared" ref="%s:%s" si="%d">%s</f></c>`,
					a1, ref.FormatA1(run.master), ref.FormatA1(ref.Ref{Col: at.Col, Row: run.lastRow}),
					run.si, xmlEscape(run.masterFx))
			} else {
				fmt.Fprintf(sb, `<c r="%s"><f t="shared" si="%d"/></c>`, a1, run.si)
			}
			return
		}
		fmt.Fprintf(sb, `<c r="%s"><f>%s</f></c>`, a1, xmlEscape(c.Formula))
		return
	}
	switch c.Value.Kind {
	case formula.KindNumber:
		fmt.Fprintf(sb, `<c r="%s"><v>%s</v></c>`, a1, c.Value.String())
	case formula.KindString:
		fmt.Fprintf(sb, `<c r="%s" t="s"><v>%d</v></c>`, a1, intern(c.Value.Str))
	case formula.KindBool:
		v := "0"
		if c.Value.Bool {
			v = "1"
		}
		fmt.Fprintf(sb, `<c r="%s" t="b"><v>%s</v></c>`, a1, v)
	default:
		fmt.Fprintf(sb, `<c r="%s"/>`, a1)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}
