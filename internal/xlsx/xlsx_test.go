package xlsx

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

func roundTrip(t *testing.T, sheets []*workload.Sheet, opts WriteOptions) []*workload.Sheet {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sheets, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundTripValues(t *testing.T) {
	s := workload.NewSheet("values")
	s.SetValue(ref.MustCell("A1"), 42)
	s.SetValue(ref.MustCell("B2"), 3.25)
	s.SetText(ref.MustCell("C3"), "hello <world> & \"friends\"")
	s.SetText(ref.MustCell("C4"), "hello") // duplicate-ish strings intern fine
	s.Cells[ref.MustCell("D1")] = workload.Cell{Value: formula.Boolean(true)}
	s.Cells[ref.MustCell("D2")] = workload.Cell{Value: formula.Boolean(false)}

	got := roundTrip(t, []*workload.Sheet{s}, WriteOptions{})
	if len(got) != 1 || got[0].Name != "values" {
		t.Fatalf("sheets = %v", got)
	}
	g := got[0]
	checks := []struct {
		at   string
		want formula.Value
	}{
		{"A1", formula.Num(42)},
		{"B2", formula.Num(3.25)},
		{"C3", formula.Str("hello <world> & \"friends\"")},
		{"C4", formula.Str("hello")},
		{"D1", formula.Boolean(true)},
		{"D2", formula.Boolean(false)},
	}
	for _, c := range checks {
		cell, ok := g.Cells[ref.MustCell(c.at)]
		if !ok {
			t.Fatalf("missing cell %s", c.at)
		}
		if cell.Value.Kind != c.want.Kind || cell.Value.String() != c.want.String() {
			t.Errorf("%s = %#v, want %#v", c.at, cell.Value, c.want)
		}
	}
}

func TestRoundTripFormulas(t *testing.T) {
	s := workload.NewSheet("formulas")
	s.SetValue(ref.MustCell("A1"), 1)
	s.SetFormula(ref.MustCell("B1"), "SUM(A1:A3)*2")
	s.SetFormula(ref.MustCell("B2"), `IF(A1>0,"pos","neg")`)

	g := roundTrip(t, []*workload.Sheet{s}, WriteOptions{})[0]
	if g.Cells[ref.MustCell("B1")].Formula != "SUM(A1:A3)*2" {
		t.Errorf("B1 = %q", g.Cells[ref.MustCell("B1")].Formula)
	}
	if g.Cells[ref.MustCell("B2")].Formula != `IF(A1>0,"pos","neg")` {
		t.Errorf("B2 = %q", g.Cells[ref.MustCell("B2")].Formula)
	}
}

func TestSharedFormulaRoundTrip(t *testing.T) {
	s := workload.NewSheet("shared")
	rng := rand.New(rand.NewSource(1))
	s.AddDataColumn(1, 30, rng)
	s.AddSlidingWindow(2, 1, 3, 30)
	s.AddRunningTotal(3, 1, 30)

	var buf bytes.Buffer
	if err := Write(&buf, []*workload.Sheet{s}, WriteOptions{SharedFormulas: true}); err != nil {
		t.Fatal(err)
	}
	// The shared encoding must actually be used: the shared file is smaller
	// than the plain one because slave cells omit their formula text.
	var plain bytes.Buffer
	if err := Write(&plain, []*workload.Sheet{s}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= plain.Len() {
		t.Fatalf("shared-formula file (%d bytes) not smaller than plain (%d bytes)", buf.Len(), plain.Len())
	}

	got, err := Read(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	g := got[0]
	// Every formula must expand to the autofill-equivalent text.
	if g.NumFormulas() != s.NumFormulas() {
		t.Fatalf("formulas = %d, want %d", g.NumFormulas(), s.NumFormulas())
	}
	for at, c := range s.Cells {
		if !c.IsFormula() {
			continue
		}
		want := formula.Text(formula.MustParse(c.Formula))
		gotC := g.Cells[at]
		if !gotC.IsFormula() {
			t.Fatalf("cell %v lost its formula", at)
		}
		if formula.Text(formula.MustParse(gotC.Formula)) != want {
			t.Errorf("cell %v: %q, want %q", at, gotC.Formula, want)
		}
	}
	// The dependency graphs must be identical.
	a, b := s.MustDependencies(), g.MustDependencies()
	if len(a) != len(b) {
		t.Fatalf("deps %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dep %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMultiSheet(t *testing.T) {
	a := workload.NewSheet("alpha")
	a.SetValue(ref.MustCell("A1"), 1)
	b := workload.NewSheet("beta")
	b.SetFormula(ref.MustCell("A1"), "1+1")
	got := roundTrip(t, []*workload.Sheet{a, b}, WriteOptions{})
	if len(got) != 2 || got[0].Name != "alpha" || got[1].Name != "beta" {
		t.Fatalf("sheets = %d", len(got))
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "test.xlsx")
	s := workload.NewSheet("disk")
	s.SetValue(ref.MustCell("A1"), 7)
	s.SetFormula(ref.MustCell("B1"), "A1*3")
	if err := WriteFile(name, []*workload.Sheet{s}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Cells[ref.MustCell("B1")].Formula != "A1*3" {
		t.Fatalf("formula lost: %+v", got[0].Cells)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a zip")), 9); err == nil {
		t.Fatal("want error for non-zip input")
	}
}

func TestCorpusThroughXLSX(t *testing.T) {
	// The full pipeline the paper's prototype runs: generate sheets, write
	// xlsx, parse xlsx, extract dependencies, compress. Graph sizes must
	// match the direct path.
	sheets := workload.Generate(workload.CorpusSpec{
		Name: "rt", Sheets: 3, MedianRows: 60, MaxRows: 120, Seed: 77, MessyFraction: 0.1,
	})
	got := roundTrip(t, sheets, WriteOptions{SharedFormulas: true})
	for i := range sheets {
		want := core.Build(sheets[i].MustDependencies(), core.DefaultOptions())
		have := core.Build(got[i].MustDependencies(), core.DefaultOptions())
		if want.NumEdges() != have.NumEdges() || want.NumDependencies() != have.NumDependencies() {
			t.Fatalf("sheet %d: graph (%d,%d) vs (%d,%d)", i,
				want.NumEdges(), want.NumDependencies(), have.NumEdges(), have.NumDependencies())
		}
	}
}
