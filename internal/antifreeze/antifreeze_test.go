package antifreeze

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

func dep(prec, cell string) core.Dependency {
	return core.Dependency{Prec: ref.MustRange(prec), Dep: ref.MustCell(cell)}
}

func cellsOf(rs []ref.Range) map[ref.Ref]bool {
	out := map[ref.Ref]bool{}
	for _, g := range rs {
		g.Cells(func(c ref.Ref) bool {
			out[c] = true
			return true
		})
	}
	return out
}

func TestLookupMatchesClosure(t *testing.T) {
	deps := []core.Dependency{
		dep("A1:A3", "B1"), dep("A1:A3", "B2"), dep("B1", "C1"),
		dep("B3", "C1"), dep("B2:B3", "C2"),
	}
	tbl := Build(deps, 0, nil)
	got := cellsOf(tbl.FindDependents(ref.MustRange("A1")))
	want := cellsOf(nocomp.Build(deps).FindDependents(ref.MustRange("A1")))
	for c := range want {
		if !got[c] {
			t.Errorf("missing dependent %v", c)
		}
	}
}

func TestBoundingRangesIntroduceFalsePositives(t *testing.T) {
	// Dependents scattered across distant cells must collapse into <= 2
	// bounding ranges, over-covering the gaps.
	var deps []core.Dependency
	for i := 0; i < 10; i++ {
		deps = append(deps, core.Dependency{
			Prec: ref.MustRange("A1"),
			Dep:  ref.Ref{Col: 3, Row: 1 + i*10}, // C1, C11, C21, ...
		})
	}
	tbl := Build(deps, 2, nil)
	got := tbl.FindDependents(ref.MustRange("A1"))
	if len(got) > 2 {
		t.Fatalf("ranges = %d, want <= 2", len(got))
	}
	// The true dependents are all covered (superset semantics)...
	covered := cellsOf(got)
	for _, d := range deps {
		if !covered[d.Dep] {
			t.Fatalf("true dependent %v not covered", d.Dep)
		}
	}
	// ...and the compression over-approximates (more cells than truth).
	if core.CountCells(got) <= len(deps) {
		t.Fatalf("expected false positives, got exact cover of %d cells", core.CountCells(got))
	}
}

func TestExactWhenUnderBudget(t *testing.T) {
	deps := []core.Dependency{
		dep("A1", "B1"), dep("A1", "B2"), dep("A1", "B3"),
	}
	tbl := Build(deps, 0, nil)
	got := tbl.FindDependents(ref.MustRange("A1"))
	// Contiguous column cells merge exactly into B1:B3.
	if len(got) != 1 || got[0] != ref.MustRange("B1:B3") {
		t.Fatalf("got %v", got)
	}
}

func TestClearRebuilds(t *testing.T) {
	deps := []core.Dependency{
		dep("A1", "B1"), dep("B1", "C1"),
	}
	tbl := Build(deps, 0, nil)
	if n := core.CountCells(tbl.FindDependents(ref.MustRange("A1"))); n != 2 {
		t.Fatalf("before clear: %d", n)
	}
	tbl.Clear(ref.MustRange("C1"))
	if n := core.CountCells(tbl.FindDependents(ref.MustRange("A1"))); n != 1 {
		t.Fatalf("after clear: %d", n)
	}
}

func TestBudgetAbort(t *testing.T) {
	var deps []core.Dependency
	rng := rand.New(rand.NewSource(1))
	for row := 1; row <= 50; row++ {
		deps = append(deps, core.Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row}),
			Dep:  ref.Ref{Col: 2, Row: row},
		})
	}
	_ = rng
	calls := 0
	tbl := Build(deps, 0, func() bool {
		calls++
		return calls <= 10
	})
	if calls != 11 {
		t.Fatalf("budget calls = %d", calls)
	}
	if tbl.NumEntries() > 10 {
		t.Fatalf("entries after abort = %d", tbl.NumEntries())
	}
}

func TestBuildCostGrowsWithClosure(t *testing.T) {
	// A chain of n cells costs O(n^2) closure work — this is why Antifreeze
	// DNFs in Fig. 13. We only verify the table is complete and correct on a
	// modest chain here.
	var deps []core.Dependency
	n := 60
	for row := 2; row <= n; row++ {
		deps = append(deps, core.Dependency{
			Prec: ref.CellRange(ref.Ref{Col: 1, Row: row - 1}),
			Dep:  ref.Ref{Col: 1, Row: row},
		})
	}
	tbl := Build(deps, 0, nil)
	got := core.CountCells(tbl.FindDependents(ref.CellRange(ref.Ref{Col: 1, Row: 1})))
	if got != n-1 {
		t.Fatalf("chain head dependents = %d, want %d", got, n-1)
	}
}
