// Package antifreeze reimplements the formula-graph compression of the
// Antifreeze system (Bendre et al., SIGMOD 2019), the specialised comparator
// of the paper's Sec. VI-D. Antifreeze precomputes, for every cell, its full
// transitive dependent set, compresses that set into at most K bounding
// ranges (K = 20, as in the original paper), and stores cell -> ranges in a
// look-up table.
//
// Queries are then O(1) table look-ups — as fast as TACO — but at two costs
// the paper measures: building the table requires a transitive closure per
// cell (which is why Antifreeze DNFs on large sheets in Fig. 13), bounding-
// range compression can introduce false positives, and any modification
// rebuilds the table from scratch (Fig. 15).
package antifreeze

import (
	"sort"

	"taco/internal/core"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

// DefaultMaxRanges is the bounding-range budget per cell used by the
// original system.
const DefaultMaxRanges = 20

// Table is the Antifreeze dependent look-up table.
type Table struct {
	maxRanges int
	deps      []core.Dependency
	entries   map[ref.Ref][]ref.Range
}

// Build computes the table for the dependency list. maxRanges <= 0 selects
// DefaultMaxRanges. The budget parameter onBudget, when non-nil, is called
// once per processed cell and may return false to abandon the build (the
// harness uses it to implement the paper's DNF timeout).
func Build(deps []core.Dependency, maxRanges int, onBudget func() bool) *Table {
	if maxRanges <= 0 {
		maxRanges = DefaultMaxRanges
	}
	t := &Table{
		maxRanges: maxRanges,
		deps:      append([]core.Dependency(nil), deps...),
		entries:   make(map[ref.Ref][]ref.Range),
	}
	t.rebuild(onBudget)
	return t
}

// rebuild recomputes the whole look-up table (used on build and after every
// modification, matching the original system's behaviour).
func (t *Table) rebuild(onBudget func() bool) bool {
	t.entries = make(map[ref.Ref][]ref.Range)
	g := nocomp.Build(t.deps)
	// Every cell that can be updated needs an entry: cells referenced by
	// formulae (precedent cells) and formula cells themselves.
	seen := map[ref.Ref]bool{}
	for _, d := range t.deps {
		if !seen[d.Dep] {
			seen[d.Dep] = true
			if !t.addEntry(g, d.Dep, onBudget) {
				return false
			}
		}
		stop := false
		d.Prec.Cells(func(c ref.Ref) bool {
			if !seen[c] {
				seen[c] = true
				if !t.addEntry(g, c, onBudget) {
					stop = true
					return false
				}
			}
			return true
		})
		if stop {
			return false
		}
	}
	return true
}

func (t *Table) addEntry(g *nocomp.Graph, c ref.Ref, onBudget func() bool) bool {
	if onBudget != nil && !onBudget() {
		return false
	}
	dependents := g.FindDependents(ref.CellRange(c))
	if len(dependents) == 0 {
		return true
	}
	t.entries[c] = compressRanges(dependents, t.maxRanges)
	return true
}

// compressRanges reduces a set of single-cell ranges to at most maxRanges
// bounding ranges. First vertically contiguous cells per column are merged
// exactly, then the closest consecutive pair (by wasted bounding area) is
// merged until the budget holds — the lossy step that introduces the false
// positives Sec. I mentions.
func compressRanges(cells []ref.Range, maxRanges int) []ref.Range {
	pts := make([]ref.Ref, 0, len(cells))
	for _, r := range cells {
		pts = append(pts, r.Head)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Col != pts[j].Col {
			return pts[i].Col < pts[j].Col
		}
		return pts[i].Row < pts[j].Row
	})
	var rects []ref.Range
	for _, p := range pts {
		n := len(rects)
		if n > 0 && rects[n-1].Head.Col == p.Col && rects[n-1].Tail.Col == p.Col &&
			rects[n-1].Tail.Row+1 == p.Row {
			rects[n-1].Tail = p
			continue
		}
		rects = append(rects, ref.CellRange(p))
	}
	for len(rects) > maxRanges {
		// Merge the consecutive pair with the least wasted area.
		best, bestWaste := 0, int(^uint(0)>>1)
		for i := 0; i+1 < len(rects); i++ {
			waste := rects[i].Bound(rects[i+1]).Size() - rects[i].Size() - rects[i+1].Size()
			if waste < bestWaste {
				best, bestWaste = i, waste
			}
		}
		rects[best] = rects[best].Bound(rects[best+1])
		rects = append(rects[:best+1], rects[best+2:]...)
	}
	return rects
}

// FindDependents returns the (possibly over-approximated) dependent ranges
// of r via table look-ups.
func (t *Table) FindDependents(r ref.Range) []ref.Range {
	var out []ref.Range
	seen := map[ref.Range]bool{}
	r.Cells(func(c ref.Ref) bool {
		for _, g := range t.entries[c] {
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
		return true
	})
	return out
}

// Clear removes the dependencies of formula cells in s and rebuilds the
// table from scratch, as the original system does.
func (t *Table) Clear(s ref.Range) {
	kept := t.deps[:0]
	for _, d := range t.deps {
		if !s.Contains(d.Dep) {
			kept = append(kept, d)
		}
	}
	t.deps = kept
	t.rebuild(nil)
}

// NumEntries returns the number of table entries (cells with dependents).
func (t *Table) NumEntries() int { return len(t.entries) }
