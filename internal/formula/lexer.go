// Package formula implements the spreadsheet formula language substrate:
// a lexer and recursive-descent parser producing an AST, extraction of the
// cell/range references a formula depends on (including the `$` fixed-versus-
// relative autofill cues the TACO compressor's heuristics consume), and an
// evaluator used by the spreadsheet engine to recalculate cells.
//
// The dialect covers the constructs exercised by the paper's workloads:
// numbers, strings, booleans, cell and range references (with `$` markers),
// arithmetic (+ - * / ^), percent, string concatenation (&), comparisons
// (= <> < > <= >=), parentheses, and function calls (SUM, IF, VLOOKUP, ...).
package formula

import (
	"fmt"
	"strconv"
	"strings"

	"taco/internal/ref"
)

// tokenKind identifies a lexical token class.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent // function name or TRUE/FALSE
	tokCell  // A1-style reference, possibly with $ markers
	tokOp    // single or double character operator
	tokLParen
	tokRParen
	tokComma
	tokColon
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
	// Cell token payload.
	col, row           int
	colFixed, rowFixed bool
}

// ErrSyntax wraps lexical and parse errors.
type ErrSyntax struct {
	Pos int
	Msg string
}

func (e *ErrSyntax) Error() string {
	return fmt.Sprintf("formula: syntax error at offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src string
	pos int
}

func (lx *lexer) errf(pos int, format string, args ...any) error {
	return &ErrSyntax{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t' || lx.src[lx.pos] == '\n' || lx.src[lx.pos] == '\r') {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		return lx.lexNumber()
	case c == '"':
		return lx.lexString()
	case c == '$' || isAlpha(c):
		return lx.lexWord()
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == ':':
		lx.pos++
		return token{kind: tokColon, text: ":", pos: start}, nil
	case c == '<':
		if lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == '=' || lx.src[lx.pos+1] == '>') {
			lx.pos += 2
			return token{kind: tokOp, text: lx.src[start : start+2], pos: start}, nil
		}
		lx.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '+' || c == '-' || c == '*' || c == '/' || c == '^' || c == '&' || c == '=' || c == '%':
		lx.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	default:
		return token{}, lx.errf(start, "unexpected character %q", c)
	}
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c >= '0' && c <= '9':
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, lx.errf(start, "bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: v, pos: start}, nil
}

func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			// Doubled quote is an escaped quote, per spreadsheet convention.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '"' {
				sb.WriteByte('"')
				lx.pos += 2
				continue
			}
			lx.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return token{}, lx.errf(start, "unterminated string")
}

// lexWord scans an identifier or a cell reference. A word like "A1" is a cell
// reference; "SUM" is an identifier; "$B$2" is a cell reference with fixed
// markers. Identifiers may contain digits after the first letter but a pure
// letters+digits word that parses as a valid A1 reference is treated as one
// unless followed by '(' (checked by the parser via lookahead text).
func (lx *lexer) lexWord() (token, error) {
	start := lx.pos
	colFixed := false
	if lx.src[lx.pos] == '$' {
		colFixed = true
		lx.pos++
	}
	letterStart := lx.pos
	for lx.pos < len(lx.src) && isAlpha(lx.src[lx.pos]) {
		lx.pos++
	}
	letters := lx.src[letterStart:lx.pos]
	if letters == "" {
		return token{}, lx.errf(start, "stray '$'")
	}
	rowFixed := false
	digitStart := lx.pos
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '$' {
		rowFixed = true
		lx.pos++
		digitStart = lx.pos
	}
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
	}
	digits := lx.src[digitStart:lx.pos]

	if digits != "" && len(letters) <= 3 {
		col := colIndex(letters)
		// Atoi's overflow error matters: it clamps to MaxInt64, and a
		// near-MaxInt coordinate would wrap range iteration downstream.
		// Out-of-bound rows fall through to identifier handling.
		row, rowErr := strconv.Atoi(digits)
		if rowErr == nil && col > 0 && row > 0 && row <= ref.MaxA1Row {
			// Peek: if the next non-space char is '(', this is a function
			// call like LOG10( — treat as identifier instead.
			p := lx.pos
			for p < len(lx.src) && lx.src[p] == ' ' {
				p++
			}
			if !(p < len(lx.src) && lx.src[p] == '(') {
				return token{
					kind: tokCell, text: lx.src[start:lx.pos], pos: start,
					col: col, row: row, colFixed: colFixed, rowFixed: rowFixed,
				}, nil
			}
		}
	}
	if colFixed || rowFixed {
		return token{}, lx.errf(start, "invalid reference %q", lx.src[start:lx.pos])
	}
	// Identifier: letters already consumed; also absorb trailing digits and
	// underscores/dots (e.g. LOG10, NORM.DIST).
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if isAlpha(c) || c >= '0' && c <= '9' || c == '_' || c == '.' {
			lx.pos++
		} else {
			break
		}
	}
	return token{kind: tokIdent, text: strings.ToUpper(lx.src[start:lx.pos]), pos: start}, nil
}

func isAlpha(c byte) bool { return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' }

func colIndex(name string) int {
	col := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c < 'A' || c > 'Z' {
			return 0
		}
		col = col*26 + int(c-'A'+1)
	}
	return col
}
