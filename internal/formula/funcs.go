package formula

import (
	"math"
	"sort"
	"strings"

	"taco/internal/ref"
)

// evalCallExt dispatches the extended function library: statistics, lookup,
// text, and information functions beyond the core set in eval.go. Unknown
// names yield #NAME?, matching spreadsheet behaviour.
func evalCallExt(name string, args []arg, res Resolver) Value {
	switch name {
	// --- Math ---------------------------------------------------------
	case "FLOOR", "CEILING":
		return evalFloorCeiling(name, args)
	case "TRUNC":
		if len(args) < 1 || len(args) > 2 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		digits := 0.0
		if len(args) == 2 {
			digits, ok = args[1].scalar.AsNumber()
			if !ok {
				return Errorf("#VALUE!")
			}
		}
		scale := math.Pow(10, digits)
		return Num(math.Trunc(f*scale) / scale)
	case "SIGN":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		switch {
		case f > 0:
			return Num(1)
		case f < 0:
			return Num(-1)
		default:
			return Num(0)
		}
	case "LOG":
		if len(args) < 1 || len(args) > 2 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		base := 10.0
		if len(args) == 2 {
			base, ok = args[1].scalar.AsNumber()
			if !ok {
				return Errorf("#VALUE!")
			}
		}
		if f <= 0 || base <= 0 || base == 1 {
			return Errorf("#NUM!")
		}
		return Num(math.Log(f) / math.Log(base))
	case "LOG10":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		if f <= 0 {
			return Errorf("#NUM!")
		}
		return Num(math.Log10(f))
	case "PI":
		if len(args) != 0 {
			return Errorf("#N/A")
		}
		return Num(math.Pi)
	case "SUMSQ":
		return aggregateInit(args, res, 0, func(acc, v float64) float64 { return acc + v*v })
	case "SUMPRODUCT":
		return evalSumProduct(args, res)

	// --- Statistics ----------------------------------------------------
	case "MEDIAN":
		xs := collectNumbers(args, res)
		if errv, ok := xs.err(); ok {
			return errv
		}
		if len(xs.vals) == 0 {
			return Errorf("#NUM!")
		}
		sort.Float64s(xs.vals)
		n := len(xs.vals)
		if n%2 == 1 {
			return Num(xs.vals[n/2])
		}
		return Num((xs.vals[n/2-1] + xs.vals[n/2]) / 2)
	case "STDEV", "VAR":
		xs := collectNumbers(args, res)
		if errv, ok := xs.err(); ok {
			return errv
		}
		n := float64(len(xs.vals))
		if n < 2 {
			return Errorf("#DIV/0!")
		}
		mean := 0.0
		for _, v := range xs.vals {
			mean += v
		}
		mean /= n
		ss := 0.0
		for _, v := range xs.vals {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / (n - 1)
		if name == "VAR" {
			return Num(variance)
		}
		return Num(math.Sqrt(variance))
	case "LARGE", "SMALL":
		if len(args) != 2 {
			return Errorf("#N/A")
		}
		xs := collectNumbers(args[:1], res)
		if errv, ok := xs.err(); ok {
			return errv
		}
		kf, ok := args[1].scalar.AsNumber()
		k := int(kf)
		if !ok || k < 1 || k > len(xs.vals) {
			return Errorf("#NUM!")
		}
		sort.Float64s(xs.vals)
		if name == "SMALL" {
			return Num(xs.vals[k-1])
		}
		return Num(xs.vals[len(xs.vals)-k])
	case "RANK":
		if len(args) < 2 || len(args) > 3 {
			return Errorf("#N/A")
		}
		needle, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		xs := collectNumbers(args[1:2], res)
		if errv, ok := xs.err(); ok {
			return errv
		}
		ascending := false
		if len(args) == 3 {
			o, ok := args[2].scalar.AsNumber()
			if !ok {
				return Errorf("#VALUE!")
			}
			ascending = o != 0
		}
		rank := 1
		seenNeedle := false
		for _, v := range xs.vals {
			if v == needle {
				seenNeedle = true
			}
			if !ascending && v > needle || ascending && v < needle {
				rank++
			}
		}
		if !seenNeedle {
			return Errorf("#N/A")
		}
		return Num(float64(rank))
	case "COUNTBLANK":
		if len(args) != 1 || !args[0].isRange {
			return Errorf("#N/A")
		}
		// Count non-blanks on the sparse scan and subtract: unpopulated
		// cells and stored empty values are both blank, so the difference
		// is exact on either path.
		nonblank := 0
		args[0].eachValueSparse(res, func(v Value) bool {
			if v.Kind != KindEmpty {
				nonblank++
			}
			return true
		})
		return Num(float64(args[0].rng.Size() - nonblank))

	// --- Lookup --------------------------------------------------------
	case "HLOOKUP":
		return evalHlookup(args, res)
	case "INDEX":
		return evalIndex(args, res)
	case "MATCH":
		return evalMatch(args, res)
	case "CHOOSE":
		if len(args) < 2 {
			return Errorf("#N/A")
		}
		kf, ok := args[0].scalar.AsNumber()
		k := int(kf)
		if !ok || k < 1 || k > len(args)-1 {
			return Errorf("#VALUE!")
		}
		if args[k].isRange {
			return Errorf("#VALUE!")
		}
		return args[k].scalar

	// --- Text ----------------------------------------------------------
	case "MID":
		if len(args) != 3 {
			return Errorf("#N/A")
		}
		s := args[0].scalar.String()
		startF, ok1 := args[1].scalar.AsNumber()
		countF, ok2 := args[2].scalar.AsNumber()
		if !ok1 || !ok2 || startF < 1 || countF < 0 {
			return Errorf("#VALUE!")
		}
		start, count := int(startF)-1, int(countF)
		if start >= len(s) {
			return Str("")
		}
		end := start + count
		if end > len(s) {
			end = len(s)
		}
		return Str(s[start:end])
	case "FIND":
		if len(args) < 2 || len(args) > 3 {
			return Errorf("#N/A")
		}
		needle := args[0].scalar.String()
		hay := args[1].scalar.String()
		from := 1
		if len(args) == 3 {
			f, ok := args[2].scalar.AsNumber()
			if !ok || f < 1 {
				return Errorf("#VALUE!")
			}
			from = int(f)
		}
		if from > len(hay)+1 {
			return Errorf("#VALUE!")
		}
		idx := strings.Index(hay[from-1:], needle)
		if idx < 0 {
			return Errorf("#VALUE!")
		}
		return Num(float64(from + idx))
	case "SUBSTITUTE":
		if len(args) != 3 {
			return Errorf("#N/A")
		}
		return Str(strings.ReplaceAll(args[0].scalar.String(),
			args[1].scalar.String(), args[2].scalar.String()))
	case "REPT":
		if len(args) != 2 {
			return Errorf("#N/A")
		}
		nf, ok := args[1].scalar.AsNumber()
		if !ok || nf < 0 || nf > 32767 {
			return Errorf("#VALUE!")
		}
		return Str(strings.Repeat(args[0].scalar.String(), int(nf)))
	case "EXACT":
		if len(args) != 2 {
			return Errorf("#N/A")
		}
		return Boolean(args[0].scalar.String() == args[1].scalar.String())
	case "PROPER":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		return Str(properCase(args[0].scalar.String()))
	case "VALUE":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		return Num(f)

	// --- Logic / information --------------------------------------------
	case "XOR":
		truths := 0
		var errVal Value
		var errv *Value
		for _, a := range args {
			// Sparse scan is sound for XOR: a blank is never truthy.
			a.eachValueSparse(res, func(v Value) bool {
				if v.IsError() {
					errVal = v
					errv = &errVal
					return false
				}
				f, ok := v.AsNumber()
				if v.Kind == KindBool && v.Bool || ok && v.Kind != KindBool && f != 0 {
					truths++
				}
				return true
			})
			if errv != nil {
				return *errv
			}
		}
		return Boolean(truths%2 == 1)
	case "ISTEXT":
		return Boolean(len(args) == 1 && !args[0].isRange && args[0].scalar.Kind == KindString)
	case "ISLOGICAL":
		return Boolean(len(args) == 1 && !args[0].isRange && args[0].scalar.Kind == KindBool)
	case "ISEVEN", "ISODD":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		even := int64(math.Trunc(f))%2 == 0
		return Boolean(even == (name == "ISEVEN"))
	case "NA":
		return Errorf("#N/A")
	default:
		if v, handled := evalFinancial(name, args, res); handled {
			return v
		}
		return Errorf("#NAME?")
	}
}

func evalFloorCeiling(name string, args []arg) Value {
	if len(args) < 1 || len(args) > 2 {
		return Errorf("#N/A")
	}
	f, ok := args[0].scalar.AsNumber()
	if !ok {
		return Errorf("#VALUE!")
	}
	step := 1.0
	if len(args) == 2 {
		step, ok = args[1].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
	}
	if step == 0 {
		return Errorf("#DIV/0!")
	}
	q := f / step
	if name == "FLOOR" {
		return Num(math.Floor(q) * step)
	}
	return Num(math.Ceil(q) * step)
}

// numbers collects numeric values of arguments, recording the first error.
type numbers struct {
	vals []float64
	errv *Value
}

func (n numbers) err() (Value, bool) {
	if n.errv != nil {
		return *n.errv, true
	}
	return Value{}, false
}

func collectNumbers(args []arg, res Resolver) numbers {
	var out numbers
	out.errv = forNumbers(args, res, func(f float64) { out.vals = append(out.vals, f) })
	return out
}

// evalSumProduct multiplies corresponding cells of equal-shape ranges and
// sums the products.
func evalSumProduct(args []arg, res Resolver) Value {
	if len(args) == 0 {
		return Errorf("#N/A")
	}
	for _, a := range args {
		if !a.isRange {
			return Errorf("#VALUE!")
		}
		if a.rng.Size() != args[0].rng.Size() ||
			a.rng.Cols() != args[0].rng.Cols() {
			return Errorf("#VALUE!")
		}
	}
	first := args[0].rng
	total := 0.0
	// Folded path: the common two-range form folds directly off the columnar
	// slabs when the resolver supports it (same semantics as the bulk path
	// below, including the all-finite guard — see CondFolder).
	if len(args) == 2 {
		if cf, ok := res.(CondFolder); ok {
			if f, handled := cf.FoldSumProduct(args[0].rng, args[1].rng); handled {
				return Num(f)
			}
		}
	}
	// Bulk path: a position unpopulated in the first range contributes a
	// zero factor, so its whole term is zero — scan only the first range's
	// populated cells and probe the other ranges at the matching offsets.
	// Sound only while every stored number is finite: a 0·Inf term at a
	// skipped position would be NaN, not zero (arithmetic can overflow to
	// Inf, e.g. =1E308*10), so any non-finite value anywhere in the ranges
	// forces the exact per-cell walk. The guard scans are populated-cells-
	// only and cheap next to the rectangle walk they avoid.
	allFinite := true
	for _, a := range args {
		if !rangeScan(res, a.rng, func(_ ref.Ref, v Value) bool {
			if v.Kind == KindNumber && (math.IsInf(v.Num, 0) || math.IsNaN(v.Num)) {
				allFinite = false
				return false
			}
			return true
		}) {
			allFinite = false // no bulk support: per-cell walk below
			break
		}
	}
	if allFinite && rangeScan(res, first, func(at ref.Ref, v Value) bool {
		off := at.Sub(first.Head)
		prod := SumProductFactor(v)
		for _, a := range args[1:] {
			prod *= SumProductFactor(res.CellValue(ref.Ref{
				Col: a.rng.Head.Col + off.DCol,
				Row: a.rng.Head.Row + off.DRow,
			}))
		}
		total += prod
		return true
	}) {
		return Num(total)
	}
	i := 0
	first.Cells(func(ref.Ref) bool {
		dc := i % first.Cols()
		dr := i / first.Cols()
		prod := 1.0
		for _, a := range args {
			at := ref.Ref{Col: a.rng.Head.Col + dc, Row: a.rng.Head.Row + dr}
			prod *= SumProductFactor(res.CellValue(at))
		}
		total += prod
		i++
		return true
	})
	return Num(total)
}

// SumProductFactor coerces one SUMPRODUCT operand: text (including numeric
// text) and errors count as zero, per spreadsheet semantics. Exported so
// bulk resolvers implementing CondFolder.FoldSumProduct can reproduce the
// exact per-cell coercion.
func SumProductFactor(v Value) float64 {
	f, ok := v.AsNumber()
	if !ok || v.Kind == KindString {
		return 0
	}
	return f
}

// evalHlookup is the horizontal dual of VLOOKUP: keys in the table's first
// row, result from the given row index. Exact-match mode.
func evalHlookup(args []arg, res Resolver) Value {
	if len(args) < 3 {
		return Errorf("#N/A")
	}
	needle := args[0].scalar
	if !args[1].isRange {
		return Errorf("#VALUE!")
	}
	table := args[1].rng
	rowF, ok := args[2].scalar.AsNumber()
	if !ok {
		return Errorf("#VALUE!")
	}
	row := int(rowF)
	if row < 1 || row > table.Rows() {
		return Errorf("#REF!")
	}
	for col := table.Head.Col; col <= table.Tail.Col; col++ {
		v := res.CellValue(ref.Ref{Col: col, Row: table.Head.Row})
		if eqValue(v, needle) {
			return res.CellValue(ref.Ref{Col: col, Row: table.Head.Row + row - 1})
		}
	}
	return Errorf("#N/A")
}

// evalIndex returns the cell at (rowIdx, colIdx) within a range. A
// single-row or single-column range accepts one index.
func evalIndex(args []arg, res Resolver) Value {
	if len(args) < 2 || len(args) > 3 || !args[0].isRange {
		return Errorf("#N/A")
	}
	rng := args[0].rng
	idx1, ok := args[1].scalar.AsNumber()
	if !ok {
		return Errorf("#VALUE!")
	}
	rowIdx, colIdx := int(idx1), 1
	if len(args) == 3 {
		idx2, ok := args[2].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		colIdx = int(idx2)
	} else if rng.Rows() == 1 {
		// One index into a row vector selects the column.
		rowIdx, colIdx = 1, int(idx1)
	}
	if rowIdx < 1 || rowIdx > rng.Rows() || colIdx < 1 || colIdx > rng.Cols() {
		return Errorf("#REF!")
	}
	return res.CellValue(ref.Ref{
		Col: rng.Head.Col + colIdx - 1,
		Row: rng.Head.Row + rowIdx - 1,
	})
}

// evalMatch returns the 1-based position of the needle in a single-row or
// single-column range. Exact-match mode (type 0) only.
func evalMatch(args []arg, res Resolver) Value {
	if len(args) < 2 || len(args) > 3 || !args[1].isRange {
		return Errorf("#N/A")
	}
	if len(args) == 3 {
		mt, ok := args[2].scalar.AsNumber()
		if !ok || mt != 0 {
			return Errorf("#N/A") // only exact match supported
		}
	}
	needle := args[0].scalar
	rng := args[1].rng
	if rng.Rows() != 1 && rng.Cols() != 1 {
		return Errorf("#N/A")
	}
	pos := 1
	var found *int
	rng.Cells(func(c ref.Ref) bool {
		if eqValue(res.CellValue(c), needle) {
			p := pos
			found = &p
			return false
		}
		pos++
		return true
	})
	if found == nil {
		return Errorf("#N/A")
	}
	return Num(float64(*found))
}

func properCase(s string) string {
	var sb strings.Builder
	newWord := true
	for _, r := range s {
		isLetter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		switch {
		case !isLetter:
			sb.WriteRune(r)
			newWord = true
		case newWord:
			sb.WriteString(strings.ToUpper(string(r)))
			newWord = false
		default:
			sb.WriteString(strings.ToLower(string(r)))
		}
	}
	return sb.String()
}
