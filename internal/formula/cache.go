package formula

import (
	"sync"

	"taco/internal/telemetry"
)

// This file implements a process-wide memoising parser front-end. Spreadsheet
// hosts parse the same formula sources over and over: restoring a spilled
// session re-parses every formula it ever held, scenario generators emit
// identical formula shapes across sessions, and edit streams replay formulae
// that were parsed at load time. ASTs are immutable once built — every
// transformer (Shift) copies, and evaluation only reads — so sharing parsed
// nodes between engines and sessions is safe.

const (
	// parseCacheMaxBytes bounds the total source bytes the cache retains.
	// When an insert would exceed it the cache is dropped wholesale —
	// crude, but O(1), allocation-free on the hit path, and resistant to a
	// hostile tenant streaming unique formulae to pin host memory.
	parseCacheMaxBytes = 8 << 20
	// parseCacheMaxEntry keeps pathological single formulae from dominating
	// the budget; longer sources parse uncached.
	parseCacheMaxEntry = 64 << 10
)

type cacheEntry struct {
	node Node
	src  string // canonical copy of the source
}

var parseCache = struct {
	sync.RWMutex
	m     map[string]cacheEntry
	bytes int
}{m: make(map[string]cacheEntry)}

// Cache effectiveness instruments: the hit/miss ratio is the restore path's
// cheapest health signal (a cold cache turns every session restore into a
// full re-parse), and the drop counter surfaces wholesale evictions caused
// by unique-formula churn. One atomic add beside a map probe or a full
// parse — negligible either way.
var (
	mParseHits = telemetry.NewCounter("taco_parse_cache_hits_total",
		"Formula parses served from the process-wide parse cache.")
	mParseMisses = telemetry.NewCounter("taco_parse_cache_misses_total",
		"Formula parses that missed the cache and ran the parser.")
	mParseDrops = telemetry.NewCounter("taco_parse_cache_drops_total",
		"Wholesale cache resets triggered by the byte budget.")
)

func init() {
	telemetry.NewGaugeFunc("taco_parse_cache_bytes",
		"Source bytes currently retained by the parse cache.",
		func() float64 {
			parseCache.RLock()
			defer parseCache.RUnlock()
			return float64(parseCache.bytes)
		})
	telemetry.NewGaugeFunc("taco_parse_cache_entries",
		"Formulae currently retained by the parse cache.",
		func() float64 {
			parseCache.RLock()
			defer parseCache.RUnlock()
			return float64(len(parseCache.m))
		})
}

// ParseCached is Parse with memoisation. Callers must treat the returned AST
// as immutable (Parse's contract already implies this — nothing in this
// package mutates a parsed tree). Parse errors are not cached.
func ParseCached(src string) (Node, error) {
	n, _, err := parseCachedKey(src)
	return n, err
}

// ParseCachedBytes is ParseCached for a transient byte buffer. On a cache
// hit it allocates nothing — the map lookup converts without copying, and
// the returned canonical string is the cache's — which is what makes
// restoring a spilled session's formulae nearly free.
func ParseCachedBytes(src []byte) (Node, string, error) {
	parseCache.RLock()
	e, ok := parseCache.m[string(src)] // no-copy lookup
	parseCache.RUnlock()
	if ok {
		mParseHits.Inc()
		return e.node, e.src, nil
	}
	return parseCachedKey(string(src))
}

func parseCachedKey(src string) (Node, string, error) {
	parseCache.RLock()
	e, ok := parseCache.m[src]
	parseCache.RUnlock()
	if ok {
		mParseHits.Inc()
		return e.node, e.src, nil
	}
	mParseMisses.Inc()
	n, err := Parse(src)
	if err != nil {
		return nil, "", err
	}
	if len(src) > parseCacheMaxEntry {
		return n, src, nil
	}
	parseCache.Lock()
	if parseCache.bytes+len(src) > parseCacheMaxBytes {
		parseCache.m = make(map[string]cacheEntry, 1024)
		parseCache.bytes = 0
		mParseDrops.Inc()
	}
	if prev, dup := parseCache.m[src]; dup {
		n, src = prev.node, prev.src
	} else {
		parseCache.m[src] = cacheEntry{node: n, src: src}
		parseCache.bytes += len(src)
	}
	parseCache.Unlock()
	return n, src, nil
}
