package formula

import (
	"math"
	"testing"
)

func approx(t *testing.T, g gridResolver, src string, want, tol float64) {
	t.Helper()
	got := evalOn(t, g, src)
	if got.Kind != KindNumber || math.Abs(got.Num-want) > tol {
		t.Errorf("%s = %v, want %v±%v", src, got, want, tol)
	}
}

func TestNPV(t *testing.T) {
	g := grid(map[string]Value{
		"A1": Num(-10000), "A2": Num(3000), "A3": Num(4200), "A4": Num(6800),
	})
	// The classic Excel doc example: NPV(10%, -10000, 3000, 4200, 6800).
	approx(t, g, "=NPV(0.1,A1:A4)", 1188.44, 0.01)
	approx(t, g, "=NPV(0.1,-10000,3000,4200,6800)", 1188.44, 0.01)
	if got := evalOn(t, g, "=NPV(-2,A1:A4)"); !got.IsError() {
		t.Errorf("rate <= -1 accepted: %v", got)
	}
	if got := evalOn(t, g, `=NPV("x",A1:A4)`); !got.IsError() {
		t.Errorf("bad rate accepted: %v", got)
	}
}

func TestPMT(t *testing.T) {
	g := grid(nil)
	// $10,000 loan, 8%/12 monthly, 10 months: Excel gives -1037.03.
	approx(t, g, "=PMT(0.08/12,10,10000)", -1037.03, 0.01)
	// Zero rate degenerates to straight division.
	approx(t, g, "=PMT(0,10,10000)", -1000, 1e-9)
	// Payments due at period start shrink slightly.
	approx(t, g, "=PMT(0.08/12,10,10000,0,1)", -1030.16, 0.01)
	if got := evalOn(t, g, "=PMT(0.1,0,100)"); !got.IsError() {
		t.Errorf("nper=0 accepted: %v", got)
	}
}

func TestFVAndPV(t *testing.T) {
	g := grid(nil)
	// Save $200/month at 6%/12 for 10 months starting from 0:
	// Excel: FV(0.005,10,-200) = 2045.60.
	approx(t, g, "=FV(0.005,10,-200)", 2045.60, 0.01)
	approx(t, g, "=FV(0,10,-200)", 2000, 1e-9)
	// PV inverts FV: the PV of that stream discounts back.
	// Excel: PV(0.005,10,-200) = 1947.06? Actually 1946.32...
	pv := evalOn(t, g, "=PV(0.005,10,-200)")
	fv := evalOn(t, g, "=FV(0.005,10,-200,"+pv.String()+")")
	if math.Abs(fv.Num) > 0.01 {
		t.Errorf("PV/FV inversion residual = %v", fv)
	}
	approx(t, g, "=PV(0,10,-200)", 2000, 1e-9)
}

func TestIRR(t *testing.T) {
	g := grid(map[string]Value{
		"A1": Num(-70000), "A2": Num(12000), "A3": Num(15000),
		"A4": Num(18000), "A5": Num(21000), "A6": Num(26000),
	})
	// Excel doc example: IRR over 5 years = 8.66%.
	approx(t, g, "=IRR(A1:A6)", 0.0866, 0.001)
	// IRR consistency: NPV at the IRR rate is ~0.
	rate := evalOn(t, g, "=IRR(A1:A6)").Num
	total := -70000.0
	flows := []float64{12000, 15000, 18000, 21000, 26000}
	for i, f := range flows {
		total += f / math.Pow(1+rate, float64(i+1))
	}
	if math.Abs(total) > 0.01 {
		t.Errorf("NPV at IRR = %v", total)
	}
	// All-positive flows have no IRR.
	g2 := grid(map[string]Value{"A1": Num(10), "A2": Num(20)})
	if got := evalOn(t, g2, "=IRR(A1:A2)"); !got.IsError() {
		t.Errorf("all-positive IRR = %v", got)
	}
	// A scalar argument is rejected.
	if got := evalOn(t, g, "=IRR(5)"); !got.IsError() {
		t.Errorf("scalar IRR = %v", got)
	}
}

func TestFinancialInFormulaGraph(t *testing.T) {
	// Financial formulas contribute dependencies like any other.
	refs, err := ExtractRefs("=NPV($B$1,C1:C12)+PMT($B$1,12,D1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 4 {
		t.Fatalf("refs = %v", refs)
	}
}
