package formula

import (
	"encoding/binary"
	"math"
	"sync"

	"taco/internal/ref"
	"taco/internal/telemetry"
)

// This file compiles parsed formulae to flat postfix bytecode and evaluates
// it on a small stack VM. The AST walker (Eval) stays the semantic oracle;
// the VM exists to kill the tree walk and the per-node interface dispatch in
// the recalculation hot loop, where the same formula shape is evaluated
// thousands of times across a column.
//
// Cell and range operands are encoded relative to the compiling cell's
// position (the anchor) on their relative axes and absolutely on their
// $-fixed axes — exactly the axes Shift preserves. Two formulae that are
// shifted copies of each other therefore compile to byte-identical programs,
// and CompileCached interns programs by those bytes, so "same shape" is a
// pointer comparison. That is what the wavefront scheduler's pattern-run
// detection keys on (see engine/runs.go): a column of =A2*B2+C2,
// =A3*B3+C3, ... shares one *Program.
//
// Exactness: the VM evaluates every argument expression before dispatching a
// call, where the walker stops at the first scalar error for non-exempt
// builtins and IF short-circuits the untaken branch. Under a pure resolver —
// one whose CellValue has no side effects, like the engine's read-only
// valueResolver or any map-backed test resolver — the skipped evaluations
// are value-invisible, so the VM's results are bit-identical to the walker's
// (pinned by TestBytecodeEquivalence and FuzzBytecodeEval). The VM must NOT
// be used with resolvers that evaluate dirty cells on read (the engine's
// serial evalResolver): there, evaluation order is observable through cycle
// detection.

// opcode is a VM instruction tag.
type opcode uint8

const (
	opConst  opcode = iota // push consts[a]
	opCell                 // push the cell operand cells[a], resolved at the anchor
	opRange                // push the range operand ranges[a] as a range argument
	opUnary                // apply unary ops[a] to the top of stack
	opBinary               // apply binary ops[a] to the top two entries
	opCall                 // dispatch calls[a] over its argc top entries
)

// instr is one VM instruction: an opcode plus an operand-table index.
type instr struct {
	op opcode
	a  int32
}

// CellOp is a compiled cell operand. On a fixed axis the coordinate is
// absolute (1-based); on a relative axis it is an offset from the anchor.
// The engine's run executor reads these to plan slab cursors.
type CellOp struct {
	DCol, DRow         int32
	ColFixed, RowFixed bool
}

// At resolves the operand's position for a given anchor cell.
func (o CellOp) At(anchor ref.Ref) ref.Ref {
	at := ref.Ref{Col: int(o.DCol), Row: int(o.DRow)}
	if !o.ColFixed {
		at.Col += anchor.Col
	}
	if !o.RowFixed {
		at.Row += anchor.Row
	}
	return at
}

// rangeOp is a compiled range operand; each of the four coordinates is
// absolute or anchor-relative according to its own $-flag, mirroring Shift.
type rangeOp struct {
	headCol, headRow, tailCol, tailRow                     int32
	headColFixed, headRowFixed, tailColFixed, tailRowFixed bool
}

func (o rangeOp) at(anchor ref.Ref) ref.Range {
	head := ref.Ref{Col: int(o.headCol), Row: int(o.headRow)}
	tail := ref.Ref{Col: int(o.tailCol), Row: int(o.tailRow)}
	if !o.headColFixed {
		head.Col += anchor.Col
	}
	if !o.headRowFixed {
		head.Row += anchor.Row
	}
	if !o.tailColFixed {
		tail.Col += anchor.Col
	}
	if !o.tailRowFixed {
		tail.Row += anchor.Row
	}
	return ref.Range{Head: head, Tail: tail}
}

// callInfo is a compiled call site.
type callInfo struct {
	name string
	argc int32
	// exempt marks the builtins the walker exempts from first-scalar-error
	// propagation (IF, ISERROR, IFERROR — they give errors meaning).
	exempt bool
}

// Program is a compiled formula: flat postfix code over operand tables.
// Programs are immutable after compilation and safe for concurrent
// evaluation from any number of goroutines.
type Program struct {
	code     []instr
	consts   []Value
	cells    []CellOp
	ranges   []rangeOp
	calls    []callInfo
	ops      []string
	maxStack int
	numeric  *numericPlan
}

// CellOps returns the program's cell operand descriptors (shared slice —
// callers must not mutate).
func (p *Program) CellOps() []CellOp { return p.cells }

// NumRangeOps returns the number of range operands the program reads.
func (p *Program) NumRangeOps() int { return len(p.ranges) }

// maxVMStack bounds a program's evaluation stack; expressions nesting deeper
// than this stay on the AST walker.
const maxVMStack = 128

// Compile compiles the AST to a Program anchored at the given cell, or nil
// when the expression is not compilable (unknown node kinds, or a value
// stack deeper than maxVMStack).
func Compile(n Node, at ref.Ref) *Program {
	c := compiler{anchor: at, ok: true}
	c.gen(n)
	if !c.ok {
		return nil
	}
	c.p.numeric = c.p.buildNumeric()
	return &c.p
}

type compiler struct {
	p      Program
	anchor ref.Ref
	depth  int
	ok     bool
}

func (c *compiler) emit(op opcode, a int32, delta int) {
	c.p.code = append(c.p.code, instr{op: op, a: a})
	c.depth += delta
	if c.depth > c.p.maxStack {
		c.p.maxStack = c.depth
		if c.depth > maxVMStack {
			c.ok = false
		}
	}
}

func (c *compiler) addConst(v Value) int32 {
	for i, e := range c.p.consts {
		if e == v {
			return int32(i)
		}
	}
	c.p.consts = append(c.p.consts, v)
	return int32(len(c.p.consts) - 1)
}

func (c *compiler) addOp(op string) int32 {
	for i, e := range c.p.ops {
		if e == op {
			return int32(i)
		}
	}
	c.p.ops = append(c.p.ops, op)
	return int32(len(c.p.ops) - 1)
}

func (c *compiler) addCell(op CellOp) int32 {
	for i, e := range c.p.cells {
		if e == op {
			return int32(i)
		}
	}
	c.p.cells = append(c.p.cells, op)
	return int32(len(c.p.cells) - 1)
}

func (c *compiler) addRange(op rangeOp) int32 {
	for i, e := range c.p.ranges {
		if e == op {
			return int32(i)
		}
	}
	c.p.ranges = append(c.p.ranges, op)
	return int32(len(c.p.ranges) - 1)
}

func (c *compiler) addCall(ci callInfo) int32 {
	for i, e := range c.p.calls {
		if e == ci {
			return int32(i)
		}
	}
	c.p.calls = append(c.p.calls, ci)
	return int32(len(c.p.calls) - 1)
}

// rel encodes one coordinate: absolute when fixed, anchor-relative when not.
func rel(coord, anchor int, fixed bool) int32 {
	if fixed {
		return int32(coord)
	}
	return int32(coord - anchor)
}

func (c *compiler) gen(n Node) {
	if !c.ok {
		return
	}
	switch t := n.(type) {
	case *Number:
		c.emit(opConst, c.addConst(Num(t.Value)), 1)
	case *String:
		c.emit(opConst, c.addConst(Str(t.Value)), 1)
	case *Bool:
		c.emit(opConst, c.addConst(Boolean(t.Value)), 1)
	case *CellRef:
		c.emit(opCell, c.addCell(CellOp{
			DCol:     rel(t.At.Col, c.anchor.Col, t.ColFixed),
			DRow:     rel(t.At.Row, c.anchor.Row, t.RowFixed),
			ColFixed: t.ColFixed, RowFixed: t.RowFixed,
		}), 1)
	case *RangeRef:
		c.emit(opRange, c.addRange(rangeOp{
			headCol:      rel(t.At.Head.Col, c.anchor.Col, t.HeadColFixed),
			headRow:      rel(t.At.Head.Row, c.anchor.Row, t.HeadRowF),
			tailCol:      rel(t.At.Tail.Col, c.anchor.Col, t.TailColFixed),
			tailRow:      rel(t.At.Tail.Row, c.anchor.Row, t.TailRowF),
			headColFixed: t.HeadColFixed, headRowFixed: t.HeadRowF,
			tailColFixed: t.TailColFixed, tailRowFixed: t.TailRowF,
		}), 1)
	case *Unary:
		c.gen(t.X)
		c.emit(opUnary, c.addOp(t.Op), 0)
	case *Binary:
		c.gen(t.L)
		c.gen(t.R)
		c.emit(opBinary, c.addOp(t.Op), -1)
	case *Call:
		for _, a := range t.Args {
			c.gen(a)
		}
		exempt := t.Name == "IF" || t.Name == "ISERROR" || t.Name == "IFERROR"
		c.emit(opCall, c.addCall(callInfo{name: t.Name, argc: int32(len(t.Args)), exempt: exempt}),
			1-len(t.Args))
	default:
		c.ok = false
	}
}

// The numeric sweep fast path: a program whose every instruction is a
// numeric constant, a cell operand, or a +,-,*,/ binary evaluates on a bare
// float64 stack — no arg boxing, no pool traffic, no string op lookup. It
// covers exactly the operand combinations where applyBinary reduces to the
// raw float operation over AsNumber coercions, so the result is bit-identical
// to the generic interpreter whenever every operand coerces and no divisor is
// zero; any other row (error operand, unparsable string, #DIV/0!) bails back
// to the generic run, which owns all error semantics.

// numInstr is one numeric-plan instruction; a indexes the plan's consts
// (npConst) or the program's CellOps (npCell).
type numInstr struct {
	kind uint8
	a    int32
}

const (
	npConst = iota
	npCell
	npAdd
	npSub
	npMul
	npDiv
)

// maxNumericDepth bounds the fast path's fixed-size value stack; deeper
// arithmetic stays on the generic interpreter.
const maxNumericDepth = 16

type numericPlan struct {
	code   []numInstr
	consts []float64
}

// buildNumeric derives the numeric plan, or nil when any instruction falls
// outside the straight-line arithmetic subset.
func (p *Program) buildNumeric() *numericPlan {
	if len(p.ranges) > 0 || len(p.calls) > 0 || len(p.code) == 0 {
		return nil
	}
	// The result must come off an arithmetic op: a bare cell or constant
	// program preserves its operand's kind (`=B5` of a bool is a bool),
	// which a float stack cannot represent.
	if p.code[len(p.code)-1].op != opBinary {
		return nil
	}
	np := &numericPlan{}
	depth, maxDepth := 0, 0
	for _, ins := range p.code {
		switch ins.op {
		case opConst:
			v := p.consts[ins.a]
			if v.Kind != KindNumber {
				return nil
			}
			np.code = append(np.code, numInstr{kind: npConst, a: int32(len(np.consts))})
			np.consts = append(np.consts, v.Num)
			depth++
		case opCell:
			np.code = append(np.code, numInstr{kind: npCell, a: ins.a})
			depth++
		case opBinary:
			var k uint8
			switch p.ops[ins.a] {
			case "+":
				k = npAdd
			case "-":
				k = npSub
			case "*":
				k = npMul
			case "/":
				k = npDiv
			default:
				return nil
			}
			np.code = append(np.code, numInstr{kind: k})
			depth--
		default:
			return nil
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if maxDepth > maxNumericDepth {
		return nil
	}
	return np
}

// HasNumericSweep reports whether NumericSweep is available for this program.
func (p *Program) HasNumericSweep() bool { return p.numeric != nil }

// NumericSweep evaluates the numeric fast path for one row: cellVals[i] must
// hold the AsNumber coercion of the value CellOps()[i] resolves to (the
// caller bails to the generic interpreter when any coercion fails). ok is
// false on a zero divisor — the row re-runs generically so #DIV/0! placement
// is exactly the interpreter's.
func (p *Program) NumericSweep(cellVals []float64) (v float64, ok bool) {
	var stack [maxNumericDepth]float64
	sp := 0
	for _, ins := range p.numeric.code {
		switch ins.kind {
		case npConst:
			stack[sp] = p.numeric.consts[ins.a]
			sp++
		case npCell:
			stack[sp] = cellVals[ins.a]
			sp++
		case npAdd:
			sp--
			stack[sp-1] += stack[sp]
		case npSub:
			sp--
			stack[sp-1] -= stack[sp]
		case npMul:
			sp--
			stack[sp-1] *= stack[sp]
		default: // npDiv
			sp--
			if stack[sp] == 0 {
				return 0, false
			}
			stack[sp-1] /= stack[sp]
		}
	}
	return stack[0], true
}

// scalarize coerces a stacked argument to scalar context: a range argument
// in scalar position is #VALUE!, exactly like Eval on a bare *RangeRef.
func scalarize(a arg) Value {
	if a.isRange {
		return Errorf("#VALUE!")
	}
	return a.scalar
}

type vmState struct{ stack []arg }

var vmStatePool = sync.Pool{New: func() any {
	return &vmState{stack: make([]arg, 0, 32)}
}}

// EvalAt evaluates the program for the given anchor cell against a pure
// resolver. See the package comment on this file for the purity requirement.
func (p *Program) EvalAt(res Resolver, at ref.Ref) Value {
	return p.run(res, at, nil)
}

// EvalCells is EvalAt with cell-operand reads served by the caller: read
// receives the operand's index in CellOps() and its resolved position, and
// must return exactly what res.CellValue would. The engine's run executor
// uses it to feed values from advancing slab cursors instead of per-cell
// map probes; range operands and call dispatch still go through res.
func (p *Program) EvalCells(res Resolver, at ref.Ref, read func(op int, target ref.Ref) Value) Value {
	return p.run(res, at, read)
}

func (p *Program) run(res Resolver, at ref.Ref, read func(int, ref.Ref) Value) Value {
	st := vmStatePool.Get().(*vmState)
	stack := st.stack[:0]
	for _, ins := range p.code {
		switch ins.op {
		case opConst:
			stack = append(stack, arg{scalar: p.consts[ins.a]})
		case opCell:
			target := p.cells[ins.a].At(at)
			var v Value
			if read != nil {
				v = read(int(ins.a), target)
			} else {
				v = res.CellValue(target)
			}
			stack = append(stack, arg{scalar: v})
		case opRange:
			stack = append(stack, arg{isRange: true, rng: p.ranges[ins.a].at(at)})
		case opUnary:
			stack[len(stack)-1] = arg{scalar: applyUnary(p.ops[ins.a], scalarize(stack[len(stack)-1]))}
		case opBinary:
			l, r := scalarize(stack[len(stack)-2]), scalarize(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = arg{scalar: applyBinary(p.ops[ins.a], l, r)}
		case opCall:
			ci := p.calls[ins.a]
			base := len(stack) - int(ci.argc)
			v := dispatchCall(ci, stack[base:], res)
			stack = stack[:base]
			stack = append(stack, arg{scalar: v})
		}
	}
	out := scalarize(stack[0])
	st.stack = stack
	vmStatePool.Put(st)
	return out
}

// dispatchCall runs one compiled call site. The early-error scan replicates
// the walker's argument loop: the first scalar error (in argument order)
// propagates unless the builtin gives errors meaning. IF and IFERROR are
// handled here over the already-evaluated arguments — value-identical to the
// walker's branch re-evaluation under a pure resolver — and everything else
// goes through the shared dispatcher.
func dispatchCall(ci callInfo, args []arg, res Resolver) Value {
	if !ci.exempt {
		for i := range args {
			if !args[i].isRange && args[i].scalar.IsError() {
				return args[i].scalar
			}
		}
	}
	switch ci.name {
	case "IF":
		if len(args) < 2 || len(args) > 3 {
			return Errorf("#N/A")
		}
		cond := scalarize(args[0])
		if cond.IsError() {
			return cond
		}
		if condTruth(cond) {
			return scalarize(args[1])
		}
		if len(args) == 3 {
			return scalarize(args[2])
		}
		return Boolean(false)
	case "IFERROR":
		if len(args) != 2 {
			return Errorf("#N/A")
		}
		v := scalarize(args[0])
		if v.IsError() {
			return scalarize(args[1])
		}
		return v
	}
	return callShared(ci.name, args, res)
}

const (
	// progCacheMaxBytes bounds the interning cache by serialized program
	// size; exceeding it drops the cache wholesale, like the parse cache.
	progCacheMaxBytes = 4 << 20
	// progCacheMaxEntry keeps one pathological formula from dominating the
	// budget; larger programs evaluate fine but are not interned (and so
	// never participate in pattern runs, which need pointer equality).
	progCacheMaxEntry = 16 << 10
)

var progCache = struct {
	sync.RWMutex
	m     map[string]*Program
	bytes int
}{m: make(map[string]*Program)}

var (
	mCompileHits = telemetry.NewCounter("taco_compile_cache_hits_total",
		"Formula compilations served from the process-wide program cache.")
	mCompileMisses = telemetry.NewCounter("taco_compile_cache_misses_total",
		"Formula compilations that missed the cache and ran the compiler.")
	mCompileDrops = telemetry.NewCounter("taco_compile_cache_drops_total",
		"Wholesale program-cache resets triggered by the byte budget.")
)

func init() {
	telemetry.NewGaugeFunc("taco_compile_cache_entries",
		"Programs currently retained by the compile cache.",
		func() float64 {
			progCache.RLock()
			defer progCache.RUnlock()
			return float64(len(progCache.m))
		})
}

// CompileCached is Compile with canonical interning: programs are keyed by
// their serialized bytes, so every formula cell that is a shifted copy of
// the same shape shares one *Program pointer. The engine's pattern-run
// detector relies on that canonicalisation — run membership is program
// pointer equality, never a structural comparison per drain.
func CompileCached(n Node, at ref.Ref) *Program {
	p := Compile(n, at)
	if p == nil {
		return nil
	}
	key := string(p.appendKey(make([]byte, 0, 128)))
	if len(key) > progCacheMaxEntry {
		mCompileMisses.Inc()
		return p
	}
	progCache.RLock()
	cached, ok := progCache.m[key]
	progCache.RUnlock()
	if ok {
		mCompileHits.Inc()
		return cached
	}
	mCompileMisses.Inc()
	progCache.Lock()
	defer progCache.Unlock()
	if cached, ok := progCache.m[key]; ok {
		return cached
	}
	if progCache.bytes+len(key) > progCacheMaxBytes {
		progCache.m = make(map[string]*Program, 1024)
		progCache.bytes = 0
		mCompileDrops.Inc()
	}
	progCache.m[key] = p
	progCache.bytes += len(key)
	return p
}

// appendKey serializes the program unambiguously (every variable-length
// field is length- or tag-prefixed), producing the interning key.
func (p *Program) appendKey(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p.code)))
	for _, ins := range p.code {
		b = append(b, byte(ins.op))
		b = binary.AppendVarint(b, int64(ins.a))
	}
	b = binary.AppendUvarint(b, uint64(len(p.consts)))
	for _, v := range p.consts {
		b = append(b, byte(v.Kind))
		switch v.Kind {
		case KindNumber:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Num))
		case KindString:
			b = binary.AppendUvarint(b, uint64(len(v.Str)))
			b = append(b, v.Str...)
		case KindBool:
			if v.Bool {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		case KindError:
			b = binary.AppendUvarint(b, uint64(len(v.Err)))
			b = append(b, v.Err...)
		}
	}
	flags := func(fs ...bool) (out byte) {
		for i, f := range fs {
			if f {
				out |= 1 << i
			}
		}
		return out
	}
	b = binary.AppendUvarint(b, uint64(len(p.cells)))
	for _, c := range p.cells {
		b = append(b, flags(c.ColFixed, c.RowFixed))
		b = binary.AppendVarint(b, int64(c.DCol))
		b = binary.AppendVarint(b, int64(c.DRow))
	}
	b = binary.AppendUvarint(b, uint64(len(p.ranges)))
	for _, r := range p.ranges {
		b = append(b, flags(r.headColFixed, r.headRowFixed, r.tailColFixed, r.tailRowFixed))
		b = binary.AppendVarint(b, int64(r.headCol))
		b = binary.AppendVarint(b, int64(r.headRow))
		b = binary.AppendVarint(b, int64(r.tailCol))
		b = binary.AppendVarint(b, int64(r.tailRow))
	}
	b = binary.AppendUvarint(b, uint64(len(p.calls)))
	for _, ci := range p.calls {
		b = binary.AppendUvarint(b, uint64(len(ci.name)))
		b = append(b, ci.name...)
		b = binary.AppendVarint(b, int64(ci.argc))
	}
	b = binary.AppendUvarint(b, uint64(len(p.ops)))
	for _, op := range p.ops {
		b = binary.AppendUvarint(b, uint64(len(op)))
		b = append(b, op...)
	}
	return b
}
