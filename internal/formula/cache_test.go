package formula

import (
	"fmt"
	"testing"
)

func TestParseCachedSharesNodes(t *testing.T) {
	a, err := ParseCached("SUM(A1:A9)*2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCached("SUM(A1:A9)*2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss on identical source")
	}
	if Text(a) != "(SUM(A1:A9)*2)" && Text(a) != "SUM(A1:A9)*2" {
		t.Fatalf("unexpected round trip %q", Text(a))
	}
}

func TestParseCachedBytesHitAllocatesNothing(t *testing.T) {
	src := []byte("A1+B2*3")
	if _, _, err := ParseCachedBytes(src); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := ParseCachedBytes(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %v times", allocs)
	}
}

func TestParseCachedBytesCanonicalSrc(t *testing.T) {
	buf := []byte("A1*7")
	n1, s1, err := ParseCachedBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 'B' // scribble over the transient buffer
	n2, s2, err := ParseCachedBytes([]byte("A1*7"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != "A1*7" || s2 != "A1*7" || n1 != n2 {
		t.Fatalf("canonical src corrupted: %q %q", s1, s2)
	}
}

func TestParseCachedErrorsNotCached(t *testing.T) {
	if _, err := ParseCached("SUM("); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ParseCached("SUM("); err == nil {
		t.Fatal("want parse error on second call")
	}
}

func TestParseCacheBoundedReset(t *testing.T) {
	// Stream more unique source bytes than the cache budget: the cache must
	// reset rather than grow without bound, and stay correct throughout.
	padding := make([]byte, 1024)
	for i := range padding {
		padding[i] = 'A'
	}
	for i := 0; i < 2*(parseCacheMaxBytes/len(padding)); i++ {
		src := fmt.Sprintf("%d+LEN(\"%s\")", i, padding)
		if _, err := ParseCached(src); err != nil {
			t.Fatal(err)
		}
	}
	parseCache.RLock()
	defer parseCache.RUnlock()
	if parseCache.bytes > parseCacheMaxBytes {
		t.Fatalf("cache grew to %d bytes (budget %d)", parseCache.bytes, parseCacheMaxBytes)
	}
}
