package formula

import (
	"strings"
	"testing"

	"taco/internal/ref"
)

func TestParseLiterals(t *testing.T) {
	n := MustParse("=42")
	if num, ok := n.(*Number); !ok || num.Value != 42 {
		t.Fatalf("got %#v", n)
	}
	n = MustParse(`="hi ""there"""`)
	if s, ok := n.(*String); !ok || s.Value != `hi "there"` {
		t.Fatalf("got %#v", n)
	}
	n = MustParse("TRUE")
	if b, ok := n.(*Bool); !ok || !b.Value {
		t.Fatalf("got %#v", n)
	}
	n = MustParse("=1.5e3")
	if num, ok := n.(*Number); !ok || num.Value != 1500 {
		t.Fatalf("got %#v", n)
	}
}

func TestParseRefs(t *testing.T) {
	n := MustParse("=A1")
	c, ok := n.(*CellRef)
	if !ok || c.At != (ref.Ref{Col: 1, Row: 1}) || c.ColFixed || c.RowFixed {
		t.Fatalf("got %#v", n)
	}
	n = MustParse("=$B$2")
	c = n.(*CellRef)
	if !c.ColFixed || !c.RowFixed || c.At != (ref.Ref{Col: 2, Row: 2}) {
		t.Fatalf("got %#v", c)
	}
	n = MustParse("=$B$1:B4")
	r, ok := n.(*RangeRef)
	if !ok || r.At != ref.MustRange("B1:B4") {
		t.Fatalf("got %#v", n)
	}
	if !r.HeadColFixed || !r.HeadRowF || r.TailColFixed || r.TailRowF {
		t.Fatalf("fixed flags wrong: %#v", r)
	}
}

func TestParseReversedRangeNormalises(t *testing.T) {
	n := MustParse("=SUM(B4:A1)")
	call := n.(*Call)
	r := call.Args[0].(*RangeRef)
	if r.At != ref.MustRange("A1:B4") {
		t.Fatalf("got %v", r.At)
	}
}

func TestParseReversedRangeFlagSwap(t *testing.T) {
	// $B$4:A1 reversed: after normalisation head=A1 (relative), tail=$B$4.
	n := MustParse("=SUM($B$4:A1)")
	r := n.(*Call).Args[0].(*RangeRef)
	if r.At != ref.MustRange("A1:B4") {
		t.Fatalf("range %v", r.At)
	}
	if r.HeadColFixed || r.HeadRowF || !r.TailColFixed || !r.TailRowF {
		t.Fatalf("flags %#v", r)
	}
}

func TestParsePrecedence(t *testing.T) {
	res := ResolverFunc(func(ref.Ref) Value { return Empty() })
	cases := map[string]float64{
		"=1+2*3":      7,
		"=(1+2)*3":    9,
		"=2^3^2":      512, // right-assoc
		"=-2^2":       4,   // unary binds the literal: (-2)^2
		"=10-2-3":     5,
		"=50%":        0.5,
		"=200%%":      0.02,
		"=1+50%":      1.5,
		"=8/2/2":      2,
		"=2*3+4*5":    26,
		"=1-2+3":      2,
		"=ABS(-3)+1":  4,
		"=MOD(7,3)":   1,
		"=MOD(-1,3)":  2,
		"=ROUND(2.5)": 3,
	}
	for src, want := range cases {
		v := Eval(MustParse(src), res)
		if v.Kind != KindNumber || v.Num != want {
			t.Errorf("%s = %v, want %v", src, v, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"=", "=1+", "=SUM(", "=SUM(A1:A2", "=A1:", "=(1", "=1)", "=@",
		`="unterminated`, "=$", "=$1", "=FOO", "=A1 A2", "=1..2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, src := range []string{
		"SUM($B$1:B4)",
		"IF(A3=A2,N2+M3,M3)",
		"VLOOKUP(A1,$D$1:$F$100,2)",
		`CONCATENATE("a",B2)`,
	} {
		n := MustParse(src)
		again := MustParse(Text(n))
		if Text(again) != Text(n) {
			t.Errorf("round trip %q -> %q -> %q", src, Text(n), Text(again))
		}
	}
}

func TestRefs(t *testing.T) {
	refs, err := ExtractRefs("=IF(A3=A2,N2+M3,M3)*SUM($B$1:B4)")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A3", "A2", "N2", "M3", "M3", "B1:B4"}
	if len(refs) != len(want) {
		t.Fatalf("got %d refs, want %d: %v", len(refs), len(want), refs)
	}
	for i, w := range want {
		if refs[i].At != ref.MustRange(w) {
			t.Errorf("ref %d = %v, want %s", i, refs[i].At, w)
		}
	}
	// $B$1 head anchored, B4 tail not.
	last := refs[len(refs)-1]
	if !last.HeadFixed || last.TailFixed {
		t.Errorf("fixed flags wrong: %+v", last)
	}
}

func TestShiftAutofill(t *testing.T) {
	// The Fig. 2 pattern: autofilling N3 down one row shifts relative refs.
	src := "IF(A3=A2,N2+M3,M3)"
	n := Shift(MustParse(src), 0, 1)
	if got := Text(n); got != "IF((A4=A3),(N3+M4),M4)" {
		t.Errorf("shifted = %q", got)
	}
	// Fixed parts stay put.
	n = Shift(MustParse("SUM($B$1:B4)"), 0, 1)
	if got := Text(n); got != "SUM($B$1:B5)" {
		t.Errorf("shifted = %q", got)
	}
	// Column shifts respect $ on column only.
	n = Shift(MustParse("$A1+B$2"), 2, 5)
	if got := Text(n); got != "($A6+D$2)" {
		t.Errorf("shifted = %q", got)
	}
}

// gridResolver maps cells to values from a simple map for eval tests.
type gridResolver map[ref.Ref]Value

func (g gridResolver) CellValue(at ref.Ref) Value {
	if v, ok := g[at]; ok {
		return v
	}
	return Empty()
}

func grid(vals map[string]Value) gridResolver {
	g := gridResolver{}
	for k, v := range vals {
		g[ref.MustCell(k)] = v
	}
	return g
}

func TestEvalAggregates(t *testing.T) {
	g := grid(map[string]Value{
		"A1": Num(1), "A2": Num(2), "A3": Num(3),
		"B1": Str("x"), "B2": Num(10),
	})
	cases := map[string]Value{
		"=SUM(A1:A3)":          Num(6),
		"=SUM(A1:B3)":          Num(16), // text skipped
		"=SUM(A1,A2,5)":        Num(8),
		"=AVERAGE(A1:A3)":      Num(2),
		"=MIN(A1:A3)":          Num(1),
		"=MAX(A1:B3)":          Num(10),
		"=COUNT(A1:B3)":        Num(4),
		"=COUNTA(A1:B3)":       Num(5),
		"=PRODUCT(A1:A3)":      Num(6),
		"=SUM(A1:A3)*2":        Num(12),
		"=AVERAGE(B1)":         Errorf("#VALUE!"), // scalar text arg
		"=SUMIF(A1:A3,\">1\")": Num(5),
		"=COUNTIF(A1:A3,2)":    Num(1),
	}
	for src, want := range cases {
		got := Eval(MustParse(src), g)
		if got.Kind != want.Kind || got.Num != want.Num || got.Err != want.Err {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalIFAndLogic(t *testing.T) {
	g := grid(map[string]Value{"A1": Num(5), "A2": Num(5), "A3": Num(7)})
	cases := map[string]Value{
		"=IF(A1=A2,1,2)":        Num(1),
		"=IF(A1=A3,1,2)":        Num(2),
		"=IF(A1>4,\"y\",\"n\")": Str("y"),
		"=IF(FALSE,1)":          Boolean(false),
		"=AND(A1=A2,A3>6)":      Boolean(true),
		"=OR(A1<>A2,A3>6)":      Boolean(true),
		"=NOT(0)":               Boolean(true),
		"=IFERROR(1/0,42)":      Num(42),
		"=ISERROR(1/0)":         Boolean(true),
		"=ISNUMBER(A1)":         Boolean(true),
		"=ISBLANK(Z99)":         Boolean(true),
	}
	for src, want := range cases {
		got := Eval(MustParse(src), g)
		if got.Kind != want.Kind || got.Num != want.Num || got.Bool != want.Bool || got.Str != want.Str {
			t.Errorf("%s = %#v, want %#v", src, got, want)
		}
	}
}

func TestEvalStrings(t *testing.T) {
	g := grid(map[string]Value{"A1": Str("Hello"), "A2": Num(3)})
	cases := map[string]Value{
		`=A1&" world"`:        Str("Hello world"),
		`=CONCATENATE(A1,A2)`: Str("Hello3"),
		`=LEN(A1)`:            Num(5),
		`=UPPER(A1)`:          Str("HELLO"),
		`=LOWER(A1)`:          Str("hello"),
		`=LEFT(A1,2)`:         Str("He"),
		`=RIGHT(A1,2)`:        Str("lo"),
		`=TRIM("  x ")`:       Str("x"),
		`="a"="A"`:            Boolean(true),
	}
	for src, want := range cases {
		got := Eval(MustParse(src), g)
		if got.String() != want.String() || got.Kind != want.Kind {
			t.Errorf("%s = %#v, want %#v", src, got, want)
		}
	}
}

func TestEvalVlookup(t *testing.T) {
	g := grid(map[string]Value{
		"D1": Str("apple"), "E1": Num(10),
		"D2": Str("pear"), "E2": Num(20),
		"D3": Str("fig"), "E3": Num(30),
		"A1": Str("pear"),
	})
	got := Eval(MustParse("=VLOOKUP(A1,$D$1:$E$3,2)"), g)
	if got.Kind != KindNumber || got.Num != 20 {
		t.Fatalf("VLOOKUP = %v", got)
	}
	got = Eval(MustParse("=VLOOKUP(\"nope\",D1:E3,2)"), g)
	if !got.IsError() || got.Err != "#N/A" {
		t.Fatalf("missing key = %v", got)
	}
	got = Eval(MustParse("=VLOOKUP(A1,D1:E3,5)"), g)
	if !got.IsError() || got.Err != "#REF!" {
		t.Fatalf("bad col = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	g := grid(nil)
	cases := map[string]string{
		"=1/0":        "#DIV/0!",
		"=SQRT(-1)":   "#NUM!",
		"=LN(0)":      "#NUM!",
		"=NOSUCH(1)":  "#NAME?",
		`="a"*2`:      "#VALUE!",
		"=SUM(1/0,2)": "#DIV/0!",
	}
	for src, wantErr := range cases {
		got := Eval(MustParse(src), g)
		if !got.IsError() || got.Err != wantErr {
			t.Errorf("%s = %v, want error %s", src, got, wantErr)
		}
	}
}

func TestEvalComparisonsAndCoercion(t *testing.T) {
	g := grid(map[string]Value{"A1": Str("12")})
	got := Eval(MustParse("=A1+1"), g)
	if got.Num != 13 {
		t.Errorf("string coercion: %v", got)
	}
	got = Eval(MustParse("=Z1+5"), g) // empty -> 0
	if got.Num != 5 {
		t.Errorf("empty coercion: %v", got)
	}
	got = Eval(MustParse("=TRUE+1"), g)
	if got.Num != 2 {
		t.Errorf("bool coercion: %v", got)
	}
}

func TestValueString(t *testing.T) {
	if Num(1.5).String() != "1.5" || Num(3).String() != "3" {
		t.Error("number formatting")
	}
	if Boolean(true).String() != "TRUE" || Empty().String() != "" {
		t.Error("bool/empty formatting")
	}
	if Errorf("#REF!").String() != "#REF!" {
		t.Error("error formatting")
	}
}

func TestFig2Formula(t *testing.T) {
	// The running example from the paper's Fig. 2.
	src := "=IF(A3=A2,N2+M3,M3)"
	refs, err := ExtractRefs(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5 {
		t.Fatalf("want 5 refs, got %v", refs)
	}
	g := grid(map[string]Value{
		"A2": Str("CP1"), "A3": Str("CP1"),
		"N2": Num(100), "M3": Num(50),
	})
	v := Eval(MustParse(src), g)
	if v.Num != 150 {
		t.Fatalf("IF chain = %v, want 150", v)
	}
}

func TestLexerFunctionVsCellAmbiguity(t *testing.T) {
	// LOG10 would parse as cell LOG10? No: followed by '(' so treated as
	// a function name; unknown functions yield #NAME? at eval time.
	n, err := Parse("=LOG10(100)")
	if err != nil {
		t.Fatal(err)
	}
	call, ok := n.(*Call)
	if !ok || call.Name != "LOG10" {
		t.Fatalf("got %#v", n)
	}
}

func TestDeepNesting(t *testing.T) {
	depth := 200
	src := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if v := Eval(n, grid(nil)); v.Num != 1 {
		t.Fatalf("deep nesting = %v", v)
	}
}
