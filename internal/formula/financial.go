package formula

import (
	"math"
)

// Financial functions — the paper's introduction motivates TACO with
// "complex financial ... data analysis" spreadsheets; these are the
// functions such models lean on. All follow the spreadsheet sign
// convention: money paid out is negative.

// evalFinancial dispatches the financial function set; called from
// evalCallExt's default branch before giving up with #NAME?.
func evalFinancial(name string, args []arg, res Resolver) (Value, bool) {
	switch name {
	case "NPV":
		if len(args) < 2 {
			return Errorf("#N/A"), true
		}
		rate, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!"), true
		}
		if rate <= -1 {
			return Errorf("#NUM!"), true
		}
		total := 0.0
		period := 1
		var errVal Value
		var errv *Value
		for _, a := range args[1:] {
			a.eachValueSparse(res, func(v Value) bool {
				if v.IsError() {
					errVal = v
					errv = &errVal
					return false
				}
				if v.Kind == KindNumber {
					total += v.Num / math.Pow(1+rate, float64(period))
					period++
				}
				return true
			})
			if errv != nil {
				return *errv, true
			}
		}
		return Num(total), true
	case "PMT":
		// PMT(rate, nper, pv[, fv[, type]])
		vals, errv := numericArgs(args, 3, 5)
		if errv != nil {
			return *errv, true
		}
		rate, nper, pv := vals[0], vals[1], vals[2]
		fv, due := optArg(vals, 3), optArg(vals, 4) != 0
		if nper == 0 {
			return Errorf("#NUM!"), true
		}
		if rate == 0 {
			return Num(-(pv + fv) / nper), true
		}
		f := math.Pow(1+rate, nper)
		pmt := -(pv*f + fv) * rate / (f - 1)
		if due {
			pmt /= 1 + rate
		}
		return Num(pmt), true
	case "FV":
		// FV(rate, nper, pmt[, pv[, type]])
		vals, errv := numericArgs(args, 3, 5)
		if errv != nil {
			return *errv, true
		}
		rate, nper, pmt := vals[0], vals[1], vals[2]
		pv, due := optArg(vals, 3), optArg(vals, 4) != 0
		if rate == 0 {
			return Num(-(pv + pmt*nper)), true
		}
		f := math.Pow(1+rate, nper)
		adj := 1.0
		if due {
			adj = 1 + rate
		}
		return Num(-(pv*f + pmt*adj*(f-1)/rate)), true
	case "PV":
		// PV(rate, nper, pmt[, fv[, type]])
		vals, errv := numericArgs(args, 3, 5)
		if errv != nil {
			return *errv, true
		}
		rate, nper, pmt := vals[0], vals[1], vals[2]
		fv, due := optArg(vals, 3), optArg(vals, 4) != 0
		if rate == 0 {
			return Num(-(fv + pmt*nper)), true
		}
		f := math.Pow(1+rate, nper)
		adj := 1.0
		if due {
			adj = 1 + rate
		}
		return Num(-(fv + pmt*adj*(f-1)/rate) / f), true
	case "IRR":
		// IRR(values[, guess]) — Newton iteration on the NPV polynomial.
		if len(args) < 1 || !args[0].isRange {
			return Errorf("#N/A"), true
		}
		var flows []float64
		var errVal Value
		var errv *Value
		args[0].eachValueSparse(res, func(v Value) bool {
			if v.IsError() {
				errVal = v
				errv = &errVal
				return false
			}
			if v.Kind == KindNumber {
				flows = append(flows, v.Num)
			}
			return true
		})
		if errv != nil {
			return *errv, true
		}
		guess := 0.1
		if len(args) >= 2 {
			if g, ok := args[1].scalar.AsNumber(); ok {
				guess = g
			}
		}
		rate, ok := irr(flows, guess)
		if !ok {
			return Errorf("#NUM!"), true
		}
		return Num(rate), true
	default:
		return Value{}, false
	}
}

// numericArgs coerces between min and max scalar arguments to numbers.
func numericArgs(args []arg, min, max int) ([]float64, *Value) {
	if len(args) < min || len(args) > max {
		e := Errorf("#N/A")
		return nil, &e
	}
	out := make([]float64, len(args))
	for i, a := range args {
		if a.isRange {
			e := Errorf("#VALUE!")
			return nil, &e
		}
		f, ok := a.scalar.AsNumber()
		if !ok {
			e := Errorf("#VALUE!")
			return nil, &e
		}
		out[i] = f
	}
	return out, nil
}

func optArg(vals []float64, i int) float64 {
	if i < len(vals) {
		return vals[i]
	}
	return 0
}

// irr solves NPV(rate)=0 by Newton's method with bisection fallback.
func irr(flows []float64, guess float64) (float64, bool) {
	if len(flows) < 2 {
		return 0, false
	}
	pos, neg := false, false
	for _, f := range flows {
		if f > 0 {
			pos = true
		}
		if f < 0 {
			neg = true
		}
	}
	if !pos || !neg {
		return 0, false
	}
	npv := func(r float64) float64 {
		total := 0.0
		for i, f := range flows {
			total += f / math.Pow(1+r, float64(i))
		}
		return total
	}
	r := guess
	for iter := 0; iter < 64; iter++ {
		v := npv(r)
		if math.Abs(v) < 1e-9 {
			return r, true
		}
		// Numeric derivative.
		h := 1e-6
		d := (npv(r+h) - v) / h
		if d == 0 || math.IsNaN(d) {
			break
		}
		next := r - v/d
		if next <= -1 {
			next = (r - 1) / 2 // keep the rate above -100%
		}
		if math.Abs(next-r) < 1e-12 {
			return next, true
		}
		r = next
	}
	// Bisection fallback over a broad bracket.
	lo, hi := -0.9999, 10.0
	vlo := npv(lo)
	if vlo*npv(hi) > 0 {
		return 0, false
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		v := npv(mid)
		if math.Abs(v) < 1e-9 {
			return mid, true
		}
		if v*vlo < 0 {
			hi = mid
		} else {
			lo = mid
			vlo = v
		}
	}
	return (lo + hi) / 2, true
}
