package formula

import (
	"taco/internal/ref"
)

// RefInfo describes one range a formula references, together with the `$`
// fixed/relative markers on its head and tail corners. These markers are the
// autofill cues from Sec. IV-A of the paper: a corner written with `$` on
// both axes is a fixed reference, otherwise relative; the greedy compressor
// uses them to prioritise FR/RF/FF/RR when several patterns are valid.
type RefInfo struct {
	At ref.Range
	// HeadFixed / TailFixed report whether the respective corner is fully
	// anchored (both column and row carry `$`).
	HeadFixed bool
	TailFixed bool
}

// Refs returns every range the parsed formula references, in source order.
// Single-cell references become 1x1 ranges. Duplicated references are
// returned once per occurrence — the formula graph stores one dependency per
// referenced range occurrence, matching the paper's edge model.
func Refs(n Node) []RefInfo {
	var out []RefInfo
	walk(n, func(x Node) {
		switch t := x.(type) {
		case *CellRef:
			out = append(out, RefInfo{
				At:        ref.CellRange(t.At),
				HeadFixed: t.ColFixed && t.RowFixed,
				TailFixed: t.ColFixed && t.RowFixed,
			})
		case *RangeRef:
			out = append(out, RefInfo{
				At:        t.At,
				HeadFixed: t.HeadColFixed && t.HeadRowF,
				TailFixed: t.TailColFixed && t.TailRowF,
			})
		}
	})
	return out
}

// ExtractRefs parses src and returns its references. It is the convenience
// path used when loading spreadsheets from files.
func ExtractRefs(src string) ([]RefInfo, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Refs(n), nil
}

// walk visits every node of the AST in depth-first source order.
func walk(n Node, fn func(Node)) {
	fn(n)
	switch t := n.(type) {
	case *Binary:
		walk(t.L, fn)
		walk(t.R, fn)
	case *Unary:
		walk(t.X, fn)
	case *Call:
		for _, a := range t.Args {
			walk(a, fn)
		}
	}
}

// Shift returns a copy of the AST with every *relative* reference displaced
// by (dCol, dRow), reproducing the autofill/copy-paste rules: `$`-anchored
// axes stay put, unanchored axes move. This is how workload generators
// derive a column of formulae from one source formula, exactly the process
// that creates tabular locality in real spreadsheets.
func Shift(n Node, dCol, dRow int) Node {
	switch t := n.(type) {
	case *Number, *String, *Bool:
		return n
	case *CellRef:
		c := *t
		if !c.ColFixed {
			c.At.Col += dCol
		}
		if !c.RowFixed {
			c.At.Row += dRow
		}
		return &c
	case *RangeRef:
		r := *t
		h, tl := r.At.Head, r.At.Tail
		if !r.HeadColFixed {
			h.Col += dCol
		}
		if !r.HeadRowF {
			h.Row += dRow
		}
		if !r.TailColFixed {
			tl.Col += dCol
		}
		if !r.TailRowF {
			tl.Row += dRow
		}
		r.At = ref.RangeOf(h, tl)
		return &r
	case *Binary:
		return &Binary{Op: t.Op, L: Shift(t.L, dCol, dRow), R: Shift(t.R, dCol, dRow)}
	case *Unary:
		return &Unary{Op: t.Op, Postfix: t.Postfix, X: Shift(t.X, dCol, dRow)}
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = Shift(a, dCol, dRow)
		}
		return &Call{Name: t.Name, Args: args}
	}
	return n
}
