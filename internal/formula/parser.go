package formula

import (
	"strings"

	"taco/internal/ref"
)

// Node is a formula AST node.
type Node interface {
	// writeTo renders the node back to formula text.
	writeTo(sb *strings.Builder)
}

// Number is a numeric literal.
type Number struct{ Value float64 }

// String is a string literal.
type String struct{ Value string }

// Bool is a boolean literal (TRUE/FALSE).
type Bool struct{ Value bool }

// CellRef is a single-cell reference with `$` fixed markers.
type CellRef struct {
	At       ref.Ref
	ColFixed bool
	RowFixed bool
}

// RangeRef is a rectangular range reference. The four fixed flags carry the
// `$` markers of the head and tail corners as written.
type RangeRef struct {
	At                     ref.Range
	HeadColFixed, HeadRowF bool
	TailColFixed, TailRowF bool
}

// Binary is an infix operation. Op is one of + - * / ^ & = <> < > <= >=.
type Binary struct {
	Op   string
	L, R Node
}

// Unary is a prefix +/- or postfix % operation.
type Unary struct {
	Op      string // "-", "+", "%"
	Postfix bool
	X       Node
}

// Call is a function invocation.
type Call struct {
	Name string
	Args []Node
}

func (n *Number) writeTo(sb *strings.Builder) {
	sb.WriteString(formatNum(n.Value))
}
func (n *String) writeTo(sb *strings.Builder) {
	sb.WriteByte('"')
	sb.WriteString(strings.ReplaceAll(n.Value, `"`, `""`))
	sb.WriteByte('"')
}
func (n *Bool) writeTo(sb *strings.Builder) {
	if n.Value {
		sb.WriteString("TRUE")
	} else {
		sb.WriteString("FALSE")
	}
}
func (n *CellRef) writeTo(sb *strings.Builder) {
	writeRef(sb, n.At, n.ColFixed, n.RowFixed)
}
func (n *RangeRef) writeTo(sb *strings.Builder) {
	writeRef(sb, n.At.Head, n.HeadColFixed, n.HeadRowF)
	sb.WriteByte(':')
	writeRef(sb, n.At.Tail, n.TailColFixed, n.TailRowF)
}
func (n *Binary) writeTo(sb *strings.Builder) {
	sb.WriteByte('(')
	n.L.writeTo(sb)
	n.R2Op(sb)
	n.R.writeTo(sb)
	sb.WriteByte(')')
}

// R2Op writes the operator between operands.
func (n *Binary) R2Op(sb *strings.Builder) { sb.WriteString(n.Op) }

func (n *Unary) writeTo(sb *strings.Builder) {
	if n.Postfix {
		n.X.writeTo(sb)
		sb.WriteString(n.Op)
		return
	}
	sb.WriteString(n.Op)
	n.X.writeTo(sb)
}
func (n *Call) writeTo(sb *strings.Builder) {
	sb.WriteString(n.Name)
	sb.WriteByte('(')
	for i, a := range n.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		a.writeTo(sb)
	}
	sb.WriteByte(')')
}

func writeRef(sb *strings.Builder, r ref.Ref, colFixed, rowFixed bool) {
	if colFixed {
		sb.WriteByte('$')
	}
	sb.WriteString(ref.ColName(r.Col))
	if rowFixed {
		sb.WriteByte('$')
	}
	sb.WriteString(itoa(r.Row))
}

func itoa(v int) string {
	return formatNumInt(v)
}

// Text renders an AST back to formula source (without the leading '=').
func Text(n Node) string {
	var sb strings.Builder
	n.writeTo(&sb)
	return sb.String()
}

// Parse parses a formula. A leading '=' is accepted and ignored.
func Parse(src string) (Node, error) {
	s := strings.TrimSpace(src)
	if strings.HasPrefix(s, "=") {
		s = s[1:]
	}
	p := &parser{lx: lexer{src: s}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.lx.errf(p.tok.pos, "unexpected %q after expression", p.tok.text)
	}
	return n, nil
}

// MustParse parses a formula and panics on error. Intended for tests.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	lx  lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// binding powers, lowest to highest.
func precedence(op string) int {
	switch op {
	case "=", "<>", "<", ">", "<=", ">=":
		return 1
	case "&":
		return 2
	case "+", "-":
		return 3
	case "*", "/":
		return 4
	case "^":
		return 5
	}
	return 0
}

func (p *parser) parseExpr(minPrec int) (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp {
		op := p.tok.text
		prec := precedence(op)
		if prec == 0 || prec < minPrec {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		// ^ is right-associative; the rest left-associative.
		nextMin := prec + 1
		if op == "^" {
			nextMin = prec
		}
		right, err := p.parseExpr(nextMin)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.tok.kind == tokOp && (p.tok.text == "-" || p.tok.text == "+") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.parsePercent(&Unary{Op: op, X: x})
	}
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePercent(x)
}

func (p *parser) parsePercent(x Node) (Node, error) {
	for p.tok.kind == tokOp && p.tok.text == "%" {
		x = &Unary{Op: "%", Postfix: true, X: x}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.tok.kind {
	case tokNumber:
		n := &Number{Value: p.tok.num}
		return n, p.advance()
	case tokString:
		n := &String{Value: p.tok.text}
		return n, p.advance()
	case tokCell:
		head := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokColon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokCell {
				return nil, p.lx.errf(p.tok.pos, "expected cell after ':'")
			}
			tail := p.tok
			if err := p.advance(); err != nil {
				return nil, err
			}
			return rangeNode(head, tail), nil
		}
		return &CellRef{
			At:       ref.Ref{Col: head.col, Row: head.row},
			ColFixed: head.colFixed, RowFixed: head.rowFixed,
		}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "TRUE":
			return &Bool{Value: true}, nil
		case "FALSE":
			return &Bool{Value: false}, nil
		}
		if p.tok.kind != tokLParen {
			return nil, p.lx.errf(p.tok.pos, "expected '(' after function name %s", name)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []Node
		if p.tok.kind != tokRParen {
			for {
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
		if p.tok.kind != tokRParen {
			return nil, p.lx.errf(p.tok.pos, "expected ')' in call to %s", name)
		}
		return &Call{Name: name, Args: args}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.lx.errf(p.tok.pos, "expected ')'")
		}
		return x, p.advance()
	case tokEOF:
		return nil, p.lx.errf(p.tok.pos, "unexpected end of formula")
	default:
		return nil, p.lx.errf(p.tok.pos, "unexpected token %q", p.tok.text)
	}
}

func rangeNode(head, tail token) Node {
	a := ref.Ref{Col: head.col, Row: head.row}
	b := ref.Ref{Col: tail.col, Row: tail.row}
	g := ref.RangeOf(a, b)
	// Keep the fixed flags attached to the normalised corners: if the
	// reference was written reversed, swap the flags accordingly.
	hc, hr, tc, tr := head.colFixed, head.rowFixed, tail.colFixed, tail.rowFixed
	if g.Head != a {
		// Corners swapped on at least one axis; map flags per axis.
		if a.Col > b.Col {
			hc, tc = tc, hc
		}
		if a.Row > b.Row {
			hr, tr = tr, hr
		}
	}
	return &RangeRef{At: g, HeadColFixed: hc, HeadRowF: hr, TailColFixed: tc, TailRowF: tr}
}
