package formula

import (
	"math"
	"testing"

	"taco/internal/ref"
)

func evalOn(t *testing.T, g gridResolver, src string) Value {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Eval(n, g)
}

func TestMathExtensions(t *testing.T) {
	g := grid(nil)
	cases := map[string]float64{
		"=FLOOR(7.3)":     7,
		"=FLOOR(7.3,0.5)": 7,
		"=FLOOR(7.6,0.5)": 7.5,
		"=CEILING(7.3)":   8,
		"=CEILING(7.1,2)": 8,
		"=TRUNC(3.79)":    3,
		"=TRUNC(3.79,1)":  3.7,
		"=TRUNC(-3.79)":   -3,
		"=SIGN(-9)":       -1,
		"=SIGN(0)":        0,
		"=SIGN(42)":       1,
		"=LOG(8,2)":       3,
		"=LOG(100)":       2,
		"=LOG10(1000)":    3,
		"=SUMSQ(3,4)":     25,
	}
	for src, want := range cases {
		got := evalOn(t, g, src)
		if got.Kind != KindNumber || math.Abs(got.Num-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if v := evalOn(t, g, "=PI()"); math.Abs(v.Num-math.Pi) > 1e-12 {
		t.Errorf("PI() = %v", v)
	}
	for src, wantErr := range map[string]string{
		"=FLOOR(1,0)": "#DIV/0!",
		"=LOG(-1)":    "#NUM!",
		"=LOG(8,1)":   "#NUM!",
		"=LOG10(0)":   "#NUM!",
	} {
		if got := evalOn(t, g, src); !got.IsError() || got.Err != wantErr {
			t.Errorf("%s = %v, want %s", src, got, wantErr)
		}
	}
}

func TestStatistics(t *testing.T) {
	g := grid(map[string]Value{
		"A1": Num(4), "A2": Num(1), "A3": Num(7), "A4": Num(4), "A5": Num(9),
	})
	cases := map[string]float64{
		"=MEDIAN(A1:A5)":   4,
		"=MEDIAN(A1:A4)":   4,
		"=MEDIAN(1,2,3,4)": 2.5,
		"=LARGE(A1:A5,1)":  9,
		"=LARGE(A1:A5,2)":  7,
		"=SMALL(A1:A5,1)":  1,
		"=SMALL(A1:A5,3)":  4,
		"=RANK(7,A1:A5)":   2,
		"=RANK(1,A1:A5,1)": 1,
		"=VAR(2,4,6)":      4,
		"=STDEV(2,4,6)":    2,
	}
	for src, want := range cases {
		got := evalOn(t, g, src)
		if got.Kind != KindNumber || math.Abs(got.Num-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	for src, wantErr := range map[string]string{
		"=LARGE(A1:A5,0)":  "#NUM!",
		"=LARGE(A1:A5,99)": "#NUM!",
		"=RANK(100,A1:A5)": "#N/A",
		"=STDEV(5)":        "#DIV/0!",
		"=MEDIAN(B9:B10)":  "#NUM!", // no numbers in range
	} {
		if got := evalOn(t, g, src); !got.IsError() || got.Err != wantErr {
			t.Errorf("%s = %v, want %s", src, got, wantErr)
		}
	}
}

func TestCountBlank(t *testing.T) {
	g := grid(map[string]Value{"A1": Num(1), "A3": Str("")})
	// A2 missing -> blank; A3 holds an empty *string*, which is not blank.
	if got := evalOn(t, g, "=COUNTBLANK(A1:A3)"); got.Num != 1 {
		t.Errorf("COUNTBLANK = %v", got)
	}
}

func TestSumProduct(t *testing.T) {
	g := grid(map[string]Value{
		"A1": Num(1), "A2": Num(2), "A3": Num(3),
		"B1": Num(10), "B2": Num(20), "B3": Num(30),
	})
	if got := evalOn(t, g, "=SUMPRODUCT(A1:A3,B1:B3)"); got.Num != 140 {
		t.Errorf("SUMPRODUCT = %v", got)
	}
	// Shape mismatch errors.
	if got := evalOn(t, g, "=SUMPRODUCT(A1:A3,B1:B2)"); !got.IsError() {
		t.Errorf("shape mismatch = %v", got)
	}
	// Scalar argument errors.
	if got := evalOn(t, g, "=SUMPRODUCT(A1:A3,5)"); !got.IsError() {
		t.Errorf("scalar arg = %v", got)
	}
}

func TestLookupExtensions(t *testing.T) {
	g := grid(map[string]Value{
		// Horizontal table: names in row 1, scores in row 2.
		"D1": Str("ann"), "E1": Str("bob"), "F1": Str("cat"),
		"D2": Num(10), "E2": Num(20), "F2": Num(30),
	})
	if got := evalOn(t, g, `=HLOOKUP("bob",D1:F2,2)`); got.Num != 20 {
		t.Errorf("HLOOKUP = %v", got)
	}
	if got := evalOn(t, g, `=HLOOKUP("zed",D1:F2,2)`); got.Err != "#N/A" {
		t.Errorf("HLOOKUP missing = %v", got)
	}
	if got := evalOn(t, g, `=HLOOKUP("ann",D1:F2,9)`); got.Err != "#REF!" {
		t.Errorf("HLOOKUP bad row = %v", got)
	}
	if got := evalOn(t, g, `=INDEX(D1:F2,2,3)`); got.Num != 30 {
		t.Errorf("INDEX = %v", got)
	}
	if got := evalOn(t, g, `=INDEX(D2:F2,3)`); got.Num != 30 {
		t.Errorf("INDEX row vector = %v", got)
	}
	if got := evalOn(t, g, `=INDEX(D1:F2,5,1)`); got.Err != "#REF!" {
		t.Errorf("INDEX out of range = %v", got)
	}
	if got := evalOn(t, g, `=MATCH("cat",D1:F1,0)`); got.Num != 3 {
		t.Errorf("MATCH = %v", got)
	}
	if got := evalOn(t, g, `=MATCH("zed",D1:F1,0)`); got.Err != "#N/A" {
		t.Errorf("MATCH missing = %v", got)
	}
	if got := evalOn(t, g, `=MATCH("ann",D1:F2,0)`); got.Err != "#N/A" {
		t.Errorf("MATCH 2D range = %v", got)
	}
	if got := evalOn(t, g, `=INDEX(D1:F1,MATCH("bob",D1:F1,0))`); got.Str != "bob" {
		t.Errorf("INDEX/MATCH = %v", got)
	}
	if got := evalOn(t, g, `=CHOOSE(2,"a","b","c")`); got.Str != "b" {
		t.Errorf("CHOOSE = %v", got)
	}
	if got := evalOn(t, g, `=CHOOSE(9,"a")`); !got.IsError() {
		t.Errorf("CHOOSE out of range = %v", got)
	}
}

func TestTextExtensions(t *testing.T) {
	g := grid(map[string]Value{"A1": Str("spreadsheet")})
	cases := map[string]Value{
		`=MID(A1,7,5)`:                Str("sheet"),
		`=MID(A1,7,99)`:               Str("sheet"),
		`=MID(A1,99,2)`:               Str(""),
		`=FIND("sheet",A1)`:           Num(7),
		`=FIND("e",A1,5)`:             Num(9),
		`=SUBSTITUTE(A1,"sheet","X")`: Str("spreadX"),
		`=REPT("ab",3)`:               Str("ababab"),
		`=EXACT("a","a")`:             Boolean(true),
		`=EXACT("a","A")`:             Boolean(false),
		`=PROPER("heLLo worLD-go")`:   Str("Hello World-Go"),
		`=VALUE("12.5")`:              Num(12.5),
	}
	for src, want := range cases {
		got := evalOn(t, g, src)
		if got.Kind != want.Kind || got.String() != want.String() {
			t.Errorf("%s = %#v, want %#v", src, got, want)
		}
	}
	if got := evalOn(t, g, `=FIND("zzz",A1)`); !got.IsError() {
		t.Errorf("FIND missing = %v", got)
	}
	if got := evalOn(t, g, `=VALUE("abc")`); !got.IsError() {
		t.Errorf("VALUE non-numeric = %v", got)
	}
}

func TestLogicAndInfoExtensions(t *testing.T) {
	g := grid(map[string]Value{"A1": Str("x"), "A2": Num(3), "A3": Boolean(true)})
	cases := map[string]Value{
		"=XOR(TRUE,FALSE)": Boolean(true),
		"=XOR(TRUE,TRUE)":  Boolean(false),
		"=XOR(1,1,1)":      Boolean(true),
		"=ISTEXT(A1)":      Boolean(true),
		"=ISTEXT(A2)":      Boolean(false),
		"=ISLOGICAL(A3)":   Boolean(true),
		"=ISEVEN(4)":       Boolean(true),
		"=ISEVEN(3)":       Boolean(false),
		"=ISODD(3)":        Boolean(true),
	}
	for src, want := range cases {
		got := evalOn(t, g, src)
		if got.Kind != want.Kind || got.Bool != want.Bool {
			t.Errorf("%s = %#v, want %#v", src, got, want)
		}
	}
	if got := evalOn(t, g, "=NA()"); got.Err != "#N/A" {
		t.Errorf("NA() = %v", got)
	}
	if got := evalOn(t, g, "=TOTALLYUNKNOWN(1)"); got.Err != "#NAME?" {
		t.Errorf("unknown fn = %v", got)
	}
}

func TestExtendedFunctionsInRefGraph(t *testing.T) {
	// Extended functions feed dependencies like any other: an INDEX/MATCH
	// pair references both its table and key ranges.
	refs, err := ExtractRefs(`=INDEX($D$1:$F$2,2,MATCH(A1,$D$1:$F$1,0))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("refs = %v", refs)
	}
	if refs[0].At != ref.MustRange("D1:F2") || !refs[0].HeadFixed || !refs[0].TailFixed {
		t.Fatalf("table ref = %+v", refs[0])
	}
}
