package formula

import (
	"math/rand"
	"strings"
	"testing"

	"taco/internal/ref"
)

// TestParserNeverPanicsOnRandomInput throws random byte soup at the parser;
// it must return (node, nil) or (nil, error), never panic.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	alphabet := []byte(`=+-*/^&%<>()",.:$ABCxyz019 	` + "\"")
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			node, err := Parse(src)
			if err == nil && node == nil {
				t.Fatalf("nil node without error for %q", src)
			}
			if err == nil {
				// Anything that parses must render and re-parse.
				again, err2 := Parse(Text(node))
				if err2 != nil {
					t.Fatalf("round trip of %q -> %q failed: %v", src, Text(node), err2)
				}
				if Text(again) != Text(node) {
					t.Fatalf("unstable round trip: %q -> %q -> %q", src, Text(node), Text(again))
				}
			}
		}()
	}
}

// genFormula builds a random syntactically valid formula AST.
func genFormula(rng *rand.Rand, depth int) Node {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Number{Value: float64(rng.Intn(1000)) / 10}
		case 1:
			return &String{Value: "s" + string(rune('a'+rng.Intn(26)))}
		case 2:
			return &CellRef{
				At:       ref.Ref{Col: 1 + rng.Intn(20), Row: 1 + rng.Intn(50)},
				ColFixed: rng.Intn(2) == 0, RowFixed: rng.Intn(2) == 0,
			}
		default:
			a := ref.Ref{Col: 1 + rng.Intn(20), Row: 1 + rng.Intn(50)}
			b := ref.Ref{Col: a.Col + rng.Intn(3), Row: a.Row + rng.Intn(5)}
			return &RangeRef{At: ref.RangeOf(a, b)}
		}
	}
	switch rng.Intn(4) {
	case 0:
		ops := []string{"+", "-", "*", "/", "^", "&", "=", "<>", "<", ">", "<=", ">="}
		return &Binary{
			Op: ops[rng.Intn(len(ops))],
			L:  genFormula(rng, depth-1),
			R:  genFormula(rng, depth-1),
		}
	case 1:
		return &Unary{Op: "-", X: genFormula(rng, depth-1)}
	case 2:
		return &Unary{Op: "%", Postfix: true, X: genFormula(rng, depth-1)}
	default:
		fns := []string{"SUM", "IF", "MIN", "MAX", "AVERAGE", "CONCATENATE"}
		name := fns[rng.Intn(len(fns))]
		nArgs := 1 + rng.Intn(3)
		if name == "IF" {
			nArgs = 3
		}
		args := make([]Node, nArgs)
		for i := range args {
			args[i] = genFormula(rng, depth-1)
		}
		return &Call{Name: name, Args: args}
	}
}

// TestGeneratedFormulasRoundTrip: Text∘Parse is the identity on rendered
// ASTs, and extracted references survive the round trip.
func TestGeneratedFormulasRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		ast := genFormula(rng, 1+rng.Intn(3))
		src := Text(ast)
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("generated formula %q failed to parse: %v", src, err)
		}
		if Text(parsed) != src {
			t.Fatalf("round trip changed %q -> %q", src, Text(parsed))
		}
		a, b := Refs(ast), Refs(parsed)
		if len(a) != len(b) {
			t.Fatalf("%q: refs %d vs %d", src, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%q: ref %d differs: %+v vs %+v", src, j, a[j], b[j])
			}
		}
	}
}

// TestShiftRoundTrip: shifting down then up is the identity for formulas
// whose references stay in bounds.
func TestShiftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		ast := genFormula(rng, 2)
		dCol, dRow := rng.Intn(5), rng.Intn(5)
		back := Shift(Shift(ast, dCol, dRow), -dCol, -dRow)
		if Text(back) != Text(ast) {
			t.Fatalf("shift round trip changed %q -> %q", Text(ast), Text(back))
		}
	}
}

// TestEvalNeverPanics evaluates generated formulas against a noisy grid.
func TestEvalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	res := ResolverFunc(func(at ref.Ref) Value {
		switch (at.Col + at.Row) % 4 {
		case 0:
			return Num(float64(at.Row))
		case 1:
			return Str("txt")
		case 2:
			return Boolean(at.Row%2 == 0)
		default:
			return Empty()
		}
	})
	for i := 0; i < 2000; i++ {
		ast := genFormula(rng, 3)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic evaluating %q: %v", Text(ast), r)
				}
			}()
			_ = Eval(ast, res)
		}()
	}
	// Also evaluate some deeply nested arithmetic.
	deep := strings.Repeat("1+(", 150) + "1" + strings.Repeat(")", 150)
	v := Eval(MustParse(deep), res)
	if v.Kind != KindNumber || v.Num != 151 {
		t.Fatalf("deep arithmetic = %v", v)
	}
}
