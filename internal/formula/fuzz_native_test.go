package formula

import (
	"testing"

	"taco/internal/ref"
)

// Native go-fuzz targets. CI smoke-runs each with a bounded -fuzztime; the
// deterministic random-input tests in fuzz_test.go stay as the always-on
// tier-1 variant.

// FuzzParse: the parser must never panic, and anything that parses must
// render (Text) and re-parse to a fixed point.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"=SUM(A1:B10)",
		"=IF(A1>0,SUM($B$1:B5)*2,\"neg\")",
		"=VLOOKUP(3,A1:C9,2)",
		"=1+(2*3)%",
		"=-A1^2&\"x\"",
		"((((",
		"=SUM(",
		"=A1:B2:C3",
		"=$Z$99+AA100",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Parse(src)
		if err != nil {
			return
		}
		if node == nil {
			t.Fatalf("nil node without error for %q", src)
		}
		rendered := Text(node)
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", src, rendered, err)
		}
		if Text(again) != rendered {
			t.Fatalf("unstable round trip: %q -> %q -> %q", src, rendered, Text(again))
		}
	})
}

// FuzzEval: evaluating any parse result against both a plain and a
// range-capable resolver must never panic, and the two resolver paths must
// agree — the bulk range fast path is behaviour-preserving by construction.
func FuzzEval(f *testing.F) {
	seeds := []string{
		"=SUM(A1:C20)",
		"=SUMIF(A1:A20,\">2\",B1:B20)",
		"=COUNTIF(B1:B20,0)",
		"=SUMPRODUCT(A1:A9,B1:B9)",
		"=VLOOKUP(0,A1:B20,2)",
		"=AVERAGE(A1:A20)/COUNTBLANK(B1:B20)",
		"=MIN(A1:B20)&MAX(A1:B20)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	grid := map[ref.Ref]Value{}
	for row := 1; row <= 20; row++ {
		switch row % 5 {
		case 0: // leave a gap: sparse columns
		case 1:
			grid[ref.Ref{Col: 1, Row: row}] = Num(float64(row))
		case 2:
			grid[ref.Ref{Col: 2, Row: row}] = Str("t")
		case 3:
			grid[ref.Ref{Col: 1, Row: row}] = Boolean(row%2 == 0)
			grid[ref.Ref{Col: 2, Row: row}] = Num(-float64(row))
		default:
			grid[ref.Ref{Col: 3, Row: row}] = Errorf("#DIV/0!")
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Parse(src)
		if err != nil {
			return
		}
		bulk := Eval(node, &colResolver{cells: grid})
		percell := Eval(node, &colResolver{cells: grid, decline: true})
		if !sameValue(bulk, percell) {
			t.Fatalf("%q: bulk=%v percell=%v", src, bulk, percell)
		}
	})
}

// FuzzBytecodeEval: the AST≡VM pin. Anything that parses and compiles must
// evaluate to the same value on the stack VM as on the AST walker — under
// both resolver variants and at a shifted anchor with the AST shifted
// alongside, which is exactly the configuration the engine's pattern-run
// drain evaluates (one interned program, many anchors).
func FuzzBytecodeEval(f *testing.F) {
	seeds := []string{
		"=A1*B1+C1",
		"=SUM(A1:C20)%",
		"=IF(A1>0,SUM($B$1:B5)*2,\"neg\")",
		"=SUMIF(A1:A20,\">2\",B1:B20)",
		"=SUMPRODUCT(A1:A9,B1:B9)",
		"=IFERROR(1/C3,VLOOKUP(0,A1:B20,2))",
		"=MIN(A1:B20)&MAX(A1:B20)&NOSUCH(A2)",
		"=-$A$3^2&CONCAT(B2,\"x\")",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	grid := map[ref.Ref]Value{}
	for row := 1; row <= 20; row++ {
		switch row % 5 {
		case 0: // gap
		case 1:
			grid[ref.Ref{Col: 1, Row: row}] = Num(float64(row) * 1.5)
		case 2:
			grid[ref.Ref{Col: 2, Row: row}] = Str("t")
		case 3:
			grid[ref.Ref{Col: 1, Row: row}] = Boolean(row%2 == 0)
			grid[ref.Ref{Col: 2, Row: row}] = Num(-float64(row))
		default:
			grid[ref.Ref{Col: 3, Row: row}] = Errorf("#DIV/0!")
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Parse(src)
		if err != nil {
			return
		}
		anchor := ref.Ref{Col: 4, Row: 7}
		p := Compile(node, anchor)
		if p == nil {
			return // uncompilable stays on the walker by design
		}
		for _, decline := range []bool{false, true} {
			want := Eval(node, &colResolver{cells: grid, decline: decline})
			got := p.EvalAt(&colResolver{cells: grid, decline: decline}, anchor)
			if !sameValue(got, want) {
				t.Fatalf("%q (decline=%v): VM=%v AST=%v", src, decline, got, want)
			}
		}
		shifted := Shift(node, 1, 3)
		at2 := ref.Ref{Col: anchor.Col + 1, Row: anchor.Row + 3}
		p2 := Compile(shifted, at2)
		if p2 == nil {
			t.Fatalf("%q: original compiled but shifted copy did not", src)
		}
		want := Eval(shifted, &colResolver{cells: grid})
		if got := p2.EvalAt(&colResolver{cells: grid}, at2); !sameValue(got, want) {
			t.Fatalf("%q shifted: VM=%v AST=%v", src, got, want)
		}
	})
}
