package formula

import (
	"math"
	"slices"
	"testing"

	"taco/internal/ref"
)

// colResolver is a map-backed RangeResolver test double: CellValue probes
// the map, RangeValues streams the populated cells in row-major order like
// a columnar store would. With decline set it refuses bulk scans, forcing
// callers onto the per-cell fallback.
type colResolver struct {
	cells   map[ref.Ref]Value
	decline bool
	scans   int // bulk scans served
	probes  int // CellValue probes answered
}

func (g *colResolver) CellValue(at ref.Ref) Value {
	g.probes++
	return g.cells[at]
}

func (g *colResolver) RangeValues(rng ref.Range, fn func(ref.Ref, Value) bool) bool {
	if g.decline {
		return false
	}
	g.scans++
	var populated []ref.Ref
	for at := range g.cells {
		if rng.Contains(at) {
			populated = append(populated, at)
		}
	}
	slices.SortFunc(populated, func(a, b ref.Ref) int {
		if a.Row != b.Row {
			return a.Row - b.Row
		}
		return a.Col - b.Col
	})
	for _, at := range populated {
		if !fn(at, g.cells[at]) {
			return true
		}
	}
	return true
}

// sameValue is Value equality with NaN==NaN: both paths can legitimately
// compute NaN (e.g. 0*Inf), and that must count as agreement.
func sameValue(a, b Value) bool {
	if a.Kind == KindNumber && b.Kind == KindNumber &&
		math.IsNaN(a.Num) && math.IsNaN(b.Num) {
		return true
	}
	return a == b
}

func rangeTestGrid() map[ref.Ref]Value {
	cells := map[ref.Ref]Value{}
	for row := 1; row <= 30; row++ {
		cells[ref.Ref{Col: 1, Row: row}] = Num(float64(row))
	}
	cells[ref.Ref{Col: 2, Row: 4}] = Num(10)
	cells[ref.Ref{Col: 2, Row: 9}] = Str("txt")
	cells[ref.Ref{Col: 2, Row: 17}] = Num(-2)
	cells[ref.Ref{Col: 2, Row: 25}] = Str("5")
	cells[ref.Ref{Col: 2, Row: 28}] = Boolean(true)
	// Column C empty; column D sparse with an error.
	cells[ref.Ref{Col: 4, Row: 6}] = Errorf("#DIV/0!")
	cells[ref.Ref{Col: 4, Row: 12}] = Num(7)
	return cells
}

// TestRangeResolverMatchesPerCell evaluates every bulk-capable builtin
// against the same grid through the bulk path and the per-cell path.
func TestRangeResolverMatchesPerCell(t *testing.T) {
	srcs := []string{
		"=SUM(A1:A30)",
		"=SUM(B1:B30)",
		"=SUM(C1:C30)",
		"=SUM(A1:C30)",
		"=SUM(A30:A1)",
		"=SUM(A5:A5)",
		"=AVERAGE(B1:B30)",
		"=MIN(B1:B30)",
		"=MAX(A1:B30)",
		"=COUNT(A1:D30)",
		"=COUNTA(A1:D30)",
		"=COUNTBLANK(A1:D30)",
		"=PRODUCT(B1:B30)",
		"=MEDIAN(A1:A30)",
		"=SUM(D1:D30)", // error cell propagates identically
		"=SUMIF(A1:A30,\">20\")",
		"=SUMIF(B1:B30,\">0\",A1:A30)",
		"=SUMIF(B1:B30,\"txt\",A1:A30)",
		"=SUMIF(C1:C30,\"<1\",A1:A30)", // blank-matching: fallback path
		"=COUNTIF(A1:A30,\"<>7\")",
		"=COUNTIF(B1:B30,\">=0\")", // blank-matching: compensated scan
		"=SUMPRODUCT(A1:A30,B1:B30)",
		"=VLOOKUP(17,A1:B30,2)",
		"=VLOOKUP(99,A1:B30,1)",
		"=VLOOKUP(0,A1:B30,1)", // blank-matching needle: fallback path
	}
	grid := rangeTestGrid()
	for _, src := range srcs {
		ast := MustParse(src)
		bulkRes := &colResolver{cells: grid}
		perRes := &colResolver{cells: grid, decline: true}
		bulk := Eval(ast, bulkRes)
		percell := Eval(ast, perRes)
		if !sameValue(bulk, percell) {
			t.Errorf("%s: bulk=%v percell=%v", src, bulk, percell)
		}
		if perRes.scans != 0 {
			t.Errorf("%s: declining resolver served %d scans", src, perRes.scans)
		}
	}
}

// TestRangeResolverTakesBulkPath asserts the fast path actually engages:
// a 30-cell SUM must cost one scan and zero per-cell probes.
func TestRangeResolverTakesBulkPath(t *testing.T) {
	res := &colResolver{cells: rangeTestGrid()}
	v := Eval(MustParse("=SUM(A1:A30)"), res)
	if v.Num != 465 {
		t.Fatalf("SUM = %v, want 465", v)
	}
	if res.scans != 1 || res.probes != 0 {
		t.Fatalf("scans=%d probes=%d, want 1 scan and 0 probes", res.scans, res.probes)
	}
}

// TestRangeResolverFallbackProbes: a resolver without bulk support pays one
// probe per range cell — the legacy path, still correct.
func TestRangeResolverFallbackProbes(t *testing.T) {
	res := &colResolver{cells: rangeTestGrid(), decline: true}
	if v := Eval(MustParse("=SUM(A1:A30)"), res); v.Num != 465 {
		t.Fatalf("SUM = %v, want 465", v)
	}
	if res.probes != 30 {
		t.Fatalf("probes=%d, want 30", res.probes)
	}
}

// TestPlainResolverStillWorks: a bare Resolver (no RangeValues at all) is
// untouched by the fast path.
func TestPlainResolverStillWorks(t *testing.T) {
	grid := rangeTestGrid()
	res := ResolverFunc(func(at ref.Ref) Value { return grid[at] })
	if v := Eval(MustParse("=SUM(A1:A30)"), res); v.Num != 465 {
		t.Fatalf("SUM via ResolverFunc = %v, want 465", v)
	}
}

// TestSumProductNonFiniteFallsBack: an Inf cell paired against a position
// unpopulated in the other range makes the skipped term NaN, not zero —
// the bulk path must detect the non-finite value and take the per-cell
// walk so both paths agree.
func TestSumProductNonFiniteFallsBack(t *testing.T) {
	grid := map[ref.Ref]Value{
		{Col: 1, Row: 1}: Num(1),
		{Col: 2, Row: 1}: Num(2),
		{Col: 2, Row: 2}: Num(math.Inf(1)), // A2 unpopulated: 0*Inf = NaN
	}
	ast := MustParse("=SUMPRODUCT(A1:A2,B1:B2)")
	bulk := Eval(ast, &colResolver{cells: grid})
	percell := Eval(ast, &colResolver{cells: grid, decline: true})
	if !math.IsNaN(bulk.Num) || !math.IsNaN(percell.Num) {
		t.Fatalf("bulk=%v percell=%v, want NaN from both", bulk, percell)
	}
}

// TestSumifEarlyErrorOrder: with two different error cells in a range, both
// paths must surface the same (row-major first) error.
func TestSumifEarlyErrorOrder(t *testing.T) {
	grid := map[ref.Ref]Value{
		{Col: 1, Row: 3}: Errorf("#DIV/0!"),
		{Col: 1, Row: 9}: Errorf("#VALUE!"),
		{Col: 2, Row: 5}: Num(1),
	}
	ast := MustParse("=SUM(A1:B10)")
	bulk := Eval(ast, &colResolver{cells: grid})
	percell := Eval(ast, &colResolver{cells: grid, decline: true})
	if bulk != percell || bulk.Err != "#DIV/0!" {
		t.Fatalf("bulk=%v percell=%v, want #DIV/0! from both", bulk, percell)
	}
}
