package formula

import (
	"testing"

	"taco/internal/ref"
)

// bytecodeCorpus exercises every builtin the evaluator implements — plus
// all operators, error values, blanks, range shapes, and the exempt
// builtins' short-circuit forms — so TestBytecodeEquivalence pins the VM to
// the AST walker across the whole surface, not just the hot shapes.
var bytecodeCorpus = []string{
	// Literals and operators.
	"=1+2*3-4/8",
	"=2^10",
	"=-A1",
	"=+A2",
	"=50%",
	"=A1%",
	"=1/0",
	"=0/0",
	"=\"a\"&\"b\"&A1",
	"=\"x\"+1",
	"=1=1", "=1<>2", "=2<3", "=2>3", "=2<=2", "=3>=4",
	"=\"a\"<\"b\"", "=\"A\"=\"a\"", "=TRUE", "=FALSE", "=TRUE=FALSE",
	"=(1+2)*(3+4)^2",
	// Blank and error cell reads, propagation through operators.
	"=C5", "=C5+1", "=D6", "=D6+1", "=-D6", "=D6&\"x\"",
	// Plain aggregates over ranges (incl. empty, mixed, error, reversed).
	"=SUM(A1:A30)", "=SUM(B1:B30)", "=SUM(C1:C30)", "=SUM(A1:C30)",
	"=SUM(A30:A1)", "=SUM(D1:D30)", "=SUM(1,2,A1)", "=SUM(1,1/0,A1)",
	"=AVERAGE(B1:B30)", "=AVG(A1:A10)", "=AVERAGE(C1:C30)",
	"=MIN(B1:B30)", "=MAX(A1:B30)", "=MIN(C1:C2)", "=MAX(5,2,9)",
	"=COUNT(A1:D30)", "=COUNTA(A1:D30)", "=COUNTBLANK(A1:D30)",
	"=PRODUCT(B1:B30)", "=PRODUCT(C1:C30)", "=SUMSQ(A1:A10)",
	"=MEDIAN(A1:A30)", "=MEDIAN(A1:A4)", "=STDEV(A1:A10)", "=VAR(A1:A10)",
	"=LARGE(A1:A30,3)", "=SMALL(A1:A30,3)", "=RANK(17,A1:A30)",
	"=RANK(17,A1:A30,1)",
	// Conditional aggregates: fold, compensated-scan, and fallback shapes.
	"=SUMIF(A1:A30,\">20\")",
	"=SUMIF(B1:B30,\">0\",A1:A30)",
	"=SUMIF(B1:B30,\"txt\",A1:A30)",
	"=SUMIF(C1:C30,\"<1\",A1:A30)",
	"=SUMIF(A1:A30,\"<>7\")",
	"=COUNTIF(A1:A30,\"<>7\")",
	"=COUNTIF(B1:B30,\">=0\")",
	"=COUNTIF(A1:A30,15)",
	"=SUMPRODUCT(A1:A30,B1:B30)",
	"=SUMPRODUCT(A1:A30)",
	"=SUMPRODUCT(A1:A30,D1:D30)",
	// Lookups and selection.
	"=VLOOKUP(17,A1:B30,2)", "=VLOOKUP(99,A1:B30,1)", "=VLOOKUP(0,A1:B30,1)",
	"=HLOOKUP(1,A1:D2,2)", "=INDEX(A1:B30,4,2)", "=MATCH(17,A1:A30)",
	"=CHOOSE(2,\"a\",\"b\",\"c\")", "=CHOOSE(9,\"a\")",
	// Logic, type predicates, exempt builtins.
	"=AND(TRUE,1,A1)", "=OR(FALSE,0,C1)", "=NOT(A1)", "=XOR(1,0,1)",
	"=IF(A1>5,\"big\",\"small\")", "=IF(A1>0,A2)", "=IF(C1,1,2)",
	"=IF(1/0,1,2)", "=IF(\"true\",1,2)", "=IF(A1,D6,5)", "=IF(0,D6,5)",
	"=IFERROR(1/0,\"rescued\")", "=IFERROR(A1,\"no\")", "=IFERROR(D6,C5)",
	"=ISERROR(1/0)", "=ISERROR(A1)", "=ISBLANK(C1)", "=ISBLANK(A1)",
	"=ISNUMBER(A1)", "=ISNUMBER(B9)", "=ISTEXT(B9)", "=ISLOGICAL(B28)",
	"=ISEVEN(A4)", "=ISODD(A4)", "=NA()",
	// Math builtins.
	"=ABS(-3)", "=SQRT(A4)", "=SQRT(0-A4)", "=INT(-2.5)", "=EXP(1)",
	"=LN(A10)", "=LOG(8,2)", "=LOG(100)", "=LOG10(A10)", "=PI()",
	"=SIGN(B17)", "=FLOOR(7.3,2)", "=CEILING(7.3,2)", "=TRUNC(-2.7)",
	"=ROUND(2.675,2)", "=ROUND(A10,0-1)", "=MOD(10,3)", "=MOD(10,0)",
	"=POWER(2,0.5)",
	// Text builtins.
	"=CONCATENATE(\"a\",1,TRUE)", "=CONCAT(B9,B25)", "=LEN(B9)",
	"=UPPER(B9)", "=LOWER(\"ABC\")", "=TRIM(\"  x  \")",
	"=LEFT(\"hello\",2)", "=RIGHT(\"hello\",2)", "=MID(\"hello\",2,3)",
	"=FIND(\"l\",\"hello\")", "=FIND(\"z\",\"hello\")",
	"=SUBSTITUTE(\"aaa\",\"a\",\"b\")", "=REPT(\"ab\",3)",
	"=EXACT(\"a\",\"A\")", "=PROPER(\"hello world\")",
	"=VALUE(B25)", "=VALUE(B9)",
	// Financial builtins (E holds cash flows with a sign change for IRR).
	"=NPV(0.1,E1:E3)", "=PMT(0.05,10,1000)", "=FV(0.05,10,100)",
	"=PV(0.05,10,100)", "=IRR(E1:E3)",
	// Unknown function: both paths produce the same #NAME?.
	"=NOSUCH(1,2)",
	// Nesting across every dispatch kind.
	"=IF(ISERROR(VLOOKUP(17,A1:B30,2)),0,SUM(A1:A5)*MAX(B1:B30))%",
}

func bytecodeGrid() map[ref.Ref]Value {
	cells := rangeTestGrid()
	cells[ref.Ref{Col: 5, Row: 1}] = Num(-100)
	cells[ref.Ref{Col: 5, Row: 2}] = Num(50)
	cells[ref.Ref{Col: 5, Row: 3}] = Num(60)
	return cells
}

// TestBytecodeEquivalence: for every corpus formula, the compiled program
// evaluated on the VM must agree bit-for-bit with the AST walker — under
// both the bulk-capable resolver and the per-cell one, and at a second
// anchor with the AST shifted alongside (what a pattern-run neighbour is).
func TestBytecodeEquivalence(t *testing.T) {
	grid := bytecodeGrid()
	anchor := ref.Ref{Col: 8, Row: 4}
	for _, src := range bytecodeCorpus {
		ast := MustParse(src)
		p := Compile(ast, anchor)
		if p == nil {
			t.Errorf("%q: did not compile", src)
			continue
		}
		for _, decline := range []bool{false, true} {
			res := &colResolver{cells: grid, decline: decline}
			want := Eval(ast, &colResolver{cells: grid, decline: decline})
			got := p.EvalAt(res, anchor)
			if !sameValue(got, want) {
				t.Errorf("%q (decline=%v): VM=%v AST=%v", src, decline, got, want)
			}
		}
		// Shifted copy at a shifted anchor: same program bytes, same values
		// as walking the shifted AST.
		shifted := Shift(ast, 2, 7)
		at2 := ref.Ref{Col: anchor.Col + 2, Row: anchor.Row + 7}
		p2 := Compile(shifted, at2)
		if p2 == nil {
			t.Errorf("%q: shifted copy did not compile", src)
			continue
		}
		res := &colResolver{cells: grid}
		want := Eval(shifted, &colResolver{cells: grid})
		if got := p2.EvalAt(res, at2); !sameValue(got, want) {
			t.Errorf("%q shifted: VM=%v AST=%v", src, got, want)
		}
		// Re-evaluation is stable: no hidden state in the program.
		if got := p2.EvalAt(res, at2); !sameValue(got, want) {
			t.Errorf("%q shifted re-eval: VM=%v AST=%v", src, got, want)
		}
	}
}

// TestCompileCachedInterning: shifted copies of one formula shape intern to
// the same *Program (run membership is pointer equality), $-fixed axes keep
// distinct shapes distinct, and differing literals break sharing.
func TestCompileCachedInterning(t *testing.T) {
	base := ref.Ref{Col: 4, Row: 10}
	ast := MustParse("=A10*B10+$F$1")
	p := CompileCached(ast, base)
	if p == nil {
		t.Fatal("base formula did not compile")
	}
	for dRow := 1; dRow <= 5; dRow++ {
		shifted := Shift(ast, 0, dRow)
		at := ref.Ref{Col: base.Col, Row: base.Row + dRow}
		if q := CompileCached(shifted, at); q != p {
			t.Fatalf("row %+d: shifted copy interned to a different program", dRow)
		}
	}
	// A column shift is also the same shape (both axes relative on A/B).
	if q := CompileCached(Shift(ast, 3, 0), ref.Ref{Col: base.Col + 3, Row: base.Row}); q != p {
		t.Fatal("column-shifted copy interned to a different program")
	}
	// Same text at the same anchor but row-fixed reference: different shape.
	if q := CompileCached(MustParse("=A$10*B10+$F$1"), base); q == p {
		t.Fatal("row-fixed variant interned to the relative program")
	}
	// Different literal: different shape.
	if q := CompileCached(MustParse("=A10*B10+$F$2"), base); q == p {
		t.Fatal("different fixed ref interned to the same program")
	}
	// Not a shifted copy (same text, different anchor → different offsets).
	if q := CompileCached(ast, ref.Ref{Col: 4, Row: 11}); q == p {
		t.Fatal("same text at a different anchor interned to the same program")
	}
}

// TestCellOpAt pins the operand encoding: relative axes follow the anchor,
// $-fixed axes do not — exactly Shift's behaviour.
func TestCellOpAt(t *testing.T) {
	anchor := ref.Ref{Col: 3, Row: 5}
	for _, tc := range []struct {
		src string
		at  ref.Ref // expected position when re-anchored at anchor+(1,2)
	}{
		{"=B4", ref.Ref{Col: 3, Row: 6}},
		{"=$B4", ref.Ref{Col: 2, Row: 6}},
		{"=B$4", ref.Ref{Col: 3, Row: 4}},
		{"=$B$4", ref.Ref{Col: 2, Row: 4}},
	} {
		p := Compile(MustParse(tc.src), anchor)
		if p == nil || len(p.CellOps()) != 1 {
			t.Fatalf("%q: bad compile", tc.src)
		}
		moved := ref.Ref{Col: anchor.Col + 1, Row: anchor.Row + 2}
		if got := p.CellOps()[0].At(moved); got != tc.at {
			t.Errorf("%q at %v: got %v, want %v", tc.src, moved, got, tc.at)
		}
	}
}

// TestCompileDeclines: expressions nesting beyond the VM stack bound stay on
// the walker instead of compiling to an overflowing program.
func TestCompileDeclines(t *testing.T) {
	src := "=1"
	for i := 0; i < maxVMStack+8; i++ {
		src += "+(1"
	}
	for i := 0; i < maxVMStack+8; i++ {
		src += ")"
	}
	ast, err := Parse(src)
	if err != nil {
		t.Skipf("parser rejected depth probe: %v", err)
	}
	if p := Compile(ast, ref.Ref{Col: 1, Row: 1}); p != nil {
		t.Fatal("over-deep expression compiled")
	}
	if p := CompileCached(ast, ref.Ref{Col: 1, Row: 1}); p != nil {
		t.Fatal("CompileCached returned a program for an uncompilable AST")
	}
}

// TestNumericPlanEligibility: the float fast path claims only straight-line
// arithmetic whose result comes off an operator. Anything that could produce
// or pass through a non-number — bare references (kind-preserving), string or
// boolean constants, concatenation, comparisons, folds, calls — must stay on
// the generic interpreter, as must programs deeper than the fixed float stack.
func TestNumericPlanEligibility(t *testing.T) {
	anchor := ref.Ref{Col: 3, Row: 5}
	cases := []struct {
		src  string
		want bool
	}{
		{"=A5*B5+1.5", true},
		{"=A5/B5-$C$1", true},
		{"=B5", false},         // bare cell: `=B5` of a bool is a bool
		{"=1.5", false},        // bare constant likewise preserves kind
		{"=-A5", false},        // unary stays generic
		{"=A5&B5", false},      // concatenation
		{"=A5>B5", false},      // comparison yields a bool
		{"=SUM(A1:A9)", false}, // range fold
		{"=IF(A5,1,2)", false}, // call dispatch
		{"=\"2\"+A5", false},   // non-numeric constant
		{"=TRUE+A5", false},
	}
	for _, tc := range cases {
		p := Compile(MustParse(tc.src), anchor)
		if p == nil {
			t.Errorf("%q: did not compile at all", tc.src)
			continue
		}
		if got := p.HasNumericSweep(); got != tc.want {
			t.Errorf("%q: HasNumericSweep=%v, want %v", tc.src, got, tc.want)
		}
	}
	// Right-nested additions push one pending operand per paren: depth beyond
	// the float stack declines the plan while the program itself still runs.
	deep := "=A5"
	for i := 0; i < maxNumericDepth+4; i++ {
		deep += "+(A5"
	}
	deep += "*2"
	for i := 0; i < maxNumericDepth+4; i++ {
		deep += ")"
	}
	if p := Compile(MustParse(deep), anchor); p == nil {
		t.Fatal("deep numeric expression did not compile")
	} else if p.HasNumericSweep() {
		t.Error("over-deep expression claimed the numeric fast path")
	}
}

// TestNumericSweepMatchesVM: for eligible programs and all-numeric operands,
// the float stack must reproduce the generic VM bit-for-bit; a zero divisor
// must make it stand aside (ok=false) rather than emit ±Inf.
func TestNumericSweepMatchesVM(t *testing.T) {
	grid := bytecodeGrid()
	anchor := ref.Ref{Col: 8, Row: 4}
	for _, src := range []string{"=A4*B4+A5", "=A4/B4-$A$1", "=(A4+B4)*(A5-B5)"} {
		p := Compile(MustParse(src), anchor)
		if p == nil || !p.HasNumericSweep() {
			t.Fatalf("%q: no numeric plan", src)
		}
		res := &colResolver{cells: grid}
		vals := make([]float64, len(p.CellOps()))
		for i, op := range p.CellOps() {
			f, ok := res.CellValue(op.At(anchor)).AsNumber()
			if !ok {
				t.Fatalf("%q: operand %d not numeric in fixture", src, i)
			}
			vals[i] = f
		}
		got, ok := p.NumericSweep(vals)
		if !ok {
			t.Fatalf("%q: sweep declined numeric operands", src)
		}
		want := p.EvalAt(res, anchor)
		if want.Kind != KindNumber || got != want.Num {
			t.Errorf("%q: sweep=%v VM=%v", src, got, want)
		}
	}
	p := Compile(MustParse("=A4/B4"), anchor)
	if p == nil || !p.HasNumericSweep() {
		t.Fatal("division did not get a numeric plan")
	}
	if _, ok := p.NumericSweep([]float64{1, 0}); ok {
		t.Error("zero divisor not deferred to the generic interpreter")
	}
}

// TestCriterionMatchesOracle pins the compiled Criterion against the
// one-shot matcher across every operator prefix and operand kind.
func TestCriterionMatchesOracle(t *testing.T) {
	crits := []Value{
		Num(5), Str("5"), Str(">3"), Str("<3"), Str(">=5"), Str("<=5"),
		Str("<>5"), Str("=5"), Str("=txt"), Str("txt"), Str("<>txt"),
		Str(">abc"), Str(""), Boolean(true), Errorf("#N/A"), Empty(),
	}
	vals := []Value{
		Num(3), Num(5), Num(7), Str("5"), Str("txt"), Str(""),
		Boolean(true), Boolean(false), Errorf("#N/A"), Empty(),
	}
	for _, c := range crits {
		pc := ParseCriterion(c)
		for _, v := range vals {
			if got, want := pc.Matches(v), matchesCriterion(v, c); got != want {
				t.Errorf("crit %v value %v: compiled %v, oracle %v", c, v, got, want)
			}
		}
	}
}

func BenchmarkEvalASTvsVM(b *testing.B) {
	grid := bytecodeGrid()
	ast := MustParse("=A1*B4+A2")
	anchor := ref.Ref{Col: 8, Row: 1}
	p := Compile(ast, anchor)
	res := &colResolver{cells: grid}
	b.Run("ast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Eval(ast, res)
		}
	})
	b.Run("vm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.EvalAt(res, anchor)
		}
	})
}
