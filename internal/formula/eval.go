package formula

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"taco/internal/ref"
)

// Kind tags the dynamic type of a spreadsheet value.
type Kind uint8

const (
	// KindEmpty is a blank cell.
	KindEmpty Kind = iota
	// KindNumber is a numeric value.
	KindNumber
	// KindString is a text value.
	KindString
	// KindBool is a boolean value.
	KindBool
	// KindError is an evaluation error (#DIV/0!, #VALUE!, ...).
	KindError
)

// Value is a spreadsheet value: the pure value of a data cell or the
// evaluated value of a formula cell.
type Value struct {
	Kind Kind
	Num  float64
	Str  string
	Bool bool
	Err  string
}

// Num returns a numeric value.
func Num(v float64) Value { return Value{Kind: KindNumber, Num: v} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Boolean returns a boolean value.
func Boolean(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Empty returns the blank value.
func Empty() Value { return Value{Kind: KindEmpty} }

// Errorf returns an error value with a spreadsheet-style code.
func Errorf(code string) Value { return Value{Kind: KindError, Err: code} }

// IsError reports whether the value is an evaluation error.
func (v Value) IsError() bool { return v.Kind == KindError }

// String renders the value the way a spreadsheet cell would display it.
func (v Value) String() string {
	switch v.Kind {
	case KindEmpty:
		return ""
	case KindNumber:
		return formatNum(v.Num)
	case KindString:
		return v.Str
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.Err
	}
}

// AsNumber coerces the value to a number following spreadsheet rules
// (blank -> 0, TRUE -> 1, numeric text parses). ok is false when coercion
// fails.
func (v Value) AsNumber() (float64, bool) {
	switch v.Kind {
	case KindNumber:
		return v.Num, true
	case KindEmpty:
		return 0, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// Resolver supplies cell values to the evaluator — the spreadsheet engine
// implements it over its cell store.
type Resolver interface {
	// CellValue returns the current value of the given cell.
	CellValue(at ref.Ref) Value
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(ref.Ref) Value

// CellValue implements Resolver.
func (f ResolverFunc) CellValue(at ref.Ref) Value { return f(at) }

// RangeResolver is an optional Resolver extension: a resolver backed by
// column-sliced storage can stream every populated cell of a range as
// contiguous per-column scans instead of answering rows×cols CellValue
// probes. Range-consuming builtins (SUM and friends, SUMIF, COUNTIF,
// SUMPRODUCT, VLOOKUP) use it as their fast path and fall back to per-cell
// CellValue resolution for plain resolvers.
type RangeResolver interface {
	Resolver
	// RangeValues calls fn for every populated cell of rng in row-major
	// order — the same order (and therefore the same first-error
	// behaviour) as per-cell iteration — with the cell's position and
	// value. Unpopulated cells are skipped; callers that assign meaning to
	// blanks must account for them (see COUNTIF's empty-matching
	// criterion). It returns false when the resolver cannot serve the bulk
	// scan, in which case the caller must take the per-cell path.
	RangeValues(rng ref.Range, fn func(at ref.Ref, v Value) bool) bool
}

// rangeScan streams rng through the resolver's bulk path when it has one.
// handled=false means the caller must fall back to per-cell CellValue.
func rangeScan(res Resolver, rng ref.Range, fn func(ref.Ref, Value) bool) (handled bool) {
	rr, ok := res.(RangeResolver)
	return ok && rr.RangeValues(rng, fn)
}

// NumericFold is the result of a resolver-side batched fold over one range —
// every accumulator the plain aggregate builtins need, computed in a single
// pass over the backing storage without surfacing per-cell callbacks.
//
// Exactness contract (what lets the fold replace per-cell iteration
// bit-for-bit): Sum is accumulated sequentially in row-major cell order —
// never reassociated into independent partial sums — so it matches the
// per-cell path on every input, including ones where float addition order
// matters. Min and Max use strict comparisons seeded from ±Inf (the same
// comparisons extremum runs per cell), so ties, signed zeros, and NaNs
// resolve identically. Err carries the first error value in row-major order;
// accumulation continues past it, because counting consumers ignore errors
// while summing consumers propagate them.
type NumericFold struct {
	// Sum is the row-major sequential sum of the numeric cells.
	Sum float64
	// Count is the number of numeric cells; NonEmpty the number of non-blank
	// cells (numbers, text, bools, and errors).
	Count    int
	NonEmpty int
	// Min and Max are the numeric extrema, meaningful only when Count > 0
	// (they seed at +Inf / -Inf).
	Min, Max float64
	// Err is the first error value in row-major order (zero Value when the
	// range holds none).
	Err Value
}

// RangeFolder is an optional RangeResolver extension: a resolver backed by
// columnar storage can answer the plain aggregates (SUM, COUNT, COUNTA,
// AVERAGE, MIN, MAX) with one batched fold over its slabs — no per-cell
// callback, no interface dispatch per value — instead of streaming every
// cell through RangeValues. handled=false means the resolver cannot fold
// this range shape (e.g. a rectangle wider than its cursor-merge limit) and
// the caller must take the streaming path.
type RangeFolder interface {
	RangeResolver
	FoldRange(rng ref.Range) (NumericFold, bool)
}

// CondFolder is an optional RangeFolder extension for the conditional
// aggregates: SUMIF and two-range SUMPRODUCT fold directly off the columnar
// slabs, replacing the streaming scan's per-match point probes with slab
// cursors. Both folds carry the same exactness contract as FoldRange — cells
// visited in row-major order, float accumulation never reassociated — so
// their results are bit-identical to the streaming and per-cell paths.
type CondFolder interface {
	RangeFolder
	// FoldSumIf sums sumRng cells whose matching critRng cell satisfies the
	// compiled criterion. Callers guarantee the criterion does not match
	// blanks (they fall back before asking); handled=false means the
	// resolver cannot fold these shapes.
	FoldSumIf(critRng ref.Range, crit Criterion, sumRng ref.Range) (float64, bool)
	// FoldSumProduct computes the two-range SUMPRODUCT over equal-shape
	// ranges. The resolver must preserve the bulk-path semantics of
	// evalSumProduct: positions unpopulated in a are skipped (their term is
	// zero), and handled must be false when any stored number in either
	// range is non-finite — a skipped 0·Inf term would be NaN, not zero.
	FoldSumProduct(a, b ref.Range) (float64, bool)
}

// foldAggregate answers the fold-compatible aggregate builtins from the
// resolver's batched fold, when the argument shapes allow an exact answer.
// SUM and AVERAGE accept only the single-range form — their float
// accumulation is order-sensitive, and only there does the fold's row-major
// sequential sum equal the per-cell path's. COUNT/COUNTA/MIN/MAX are
// order-free, so every range argument folds and scalars mix in directly.
// ok=false means "not foldable here" — the caller runs the generic path.
func foldAggregate(name string, args []arg, res Resolver) (Value, bool) {
	rf, isFolder := res.(RangeFolder)
	if !isFolder {
		return Value{}, false
	}
	switch name {
	case "SUM", "AVERAGE", "AVG":
		if len(args) != 1 || !args[0].isRange {
			return Value{}, false
		}
		f, ok := rf.FoldRange(args[0].rng)
		if !ok {
			return Value{}, false
		}
		if f.Err.IsError() {
			return f.Err, true
		}
		if name == "SUM" {
			return Num(f.Sum), true
		}
		if f.Count == 0 {
			return Errorf("#DIV/0!"), true
		}
		return Num(f.Sum / float64(f.Count)), true
	case "COUNT", "COUNTA":
		// Errors inside ranges are not propagated by the counting builtins —
		// they are merely non-numeric, non-blank cells — so the fold's Err is
		// deliberately ignored, exactly like the per-cell scan.
		n := 0
		for _, a := range args {
			if !a.isRange {
				if name == "COUNT" && a.scalar.Kind == KindNumber ||
					name == "COUNTA" && a.scalar.Kind != KindEmpty {
					n++
				}
				continue
			}
			f, ok := rf.FoldRange(a.rng)
			if !ok {
				return Value{}, false
			}
			if name == "COUNT" {
				n += f.Count
			} else {
				n += f.NonEmpty
			}
		}
		return Num(float64(n)), true
	case "MIN", "MAX":
		wantMin := name == "MIN"
		best := math.Inf(1)
		if !wantMin {
			best = math.Inf(-1)
		}
		n := 0
		for _, a := range args {
			if !a.isRange {
				v, ok := a.scalar.AsNumber()
				if !ok {
					return Errorf("#VALUE!"), true
				}
				n++
				if wantMin && v < best || !wantMin && v > best {
					best = v
				}
				continue
			}
			f, ok := rf.FoldRange(a.rng)
			if !ok {
				return Value{}, false
			}
			if f.Err.IsError() {
				return f.Err, true
			}
			n += f.Count
			if f.Count > 0 {
				if wantMin && f.Min < best {
					best = f.Min
				}
				if !wantMin && f.Max > best {
					best = f.Max
				}
			}
		}
		if n == 0 {
			return Num(0), true
		}
		return Num(best), true
	}
	return Value{}, false
}

// Eval evaluates the AST against the resolver, returning the cell's value.
// Errors propagate as #-style error values rather than Go errors, matching
// spreadsheet semantics.
func Eval(n Node, res Resolver) Value {
	switch t := n.(type) {
	case *Number:
		return Num(t.Value)
	case *String:
		return Str(t.Value)
	case *Bool:
		return Boolean(t.Value)
	case *CellRef:
		return res.CellValue(t.At)
	case *RangeRef:
		// A bare range in scalar context is an error (no implicit
		// intersection); functions receive ranges via evalArg.
		return Errorf("#VALUE!")
	case *Unary:
		return evalUnary(t, res)
	case *Binary:
		return evalBinary(t, res)
	case *Call:
		return evalCall(t, res)
	}
	return Errorf("#VALUE!")
}

func evalUnary(t *Unary, res Resolver) Value {
	return applyUnary(t.Op, Eval(t.X, res))
}

// applyUnary applies a unary operator to an evaluated operand. Shared by the
// AST walker and the bytecode VM, so both paths carry identical coercion and
// error semantics by construction.
func applyUnary(op string, x Value) Value {
	if x.IsError() {
		return x
	}
	f, ok := x.AsNumber()
	if !ok {
		return Errorf("#VALUE!")
	}
	switch op {
	case "-":
		return Num(-f)
	case "+":
		return Num(f)
	case "%":
		return Num(f / 100)
	}
	return Errorf("#VALUE!")
}

func evalBinary(t *Binary, res Resolver) Value {
	l := Eval(t.L, res)
	if l.IsError() {
		return l
	}
	return applyBinary(t.Op, l, Eval(t.R, res))
}

// applyBinary applies a binary operator to evaluated operands, propagating
// the left error first, then the right — the AST walker's order. Shared with
// the bytecode VM. (The walker short-circuits the right operand's evaluation
// after a left error; under a pure resolver the skipped evaluation has no
// observable effect, so applying the operator to both evaluated operands is
// value-identical.)
func applyBinary(op string, l, r Value) Value {
	if l.IsError() {
		return l
	}
	if r.IsError() {
		return r
	}
	switch op {
	case "&":
		return Str(l.String() + r.String())
	case "=", "<>", "<", ">", "<=", ">=":
		return compare(op, l, r)
	}
	lf, ok1 := l.AsNumber()
	rf, ok2 := r.AsNumber()
	if !ok1 || !ok2 {
		return Errorf("#VALUE!")
	}
	switch op {
	case "+":
		return Num(lf + rf)
	case "-":
		return Num(lf - rf)
	case "*":
		return Num(lf * rf)
	case "/":
		if rf == 0 {
			return Errorf("#DIV/0!")
		}
		return Num(lf / rf)
	case "^":
		return Num(math.Pow(lf, rf))
	}
	return Errorf("#VALUE!")
}

func compare(op string, l, r Value) Value {
	var c int
	switch {
	case l.Kind == KindString || r.Kind == KindString:
		ls, rs := strings.ToUpper(l.String()), strings.ToUpper(r.String())
		c = strings.Compare(ls, rs)
	default:
		lf, _ := l.AsNumber()
		rf, _ := r.AsNumber()
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	}
	switch op {
	case "=":
		return Boolean(c == 0)
	case "<>":
		return Boolean(c != 0)
	case "<":
		return Boolean(c < 0)
	case ">":
		return Boolean(c > 0)
	case "<=":
		return Boolean(c <= 0)
	default:
		return Boolean(c >= 0)
	}
}

// arg is an evaluated function argument: either a scalar or a range of cells.
type arg struct {
	scalar  Value
	isRange bool
	rng     ref.Range
}

func evalArg(n Node, res Resolver) arg {
	if r, ok := n.(*RangeRef); ok {
		return arg{isRange: true, rng: r.At}
	}
	return arg{scalar: Eval(n, res)}
}

// eachValue streams the argument's values: a scalar yields itself; a range
// yields every cell value in row-major order — including blanks, which
// consumers like AND/OR give meaning to.
func (a arg) eachValue(res Resolver, fn func(Value) bool) {
	if !a.isRange {
		fn(a.scalar)
		return
	}
	a.rng.Cells(func(c ref.Ref) bool {
		return fn(res.CellValue(c))
	})
}

// eachValueSparse is eachValue for consumers indifferent to blank cells
// (COUNT, COUNTA, ...): with a RangeResolver it streams only populated
// cells off the columnar scan; otherwise it degrades to eachValue, whose
// blanks the consumer ignores anyway.
func (a arg) eachValueSparse(res Resolver, fn func(Value) bool) {
	if !a.isRange {
		fn(a.scalar)
		return
	}
	if rangeScan(res, a.rng, func(_ ref.Ref, v Value) bool { return fn(v) }) {
		return
	}
	a.rng.Cells(func(c ref.Ref) bool {
		return fn(res.CellValue(c))
	})
}

func evalCall(t *Call, res Resolver) Value {
	args := make([]arg, len(t.Args))
	for i, a := range t.Args {
		args[i] = evalArg(a, res)
		if !args[i].isRange && args[i].scalar.IsError() {
			// IF and IS* handle errors themselves; aggregate functions
			// propagate them.
			if t.Name != "IF" && t.Name != "ISERROR" && t.Name != "IFERROR" {
				return args[i].scalar
			}
		}
	}
	// IF and IFERROR are the only builtins that evaluate argument ASTs a
	// second time (the taken branch, the error fallback) instead of
	// consuming the evaluated arguments; they stay here, and everything
	// else dispatches by name through callShared — the dispatch surface the
	// bytecode VM shares.
	switch t.Name {
	case "IF":
		if len(t.Args) < 2 || len(t.Args) > 3 {
			return Errorf("#N/A")
		}
		cond := Eval(t.Args[0], res)
		if cond.IsError() {
			return cond
		}
		if condTruth(cond) {
			return Eval(t.Args[1], res)
		}
		if len(t.Args) == 3 {
			return Eval(t.Args[2], res)
		}
		return Boolean(false)
	case "IFERROR":
		if len(t.Args) != 2 {
			return Errorf("#N/A")
		}
		v := Eval(t.Args[0], res)
		if v.IsError() {
			return Eval(t.Args[1], res)
		}
		return v
	}
	return callShared(t.Name, args, res)
}

// condTruth is IF's condition coercion: booleans as themselves, numbers by
// non-zero, strings by case-insensitive "TRUE". Blanks (and anything else)
// are false.
func condTruth(cond Value) bool {
	switch cond.Kind {
	case KindBool:
		return cond.Bool
	case KindNumber:
		return cond.Num != 0
	case KindString:
		return strings.EqualFold(cond.Str, "TRUE")
	}
	return false
}

// callShared evaluates a builtin from its name and evaluated arguments — the
// dispatcher shared by the AST walker and the bytecode VM. Every function
// here is a pure mapping of (evaluated arguments, resolver) to a value; IF
// and IFERROR, which re-evaluate argument ASTs, are handled by each caller
// before dispatching.
func callShared(name string, args []arg, res Resolver) Value {
	// Fold-compatible aggregates first: one batched pass over the columnar
	// slabs when the resolver supports it, bit-identical to the streaming
	// path below (which remains the fallback for unfoldable shapes).
	if v, ok := foldAggregate(name, args, res); ok {
		return v
	}
	switch name {
	case "SUM":
		return aggregate(args, res, 0, func(acc, v float64) float64 { return acc + v })
	case "PRODUCT":
		return aggregateInit(args, res, 1, func(acc, v float64) float64 { return acc * v })
	case "AVERAGE", "AVG":
		sum, n := 0.0, 0
		if err := forNumbers(args, res, func(f float64) {
			sum += f
			n++
		}); err != nil {
			return *err
		}
		if n == 0 {
			return Errorf("#DIV/0!")
		}
		return Num(sum / float64(n))
	case "MIN":
		return extremum(args, res, true)
	case "MAX":
		return extremum(args, res, false)
	case "COUNT":
		n := 0
		for _, a := range args {
			a.eachValueSparse(res, func(v Value) bool {
				if v.Kind == KindNumber {
					n++
				}
				return true
			})
		}
		return Num(float64(n))
	case "COUNTA":
		n := 0
		for _, a := range args {
			a.eachValueSparse(res, func(v Value) bool {
				if v.Kind != KindEmpty {
					n++
				}
				return true
			})
		}
		return Num(float64(n))
	case "AND", "OR":
		want := name == "AND"
		out := want
		for _, a := range args {
			var errVal Value
			var errv *Value
			a.eachValue(res, func(v Value) bool {
				if v.IsError() {
					errVal = v
					errv = &errVal
					return false
				}
				f, ok := v.AsNumber()
				truth := ok && f != 0
				if v.Kind == KindBool {
					truth = v.Bool
				}
				if want {
					out = out && truth
				} else {
					out = out || truth
				}
				return true
			})
			if errv != nil {
				return *errv
			}
		}
		return Boolean(out)
	case "NOT":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		return Boolean(f == 0)
	case "ABS", "SQRT", "INT", "EXP", "LN":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		switch name {
		case "ABS":
			return Num(math.Abs(f))
		case "SQRT":
			if f < 0 {
				return Errorf("#NUM!")
			}
			return Num(math.Sqrt(f))
		case "INT":
			return Num(math.Floor(f))
		case "EXP":
			return Num(math.Exp(f))
		default:
			if f <= 0 {
				return Errorf("#NUM!")
			}
			return Num(math.Log(f))
		}
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return Errorf("#N/A")
		}
		f, ok := args[0].scalar.AsNumber()
		if !ok {
			return Errorf("#VALUE!")
		}
		digits := 0.0
		if len(args) == 2 {
			digits, ok = args[1].scalar.AsNumber()
			if !ok {
				return Errorf("#VALUE!")
			}
		}
		scale := math.Pow(10, digits)
		return Num(math.Round(f*scale) / scale)
	case "MOD":
		if len(args) != 2 {
			return Errorf("#N/A")
		}
		a, ok1 := args[0].scalar.AsNumber()
		b, ok2 := args[1].scalar.AsNumber()
		if !ok1 || !ok2 {
			return Errorf("#VALUE!")
		}
		if b == 0 {
			return Errorf("#DIV/0!")
		}
		m := math.Mod(a, b)
		if m != 0 && (m < 0) != (b < 0) {
			m += b
		}
		return Num(m)
	case "POWER":
		if len(args) != 2 {
			return Errorf("#N/A")
		}
		a, ok1 := args[0].scalar.AsNumber()
		b, ok2 := args[1].scalar.AsNumber()
		if !ok1 || !ok2 {
			return Errorf("#VALUE!")
		}
		return Num(math.Pow(a, b))
	case "CONCATENATE", "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			a.eachValue(res, func(v Value) bool {
				sb.WriteString(v.String())
				return true
			})
		}
		return Str(sb.String())
	case "LEN":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		return Num(float64(len(args[0].scalar.String())))
	case "UPPER", "LOWER", "TRIM":
		if len(args) != 1 {
			return Errorf("#N/A")
		}
		s := args[0].scalar.String()
		switch name {
		case "UPPER":
			return Str(strings.ToUpper(s))
		case "LOWER":
			return Str(strings.ToLower(s))
		default:
			return Str(strings.TrimSpace(s))
		}
	case "LEFT", "RIGHT":
		if len(args) < 1 || len(args) > 2 {
			return Errorf("#N/A")
		}
		s := args[0].scalar.String()
		n := 1.0
		if len(args) == 2 {
			var ok bool
			n, ok = args[1].scalar.AsNumber()
			if !ok || n < 0 {
				return Errorf("#VALUE!")
			}
		}
		k := int(n)
		if k > len(s) {
			k = len(s)
		}
		if name == "LEFT" {
			return Str(s[:k])
		}
		return Str(s[len(s)-k:])
	case "ISBLANK":
		return Boolean(len(args) == 1 && !args[0].isRange && args[0].scalar.Kind == KindEmpty)
	case "ISNUMBER":
		return Boolean(len(args) == 1 && !args[0].isRange && args[0].scalar.Kind == KindNumber)
	case "ISERROR":
		return Boolean(len(args) == 1 && !args[0].isRange && args[0].scalar.IsError())
	case "VLOOKUP":
		return evalVlookup(args, res)
	case "SUMIF":
		return evalSumif(args, res)
	case "COUNTIF":
		return evalCountif(args, res)
	default:
		return evalCallExt(name, args, res)
	}
}

func aggregate(args []arg, res Resolver, init float64, f func(acc, v float64) float64) Value {
	return aggregateInit(args, res, init, f)
}

func aggregateInit(args []arg, res Resolver, init float64, f func(acc, v float64) float64) Value {
	acc := init
	if err := forNumbers(args, res, func(v float64) { acc = f(acc, v) }); err != nil {
		return *err
	}
	return Num(acc)
}

// forNumbers streams every numeric value of the arguments. Range cells that
// hold text or blanks are skipped (spreadsheet aggregate semantics); scalar
// arguments must be numeric. Returns a non-nil error value on #-errors.
func forNumbers(args []arg, res Resolver, fn func(float64)) *Value {
	// The first error is copied into errVal rather than captured by
	// address: taking &v of the callback parameter would make every
	// streamed Value escape — one heap allocation per cell on the hot
	// aggregation path.
	var errVal Value
	var errv *Value
	for _, a := range args {
		if a.isRange {
			// Blanks are skipped either way, so the sparse scan is exact:
			// populated cells arrive in the same row-major order the
			// per-cell loop would visit them, errors included.
			a.eachValueSparse(res, func(v Value) bool {
				if v.IsError() {
					errVal = v
					errv = &errVal
					return false
				}
				if v.Kind == KindNumber {
					fn(v.Num)
				}
				return true
			})
			if errv != nil {
				return errv
			}
			continue
		}
		if a.scalar.IsError() {
			return &a.scalar
		}
		f, ok := a.scalar.AsNumber()
		if !ok {
			e := Errorf("#VALUE!")
			return &e
		}
		fn(f)
	}
	return nil
}

func extremum(args []arg, res Resolver, wantMin bool) Value {
	best := math.Inf(1)
	if !wantMin {
		best = math.Inf(-1)
	}
	n := 0
	if err := forNumbers(args, res, func(f float64) {
		n++
		if wantMin && f < best || !wantMin && f > best {
			best = f
		}
	}); err != nil {
		return *err
	}
	if n == 0 {
		return Num(0)
	}
	return Num(best)
}

// evalVlookup implements VLOOKUP(needle, table, colIndex[, exact]). Only the
// exact-match mode (FALSE / omitted-as-FALSE here) is supported, which is the
// mode the paper's FF range-lookup workloads use.
func evalVlookup(args []arg, res Resolver) Value {
	if len(args) < 3 {
		return Errorf("#N/A")
	}
	needle := args[0].scalar
	if !args[1].isRange {
		return Errorf("#VALUE!")
	}
	table := args[1].rng
	colF, ok := args[2].scalar.AsNumber()
	if !ok {
		return Errorf("#VALUE!")
	}
	col := int(colF)
	if col < 1 || col > table.Cols() {
		return Errorf("#REF!")
	}
	// Bulk path: the key column is a single contiguous slab scan. Sound
	// only when a blank key cell cannot match the needle (a numeric needle
	// of 0 or an empty/"" needle would match blanks, which the scan skips).
	if !eqValue(Empty(), needle) {
		keyCol := ref.Range{
			Head: table.Head,
			Tail: ref.Ref{Col: table.Head.Col, Row: table.Tail.Row},
		}
		var out *Value
		if rangeScan(res, keyCol, func(at ref.Ref, v Value) bool {
			if eqValue(v, needle) {
				hit := res.CellValue(ref.Ref{Col: table.Head.Col + col - 1, Row: at.Row})
				out = &hit
				return false
			}
			return true
		}) {
			if out != nil {
				return *out
			}
			return Errorf("#N/A")
		}
	}
	for row := table.Head.Row; row <= table.Tail.Row; row++ {
		v := res.CellValue(ref.Ref{Col: table.Head.Col, Row: row})
		if eqValue(v, needle) {
			return res.CellValue(ref.Ref{Col: table.Head.Col + col - 1, Row: row})
		}
	}
	return Errorf("#N/A")
}

func evalSumif(args []arg, res Resolver) Value {
	if len(args) < 2 || !args[0].isRange {
		return Errorf("#N/A")
	}
	crit := ParseCriterion(args[1].scalar)
	sumRange := args[0].rng
	if len(args) >= 3 {
		if !args[2].isRange {
			return Errorf("#VALUE!")
		}
		sumRange = args[2].rng
	}
	total := 0.0
	// Bulk paths: scan only the populated criterion cells — sound when a
	// blank cannot satisfy the criterion (e.g. "<5" or =0 match blanks; for
	// those the blank positions' sum cells still matter, so fall back).
	// A CondFolder answers the whole fold off its slabs; the streaming scan
	// pays one point probe per match into the sum range (the common 2-arg
	// form, sum range == criterion range, pays none). Row-major order keeps
	// float accumulation identical to the per-cell path on all three.
	if !crit.Matches(Empty()) {
		if cf, ok := res.(CondFolder); ok {
			if f, handled := cf.FoldSumIf(args[0].rng, crit, sumRange); handled {
				return Num(f)
			}
		}
		sameRange := sumRange == args[0].rng
		if rangeScan(res, args[0].rng, func(at ref.Ref, v Value) bool {
			if crit.Matches(v) {
				if !sameRange {
					off := at.Sub(args[0].rng.Head)
					v = res.CellValue(ref.Ref{
						Col: sumRange.Head.Col + off.DCol,
						Row: sumRange.Head.Row + off.DRow,
					})
				}
				if f, ok := v.AsNumber(); ok {
					total += f
				}
			}
			return true
		}) {
			return Num(total)
		}
	}
	i := 0
	args[0].rng.Cells(func(c ref.Ref) bool {
		if crit.Matches(res.CellValue(c)) {
			dc := i % args[0].rng.Cols()
			dr := i / args[0].rng.Cols()
			v := res.CellValue(ref.Ref{Col: sumRange.Head.Col + dc, Row: sumRange.Head.Row + dr})
			if f, ok := v.AsNumber(); ok {
				total += f
			}
		}
		i++
		return true
	})
	return Num(total)
}

func evalCountif(args []arg, res Resolver) Value {
	if len(args) != 2 || !args[0].isRange {
		return Errorf("#N/A")
	}
	crit := ParseCriterion(args[1].scalar)
	n := 0
	// Bulk path: count matches among populated cells; blanks (both the
	// range's unpopulated positions and stored empty values — the scan only
	// skips the former) match or not as a group, decided once up front.
	emptyMatches := crit.Matches(Empty())
	visited := 0
	if rangeScan(res, args[0].rng, func(_ ref.Ref, v Value) bool {
		visited++
		if crit.Matches(v) {
			n++
		}
		return true
	}) {
		if emptyMatches {
			n += args[0].rng.Size() - visited
		}
		return Num(float64(n))
	}
	args[0].rng.Cells(func(c ref.Ref) bool {
		if crit.Matches(res.CellValue(c)) {
			n++
		}
		return true
	})
	return Num(float64(n))
}

// critMode tags how a compiled criterion matches.
type critMode uint8

const (
	critEq    critMode = iota // plain value equality (eqValue)
	critStrEq                 // "=" with non-numeric rest: case-insensitive string equality
	critNever                 // operator prefix with unparseable number (never matches)
	critNumLE                 // numeric comparisons against num
	critNumGE
	critNumNE
	critNumLT
	critNumGT
	critNumEQ
)

// Criterion is a compiled SUMIF/COUNTIF criterion: the mini-language (plain
// value matches by equality; strings beginning with a comparison operator
// compare numerically) parsed once per call instead of once per cell.
// Resolvers implementing CondFolder receive it to test slab values.
type Criterion struct {
	mode critMode
	num  float64
	str  string
	val  Value
}

// ParseCriterion compiles a criterion value. Matching via the result is
// exactly matchesCriterion's per-cell behaviour.
func ParseCriterion(crit Value) Criterion {
	if crit.Kind == KindString {
		s := crit.Str
		for i, op := range []string{"<=", ">=", "<>", "<", ">", "="} {
			if strings.HasPrefix(s, op) {
				if f, err := strconv.ParseFloat(strings.TrimSpace(s[len(op):]), 64); err == nil {
					return Criterion{mode: critNumLE + critMode(i), num: f}
				}
				if op == "=" {
					return Criterion{mode: critStrEq, str: s[1:]}
				}
				return Criterion{mode: critNever}
			}
		}
	}
	return Criterion{mode: critEq, val: crit}
}

// Matches reports whether the value satisfies the compiled criterion.
func (c Criterion) Matches(v Value) bool {
	switch c.mode {
	case critEq:
		return eqValue(v, c.val)
	case critStrEq:
		return strings.EqualFold(v.String(), c.str)
	case critNever:
		return false
	}
	vf, ok := v.AsNumber()
	if !ok {
		return false
	}
	switch c.mode {
	case critNumLE:
		return vf <= c.num
	case critNumGE:
		return vf >= c.num
	case critNumNE:
		return vf != c.num
	case critNumLT:
		return vf < c.num
	case critNumGT:
		return vf > c.num
	default:
		return vf == c.num
	}
}

// matchesCriterion implements the SUMIF/COUNTIF criterion mini-language:
// a plain value matches by equality; strings beginning with a comparison
// operator compare numerically.
func matchesCriterion(v, crit Value) bool {
	return ParseCriterion(crit).Matches(v)
}

func eqValue(a, b Value) bool {
	af, okA := a.AsNumber()
	bf, okB := b.AsNumber()
	if a.Kind == KindNumber || b.Kind == KindNumber {
		return okA && okB && af == bf
	}
	return strings.EqualFold(a.String(), b.String())
}

func formatNum(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func formatNumInt(v int) string { return fmt.Sprintf("%d", v) }
