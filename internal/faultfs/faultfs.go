// Package faultfs is the durability stack's injectable file layer: a thin
// wrapper over the os file operations that the journal, registry, and spill
// paths funnel through, with a runtime hook that can make any of them fail
// on command. Production binaries pay one atomic pointer load per operation
// (nil = passthrough); tests and smoke scripts install fault plans —
// ENOSPC on the Nth journal append, EIO on fsync, a short write tearing a
// record mid-body, a delayed fsync stretching a group commit, a rename that
// never happens — and assert the stack degrades instead of corrupting.
//
// The hook is build-free: no build tags, no test-only interfaces. Install a
// plan programmatically with Inject, or declaratively through the
// TACO_FAULTS environment variable (parsed by InstallFromEnv, which the
// serving binaries call at startup), e.g.
//
//	TACO_FAULTS="write:.tacoj:enospc:after=100:count=3;sync:*:eio"
//
// Every injected fault increments taco_faultfs_injected_total{op} so a
// scripted fault sequence is visible in the same telemetry the degradation
// metrics live in.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"taco/internal/telemetry"
)

// Op classifies the file operations the layer can fault.
type Op uint8

const (
	OpOpen Op = iota
	OpCreate
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpRead
	OpTruncate
	opCount
)

var opNames = [opCount]string{"open", "create", "write", "sync", "rename", "remove", "read", "truncate"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// ParseOp maps a spec spelling ("write", "sync", ...) to an Op.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("faultfs: unknown op %q", s)
}

// Fault describes what an armed rule does to a matching operation.
type Fault struct {
	// Err is returned from the operation (after Delay and, for writes,
	// after ShortBytes have been written). Typical values: syscall.ENOSPC,
	// syscall.EIO.
	Err error
	// ShortBytes makes a faulted write tear: the first ShortBytes of the
	// buffer reach the file, then Err (or ErrShortWrite) is returned —
	// exactly the ENOSPC-mid-record shape a full volume produces.
	ShortBytes int
	// Delay is slept before the operation proceeds (or fails). With a nil
	// Err it turns the op slow-but-successful — the slow-fsync shape.
	Delay time.Duration
}

// Rule arms one fault against an operation class, filtered by path.
type Rule struct {
	// Op is the operation class the rule matches.
	Op Op
	// PathContains filters by substring of the operation's path ("" or "*"
	// matches every path). Matching on suffix fragments like ".tacoj" or
	// "sessions.tacor" selects one log kind.
	PathContains string
	// After skips the first After matching operations before injecting.
	After int
	// Count bounds injections (0 = unlimited until the plan is cleared).
	Count int
	// Fault is what happens on injection.
	Fault Fault
}

type ruleState struct {
	Rule
	seen     int
	injected int
}

type plan struct {
	mu    sync.Mutex
	rules []*ruleState
}

var active atomic.Pointer[plan]

var mInjected = telemetry.NewCounterVec("taco_faultfs_injected_total",
	"Faults injected by the faultfs layer, by operation class.", "op")

// Inject installs a fault plan (replacing any active one) and returns a
// restore function that clears it. Tests defer the restore; long-lived
// processes may leave a TACO_FAULTS plan active for their lifetime.
func Inject(rules ...Rule) func() {
	p := &plan{rules: make([]*ruleState, len(rules))}
	for i, r := range rules {
		p.rules[i] = &ruleState{Rule: r}
	}
	active.Store(p)
	return Clear
}

// Clear removes the active fault plan.
func Clear() { active.Store(nil) }

// Active reports whether a fault plan is installed.
func Active() bool { return active.Load() != nil }

// check consults the active plan for (op, path); it applies any matched
// rule's delay and returns the error to inject (nil = proceed normally).
// shortBytes is >= 0 only for a torn write.
func check(op Op, path string) (err error, shortBytes int) {
	p := active.Load()
	if p == nil {
		return nil, -1
	}
	p.mu.Lock()
	var hit *ruleState
	for _, r := range p.rules {
		if r.Op != op {
			continue
		}
		if r.PathContains != "" && r.PathContains != "*" && !strings.Contains(path, r.PathContains) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.injected >= r.Count {
			continue
		}
		r.injected++
		hit = r
		break
	}
	p.mu.Unlock()
	if hit == nil {
		return nil, -1
	}
	if hit.Fault.Delay > 0 {
		time.Sleep(hit.Fault.Delay)
	}
	if hit.Fault.Err == nil && hit.Fault.ShortBytes == 0 {
		// Pure delay: the operation proceeds normally (but still counts).
		mInjected.With(op.String()).Inc()
		return nil, -1
	}
	mInjected.With(op.String()).Inc()
	if op == OpWrite && hit.Fault.ShortBytes > 0 {
		return hit.Fault.Err, hit.Fault.ShortBytes
	}
	return hit.Fault.Err, -1
}

// Check applies the active plan to an operation performed outside the File
// wrapper (the syncfs(2) fast path, for example): it returns the injected
// error, or nil to proceed.
func Check(op Op, path string) error {
	err, _ := check(op, path)
	return err
}

// File wraps an *os.File, applying the active fault plan to writes, syncs,
// truncates, and reads. The embedded handle keeps every other *os.File
// method (Seek, Stat, Fd, Name, ...) available untouched.
type File struct {
	*os.File
}

func wrap(f *os.File, err error) (*File, error) {
	if err != nil {
		return nil, err
	}
	return &File{File: f}, nil
}

// OpenFile is os.OpenFile behind the OpOpen hook.
func OpenFile(path string, flag int, perm os.FileMode) (*File, error) {
	if err := Check(OpOpen, path); err != nil {
		return nil, &os.PathError{Op: "open", Path: path, Err: err}
	}
	return wrap(os.OpenFile(path, flag, perm))
}

// Open is os.Open behind the OpOpen hook.
func Open(path string) (*File, error) {
	if err := Check(OpOpen, path); err != nil {
		return nil, &os.PathError{Op: "open", Path: path, Err: err}
	}
	return wrap(os.Open(path))
}

// Create is os.Create behind the OpCreate hook.
func Create(path string) (*File, error) {
	if err := Check(OpCreate, path); err != nil {
		return nil, &os.PathError{Op: "create", Path: path, Err: err}
	}
	return wrap(os.Create(path))
}

// CreateTemp is os.CreateTemp behind the OpCreate hook (matched against the
// directory, since the final name is random).
func CreateTemp(dir, pattern string) (*File, error) {
	if err := Check(OpCreate, dir); err != nil {
		return nil, &os.PathError{Op: "create", Path: dir, Err: err}
	}
	return wrap(os.CreateTemp(dir, pattern))
}

// Write applies the active plan: a matched rule can fail the write outright
// or tear it — write the first ShortBytes, then report the error, leaving a
// torn tail exactly as a full volume would.
func (f *File) Write(p []byte) (int, error) {
	err, short := check(OpWrite, f.Name())
	if err == nil && short < 0 {
		return f.File.Write(p)
	}
	if err == nil {
		err = syscall.ENOSPC
	}
	n := 0
	if short > 0 {
		if short > len(p) {
			short = len(p)
		}
		n, _ = f.File.Write(p[:short])
	}
	return n, &os.PathError{Op: "write", Path: f.Name(), Err: err}
}

// Sync applies the active plan (delay and/or error) before fsync(2).
func (f *File) Sync() error {
	if err := Check(OpSync, f.Name()); err != nil {
		return &os.PathError{Op: "sync", Path: f.Name(), Err: err}
	}
	return f.File.Sync()
}

// Truncate applies the active plan before ftruncate(2).
func (f *File) Truncate(size int64) error {
	if err := Check(OpTruncate, f.Name()); err != nil {
		return &os.PathError{Op: "truncate", Path: f.Name(), Err: err}
	}
	return f.File.Truncate(size)
}

// Read applies the active plan before read(2).
func (f *File) Read(p []byte) (int, error) {
	if err := Check(OpRead, f.Name()); err != nil {
		return 0, &os.PathError{Op: "read", Path: f.Name(), Err: err}
	}
	return f.File.Read(p)
}

// Rename is os.Rename behind the OpRename hook. A faulted rename does not
// happen at all — the source file stays, the destination is untouched —
// which is the observable shape of a crash (or I/O error) before the
// rename reached the directory.
func Rename(oldpath, newpath string) error {
	if err := Check(OpRename, newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return os.Rename(oldpath, newpath)
}

// Remove is os.Remove behind the OpRemove hook.
func Remove(path string) error {
	if err := Check(OpRemove, path); err != nil {
		return &os.PathError{Op: "remove", Path: path, Err: err}
	}
	return os.Remove(path)
}

// ReadFile is os.ReadFile behind the OpRead hook.
func ReadFile(path string) ([]byte, error) {
	if err := Check(OpRead, path); err != nil {
		return nil, &os.PathError{Op: "read", Path: path, Err: err}
	}
	return os.ReadFile(path)
}

// ---------------------------------------------------------------------------
// Declarative plans: TACO_FAULTS
// ---------------------------------------------------------------------------

// EnvVar is the environment variable InstallFromEnv reads.
const EnvVar = "TACO_FAULTS"

// InstallFromEnv parses TACO_FAULTS and installs the plan it describes.
// Returns (false, nil) when the variable is empty — the common case, costing
// one getenv at startup. Serving binaries call this so smoke scripts can
// script fault sequences without a rebuild.
func InstallFromEnv() (bool, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return false, nil
	}
	rules, err := ParseRules(spec)
	if err != nil {
		return false, err
	}
	Inject(rules...)
	return true, nil
}

// ParseRules parses a fault-plan spec: semicolon-separated rules of the form
//
//	op:pathsubstr:kind[:after=N][:count=N][:short=N][:delay=DUR]
//
// where op is open|create|write|sync|rename|remove|read|truncate, pathsubstr
// filters by substring ("*" = all), and kind is enospc|eio|short|slow
// (short implies a 1-byte torn write unless short=N is given; slow injects
// delay only and needs delay=DUR).
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("faultfs: rule %q needs op:path:kind", part)
		}
		op, err := ParseOp(fields[0])
		if err != nil {
			return nil, err
		}
		r := Rule{Op: op, PathContains: fields[1]}
		switch fields[2] {
		case "enospc":
			r.Fault.Err = syscall.ENOSPC
		case "eio":
			r.Fault.Err = syscall.EIO
		case "short":
			r.Fault.Err = syscall.ENOSPC
			r.Fault.ShortBytes = 1
		case "slow":
			// delay-only; needs delay=
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown kind %q", part, fields[2])
		}
		for _, opt := range fields[3:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faultfs: rule %q: bad option %q", part, opt)
			}
			switch k {
			case "after":
				if r.After, err = strconv.Atoi(v); err != nil {
					return nil, fmt.Errorf("faultfs: rule %q: %w", part, err)
				}
			case "count":
				if r.Count, err = strconv.Atoi(v); err != nil {
					return nil, fmt.Errorf("faultfs: rule %q: %w", part, err)
				}
			case "short":
				if r.Fault.ShortBytes, err = strconv.Atoi(v); err != nil {
					return nil, fmt.Errorf("faultfs: rule %q: %w", part, err)
				}
			case "delay":
				if r.Fault.Delay, err = time.ParseDuration(v); err != nil {
					return nil, fmt.Errorf("faultfs: rule %q: %w", part, err)
				}
			default:
				return nil, fmt.Errorf("faultfs: rule %q: unknown option %q", part, k)
			}
		}
		if fields[2] == "slow" && r.Fault.Delay <= 0 {
			return nil, fmt.Errorf("faultfs: rule %q: kind slow needs delay=", part)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("faultfs: empty fault spec")
	}
	return rules, nil
}
