package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestPassthroughWhenInactive(t *testing.T) {
	Clear()
	path := filepath.Join(t.TempDir(), "plain.dat")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = (%q, %v)", got, err)
	}
	if Active() {
		t.Fatal("no plan installed but Active() = true")
	}
}

func TestInjectENOSPCOnWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jrn.tacoj")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	restore := Inject(Rule{Op: OpWrite, PathContains: ".tacoj", Count: 1, Fault: Fault{Err: syscall.ENOSPC}})
	defer restore()

	if _, err := f.Write([]byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Count exhausted: next write goes through.
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
	st, _ := os.Stat(path)
	if st.Size() != 2 {
		t.Fatalf("faulted write must reach disk 0 bytes; file size = %d", st.Size())
	}
}

func TestShortWriteTearsRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.tacoj")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	defer Inject(Rule{Op: OpWrite, Count: 1, Fault: Fault{Err: syscall.ENOSPC, ShortBytes: 3}})()

	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n != 3 {
		t.Fatalf("short write reported n=%d, want 3", n)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abc" {
		t.Fatalf("on-disk torn prefix = %q, want %q", got, "abc")
	}
}

func TestAfterSkipsAndPathFilters(t *testing.T) {
	dir := t.TempDir()
	jrn, err := Create(filepath.Join(dir, "a.tacoj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jrn.Close()
	other, err := Create(filepath.Join(dir, "b.spill"))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	defer Inject(Rule{Op: OpWrite, PathContains: ".tacoj", After: 2, Fault: Fault{Err: syscall.EIO}})()

	// Non-matching path: never faulted, never counted.
	for i := 0; i < 5; i++ {
		if _, err := other.Write([]byte("x")); err != nil {
			t.Fatalf("spill write %d: %v", i, err)
		}
	}
	// Matching path: first two succeed, third onward fails.
	for i := 0; i < 2; i++ {
		if _, err := jrn.Write([]byte("x")); err != nil {
			t.Fatalf("journal write %d should pass: %v", i, err)
		}
	}
	if _, err := jrn.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("third journal write: want EIO, got %v", err)
	}
}

func TestSyncAndTruncateAndRenameFaults(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(filepath.Join(dir, "f.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	defer Inject(
		Rule{Op: OpSync, Count: 1, Fault: Fault{Err: syscall.EIO}},
		Rule{Op: OpTruncate, Count: 1, Fault: Fault{Err: syscall.EIO}},
		Rule{Op: OpRename, Count: 1, Fault: Fault{Err: syscall.EIO}},
	)()

	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync: want EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after count exhausted: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Truncate: want EIO, got %v", err)
	}

	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Rename: want EIO, got %v", err)
	}
	// A torn rename is a rename that never happened: src intact, dst absent.
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("source gone after faulted rename: %v", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination exists after faulted rename")
	}
	if err := Rename(src, dst); err != nil {
		t.Fatalf("rename after count exhausted: %v", err)
	}
}

func TestDelayOnlyRule(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "slow.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	defer Inject(Rule{Op: OpSync, Count: 1, Fault: Fault{Delay: 30 * time.Millisecond}})()

	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("delayed sync must still succeed: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sync returned in %v, want >= 30ms delay", d)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("write:.tacoj:enospc:after=10:count=3;sync:*:eio;rename:spill:short:short=5;sync:reg:slow:delay=20ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Op != OpWrite || r.PathContains != ".tacoj" || r.After != 10 || r.Count != 3 || !errors.Is(r.Fault.Err, syscall.ENOSPC) {
		t.Fatalf("rule 0 mismatch: %+v", r)
	}
	if rules[1].Op != OpSync || !errors.Is(rules[1].Fault.Err, syscall.EIO) {
		t.Fatalf("rule 1 mismatch: %+v", rules[1])
	}
	if rules[2].Fault.ShortBytes != 5 {
		t.Fatalf("rule 2 short bytes = %d", rules[2].Fault.ShortBytes)
	}
	if rules[3].Fault.Delay != 20*time.Millisecond || rules[3].Fault.Err != nil {
		t.Fatalf("rule 3 mismatch: %+v", rules[3])
	}

	for _, bad := range []string{
		"",
		"write:.tacoj",          // missing kind
		"frobnicate:*:eio",      // unknown op
		"write:*:explode",       // unknown kind
		"sync:*:slow",           // slow without delay
		"write:*:eio:after=x",   // bad int
		"write:*:eio:wat",       // bad option shape
		"write:*:eio:bogus=1",   // unknown option
		"write:*:eio:delay=wat", // bad duration
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted bad spec", bad)
		}
	}
}

func TestInstallFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if on, err := InstallFromEnv(); on || err != nil {
		t.Fatalf("empty env: (%v, %v)", on, err)
	}
	t.Setenv(EnvVar, "write:.tacoj:enospc:count=1")
	on, err := InstallFromEnv()
	if !on || err != nil {
		t.Fatalf("valid env: (%v, %v)", on, err)
	}
	defer Clear()
	if !Active() {
		t.Fatal("plan not active after InstallFromEnv")
	}
	t.Setenv(EnvVar, "garbage")
	if _, err := InstallFromEnv(); err == nil {
		t.Fatal("bad spec accepted")
	}
}
