package rtree

import (
	"sort"

	"taco/internal/ref"
)

// Item is one (range, payload) pair for bulk loading.
type Item[T any] struct {
	Rect  ref.Range
	Value T
}

// BulkLoad builds a tree from items with Sort-Tile-Recursive (STR) packing:
// items are sorted into column-slices, each slice sorted by row, and packed
// into full leaves; upper levels pack the same way. Packed trees have near
// 100% node fill (versus ~70% for one-at-a-time insertion), so searches
// touch fewer nodes. Used when deserialising graph snapshots and by any
// caller with all entries up front.
func BulkLoad[T any](items []Item[T]) *Tree[T] {
	t := New[T]()
	if len(items) == 0 {
		return t
	}
	leaves := packLeaves(items)
	level := leaves
	for len(level) > 1 {
		level = packInternal(level)
	}
	t.root = level[0]
	t.size = len(items)
	return t
}

func center(r ref.Range) (float64, float64) {
	return float64(r.Head.Col+r.Tail.Col) / 2, float64(r.Head.Row+r.Tail.Row) / 2
}

func packLeaves[T any](items []Item[T]) []*node[T] {
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{rect: it.Rect, value: it.Value}
	}
	return pack(entries, true)
}

func packInternal[T any](nodes []*node[T]) []*node[T] {
	entries := make([]entry[T], len(nodes))
	for i, n := range nodes {
		entries[i] = entry[T]{rect: nodeRect(n), child: n}
	}
	return pack(entries, false)
}

// pack arranges entries into nodes of maxEntries each using STR tiling.
func pack[T any](entries []entry[T], leaf bool) []*node[T] {
	n := len(entries)
	nodeCount := (n + maxEntries - 1) / maxEntries
	sliceCount := isqrt(nodeCount)
	if sliceCount < 1 {
		sliceCount = 1
	}
	perSlice := (n + sliceCount - 1) / sliceCount

	sort.Slice(entries, func(i, j int) bool {
		xi, _ := center(entries[i].rect)
		xj, _ := center(entries[j].rect)
		return xi < xj
	})

	var nodes []*node[T]
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := entries[start:end]
		sort.Slice(slice, func(i, j int) bool {
			_, yi := center(slice[i].rect)
			_, yj := center(slice[j].rect)
			return yi < yj
		})
		for s := 0; s < len(slice); s += maxEntries {
			e := s + maxEntries
			if e > len(slice) {
				e = len(slice)
			}
			nd := &node[T]{leaf: leaf, entries: append([]entry[T](nil), slice[s:e]...)}
			nodes = append(nodes, nd)
		}
	}
	return nodes
}

func isqrt(v int) int {
	if v <= 0 {
		return 0
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
