package rtree

import (
	"slices"

	"taco/internal/ref"
)

// Item is one (range, payload) pair for bulk loading.
type Item[T any] struct {
	Rect  ref.Range
	Value T
}

// BulkLoad builds a tree from items with Sort-Tile-Recursive (STR) packing:
// items are sorted into column-slices, each slice sorted by row, and packed
// into full leaves; upper levels pack the same way. Packed trees have near
// 100% node fill (versus ~70% for one-at-a-time insertion), so searches
// touch fewer nodes. Used when deserialising graph snapshots and by any
// caller with all entries up front.
func BulkLoad[T any](items []Item[T]) *Tree[T] {
	t := New[T]()
	if len(items) == 0 {
		return t
	}
	leaves := packLeaves(items)
	level := leaves
	for len(level) > 1 {
		level = packInternal(level)
	}
	t.root = level[0]
	t.size = len(items)
	return t
}

func packLeaves[T any](items []Item[T]) []*node[T] {
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{rect: it.Rect, value: it.Value}
	}
	return pack(entries, true)
}

func packInternal[T any](nodes []*node[T]) []*node[T] {
	entries := make([]entry[T], len(nodes))
	for i, n := range nodes {
		entries[i] = entry[T]{rect: nodeRect(n), child: n}
	}
	return pack(entries, false)
}

// pack arranges entries into nodes of maxEntries each using STR tiling.
func pack[T any](entries []entry[T], leaf bool) []*node[T] {
	n := len(entries)
	nodeCount := (n + maxEntries - 1) / maxEntries
	sliceCount := isqrt(nodeCount)
	if sliceCount < 1 {
		sliceCount = 1
	}
	perSlice := (n + sliceCount - 1) / sliceCount

	// Integer center comparisons (2x the true center): reflection-free and
	// overflow-safe for spreadsheet coordinates.
	slices.SortFunc(entries, func(a, b entry[T]) int {
		return (a.rect.Head.Col + a.rect.Tail.Col) - (b.rect.Head.Col + b.rect.Tail.Col)
	})

	var nodes []*node[T]
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := entries[start:end]
		slices.SortFunc(slice, func(a, b entry[T]) int {
			return (a.rect.Head.Row + a.rect.Tail.Row) - (b.rect.Head.Row + b.rect.Tail.Row)
		})
		for s := 0; s < len(slice); s += maxEntries {
			e := s + maxEntries
			if e > len(slice) {
				e = len(slice)
			}
			nd := &node[T]{leaf: leaf, entries: append([]entry[T](nil), slice[s:e]...)}
			nodes = append(nodes, nd)
		}
	}
	return nodes
}

func isqrt(v int) int {
	if v <= 0 {
		return 0
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
