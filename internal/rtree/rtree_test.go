package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"taco/internal/ref"
)

func mustRange(s string) ref.Range { return ref.MustRange(s) }

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatal("empty tree has entries")
	}
	if tr.Any(mustRange("A1:Z100")) {
		t.Fatal("empty tree claims overlap")
	}
	if got := tr.Collect(mustRange("A1")); len(got) != 0 {
		t.Fatalf("Collect on empty = %v", got)
	}
	if tr.Delete(mustRange("A1"), func(int) bool { return true }) {
		t.Fatal("Delete on empty returned true")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustRange("A1:A3"), "a")
	tr.Insert(mustRange("B1"), "b1")
	tr.Insert(mustRange("B2"), "b2")
	tr.Insert(mustRange("B2:B3"), "b23")
	tr.Insert(mustRange("C1"), "c1")

	got := tr.Collect(mustRange("B2"))
	sort.Strings(got)
	want := []string{"b2", "b23"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Collect(B2) = %v, want %v", got, want)
	}

	if !tr.Any(mustRange("A2")) {
		t.Fatal("A2 should overlap A1:A3")
	}
	if tr.Any(mustRange("D4")) {
		t.Fatal("D4 overlaps nothing")
	}
}

func TestDuplicateRanges(t *testing.T) {
	tr := New[int]()
	tr.Insert(mustRange("A1:A3"), 1)
	tr.Insert(mustRange("A1:A3"), 2)
	got := tr.Collect(mustRange("A1"))
	if len(got) != 2 {
		t.Fatalf("want both duplicates, got %v", got)
	}
	// Delete by payload match removes only the matching one.
	if !tr.Delete(mustRange("A1:A3"), func(v int) bool { return v == 1 }) {
		t.Fatal("delete failed")
	}
	got = tr.Collect(mustRange("A1"))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("after delete got %v", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 1; i <= 50; i++ {
		tr.Insert(ref.CellRange(ref.Ref{Col: 1, Row: i}), i)
	}
	n := 0
	tr.Search(mustRange("A1:A50"), func(ref.Range, int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	tr := New[int]()
	for i := 1; i <= 200; i++ {
		tr.Insert(ref.CellRange(ref.Ref{Col: i%13 + 1, Row: i}), i)
	}
	seen := map[int]bool{}
	tr.All(func(_ ref.Range, v int) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 200 {
		t.Fatalf("All visited %d entries, want 200", len(seen))
	}
}

// naive is a brute-force oracle for differential testing.
type naiveEntry struct {
	r ref.Range
	v int
}

func TestDifferentialAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	var naive []naiveEntry
	nextID := 0

	randR := func() ref.Range {
		a := ref.Ref{Col: 1 + rng.Intn(40), Row: 1 + rng.Intn(200)}
		b := ref.Ref{Col: a.Col + rng.Intn(3), Row: a.Row + rng.Intn(12)}
		return ref.RangeOf(a, b)
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // insert
			r := randR()
			tr.Insert(r, nextID)
			naive = append(naive, naiveEntry{r, nextID})
			nextID++
		case op < 8 && len(naive) > 0: // delete a random existing entry
			k := rng.Intn(len(naive))
			e := naive[k]
			if !tr.Delete(e.r, func(v int) bool { return v == e.v }) {
				t.Fatalf("step %d: delete of existing entry %v/%d failed", step, e.r, e.v)
			}
			naive = append(naive[:k], naive[k+1:]...)
		default: // query
			q := randR()
			got := tr.Collect(q)
			var want []int
			for _, e := range naive {
				if e.r.Overlaps(q) {
					want = append(want, e.v)
				}
			}
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("step %d: query %v -> %d results, want %d", step, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: query %v mismatch at %d: %d vs %d", step, q, i, got[i], want[i])
				}
			}
		}
		if tr.Len() != len(naive) {
			t.Fatalf("step %d: Len=%d, naive=%d", step, tr.Len(), len(naive))
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New[int]()
	var rs []ref.Range
	for i := 1; i <= 100; i++ {
		r := ref.CellRange(ref.Ref{Col: (i % 7) + 1, Row: i})
		rs = append(rs, r)
		tr.Insert(r, i)
	}
	for i, r := range rs {
		v := i + 1
		if !tr.Delete(r, func(x int) bool { return x == v }) {
			t.Fatalf("delete %d failed", v)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d", tr.Len())
	}
	// Tree must still be usable.
	tr.Insert(mustRange("A1"), 999)
	if got := tr.Collect(mustRange("A1")); len(got) != 1 || got[0] != 999 {
		t.Fatalf("reuse failed: %v", got)
	}
}

func TestLargeRangeQuery(t *testing.T) {
	tr := New[int]()
	for i := 1; i <= 1000; i++ {
		tr.Insert(ref.CellRange(ref.Ref{Col: i % 26 * 3 / 2 * 1, Row: i}), i)
	}
	// A query covering everything returns everything.
	got := tr.Collect(ref.Range{Head: ref.Ref{Col: 0, Row: 0}, Tail: ref.Ref{Col: 1000, Row: 10000}})
	if len(got) != 1000 {
		t.Fatalf("full query returned %d", len(got))
	}
}

func BenchmarkInsert10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := New[int]()
		for j := 0; j < 10000; j++ {
			tr.Insert(ref.CellRange(ref.Ref{Col: j%50 + 1, Row: j/50 + 1}), j)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := New[int]()
	for j := 0; j < 10000; j++ {
		tr.Insert(ref.CellRange(ref.Ref{Col: j%50 + 1, Row: j/50 + 1}), j)
	}
	q := mustRange("C10:E40")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Collect(q)
	}
}
