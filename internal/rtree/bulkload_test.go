package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"taco/internal/ref"
)

func randItems(rng *rand.Rand, n int) []Item[int] {
	items := make([]Item[int], n)
	for i := range items {
		a := ref.Ref{Col: 1 + rng.Intn(60), Row: 1 + rng.Intn(400)}
		b := ref.Ref{Col: a.Col + rng.Intn(3), Row: a.Row + rng.Intn(8)}
		items[i] = Item[int]{Rect: ref.RangeOf(a, b), Value: i}
	}
	return items
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr := BulkLoad[int](nil)
	if tr.Len() != 0 || tr.Any(ref.MustRange("A1:Z100")) {
		t.Fatal("empty bulk load broken")
	}
	tr = BulkLoad([]Item[int]{{Rect: ref.MustRange("B2"), Value: 7}})
	got := tr.Collect(ref.MustRange("A1:C3"))
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("tiny bulk load: %v", got)
	}
}

func TestBulkLoadMatchesInsertion(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 500, 2000} {
		rng := rand.New(rand.NewSource(int64(n)))
		items := randItems(rng, n)
		bulk := BulkLoad(items)
		inc := New[int]()
		for _, it := range items {
			inc.Insert(it.Rect, it.Value)
		}
		if bulk.Len() != inc.Len() {
			t.Fatalf("n=%d: len %d vs %d", n, bulk.Len(), inc.Len())
		}
		for q := 0; q < 20; q++ {
			r := ref.RangeOf(
				ref.Ref{Col: 1 + rng.Intn(60), Row: 1 + rng.Intn(400)},
				ref.Ref{Col: 1 + rng.Intn(60), Row: 1 + rng.Intn(400)})
			a := bulk.Collect(r)
			b := inc.Collect(r)
			sort.Ints(a)
			sort.Ints(b)
			if len(a) != len(b) {
				t.Fatalf("n=%d query %v: %d vs %d results", n, r, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d query %v: result %d differs", n, r, i)
				}
			}
		}
	}
}

func TestBulkLoadedTreeRemainsMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 300)
	tr := BulkLoad(items)
	// Delete half, insert new entries, and verify consistency.
	for i := 0; i < 150; i++ {
		v := items[i].Value
		if !tr.Delete(items[i].Rect, func(x int) bool { return x == v }) {
			t.Fatalf("delete %d failed", v)
		}
	}
	tr.Insert(ref.MustRange("A1"), 99999)
	if tr.Len() != 151 {
		t.Fatalf("len = %d", tr.Len())
	}
	got := tr.Collect(ref.MustRange("A1"))
	found := false
	for _, v := range got {
		if v == 99999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted entry not found after bulk load + deletes")
	}
}

func BenchmarkBulkLoadVsInsert(b *testing.B) {
	items := randItems(rand.New(rand.NewSource(1)), 20000)
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New[int]()
			for _, it := range items {
				tr.Insert(it.Rect, it.Value)
			}
		}
	})
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BulkLoad(items)
		}
	})
}

func BenchmarkSearchPackedVsIncremental(b *testing.B) {
	items := randItems(rand.New(rand.NewSource(1)), 20000)
	packed := BulkLoad(items)
	inc := New[int]()
	for _, it := range items {
		inc.Insert(it.Rect, it.Value)
	}
	q := ref.MustRange("E50:H200")
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			packed.Collect(q)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inc.Collect(q)
		}
	})
}
