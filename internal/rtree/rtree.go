// Package rtree implements a Guttman R-tree with quadratic split over
// spreadsheet ranges. Every formula-graph variant in this repository uses it
// to find, for an input range, the stored ranges that overlap it — the
// primitive the paper assumes O(N) search / O(log N) insert and delete for.
//
// The tree is generic over the payload type so graphs can index edges,
// vertices, or result-set ranges with the same structure.
package rtree

import (
	"taco/internal/ref"
)

const (
	// maxEntries is Guttman's M: the maximum number of entries per node.
	maxEntries = 8
	// minEntries is Guttman's m: the minimum fill of a non-root node.
	minEntries = 3
)

// Tree is an R-tree mapping ranges to payload values. The zero value is not
// ready to use; call New.
type Tree[T any] struct {
	root *node[T]
	size int
}

type entry[T any] struct {
	rect  ref.Range
	child *node[T] // non-nil for internal nodes
	value T        // payload for leaf entries
}

type node[T any] struct {
	leaf    bool
	entries []entry[T]
}

// New returns an empty R-tree.
func New[T any]() *Tree[T] {
	return &Tree[T]{root: &node[T]{leaf: true}}
}

// Len returns the number of stored entries.
func (t *Tree[T]) Len() int { return t.size }

// Reset empties the tree for reuse, retaining the root node's entry slice so
// repeated fill/reset cycles (per-query scratch trees) stop allocating once
// the slice has grown. Interior nodes are released to the garbage collector.
func (t *Tree[T]) Reset() {
	clear(t.root.entries) // drop payload references before slice reuse
	t.root.leaf = true
	t.root.entries = t.root.entries[:0]
	t.size = 0
}

// Insert adds a range/value pair. Duplicate ranges are allowed; each Insert
// stores a distinct entry.
func (t *Tree[T]) Insert(r ref.Range, v T) {
	split := insertRec(t.root, r, v)
	t.size++
	if split != nil {
		old := t.root
		t.root = &node[T]{
			leaf: false,
			entries: []entry[T]{
				{rect: nodeRect(old), child: old},
				{rect: nodeRect(split), child: split},
			},
		}
	}
}

// insertRec inserts into the subtree rooted at n. If n overflows it is split
// in place and the new sibling is returned for the caller to attach.
func insertRec[T any](n *node[T], r ref.Range, v T) *node[T] {
	if n.leaf {
		n.entries = append(n.entries, entry[T]{rect: r, value: v})
	} else {
		i := chooseSubtree(n, r)
		n.entries[i].rect = n.entries[i].rect.Bound(r)
		if split := insertRec(n.entries[i].child, r, v); split != nil {
			n.entries[i].rect = nodeRect(n.entries[i].child)
			n.entries = append(n.entries, entry[T]{rect: nodeRect(split), child: split})
		}
	}
	if len(n.entries) > maxEntries {
		_, b := splitNode(n)
		return b
	}
	return nil
}

// chooseSubtree picks the child whose bounding rectangle needs the least
// enlargement to include r (ties broken by smaller area).
func chooseSubtree[T any](n *node[T], r ref.Range) int {
	best := 0
	bestGrow, bestArea := int(^uint(0)>>1), int(^uint(0)>>1)
	for i := range n.entries {
		e := &n.entries[i]
		area := e.rect.Size()
		grown := e.rect.Bound(r).Size() - area
		if grown < bestGrow || (grown == bestGrow && area < bestArea) {
			best, bestGrow, bestArea = i, grown, area
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split, returning the two halves.
// The first half reuses n so parent pointers to n stay valid until the
// caller rewires them.
func splitNode[T any](n *node[T]) (*node[T], *node[T]) {
	ents := n.entries
	// Pick seeds: the pair wasting the most area if grouped together.
	seedA, seedB, worst := 0, 1, -1
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			waste := ents[i].rect.Bound(ents[j].rect).Size() - ents[i].rect.Size() - ents[j].rect.Size()
			if waste > worst {
				seedA, seedB, worst = i, j, waste
			}
		}
	}
	a := &node[T]{leaf: n.leaf, entries: []entry[T]{ents[seedA]}}
	b := &node[T]{leaf: n.leaf, entries: []entry[T]{ents[seedB]}}
	rectA, rectB := ents[seedA].rect, ents[seedB].rect

	rest := make([]entry[T], 0, len(ents)-2)
	for i, e := range ents {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining entries to
		// reach minimum fill.
		if len(a.entries)+len(rest) == minEntries {
			for _, e := range rest {
				a.entries = append(a.entries, e)
				rectA = rectA.Bound(e.rect)
			}
			break
		}
		if len(b.entries)+len(rest) == minEntries {
			for _, e := range rest {
				b.entries = append(b.entries, e)
				rectB = rectB.Bound(e.rect)
			}
			break
		}
		// Pick the entry with maximum preference for one group.
		bestIdx, bestDiff := 0, -1
		for i, e := range rest {
			dA := rectA.Bound(e.rect).Size() - rectA.Size()
			dB := rectB.Bound(e.rect).Size() - rectB.Size()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		dA := rectA.Bound(e.rect).Size() - rectA.Size()
		dB := rectB.Bound(e.rect).Size() - rectB.Size()
		if dA < dB || (dA == dB && len(a.entries) <= len(b.entries)) {
			a.entries = append(a.entries, e)
			rectA = rectA.Bound(e.rect)
		} else {
			b.entries = append(b.entries, e)
			rectB = rectB.Bound(e.rect)
		}
	}
	// Reuse n's storage for a.
	n.entries = a.entries
	return n, b
}

func nodeRect[T any](n *node[T]) ref.Range {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Bound(e.rect)
	}
	return r
}

// Search calls fn for every stored entry whose range overlaps q. Iteration
// stops early if fn returns false.
func (t *Tree[T]) Search(q ref.Range, fn func(ref.Range, T) bool) {
	searchNode(t.root, q, fn)
}

func searchNode[T any](n *node[T], q ref.Range, fn func(ref.Range, T) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Overlaps(q) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.value) {
				return false
			}
		} else if !searchNode(e.child, q, fn) {
			return false
		}
	}
	return true
}

// Collect returns the values of all entries overlapping q.
func (t *Tree[T]) Collect(q ref.Range) []T {
	var out []T
	t.Search(q, func(_ ref.Range, v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Any reports whether at least one stored range overlaps q.
func (t *Tree[T]) Any(q ref.Range) bool {
	found := false
	t.Search(q, func(ref.Range, T) bool {
		found = true
		return false
	})
	return found
}

// Delete removes the first entry with exactly range r for which match returns
// true, reporting whether an entry was removed. Pass a match that always
// returns true to delete by range alone.
func (t *Tree[T]) Delete(r ref.Range, match func(T) bool) bool {
	var orphans []entry[T]
	if !deleteRec(t.root, r, match, &orphans) {
		return false
	}
	t.size--
	// Shrink the root if it lost all but one child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if len(t.root.entries) == 0 {
		t.root = &node[T]{leaf: true}
	}
	// Reinsert entries orphaned by condensed nodes.
	for _, e := range orphans {
		if e.child != nil {
			reinsertSubtree(t, e.child)
		} else {
			t.size--
			t.Insert(e.rect, e.value)
		}
	}
	return true
}

// deleteRec removes the matching entry from the subtree rooted at n,
// condensing underfull children along the unwind path and collecting their
// entries as orphans for reinsertion.
func deleteRec[T any](n *node[T], r ref.Range, match func(T) bool, orphans *[]entry[T]) bool {
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.rect == r && match(e.value) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Overlaps(r) {
			continue
		}
		if !deleteRec(e.child, r, match, orphans) {
			continue
		}
		if len(e.child.entries) < minEntries {
			*orphans = append(*orphans, e.child.entries...)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.rect = nodeRect(e.child)
		}
		return true
	}
	return false
}

func reinsertSubtree[T any](t *Tree[T], n *node[T]) {
	if n.leaf {
		for _, e := range n.entries {
			t.size--
			t.Insert(e.rect, e.value)
		}
		return
	}
	for _, e := range n.entries {
		reinsertSubtree(t, e.child)
	}
}

// All calls fn for every stored entry. Iteration order is unspecified.
// It stops early if fn returns false.
func (t *Tree[T]) All(fn func(ref.Range, T) bool) {
	allNode(t.root, fn)
}

func allNode[T any](n *node[T], fn func(ref.Range, T) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			if !fn(e.rect, e.value) {
				return false
			}
		} else if !allNode(e.child, fn) {
			return false
		}
	}
	return true
}
