package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the text format: a parser for scraped
// exposition (the load driver diffs two scrapes to report server-side
// deltas next to its client percentiles) and a linter (CI curls /metrics
// from the booted server and fails the build if the endpoint rots —
// invalid syntax, duplicate families, missing HELP/TYPE, malformed
// histograms).

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its HELP/TYPE header and samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Scrape is a parsed exposition page.
type Scrape struct {
	// Families is keyed by family name; sample names with histogram
	// suffixes resolve to their family.
	Families map[string]*Family
	// Order preserves first-appearance order of family names.
	Order []string
}

// Value returns the sum of the named samples whose labels include every
// given key/value pair (nil matches everything), and whether any matched.
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	fam := s.Families[familyOf(s, name)]
	if fam == nil {
		return 0, false
	}
	total, matched := 0.0, false
sample:
	for _, sm := range fam.Samples {
		if sm.Name != name {
			continue
		}
		for k, v := range labels {
			if sm.Labels[k] != v {
				continue sample
			}
		}
		total += sm.Value
		matched = true
	}
	return total, matched
}

// Histogram reassembles the named histogram family: upper bounds and
// per-bucket (non-cumulative) counts with the +Inf overflow last — the
// same shape Histogram.Snapshot returns, so Quantile consumes either.
// Labelled children are merged.
func (s *Scrape) Histogram(name string) (bounds []float64, counts []uint64, sum float64, count uint64, ok bool) {
	fam := s.Families[name]
	if fam == nil || fam.Type != "histogram" {
		return nil, nil, 0, 0, false
	}
	cum := map[float64]uint64{}
	var inf uint64
	for _, sm := range fam.Samples {
		switch sm.Name {
		case name + "_bucket":
			le := sm.Labels["le"]
			if le == "+Inf" {
				inf += uint64(sm.Value)
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, nil, 0, 0, false
			}
			cum[b] += uint64(sm.Value)
		case name + "_sum":
			sum += sm.Value
		case name + "_count":
			count += uint64(sm.Value)
		}
	}
	for b := range cum {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	counts = make([]uint64, len(bounds)+1)
	prev := uint64(0)
	for i, b := range bounds {
		counts[i] = cum[b] - prev
		prev = cum[b]
	}
	counts[len(bounds)] = inf - prev
	return bounds, counts, sum, count, true
}

// familyOf maps a sample name to its family name, resolving histogram
// suffixes against the parsed families.
func familyOf(s *Scrape, name string) string {
	if s.Families[name] != nil {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found && s.Families[base] != nil {
			return base
		}
	}
	return name
}

// ParseText parses a text-format exposition page. It is tolerant where the
// format allows (unknown comment lines, optional timestamps) and strict
// where it matters (line syntax, label syntax, numeric values).
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{Families: map[string]*Family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineno := 0
	family := func(name string) *Family {
		f := s.Families[name]
		if f == nil {
			f = &Family{Name: name}
			s.Families[name] = f
			s.Order = append(s.Order, name)
		}
		return f
	}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := cutComment(line)
			if !ok {
				continue // free-form comment
			}
			name, payload, _ := strings.Cut(rest, " ")
			f := family(name)
			if kind == "HELP" {
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineno, name)
				}
				f.Help = payload
				if f.Help == "" {
					f.Help = " " // present but empty; Lint flags it
				}
			} else {
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineno, name)
				}
				f.Type = payload
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		fname := sample.Name
		if s.Families[fname] == nil {
			// Histogram series attach to their base family when its TYPE
			// was declared; anything else becomes an untyped family that
			// the linter will flag.
			fname = familyOf(s, sample.Name)
		}
		f := family(fname)
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// cutComment splits "# HELP name rest" / "# TYPE name rest" comment lines;
// ok is false for any other comment.
func cutComment(line string) (kind, rest string, ok bool) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	for _, k := range []string{"HELP ", "TYPE "} {
		if strings.HasPrefix(body, k) {
			return strings.TrimSpace(k), body[len(k):], true
		}
	}
	return "", "", false
}

// parseSampleLine parses `name{label="v",...} value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	var sm Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	sm.Name = line[:i]
	if !nameValid(sm.Name) {
		return sm, fmt.Errorf("invalid metric name %q", sm.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := findLabelsEnd(rest)
		if end < 0 {
			return sm, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return sm, err
		}
		sm.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return sm, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return sm, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	sm.Value = v
	return sm, nil
}

// findLabelsEnd returns the index of the closing '}' of a label block that
// starts at s[0] == '{', honouring quoted values with escapes.
func findLabelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !nameValid(name) || strings.Contains(name, ":") {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value must be quoted", name)
		}
		val, rest, err := unquoteLabelValue(s)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// unquoteLabelValue consumes a leading quoted value with \\, \", \n
// escapes, returning the value and the remainder after the closing quote.
func unquoteLabelValue(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return 0, fmt.Errorf("non-finite sample value")
	}
	return strconv.ParseFloat(s, 64)
}

// Lint parses an exposition page and checks the invariants a healthy
// /metrics endpoint must hold. Returns one error per violation (empty =
// clean). Checked: valid line/label syntax (a parse failure is returned as
// the single error), HELP and TYPE present for every family, no duplicate
// families (the parser already rejects repeated headers), known TYPE
// values, histogram families carry a +Inf bucket with cumulative
// non-decreasing buckets and a _count equal to the +Inf bucket, and every
// family exposes at least one sample.
func Lint(r io.Reader) []error {
	s, err := ParseText(r)
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, name := range s.Order {
		f := s.Families[name]
		if strings.TrimSpace(f.Help) == "" {
			errs = append(errs, fmt.Errorf("%s: missing HELP", name))
		}
		switch f.Type {
		case "counter", "gauge", "histogram", "summary", "untyped":
		case "":
			errs = append(errs, fmt.Errorf("%s: missing TYPE", name))
			continue
		default:
			errs = append(errs, fmt.Errorf("%s: unknown TYPE %q", name, f.Type))
			continue
		}
		if len(f.Samples) == 0 {
			errs = append(errs, fmt.Errorf("%s: no samples", name))
			continue
		}
		if f.Type == "histogram" {
			errs = append(errs, lintHistogram(f)...)
		} else {
			for _, sm := range f.Samples {
				if sm.Name != name {
					errs = append(errs, fmt.Errorf("%s: stray sample %s", name, sm.Name))
				}
			}
		}
	}
	return errs
}

// lintHistogram checks one histogram family's series shape, per label set.
func lintHistogram(f *Family) []error {
	var errs []error
	type series struct {
		lastCum  float64
		sawInf   bool
		infVal   float64
		count    float64
		sawCount bool
	}
	byChild := map[string]*series{}
	childKey := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		return b.String()
	}
	child := func(labels map[string]string) *series {
		k := childKey(labels)
		if byChild[k] == nil {
			byChild[k] = &series{}
		}
		return byChild[k]
	}
	for _, sm := range f.Samples {
		switch sm.Name {
		case f.Name + "_bucket":
			c := child(sm.Labels)
			le := sm.Labels["le"]
			if le == "" {
				errs = append(errs, fmt.Errorf("%s: bucket without le label", f.Name))
				continue
			}
			if le == "+Inf" {
				c.sawInf, c.infVal = true, sm.Value
			}
			if sm.Value < c.lastCum {
				errs = append(errs, fmt.Errorf("%s: bucket counts not cumulative at le=%s", f.Name, le))
			}
			c.lastCum = sm.Value
		case f.Name + "_sum":
		case f.Name + "_count":
			c := child(sm.Labels)
			c.sawCount, c.count = true, sm.Value
		case f.Name:
			errs = append(errs, fmt.Errorf("%s: bare sample in histogram family", f.Name))
		default:
			errs = append(errs, fmt.Errorf("%s: stray sample %s", f.Name, sm.Name))
		}
	}
	for _, c := range byChild {
		if !c.sawInf {
			errs = append(errs, fmt.Errorf("%s: missing +Inf bucket", f.Name))
			continue
		}
		if c.sawCount && c.count != c.infVal {
			errs = append(errs, fmt.Errorf("%s: _count %v != +Inf bucket %v", f.Name, c.count, c.infVal))
		}
	}
	return errs
}
