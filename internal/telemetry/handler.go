package telemetry

import "net/http"

// Handler serves the Default registry in the Prometheus text format —
// mount it at GET /metrics.
func Handler() http.Handler { return Default.Handler() }

// Handler serves this registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			// The header is out; all we can do is drop the connection.
			return
		}
	})
}
