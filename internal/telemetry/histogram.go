package telemetry

import (
	"math"
	"math/bits"
	randv2 "math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bound histogram with a sharded, lock-free write path.
// Observe is allocation-free: a binary search over the (small, immutable)
// bounds slice, one atomic add on a striped shard's bucket, and one CAS loop
// folding the value into that shard's sum. Shard selection uses the
// runtime's per-thread random source, so concurrent observers spread across
// shards without any coordination — the histogram is safe to hit from every
// drain worker at once without turning one cache line into a hot spot.
//
// Bounds are upper bucket bounds in increasing order; an implicit +Inf
// bucket catches overflow. Exposition renders the standard cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`.
type Histogram struct {
	name, help string
	labels     string
	bounds     []float64
	shards     []histShard
}

// histShard is one write stripe. The trailing pad keeps adjacent shards off
// one cache line; the counts slice is its own allocation for the same
// reason.
type histShard struct {
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits, CAS-folded
	_       [48]byte
}

// histShards is the write-stripe count: enough to split contention across
// cores, bounded so exposition stays a cheap aggregation.
func histShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	return 1 << bits.Len(uint(n-1))
}

func newHistogram(name, help, labels string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram " + name + " bounds must increase strictly")
		}
	}
	if math.IsInf(bounds[len(bounds)-1], 1) {
		panic("telemetry: histogram " + name + " bounds must be finite (+Inf is implicit)")
	}
	h := &Histogram{
		name: name, help: help, labels: labels,
		bounds: bounds, shards: make([]histShard, histShards()),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// Observe records v. Allocation-free and lock-free; safe from any number of
// goroutines concurrently.
func (h *Histogram) Observe(v float64) {
	// First bound >= v — the le semantics of the text format's buckets.
	i := sort.SearchFloat64s(h.bounds, v)
	sh := &h.shards[int(randv2.Uint64())&(len(h.shards)-1)]
	sh.counts[i].Add(1)
	for {
		old := sh.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if sh.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Snapshot aggregates the shards: per-bucket (non-cumulative) counts with
// the +Inf overflow last, the sum of observations, and the total count.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, count uint64) {
	counts = make([]uint64, len(h.bounds)+1)
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range counts {
			counts[i] += sh.counts[i].Load()
		}
		sum += math.Float64frombits(sh.sumBits.Load())
	}
	for _, c := range counts {
		count += c
	}
	return counts, sum, count
}

// Bounds returns the histogram's upper bucket bounds (without the implicit
// +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) writeTo(b *strings.Builder) {
	writeHeader(b, h.name, h.help, "histogram")
	h.writeSamples(b)
}

// writeSamples renders the cumulative bucket series, sum, and count —
// shared by the plain histogram and vec children.
func (h *Histogram) writeSamples(b *strings.Builder) {
	counts, sum, count := h.Snapshot()
	inner := strings.TrimSuffix(strings.TrimPrefix(h.labels, "{"), "}")
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		writeBucket(b, h.name, inner, formatValue(bound), cum)
	}
	writeBucket(b, h.name, inner, "+Inf", count)
	writeSample(b, h.name+"_sum", h.labels, sum)
	writeSample(b, h.name+"_count", h.labels, float64(count))
}

func writeBucket(b *strings.Builder, name, innerLabels, le string, v uint64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if innerLabels != "" {
		b.WriteString(innerLabels)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(formatValue(float64(v)))
	b.WriteByte('\n')
}

// NewHistogram registers a histogram in Default.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// NewHistogram registers a histogram in r.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, "", bounds)
	r.register(h)
	return h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	*vec[*Histogram]
	bounds []float64
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values) }

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) writeTo(b *strings.Builder) {
	children := v.sortedChildren()
	if len(children) == 0 {
		// Empty families are omitted, matching CounterVec: a header with no
		// samples is a lint error.
		return
	}
	writeHeader(b, v.name, v.help, "histogram")
	for _, h := range children {
		h.writeSamples(b)
	}
}

// NewHistogramVec registers a labelled histogram family in Default.
func NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, bounds, labelNames...)
}

// NewHistogramVec registers a labelled histogram family in r.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	hv := &HistogramVec{bounds: bounds}
	hv.vec = newVec(name, help, labelNames, func(labels string) *Histogram {
		return newHistogram(name, "", labels, bounds)
	})
	r.register(hv)
	return hv
}

// DurationBounds is the log-spaced bucket preset for latency histograms:
// 1-2.5-5 per decade from 10µs to 10s, in seconds. It covers everything
// from a sub-millisecond drain hold to a multi-second upload with ~19
// buckets, so per-observation cost and exposition size stay flat.
func DurationBounds() []float64 {
	var out []float64
	for _, decade := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		for _, m := range []float64{1, 2.5, 5} {
			out = append(out, decade*m)
		}
	}
	return append(out, 10)
}

// Quantile estimates the q-quantile (0 < q <= 1) from per-bucket counts
// (non-cumulative, +Inf overflow last, as Snapshot returns) by linear
// interpolation inside the containing bucket. Values in the overflow bucket
// report the largest finite bound. Returns 0 when the histogram is empty.
func Quantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if c == 0 {
			return bounds[i]
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (bounds[i]-lo)*frac
	}
	return bounds[len(bounds)-1]
}
