package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text rendering of one instrument of
// each kind. The format is a wire contract — scrapers parse it — so the
// output for a fixed metric state must be byte-stable.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	c := r.NewCounter("app_ops_total", "Operations performed.")
	c.Add(41)
	c.Inc()

	g := r.NewGauge("app_queue_depth", "Items queued.")
	g.Set(7)
	g.Add(-2)

	cv := r.NewCounterVec("app_requests_total", "Requests by route.", "route", "code")
	cv.With("/cells/{ref}", "200").Add(3)
	cv.With("/cells/{ref}", "404").Inc()
	cv.With(`we"ird\nl`+"\n", "500").Inc()

	h := r.NewHistogram("app_op_seconds", "Operation latency.", []float64{0.1, 1, 2.5})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	r.NewGaugeFunc("app_static", "A callback gauge.", func() float64 { return 2.5 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_op_seconds Operation latency.
# TYPE app_op_seconds histogram
app_op_seconds_bucket{le="0.1"} 1
app_op_seconds_bucket{le="1"} 3
app_op_seconds_bucket{le="2.5"} 3
app_op_seconds_bucket{le="+Inf"} 4
app_op_seconds_sum 100.05
app_op_seconds_count 4
# HELP app_ops_total Operations performed.
# TYPE app_ops_total counter
app_ops_total 42
# HELP app_queue_depth Items queued.
# TYPE app_queue_depth gauge
app_queue_depth 5
# HELP app_requests_total Requests by route.
# TYPE app_requests_total counter
app_requests_total{route="/cells/{ref}",code="200"} 3
app_requests_total{route="/cells/{ref}",code="404"} 1
app_requests_total{route="we\"ird\\nl\n",code="500"} 1
# HELP app_static A callback gauge.
# TYPE app_static gauge
app_static 2.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if errs := Lint(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Errorf("golden output fails lint: %v", errs)
	}
}

// TestHistogramVecExposition checks labelled histogram children render the
// inner labels merged with le and lint clean.
func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("app_req_seconds", "Latency by route.", []float64{0.5}, "route")
	hv.With("/a").Observe(0.1)
	hv.With("/b").Observe(3)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`app_req_seconds_bucket{route="/a",le="0.5"} 1`,
		`app_req_seconds_bucket{route="/a",le="+Inf"} 1`,
		`app_req_seconds_bucket{route="/b",le="0.5"} 0`,
		`app_req_seconds_sum{route="/b"} 3`,
		`app_req_seconds_count{route="/a"} 1`,
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, sb.String())
		}
	}
	if errs := Lint(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Errorf("vec output fails lint: %v", errs)
	}
}

// TestConcurrentHammer drives every instrument from many goroutines while
// scraping concurrently; run under -race this is the data-race proof, and
// the final totals prove no increment is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hammer_total", "h")
	g := r.NewGauge("hammer_gauge", "h")
	cv := r.NewCounterVec("hammer_vec_total", "h", "worker")
	h := r.NewHistogram("hammer_seconds", "h", DurationBounds())
	hv := r.NewHistogramVec("hammer_vec_seconds", "h", []float64{0.001, 1}, "worker")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				cv.With(lbl).Inc()
				h.Observe(float64(i%100) / 1e4)
				hv.With(lbl).Observe(0.01)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent scrapers.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
					t.Errorf("mid-hammer scrape unparsable: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if _, _, count := h.Snapshot(); count != total {
		t.Errorf("histogram count = %d, want %d", count, total)
	}
	for w := 0; w < workers; w++ {
		lbl := string(rune('a' + w))
		if got := cv.With(lbl).Value(); got != perWorker {
			t.Errorf("vec child %s = %d, want %d", lbl, got, perWorker)
		}
	}
}

// TestObserveAllocationFree is the hot-path contract: Observe and counter
// increments must not allocate.
func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("alloc_seconds", "h", DurationBounds())
	c := r.NewCounter("alloc_total", "h")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.004) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per call", n)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("snap_seconds", "h", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 5} {
		h.Observe(v)
	}
	counts, sum, count := h.Snapshot()
	// le semantics: 1 lands in the le="1" bucket.
	if want := []uint64{2, 1, 1}; len(counts) != 3 || counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Errorf("counts = %v, want %v", counts, want)
	}
	if sum != 8 || count != 4 {
		t.Errorf("sum=%v count=%v, want 8, 4", sum, count)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "h")
	mustPanic("duplicate", func() { r.NewCounter("dup_total", "h") })
	mustPanic("invalid name", func() { r.NewCounter("9bad", "h") })
	mustPanic("empty bounds", func() { r.NewHistogram("h1_seconds", "h", nil) })
	mustPanic("non-increasing bounds", func() { r.NewHistogram("h2_seconds", "h", []float64{1, 1}) })
	mustPanic("inf bound", func() { r.NewHistogram("h3_seconds", "h", []float64{1, math.Inf(1)}) })
	mustPanic("bad label", func() { r.NewCounterVec("v_total", "h", "le:gal") })
	v := r.NewCounterVec("v2_total", "h", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

func TestParseText(t *testing.T) {
	in := `# HELP x_total does things
# TYPE x_total counter
x_total{a="1",b="two words"} 5
x_total{a="esc\"ape\\d\n"} 1.5
# freeform comment, ignored
# TYPE y_depth gauge
# HELP y_depth queue depth
y_depth 3 1712345678
`
	s, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("x_total", nil); !ok || v != 6.5 {
		t.Errorf("sum x_total = %v, %v; want 6.5, true", v, ok)
	}
	if v, ok := s.Value("x_total", map[string]string{"a": "1"}); !ok || v != 5 {
		t.Errorf("x_total{a=1} = %v, %v; want 5, true", v, ok)
	}
	if v, ok := s.Value("x_total", map[string]string{"a": "esc\"ape\\d\n"}); !ok || v != 1.5 {
		t.Errorf("escaped label lookup = %v, %v; want 1.5, true", v, ok)
	}
	if v, ok := s.Value("y_depth", nil); !ok || v != 3 {
		t.Errorf("y_depth = %v, %v (timestamp should be ignored)", v, ok)
	}
	if _, ok := s.Value("absent", nil); ok {
		t.Error("absent metric reported present")
	}
}

func TestParseTextErrors(t *testing.T) {
	for name, in := range map[string]string{
		"bad name":     "9bad 1\n",
		"no value":     "x_total\n",
		"bad value":    "x_total pony\n",
		"open labels":  `x_total{a="1" 5` + "\n",
		"open quote":   `x_total{a="1} 5` + "\n",
		"dup label":    `x_total{a="1",a="2"} 5` + "\n",
		"extra fields": "x_total 1 2 3\n",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, in)
		}
	}
}

func TestLintCatches(t *testing.T) {
	cases := map[string]string{
		"missing TYPE": "# HELP x_total h\nx_total 1\n",
		"missing HELP": "# TYPE x_total counter\nx_total 1\n",
		"no +Inf bucket": "# HELP h_s h\n# TYPE h_s histogram\n" +
			`h_s_bucket{le="1"} 1` + "\nh_s_sum 1\nh_s_count 1\n",
		"non-cumulative": "# HELP h_s h\n# TYPE h_s histogram\n" +
			`h_s_bucket{le="1"} 5` + "\n" + `h_s_bucket{le="+Inf"} 3` + "\nh_s_sum 1\nh_s_count 3\n",
		"count mismatch": "# HELP h_s h\n# TYPE h_s histogram\n" +
			`h_s_bucket{le="+Inf"} 3` + "\nh_s_sum 1\nh_s_count 4\n",
		"unknown type": "# HELP x h\n# TYPE x wat\nx 1\n",
		"stray sample": "# HELP x h\n# TYPE x counter\nx 1\nx_other 2\n",
	}
	for name, in := range cases {
		if errs := Lint(strings.NewReader(in)); len(errs) == 0 {
			t.Errorf("%s: lint passed, want failure for:\n%s", name, in)
		}
	}
	clean := "# HELP x_total h\n# TYPE x_total counter\nx_total 1\n"
	if errs := Lint(strings.NewReader(clean)); len(errs) != 0 {
		t.Errorf("clean input flagged: %v", errs)
	}
}

// TestScrapeHistogram round-trips a histogram through exposition and the
// scraper, checking the reassembled shape matches Snapshot.
func TestScrapeHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rt_seconds", "h", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.5, 7} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	bounds, counts, sum, count, ok := s.Histogram("rt_seconds")
	if !ok {
		t.Fatal("histogram not found in scrape")
	}
	if len(bounds) != 2 || bounds[0] != 0.1 || bounds[1] != 1 {
		t.Errorf("bounds = %v", bounds)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if sum != 8.05 || count != 4 {
		t.Errorf("sum=%v count=%v", sum, count)
	}
}

func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 obs in (0,1], 10 in (1,2], 0 in (2,4], 5 overflow.
	counts := []uint64{10, 10, 0, 5}
	if got := Quantile(bounds, counts, 0.5); got < 1 || got > 2 {
		t.Errorf("p50 = %v, want within (1,2]", got)
	}
	// p99 rank 24.75 lands in the overflow bucket → clamps to the top bound.
	if got := Quantile(bounds, counts, 0.99); got != 4 {
		t.Errorf("p99 = %v, want 4 (clamped to top finite bound)", got)
	}
	if got := Quantile(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// All mass in first bucket: interpolation stays within [0, 1].
	if got := Quantile(bounds, []uint64{10, 0, 0, 0}, 0.9); got <= 0 || got > 1 {
		t.Errorf("first-bucket p90 = %v, want within (0,1]", got)
	}
}

func TestDurationBounds(t *testing.T) {
	b := DurationBounds()
	if len(b) == 0 || b[0] != 1e-5 || b[len(b)-1] != 10 {
		t.Fatalf("unexpected bounds %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
}

// TestDefaultRegistryRuntime checks the init-time runtime collector is
// present and the default exposition lints clean.
func TestDefaultRegistryRuntime(t *testing.T) {
	var sb strings.Builder
	if err := Default.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if !strings.Contains(sb.String(), "# TYPE "+fam+" ") {
			t.Errorf("default registry missing %s", fam)
		}
	}
	if errs := Lint(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Errorf("default exposition fails lint: %v", errs)
	}
}
