package telemetry

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. Inc and Add are single
// atomic adds — safe for the hottest paths in the process.
type Counter struct {
	name, help string
	labels     string // pre-rendered {k="v",...} for vec children, else ""
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) writeTo(b *strings.Builder) {
	writeHeader(b, c.name, c.help, "counter")
	writeSample(b, c.name, c.labels, float64(c.v.Load()))
}

// NewCounter registers a counter in Default.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewCounter registers a counter in r.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Gauge is an integer gauge: a value that can go up and down. Incremental
// maintenance (Add(1) on entry, Add(-1) on exit) composes correctly across
// independent owners — two stores each adding their deltas expose the true
// process-wide value.
type Gauge struct {
	name, help string
	labels     string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) writeTo(b *strings.Builder) {
	writeHeader(b, g.name, g.help, "gauge")
	writeSample(b, g.name, g.labels, float64(g.v.Load()))
}

// NewGauge registers a gauge in Default.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGauge registers a gauge in r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// funcMetric exposes a callback's value at scrape time as a gauge or
// counter — for instantaneous state that is cheaper to read than to
// maintain (queue depths, pool occupancy, runtime stats).
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

func (f *funcMetric) metricName() string { return f.name }

func (f *funcMetric) writeTo(b *strings.Builder) {
	writeHeader(b, f.name, f.help, f.typ)
	writeSample(b, f.name, "", f.fn())
}

// NewGaugeFunc registers a callback-backed gauge in Default; fn is invoked
// at every scrape.
func NewGaugeFunc(name, help string, fn func() float64) { Default.NewGaugeFunc(name, help, fn) }

// NewGaugeFunc registers a callback-backed gauge in r.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// NewCounterFunc registers a callback-backed counter in Default — for
// monotonic totals some other system already maintains (GC pause totals).
func NewCounterFunc(name, help string, fn func() float64) { Default.NewCounterFunc(name, help, fn) }

// NewCounterFunc registers a callback-backed counter in r.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

// vec is the shared labelled-children machinery behind CounterVec and
// HistogramVec: a mutex-guarded child map keyed by the joined label values.
// With is a read-lock map probe on the hit path; hot callers (per-route HTTP
// instruments) should resolve children once and reuse them.
type vec[T metric] struct {
	name, help string
	labelNames []string
	mu         sync.RWMutex
	children   map[string]T
	make       func(labels string) T
}

// vecKey joins label values with an unprintable separator; label values are
// arbitrary strings, so a printable separator could collide.
func vecKey(values []string) string { return strings.Join(values, "\x1f") }

func (v *vec[T]) with(values []string) T {
	if len(values) != len(v.labelNames) {
		panic("telemetry: label value count mismatch for " + v.name)
	}
	key := vecKey(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; ok {
		return c
	}
	c = v.make(renderLabels(v.labelNames, values))
	v.children[key] = c
	return c
}

// sortedChildren snapshots the children ordered by key for deterministic
// exposition.
func (v *vec[T]) sortedChildren() []T {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]T, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	return out
}

func newVec[T metric](name, help string, labelNames []string, mk func(labels string) T) *vec[T] {
	for _, l := range labelNames {
		if !nameValid(l) || strings.Contains(l, ":") {
			panic("telemetry: invalid label name " + l)
		}
	}
	return &vec[T]{
		name: name, help: help, labelNames: labelNames,
		children: make(map[string]T), make: mk,
	}
}

// CounterVec is a counter family with labels. Children are created on first
// use and live for the life of the registry.
type CounterVec struct {
	*vec[*Counter]
}

// With returns the child counter for the given label values (in
// registration order).
func (v *CounterVec) With(values ...string) *Counter { return v.with(values) }

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) writeTo(b *strings.Builder) {
	children := v.sortedChildren()
	if len(children) == 0 {
		// A family with no series yet is omitted entirely (standard
		// exposition semantics): a header with no samples is a lint error.
		return
	}
	writeHeader(b, v.name, v.help, "counter")
	for _, c := range children {
		writeSample(b, v.name, c.labels, float64(c.v.Load()))
	}
}

// NewCounterVec registers a labelled counter family in Default.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labelNames...)
}

// NewCounterVec registers a labelled counter family in r.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{vec: newVec(name, help, labelNames, func(labels string) *Counter {
		return &Counter{name: name, labels: labels}
	})}
	r.register(v)
	return v
}

// writeSample renders one `name{labels} value` line. Integral values render
// without an exponent so counters read naturally; others use the shortest
// float form.
func writeSample(b *strings.Builder, name, labels string, value float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
