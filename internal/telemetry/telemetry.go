// Package telemetry is the process-wide metrics core: atomic counters and
// gauges, sharded lock-free histograms with fixed log-spaced bounds, label
// support, and Prometheus text-format exposition — with zero dependencies
// beyond the standard library.
//
// The package exists because the serving stack's only windows used to be a
// JSON /stats snapshot and the load driver's client-side percentiles:
// nothing revealed where time goes inside a drain, how long session-lock
// holds last, or whether the parse cache and spill path behave under load.
// Every layer now registers its instruments here and GET /metrics exposes
// them in the text format every Prometheus-compatible scraper understands.
//
// Design constraints, in order:
//
//   - The write path must be safe to call from the hottest code in the
//     process (the recalculation drain, the parse cache). Counters and
//     gauges are single atomic adds; Histogram.Observe is a binary search
//     over a small fixed bounds slice plus two atomic operations on a
//     striped shard — no locks, no allocation, no time lookup.
//   - Exposition is the slow path. WriteText takes the registry lock,
//     snapshots every instrument, and renders deterministically (families
//     and label sets sorted), so golden tests and diff-based linters work.
//   - Registration happens in package var blocks. Duplicate or invalid
//     names panic at init time — a misnamed metric is a programming error,
//     not a runtime condition.
//
// Instruments registered through the top-level constructors (NewCounter,
// NewGauge, NewHistogram, ...) land in Default, the process-wide registry
// that Handler serves; NewRegistry gives tests an isolated one.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metric is one registered exposition family. writeTo renders the family's
// HELP/TYPE header and samples in the text format.
type metric interface {
	metricName() string
	writeTo(b *strings.Builder)
}

// Registry holds a set of registered metrics and renders them as Prometheus
// text exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry. Most code should register into
// Default instead; isolated registries are for tests.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Default is the process-wide registry served by Handler. The runtime
// collector (go_goroutines, go_memstats_*, go_gc_*) registers itself here at
// init.
var Default = NewRegistry()

// nameValid reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* for metrics, and the same minus ':' is legal for
// labels (we accept ':' for both; the exposition linter is stricter).
func nameValid(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register adds m, panicking on duplicate or invalid names — registration is
// an init-time act, and a bad name is a bug.
func (r *Registry) register(m metric) {
	name := m.metricName()
	if !nameValid(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.metrics[name] = m
}

// WriteText renders every registered metric in the Prometheus text format
// (version 0.0.4), families sorted by name, samples sorted by label values —
// deterministic output for a fixed metric state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ordered := make([]metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		ordered[i] = r.metrics[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range ordered {
		m.writeTo(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders a {k="v",...} block from parallel name/value slices,
// or "" when empty.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}
