package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// The runtime collector: process-level gauges and counters every deployment
// wants next to the application metrics — goroutine count, heap shape, GC
// activity. Registered on Default at init so every binary that exposes
// /metrics gets them for free.
//
// runtime.ReadMemStats stops the world briefly, so concurrent scrapes share
// one cached read: the stats refresh at most once per memStatsTTL however
// many families consult them.

const memStatsTTL = time.Second

var memCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func memStats() runtime.MemStats {
	memCache.mu.Lock()
	defer memCache.mu.Unlock()
	if now := time.Now(); memCache.at.IsZero() || now.Sub(memCache.at) > memStatsTTL {
		runtime.ReadMemStats(&memCache.stat)
		memCache.at = now
	}
	return memCache.stat
}

func init() {
	NewGaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	NewGaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(memStats().HeapAlloc) })
	NewGaugeFunc("go_memstats_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.",
		func() float64 { return float64(memStats().HeapSys) })
	NewGaugeFunc("go_memstats_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(memStats().HeapObjects) })
	NewGaugeFunc("go_memstats_next_gc_bytes",
		"Heap size target of the next GC cycle.",
		func() float64 { return float64(memStats().NextGC) })
	NewCounterFunc("go_memstats_alloc_bytes_total",
		"Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(memStats().TotalAlloc) })
	NewCounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(memStats().NumGC) })
	NewCounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(memStats().PauseTotalNs) / 1e9 })
}
