package engine

import (
	"fmt"
	"math"
	"testing"

	"taco/internal/formula"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

// runsFixture builds an engine whose dirty set holds the given formula
// sources (installed after the data columns settled, so the formulas alone
// form the wavefront), with enough parallelism and volume to engage the
// wavefront path.
func runsFixture(t testing.TB, g Graph, rows int, form func(r int) (cell string, src string)) *Engine {
	t.Helper()
	e := New(g)
	e.SetRecalcParallelism(2)
	for r := 1; r <= rows; r++ {
		e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)*1.25))
		e.SetValue(ref.Ref{Col: 2, Row: r}, formula.Num(float64(rows-r)+0.5))
	}
	e.RecalculateAll()
	for r := 1; r <= rows; r++ {
		at, src := form(r)
		mustFormula(t, e, at, src)
	}
	return e
}

// planFixture levels the engine's dirty set and returns the first frontier's
// plan — the unit under test for the detection cases.
func planFixture(e *Engine) (runs []levelRun, singles []int32) {
	sch := e.ensureSchedule()
	return e.planLevel(sch.nodes, sch.frontier)
}

func TestPlanLevelDetectsColumnRun(t *testing.T) {
	e := runsFixture(t, nil, 100, func(r int) (string, string) {
		return fmt.Sprintf("C%d", r), fmt.Sprintf("A%d*B%d+A%d", r, r, r)
	})
	runs, singles := planFixture(e)
	if len(runs) != 1 || len(singles) != 0 {
		t.Fatalf("got %d runs, %d singles; want 1 run, 0 singles", len(runs), len(singles))
	}
	if n := len(runs[0].nodes); n != 100 {
		t.Fatalf("run length %d, want 100", n)
	}
}

// TestPlanLevelBrokenRun: a different shape mid-column splits the chain; the
// long halves stay runs, the odd cell goes per-cell.
func TestPlanLevelBrokenRun(t *testing.T) {
	e := runsFixture(t, nil, 40, func(r int) (string, string) {
		if r == 20 {
			return fmt.Sprintf("C%d", r), fmt.Sprintf("A%d-B%d", r, r)
		}
		return fmt.Sprintf("C%d", r), fmt.Sprintf("A%d+B%d", r, r)
	})
	runs, singles := planFixture(e)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2 (split around the odd row)", len(runs))
	}
	if len(runs[0].nodes) != 19 || len(runs[1].nodes) != 20 {
		t.Fatalf("run lengths %d/%d, want 19/20", len(runs[0].nodes), len(runs[1].nodes))
	}
	if len(singles) != 1 {
		t.Fatalf("got %d singles, want 1", len(singles))
	}
}

// TestPlanLevelPartialRun: chains shorter than minPatternRun stay per-cell.
func TestPlanLevelPartialRun(t *testing.T) {
	e := runsFixture(t, nil, minPatternRun-1, func(r int) (string, string) {
		return fmt.Sprintf("C%d", r), fmt.Sprintf("A%d+B%d", r, r)
	})
	// The whole dirty set is below minParallelDirty, so exercise the planner
	// directly rather than through RecalculateAll.
	runs, singles := planFixture(e)
	if len(runs) != 0 {
		t.Fatalf("got %d runs from a %d-cell chain, want 0", len(runs), minPatternRun-1)
	}
	if len(singles) != minPatternRun-1 {
		t.Fatalf("got %d singles, want %d", len(singles), minPatternRun-1)
	}
}

// TestPlanLevelGapSplitsRun: a missing row breaks contiguity even when every
// present cell shares the program.
func TestPlanLevelGapSplitsRun(t *testing.T) {
	e := New(nil)
	e.SetRecalcParallelism(2)
	for r := 1; r <= 41; r++ {
		e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
	}
	e.RecalculateAll()
	for r := 1; r <= 41; r++ {
		if r == 21 {
			continue
		}
		mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("A%d*2", r))
	}
	runs, _ := planFixture(e)
	if len(runs) != 2 || len(runs[0].nodes) != 20 || len(runs[1].nodes) != 20 {
		t.Fatalf("gap not respected: %d runs", len(runs))
	}
}

// TestPlanLevelReversedLoad: detection sorts by position, so the order the
// formulas were installed (and the dirty map's iteration order) is
// irrelevant — a column loaded bottom-up still forms one ascending run.
func TestPlanLevelReversedLoad(t *testing.T) {
	e := New(nil)
	e.SetRecalcParallelism(2)
	for r := 1; r <= 50; r++ {
		e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
	}
	e.RecalculateAll()
	for r := 50; r >= 1; r-- {
		mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("A%d*2", r))
	}
	runs, singles := planFixture(e)
	if len(runs) != 1 || len(singles) != 0 || len(runs[0].nodes) != 50 {
		t.Fatalf("reversed load: %d runs, %d singles", len(runs), len(singles))
	}
	rows := runs[0].nodes
	sch := e.sched
	for k := 1; k < len(rows); k++ {
		if sch.nodes[rows[k]].at.Row != sch.nodes[rows[k-1]].at.Row+1 {
			t.Fatal("run rows not ascending-contiguous")
		}
	}
}

// TestPlanLevelNoCompFallback: a graph without pattern spans still detects
// runs structurally, via interned-program equality alone.
func TestPlanLevelNoCompFallback(t *testing.T) {
	e := runsFixture(t, NoComp{G: nocomp.NewGraph()}, 30, func(r int) (string, string) {
		return fmt.Sprintf("C%d", r), fmt.Sprintf("A%d+B%d", r, r)
	})
	if _, ok := e.graph.(patternSpanner); ok {
		t.Fatal("fixture graph unexpectedly implements patternSpanner")
	}
	runs, _ := planFixture(e)
	if len(runs) != 1 || len(runs[0].nodes) != 30 {
		t.Fatalf("structural fallback found %d runs", len(runs))
	}
}

// drainEquivalence recalculates the same workload three ways — vectorized
// wavefront, per-cell wavefront (pattern runs off), and the serial AST
// resolver — and requires bit-identical stored values everywhere.
func drainEquivalence(t *testing.T, build func(e *Engine)) {
	t.Helper()
	engines := make([]*Engine, 3)
	for i := range engines {
		e := New(nil)
		switch i {
		case 0:
			e.SetRecalcParallelism(2)
		case 1:
			e.SetRecalcParallelism(2)
			e.SetPatternRuns(false)
		case 2: // serial oracle: parallelism 1 never enters the wavefront
		}
		build(e)
		e.RecalculateAll()
		engines[i] = e
	}
	all := ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 30, Row: 2000}}
	count := 0
	engines[0].ScanRange(all, func(at ref.Ref, v formula.Value, _ string, clean bool) bool {
		count++
		if !clean {
			t.Errorf("%v left dirty by vectorized drain", at)
		}
		for i, other := range engines[1:] {
			w := other.Value(at)
			if v != w && !(v.Kind == formula.KindNumber && w.Kind == formula.KindNumber &&
				math.IsNaN(v.Num) && math.IsNaN(w.Num)) {
				t.Errorf("%v: vectorized=%v engine[%d]=%v", at, v, i+1, w)
			}
		}
		return true
	})
	if count == 0 {
		t.Fatal("fixture stored no cells")
	}
}

func TestRunDrainEquivalence(t *testing.T) {
	drainEquivalence(t, func(e *Engine) {
		e.SetValue(ref.MustCell("F1"), formula.Num(3.5))
		for r := 1; r <= 400; r++ {
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)*1.1))
			e.SetValue(ref.Ref{Col: 2, Row: r}, formula.Num(float64(400-r)))
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("B%d*$F$1", r))
			mustFormula(t, e, fmt.Sprintf("D%d", r), fmt.Sprintf("A%d*B%d+C%d", r, r, r))
		}
	})
}

// TestRunDrainEquivalenceErrors: runs containing error and blank reads, a
// division that manufactures errors mid-run, and cells rescued by IFERROR.
func TestRunDrainEquivalenceErrors(t *testing.T) {
	drainEquivalence(t, func(e *Engine) {
		for r := 1; r <= 200; r++ {
			if r%17 == 0 {
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Errorf("#N/A"))
			} else if r%13 != 0 { // every 13th row of A left unpopulated
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r-100)))
			}
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("1/A%d", r))
			mustFormula(t, e, fmt.Sprintf("D%d", r), fmt.Sprintf("IFERROR(C%d,0-1)", r))
		}
	})
}

// TestRunDrainEquivalenceNumericSweep: a straight-line arithmetic run (the
// shape that takes the float fast path) over operand columns salted with
// everything that must kick a row back to the generic interpreter — zero
// divisors, unparsable text, errors — and everything that must coerce
// identically on both paths: numeric text, booleans, blanks.
func TestRunDrainEquivalenceNumericSweep(t *testing.T) {
	drainEquivalence(t, func(e *Engine) {
		for r := 1; r <= 240; r++ {
			switch {
			case r%11 == 0:
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Str("12.5")) // numeric text coerces
			case r%13 == 0:
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Str("n/a")) // unparsable → #VALUE!
			case r%17 == 0:
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Boolean(r%2 == 0))
			case r%19 == 0:
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Errorf("#N/A"))
			case r%23 != 0: // every 23rd row of A left blank → coerces to 0
				e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)-120.5))
			}
			if r%7 != 0 { // every 7th divisor row is 0 (blank) → #DIV/0!
				e.SetValue(ref.Ref{Col: 2, Row: r}, formula.Num(float64(r%29)+0.25))
			}
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("A%d*B%d-A%d/B%d", r, r, r, r))
			mustFormula(t, e, fmt.Sprintf("D%d", r), fmt.Sprintf("IFERROR(C%d,A%d+1)", r, r))
		}
	})
}

// TestRunDrainEquivalenceCycles: a reference cycle upstream of a pattern
// run must poison the run's cells exactly as it poisons the serial path —
// #CYCLE! propagates into the vectorized sweep via the settled values.
func TestRunDrainEquivalenceCycles(t *testing.T) {
	drainEquivalence(t, func(e *Engine) {
		mustFormula(t, e, "X1", "X2+1")
		mustFormula(t, e, "X2", "X1+1")
		for r := 1; r <= 150; r++ {
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("A%d+$X$1", r))
			mustFormula(t, e, fmt.Sprintf("D%d", r), fmt.Sprintf("IFERROR(C%d,A%d)", r, r))
		}
	})
}

// TestRunDrainEquivalenceChained: each run cell reads the previous level's
// run output (C reads B's formulas), exercising run-over-run layering, plus
// folds inside a run (SUM over a fixed range).
func TestRunDrainEquivalenceChained(t *testing.T) {
	drainEquivalence(t, func(e *Engine) {
		for r := 1; r <= 300; r++ {
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r%37)+0.25))
		}
		for r := 1; r <= 300; r++ {
			mustFormula(t, e, fmt.Sprintf("B%d", r), fmt.Sprintf("A%d*2+SUM($A$1:$A$20)", r))
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("B%d-A%d", r, r))
		}
	})
}

// TestRunDrainAfterEdit: the bench-shaped interaction — settle everything,
// edit one fixed precedent, recalculate — must re-drain the dirtied columns
// as runs and still match the oracle.
func TestRunDrainAfterEdit(t *testing.T) {
	build := func(e *Engine) {
		e.SetValue(ref.MustCell("F1"), formula.Num(2))
		for r := 1; r <= 250; r++ {
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("A%d*$F$1", r))
			mustFormula(t, e, fmt.Sprintf("D%d", r), fmt.Sprintf("C%d+A%d", r, r))
		}
	}
	vec, oracle := New(nil), New(nil)
	vec.SetRecalcParallelism(2)
	build(vec)
	build(oracle)
	vec.RecalculateAll()
	oracle.RecalculateAll()
	for i, v := range []float64{7, 11.5} {
		vec.SetValue(ref.MustCell("F1"), formula.Num(v))
		oracle.SetValue(ref.MustCell("F1"), formula.Num(v))
		if n := vec.RecalculateAll(); n != 500 {
			t.Fatalf("edit %d: vectorized drain recalculated %d cells, want 500", i, n)
		}
		oracle.RecalculateAll()
		all := ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 10, Row: 300}}
		oracle.ScanRange(all, func(at ref.Ref, want formula.Value, _ string, _ bool) bool {
			if got := vec.Value(at); got != want {
				t.Errorf("edit %d, %v: vectorized=%v serial=%v", i, at, got, want)
			}
			return true
		})
	}
}

// TestSetPatternRunsToggle: the knob really is the difference between the
// two wavefront paths, and toggling it mid-life is safe.
func TestSetPatternRunsToggle(t *testing.T) {
	e := runsFixture(t, nil, 120, func(r int) (string, string) {
		return fmt.Sprintf("C%d", r), fmt.Sprintf("A%d+B%d", r, r)
	})
	e.SetPatternRuns(false)
	e.RecalculateAll()
	e.SetPatternRuns(true)
	for r := 1; r <= 120; r++ {
		e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)*2))
	}
	e.RecalculateAll()
	for r := 1; r <= 120; r++ {
		want := float64(r)*2 + float64(120-r) + 0.5
		if got := e.Value(ref.Ref{Col: 3, Row: r}).Num; got != want {
			t.Fatalf("C%d = %v, want %v", r, got, want)
		}
	}
}
