// Package engine is a minimal spreadsheet execution host in the style of
// DATASPREAD, the system the paper integrates TACO into. It keeps a sparse
// cell store, parses and evaluates formulae, and drives recalculation
// through a pluggable formula graph — so TACO is a drop-in replacement for
// the uncompressed graph, exactly as in the paper's prototype.
//
// The engine implements the asynchronous interaction model of Sec. VI-A:
// when a cell is updated, the engine first identifies every transitive
// dependent (the step whose latency decides when control returns to the
// user) and marks those cells dirty; evaluation then proceeds separately.
package engine

import (
	"fmt"
	"slices"
	"sync"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/nocomp"
	"taco/internal/ref"
	"taco/internal/rtree"
	"taco/internal/workload"
)

// Graph is the dependency-graph interface the engine drives. Both the TACO
// compressed graph and the NoComp baseline satisfy it via the adapters
// below.
type Graph interface {
	// Add registers one dependency.
	Add(d core.Dependency)
	// Clear removes the dependencies of every formula cell in s.
	Clear(s ref.Range)
	// Dependents returns the transitive dependents of r as disjoint ranges.
	Dependents(r ref.Range) []ref.Range
	// Precedents returns the transitive precedents of r as disjoint ranges.
	Precedents(r ref.Range) []ref.Range
}

// TACO adapts *core.Graph to the engine's Graph interface.
type TACO struct{ G *core.Graph }

// Add implements Graph.
func (t TACO) Add(d core.Dependency) { t.G.AddDependency(d) }

// Clear implements Graph.
func (t TACO) Clear(s ref.Range) { t.G.Clear(s) }

// Dependents implements Graph.
func (t TACO) Dependents(r ref.Range) []ref.Range { return t.G.FindDependents(r) }

// Precedents implements Graph.
func (t TACO) Precedents(r ref.Range) []ref.Range { return t.G.FindPrecedents(r) }

// DirectPrecedents implements directPrecedenter: the wavefront scheduler's
// one-hop precedent query, answered on the compressed edges.
func (t TACO) DirectPrecedents(r ref.Range, fn func(ref.Range) bool) {
	t.G.DirectPrecedents(r, fn)
}

// PatternRunSpans implements patternSpanner: the compressed edges' dependent
// runs, the graph's own evidence of formula-shape sharing (see runs.go).
func (t TACO) PatternRunSpans(r ref.Range, fn func(span ref.Range, p core.PatternType) bool) {
	t.G.PatternRunSpans(r, fn)
}

// DirectPrecedentsEach implements batchPrecedenter: per-dependent-cell
// precedent windows for a whole contiguous segment, one compressed-index
// search instead of one per cell.
func (t TACO) DirectPrecedentsEach(r ref.Range, edge func(depSpan, precSpan ref.Range) bool, fn func(dep ref.Ref, prec ref.Range) bool) {
	t.G.DirectPrecedentsEach(r, edge, fn)
}

// NoComp adapts *nocomp.Graph to the engine's Graph interface.
type NoComp struct{ G *nocomp.Graph }

// Add implements Graph.
func (n NoComp) Add(d core.Dependency) { n.G.AddDependency(d) }

// Clear implements Graph.
func (n NoComp) Clear(s ref.Range) { n.G.Clear(s) }

// Dependents implements Graph.
func (n NoComp) Dependents(r ref.Range) []ref.Range { return n.G.FindDependents(r) }

// Precedents implements Graph.
func (n NoComp) Precedents(r ref.Range) []ref.Range { return n.G.FindPrecedents(r) }

// DirectPrecedents implements directPrecedenter.
func (n NoComp) DirectPrecedents(r ref.Range, fn func(ref.Range) bool) {
	n.G.DirectPrecedents(r, fn)
}

// patternSpanner is the optional Graph extension the vectorized run drain
// prefers: graphs that track pattern compression (TACO) report which cell
// spans their compressed edges cover, letting run detection skip cells no
// edge claims share a shape. Graphs without it (NoComp) fall back to purely
// structural detection — interned-program equality over contiguous rows.
type patternSpanner interface {
	PatternRunSpans(r ref.Range, fn func(span ref.Range, p core.PatternType) bool)
}

// directPrecedenter is the optional Graph extension the wavefront scheduler
// levels against: one-hop precedent ranges, no transitive closure. Backends
// without it fall back to the formula ASTs' reference lists, which record the
// same dependencies.
type directPrecedenter interface {
	DirectPrecedents(r ref.Range, fn func(ref.Range) bool)
}

// batchPrecedenter is the batched refinement of directPrecedenter the
// scheduler prefers when the backend offers it: the one-hop windows of every
// dependent cell in a range, answered with a single index search. On a
// compressed graph a contiguous dirty segment is typically covered by a
// handful of pattern edges, so linking it costs edge decoding plus pattern
// arithmetic per cell instead of an R-tree descent per cell — and the edge
// pre-filter lets the scheduler discard edges whose whole precedent window
// misses the dirty set before any per-cell work happens.
type batchPrecedenter interface {
	DirectPrecedentsEach(r ref.Range, edge func(depSpan, precSpan ref.Range) bool, fn func(dep ref.Ref, prec ref.Range) bool)
}

// cell is the engine's cell record.
type cell struct {
	ast   formula.Node // nil for pure values
	src   string
	value formula.Value
	dirty bool
	// evaluating guards against reference cycles during recalculation — a
	// flag on the record instead of a side map, so the (very hot) resolver
	// path costs one pointer dereference, not a map probe.
	evaluating bool
	// sched is the cell's node index in the wavefront schedule currently
	// being built (see schedule.go). Valid only for cells in the dirty set
	// during a drain — the scheduler rewrites it each time — and written
	// exclusively by the drain coordinator, never by workers.
	sched int32
	// prog is the cell's compiled bytecode program, interned through the
	// formula-level compile cache so shifted copies of one formula pattern
	// share a single *Program (pointer equality is how the scheduler detects
	// pattern runs — see runs.go). Lazily compiled on first wavefront drain;
	// progTried avoids recompiling formulas the compiler declines.
	prog      *formula.Program
	progTried bool
}

// Engine is a single-sheet spreadsheet host.
//
// Reads (Value, Peek, Dirty, stats) are side-effect-free: they return the
// last computed value without evaluating anything, so a serving layer can run
// them concurrently under a shared read lock. Evaluation happens only inside
// RecalculateAll / RecalculateN (and the write paths that call them) — the
// background phase of the asynchronous interaction model.
type Engine struct {
	graph Graph
	// store is the primary cell storage: column-sliced, row-ordered slabs,
	// so range reads are contiguous per-column scans (see colstore.go).
	store colStore
	// cells is the secondary point index over the same records — O(1)
	// single-cell lookups while the columnar store serves the scans. Every
	// write maintains both (setCell / ClearCell).
	cells map[ref.Ref]*cell
	// formulas spatially indexes formula-cell positions, so invalidate can
	// intersect a dirty range with the populated formula cells (O(log n + k))
	// instead of probing every cell of the range (O(area) — ruinous for
	// whole-column dependents).
	formulas *rtree.Tree[ref.Ref]
	// nform counts formula cells per column (keys only while non-zero).
	// invalidate consults it to skip formula-free columns outright and to
	// mark formula-dense columns by walking the columnar slabs — contiguous
	// arrays — instead of descending the spatial index per dependent range.
	nform map[int]int
	// dirty is the explicit dirty set: exactly the cells whose record has
	// dirty=true. Recalculation drains it without scanning the cell map.
	dirty map[ref.Ref]*cell
	// slabs tracks the cell-record blocks a snapshot restore allocated, so
	// Recycle can return them to the pool when the engine is discarded.
	slabs [][]cell
	// parallelism is the recalculation worker bound: above 1, RecalculateAll
	// and RecalculateN drain large dirty sets through the wavefront scheduler
	// (schedule.go) instead of the serial resolver. 0 and 1 mean serial.
	parallelism int
	// dirtyGen counts dirty-set mutations from outside a wavefront drain.
	// The cached schedule carries the generation it was built at; a mismatch
	// means an edit intervened and the schedule no longer describes the
	// dirty set (see noteDirtyMutation / ensureSchedule).
	dirtyGen uint64
	// sched is the cached resumable wavefront schedule for the current dirty
	// generation, nil when none is live. Built by ensureSchedule, drained by
	// DrainLevels, invalidated by noteDirtyMutation.
	sched *schedule
	// runner, when set, executes wide wavefront levels — a serving layer
	// injects its shared bounded pool here so drain concurrency is owned by
	// the process, not spawned per drain. Nil falls back to a per-level
	// goroutine fan-out.
	runner LevelRunner
	// levelsDrained and schedBuilds count executed wavefront levels and
	// schedule constructions — the re-levelling amortisation the resumable
	// schedule exists for is their ratio (see RecalcStats).
	levelsDrained uint64
	schedBuilds   uint64
	// patternRuns gates the vectorized run drain (runs.go): when true (the
	// default), wavefront levels are scanned for contiguous-row runs sharing
	// one compiled program and drained as batched sweeps. SetPatternRuns(false)
	// forces per-cell evaluation — the oracle path the run drain must match.
	patternRuns bool

	// Warm-schedule cache: a completed wavefront schedule is a pure function
	// of the formula/graph structure and the epoch's edit roots, so the
	// interactive steady state — the same input cell edited over and over —
	// re-arms the retired schedule instead of re-levelling 20k cells per
	// keystroke. structGen counts structural mutations (formula installs and
	// removals, graph edits); roots accumulates the dirty epoch's edit
	// origins while rootsOK holds (no partial drain or serial evaluation
	// punched a hole in the dirty set the roots can't describe); warm is the
	// last cleanly completed schedule with the structGen and roots it was
	// valid for. See takeWarm/retireSchedule in schedule.go.
	structGen  uint64
	roots      []ref.Ref
	rootsOK    bool
	warm       *schedule
	warmStruct uint64
	warmRoots  []ref.Ref
}

// New returns an empty engine driving the given dependency graph. A nil
// graph defaults to TACO with the paper's full options.
func New(g Graph) *Engine {
	if g == nil {
		g = TACO{G: core.NewGraph(core.DefaultOptions())}
	}
	return &Engine{
		graph:       g,
		store:       newColStore(),
		cells:       make(map[ref.Ref]*cell),
		formulas:    rtree.New[ref.Ref](),
		nform:       make(map[int]int),
		dirty:       make(map[ref.Ref]*cell),
		patternRuns: true,
		rootsOK:     true,
	}
}

// SetPatternRuns toggles the vectorized pattern-run drain (on by default).
// Off forces every wavefront cell through per-cell evaluation — useful as
// the equivalence oracle in tests and benchmarks.
func (e *Engine) SetPatternRuns(on bool) { e.patternRuns = on }

// prog returns the cell's interned bytecode program, compiling on first use.
// Nil when the formula has no compiled form (the AST walker handles it).
func (e *Engine) prog(at ref.Ref, c *cell) *formula.Program {
	if !c.progTried {
		c.progTried = true
		if c.ast != nil {
			c.prog = formula.CompileCached(c.ast, at)
		}
	}
	return c.prog
}

// setCell installs a cell record, maintaining the formula index and the
// dirty set.
func (e *Engine) setCell(at ref.Ref, c *cell) {
	e.noteDirtyMutation()
	if old, ok := e.cells[at]; ok {
		if old.ast != nil {
			e.formulas.Delete(ref.CellRange(at), func(ref.Ref) bool { return true })
			e.decForm(at.Col)
			e.noteStructMutation()
		}
		delete(e.dirty, at)
	}
	if c.ast != nil {
		e.formulas.Insert(ref.CellRange(at), at)
		e.nform[at.Col]++
		e.noteStructMutation()
	}
	if c.dirty {
		e.dirty[at] = c
	}
	e.cells[at] = c
	e.store.set(at, c)
}

// populate fills the engine's cell store from a sheet: values clean,
// formulae parsed and dirty. Graph construction is the caller's job — Load
// feeds dependencies through the incremental path, LoadBulk through the
// streaming compressor. Cells are written in column-major order so the
// columnar store takes its append fast path; the sheet map's random
// iteration order would binary-insert mid-slab — quadratic per dense
// column.
func (e *Engine) populate(s *workload.Sheet) error {
	refs := make([]ref.Ref, 0, len(s.Cells))
	for at := range s.Cells {
		refs = append(refs, at)
	}
	slices.SortFunc(refs, ref.ColumnMajorCompare)
	for _, at := range refs {
		c := s.Cells[at]
		if c.IsFormula() {
			ast, err := formula.ParseCached(c.Formula)
			if err != nil {
				return fmt.Errorf("engine: cell %v: %w", at, err)
			}
			e.setCell(at, &cell{ast: ast, src: c.Formula, dirty: true})
		} else {
			e.setCell(at, &cell{value: c.Value})
		}
	}
	return nil
}

// Load populates the engine from a workload sheet and evaluates everything.
func Load(s *workload.Sheet, g Graph) (*Engine, error) {
	e := New(g)
	if err := e.populate(s); err != nil {
		return nil, err
	}
	deps, err := s.Dependencies()
	if err != nil {
		return nil, err
	}
	for _, d := range deps {
		e.graph.Add(d)
	}
	e.RecalculateAll()
	return e, nil
}

// ParsedCell is a pre-parsed cell for LoadBulkParsed: a formula (Src + AST)
// or a pure value. Callers that already parsed their input — batch
// validation, file loaders — hand the ASTs over instead of paying a second
// parse.
type ParsedCell struct {
	At    ref.Ref
	Src   string       // formula source ("" for value cells)
	AST   formula.Node // nil for value cells
	Value formula.Value
}

// LoadBulkParsed builds an engine from pre-parsed cells through the
// column-major streaming bulk path (core.BuildBulk), which skips the
// per-dependency candidate search. Cells may arrive in any order, with the
// later of duplicate refs winning (as if applied sequentially);
// dependencies are derived in column-major order, the order that gives the
// streaming compressor its adjacent runs.
func LoadBulkParsed(pcells []ParsedCell) *Engine {
	// Duplicate refs: the later cell wins, matching sequential application.
	ordered := make([]ParsedCell, 0, len(pcells))
	seen := make(map[ref.Ref]int, len(pcells))
	for _, c := range pcells {
		if i, dup := seen[c.At]; dup {
			ordered[i] = c
			continue
		}
		seen[c.At] = len(ordered)
		ordered = append(ordered, c)
	}
	slices.SortFunc(ordered, func(a, b ParsedCell) int { return ref.ColumnMajorCompare(a.At, b.At) })
	var deps []core.Dependency
	for _, c := range ordered {
		if c.AST == nil {
			continue
		}
		for _, r := range formula.Refs(c.AST) {
			deps = append(deps, core.Dependency{
				Prec: r.At, Dep: c.At, HeadFixed: r.HeadFixed, TailFixed: r.TailFixed,
			})
		}
	}
	e := New(TACO{G: core.BuildBulk(deps, core.DefaultOptions())})
	// Fill the cell map directly and STR-pack the formula index: the bulk
	// path has all entries up front, so it skips per-cell R-tree insertion.
	var items []rtree.Item[ref.Ref]
	for _, c := range ordered {
		var rec *cell
		if c.AST != nil {
			rec = &cell{ast: c.AST, src: c.Src, dirty: true}
			e.dirty[c.At] = rec
			e.nform[c.At.Col]++
			items = append(items, rtree.Item[ref.Ref]{Rect: ref.CellRange(c.At), Value: c.At})
		} else {
			rec = &cell{value: c.Value}
		}
		e.cells[c.At] = rec
		e.store.set(c.At, rec) // ordered input: the append fast path
	}
	e.formulas = rtree.BulkLoad(items)
	e.RecalculateAll()
	return e
}

// LoadBulk populates an engine from a workload sheet like Load, but through
// the bulk path. Each formula is parsed exactly once. Use it when
// materialising a whole sheet at once — fresh server sessions, file opens —
// and Load/SetFormula for interactive edits.
func LoadBulk(s *workload.Sheet) (*Engine, error) {
	pcells := make([]ParsedCell, 0, len(s.Cells))
	for at, c := range s.Cells {
		if c.IsFormula() {
			ast, err := formula.ParseCached(c.Formula)
			if err != nil {
				return nil, fmt.Errorf("engine: cell %v: %w", at, err)
			}
			pcells = append(pcells, ParsedCell{At: at, Src: c.Formula, AST: ast})
		} else {
			pcells = append(pcells, ParsedCell{At: at, Value: c.Value})
		}
	}
	return LoadBulkParsed(pcells), nil
}

// Value returns the last computed value of a cell. It is side-effect-free:
// a dirty cell returns its stale value (use Dirty or Peek to detect that, and
// RecalculateAll/RecalculateN to drain), so concurrent readers are safe under
// a shared read lock.
func (e *Engine) Value(at ref.Ref) formula.Value {
	if c, ok := e.cells[at]; ok {
		return c.value
	}
	return formula.Empty()
}

// Peek returns the last computed value and whether it is clean. A pending
// (dirty) cell returns its stale value with clean=false — the greyed-out
// state an asynchronous UI shows.
func (e *Engine) Peek(at ref.Ref) (v formula.Value, clean bool) {
	c, ok := e.cells[at]
	if !ok {
		return formula.Empty(), true
	}
	return c.value, !c.dirty
}

// evalResolver is the formula.Resolver recalculation runs under: reading a
// dirty precedent evaluates it first, which makes recalculation naturally
// topological. It is deliberately not the public read path — Engine.Value
// must stay side-effect-free.
type evalResolver struct{ e *Engine }

// CellValue implements formula.Resolver. Clean cells — the overwhelming
// majority of references during a recalculation — pay one map probe and no
// cycle bookkeeping.
func (r evalResolver) CellValue(at ref.Ref) formula.Value {
	c, ok := r.e.cells[at]
	if !ok {
		return formula.Empty()
	}
	if c.dirty {
		if c.evaluating {
			return formula.Errorf("#CYCLE!")
		}
		r.e.evaluate(at, c)
	}
	return c.value
}

// RangeValues implements formula.RangeResolver: the evaluator's bulk fast
// path for range-consuming builtins. It streams the populated cells of rng
// in row-major order straight off the columnar slabs — no per-cell map
// probes — evaluating dirty cells on the way exactly as CellValue would.
// Evaluation never inserts or removes cells, so the slabs are stable under
// the recursive evaluations a scan can trigger.
func (r evalResolver) RangeValues(rng ref.Range, fn func(at ref.Ref, v formula.Value) bool) bool {
	r.e.store.scanRange(rng, func(at ref.Ref, c *cell) bool {
		if c.dirty {
			if c.evaluating {
				return fn(at, formula.Errorf("#CYCLE!"))
			}
			r.e.evaluate(at, c)
		}
		return fn(at, c.value)
	})
	return true
}

// FoldRange implements formula.RangeFolder for the recalculation path:
// the plain aggregates fold straight off the columnar slabs, evaluating
// dirty cells on the way exactly as CellValue would (and reporting a cell
// currently being evaluated as #CYCLE!, like every other read of it).
func (r evalResolver) FoldRange(rng ref.Range) (formula.NumericFold, bool) {
	return r.e.store.foldRange(rng, r.dirtyVal)
}

// dirtyVal is the dirty-cell hook the fold paths share: evaluate the cell
// first, exactly as CellValue would (a cell currently being evaluated reads
// as #CYCLE!, like every other read of it).
func (r evalResolver) dirtyVal(at ref.Ref, c *cell) formula.Value {
	if c.evaluating {
		return formula.Errorf("#CYCLE!")
	}
	r.e.evaluate(at, c)
	return c.value
}

// FoldSumIf implements formula.CondFolder for the recalculation path.
func (r evalResolver) FoldSumIf(critRng ref.Range, crit formula.Criterion, sumRng ref.Range) (float64, bool) {
	return r.e.store.foldSumIf(critRng, crit, sumRng, r.dirtyVal)
}

// FoldSumProduct implements formula.CondFolder for the recalculation path.
func (r evalResolver) FoldSumProduct(a, b ref.Range) (float64, bool) {
	return r.e.store.foldSumProduct(a, b, r.dirtyVal)
}

func (e *Engine) evaluate(at ref.Ref, c *cell) {
	e.noteDirtyMutation()
	// A serial evaluation drains cells the roots model can't account for.
	e.rootsOK = false
	if c.ast != nil {
		c.evaluating = true
		c.value = formula.Eval(c.ast, evalResolver{e})
		c.evaluating = false
	}
	c.dirty = false
	delete(e.dirty, at)
}

// Formula returns the formula source of a cell ("" for value cells).
func (e *Engine) Formula(at ref.Ref) string {
	if c, ok := e.cells[at]; ok {
		return c.src
	}
	return ""
}

// SetValue writes a pure value, returning the dirty set — the transitive
// dependents the asynchronous model hides before returning control.
func (e *Engine) SetValue(at ref.Ref, v formula.Value) []ref.Range {
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.graph.Clear(ref.CellRange(at))
	}
	e.setCell(at, &cell{value: v})
	return e.invalidate(at)
}

// SetFormula writes a formula, registering its dependencies and returning
// the dirty set.
func (e *Engine) SetFormula(at ref.Ref, src string) ([]ref.Range, error) {
	ast, err := formula.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.SetFormulaParsed(at, src, ast), nil
}

// SetFormulaParsed is SetFormula for a formula the caller already parsed —
// batch endpoints validate whole batches up front and must not pay for a
// second parse per edit.
func (e *Engine) SetFormulaParsed(at ref.Ref, src string, ast formula.Node) []ref.Range {
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.graph.Clear(ref.CellRange(at))
	}
	for _, r := range formula.Refs(ast) {
		e.graph.Add(core.Dependency{
			Prec: r.At, Dep: at, HeadFixed: r.HeadFixed, TailFixed: r.TailFixed,
		})
	}
	e.setCell(at, &cell{ast: ast, src: src, dirty: true})
	return e.invalidate(at)
}

// ClearCell removes a cell entirely.
func (e *Engine) ClearCell(at ref.Ref) []ref.Range {
	e.noteDirtyMutation()
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.graph.Clear(ref.CellRange(at))
		e.formulas.Delete(ref.CellRange(at), func(ref.Ref) bool { return true })
		e.decForm(at.Col)
		e.noteStructMutation()
	}
	delete(e.cells, at)
	delete(e.dirty, at)
	e.store.delete(at)
	return e.invalidate(at)
}

// invalidate marks the transitive dependents of at dirty and returns them.
// This is the critical-path step of the asynchronous model: its cost is
// dominated by the dependency-graph traversal. Marking intersects each dirty
// range with the formula index rather than probing every cell of the range —
// a dependents range can span whole columns while holding a handful of
// formulae.
func (e *Engine) invalidate(at ref.Ref) []ref.Range {
	e.noteDirtyMutation()
	e.noteRoot(at)
	dirty := e.graph.Dependents(ref.CellRange(at))
	for _, rng := range dirty {
		e.markRange(rng)
	}
	return dirty
}

// noteRoot tracks the dirty epoch's edit origins for the warm-schedule
// cache (schedule.go): an empty dirty set means this edit starts a fresh
// epoch, so the roots list restarts. The list stays small — an epoch fed by
// more than a handful of distinct roots won't repeat exactly anyway, so it
// is cheaper to stop tracking than to compare long lists.
func (e *Engine) noteRoot(at ref.Ref) {
	if len(e.dirty) == 0 && e.sched == nil {
		e.roots = e.roots[:0]
		e.rootsOK = true
	}
	if !e.rootsOK {
		return
	}
	if slices.Contains(e.roots, at) {
		return // re-editing a root marks nothing new
	}
	if len(e.roots) >= maxWarmRoots {
		e.rootsOK = false
		return
	}
	e.roots = append(e.roots, at)
}

// decForm drops one from a column's formula count, deleting the key at
// zero so nform holds only columns that actually contain formulae.
func (e *Engine) decForm(col int) {
	if n := e.nform[col] - 1; n > 0 {
		e.nform[col] = n
	} else {
		delete(e.nform, col)
	}
}

// markRange marks the formula cells of one dirty range. Columns with no
// formulae at all are skipped via the per-column count; ranges wider than
// the set of formula-bearing columns iterate that set instead of the span
// (a whole-row dependent range costs O(formula columns), not O(width)).
func (e *Engine) markRange(rng ref.Range) {
	if rng.Cols() > len(e.nform) {
		for col, nf := range e.nform {
			if col >= rng.Head.Col && col <= rng.Tail.Col {
				e.markCol(col, rng.Head.Row, rng.Tail.Row, nf)
			}
		}
		return
	}
	for col := rng.Head.Col; col <= rng.Tail.Col; col++ {
		if nf, ok := e.nform[col]; ok {
			e.markCol(col, rng.Head.Row, rng.Tail.Row, nf)
		}
	}
}

// markCol marks the formula cells of one column's row window dirty. When
// the column's slab window is formula-dense (at most a few populated cells
// per formula), it scans the contiguous slab checking ast != nil — a few ns
// per cell — instead of descending the spatial index, whose per-entry cost
// is an order of magnitude higher. Sparse windows (a handful of formulae in
// a sea of values) fall back to the single-column R-tree search.
func (e *Engine) markCol(col, r1, r2, nf int) {
	if c := e.store.cols[col]; c != nil {
		if lo, hi := c.window(r1, r2); hi-lo <= 4*nf {
			for i := lo; i < hi; i++ {
				if cc := c.cells[i]; cc.ast != nil && !cc.dirty {
					cc.dirty = true
					e.dirty[ref.Ref{Col: col, Row: c.rows[i]}] = cc
				}
			}
			return
		}
	}
	r := ref.Range{Head: ref.Ref{Col: col, Row: r1}, Tail: ref.Ref{Col: col, Row: r2}}
	e.formulas.Search(r, func(_ ref.Range, fat ref.Ref) bool {
		if cc := e.cells[fat]; cc != nil && !cc.dirty {
			cc.dirty = true
			e.dirty[fat] = cc
		}
		return true
	})
}

// ScanRange streams the populated cells of rng in row-major order with
// their last computed values, formula sources, and clean flags. Like Value
// and Peek it is side-effect-free — dirty cells report their stale value
// with clean=false — so a serving layer can run it under a shared read
// lock. Unpopulated cells are skipped: a range read costs contiguous
// per-column slab scans, not rows×cols map probes.
func (e *Engine) ScanRange(rng ref.Range, fn func(at ref.Ref, v formula.Value, src string, clean bool) bool) {
	e.store.scanRange(rng, func(at ref.Ref, c *cell) bool {
		return fn(at, c.value, c.src, !c.dirty)
	})
}

// valueResolver adapts the engine's side-effect-free read path to
// formula.Resolver + formula.RangeResolver: last computed values only,
// never evaluating. It is what external consumers (benchmarks, ad-hoc
// expression evaluation over a quiesced engine) should evaluate against.
type valueResolver struct{ e *Engine }

// CellValue implements formula.Resolver.
func (r valueResolver) CellValue(at ref.Ref) formula.Value { return r.e.Value(at) }

// RangeValues implements formula.RangeResolver.
func (r valueResolver) RangeValues(rng ref.Range, fn func(at ref.Ref, v formula.Value) bool) bool {
	r.e.store.scanRange(rng, func(at ref.Ref, c *cell) bool {
		return fn(at, c.value)
	})
	return true
}

// FoldRange implements formula.RangeFolder: the side-effect-free variant
// folds last computed values (a dirty cell contributes its stale value,
// exactly as RangeValues streams it).
func (r valueResolver) FoldRange(rng ref.Range) (formula.NumericFold, bool) {
	return r.e.store.foldRange(rng, nil)
}

// FoldSumIf implements formula.CondFolder over last computed values.
func (r valueResolver) FoldSumIf(critRng ref.Range, crit formula.Criterion, sumRng ref.Range) (float64, bool) {
	return r.e.store.foldSumIf(critRng, crit, sumRng, nil)
}

// FoldSumProduct implements formula.CondFolder over last computed values.
func (r valueResolver) FoldSumProduct(a, b ref.Range) (float64, bool) {
	return r.e.store.foldSumProduct(a, b, nil)
}

// ValueResolver returns a side-effect-free formula resolver over the
// engine's last computed values. It implements formula.RangeResolver and
// formula.RangeFolder, so range-consuming builtins evaluated against it take
// the columnar bulk path and the plain aggregates the batched fold.
func (e *Engine) ValueResolver() formula.Resolver { return valueResolver{e} }

// CellStats returns the columnar cell store's shape summary.
func (e *Engine) CellStats() CellStoreStats { return e.store.stats() }

// Dirty reports whether the cell awaits recalculation.
func (e *Engine) Dirty(at ref.Ref) bool {
	c, ok := e.cells[at]
	return ok && c.dirty
}

// SetRecalcParallelism sets the recalculation worker bound. Above 1,
// RecalculateAll and RecalculateN drain sufficiently large dirty sets through
// the parallel wavefront scheduler; 0 or 1 keeps recalculation serial.
// Parallel drains produce exactly the serial results (see schedule.go); the
// knob only trades scheduling overhead against cores.
func (e *Engine) SetRecalcParallelism(n int) { e.parallelism = n }

// RecalcParallelism returns the configured recalculation worker bound.
func (e *Engine) RecalcParallelism() int { return e.parallelism }

// SetLevelRunner injects the executor for wide wavefront levels. A serving
// layer hands every hosted engine the same store-owned bounded pool, so the
// process's total drain concurrency is a configuration constant instead of
// growing with the number of sessions draining. Nil restores the default
// per-level goroutine fan-out.
func (e *Engine) SetLevelRunner(run LevelRunner) { e.runner = run }

// wavefrontReady reports whether recalculation should route through the
// wavefront scheduler: parallelism configured and either a dirty set large
// enough to be worth levelling, or a cached schedule mid-drain (resuming it
// is always cheaper than switching to the serial path).
func (e *Engine) wavefrontReady() bool {
	return e.parallelism > 1 && (e.sched != nil || len(e.dirty) >= minParallelDirty)
}

// RecalculateAll evaluates every dirty formula cell (the background phase of
// the asynchronous model). It returns the number of cells evaluated directly;
// transitively evaluated precedents are drained from the dirty set too. With
// recalc parallelism configured, large dirty sets drain through the wavefront
// scheduler on a bounded worker pool.
func (e *Engine) RecalculateAll() int {
	if e.wavefrontReady() {
		return e.DrainLevels(len(e.dirty), nil)
	}
	n := 0
	for at, c := range e.dirty {
		if c.dirty {
			e.evaluate(at, c)
			n++
		}
	}
	mCellsEvaluated.Add(uint64(n))
	return n
}

// RecalculateN evaluates up to max dirty cells and returns how many it
// evaluated directly. A background worker drains in bounded chunks so a
// large recalculation never holds a session lock for its full duration —
// readers interleave between chunks. Note a single evaluation can clean an
// arbitrary number of transitive precedents (chains), so the work per call is
// bounded in evaluations started, not cells cleaned. With recalc parallelism
// configured the bound applies to wavefront evaluations instead: levels are
// truncated to the budget and the schedule — built once per dirty generation
// — stays cached between calls, so successive chunks resume the remaining
// levels instead of re-levelling the remainder (see DrainLevels).
func (e *Engine) RecalculateN(max int) int {
	if e.wavefrontReady() {
		return e.DrainLevels(max, nil)
	}
	n := 0
	for at, c := range e.dirty {
		if n >= max {
			break
		}
		if c.dirty {
			e.evaluate(at, c)
			n++
		}
	}
	mCellsEvaluated.Add(uint64(n))
	return n
}

// RecalcStats describes the recalculation scheduler's state: the dirty
// backlog, the live resumable schedule (if a budgeted drain is mid-flight),
// and the cumulative level/build counters whose ratio shows how much
// re-levelling the schedule cache is amortising.
type RecalcStats struct {
	// Pending is the number of cells awaiting recalculation.
	Pending int `json:"pending"`
	// Scheduled is the node count of the live resumable schedule (0 when no
	// schedule is cached — the dirty set has not been levelled, or the last
	// drain ran to exhaustion).
	Scheduled int `json:"scheduled,omitempty"`
	// FrontierWidth is the ready width of the live schedule: cells whose
	// precedents are all settled, i.e. the size of the next level.
	FrontierWidth int `json:"frontier_width,omitempty"`
	// LevelsDrained counts wavefront levels executed over the engine's life.
	LevelsDrained uint64 `json:"levels_drained"`
	// ScheduleBuilds counts schedule constructions (Kahn runs). Budgeted
	// drains resuming a cached schedule do not rebuild, so this stays at one
	// per dirty generation however many chunks the drain takes.
	ScheduleBuilds uint64 `json:"schedule_builds"`
}

// RecalcStats returns the recalculation scheduler's state snapshot.
func (e *Engine) RecalcStats() RecalcStats {
	st := RecalcStats{
		Pending:        len(e.dirty),
		LevelsDrained:  e.levelsDrained,
		ScheduleBuilds: e.schedBuilds,
	}
	if e.sched != nil {
		st.Scheduled = e.sched.total
		st.FrontierWidth = len(e.sched.frontier)
	}
	return st
}

// Pending returns the number of cells awaiting recalculation.
func (e *Engine) Pending() int { return len(e.dirty) }

// Dependents exposes the graph's dependents query (used by tracing tools).
func (e *Engine) Dependents(r ref.Range) []ref.Range { return e.graph.Dependents(r) }

// Precedents exposes the graph's precedents query.
func (e *Engine) Precedents(r ref.Range) []ref.Range { return e.graph.Precedents(r) }

// NumCells returns the number of populated cells.
func (e *Engine) NumCells() int { return len(e.cells) }

// NumFormulas returns the number of formula cells.
func (e *Engine) NumFormulas() int { return e.formulas.Len() }

// GraphStats returns the compressed graph's size statistics. ok is false
// when the engine drives a non-TACO backend.
func (e *Engine) GraphStats() (core.Stats, bool) {
	if tg, ok := e.graph.(TACO); ok {
		return tg.G.Stats(), true
	}
	return core.Stats{}, false
}

// TACOGraph returns the underlying compressed graph, or nil for non-TACO
// backends. A serving layer pins it across spills: the compressed graph is
// the compact part of a session (the paper's point), so queries against a
// spilled session can traverse it in memory while only the cell store pays
// the spill round-trip.
func (e *Engine) TACOGraph() *core.Graph {
	if tg, ok := e.graph.(TACO); ok {
		return tg.G
	}
	return nil
}

// Recycle returns the engine's recyclable containers (cell map, column
// slabs, dirty set, restore slabs) to package pools. Only for owners
// discarding the engine — the serving layer's spill path, which holds the
// session exclusively and drops its last reference right after. The graph
// is untouched (it may be pinned and outlive the engine). Using the engine
// after Recycle is a bug.
func (e *Engine) Recycle() {
	e.releaseSchedule()
	e.releaseWarm()
	for _, block := range e.slabs {
		clear(block) // drop AST/string references before pooling
		slabPool.Put(block[:0])
	}
	e.slabs = nil
	clear(e.cells)
	cellMapPool.Put(e.cells)
	e.cells = nil
	e.store.recycle()
	e.dirty = nil
	e.formulas = nil
}

var (
	cellMapPool = sync.Pool{New: func() any { return make(map[ref.Ref]*cell, 1024) }}
	slabPool    = sync.Pool{New: func() any { return make([]cell, 0, slabBlockSize) }}
)

const slabBlockSize = 1024
