// Package engine is a minimal spreadsheet execution host in the style of
// DATASPREAD, the system the paper integrates TACO into. It keeps a sparse
// cell store, parses and evaluates formulae, and drives recalculation
// through a pluggable formula graph — so TACO is a drop-in replacement for
// the uncompressed graph, exactly as in the paper's prototype.
//
// The engine implements the asynchronous interaction model of Sec. VI-A:
// when a cell is updated, the engine first identifies every transitive
// dependent (the step whose latency decides when control returns to the
// user) and marks those cells dirty; evaluation then proceeds separately.
package engine

import (
	"fmt"
	"sort"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/nocomp"
	"taco/internal/ref"
	"taco/internal/workload"
)

// Graph is the dependency-graph interface the engine drives. Both the TACO
// compressed graph and the NoComp baseline satisfy it via the adapters
// below.
type Graph interface {
	// Add registers one dependency.
	Add(d core.Dependency)
	// Clear removes the dependencies of every formula cell in s.
	Clear(s ref.Range)
	// Dependents returns the transitive dependents of r as disjoint ranges.
	Dependents(r ref.Range) []ref.Range
	// Precedents returns the transitive precedents of r as disjoint ranges.
	Precedents(r ref.Range) []ref.Range
}

// TACO adapts *core.Graph to the engine's Graph interface.
type TACO struct{ G *core.Graph }

// Add implements Graph.
func (t TACO) Add(d core.Dependency) { t.G.AddDependency(d) }

// Clear implements Graph.
func (t TACO) Clear(s ref.Range) { t.G.Clear(s) }

// Dependents implements Graph.
func (t TACO) Dependents(r ref.Range) []ref.Range { return t.G.FindDependents(r) }

// Precedents implements Graph.
func (t TACO) Precedents(r ref.Range) []ref.Range { return t.G.FindPrecedents(r) }

// NoComp adapts *nocomp.Graph to the engine's Graph interface.
type NoComp struct{ G *nocomp.Graph }

// Add implements Graph.
func (n NoComp) Add(d core.Dependency) { n.G.AddDependency(d) }

// Clear implements Graph.
func (n NoComp) Clear(s ref.Range) { n.G.Clear(s) }

// Dependents implements Graph.
func (n NoComp) Dependents(r ref.Range) []ref.Range { return n.G.FindDependents(r) }

// Precedents implements Graph.
func (n NoComp) Precedents(r ref.Range) []ref.Range { return n.G.FindPrecedents(r) }

// cell is the engine's cell record.
type cell struct {
	ast   formula.Node // nil for pure values
	src   string
	value formula.Value
	dirty bool
}

// Engine is a single-sheet spreadsheet host.
type Engine struct {
	graph Graph
	cells map[ref.Ref]*cell
	// nformulas counts formula cells, maintained on every mutation so
	// serving-layer stats reads are O(1) instead of scanning the cell map.
	nformulas int
	// evaluating guards against reference cycles during recalculation.
	evaluating map[ref.Ref]bool
}

// New returns an empty engine driving the given dependency graph. A nil
// graph defaults to TACO with the paper's full options.
func New(g Graph) *Engine {
	if g == nil {
		g = TACO{G: core.NewGraph(core.DefaultOptions())}
	}
	return &Engine{
		graph:      g,
		cells:      make(map[ref.Ref]*cell),
		evaluating: make(map[ref.Ref]bool),
	}
}

// setCell installs a cell record, maintaining the formula count.
func (e *Engine) setCell(at ref.Ref, c *cell) {
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.nformulas--
	}
	if c.ast != nil {
		e.nformulas++
	}
	e.cells[at] = c
}

// populate fills the engine's cell store from a sheet: values clean,
// formulae parsed and dirty. Graph construction is the caller's job — Load
// feeds dependencies through the incremental path, LoadBulk through the
// streaming compressor.
func (e *Engine) populate(s *workload.Sheet) error {
	for at, c := range s.Cells {
		if c.IsFormula() {
			ast, err := formula.Parse(c.Formula)
			if err != nil {
				return fmt.Errorf("engine: cell %v: %w", at, err)
			}
			e.setCell(at, &cell{ast: ast, src: c.Formula, dirty: true})
		} else {
			e.setCell(at, &cell{value: c.Value})
		}
	}
	return nil
}

// Load populates the engine from a workload sheet and evaluates everything.
func Load(s *workload.Sheet, g Graph) (*Engine, error) {
	e := New(g)
	if err := e.populate(s); err != nil {
		return nil, err
	}
	deps, err := s.Dependencies()
	if err != nil {
		return nil, err
	}
	for _, d := range deps {
		e.graph.Add(d)
	}
	e.RecalculateAll()
	return e, nil
}

// ParsedCell is a pre-parsed cell for LoadBulkParsed: a formula (Src + AST)
// or a pure value. Callers that already parsed their input — batch
// validation, file loaders — hand the ASTs over instead of paying a second
// parse.
type ParsedCell struct {
	At    ref.Ref
	Src   string       // formula source ("" for value cells)
	AST   formula.Node // nil for value cells
	Value formula.Value
}

// LoadBulkParsed builds an engine from pre-parsed cells through the
// column-major streaming bulk path (core.BuildBulk), which skips the
// per-dependency candidate search. Cells may arrive in any order (at most
// one per ref); dependencies are derived in column-major order, the order
// that gives the streaming compressor its adjacent runs.
func LoadBulkParsed(pcells []ParsedCell) *Engine {
	ordered := append([]ParsedCell(nil), pcells...)
	sort.Slice(ordered, func(i, j int) bool { return ref.ColumnMajorLess(ordered[i].At, ordered[j].At) })
	var deps []core.Dependency
	for _, c := range ordered {
		if c.AST == nil {
			continue
		}
		for _, r := range formula.Refs(c.AST) {
			deps = append(deps, core.Dependency{
				Prec: r.At, Dep: c.At, HeadFixed: r.HeadFixed, TailFixed: r.TailFixed,
			})
		}
	}
	e := New(TACO{G: core.BuildBulk(deps, core.DefaultOptions())})
	for _, c := range ordered {
		if c.AST != nil {
			e.setCell(c.At, &cell{ast: c.AST, src: c.Src, dirty: true})
		} else {
			e.setCell(c.At, &cell{value: c.Value})
		}
	}
	e.RecalculateAll()
	return e
}

// LoadBulk populates an engine from a workload sheet like Load, but through
// the bulk path. Each formula is parsed exactly once. Use it when
// materialising a whole sheet at once — fresh server sessions, file opens —
// and Load/SetFormula for interactive edits.
func LoadBulk(s *workload.Sheet) (*Engine, error) {
	pcells := make([]ParsedCell, 0, len(s.Cells))
	for at, c := range s.Cells {
		if c.IsFormula() {
			ast, err := formula.Parse(c.Formula)
			if err != nil {
				return nil, fmt.Errorf("engine: cell %v: %w", at, err)
			}
			pcells = append(pcells, ParsedCell{At: at, Src: c.Formula, AST: ast})
		} else {
			pcells = append(pcells, ParsedCell{At: at, Value: c.Value})
		}
	}
	return LoadBulkParsed(pcells), nil
}

// Value returns the current (possibly cached) value of a cell.
func (e *Engine) Value(at ref.Ref) formula.Value {
	c, ok := e.cells[at]
	if !ok {
		return formula.Empty()
	}
	if c.dirty {
		e.evaluate(at, c)
	}
	return c.value
}

// CellValue implements formula.Resolver: reading a dirty precedent evaluates
// it first, which makes recalculation naturally topological.
func (e *Engine) CellValue(at ref.Ref) formula.Value {
	if e.evaluating[at] {
		return formula.Errorf("#CYCLE!")
	}
	return e.Value(at)
}

func (e *Engine) evaluate(at ref.Ref, c *cell) {
	if c.ast == nil {
		c.dirty = false
		return
	}
	e.evaluating[at] = true
	c.value = formula.Eval(c.ast, e)
	delete(e.evaluating, at)
	c.dirty = false
}

// Formula returns the formula source of a cell ("" for value cells).
func (e *Engine) Formula(at ref.Ref) string {
	if c, ok := e.cells[at]; ok {
		return c.src
	}
	return ""
}

// SetValue writes a pure value, returning the dirty set — the transitive
// dependents the asynchronous model hides before returning control.
func (e *Engine) SetValue(at ref.Ref, v formula.Value) []ref.Range {
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.graph.Clear(ref.CellRange(at))
	}
	e.setCell(at, &cell{value: v})
	return e.invalidate(at)
}

// SetFormula writes a formula, registering its dependencies and returning
// the dirty set.
func (e *Engine) SetFormula(at ref.Ref, src string) ([]ref.Range, error) {
	ast, err := formula.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.SetFormulaParsed(at, src, ast), nil
}

// SetFormulaParsed is SetFormula for a formula the caller already parsed —
// batch endpoints validate whole batches up front and must not pay for a
// second parse per edit.
func (e *Engine) SetFormulaParsed(at ref.Ref, src string, ast formula.Node) []ref.Range {
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.graph.Clear(ref.CellRange(at))
	}
	for _, r := range formula.Refs(ast) {
		e.graph.Add(core.Dependency{
			Prec: r.At, Dep: at, HeadFixed: r.HeadFixed, TailFixed: r.TailFixed,
		})
	}
	e.setCell(at, &cell{ast: ast, src: src, dirty: true})
	return e.invalidate(at)
}

// ClearCell removes a cell entirely.
func (e *Engine) ClearCell(at ref.Ref) []ref.Range {
	if old, ok := e.cells[at]; ok && old.ast != nil {
		e.graph.Clear(ref.CellRange(at))
		e.nformulas--
	}
	delete(e.cells, at)
	return e.invalidate(at)
}

// invalidate marks the transitive dependents of at dirty and returns them.
// This is the critical-path step of the asynchronous model: its cost is
// dominated by the dependency-graph traversal.
func (e *Engine) invalidate(at ref.Ref) []ref.Range {
	dirty := e.graph.Dependents(ref.CellRange(at))
	for _, rng := range dirty {
		rng.Cells(func(c ref.Ref) bool {
			if cc, ok := e.cells[c]; ok && cc.ast != nil {
				cc.dirty = true
			}
			return true
		})
	}
	return dirty
}

// Dirty reports whether the cell awaits recalculation.
func (e *Engine) Dirty(at ref.Ref) bool {
	c, ok := e.cells[at]
	return ok && c.dirty
}

// RecalculateAll evaluates every dirty formula cell (the background phase of
// the asynchronous model). It returns the number of cells recalculated.
func (e *Engine) RecalculateAll() int {
	n := 0
	for at, c := range e.cells {
		if c.dirty {
			e.evaluate(at, c)
			n++
		}
	}
	return n
}

// Dependents exposes the graph's dependents query (used by tracing tools).
func (e *Engine) Dependents(r ref.Range) []ref.Range { return e.graph.Dependents(r) }

// Precedents exposes the graph's precedents query.
func (e *Engine) Precedents(r ref.Range) []ref.Range { return e.graph.Precedents(r) }

// NumCells returns the number of populated cells.
func (e *Engine) NumCells() int { return len(e.cells) }

// NumFormulas returns the number of formula cells.
func (e *Engine) NumFormulas() int { return e.nformulas }

// GraphStats returns the compressed graph's size statistics. ok is false
// when the engine drives a non-TACO backend.
func (e *Engine) GraphStats() (core.Stats, bool) {
	if tg, ok := e.graph.(TACO); ok {
		return tg.G.Stats(), true
	}
	return core.Stats{}, false
}
