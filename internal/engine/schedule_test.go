package engine

import (
	"fmt"
	"testing"

	"taco/internal/formula"
	"taco/internal/nocomp"
	"taco/internal/ref"
)

// recalcFixture builds one dependency shape twice — once per engine under
// comparison — and names the edit that dirties it.
type recalcFixture struct {
	name  string
	build func(e *Engine)
	// edit re-dirties the sheet after the initial load settles.
	edit func(e *Engine)
}

func mustFormula(t testing.TB, e *Engine, at, src string) {
	t.Helper()
	if _, err := e.SetFormula(ref.MustCell(at), src); err != nil {
		t.Fatalf("SetFormula(%s, %q): %v", at, src, err)
	}
}

// recalcFixtures covers the shapes the wavefront scheduler's leveling must
// get right: pure depth (every level width 1), pure width (one giant level),
// reconvergence (diamonds), reference cycles with downstream dependents, and
// a mixed sheet combining all of them over ranges.
func recalcFixtures(t testing.TB) []recalcFixture {
	deepChain := func(n int) recalcFixture {
		return recalcFixture{
			name: fmt.Sprintf("deep_chain_%d", n),
			build: func(e *Engine) {
				e.SetValue(ref.MustCell("A1"), formula.Num(1))
				mustFormula(t, e, "B1", "A1+1")
				for i := 2; i <= n; i++ {
					mustFormula(t, e, fmt.Sprintf("B%d", i), fmt.Sprintf("B%d*1.0001+1", i-1))
				}
			},
			edit: func(e *Engine) { e.SetValue(ref.MustCell("A1"), formula.Num(7)) },
		}
	}
	wideFanout := func(n int) recalcFixture {
		return recalcFixture{
			name: fmt.Sprintf("wide_fanout_%d", n),
			build: func(e *Engine) {
				e.SetValue(ref.MustCell("A1"), formula.Num(3))
				for i := 1; i <= n; i++ {
					mustFormula(t, e, fmt.Sprintf("C%d", i), fmt.Sprintf("$A$1*%d+SQRT(%d)", i, i))
				}
			},
			edit: func(e *Engine) { e.SetValue(ref.MustCell("A1"), formula.Num(11)) },
		}
	}
	diamond := func(blocks, width int) recalcFixture {
		return recalcFixture{
			name: fmt.Sprintf("diamond_%dx%d", blocks, width),
			build: func(e *Engine) {
				// A column of join cells: each fans out to `width` middle
				// cells, which reconverge into the next join via SUM.
				e.SetValue(ref.MustCell("A1"), formula.Num(2))
				join := "A1"
				for b := 0; b < blocks; b++ {
					col := string(rune('C' + b))
					for i := 1; i <= width; i++ {
						mustFormula(t, e, fmt.Sprintf("%s%d", col, i), fmt.Sprintf("%s+%d", join, i))
					}
					next := fmt.Sprintf("B%d", b+2)
					mustFormula(t, e, next, fmt.Sprintf("SUM(%s1:%s%d)/%d", col, col, width, width))
					join = next
				}
			},
			edit: func(e *Engine) { e.SetValue(ref.MustCell("A1"), formula.Num(9)) },
		}
	}
	cycle := recalcFixture{
		name: "cycle_with_downstream",
		build: func(e *Engine) {
			// D1 <-> D2 is a pure cycle; E1..E40 hang off it (propagating the
			// error), F1 rescues it, and G1..G40 are an unrelated clean fanout
			// that must still evaluate.
			e.SetValue(ref.MustCell("A1"), formula.Num(5))
			mustFormula(t, e, "D1", "D2+A1")
			mustFormula(t, e, "D2", "D1+1")
			for i := 1; i <= 40; i++ {
				mustFormula(t, e, fmt.Sprintf("E%d", i), fmt.Sprintf("D2+%d", i))
			}
			mustFormula(t, e, "F1", "IFERROR(D1,123)+A1")
			mustFormula(t, e, "H1", "H1+A1") // direct self-reference
			for i := 1; i <= 40; i++ {
				mustFormula(t, e, fmt.Sprintf("G%d", i), fmt.Sprintf("$A$1+%d", i))
			}
		},
		edit: func(e *Engine) { e.SetValue(ref.MustCell("A1"), formula.Num(6)) },
	}
	mixed := recalcFixture{
		name: "mixed_ranges",
		build: func(e *Engine) {
			for i := 1; i <= 60; i++ {
				e.SetValue(ref.Ref{Col: 1, Row: i}, formula.Num(float64(i)/3))
			}
			for i := 1; i <= 60; i++ {
				mustFormula(t, e, fmt.Sprintf("B%d", i), fmt.Sprintf("SUM(A$1:A$%d)+A%d", i, i))
			}
			mustFormula(t, e, "C1", "SUM(B1:B60)")
			mustFormula(t, e, "C2", "AVERAGE(B1:B30)*C1")
			for i := 3; i <= 40; i++ {
				mustFormula(t, e, fmt.Sprintf("C%d", i), fmt.Sprintf("C%d+MAX(B1:B10)", i-1))
			}
			mustFormula(t, e, "D1", "COUNTIF(B1:B60,\">10\")+VLOOKUP(A5,A1:B60,2)")
		},
		edit: func(e *Engine) {
			e.SetValue(ref.MustCell("A1"), formula.Num(42))
			e.SetValue(ref.MustCell("A30"), formula.Num(-3))
		},
	}
	return []recalcFixture{
		deepChain(300), wideFanout(500), diamond(4, 80), cycle, mixed,
	}
}

// enginesEqual compares every populated cell of two engines.
func enginesEqual(t *testing.T, serial, parallel *Engine) {
	t.Helper()
	if sn, pn := serial.NumCells(), parallel.NumCells(); sn != pn {
		t.Fatalf("cell counts diverge: serial %d, parallel %d", sn, pn)
	}
	serial.store.eachColumnMajor(func(at ref.Ref, c *cell) error {
		pv := parallel.Value(at)
		if pv != c.value {
			t.Errorf("%v: serial=%v parallel=%v", at, c.value, pv)
		}
		if parallel.Dirty(at) {
			t.Errorf("%v: still dirty after parallel drain", at)
		}
		return nil
	})
	if p := parallel.Pending(); p != 0 {
		t.Fatalf("parallel engine still has %d pending cells", p)
	}
}

// TestWavefrontMatchesSerial drives every fixture through a serial engine
// and a parallel one (4 workers, thresholds forced low enough to actually
// exercise the scheduler) and requires identical values everywhere — the
// scheduler's core contract.
func TestWavefrontMatchesSerial(t *testing.T) {
	for _, fx := range recalcFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			serial := New(nil)
			parallel := New(nil)
			parallel.SetRecalcParallelism(4)
			for _, e := range []*Engine{serial, parallel} {
				fx.build(e)
				e.RecalculateAll()
				fx.edit(e)
			}
			serial.RecalculateAll()
			parallel.RecalculateAll()
			enginesEqual(t, serial, parallel)
		})
	}
}

// TestWavefrontNoCompBackend runs the same equivalence over the NoComp
// baseline graph, which exercises the uncompressed DirectPrecedents mirror.
func TestWavefrontNoCompBackend(t *testing.T) {
	for _, fx := range recalcFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			serial := New(NoComp{G: nocomp.NewGraph()})
			parallel := New(NoComp{G: nocomp.NewGraph()})
			parallel.SetRecalcParallelism(4)
			for _, e := range []*Engine{serial, parallel} {
				fx.build(e)
				e.RecalculateAll()
				fx.edit(e)
			}
			serial.RecalculateAll()
			parallel.RecalculateAll()
			enginesEqual(t, serial, parallel)
		})
	}
}

// TestWavefrontRecalculateN checks the budgeted parallel drain: partial
// drains make progress, never evaluate a cell before its precedents, and
// converge to the serial fixpoint.
func TestWavefrontRecalculateN(t *testing.T) {
	for _, fx := range recalcFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			serial := New(nil)
			parallel := New(nil)
			parallel.SetRecalcParallelism(4)
			for _, e := range []*Engine{serial, parallel} {
				fx.build(e)
				e.RecalculateAll()
				fx.edit(e)
			}
			serial.RecalculateAll()
			for i := 0; parallel.Pending() > 0; i++ {
				if parallel.RecalculateN(70) == 0 {
					t.Fatalf("drain stalled with %d pending", parallel.Pending())
				}
				if i > 10000 {
					t.Fatal("drain did not converge")
				}
			}
			enginesEqual(t, serial, parallel)
		})
	}
}

// TestWavefrontCycleValues pins the cycle semantics: every cell on a cycle
// is #CYCLE!, downstream arithmetic propagates the error, and IFERROR
// rescues it — for both drain paths.
func TestWavefrontCycleValues(t *testing.T) {
	e := New(nil)
	e.SetRecalcParallelism(4)
	e.SetValue(ref.MustCell("A1"), formula.Num(5))
	mustFormula(t, e, "D1", "D2+A1")
	mustFormula(t, e, "D2", "D1+1")
	mustFormula(t, e, "E1", "D2*2")
	mustFormula(t, e, "F1", "IFERROR(D1,123)")
	mustFormula(t, e, "H1", "H1+1")
	// Pad the dirty set past the serial-fallback threshold so the wavefront
	// path actually runs.
	for i := 1; i <= 2*minParallelDirty; i++ {
		mustFormula(t, e, fmt.Sprintf("J%d", i), "$A$1")
	}
	e.RecalculateAll()
	for _, at := range []string{"D1", "D2", "E1", "H1"} {
		if v := e.Value(ref.MustCell(at)); v.Err != "#CYCLE!" {
			t.Errorf("%s = %v, want #CYCLE!", at, v)
		}
	}
	if v := e.Value(ref.MustCell("F1")); v.Num != 123 {
		t.Errorf("F1 = %v, want rescued 123", v)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after full drain", e.Pending())
	}
}

// TestWavefrontSmallSetStaysSerial documents the fallback: below the
// threshold the parallel engine takes the serial path (observable only via
// correctness here, but it pins the threshold constant into a test).
func TestWavefrontSmallSetStaysSerial(t *testing.T) {
	e := New(nil)
	e.SetRecalcParallelism(8)
	e.SetValue(ref.MustCell("A1"), formula.Num(2))
	mustFormula(t, e, "B1", "A1*10")
	if e.RecalculateAll() == 0 {
		t.Fatal("nothing recalculated")
	}
	if v := e.Value(ref.MustCell("B1")); v.Num != 20 {
		t.Fatalf("B1 = %v", v)
	}
}

// TestWarmScheduleReuse pins the warm-schedule cache's contract: repeating
// the same value edit re-arms the retired schedule (no re-levelling), the
// results stay identical to a cold drain, and anything that changes the
// epoch's shape — a different edit root, a structural mutation — falls back
// to a fresh build.
func TestWarmScheduleReuse(t *testing.T) {
	build := func() *Engine {
		e := New(nil)
		e.SetValue(ref.MustCell("F1"), formula.Num(1.5))
		e.SetValue(ref.MustCell("G1"), formula.Num(2))
		for r := 1; r <= 200; r++ {
			e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
			mustFormula(t, e, fmt.Sprintf("B%d", r), fmt.Sprintf("A%d*$F$1", r))
			mustFormula(t, e, fmt.Sprintf("C%d", r), fmt.Sprintf("B%d+$G$1", r))
		}
		e.RecalculateAll()
		return e
	}
	e := build()
	e.SetRecalcParallelism(4)

	check := func(f1 float64) {
		t.Helper()
		for _, r := range []int{1, 57, 200} {
			want := float64(r)*f1 + 2
			if v := e.Value(ref.Ref{Col: 3, Row: r}); v.Num != want {
				t.Fatalf("C%d = %v, want %v", r, v, want)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("pending = %d after drain", e.Pending())
		}
	}

	// Cold drain: builds and retires the schedule.
	builds0, warm0 := mSchedBuilds.Value(), mSchedWarmReuses.Value()
	e.SetValue(ref.MustCell("F1"), formula.Num(3))
	e.RecalculateAll()
	check(3)
	if d := mSchedBuilds.Value() - builds0; d != 1 {
		t.Fatalf("cold drain: %d schedule builds, want 1", d)
	}

	// Same root again: the retired schedule re-arms, nothing re-levels.
	builds0 = mSchedBuilds.Value()
	for i, f1 := range []float64{4, 5, 6} {
		e.SetValue(ref.MustCell("F1"), formula.Num(f1))
		e.RecalculateAll()
		check(f1)
		if d := mSchedWarmReuses.Value() - warm0; d != uint64(i+1) {
			t.Fatalf("edit %d: %d warm reuses, want %d", i, d, i+1)
		}
	}
	if d := mSchedBuilds.Value() - builds0; d != 0 {
		t.Fatalf("warm edits: %d schedule builds, want 0", d)
	}

	// A different root: same structure, different epoch — must rebuild and
	// still be exact.
	builds0, warm0 = mSchedBuilds.Value(), mSchedWarmReuses.Value()
	e.SetValue(ref.MustCell("G1"), formula.Num(10))
	e.RecalculateAll()
	for _, r := range []int{1, 200} {
		want := float64(r)*6 + 10
		if v := e.Value(ref.Ref{Col: 3, Row: r}); v.Num != want {
			t.Fatalf("C%d = %v, want %v after G1 edit", r, v, want)
		}
	}
	if mSchedWarmReuses.Value() != warm0 {
		t.Fatal("G1 edit reused the F1 epoch's schedule")
	}
	if d := mSchedBuilds.Value() - builds0; d != 1 {
		t.Fatalf("G1 edit: %d schedule builds, want 1", d)
	}

	// A structural mutation invalidates the warm cache even for the same
	// root: the re-pointed formula must see fresh levels, not stale links.
	e.SetValue(ref.MustCell("G1"), formula.Num(10)) // retire a G1-rooted schedule
	e.RecalculateAll()
	mustFormula(t, e, "C1", "B1-$G$1")
	e.RecalculateAll()
	e.SetValue(ref.MustCell("G1"), formula.Num(20))
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("C1")); v.Num != 6-20 {
		t.Fatalf("C1 = %v, want %v after formula change", v, 6-20)
	}
	if v := e.Value(ref.MustCell("C2")); v.Num != 2*6+20 {
		t.Fatalf("C2 = %v, want %v after formula change", v, 2*6+20)
	}
}

// TestWarmScheduleSerialInterference: a serial evaluation (a read-through
// Recalculate on a small budget, or any evalResolver recursion) drains
// cells the root model cannot account for, so the next drain must not trust
// the warm cache.
func TestWarmScheduleSerialInterference(t *testing.T) {
	e := New(nil)
	e.SetValue(ref.MustCell("F1"), formula.Num(1))
	for r := 1; r <= 100; r++ {
		e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
		mustFormula(t, e, fmt.Sprintf("B%d", r), fmt.Sprintf("A%d*$F$1", r))
	}
	e.RecalculateAll()
	e.SetRecalcParallelism(4)
	e.SetValue(ref.MustCell("F1"), formula.Num(2))
	e.RecalculateAll() // retire a warm schedule for root F1

	e.SetValue(ref.MustCell("F1"), formula.Num(3))
	// Serial drain of part of the epoch: parallelism off for one call.
	e.SetRecalcParallelism(1)
	e.RecalculateN(10)
	e.SetRecalcParallelism(4)
	e.RecalculateAll()
	for _, r := range []int{1, 50, 100} {
		if v := e.Value(ref.Ref{Col: 2, Row: r}); v.Num != float64(r)*3 {
			t.Fatalf("B%d = %v, want %v", r, v, float64(r)*3)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}
