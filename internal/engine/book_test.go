package engine

import (
	"math/rand"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

func TestBookAddAndLookup(t *testing.T) {
	b := NewBook()
	e, err := b.AddSheet("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddSheet("alpha"); err == nil {
		t.Fatal("duplicate sheet accepted")
	}
	e.SetValue(ref.MustCell("A1"), formula.Num(5))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1*2"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	if got := b.Sheet("alpha").Value(ref.MustCell("B1")); got.Num != 10 {
		t.Fatalf("B1 = %v", got)
	}
	if b.Sheet("missing") != nil {
		t.Fatal("missing sheet should be nil")
	}
	if b.NumSheets() != 1 || len(b.Names()) != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestLoadBookFromSheets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sheets := []*workload.Sheet{
		workload.FinancialModel(24, rng),
		workload.InventoryTracker(40, rng),
	}
	b, err := LoadBook(sheets)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumSheets() != 2 {
		t.Fatalf("sheets = %d", b.NumSheets())
	}
	// Each sheet has an independent, populated TACO graph.
	stats := b.Stats()
	for name, st := range stats {
		if st.Dependencies == 0 || st.Edges == 0 {
			t.Fatalf("sheet %s stats = %+v", name, st)
		}
		if st.Edges >= st.Dependencies {
			t.Fatalf("sheet %s not compressed: %+v", name, st)
		}
	}
	// Sheets are isolated: an edit in one does not dirty the other.
	fin := b.Sheet("financial")
	inv := b.Sheet("inventory")
	fin.SetValue(ref.MustCell("B1"), formula.Num(9999))
	if inv.Dirty(ref.Ref{Col: 4, Row: 40}) {
		t.Fatal("cross-sheet contamination")
	}
}

func TestLoadBookNamesAndErrors(t *testing.T) {
	s1 := workload.NewSheet("")
	s1.SetValue(ref.MustCell("A1"), 1)
	s2 := workload.NewSheet("dup")
	s3 := workload.NewSheet("dup")
	b, err := LoadBook([]*workload.Sheet{s1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Names()[0] != "Sheet1" {
		t.Fatalf("default name = %q", b.Names()[0])
	}
	if _, err := LoadBook([]*workload.Sheet{s2, s3}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	bad := workload.NewSheet("bad")
	bad.SetFormula(ref.MustCell("A1"), "SUM(")
	if _, err := LoadBook([]*workload.Sheet{bad}); err == nil {
		t.Fatal("bad formula accepted")
	}
}
