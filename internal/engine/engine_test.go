package engine

import (
	"math/rand"
	"testing"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/nocomp"
	"taco/internal/ref"
	"taco/internal/workload"
)

func newTACO() *Engine { return New(nil) }

func TestSetValueAndFormula(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(2))
	e.SetValue(ref.MustCell("A2"), formula.Num(3))
	if _, err := e.SetFormula(ref.MustCell("B1"), "SUM(A1:A2)*10"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("B1")); v.Num != 50 {
		t.Fatalf("B1 = %v", v)
	}
}

func TestUpdatePropagates(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(1))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1+1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("C1"), "B1+1"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("C1")); v.Num != 3 {
		t.Fatalf("C1 = %v", v)
	}
	// The asynchronous model: the dirty set returns before evaluation.
	dirty := e.SetValue(ref.MustCell("A1"), formula.Num(10))
	if core.CountCells(dirty) != 2 {
		t.Fatalf("dirty = %v", dirty)
	}
	if !e.Dirty(ref.MustCell("C1")) {
		t.Fatal("C1 should be dirty before recalculation")
	}
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("C1")); v.Num != 12 {
		t.Fatalf("C1 after update = %v", v)
	}
	if e.Dirty(ref.MustCell("C1")) {
		t.Fatal("C1 still dirty after recalculation")
	}
}

func TestReadsAreSideEffectFree(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(1))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1*2"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	e.SetValue(ref.MustCell("A1"), formula.Num(5))
	// Reads never evaluate: a dirty cell keeps returning its stale value
	// (flagged by Peek/Dirty) until an explicit recalculation drains it —
	// which is what makes reads safe under a shared read lock.
	if v := e.Value(ref.MustCell("B1")); v.Num != 2 {
		t.Fatalf("stale B1 = %v, want 2", v)
	}
	if v, clean := e.Peek(ref.MustCell("B1")); clean || v.Num != 2 {
		t.Fatalf("Peek B1 = %v clean=%v, want stale 2", v, clean)
	}
	if !e.Dirty(ref.MustCell("B1")) || e.Pending() != 1 {
		t.Fatalf("B1 dirty=%v pending=%d", e.Dirty(ref.MustCell("B1")), e.Pending())
	}
	e.RecalculateAll()
	if v, clean := e.Peek(ref.MustCell("B1")); !clean || v.Num != 10 {
		t.Fatalf("B1 after recalc = %v clean=%v", v, clean)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestRecalculateNDrainsInChunks(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(1))
	for row := 1; row <= 40; row++ {
		at := ref.Ref{Col: 2, Row: row}
		if _, err := e.SetFormula(at, "$A$1*2"); err != nil {
			t.Fatal(err)
		}
	}
	e.RecalculateAll()
	e.SetValue(ref.MustCell("A1"), formula.Num(3))
	if e.Pending() != 40 {
		t.Fatalf("pending = %d, want 40", e.Pending())
	}
	steps := 0
	for e.Pending() > 0 {
		if n := e.RecalculateN(8); n == 0 {
			t.Fatal("RecalculateN made no progress")
		}
		steps++
		if steps > 40 {
			t.Fatal("RecalculateN failed to converge")
		}
	}
	if steps < 2 {
		t.Fatalf("expected multiple chunks, got %d", steps)
	}
	if v := e.Value(ref.Ref{Col: 2, Row: 17}); v.Num != 6 {
		t.Fatalf("B17 = %v", v)
	}
}

func TestLoadBulkParsedDuplicateRefsLaterWins(t *testing.T) {
	// A formula overwritten by a value at the same ref: the later cell wins
	// and no stale formula survives in the index or the dirty set.
	ast := formula.MustParse("A1*2")
	e := LoadBulkParsed([]ParsedCell{
		{At: ref.MustCell("A1"), Value: formula.Num(3)},
		{At: ref.MustCell("B1"), Src: "A1*2", AST: ast},
		{At: ref.MustCell("B1"), Value: formula.Num(7)},
	})
	if e.NumCells() != 2 || e.NumFormulas() != 0 || e.Pending() != 0 {
		t.Fatalf("cells=%d formulas=%d pending=%d", e.NumCells(), e.NumFormulas(), e.Pending())
	}
	if v := e.Value(ref.MustCell("B1")); v.Num != 7 {
		t.Fatalf("B1 = %v", v)
	}
	// And no dangling dependency fires on edits to A1.
	if dirty := e.SetValue(ref.MustCell("A1"), formula.Num(9)); core.CountCells(dirty) != 0 {
		t.Fatalf("stale dependency: %v", dirty)
	}
}

func TestFormulaReplacementRewiresGraph(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(1))
	e.SetValue(ref.MustCell("A2"), formula.Num(100))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("B1"), "A2"); err != nil {
		t.Fatal(err)
	}
	// A1 no longer has dependents.
	if dirty := e.SetValue(ref.MustCell("A1"), formula.Num(2)); core.CountCells(dirty) != 0 {
		t.Fatalf("stale dependency: %v", dirty)
	}
	if dirty := e.SetValue(ref.MustCell("A2"), formula.Num(7)); core.CountCells(dirty) != 1 {
		t.Fatalf("missing dependency: %v", dirty)
	}
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("B1")); v.Num != 7 {
		t.Fatalf("B1 = %v", v)
	}
}

func TestClearCell(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(1))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1"); err != nil {
		t.Fatal(err)
	}
	e.ClearCell(ref.MustCell("B1"))
	if e.NumCells() != 1 {
		t.Fatalf("cells = %d", e.NumCells())
	}
	if dirty := e.SetValue(ref.MustCell("A1"), formula.Num(2)); core.CountCells(dirty) != 0 {
		t.Fatalf("dirty after clear = %v", dirty)
	}
}

func TestCycleDetection(t *testing.T) {
	e := newTACO()
	if _, err := e.SetFormula(ref.MustCell("A1"), "B1+1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1+1"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	v := e.Value(ref.MustCell("A1"))
	if !v.IsError() {
		t.Fatalf("cycle value = %v, want error", v)
	}
}

func TestLoadFromSheetTACOAndNoCompAgree(t *testing.T) {
	s := workload.GenerateSheet("t", 60, 0.05, rand.New(rand.NewSource(8)))
	a, err := Load(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(s, NoComp{G: nocomp.NewGraph()})
	if err != nil {
		t.Fatal(err)
	}
	for at := range s.Cells {
		va, vb := a.Value(at), b.Value(at)
		if va.String() != vb.String() {
			t.Fatalf("cell %v: taco %v vs nocomp %v", at, va, vb)
		}
	}
	// An update must produce the same dirty cells and final values.
	target := ref.MustCell("B5")
	da := a.SetValue(target, formula.Num(999))
	db := b.SetValue(target, formula.Num(999))
	if core.CountCells(da) != core.CountCells(db) {
		t.Fatalf("dirty sets differ: %d vs %d", core.CountCells(da), core.CountCells(db))
	}
	a.RecalculateAll()
	b.RecalculateAll()
	for at := range s.Cells {
		va, vb := a.Value(at), b.Value(at)
		if va.String() != vb.String() {
			t.Fatalf("after update, cell %v: taco %v vs nocomp %v", at, va, vb)
		}
	}
}

func TestFig2Evaluation(t *testing.T) {
	// End-to-end over the paper's Fig. 2 column: grouped running totals.
	s := workload.NewSheet("fig2")
	keys := []string{"", "x", "x", "x", "y", "y", "z"}
	vals := []float64{0, 10, 20, 30, 5, 5, 1}
	for i := 2; i <= 7; i++ {
		s.SetText(ref.Ref{Col: 1, Row: i}, keys[i-1])
		s.SetValue(ref.Ref{Col: 13, Row: i}, vals[i-1])
	}
	s.AddFig2Column(1, 13, 14, 7)
	e, err := Load(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// N4 = 10+20+30 = 60 (third x row), N6 = 5+5 = 10, N7 = 1.
	if v := e.Value(ref.Ref{Col: 14, Row: 4}); v.Num != 60 {
		t.Fatalf("N4 = %v", v)
	}
	if v := e.Value(ref.Ref{Col: 14, Row: 6}); v.Num != 10 {
		t.Fatalf("N6 = %v", v)
	}
	if v := e.Value(ref.Ref{Col: 14, Row: 7}); v.Num != 1 {
		t.Fatalf("N7 = %v", v)
	}
	// Editing M3 dirties the rest of the group chain.
	dirty := e.SetValue(ref.Ref{Col: 13, Row: 3}, formula.Num(200))
	if core.CountCells(dirty) < 2 {
		t.Fatalf("dirty = %v", dirty)
	}
	e.RecalculateAll()
	if v := e.Value(ref.Ref{Col: 14, Row: 4}); v.Num != 240 {
		t.Fatalf("N4 after edit = %v", v)
	}
}

func TestPrecedentsExposed(t *testing.T) {
	e := newTACO()
	e.SetValue(ref.MustCell("A1"), formula.Num(1))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1*2"); err != nil {
		t.Fatal(err)
	}
	precs := e.Precedents(ref.MustRange("B1"))
	if core.CountCells(precs) != 1 || precs[0] != ref.MustRange("A1") {
		t.Fatalf("precedents = %v", precs)
	}
	deps := e.Dependents(ref.MustRange("A1"))
	if core.CountCells(deps) != 1 {
		t.Fatalf("dependents = %v", deps)
	}
}

func TestFormulaSourceAccessor(t *testing.T) {
	e := newTACO()
	if _, err := e.SetFormula(ref.MustCell("B1"), "1+1"); err != nil {
		t.Fatal(err)
	}
	if e.Formula(ref.MustCell("B1")) != "1+1" {
		t.Fatalf("formula = %q", e.Formula(ref.MustCell("B1")))
	}
	if e.Formula(ref.MustCell("Z9")) != "" {
		t.Fatal("missing cell formula should be empty")
	}
	if _, err := e.SetFormula(ref.MustCell("B2"), "SUM("); err == nil {
		t.Fatal("want parse error")
	}
}
