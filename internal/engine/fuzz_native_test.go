package engine

import (
	"fmt"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// FuzzRecalcParallel: for any parseable formula dropped into a populated
// sheet, a parallel wavefront drain must produce byte-identical values to
// the serial drain — the engine-level extension of formula.FuzzEval's
// bulk≡percell property to the scheduler. Sheets where a fuzzed formula
// closes a reference cycle are exempted from the value comparison (the
// serial resolver's cycle results depend on drain order, which is exactly
// the nondeterminism the wavefront's leveling-time detection removes), but
// still executed: panics, races, and non-converging drains fail either way.
func FuzzRecalcParallel(f *testing.F) {
	seeds := []string{
		"=SUM(A1:A40)+B3",
		"=IF(A2>5,SUM(B1:B20),MAX(A1:A10))",
		"=VLOOKUP(A3,A1:B40,2)",
		"=C1*2",
		"=AVERAGE(C1:C30)&COUNTIF(A1:A40,\">3\")",
		"=IFERROR(1/A5,99)",
		"=E5+1", // self-reference once placed at E5
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := formula.Parse(src)
		if err != nil {
			return
		}
		// Bound the referenced area: evaluation cost is linear in it for
		// some builtins, and fuzzing wants many small executions.
		area := 0
		for _, r := range formula.Refs(node) {
			area += r.At.Size()
			if area > 1<<20 {
				return
			}
		}
		build := func(parallelism int) *Engine {
			e := New(nil)
			e.SetRecalcParallelism(parallelism)
			for row := 1; row <= 40; row++ {
				switch row % 4 {
				case 0: // gaps: sparse columns
				case 1:
					e.SetValue(ref.Ref{Col: 1, Row: row}, formula.Num(float64(row)/2))
				case 2:
					e.SetValue(ref.Ref{Col: 2, Row: row}, formula.Str("t"))
				default:
					e.SetValue(ref.Ref{Col: 1, Row: row}, formula.Num(-float64(row)))
					e.SetValue(ref.Ref{Col: 2, Row: row}, formula.Num(float64(row*row)))
				}
			}
			// A formula tier over the data plus padding wide enough to push
			// every drain over the wavefront threshold.
			for row := 1; row <= 40; row++ {
				mustFormula(t, e, fmt.Sprintf("C%d", row), fmt.Sprintf("SUM(A$1:B$%d)+%d", row, row))
			}
			for i := 1; i <= minParallelDirty; i++ {
				mustFormula(t, e, fmt.Sprintf("H%d", i), fmt.Sprintf("$A$1+%d", i))
			}
			// The fuzzed formula, twice, so it can also feed itself.
			if _, err := e.SetFormula(ref.MustCell("E5"), src); err != nil {
				t.Fatalf("parsed but rejected by SetFormula: %v", err)
			}
			if _, err := e.SetFormula(ref.MustCell("G20"), src); err != nil {
				t.Fatalf("parsed but rejected by SetFormula: %v", err)
			}
			mustFormula(t, e, "F1", "E5+G20")
			e.RecalculateAll()
			// Re-dirty through the shared input and drain again: the second
			// drain exercises invalidate-driven dirty sets, not load-time ones.
			e.SetValue(ref.MustCell("A1"), formula.Num(17))
			e.RecalculateAll()
			return e
		}
		serial := build(1)
		parallel := build(4)
		if p := parallel.Pending(); p != 0 {
			t.Fatalf("parallel drain left %d pending", p)
		}
		cycles := false
		serial.store.eachColumnMajor(func(_ ref.Ref, c *cell) error {
			if c.value.Err == "#CYCLE!" {
				cycles = true
			}
			return nil
		})
		parallel.store.eachColumnMajor(func(_ ref.Ref, c *cell) error {
			if c.value.Err == "#CYCLE!" {
				cycles = true
			}
			return nil
		})
		if cycles {
			return
		}
		serial.store.eachColumnMajor(func(at ref.Ref, c *cell) error {
			if pv := parallel.Value(at); pv != c.value {
				t.Errorf("%v: serial=%v parallel=%v (formula %q)", at, c.value, pv, src)
			}
			return nil
		})
	})
}
