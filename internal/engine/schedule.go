package engine

import (
	"slices"
	"sync"
	"sync/atomic"

	"taco/internal/formula"
	"taco/internal/ref"
)

// This file implements parallel wavefront recalculation: the dirty set is
// partitioned into topological levels — a cell's level is one past its
// deepest dirty precedent — and each level is evaluated concurrently on a
// bounded worker pool. Cells within a level have no dirty precedents, so
// every value a level's evaluations read is already settled: the formula
// evaluator runs with read-only access to the cell store and the results are
// exactly the serial resolver's, independent of worker count or scheduling.
//
// The schedule is a first-class resumable object. It is built once per dirty
// generation — Kahn's algorithm over the dirty-restricted dependency
// relation, direct precedents from the graph's one-hop query intersected
// with the dirty set — and then drained level by level under a budget
// (DrainLevels). A budget that runs out mid-schedule leaves the schedule
// cached on the engine with its remaining frontier intact, so the next
// RecalculateN call resumes where the last one stopped instead of
// re-levelling the remainder: a serving layer can drain a giant dirty set in
// many short lock holds and pay for levelling exactly once. Any dirty-set
// mutation from outside a drain (an edit, a clear, a serial evaluation)
// bumps the engine's dirty generation and invalidates the cached schedule;
// the next drain simply rebuilds over whatever is dirty then. The generation
// stamp is also checked at resume time, so a schedule can never be drained
// against a dirty set it does not describe.
//
// Reference cycles are detected during levelling, not mid-evaluation: when
// Kahn stalls, the strongly connected components of the stalled subgraph are
// the cycles; their members are published as #CYCLE! and the downstream
// cells (which are stuck behind, not on, a cycle) then evaluate normally
// against those error values, propagating or rescuing them exactly as the
// serial path does.
//
// Concurrency safety rests on two invariants. First, evaluation never
// inserts or removes cells, so the columnar slabs, the cell map, and the
// formula index are all stable for the duration of a drain. Second, a
// worker writes only the cells it was handed — no two workers share a cell,
// no evaluated cell is read before the level barrier that published it, and
// the shared dirty set is maintained by the coordinator alone between
// levels. Workers therefore need no locks and no per-cell atomics; the
// level barrier is the only synchronisation.

const (
	// minParallelDirty is the dirty-set size below which RecalculateAll/N
	// stay serial even with parallelism configured — levelling a handful of
	// cells costs more than evaluating them. A cached schedule overrides the
	// threshold: resuming it is cheaper than switching paths.
	minParallelDirty = 64
	// minParallelLevel is the level width below which the coordinator
	// evaluates inline instead of fanning out: narrow levels (deep chains
	// degenerate to width 1) have no parallelism to exploit.
	minParallelLevel = 16
	// levelGrab is the number of cells a worker claims per fetch from the
	// shared level cursor — large enough to amortise the atomic, small
	// enough to keep uneven formula costs balanced across workers.
	levelGrab = 32
	// smallPrecProbe is the precedent-range size up to which the linker
	// probes the dirty map per cell instead of querying the per-column
	// index. Single-cell references — all of a chain, most of a scalar
	// sheet — then never touch (or build) the index at all.
	smallPrecProbe = 8
	// maxWarmRoots bounds the edit-root list the warm-schedule cache
	// compares epochs by; epochs with more distinct roots rebuild.
	maxWarmRoots = 8
)

// LevelRunner executes the independent evaluations of one wavefront level:
// it must call eval(i) exactly once for every i in [0, n), from any
// goroutine and in any interleaving, and return only after every call has
// completed. The evaluations are data-independent by construction (that is
// what a level is), so a runner needs no ordering — a serving layer injects
// one backed by its shared worker pool (Engine.SetLevelRunner) so the
// goroutine budget is owned by the process, not by each drain.
type LevelRunner func(n int, eval func(i int))

// schedNode is one dirty cell in the wavefront DAG.
type schedNode struct {
	at ref.Ref
	c  *cell
	// outs indexes the dirty dependents of this cell; completing the cell
	// decrements each one's nprec.
	outs []int32
	// nprec counts dirty direct precedents not yet published. Touched only
	// by the coordinator — workers never see the schedule. nprec0 keeps the
	// linker's initial count so a warm-cached schedule can re-arm without
	// re-linking.
	nprec  int32
	nprec0 int32
	// self marks a direct self-reference: an immediate cycle, never
	// evaluated, resolved to #CYCLE! with the other cycle members.
	self bool
	// cyclic marks a cell resolved as a cycle member during levelling.
	cyclic bool
}

// schedule is the resumable wavefront schedule: the dirty set snapshotted as
// a levelled DAG at one dirty generation, with the current ready frontier.
// It lives on the engine between budgeted drains and is released back to the
// package pool on exhaustion or invalidation. Pooled instances keep their
// node array's per-slot out-edge capacity, the frontier buffers, and the
// column index's per-column slices, so a server draining sessions at a
// steady rate stops allocating once the pool warms up.
type schedule struct {
	nodes []schedNode
	// frontier holds the ready level: nodes whose dirty precedents have all
	// been published. next is its double buffer.
	frontier []int32
	next     []int32
	// gen is the engine's dirty generation the schedule was built at; a
	// mismatch at resume time means an edit slipped in and the schedule no
	// longer describes the dirty set.
	gen uint64
	// total is the node count at build time (stats).
	total int
	// cols is the lazy dirty-position index for large precedent ranges:
	// per column, (row<<32 | node index) packed and row-sorted. Rebuilt
	// per build, but only when some precedent range is too large to probe
	// cell-by-cell.
	cols     map[int][]uint64
	colsomeN int // nodes indexed so far (0 = index not built this drain)
	// order is the linker's position-sorted node permutation (batched
	// backends only; empty otherwise). planLevel reuses it to avoid
	// re-sorting each level. mark and lvl are its filter scratch buffers.
	order []int32
	mark  []bool
	lvl   []int32
	// plans caches each drained level's pattern-run partition in order;
	// planIdx is the replay cursor, reset when a warm schedule re-arms.
	// See levelPlan in runs.go.
	plans   []levelPlan
	planIdx int
}

var schedPool = sync.Pool{New: func() any {
	return &schedule{cols: make(map[int][]uint64)}
}}

// noteDirtyMutation records a dirty-set mutation from outside a wavefront
// drain: every such mutation starts a new dirty generation and invalidates
// the cached schedule (the drain's own publications do not — the schedule
// tracks those itself). Called from every write path that touches e.dirty.
// Interrupting a live (unfinished) schedule also poisons the epoch's root
// tracking: the dirty set now mixes a partial drain's remainder with new
// marks, which no root list describes.
func (e *Engine) noteDirtyMutation() {
	e.dirtyGen++
	if e.sched != nil {
		mSchedInvalidations.Inc()
		e.rootsOK = false
		e.releaseSchedule()
	}
}

// noteStructMutation records a change to the formula set or dependency
// graph: the warm-cached schedule describes a structure that no longer
// exists, so it is released (and its retained cell records unpinned).
func (e *Engine) noteStructMutation() {
	e.structGen++
	if e.warm != nil {
		e.releaseWarm()
	}
}

// releaseSchedule returns the cached schedule to the package pool, dropping
// its cell-record references so pooling does not pin them.
func (e *Engine) releaseSchedule() {
	if sch := e.sched; sch != nil {
		e.sched = nil
		poolSchedule(sch)
	}
}

// releaseWarm returns the warm-cached schedule to the package pool.
func (e *Engine) releaseWarm() {
	if sch := e.warm; sch != nil {
		e.warm = nil
		e.warmRoots = e.warmRoots[:0]
		poolSchedule(sch)
	}
}

func poolSchedule(sch *schedule) {
	sch.colsomeN = 0
	for i := range sch.nodes {
		sch.nodes[i].c = nil
	}
	sch.frontier = sch.frontier[:0]
	sch.next = sch.next[:0]
	sch.order = sch.order[:0]
	for i := range sch.plans {
		sch.plans[i] = levelPlan{} // unpin interned programs
	}
	sch.plans = sch.plans[:0]
	sch.planIdx = 0
	schedPool.Put(sch)
}

// retireSchedule moves a cleanly completed schedule into the warm cache,
// stamped with the structure generation and edit roots it is valid for. The
// retired schedule keeps its nodes, links, sort order, and column index —
// everything but the consumed nprec counters, which nprec0 restores at
// re-arm time. Unlike pooling, retirement intentionally pins the node set's
// cell records: they stay live unless a structural mutation (which releases
// the warm cache) replaces them.
func (e *Engine) retireSchedule() {
	sch := e.sched
	if sch == nil {
		return
	}
	e.sched = nil
	e.releaseWarm()
	e.warm = sch
	e.warmStruct = e.structGen
	e.warmRoots = append(e.warmRoots[:0], e.roots...)
}

// takeWarm re-arms the warm-cached schedule when the current dirty epoch is
// provably identical to the one it was built for: same formula/graph
// structure, same edit roots, cleanly tracked (rootsOK), and a matching
// dirty count. The dirty set is then exactly the cached node set — the
// graph's dependent closure is deterministic — so resetting the precedent
// counters and rebuilding the initial frontier is the whole cost: O(nodes),
// no precedent queries, no sort, no linking. This is the interactive steady
// state: the same input cell edited repeatedly re-levels nothing.
func (e *Engine) takeWarm() *schedule {
	sch := e.warm
	if sch == nil || !e.rootsOK || e.warmStruct != e.structGen ||
		len(e.dirty) != len(sch.nodes) || !slices.Equal(e.roots, e.warmRoots) {
		return nil
	}
	e.warm = nil
	sch.gen = e.dirtyGen
	sch.planIdx = 0
	sch.frontier = sch.frontier[:0]
	for i := range sch.nodes {
		nd := &sch.nodes[i]
		nd.nprec = nd.nprec0
		nd.cyclic = false
		if nd.nprec0 == 0 && !nd.self {
			sch.frontier = append(sch.frontier, int32(i))
		}
	}
	sch.total = len(sch.nodes)
	e.sched = sch
	mSchedWarmReuses.Inc()
	return sch
}

// ensureSchedule returns the live schedule for the current dirty generation,
// building one if none is cached. The generation stamp check is the
// schedule-validity contract: a cached schedule is resumed only when no
// external mutation has touched the dirty set since it was built (mutations
// release the schedule eagerly, so the stamp is belt and braces — but it is
// the invariant callers may rely on).
func (e *Engine) ensureSchedule() *schedule {
	if e.sched != nil {
		if e.sched.gen == e.dirtyGen {
			mSchedResumes.Inc()
			return e.sched
		}
		e.releaseSchedule()
	}
	if sch := e.takeWarm(); sch != nil {
		return sch
	}
	sch := schedPool.Get().(*schedule)
	sch.gen = e.dirtyGen
	e.buildSchedule(sch)
	e.linkSchedule(sch)
	sch.frontier = sch.frontier[:0]
	for i := range sch.nodes {
		nd := &sch.nodes[i]
		nd.nprec0 = nd.nprec
		if nd.nprec == 0 && !nd.self {
			sch.frontier = append(sch.frontier, int32(i))
		}
	}
	sch.total = len(sch.nodes)
	e.schedBuilds++
	mSchedBuilds.Inc()
	e.sched = sch
	return sch
}

// DrainLevels drains up to budget dirty cells through the resumable
// wavefront schedule, running each level's evaluations with run (nil uses
// the engine's configured runner, or a per-level goroutine fan-out when none
// is set). The budget truncates the final level rather than splitting the
// schedule's invariants: the remainder of a truncated level stays ready in
// the frontier, the schedule stays cached on the engine, and the next call
// resumes it without re-levelling — Kahn runs once per dirty generation, not
// once per chunk. Returns the number of cells drained (evaluated or
// published as #CYCLE!).
func (e *Engine) DrainLevels(budget int, run LevelRunner) int {
	if budget <= 0 || len(e.dirty) == 0 {
		return 0
	}
	if run == nil {
		run = e.runner
	}
	sch := e.ensureSchedule()
	drained := 0
	levels := uint64(0)
	// Whole-schedule drains defer the per-cell dirty-map deletes and clear
	// the map wholesale at the end: the live schedule's undrained nodes are
	// exactly the dirty set, so when the budget covers all of it the keyed
	// deletes are pure overhead on a large drain. Budgeted chunks keep the
	// per-cell deletes so Pending() stays exact between calls.
	remaining := len(e.dirty)
	bulk := budget >= remaining
	// Telemetry lands in one batch per call, not per cell or per level —
	// the drain loop itself stays free of atomic traffic.
	defer func() {
		mCellsEvaluated.Add(uint64(drained))
		mLevelsDrained.Add(levels)
	}()
	for {
		for len(sch.frontier) > 0 && drained < budget {
			level := sch.frontier
			var rest []int32
			if rem := budget - drained; len(level) > rem {
				// Truncate the level to the budget; the rest is still ready
				// (its precedents are settled) and leads the next frontier.
				level, rest = level[:rem], level[rem:]
			}
			e.runLevel(sch, level, run)
			e.levelsDrained++
			levels++
			drained += len(level)
			// Publish: drop the evaluated cells from the dirty set and
			// release their dependents. Coordinator-only — workers never
			// touch the shared map or the schedule.
			next := sch.next[:0]
			if bulk {
				for _, i := range level {
					for _, j := range sch.nodes[i].outs {
						sch.nodes[j].nprec--
						if sch.nodes[j].nprec == 0 && !sch.nodes[j].self {
							next = append(next, j)
						}
					}
				}
			} else {
				for _, i := range level {
					delete(e.dirty, sch.nodes[i].at)
					for _, j := range sch.nodes[i].outs {
						sch.nodes[j].nprec--
						if sch.nodes[j].nprec == 0 && !sch.nodes[j].self {
							next = append(next, j)
						}
					}
				}
			}
			next = append(next, rest...)
			sch.frontier, sch.next = next, sch.frontier[:0]
		}
		if len(sch.frontier) > 0 {
			// Budget exhausted mid-schedule: keep it cached for the next
			// call. Unreachable in bulk mode — the budget covers every node,
			// so the frontier cannot outlive it and no deferred deletes leak.
			return drained
		}
		if drained == remaining {
			if bulk {
				clear(e.dirty)
			}
			break
		}
		if !bulk && len(e.dirty) == 0 {
			break
		}
		if drained >= budget {
			// Budget exhausted with only cycle-bound cells left; they resolve
			// on the next call against the same cached schedule.
			return drained
		}
		// Kahn stalled with budget left: every remaining dirty cell either
		// sits on a reference cycle or depends on one. Resolve the cycles
		// and resume — the survivors form a DAG and level normally.
		freed := e.resolveCycles(sch, &drained, bulk)
		if len(freed) == 0 {
			break
		}
		sch.frontier = append(sch.frontier[:0], freed...)
	}
	if bulk && len(e.dirty) != 0 {
		// Stall exit with cells left undrained (nothing freed past a cycle):
		// reconcile the deletes the wholesale clear would have covered.
		for at, c := range e.dirty {
			if !c.dirty {
				delete(e.dirty, at)
			}
		}
	}
	if len(e.dirty) == 0 && e.rootsOK {
		e.retireSchedule()
	} else {
		e.rootsOK = false
		e.releaseSchedule()
	}
	return drained
}

// buildSchedule snapshots the dirty set into the schedule's node array,
// reusing each slot's out-edge capacity, and stamps every dirty cell record
// with its node index — the position "map" is the cell store itself, so
// linking costs dirty-map probes, not a second hash table built per drain.
func (e *Engine) buildSchedule(sch *schedule) {
	n := len(e.dirty)
	if cap(sch.nodes) < n {
		sch.nodes = append(sch.nodes[:cap(sch.nodes)], make([]schedNode, n-cap(sch.nodes))...)
	}
	nodes := sch.nodes[:n]
	i := int32(0)
	for at, c := range e.dirty {
		nd := &nodes[i]
		nd.at, nd.c = at, c
		nd.outs = nd.outs[:0]
		nd.nprec, nd.self, nd.cyclic = 0, false, false
		c.sched = i
		i++
	}
	sch.nodes = nodes
}

// linkSchedule wires the dirty-restricted dependency edges: for each node,
// its direct precedent ranges (from the graph's one-hop query, or the
// formula's own reference list for backends without one) are intersected
// with the dirty set — small ranges by probing the dirty map per cell,
// large ranges through a per-column sorted index over the dirty positions,
// built lazily on the first one (a sheet of scalar references never pays
// for the index). Duplicate edges — overlapping precedent ranges are legal
// — are kept, with nprec counted per occurrence, so release stays
// consistent.
func (e *Engine) linkSchedule(sch *schedule) {
	nodes := sch.nodes
	dp, hasDP := e.graph.(directPrecedenter)
	// One closure set per drain, re-aimed per node through cur — a closure
	// per node would be the dominant allocation of the whole drain.
	var cur int32
	addEdge := func(j int32) {
		if j == cur {
			nodes[cur].self = true
			return
		}
		nodes[j].outs = append(nodes[j].outs, cur)
		nodes[cur].nprec++
	}
	probe := func(at ref.Ref) bool {
		if c, ok := e.dirty[at]; ok {
			addEdge(c.sched)
		}
		return true
	}
	link := func(p ref.Range) bool {
		if p.Size() <= smallPrecProbe {
			p.Cells(probe)
			return true
		}
		sch.searchLarge(p, addEdge)
		return true
	}
	if bp, ok := e.graph.(batchPrecedenter); ok {
		// Batched linking: sort the nodes by position, carve the dirty set
		// into maximal contiguous column segments, and answer each segment
		// with one compressed-index search. The graph enumerates (dependent
		// cell, precedent window) pairs per covering edge — identical pairs,
		// in a different order, to the per-cell queries below — and segment
		// contiguity turns the dependent-cell-to-node lookup into row
		// arithmetic on the sorted order, no map probe. The edge pre-filter
		// discards edges whose union precedent window holds no dirty cell
		// (data-fed edges, the bulk of a sheet) before any per-cell work;
		// windows that survive link exactly as the per-cell path would.
		// Dirty value cells ride along harmlessly: no edge claims them.
		order := sch.order[:0]
		for i := range nodes {
			order = append(order, int32(i))
		}
		slices.SortFunc(order, func(a, b int32) int {
			if c := nodes[a].at.Col - nodes[b].at.Col; c != 0 {
				return c
			}
			return nodes[a].at.Row - nodes[b].at.Row
		})
		sch.order = order
		sch.buildColsFromOrder()
		skipClean := func(_, prec ref.Range) bool { return sch.dirtyOverlaps(prec) }
		for s := 0; s < len(order); {
			head := nodes[order[s]].at
			t := s + 1
			for t < len(order) {
				at := nodes[order[t]].at
				if at.Col != head.Col || at.Row != head.Row+(t-s) {
					break
				}
				t++
			}
			seg := ref.Range{Head: head, Tail: ref.Ref{Col: head.Col, Row: head.Row + (t - s - 1)}}
			base := s
			bp.DirectPrecedentsEach(seg, skipClean, func(dep ref.Ref, prec ref.Range) bool {
				cur = order[base+(dep.Row-head.Row)]
				link(prec)
				return true
			})
			s = t
		}
		return
	}
	for i := range nodes {
		n := &nodes[i]
		if n.c.ast == nil {
			continue // dirty value cell: no precedents, levels at 0
		}
		cur = int32(i)
		if hasDP {
			dp.DirectPrecedents(ref.CellRange(n.at), link)
		} else {
			for _, r := range formula.Refs(n.c.ast) {
				link(r.At)
			}
		}
	}
}

// buildColsFromOrder populates the per-column dirty-position index straight
// from the linker's position-sorted order: one pass, and every per-column
// list comes out row-sorted for free — the batched linker pays for the sort
// once and both consumers (dirtyOverlaps here, searchLarge for big windows)
// reuse it.
func (sch *schedule) buildColsFromOrder() {
	if sch.colsomeN != 0 {
		return
	}
	for c, list := range sch.cols {
		sch.cols[c] = list[:0]
	}
	for _, i := range sch.order {
		at := sch.nodes[i].at
		sch.cols[at.Col] = append(sch.cols[at.Col], uint64(at.Row)<<32|uint64(uint32(i)))
	}
	sch.colsomeN = len(sch.nodes)
}

// dirtyOverlaps reports whether any dirty cell lies inside p — the linker's
// edge pre-filter. One binary search per overlapping populated column.
func (sch *schedule) dirtyOverlaps(p ref.Range) bool {
	overlap := func(list []uint64) bool {
		lo, _ := slices.BinarySearch(list, uint64(p.Head.Row)<<32)
		return lo < len(list) && int(list[lo]>>32) <= p.Tail.Row
	}
	if p.Cols() > len(sch.cols) {
		for c, list := range sch.cols {
			if c >= p.Head.Col && c <= p.Tail.Col && overlap(list) {
				return true
			}
		}
		return false
	}
	for c := p.Head.Col; c <= p.Tail.Col; c++ {
		if list, ok := sch.cols[c]; ok && overlap(list) {
			return true
		}
	}
	return false
}

// searchLarge finds the dirty cells inside a large precedent range through
// the per-column index, building it on first use. Per populated column the
// query is one binary search plus a walk of the overlapping rows.
func (sch *schedule) searchLarge(p ref.Range, hit func(int32)) {
	if sch.colsomeN == 0 {
		for c, list := range sch.cols {
			sch.cols[c] = list[:0]
		}
		for i := range sch.nodes {
			at := sch.nodes[i].at
			sch.cols[at.Col] = append(sch.cols[at.Col], uint64(at.Row)<<32|uint64(uint32(i)))
		}
		for _, list := range sch.cols {
			slices.Sort(list) // row-major: row is the high word
		}
		sch.colsomeN = len(sch.nodes)
	}
	scan := func(list []uint64) {
		lo, _ := slices.BinarySearch(list, uint64(p.Head.Row)<<32)
		for _, packed := range list[lo:] {
			if int(packed>>32) > p.Tail.Row {
				return
			}
			hit(int32(uint32(packed)))
		}
	}
	if p.Cols() > len(sch.cols) {
		// Wider than the populated column set: walk the index instead.
		for c, list := range sch.cols {
			if c >= p.Head.Col && c <= p.Tail.Col {
				scan(list)
			}
		}
		return
	}
	for c := p.Head.Col; c <= p.Tail.Col; c++ {
		if list, ok := sch.cols[c]; ok {
			scan(list)
		}
	}
}

// runLevel evaluates one level's cells. Levels wide enough to hold a
// pattern run are first partitioned by planLevel (runs.go): detected runs
// drain as vectorized sweeps and only the leftover singles go through
// per-cell evaluation. Wide single sets fan out through the injected
// LevelRunner (a serving layer's shared pool) or, when none is configured, a
// per-level bounded goroutine fan-out; narrow ones run inline. Each cell's
// value and clean flag are written by exactly one goroutine, and the
// runner's completion barrier publishes them before any dependent
// (necessarily in a later level) can read them.
func (e *Engine) runLevel(sch *schedule, level []int32, run LevelRunner) {
	nodes := sch.nodes
	if e.patternRuns && len(level) >= minPatternRun {
		runs, singles, cached := sch.replayPlan(level)
		if !cached {
			runs, singles = e.planLevel(nodes, level)
			sch.recordPlan(level, runs, singles)
		}
		if len(runs) > 0 {
			mPatternRuns.Add(uint64(len(runs)))
			mPatternRunCells.Add(uint64(len(level) - len(singles)))
			e.drainRuns(nodes, runs, run)
			e.runCells(nodes, singles, run)
			return
		}
	}
	e.runCells(nodes, level, run)
}

// runCells evaluates a set of independent level cells per-cell (see
// runLevel for the fan-out policy).
func (e *Engine) runCells(nodes []schedNode, level []int32, run LevelRunner) {
	if len(level) < minParallelLevel || e.parallelism <= 1 {
		for _, i := range level {
			e.evalLevelCell(&nodes[i])
		}
		return
	}
	if run != nil {
		run(len(level), func(i int) { e.evalLevelCell(&nodes[level[i]]) })
		return
	}
	e.spawnLevel(nodes, level)
}

// spawnLevel is the default runner for standalone engines (no serving layer
// to own a pool): a per-level bounded goroutine fan-out pulling shard-sized
// blocks off a shared cursor.
func (e *Engine) spawnLevel(nodes []schedNode, level []int32) {
	workers := e.parallelism
	if workers > len(level)/levelGrab {
		workers = max(len(level)/levelGrab, 2)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := cursor.Add(levelGrab) - levelGrab
				if lo >= int64(len(level)) {
					return
				}
				hi := min(lo+levelGrab, int64(len(level)))
				for _, i := range level[lo:hi] {
					e.evalLevelCell(&nodes[i])
				}
			}
		}()
	}
	wg.Wait()
}

// evalLevelCell evaluates one levelled cell against the engine's read-only
// value resolver. Every precedent is settled by construction (that is what
// the level barrier guarantees), so unlike the serial evalResolver this
// never recurses, never consults cycle flags, and never mutates shared
// state — the writes are to the cell it owns (value, dirty, and the lazily
// compiled program, cached on first drain). Compiled formulas run on the
// bytecode VM — safe here because valueResolver is pure, and bit-identical
// to the walker by the VM's equivalence contract (see formula/compile.go);
// the walker remains the fallback for uncompilable expressions. The dirty
// flag flips after the value write; the level barrier publishes both
// together.
func (e *Engine) evalLevelCell(n *schedNode) {
	if n.c.ast != nil {
		if p := e.prog(n.at, n.c); p != nil {
			n.c.value = p.EvalAt(valueResolver{e}, n.at)
		} else {
			n.c.value = formula.Eval(n.c.ast, valueResolver{e})
		}
	}
	n.c.dirty = false
}

// resolveCycles handles a stalled schedule: the strongly connected
// components of the still-dirty subgraph that contain a cycle (size > 1, or
// a direct self-reference) are exactly the cells the serial resolver would
// poison, and every one of their members is published as #CYCLE! without
// evaluation. Dependents released by the poisoned cells are returned as the
// next frontier; they evaluate normally and see the error values, so
// propagation (and IFERROR-style rescue) downstream of a cycle matches the
// serial path. drained is advanced by the number of cells resolved.
// deferDirty skips the per-cell dirty-map deletes for bulk drains, which
// reconcile the map wholesale on exit (see DrainLevels).
func (e *Engine) resolveCycles(sch *schedule, drained *int, deferDirty bool) []int32 {
	nodes := sch.nodes
	stalled := func(i int32) bool { return nodes[i].c.dirty && !nodes[i].cyclic }

	// Tarjan over the stalled subgraph. Iterative: a chain stuck behind a
	// cycle can be as deep as the dirty set itself.
	const unvisited = -1
	idx := make([]int32, len(nodes))
	low := make([]int32, len(nodes))
	onStack := make([]bool, len(nodes))
	for i := range idx {
		idx[i] = unvisited
	}
	var clock int32
	var stack, members []int32
	type frame struct {
		node int32
		edge int
	}
	var cyclic []int32
	var frames []frame
	for root := range nodes {
		if idx[root] != unvisited || !stalled(int32(root)) {
			continue
		}
		frames = append(frames[:0], frame{node: int32(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.node
			if f.edge == 0 {
				idx[v], low[v] = clock, clock
				clock++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.edge < len(nodes[v].outs) {
				w := nodes[v].outs[f.edge]
				f.edge++
				if !stalled(w) {
					continue
				}
				if idx[w] == unvisited {
					frames = append(frames, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] {
					low[v] = min(low[v], idx[w])
				}
			}
			if advanced {
				continue
			}
			if low[v] == idx[v] {
				members = members[:0]
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == v {
						break
					}
				}
				if len(members) > 1 || nodes[v].self {
					for _, w := range members {
						nodes[w].cyclic = true
						cyclic = append(cyclic, w)
					}
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				low[p] = min(low[p], low[v])
			}
		}
	}

	// Publish the poisoned cells and release their dependents.
	mCycleCells.Add(uint64(len(cyclic)))
	var freed []int32
	for _, i := range cyclic {
		n := &nodes[i]
		if n.c.ast != nil {
			n.c.value = formula.Errorf("#CYCLE!")
		}
		n.c.dirty = false
		if !deferDirty {
			delete(e.dirty, n.at)
		}
		*drained++
	}
	for _, i := range cyclic {
		for _, j := range nodes[i].outs {
			nodes[j].nprec--
			if nodes[j].nprec == 0 && !nodes[j].self && !nodes[j].cyclic {
				freed = append(freed, j)
			}
		}
	}
	return freed
}
