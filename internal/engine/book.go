package engine

import (
	"fmt"
	"sort"

	"taco/internal/core"
	"taco/internal/workload"
)

// Book is a multi-sheet workbook: each sheet runs its own engine with its
// own TACO formula graph, matching the paper's single-sheet graph scope
// (cross-sheet references are out of scope, as in the evaluation).
type Book struct {
	sheets map[string]*Engine
	order  []string
}

// NewBook returns an empty workbook.
func NewBook() *Book {
	return &Book{sheets: make(map[string]*Engine)}
}

// AddSheet creates an empty sheet backed by a fresh TACO graph. It returns
// an error if the name is taken.
func (b *Book) AddSheet(name string) (*Engine, error) {
	if _, dup := b.sheets[name]; dup {
		return nil, fmt.Errorf("engine: duplicate sheet %q", name)
	}
	e := New(nil)
	b.sheets[name] = e
	b.order = append(b.order, name)
	return e, nil
}

// Sheet returns the engine for a sheet name, or nil when absent.
func (b *Book) Sheet(name string) *Engine { return b.sheets[name] }

// Names returns the sheet names in insertion order.
func (b *Book) Names() []string { return append([]string(nil), b.order...) }

// NumSheets returns the number of sheets.
func (b *Book) NumSheets() int { return len(b.sheets) }

// LoadBook builds a workbook from parsed sheets (e.g. an xlsx file), each
// with its own TACO graph, and evaluates all formulae.
func LoadBook(sheets []*workload.Sheet) (*Book, error) {
	b := NewBook()
	for i, s := range sheets {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("Sheet%d", i+1)
		}
		if _, dup := b.sheets[name]; dup {
			return nil, fmt.Errorf("engine: duplicate sheet %q", name)
		}
		e, err := Load(s, nil)
		if err != nil {
			return nil, fmt.Errorf("engine: sheet %q: %w", name, err)
		}
		b.sheets[name] = e
		b.order = append(b.order, name)
	}
	return b, nil
}

// Stats returns per-sheet graph statistics keyed by sheet name. Only sheets
// backed by a TACO graph report; the map is sorted-key iterable via Names.
func (b *Book) Stats() map[string]core.Stats {
	out := make(map[string]core.Stats, len(b.sheets))
	names := b.Names()
	sort.Strings(names)
	for _, name := range names {
		e := b.sheets[name]
		if tg, ok := e.graph.(TACO); ok {
			out[name] = tg.G.Stats()
		}
	}
	return out
}
