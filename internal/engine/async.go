package engine

import (
	"sync"

	"taco/internal/formula"
	"taco/internal/ref"
)

// AsyncEngine implements the asynchronous execution model of DATASPREAD
// (Sec. I / VI-A): an update marks the transitive dependents dirty and
// returns control immediately — the latency users feel is exactly the
// formula-graph traversal TACO accelerates — while a background worker
// recalculates the dirty cells. Reads report whether the value is still
// pending so a UI can grey those cells out.
type AsyncEngine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	eng    *Engine
	dirty  int // cells marked but not yet recalculated
	closed bool
	wake   chan struct{}
	done   chan struct{}
}

// NewAsync wraps an engine with a background recalculation worker. Callers
// must not use the wrapped engine directly afterwards. Close releases the
// worker.
func NewAsync(e *Engine) *AsyncEngine {
	a := &AsyncEngine{
		eng:  e,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.mu)
	go a.worker()
	return a
}

// asyncDrainChunk bounds the evaluations per mutex hold while the worker
// drains, so Peek/Get/Dependents interleave with a large recalculation
// instead of stalling behind it. The engine's resumable wavefront schedule
// survives across holds, so chunking costs no re-levelling.
const asyncDrainChunk = 256

// worker drains dirty cells until Close, releasing the mutex between
// bounded chunks so readers interleave mid-drain.
func (a *AsyncEngine) worker() {
	defer close(a.done)
	for range a.wake {
		for {
			a.mu.Lock()
			a.eng.RecalculateN(asyncDrainChunk)
			done := a.eng.Pending() == 0
			if done {
				a.dirty = 0
				a.cond.Broadcast()
			}
			a.mu.Unlock()
			if done {
				break
			}
		}
	}
}

// Close stops the background worker after draining pending work.
func (a *AsyncEngine) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.wake)
	}
	a.mu.Unlock()
	<-a.done
}

// signal wakes the worker. It holds the lock so it cannot race with Close's
// channel close.
func (a *AsyncEngine) signal() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	select {
	case a.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// Set writes a pure value and returns the dirty set. This is the
// interactive critical path: it performs only the dependency-graph
// traversal; evaluation happens in the background.
func (a *AsyncEngine) Set(at ref.Ref, v formula.Value) []ref.Range {
	a.mu.Lock()
	dirty := a.eng.SetValue(at, v)
	a.dirty += cellCount(dirty)
	a.mu.Unlock()
	a.signal()
	return dirty
}

// SetFormula writes a formula and returns the dirty set.
func (a *AsyncEngine) SetFormula(at ref.Ref, src string) ([]ref.Range, error) {
	a.mu.Lock()
	dirty, err := a.eng.SetFormula(at, src)
	if err == nil {
		a.dirty += cellCount(dirty) + 1 // the new formula itself is dirty
	}
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	a.signal()
	return dirty, nil
}

// Peek returns the current value of a cell and whether it is clean. A
// pending (dirty) cell returns its stale value with clean=false — the
// greyed-out state the asynchronous UI shows.
func (a *AsyncEngine) Peek(at ref.Ref) (v formula.Value, clean bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.eng.cells[at]
	if !ok {
		return formula.Empty(), true
	}
	return c.value, !c.dirty
}

// Get blocks until the cell is clean and returns its value.
func (a *AsyncEngine) Get(at ref.Ref) formula.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		c, ok := a.eng.cells[at]
		if !ok {
			return formula.Empty()
		}
		if !c.dirty {
			return c.value
		}
		a.cond.Wait()
	}
}

// Flush blocks until every dirty cell has been recalculated.
func (a *AsyncEngine) Flush() {
	a.signal()
	a.mu.Lock()
	for a.dirty > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// Dependents exposes the graph query under the engine lock.
func (a *AsyncEngine) Dependents(r ref.Range) []ref.Range {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.eng.Dependents(r)
}

func cellCount(rs []ref.Range) int {
	n := 0
	for _, r := range rs {
		n += r.Size()
	}
	return n
}
