package engine

import (
	"fmt"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// buildTieredFanout populates a two-tier sheet wide enough to engage the
// wavefront path: A1/A2 inputs, a 400-cell middle tier, and a 60-cell
// aggregation tier over it.
func buildTieredFanout(t testing.TB, e *Engine) {
	t.Helper()
	e.SetValue(ref.MustCell("A1"), formula.Num(3))
	e.SetValue(ref.MustCell("A2"), formula.Num(5))
	for i := 1; i <= 400; i++ {
		mustFormula(t, e, fmt.Sprintf("C%d", i), fmt.Sprintf("$A$1*%d+$A$2", i))
	}
	for i := 1; i <= 60; i++ {
		mustFormula(t, e, fmt.Sprintf("E%d", i), fmt.Sprintf("SUM(C%d:C%d)+%d", i, i+300, i))
	}
	e.RecalculateAll()
}

// TestScheduleResumesAcrossBudgets pins the resumable-schedule contract:
// a budgeted drain levels the dirty set exactly once, and every subsequent
// RecalculateN chunk consumes the remaining levels from the cached schedule
// instead of re-running Kahn — while converging to the serial fixpoint.
func TestScheduleResumesAcrossBudgets(t *testing.T) {
	serial := New(nil)
	parallel := New(nil)
	parallel.SetRecalcParallelism(4)
	for _, e := range []*Engine{serial, parallel} {
		buildTieredFanout(t, e)
		e.SetValue(ref.MustCell("A1"), formula.Num(11))
	}
	serial.RecalculateAll()

	builds0 := parallel.RecalcStats().ScheduleBuilds
	dirty0 := parallel.Pending()
	if parallel.RecalculateN(37) == 0 {
		t.Fatal("first chunk made no progress")
	}
	st := parallel.RecalcStats()
	if st.ScheduleBuilds != builds0+1 {
		t.Fatalf("first chunk built %d schedules, want 1", st.ScheduleBuilds-builds0)
	}
	if st.Scheduled != dirty0 {
		t.Fatalf("live schedule covers %d cells, want the %d dirtied", st.Scheduled, dirty0)
	}
	for i := 0; parallel.Pending() > 0; i++ {
		if parallel.RecalculateN(37) == 0 {
			t.Fatalf("drain stalled with %d pending", parallel.Pending())
		}
		if i > 1000 {
			t.Fatal("drain did not converge")
		}
	}
	if got := parallel.RecalcStats().ScheduleBuilds; got != builds0+1 {
		t.Fatalf("budgeted drain built %d schedules, want exactly 1 (resumed otherwise)", got-builds0)
	}
	if st := parallel.RecalcStats(); st.Scheduled != 0 {
		t.Fatalf("exhausted drain left a live schedule: %+v", st)
	}
	enginesEqual(t, serial, parallel)
}

// TestEditMidDrainInvalidatesSchedule interleaves an edit between budgeted
// chunks: the mutation starts a new dirty generation, the cached schedule is
// discarded and rebuilt over the remaining dirty set, and the drain still
// converges to the same fixpoint as a serial engine that applied the same
// edits (recalculation is confluent on acyclic sheets — the interleaving
// cannot change the result, only the schedule shapes).
func TestEditMidDrainInvalidatesSchedule(t *testing.T) {
	serial := New(nil)
	parallel := New(nil)
	parallel.SetRecalcParallelism(4)
	for _, e := range []*Engine{serial, parallel} {
		buildTieredFanout(t, e)
	}
	// Serial reference: both edits applied, fully drained.
	serial.SetValue(ref.MustCell("A1"), formula.Num(21))
	serial.SetValue(ref.MustCell("A2"), formula.Num(-4))
	serial.RecalculateAll()

	parallel.SetValue(ref.MustCell("A1"), formula.Num(21))
	builds0 := parallel.RecalcStats().ScheduleBuilds
	if parallel.RecalculateN(50) == 0 {
		t.Fatal("first chunk made no progress")
	}
	// The edit lands mid-drain: part of A1's dirty set is still scheduled.
	parallel.SetValue(ref.MustCell("A2"), formula.Num(-4))
	if st := parallel.RecalcStats(); st.Scheduled != 0 {
		t.Fatalf("edit left a stale schedule live: %+v", st)
	}
	for i := 0; parallel.Pending() > 0; i++ {
		if parallel.RecalculateN(50) == 0 {
			t.Fatalf("drain stalled with %d pending", parallel.Pending())
		}
		if i > 1000 {
			t.Fatal("drain did not converge")
		}
	}
	if got := parallel.RecalcStats().ScheduleBuilds; got < builds0+2 {
		t.Fatalf("schedule builds %d, want >= 2 (one per dirty generation)", got-builds0)
	}
	enginesEqual(t, serial, parallel)
}

// TestDrainLevelsCustomRunner drives DrainLevels through an injected
// LevelRunner (the seam the serving layer's shared pool plugs into): the
// runner sees only wide levels, may execute a level's cells in any order,
// and the results stay byte-identical to serial.
func TestDrainLevelsCustomRunner(t *testing.T) {
	serial := New(nil)
	parallel := New(nil)
	parallel.SetRecalcParallelism(4)
	runs := 0
	parallel.SetLevelRunner(func(n int, eval func(int)) {
		runs++
		if n < minParallelLevel {
			t.Errorf("runner invoked for a %d-wide level (inline threshold %d)", n, minParallelLevel)
		}
		for i := n - 1; i >= 0; i-- { // reversed: order within a level is free
			eval(i)
		}
	})
	for _, e := range []*Engine{serial, parallel} {
		buildTieredFanout(t, e)
		e.SetValue(ref.MustCell("A1"), formula.Num(7))
	}
	serial.RecalculateAll()
	if parallel.DrainLevels(1<<30, nil) == 0 {
		t.Fatal("DrainLevels drained nothing")
	}
	if runs == 0 {
		t.Fatal("injected runner never invoked")
	}
	enginesEqual(t, serial, parallel)
}

// TestRecalcStatsQuiescent: a settled engine reports empty scheduler state.
func TestRecalcStatsQuiescent(t *testing.T) {
	e := New(nil)
	e.SetRecalcParallelism(4)
	buildTieredFanout(t, e)
	st := e.RecalcStats()
	if st.Pending != 0 || st.Scheduled != 0 || st.FrontierWidth != 0 {
		t.Fatalf("quiescent stats = %+v", st)
	}
	if st.LevelsDrained == 0 || st.ScheduleBuilds == 0 {
		t.Fatalf("load drain left no scheduler trace: %+v", st)
	}
}
