package engine

import "taco/internal/telemetry"

// Process-wide recalculation instruments. The per-engine counters in
// RecalcStats describe one session; these aggregate across every engine in
// the process so /metrics shows the scheduler's overall behaviour — how
// much work drains, how often levelling runs versus resumes, and whether
// edits are invalidating schedules mid-drain. Counts are added in batches
// at drain exit points (never per cell), so the evaluation hot loop carries
// no atomic traffic.
var (
	mCellsEvaluated = telemetry.NewCounter("taco_engine_cells_evaluated_total",
		"Dirty cells evaluated (or published as #CYCLE!) by recalculation.")
	mLevelsDrained = telemetry.NewCounter("taco_sched_levels_drained_total",
		"Wavefront levels executed by the resumable scheduler.")
	mSchedBuilds = telemetry.NewCounter("taco_sched_builds_total",
		"Schedule constructions (Kahn levelling runs).")
	mSchedResumes = telemetry.NewCounter("taco_sched_resumes_total",
		"Budgeted drains that resumed a cached schedule instead of re-levelling.")
	mSchedInvalidations = telemetry.NewCounter("taco_sched_invalidations_total",
		"Cached schedules invalidated by a dirty-set mutation mid-drain.")
	mSchedWarmReuses = telemetry.NewCounter("taco_sched_warm_reuses_total",
		"Completed schedules re-armed for an identical edit epoch (same roots, unchanged structure).")
	mPatternRuns = telemetry.NewCounter("taco_sched_pattern_runs_total",
		"Pattern runs drained as vectorized sweeps (see runs.go).")
	mPatternRunCells = telemetry.NewCounter("taco_sched_pattern_run_cells_total",
		"Cells evaluated inside vectorized pattern-run sweeps.")
	mCycleCells = telemetry.NewCounter("taco_sched_cycle_cells_total",
		"Cells published as #CYCLE! by the cycle resolver.")
)
