package engine

import (
	"math"
	"slices"
	"sync"

	"taco/internal/formula"
	"taco/internal/ref"
)

// colStore is the engine's column-sliced cell storage: per column, a
// row-sorted slab of cell records. It exploits the tabular regularity the
// TACO paper builds on — spreadsheet ranges are column-aligned rectangles,
// so a range read becomes a handful of contiguous per-column scans (one
// binary search each) instead of rows×cols map probes. The engine's flat
// cell map is retained alongside it as a secondary index for O(1) point
// lookups; every write goes through both (see Engine.setCell).
type colStore struct {
	cols map[int]*column
}

// column is one row-ordered slab: rows sorted ascending, cells parallel.
type column struct {
	rows  []int
	cells []*cell
}

// columnPool and colMapPool recycle the store's containers across the
// spill/restore churn of a capped multi-tenant host: a restored session's
// column slabs come back from whatever engine was recycled last, so the
// eviction round-trip stops allocating once the pools warm up. Pooled
// columns keep their slab capacity (that is the point) but are emptied —
// and their cell pointers cleared — before pooling.
var (
	columnPool = sync.Pool{New: func() any { return &column{} }}
	colMapPool = sync.Pool{New: func() any { return make(map[int]*column, 32) }}
)

func newColStore() colStore {
	return colStore{cols: colMapPool.Get().(map[int]*column)}
}

// recycle empties the store and returns its columns and column map to the
// package pools. Only for an owner discarding the whole engine (see
// Engine.Recycle); the store is unusable afterwards.
func (s *colStore) recycle() {
	for _, col := range s.cols {
		recycleColumn(col)
	}
	clear(s.cols)
	colMapPool.Put(s.cols)
	s.cols = nil
}

func recycleColumn(col *column) {
	clear(col.cells) // drop cell-record references before pooling
	col.rows = col.rows[:0]
	col.cells = col.cells[:0]
	columnPool.Put(col)
}

// set installs (or replaces) the record at the given position. Loaders feed
// cells in column-major order, so the append fast path handles bulk fills
// without a binary search per cell.
func (s *colStore) set(at ref.Ref, c *cell) {
	col := s.cols[at.Col]
	if col == nil {
		col = columnPool.Get().(*column)
		s.cols[at.Col] = col
	}
	if n := len(col.rows); n == 0 || at.Row > col.rows[n-1] {
		col.rows = append(col.rows, at.Row)
		col.cells = append(col.cells, c)
		return
	}
	i, found := slices.BinarySearch(col.rows, at.Row)
	if found {
		col.cells[i] = c
		return
	}
	col.rows = slices.Insert(col.rows, i, at.Row)
	col.cells = slices.Insert(col.cells, i, c)
}

// delete removes the record at the given position, if present.
func (s *colStore) delete(at ref.Ref) {
	col := s.cols[at.Col]
	if col == nil {
		return
	}
	i, found := slices.BinarySearch(col.rows, at.Row)
	if !found {
		return
	}
	col.rows = slices.Delete(col.rows, i, i+1)
	col.cells = slices.Delete(col.cells, i, i+1)
	if len(col.rows) == 0 {
		delete(s.cols, at.Col)
		recycleColumn(col)
	}
}

// count returns the number of stored cells (used by invariant checks; the
// engine's cell map is the authoritative O(1) counter).
func (s *colStore) count() int {
	n := 0
	for _, col := range s.cols {
		n += len(col.rows)
	}
	return n
}

// window returns the slab index range [lo, hi) covering rows r1..r2.
func (c *column) window(r1, r2 int) (lo, hi int) {
	lo, _ = slices.BinarySearch(c.rows, r1)
	hi, _ = slices.BinarySearch(c.rows, r2+1)
	return lo, hi
}

// scanRange visits every populated cell of rng in row-major order — the
// order the per-cell evaluation path uses, so bulk and per-cell consumers
// observe values (and in particular a range's first error) identically.
// Unpopulated cells are skipped; that is the point. Returns false if fn
// stopped the scan early.
//
// A single-column range (the common aggregation shape) is one binary search
// plus a linear walk. Multi-column ranges merge the per-column windows with
// a small binary heap keyed on (row, col) — O(cells · log cols), no
// per-cell map probes.
func (s *colStore) scanRange(rng ref.Range, fn func(at ref.Ref, c *cell) bool) bool {
	if rng.Head.Col == rng.Tail.Col {
		col := s.cols[rng.Head.Col]
		if col == nil {
			return true
		}
		lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
		for i := lo; i < hi; i++ {
			if !fn(ref.Ref{Col: rng.Head.Col, Row: col.rows[i]}, col.cells[i]) {
				return false
			}
		}
		return true
	}
	type cursor struct {
		col   int
		rows  []int
		cells []*cell
		i     int
	}
	var curs []cursor
	for c := rng.Head.Col; c <= rng.Tail.Col; c++ {
		col := s.cols[c]
		if col == nil {
			continue // ranges crossing empty columns cost one map probe each
		}
		lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
		if lo == hi {
			continue
		}
		curs = append(curs, cursor{col: c, rows: col.rows[lo:hi], cells: col.cells[lo:hi]})
	}
	if len(curs) == 0 {
		return true
	}
	// Binary min-heap of cursor indices, ordered by (current row, column).
	less := func(a, b int) bool {
		ca, cb := &curs[a], &curs[b]
		if ca.rows[ca.i] != cb.rows[cb.i] {
			return ca.rows[ca.i] < cb.rows[cb.i]
		}
		return ca.col < cb.col
	}
	h := make([]int, len(curs))
	for i := range h {
		h[i] = i
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(h) > 0 {
		c := &curs[h[0]]
		if !fn(ref.Ref{Col: c.col, Row: c.rows[c.i]}, c.cells[c.i]) {
			return false
		}
		c.i++
		if c.i == len(c.rows) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			down(0)
		}
	}
	return true
}

// foldRange is the batched numeric fold behind formula.RangeFolder: one
// tight pass over a single-column window accumulating everything the plain
// aggregates need (sum, counts, extrema, first error) without surfacing a
// callback per cell. Dense slab runs — four consecutive clean numeric cells,
// the shape a populated data column decays to — take a blocked fast path
// that pays one branch per four cells; the accumulation itself stays a
// sequential left-to-right chain (Go never reassociates float expressions),
// so the sum is bit-identical to per-cell iteration. dirtyVal, when
// non-nil, resolves a dirty cell before its value is folded (the eval
// resolver evaluates it; nil folds the stale value, matching the
// side-effect-free read path). Multi-column rectangles report handled=false:
// their row-major order interleaves columns, which is the heap-merge scan's
// job.
func (s *colStore) foldRange(rng ref.Range, dirtyVal func(ref.Ref, *cell) formula.Value) (formula.NumericFold, bool) {
	if rng.Head.Col != rng.Tail.Col {
		return formula.NumericFold{}, false
	}
	f := formula.NumericFold{Min: math.Inf(1), Max: math.Inf(-1)}
	col := s.cols[rng.Head.Col]
	if col == nil {
		return f, true
	}
	lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
	rows, cells := col.rows[lo:hi], col.cells[lo:hi]
	slow := func(i int) {
		c := cells[i]
		v := c.value
		if c.dirty && dirtyVal != nil {
			v = dirtyVal(ref.Ref{Col: rng.Head.Col, Row: rows[i]}, c)
		}
		switch v.Kind {
		case formula.KindNumber:
			f.Sum += v.Num
			f.Count++
			f.NonEmpty++
			if v.Num < f.Min {
				f.Min = v.Num
			}
			if v.Num > f.Max {
				f.Max = v.Num
			}
		case formula.KindEmpty:
			// A stored blank counts nowhere, like an unpopulated cell.
		case formula.KindError:
			f.NonEmpty++
			if !f.Err.IsError() {
				f.Err = v
			}
		default: // string, bool: non-blank, non-numeric
			f.NonEmpty++
		}
	}
	i, n := 0, len(cells)
	for ; i+4 <= n; i += 4 {
		c0, c1, c2, c3 := cells[i], cells[i+1], cells[i+2], cells[i+3]
		if !(c0.dirty || c1.dirty || c2.dirty || c3.dirty) &&
			c0.value.Kind == formula.KindNumber && c1.value.Kind == formula.KindNumber &&
			c2.value.Kind == formula.KindNumber && c3.value.Kind == formula.KindNumber {
			v0, v1, v2, v3 := c0.value.Num, c1.value.Num, c2.value.Num, c3.value.Num
			f.Sum = f.Sum + v0 + v1 + v2 + v3
			f.Count += 4
			f.NonEmpty += 4
			if v0 < f.Min {
				f.Min = v0
			}
			if v1 < f.Min {
				f.Min = v1
			}
			if v2 < f.Min {
				f.Min = v2
			}
			if v3 < f.Min {
				f.Min = v3
			}
			if v0 > f.Max {
				f.Max = v0
			}
			if v1 > f.Max {
				f.Max = v1
			}
			if v2 > f.Max {
				f.Max = v2
			}
			if v3 > f.Max {
				f.Max = v3
			}
			continue
		}
		slow(i)
		slow(i + 1)
		slow(i + 2)
		slow(i + 3)
	}
	for ; i < n; i++ {
		slow(i)
	}
	return f, true
}

// eachColumnMajor visits every stored cell in column-major order — the
// deterministic order snapshots are written in. Column keys are sorted per
// call; the slab rows are already sorted.
func (s *colStore) eachColumnMajor(fn func(at ref.Ref, c *cell) error) error {
	cols := make([]int, 0, len(s.cols))
	for c := range s.cols {
		cols = append(cols, c)
	}
	slices.Sort(cols)
	for _, cidx := range cols {
		col := s.cols[cidx]
		for i, row := range col.rows {
			if err := fn(ref.Ref{Col: cidx, Row: row}, col.cells[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// CellStoreStats describes the columnar store's shape — the stats seam the
// serving layer surfaces next to the graph's compression stats.
type CellStoreStats struct {
	Columns      int // populated columns
	Cells        int // stored cells
	LongestSlab  int // rows in the fullest column
	SlabCapacity int // total slab capacity (rows), incl. growth slack
}

// stats computes the store's shape summary.
func (s *colStore) stats() CellStoreStats {
	st := CellStoreStats{Columns: len(s.cols)}
	for _, col := range s.cols {
		st.Cells += len(col.rows)
		st.SlabCapacity += cap(col.rows)
		if len(col.rows) > st.LongestSlab {
			st.LongestSlab = len(col.rows)
		}
	}
	return st
}
