package engine

import (
	"math"
	"slices"
	"sync"

	"taco/internal/formula"
	"taco/internal/ref"
)

// colStore is the engine's column-sliced cell storage: per column, a
// row-sorted slab of cell records. It exploits the tabular regularity the
// TACO paper builds on — spreadsheet ranges are column-aligned rectangles,
// so a range read becomes a handful of contiguous per-column scans (one
// binary search each) instead of rows×cols map probes. The engine's flat
// cell map is retained alongside it as a secondary index for O(1) point
// lookups; every write goes through both (see Engine.setCell).
type colStore struct {
	cols map[int]*column
}

// column is one row-ordered slab: rows sorted ascending, cells parallel.
type column struct {
	rows  []int
	cells []*cell
}

// columnPool and colMapPool recycle the store's containers across the
// spill/restore churn of a capped multi-tenant host: a restored session's
// column slabs come back from whatever engine was recycled last, so the
// eviction round-trip stops allocating once the pools warm up. Pooled
// columns keep their slab capacity (that is the point) but are emptied —
// and their cell pointers cleared — before pooling.
var (
	columnPool = sync.Pool{New: func() any { return &column{} }}
	colMapPool = sync.Pool{New: func() any { return make(map[int]*column, 32) }}
)

func newColStore() colStore {
	return colStore{cols: colMapPool.Get().(map[int]*column)}
}

// recycle empties the store and returns its columns and column map to the
// package pools. Only for an owner discarding the whole engine (see
// Engine.Recycle); the store is unusable afterwards.
func (s *colStore) recycle() {
	for _, col := range s.cols {
		recycleColumn(col)
	}
	clear(s.cols)
	colMapPool.Put(s.cols)
	s.cols = nil
}

func recycleColumn(col *column) {
	clear(col.cells) // drop cell-record references before pooling
	col.rows = col.rows[:0]
	col.cells = col.cells[:0]
	columnPool.Put(col)
}

// set installs (or replaces) the record at the given position. Loaders feed
// cells in column-major order, so the append fast path handles bulk fills
// without a binary search per cell.
func (s *colStore) set(at ref.Ref, c *cell) {
	col := s.cols[at.Col]
	if col == nil {
		col = columnPool.Get().(*column)
		s.cols[at.Col] = col
	}
	if n := len(col.rows); n == 0 || at.Row > col.rows[n-1] {
		col.rows = append(col.rows, at.Row)
		col.cells = append(col.cells, c)
		return
	}
	i, found := slices.BinarySearch(col.rows, at.Row)
	if found {
		col.cells[i] = c
		return
	}
	col.rows = slices.Insert(col.rows, i, at.Row)
	col.cells = slices.Insert(col.cells, i, c)
}

// delete removes the record at the given position, if present.
func (s *colStore) delete(at ref.Ref) {
	col := s.cols[at.Col]
	if col == nil {
		return
	}
	i, found := slices.BinarySearch(col.rows, at.Row)
	if !found {
		return
	}
	col.rows = slices.Delete(col.rows, i, i+1)
	col.cells = slices.Delete(col.cells, i, i+1)
	if len(col.rows) == 0 {
		delete(s.cols, at.Col)
		recycleColumn(col)
	}
}

// count returns the number of stored cells (used by invariant checks; the
// engine's cell map is the authoritative O(1) counter).
func (s *colStore) count() int {
	n := 0
	for _, col := range s.cols {
		n += len(col.rows)
	}
	return n
}

// window returns the slab index range [lo, hi) covering rows r1..r2.
func (c *column) window(r1, r2 int) (lo, hi int) {
	lo, _ = slices.BinarySearch(c.rows, r1)
	hi, _ = slices.BinarySearch(c.rows, r2+1)
	return lo, hi
}

// scanRange visits every populated cell of rng in row-major order — the
// order the per-cell evaluation path uses, so bulk and per-cell consumers
// observe values (and in particular a range's first error) identically.
// Unpopulated cells are skipped; that is the point. Returns false if fn
// stopped the scan early.
//
// A single-column range (the common aggregation shape) is one binary search
// plus a linear walk. Multi-column ranges merge the per-column windows with
// a small binary heap keyed on (row, col) — O(cells · log cols), no
// per-cell map probes.
func (s *colStore) scanRange(rng ref.Range, fn func(at ref.Ref, c *cell) bool) bool {
	if rng.Head.Col == rng.Tail.Col {
		col := s.cols[rng.Head.Col]
		if col == nil {
			return true
		}
		lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
		for i := lo; i < hi; i++ {
			if !fn(ref.Ref{Col: rng.Head.Col, Row: col.rows[i]}, col.cells[i]) {
				return false
			}
		}
		return true
	}
	type cursor struct {
		col   int
		rows  []int
		cells []*cell
		i     int
	}
	var curs []cursor
	for c := rng.Head.Col; c <= rng.Tail.Col; c++ {
		col := s.cols[c]
		if col == nil {
			continue // ranges crossing empty columns cost one map probe each
		}
		lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
		if lo == hi {
			continue
		}
		curs = append(curs, cursor{col: c, rows: col.rows[lo:hi], cells: col.cells[lo:hi]})
	}
	if len(curs) == 0 {
		return true
	}
	// Binary min-heap of cursor indices, ordered by (current row, column).
	less := func(a, b int) bool {
		ca, cb := &curs[a], &curs[b]
		if ca.rows[ca.i] != cb.rows[cb.i] {
			return ca.rows[ca.i] < cb.rows[cb.i]
		}
		return ca.col < cb.col
	}
	h := make([]int, len(curs))
	for i := range h {
		h[i] = i
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(h) > 0 {
		c := &curs[h[0]]
		if !fn(ref.Ref{Col: c.col, Row: c.rows[c.i]}, c.cells[c.i]) {
			return false
		}
		c.i++
		if c.i == len(c.rows) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			down(0)
		}
	}
	return true
}

// maxFoldCols bounds the column fan-in of the multi-column fold paths
// (foldRange rectangles, foldSumProduct): the cursor merge scans every
// column head per cell, so wider rectangles stay on the heap-merge
// streaming path, which is O(cells · log cols).
const maxFoldCols = 16

// foldAcc accumulates one cell into a NumericFold with the exact per-cell
// semantics of the streaming path: dirty cells resolve through dirtyVal
// when non-nil (the eval resolver evaluates them; nil folds the stale
// value, matching the side-effect-free read path).
type foldAcc struct {
	f        formula.NumericFold
	dirtyVal func(ref.Ref, *cell) formula.Value
}

func (a *foldAcc) add(at ref.Ref, c *cell) {
	v := c.value
	if c.dirty && a.dirtyVal != nil {
		v = a.dirtyVal(at, c)
	}
	switch v.Kind {
	case formula.KindNumber:
		a.f.Sum += v.Num
		a.f.Count++
		a.f.NonEmpty++
		if v.Num < a.f.Min {
			a.f.Min = v.Num
		}
		if v.Num > a.f.Max {
			a.f.Max = v.Num
		}
	case formula.KindEmpty:
		// A stored blank counts nowhere, like an unpopulated cell.
	case formula.KindError:
		a.f.NonEmpty++
		if !a.f.Err.IsError() {
			a.f.Err = v
		}
	default: // string, bool: non-blank, non-numeric
		a.f.NonEmpty++
	}
}

// foldRange is the batched numeric fold behind formula.RangeFolder: one
// tight pass over the range's slab windows accumulating everything the plain
// aggregates need (sum, counts, extrema, first error) without surfacing a
// callback per cell. Single columns — the common aggregation shape — walk
// one window; dense slab runs of four consecutive clean numeric cells take a
// blocked fast path that pays one branch per four cells. Multi-column
// rectangles up to maxFoldCols merge their per-column windows with a
// min-scan over the cursor heads, visiting cells in exactly the row-major
// order the streaming scan uses; wider rectangles report handled=false. On
// every path the accumulation stays a sequential left-to-right chain (Go
// never reassociates float expressions), so the sum is bit-identical to
// per-cell iteration.
func (s *colStore) foldRange(rng ref.Range, dirtyVal func(ref.Ref, *cell) formula.Value) (formula.NumericFold, bool) {
	if rng.Head.Col != rng.Tail.Col {
		return s.foldRect(rng, dirtyVal)
	}
	acc := foldAcc{f: formula.NumericFold{Min: math.Inf(1), Max: math.Inf(-1)}, dirtyVal: dirtyVal}
	col := s.cols[rng.Head.Col]
	if col == nil {
		return acc.f, true
	}
	lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
	rows, cells := col.rows[lo:hi], col.cells[lo:hi]
	f := &acc.f
	slow := func(i int) {
		acc.add(ref.Ref{Col: rng.Head.Col, Row: rows[i]}, cells[i])
	}
	i, n := 0, len(cells)
	for ; i+4 <= n; i += 4 {
		c0, c1, c2, c3 := cells[i], cells[i+1], cells[i+2], cells[i+3]
		if !(c0.dirty || c1.dirty || c2.dirty || c3.dirty) &&
			c0.value.Kind == formula.KindNumber && c1.value.Kind == formula.KindNumber &&
			c2.value.Kind == formula.KindNumber && c3.value.Kind == formula.KindNumber {
			v0, v1, v2, v3 := c0.value.Num, c1.value.Num, c2.value.Num, c3.value.Num
			f.Sum = f.Sum + v0 + v1 + v2 + v3
			f.Count += 4
			f.NonEmpty += 4
			if v0 < f.Min {
				f.Min = v0
			}
			if v1 < f.Min {
				f.Min = v1
			}
			if v2 < f.Min {
				f.Min = v2
			}
			if v3 < f.Min {
				f.Min = v3
			}
			if v0 > f.Max {
				f.Max = v0
			}
			if v1 > f.Max {
				f.Max = v1
			}
			if v2 > f.Max {
				f.Max = v2
			}
			if v3 > f.Max {
				f.Max = v3
			}
			continue
		}
		slow(i)
		slow(i + 1)
		slow(i + 2)
		slow(i + 3)
	}
	for ; i < n; i++ {
		slow(i)
	}
	return acc.f, true
}

// foldCursor is one column's slab window with a scan position — the unit of
// the row-major cursor merges below.
type foldCursor struct {
	col   int
	rows  []int
	cells []*cell
	i     int
}

// loadCursors fills curs with the populated column windows of rng, in
// ascending column order. Returns false when the rectangle is wider than
// maxFoldCols (the caller falls back to the streaming scan).
func (s *colStore) loadCursors(rng ref.Range, curs *[maxFoldCols]foldCursor) (n int, ok bool) {
	if rng.Cols() > maxFoldCols {
		return 0, false
	}
	for c := rng.Head.Col; c <= rng.Tail.Col; c++ {
		col := s.cols[c]
		if col == nil {
			continue
		}
		lo, hi := col.window(rng.Head.Row, rng.Tail.Row)
		if lo == hi {
			continue
		}
		curs[n] = foldCursor{col: c, rows: col.rows[lo:hi], cells: col.cells[lo:hi]}
		n++
	}
	return n, true
}

// foldRect folds a multi-column rectangle by min-scanning the per-column
// cursor heads: each step picks the cursor with the lowest current row —
// ties resolve to the lowest column because cursors are stored in column
// order and the comparison is strict — which reproduces the streaming
// scan's row-major visit order exactly, so Sum/Err match bit-for-bit.
func (s *colStore) foldRect(rng ref.Range, dirtyVal func(ref.Ref, *cell) formula.Value) (formula.NumericFold, bool) {
	var curs [maxFoldCols]foldCursor
	n, ok := s.loadCursors(rng, &curs)
	if !ok {
		return formula.NumericFold{}, false
	}
	acc := foldAcc{f: formula.NumericFold{Min: math.Inf(1), Max: math.Inf(-1)}, dirtyVal: dirtyVal}
	for {
		best := -1
		for k := 0; k < n; k++ {
			cu := &curs[k]
			if cu.i >= len(cu.rows) {
				continue
			}
			if best < 0 || cu.rows[cu.i] < curs[best].rows[curs[best].i] {
				best = k
			}
		}
		if best < 0 {
			return acc.f, true
		}
		cu := &curs[best]
		acc.add(ref.Ref{Col: cu.col, Row: cu.rows[cu.i]}, cu.cells[cu.i])
		cu.i++
	}
}

// cellVal resolves one stored cell's value with the fold paths' dirty
// semantics (see foldAcc).
func cellVal(at ref.Ref, c *cell, dirtyVal func(ref.Ref, *cell) formula.Value) formula.Value {
	if c.dirty && dirtyVal != nil {
		return dirtyVal(at, c)
	}
	return c.value
}

// probe advances the cursor to row (monotonic: callers feed ascending rows)
// and returns the cell stored there, or nil when the row is unpopulated.
func (cu *foldCursor) probe(row int) *cell {
	for cu.i < len(cu.rows) && cu.rows[cu.i] < row {
		cu.i++
	}
	if cu.i < len(cu.rows) && cu.rows[cu.i] == row {
		return cu.cells[cu.i]
	}
	return nil
}

// foldSumIf is the slab fold behind formula.CondFolder.FoldSumIf for the
// canonical SUMIF shape: single-column criterion range, single-column sum
// range of the same height. The criterion column is walked once; each match
// probes the sum column at a constant row offset with a monotonic cursor, so
// the whole call is two merged slab walks. An unpopulated sum cell
// contributes 0 (Empty coerces to 0), exactly as the streaming path's
// CellValue probe does. The caller guarantees the criterion does not match
// blanks, so unpopulated criterion cells are correctly skipped. Other
// shapes report handled=false.
func (s *colStore) foldSumIf(critRng ref.Range, crit formula.Criterion, sumRng ref.Range, dirtyVal func(ref.Ref, *cell) formula.Value) (float64, bool) {
	if critRng.Head.Col != critRng.Tail.Col || sumRng.Head.Col != sumRng.Tail.Col {
		return 0, false
	}
	same := critRng == sumRng
	col := s.cols[critRng.Head.Col]
	if col == nil {
		return 0, true
	}
	lo, hi := col.window(critRng.Head.Row, critRng.Tail.Row)
	rows, cells := col.rows[lo:hi], col.cells[lo:hi]
	var sumCur foldCursor
	if !same {
		if sc := s.cols[sumRng.Head.Col]; sc != nil {
			slo, shi := sc.window(sumRng.Head.Row, sumRng.Tail.Row)
			sumCur = foldCursor{col: sumRng.Head.Col, rows: sc.rows[slo:shi], cells: sc.cells[slo:shi]}
		}
	}
	dRow := sumRng.Head.Row - critRng.Head.Row
	total := 0.0
	for i := range rows {
		v := cellVal(ref.Ref{Col: critRng.Head.Col, Row: rows[i]}, cells[i], dirtyVal)
		if !crit.Matches(v) {
			continue
		}
		sv := v
		if !same {
			sv = formula.Empty()
			srow := rows[i] + dRow
			if sc := sumCur.probe(srow); sc != nil {
				sv = cellVal(ref.Ref{Col: sumRng.Head.Col, Row: srow}, sc, dirtyVal)
			}
		}
		if f, ok := sv.AsNumber(); ok {
			total += f
		}
	}
	return total, true
}

// foldSumProduct is the slab fold behind formula.CondFolder.FoldSumProduct
// for the two-argument SUMPRODUCT: equal-shape rectangles (the caller checks
// shape) up to maxFoldCols wide. It first replays the streaming path's
// finite guard over both rectangles — any stored non-finite number bails to
// handled=false so the caller's exact-compensation fallback runs — then
// scans the first rectangle's populated cells in row-major order, pairing
// each with the second rectangle's cell at the same offset via per-column
// monotonic cursors. Positions unpopulated in the first rectangle are
// skipped and missing partner cells read as Empty, matching the streaming
// RangeValues/CellValue semantics; non-numeric and error values contribute a
// zero factor via formula.SumProductFactor.
func (s *colStore) foldSumProduct(a, b ref.Range, dirtyVal func(ref.Ref, *cell) formula.Value) (float64, bool) {
	for _, rng := range [2]ref.Range{a, b} {
		finite := s.scanRange(rng, func(at ref.Ref, c *cell) bool {
			v := cellVal(at, c, dirtyVal)
			if v.Kind == formula.KindNumber && (math.IsNaN(v.Num) || math.IsInf(v.Num, 0)) {
				return false
			}
			return true
		})
		if !finite {
			return 0, false
		}
	}
	var acurs, bcurs [maxFoldCols]foldCursor
	an, ok := s.loadCursors(a, &acurs)
	if !ok {
		return 0, false
	}
	bn, ok := s.loadCursors(b, &bcurs)
	if !ok {
		return 0, false
	}
	// Index b's cursors by column offset for O(1) pairing; absent columns
	// stay nil and read as Empty.
	var bByCol [maxFoldCols]*foldCursor
	for k := 0; k < bn; k++ {
		bByCol[bcurs[k].col-b.Head.Col] = &bcurs[k]
	}
	dRow := b.Head.Row - a.Head.Row
	total := 0.0
	for {
		best := -1
		for k := 0; k < an; k++ {
			cu := &acurs[k]
			if cu.i >= len(cu.rows) {
				continue
			}
			if best < 0 || cu.rows[cu.i] < acurs[best].rows[acurs[best].i] {
				best = k
			}
		}
		if best < 0 {
			return total, true
		}
		cu := &acurs[best]
		arow := cu.rows[cu.i]
		av := cellVal(ref.Ref{Col: cu.col, Row: arow}, cu.cells[cu.i], dirtyVal)
		cu.i++
		bv := formula.Empty()
		if bc := bByCol[cu.col-a.Head.Col]; bc != nil {
			brow := arow + dRow
			if c := bc.probe(brow); c != nil {
				bv = cellVal(ref.Ref{Col: bc.col, Row: brow}, c, dirtyVal)
			}
		}
		total += formula.SumProductFactor(av) * formula.SumProductFactor(bv)
	}
}

// eachColumnMajor visits every stored cell in column-major order — the
// deterministic order snapshots are written in. Column keys are sorted per
// call; the slab rows are already sorted.
func (s *colStore) eachColumnMajor(fn func(at ref.Ref, c *cell) error) error {
	cols := make([]int, 0, len(s.cols))
	for c := range s.cols {
		cols = append(cols, c)
	}
	slices.Sort(cols)
	for _, cidx := range cols {
		col := s.cols[cidx]
		for i, row := range col.rows {
			if err := fn(ref.Ref{Col: cidx, Row: row}, col.cells[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// CellStoreStats describes the columnar store's shape — the stats seam the
// serving layer surfaces next to the graph's compression stats.
type CellStoreStats struct {
	Columns      int // populated columns
	Cells        int // stored cells
	LongestSlab  int // rows in the fullest column
	SlabCapacity int // total slab capacity (rows), incl. growth slack
}

// stats computes the store's shape summary.
func (s *colStore) stats() CellStoreStats {
	st := CellStoreStats{Columns: len(s.cols)}
	for _, col := range s.cols {
		st.Cells += len(col.rows)
		st.SlabCapacity += cap(col.rows)
		if len(col.rows) > st.LongestSlab {
			st.LongestSlab = len(col.rows)
		}
	}
	return st
}
