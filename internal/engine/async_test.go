package engine

import (
	"math/rand"
	"sync"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

func newAsyncWithChain(t *testing.T, rows int) *AsyncEngine {
	t.Helper()
	s := workload.NewSheet("t")
	rng := rand.New(rand.NewSource(1))
	s.AddDataColumn(1, rows, rng)
	s.AddChain(2, 1, rows)
	e, err := Load(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewAsync(e)
}

func TestAsyncUpdateReturnsBeforeEvaluation(t *testing.T) {
	a := newAsyncWithChain(t, 500)
	defer a.Close()
	end := ref.Ref{Col: 2, Row: 500}
	before := a.Get(end)

	dirty := a.Set(ref.Ref{Col: 1, Row: 1}, formula.Num(100000))
	if len(dirty) == 0 {
		t.Fatal("no dirty set returned")
	}
	// After flushing, the chain end reflects the edit.
	a.Flush()
	after, clean := a.Peek(end)
	if !clean {
		t.Fatal("cell still dirty after Flush")
	}
	if after.Num == before.Num {
		t.Fatalf("value did not change: %v", after)
	}
}

func TestAsyncGetBlocksUntilClean(t *testing.T) {
	a := newAsyncWithChain(t, 2000)
	defer a.Close()
	end := ref.Ref{Col: 2, Row: 2000}
	a.Set(ref.Ref{Col: 1, Row: 1}, formula.Num(7))
	// Get must return the fully recalculated value, never a stale one.
	v := a.Get(end)
	v2, clean := a.Peek(end)
	if !clean || v.Num != v2.Num {
		t.Fatalf("Get returned %v but Peek says %v clean=%v", v, v2, clean)
	}
}

func TestAsyncMatchesSyncResults(t *testing.T) {
	s := workload.GenerateSheet("t", 80, 0.05, rand.New(rand.NewSource(3)))
	syncE, err := Load(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	asyncBase, err := Load(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsync(asyncBase)
	defer a.Close()

	edits := []struct {
		at ref.Ref
		v  float64
	}{
		{ref.MustCell("A1"), 5}, {ref.MustCell("B3"), -2}, {ref.MustCell("A10"), 99},
	}
	for _, e := range edits {
		syncE.SetValue(e.at, formula.Num(e.v))
		syncE.RecalculateAll()
		a.Set(e.at, formula.Num(e.v))
	}
	a.Flush()
	for at := range s.Cells {
		want := syncE.Value(at)
		got := a.Get(at)
		if want.String() != got.String() {
			t.Fatalf("cell %v: async %v vs sync %v", at, got, want)
		}
	}
}

func TestAsyncConcurrentEditorsAndReaders(t *testing.T) {
	a := newAsyncWithChain(t, 300)
	defer a.Close()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				a.Set(ref.Ref{Col: 1, Row: 1 + rng.Intn(300)}, formula.Num(float64(rng.Intn(100))))
			}
		}(int64(w))
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 50; i++ {
				at := ref.Ref{Col: 2, Row: 1 + rng.Intn(300)}
				a.Peek(at)
				a.Dependents(ref.CellRange(at))
			}
		}(int64(r))
	}
	wg.Wait()
	a.Flush()
	// The final state is internally consistent: recompute synchronously and
	// compare the chain end.
	end := ref.Ref{Col: 2, Row: 300}
	v, clean := a.Peek(end)
	if !clean {
		t.Fatal("dirty after flush")
	}
	if v.Kind != formula.KindNumber {
		t.Fatalf("chain end = %v", v)
	}
}

func TestAsyncSetFormula(t *testing.T) {
	e := New(nil)
	a := NewAsync(e)
	defer a.Close()
	a.Set(ref.MustCell("A1"), formula.Num(4))
	if _, err := a.SetFormula(ref.MustCell("B1"), "A1*10"); err != nil {
		t.Fatal(err)
	}
	if v := a.Get(ref.MustCell("B1")); v.Num != 40 {
		t.Fatalf("B1 = %v", v)
	}
	if _, err := a.SetFormula(ref.MustCell("B2"), "SUM("); err == nil {
		t.Fatal("want parse error")
	}
}

func TestAsyncCloseIdempotentAndSafe(t *testing.T) {
	a := newAsyncWithChain(t, 50)
	a.Set(ref.Ref{Col: 1, Row: 1}, formula.Num(1))
	a.Close()
	a.Close() // second close is a no-op
	// Post-close reads still work (worker gone, state frozen).
	if _, clean := a.Peek(ref.Ref{Col: 2, Row: 50}); !clean {
		// The pending work may or may not have drained before close; both
		// states are acceptable, but Peek must not panic or block.
		t.Log("cell left dirty at close (acceptable)")
	}
}
