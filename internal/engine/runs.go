package engine

import (
	"slices"
	"sync"
	"sync/atomic"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/ref"
)

// This file implements the vectorized pattern-run drain: inside one
// wavefront level, contiguous rows of a column whose cells share one
// compiled program (modulo relative offsets) are evaluated as a single
// batched sweep instead of per-cell dispatch. The sharing is exactly what
// the TACO graph's pattern/RR-Chain edges record — a compressed dependent
// run is a set of cells with one formula shape — so run detection is keyed
// on the canonical compile cache (shifted copies of a formula intern to one
// *Program; membership is pointer equality) and, when the graph supports it,
// pre-filtered by the compressed edges' dependent spans (patternSpanner).
//
// The sweep itself plans one cursor per compiled cell operand: a row-fixed
// operand ($-anchored row) resolves to one position for the whole run and is
// read once; a relative-row operand advances down a columnar slab window one
// row per evaluated cell, foldRange-style, so the inner loop touches no maps
// and re-resolves nothing. Range operands and call dispatch still go through
// the ordinary resolver — folds keep their own batched paths. Every value a
// run reads is settled by the level barrier (that is what a level is), so
// the sweep reads exactly what per-cell evaluation against the read-only
// valueResolver would read, and results — including error values and
// #CYCLE! propagated from earlier levels — are bit-identical to the serial
// AST path.

// minPatternRun is the run length below which the batched sweep is not
// attempted: planning cursors for a handful of cells costs more than
// evaluating them, and levels narrower than this skip detection entirely.
const minPatternRun = 8

// levelRun is one detected pattern run: node indices of a single column's
// contiguous rows (ascending), all sharing prog.
type levelRun struct {
	prog  *formula.Program
	nodes []int32
}

// levelPlan is one level's cached pattern-run partition. A schedule's level
// sequence is a pure function of its nodes and links, so when a warm-reused
// schedule replays the same frontier sequence, the partitions computed on
// the first drain replay too — run detection (the sort filter, program
// interning probes, span coverage) runs once per schedule, not once per
// drain. Validity is checked by exact level equality, so a drain whose
// budget splits levels differently simply recomputes from the first
// mismatch (see replayPlan).
type levelPlan struct {
	level   []int32
	runs    []levelRun
	singles []int32
}

// replayPlan returns the cached partition for the next drained level, if it
// was recorded for exactly this level. On mismatch the stale tail of the
// plan list is dropped — everything after this point was recorded for a
// level sequence this drain is no longer following.
func (sch *schedule) replayPlan(level []int32) (runs []levelRun, singles []int32, ok bool) {
	if sch.planIdx < len(sch.plans) && slices.Equal(sch.plans[sch.planIdx].level, level) {
		p := &sch.plans[sch.planIdx]
		sch.planIdx++
		return p.runs, p.singles, true
	}
	for i := sch.planIdx; i < len(sch.plans); i++ {
		sch.plans[i] = levelPlan{}
	}
	sch.plans = sch.plans[:sch.planIdx]
	return nil, nil, false
}

// recordPlan caches one level's freshly computed partition. Copies
// throughout: level is the schedule's reused frontier buffer and the run
// node slices alias planLevel's sort scratch, neither of which survives the
// next level.
func (sch *schedule) recordPlan(level []int32, runs []levelRun, singles []int32) {
	p := levelPlan{
		level:   slices.Clone(level),
		singles: slices.Clone(singles),
		runs:    make([]levelRun, len(runs)),
	}
	for i, r := range runs {
		p.runs[i] = levelRun{prog: r.prog, nodes: slices.Clone(r.nodes)}
	}
	sch.plans = append(sch.plans, p)
	sch.planIdx = len(sch.plans)
}

// planLevel partitions one wavefront level into pattern runs and leftover
// singles. Cells are sorted by (column, row); a maximal chain of contiguous
// rows whose cells intern to the same compiled program becomes a run if it
// is long enough and — when the graph tracks pattern compression — its whole
// extent is covered by compressed dependent spans. Everything else (value
// cells, uncompilable formulas, broken/short chains) stays per-cell. The
// returned slices index into nodes; the level itself is not reordered, so
// the caller's publish loop is unaffected.
func (e *Engine) planLevel(nodes []schedNode, level []int32) (runs []levelRun, singles []int32) {
	var sorted []int32
	if sch := e.sched; sch != nil && len(sch.order) == len(nodes) {
		// The batched linker already position-sorted the whole node set;
		// filtering its order by level membership yields this level sorted
		// in O(nodes) instead of another comparison sort. The scratch
		// buffers live on the schedule; runs alias sorted, which stays
		// untouched until the next level plans (after this level drains).
		mark := sch.mark
		if cap(mark) < len(nodes) {
			mark = make([]bool, len(nodes))
		} else {
			mark = mark[:len(nodes)]
			clear(mark)
		}
		sch.mark = mark
		for _, i := range level {
			mark[i] = true
		}
		sorted = sch.lvl[:0]
		for _, i := range sch.order {
			if mark[i] {
				sorted = append(sorted, i)
			}
		}
		sch.lvl = sorted
	} else {
		sorted = make([]int32, len(level))
		copy(sorted, level)
		slices.SortFunc(sorted, func(a, b int32) int {
			na, nb := nodes[a].at, nodes[b].at
			if na.Col != nb.Col {
				return na.Col - nb.Col
			}
			return na.Row - nb.Row
		})
	}
	sp, hasSp := e.graph.(patternSpanner)
	var cover []bool
	i := 0
	for i < len(sorted) {
		n := &nodes[sorted[i]]
		var p *formula.Program
		if n.c.ast != nil {
			p = e.prog(n.at, n.c)
		}
		if p == nil {
			singles = append(singles, sorted[i])
			i++
			continue
		}
		j := i + 1
		for j < len(sorted) {
			m := &nodes[sorted[j]]
			if m.at.Col != n.at.Col || m.at.Row != nodes[sorted[j-1]].at.Row+1 ||
				m.c.ast == nil || e.prog(m.at, m.c) != p {
				break
			}
			j++
		}
		lastRow := nodes[sorted[j-1]].at.Row
		if j-i >= minPatternRun &&
			(!hasSp || e.spanCovered(sp, n.at.Col, n.at.Row, lastRow, &cover)) {
			runs = append(runs, levelRun{prog: p, nodes: sorted[i:j]})
		} else {
			singles = append(singles, sorted[i:j]...)
		}
		i = j
	}
	return runs, singles
}

// spanCovered reports whether every row of col[rowLo..rowHi] lies inside
// some compressed (non-Single) dependent span — the graph's own evidence
// that these cells share a formula shape. Spans from different edges may
// each cover part of the run (one edge per reference, clipped by partial
// dirty sets), so coverage is a union, tracked in the reusable scratch.
func (e *Engine) spanCovered(sp patternSpanner, col, rowLo, rowHi int, scratch *[]bool) bool {
	n := rowHi - rowLo + 1
	buf := *scratch
	if cap(buf) < n {
		buf = make([]bool, n)
	} else {
		buf = buf[:n]
		clear(buf)
	}
	*scratch = buf
	covered := 0
	r := ref.Range{Head: ref.Ref{Col: col, Row: rowLo}, Tail: ref.Ref{Col: col, Row: rowHi}}
	sp.PatternRunSpans(r, func(span ref.Range, _ core.PatternType) bool {
		for row := span.Head.Row; row <= span.Tail.Row; row++ {
			if !buf[row-rowLo] {
				buf[row-rowLo] = true
				covered++
			}
		}
		return covered < n
	})
	return covered == n
}

// runCursor feeds one compiled cell operand during a sweep: a row-fixed
// operand is a single pre-read value, an operand over an unpopulated column
// is always Empty, and a relative-row operand is an advancing slab window.
type runCursor struct {
	kind uint8 // curFixed, curEmpty, curSlab
	v    formula.Value
	cur  foldCursor
}

const (
	curFixed = iota
	curEmpty
	curSlab
)

// executeRun evaluates one pattern run as a batched sweep: cursors are
// planned once against the run's first anchor, then each row is one VM
// evaluation with cell reads served straight off the slabs. Rows ascend, so
// every slab cursor advances monotonically; a missing cell reads as Empty,
// exactly as valueResolver.CellValue would return it. Each cell's value and
// clean flag are written exactly once, same as evalLevelCell.
func (e *Engine) executeRun(nodes []schedNode, r *levelRun) {
	p := r.prog
	res := valueResolver{e}
	anchor0 := nodes[r.nodes[0]].at
	n := len(r.nodes)
	ops := p.CellOps()
	cursors := make([]runCursor, len(ops))
	for i, op := range ops {
		t0 := op.At(anchor0)
		if op.RowFixed {
			// The anchor column is constant across the run, so a row-fixed
			// operand resolves to one position: read it once.
			cursors[i] = runCursor{kind: curFixed, v: res.CellValue(t0)}
			continue
		}
		col := e.store.cols[t0.Col]
		if col == nil {
			cursors[i] = runCursor{kind: curEmpty}
			continue
		}
		lo, hi := col.window(t0.Row, t0.Row+n-1)
		cursors[i] = runCursor{kind: curSlab,
			cur: foldCursor{col: t0.Col, rows: col.rows[lo:hi], cells: col.cells[lo:hi]}}
	}
	read := func(op int, target ref.Ref) formula.Value {
		cu := &cursors[op]
		switch cu.kind {
		case curFixed:
			return cu.v
		case curEmpty:
			return formula.Empty()
		}
		if c := cu.cur.probe(target.Row); c != nil {
			return c.value
		}
		return formula.Empty()
	}
	if p.HasNumericSweep() {
		// Straight-line arithmetic sweeps on the float fast path: all cell
		// operands pre-read and coerced per row, the program run on a bare
		// float64 stack. Any row the fast path cannot reproduce exactly —
		// an error operand, a failed coercion, a zero divisor — re-runs on
		// the generic interpreter (probe is idempotent for its row), which
		// keeps every error and coercion outcome bit-identical.
		vals := make([]float64, len(ops))
		for _, ni := range r.nodes {
			nd := &nodes[ni]
			fast := true
			for i := range ops {
				f, numeric := read(i, ops[i].At(nd.at)).AsNumber()
				if !numeric {
					fast = false
					break
				}
				vals[i] = f
			}
			if fast {
				if f, ok := p.NumericSweep(vals); ok {
					nd.c.value = formula.Num(f)
					nd.c.dirty = false
					continue
				}
			}
			nd.c.value = p.EvalCells(res, nd.at, read)
			nd.c.dirty = false
		}
		return
	}
	for _, ni := range r.nodes {
		nd := &nodes[ni]
		nd.c.value = p.EvalCells(res, nd.at, read)
		nd.c.dirty = false
	}
}

// drainRuns executes a level's detected runs. Runs write disjoint cells and
// read only settled values, so they are independent units: with parallelism
// configured and more than one run, they fan out (through the injected
// LevelRunner when one is set); otherwise they sweep sequentially.
func (e *Engine) drainRuns(nodes []schedNode, runs []levelRun, run LevelRunner) {
	if e.parallelism > 1 && len(runs) > 1 {
		if run != nil {
			run(len(runs), func(i int) { e.executeRun(nodes, &runs[i]) })
			return
		}
		workers := min(e.parallelism, len(runs))
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := cursor.Add(1) - 1
					if i >= int64(len(runs)) {
						return
					}
					e.executeRun(nodes, &runs[int(i)])
				}
			}()
		}
		wg.Wait()
		return
	}
	for i := range runs {
		e.executeRun(nodes, &runs[i])
	}
}
