package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/ref"
)

// This file implements engine-level snapshotting: serialising a whole live
// session — the sparse cell store plus its compressed formula graph — so a
// multi-tenant host can spill cold sessions to disk and restore them lazily
// without recompression or re-evaluation. The cell section carries cached
// values, so a restored engine answers reads immediately; the graph section
// reuses the core snapshot format (and its bulk-loaded R-tree restore).
//
// Format:
//
//	magic "TACOE1" | cell count N | N cell records | core graph snapshot
//
// Each cell record: col uvarint, row uvarint, kind byte, then the payload.
// Kind 0 is a value cell (value only), kind 1 a formula with its cached
// value (source + value), kind 2 a formula without a cached value (source
// only — restored dirty and recomputed on first read; used when the cached
// value is itself too large to snapshot). Values are a formula.Kind byte
// plus a kind-specific payload.

var engineSnapshotMagic = []byte("TACOE1")

// ErrBadEngineSnapshot is returned when decoding malformed session data.
var ErrBadEngineSnapshot = errors.New("engine: malformed engine snapshot")

// MaxSnapshotString bounds formula/text lengths — enforced symmetrically on
// encode and decode, so any snapshot that was written can be read back
// (spill must never strand a session) while a corrupt or hostile snapshot
// fails with ErrBadEngineSnapshot instead of attempting a multi-gigabyte
// allocation inside a multi-tenant host. maxCellsHint bounds only the
// decoder's up-front allocation.
const (
	MaxSnapshotString = 4 << 20
	maxCellsHint      = 1 << 16
)

// WriteSnapshot serialises the engine. Dirty cells are recalculated first so
// the stored values are authoritative, which lets RestoreSnapshot mark every
// cell clean. Engines driving a non-TACO graph backend cannot be
// snapshotted.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	tg, ok := e.graph.(TACO)
	if !ok {
		return errors.New("engine: only TACO-backed engines support snapshots")
	}
	e.RecalculateAll()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(engineSnapshotMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putString := func(s string) error {
		if len(s) > MaxSnapshotString {
			return fmt.Errorf("engine: cannot snapshot string of %d bytes (limit %d)", len(s), MaxSnapshotString)
		}
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Deterministic column-major order so equal engines produce identical
	// bytes, mirroring the core snapshot's guarantee.
	cells := make([]ref.Ref, 0, len(e.cells))
	for at := range e.cells {
		cells = append(cells, at)
	}
	sort.Slice(cells, func(i, j int) bool { return ref.ColumnMajorLess(cells[i], cells[j]) })
	if err := putUvarint(uint64(len(cells))); err != nil {
		return err
	}
	for _, at := range cells {
		c := e.cells[at]
		if err := putUvarint(uint64(at.Col)); err != nil {
			return err
		}
		if err := putUvarint(uint64(at.Row)); err != nil {
			return err
		}
		kind := byte(0)
		if c.ast != nil {
			kind = 1
			// A computed value can outgrow the snapshot string limit (string
			// concatenation compounds); it is only a cache, so persist the
			// formula alone and let the restored engine recompute it.
			if c.value.Kind == formula.KindString && len(c.value.Str) > MaxSnapshotString {
				kind = 2
			}
		}
		if err := bw.WriteByte(kind); err != nil {
			return err
		}
		if kind != 0 {
			if err := putString(c.src); err != nil {
				return err
			}
		}
		if kind == 2 {
			continue
		}
		if err := writeValue(bw, putUvarint, putString, c.value); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return tg.G.WriteSnapshot(w)
}

func writeValue(bw *bufio.Writer, putUvarint func(uint64) error, putString func(string) error, v formula.Value) error {
	if err := bw.WriteByte(byte(v.Kind)); err != nil {
		return err
	}
	switch v.Kind {
	case formula.KindEmpty:
		return nil
	case formula.KindNumber:
		return putUvarint(math.Float64bits(v.Num))
	case formula.KindString:
		return putString(v.Str)
	case formula.KindBool:
		b := byte(0)
		if v.Bool {
			b = 1
		}
		return bw.WriteByte(b)
	case formula.KindError:
		return putString(v.Err)
	default:
		return fmt.Errorf("engine: cannot snapshot value kind %d", v.Kind)
	}
}

// RestoreSnapshot loads an engine written by WriteSnapshot. Cells are
// restored with their cached values (formulae whose cached value was too
// large to persist come back dirty and recompute on first read); the graph
// is bulk-loaded through the core snapshot path, so no dependency is
// recompressed.
func RestoreSnapshot(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(engineSnapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngineSnapshot, err)
	}
	if string(magic) != string(engineSnapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadEngineSnapshot, magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngineSnapshot, err)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > MaxSnapshotString {
			return "", fmt.Errorf("string length %d exceeds limit", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	// The cell loop fails naturally on truncated input; only the up-front
	// allocation hint needs bounding against a hostile count.
	cells := make(map[ref.Ref]*cell, int(min(count, maxCellsHint)))
	nformulas := 0
	for i := uint64(0); i < count; i++ {
		col, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
		}
		row, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
		}
		at := ref.Ref{Col: int(col), Row: int(row)}
		if !at.Valid() {
			return nil, fmt.Errorf("%w: cell %d: invalid ref %v", ErrBadEngineSnapshot, i, at)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
		}
		c := &cell{}
		if kind == 1 || kind == 2 {
			src, err := readString()
			if err != nil {
				return nil, fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
			}
			ast, err := formula.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
			}
			c.ast, c.src = ast, src
			nformulas++
		} else if kind != 0 {
			return nil, fmt.Errorf("%w: cell %d: unknown cell kind %d", ErrBadEngineSnapshot, i, kind)
		}
		if kind == 2 {
			c.dirty = true // no cached value; recomputed on first read
		} else {
			v, err := readValue(br, readString)
			if err != nil {
				return nil, fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
			}
			c.value = v
		}
		cells[at] = c
	}
	g, err := core.ReadSnapshot(br, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Engine{
		graph:      TACO{G: g},
		cells:      cells,
		nformulas:  nformulas,
		evaluating: make(map[ref.Ref]bool),
	}, nil
}

func readValue(br *bufio.Reader, readString func() (string, error)) (formula.Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return formula.Value{}, err
	}
	switch formula.Kind(kb) {
	case formula.KindEmpty:
		return formula.Empty(), nil
	case formula.KindNumber:
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Num(math.Float64frombits(u)), nil
	case formula.KindString:
		s, err := readString()
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Str(s), nil
	case formula.KindBool:
		b, err := br.ReadByte()
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Boolean(b != 0), nil
	case formula.KindError:
		s, err := readString()
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Errorf(s), nil
	default:
		return formula.Value{}, fmt.Errorf("unknown value kind %d", kb)
	}
}
