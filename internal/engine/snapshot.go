package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"taco/internal/core"
	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/rtree"
)

// This file implements engine-level snapshotting: serialising a whole live
// session — the sparse cell store plus its compressed formula graph — so a
// multi-tenant host can spill cold sessions to disk and restore them lazily
// without recompression or re-evaluation. The cell section carries cached
// values, so a restored engine answers reads immediately; the graph section
// reuses the core snapshot format (and its bulk-loaded R-tree restore).
//
// Besides the full restore, two partial readers serve a spilled session
// without making it resident: ReadSnapshotGraph skims the cell section and
// decodes only the graph (dependents/precedents queries), and
// ScanSnapshotCells streams the cell records without building an engine
// (range reads). Both exist for the serving layer's non-faulting read path.
//
// Format:
//
//	magic "TACOE2" | cell count N | N cell records | core graph snapshot |
//	crc32c little-endian (over everything before it, magic included)
//
// Each cell record: col uvarint, row uvarint, kind byte, then the payload.
// Kind 0 is a value cell (value only), kind 1 a formula with its cached
// value (source + value), kind 2 a formula without a cached value (source
// only — restored dirty and recomputed on demand; used when the cached
// value is itself too large to snapshot). Values are a formula.Kind byte
// plus a kind-specific payload.
//
// The CRC32C trailer makes torn or bit-rotted spill files detectable:
// CheckSnapshotIntegrity verifies a whole file before the store trusts it
// at restore. Streaming decoders self-delimit and simply never read the
// trailer. TACOE1 (the pre-checksum format) is still accepted on read —
// legacy files carry no trailer and pass the integrity check vacuously.

var (
	engineSnapshotMagic   = []byte("TACOE2")
	engineSnapshotMagicV1 = []byte("TACOE1")
)

// snapCRCTable is CRC32-Castagnoli, hardware-accelerated on amd64/arm64.
var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadEngineSnapshot is returned when decoding malformed session data.
var ErrBadEngineSnapshot = errors.New("engine: malformed engine snapshot")

// ErrSnapshotChecksum is returned by CheckSnapshotIntegrity when a TACOE2
// snapshot's trailer does not match its content — a torn write or bit rot.
var ErrSnapshotChecksum = errors.New("engine: snapshot checksum mismatch")

// MaxSnapshotString bounds formula/text lengths — enforced symmetrically on
// encode and decode, so any snapshot that was written can be read back
// (spill must never strand a session) while a corrupt or hostile snapshot
// fails with ErrBadEngineSnapshot instead of attempting a multi-gigabyte
// allocation inside a multi-tenant host. maxCellsHint bounds only the
// decoder's up-front allocation.
const (
	MaxSnapshotString = 4 << 20
	maxCellsHint      = 1 << 16
)

// snapWriter is the buffered sink the encoder needs; callers passing one
// (bytes.Buffer, bufio.Writer) skip the wrapper layer and its extra copy.
type snapWriter interface {
	io.Writer
	io.ByteWriter
	io.StringWriter
}

// WriteSnapshot serialises the engine. Dirty cells are recalculated first so
// the stored values are authoritative, which lets RestoreSnapshot mark every
// cell clean (oversized computed values excepted — they round-trip as
// dirty). Engines driving a non-TACO graph backend cannot be snapshotted.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	_, _, err := e.writeSnapshot(w, nil, 0)
	return err
}

// WriteSnapshotCached is WriteSnapshot reusing a pre-encoded graph section:
// when gen still matches the graph's generation, blob is appended verbatim
// instead of re-encoding the (unchanged) edge set — value-only edit streams
// never touch the graph, so spill-heavy hosts skip most of the encode work.
// It returns the blob and generation to cache for the next call.
func (e *Engine) WriteSnapshotCached(w io.Writer, blob []byte, gen uint64) ([]byte, uint64, error) {
	return e.writeSnapshot(w, blob, gen)
}

func (e *Engine) writeSnapshot(w io.Writer, blob []byte, gen uint64) ([]byte, uint64, error) {
	tg, ok := e.graph.(TACO)
	if !ok {
		return nil, 0, errors.New("engine: only TACO-backed engines support snapshots")
	}
	e.RecalculateAll()
	bw, buffered := w.(snapWriter)
	if !buffered {
		bw = bufio.NewWriter(w)
	}
	// Everything up to the trailer flows through the CRC writer; the cached
	// graph blob stays raw (the checksum is per-file, computed per write).
	cw := &crcWriter{w: bw}
	if err := e.writeCells(cw); err != nil {
		return nil, 0, err
	}
	if blob == nil || gen != tg.G.Gen() {
		var gb bytes.Buffer
		if err := tg.G.WriteSnapshot(&gb); err != nil {
			return nil, 0, err
		}
		blob, gen = gb.Bytes(), tg.G.Gen()
	}
	if _, err := cw.Write(blob); err != nil {
		return nil, 0, err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.sum)
	if _, err := bw.Write(trailer[:]); err != nil {
		return nil, 0, err
	}
	if f, isBufio := bw.(*bufio.Writer); isBufio {
		if err := f.Flush(); err != nil {
			return nil, 0, err
		}
	}
	return blob, gen, nil
}

// crcWriter threads every byte through the running CRC32C on its way to the
// sink. WriteString hashes through a fixed scratch block so large string
// payloads cost no allocation.
type crcWriter struct {
	w       snapWriter
	sum     uint32
	scratch [512]byte
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, snapCRCTable, p)
	return c.w.Write(p)
}

func (c *crcWriter) WriteByte(b byte) error {
	c.scratch[0] = b
	c.sum = crc32.Update(c.sum, snapCRCTable, c.scratch[:1])
	return c.w.WriteByte(b)
}

func (c *crcWriter) WriteString(s string) (int, error) {
	for rest := s; len(rest) > 0; {
		n := copy(c.scratch[:], rest)
		c.sum = crc32.Update(c.sum, snapCRCTable, c.scratch[:n])
		rest = rest[n:]
	}
	return c.w.WriteString(s)
}

func (e *Engine) writeCells(bw snapWriter) error {
	if _, err := bw.Write(engineSnapshotMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putString := func(s string) error {
		if len(s) > MaxSnapshotString {
			return fmt.Errorf("engine: cannot snapshot string of %d bytes (limit %d)", len(s), MaxSnapshotString)
		}
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Deterministic column-major order so equal engines produce identical
	// bytes, mirroring the core snapshot's guarantee. The columnar store
	// already holds cells in exactly this order — the encoder streams the
	// slabs directly, with no per-spill sort or scratch buffers at all.
	if err := putUvarint(uint64(len(e.cells))); err != nil {
		return err
	}
	return e.store.eachColumnMajor(func(at ref.Ref, c *cell) error {
		return e.writeCell(bw, putUvarint, putString, at, c)
	})
}

// writeCell encodes one cell record.
func (e *Engine) writeCell(bw snapWriter, putUvarint func(uint64) error, putString func(string) error, at ref.Ref, c *cell) error {
	if err := putUvarint(uint64(at.Col)); err != nil {
		return err
	}
	if err := putUvarint(uint64(at.Row)); err != nil {
		return err
	}
	kind := byte(0)
	if c.ast != nil {
		kind = 1
		// A computed value can outgrow the snapshot string limit (string
		// concatenation compounds); it is only a cache, so persist the
		// formula alone and let the restored engine recompute it.
		if c.value.Kind == formula.KindString && len(c.value.Str) > MaxSnapshotString {
			kind = 2
		}
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	if kind != 0 {
		if err := putString(c.src); err != nil {
			return err
		}
	}
	if kind == 2 {
		return nil
	}
	return writeValue(bw, putUvarint, putString, c.value)
}

func writeValue(bw snapWriter, putUvarint func(uint64) error, putString func(string) error, v formula.Value) error {
	if err := bw.WriteByte(byte(v.Kind)); err != nil {
		return err
	}
	switch v.Kind {
	case formula.KindEmpty:
		return nil
	case formula.KindNumber:
		return putUvarint(math.Float64bits(v.Num))
	case formula.KindString:
		return putString(v.Str)
	case formula.KindBool:
		b := byte(0)
		if v.Bool {
			b = 1
		}
		return bw.WriteByte(b)
	case formula.KindError:
		return putString(v.Err)
	default:
		return fmt.Errorf("engine: cannot snapshot value kind %d", v.Kind)
	}
}

// SnapshotCell is one decoded cell record, as streamed by ScanSnapshotCells.
type SnapshotCell struct {
	At    ref.Ref
	Src   string       // formula source ("" for value cells)
	AST   formula.Node // parsed formula; nil for value cells or unparsed scans
	Value formula.Value
	Dirty bool // formula restored without a cached value (kind 2)
}

// scanCells decodes the cell section (magic, count, records), invoking fn
// per cell. With fn == nil it skims: payloads are length-skipped without
// allocating, which is how graph-only restores pay almost nothing for the
// cells they don't need. With parse set, formula sources go through the
// process-wide parse cache and Src is the cache's canonical string — a
// restore of a previously-seen session allocates no per-formula memory.
// hint, when non-nil, receives the cell count (clamped against hostile
// values) before the first record so callers can pre-size containers.
// On return the reader is positioned at the graph section.
func scanCells(br *bufio.Reader, parse bool, hint func(int), fn func(SnapshotCell) error) error {
	return scanCellsFiltered(br, parse, hint, nil, nil, fn)
}

// scanCellsFiltered is scanCells with an optional rectangle filter: records
// outside filter are skimmed — their payloads length-skipped, never decoded,
// allocated, or parsed — so a range read against a spilled session pays full
// decode cost only for the cells it returns. Skimmed formula records still
// report their dirty flag through pending (the record header carries it), so
// the caller's session-wide pending count stays exact.
func scanCellsFiltered(br *bufio.Reader, parse bool, hint func(int), filter *ref.Range, pending *int, fn func(SnapshotCell) error) error {
	var magicBuf [8]byte
	magic := magicBuf[:len(engineSnapshotMagic)]
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("%w: %v", ErrBadEngineSnapshot, err)
	}
	if string(magic) != string(engineSnapshotMagic) && string(magic) != string(engineSnapshotMagicV1) {
		return fmt.Errorf("%w: bad magic %q", ErrBadEngineSnapshot, magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadEngineSnapshot, err)
	}
	if hint != nil {
		hint(int(min(count, maxCellsHint)))
	}
	var scratch []byte
	readBytes := func() ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > MaxSnapshotString {
			return nil, fmt.Errorf("string length %d exceeds limit", n)
		}
		if uint64(cap(scratch)) < n {
			scratch = make([]byte, n)
		}
		b := scratch[:n]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	skipBytes := func() error {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if n > MaxSnapshotString {
			return fmt.Errorf("string length %d exceeds limit", n)
		}
		_, err = br.Discard(int(n))
		return err
	}
	readString := func() (string, error) {
		b, err := readBytes()
		return string(b), err
	}
	// The cell loop fails naturally on truncated input; only up-front
	// allocations need bounding against a hostile count.
	for i := uint64(0); i < count; i++ {
		col, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
		}
		row, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
		}
		at := ref.Ref{Col: int(col), Row: int(row)}
		if !at.Valid() {
			return fmt.Errorf("%w: cell %d: invalid ref %v", ErrBadEngineSnapshot, i, at)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
		}
		if kind > 2 {
			return fmt.Errorf("%w: cell %d: unknown cell kind %d", ErrBadEngineSnapshot, i, kind)
		}
		if fn == nil || (filter != nil && !filter.Contains(at)) { // skim mode
			if kind == 2 && pending != nil {
				*pending++
			}
			if kind != 0 {
				if err := skipBytes(); err != nil {
					return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
				}
			}
			if kind != 2 {
				if err := skipValue(br); err != nil {
					return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
				}
			}
			continue
		}
		sc := SnapshotCell{At: at}
		if kind != 0 {
			b, err := readBytes()
			if err != nil {
				return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
			}
			if parse {
				ast, src, err := formula.ParseCachedBytes(b)
				if err != nil {
					return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
				}
				sc.AST, sc.Src = ast, src
			} else {
				sc.Src = string(b)
			}
		}
		if kind == 2 {
			sc.Dirty = true // no cached value; recomputed on demand
			if pending != nil {
				*pending++
			}
		} else {
			v, err := readValue(br, readString)
			if err != nil {
				return fmt.Errorf("%w: cell %d: %v", ErrBadEngineSnapshot, i, err)
			}
			sc.Value = v
		}
		if err := fn(sc); err != nil {
			return err
		}
	}
	return nil
}

// RestoreSnapshot loads an engine written by WriteSnapshot. Cells are
// restored with their cached values (formulae whose cached value was too
// large to persist come back dirty and recompute on demand); the graph is
// bulk-loaded through the core snapshot path, so no dependency is
// recompressed, and formula sources hit the process-wide parse cache.
func RestoreSnapshot(r io.Reader) (*Engine, error) {
	return restoreSnapshot(r, nil)
}

// RestoreSnapshotWithGraph is RestoreSnapshot for a caller that kept the
// session's compressed graph pinned in memory across the spill: only the
// cell section is decoded, and the engine is rebuilt around g — the graph
// section of the stream is left unread. g must be the exact graph the
// snapshot was written with (the serving layer guarantees this by pinning at
// spill time and invalidating on any revision change).
func RestoreSnapshotWithGraph(r io.Reader, g *core.Graph) (*Engine, error) {
	if g == nil {
		return nil, errors.New("engine: RestoreSnapshotWithGraph needs a graph")
	}
	return restoreSnapshot(r, g)
}

func restoreSnapshot(r io.Reader, pinned *core.Graph) (*Engine, error) {
	br, isBufio := r.(*bufio.Reader)
	if !isBufio {
		br = bufio.NewReader(r)
	}
	cells := cellMapPool.Get().(map[ref.Ref]*cell)
	store := newColStore()
	dirty := make(map[ref.Ref]*cell)
	nform := make(map[int]int)
	var fitems []rtree.Item[ref.Ref]
	// Slab-allocate cell records in pooled blocks: pointers into a full
	// block stay valid (blocks never regrow), and the restore/spill churn of
	// a capped host stops allocating once the pools warm up.
	var slabs [][]cell
	var block []cell
	newCell := func() *cell {
		if len(block) == cap(block) {
			block = slabPool.Get().([]cell)
			slabs = append(slabs, block)
		}
		block = append(block, cell{})
		slabs[len(slabs)-1] = block
		return &block[len(block)-1]
	}
	hint := func(n int) {
		fitems = make([]rtree.Item[ref.Ref], 0, n)
	}
	err := scanCells(br, true, hint, func(sc SnapshotCell) error {
		c := newCell()
		*c = cell{ast: sc.AST, src: sc.Src, value: sc.Value, dirty: sc.Dirty}
		cells[sc.At] = c
		store.set(sc.At, c) // snapshots are column-major: the append fast path
		if sc.AST != nil {
			fitems = append(fitems, rtree.Item[ref.Ref]{Rect: ref.CellRange(sc.At), Value: sc.At})
			nform[sc.At.Col]++
		}
		if sc.Dirty {
			dirty[sc.At] = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	g := pinned
	if g == nil {
		g, err = core.ReadSnapshot(br, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
	}
	return &Engine{
		graph:       TACO{G: g},
		store:       store,
		cells:       cells,
		formulas:    rtree.BulkLoad(fitems),
		nform:       nform,
		dirty:       dirty,
		slabs:       slabs,
		patternRuns: true,
		rootsOK:     true,
	}, nil
}

// ReadSnapshotGraph decodes only the compressed formula graph of an engine
// snapshot, skimming the cell section without materialising cells or parsing
// formulae. A serving layer uses it to answer dependents/precedents queries
// against a spilled session without faulting it back to residency.
func ReadSnapshotGraph(r io.Reader) (*core.Graph, error) {
	br, isBufio := r.(*bufio.Reader)
	if !isBufio {
		br = bufio.NewReader(r)
	}
	if err := scanCells(br, false, nil, nil); err != nil {
		return nil, err
	}
	return core.ReadSnapshot(br, core.DefaultOptions())
}

// ScanSnapshotCells streams the cell records of an engine snapshot in the
// written (column-major) order, stopping early when fn returns false. It
// never builds an engine — the serving layer's read path for spilled
// sessions. Formula sources are returned unparsed (AST is nil).
func ScanSnapshotCells(r io.Reader, fn func(SnapshotCell) bool) error {
	br, isBufio := r.(*bufio.Reader)
	if !isBufio {
		br = bufio.NewReader(r)
	}
	errStop := errors.New("stop")
	err := scanCells(br, false, nil, func(sc SnapshotCell) error {
		if !fn(sc) {
			return errStop
		}
		return nil
	})
	if errors.Is(err, errStop) {
		return nil
	}
	return err
}

// ScanSnapshotCellsInRange streams only the cell records inside rng, in the
// written (column-major) order. Records outside the rectangle are skimmed —
// length-skipped without decoding, allocating, or copying — so a range read
// against a spilled session costs the full decode only for the cells it
// returns; everything else is varint headers plus buffered discards.
// pending reports the snapshot-wide count of formula records stored without
// a cached value (the cells a restore would re-evaluate), counted across
// the whole snapshot, skimmed records included, so the serving layer's
// session-wide pending stays exact — unless fn stops the scan early, which
// leaves pending covering only the records seen. Formula sources are
// returned unparsed.
func ScanSnapshotCellsInRange(r io.Reader, rng ref.Range, fn func(SnapshotCell) bool) (pending int, err error) {
	br, isBufio := r.(*bufio.Reader)
	if !isBufio {
		br = bufio.NewReader(r)
	}
	errStop := errors.New("stop")
	err = scanCellsFiltered(br, false, nil, &rng, &pending, func(sc SnapshotCell) error {
		if !fn(sc) {
			return errStop
		}
		return nil
	})
	if errors.Is(err, errStop) {
		return pending, nil
	}
	return pending, err
}

// CheckSnapshotIntegrity verifies a whole engine snapshot against its
// CRC32C trailer before any of it is trusted: nil means the content is
// exactly what was written. TACOE1 files (pre-checksum) pass vacuously —
// they carry no trailer. A mismatch returns ErrSnapshotChecksum; an
// unrecognisable header returns ErrBadEngineSnapshot. The serving layer
// runs this on every spill file it restores, quarantining failures instead
// of serving silently corrupt sessions.
func CheckSnapshotIntegrity(data []byte) error {
	if len(data) >= len(engineSnapshotMagicV1) && bytes.Equal(data[:len(engineSnapshotMagicV1)], engineSnapshotMagicV1) {
		return nil
	}
	if len(data) < len(engineSnapshotMagic)+4 || !bytes.Equal(data[:len(engineSnapshotMagic)], engineSnapshotMagic) {
		return fmt.Errorf("%w: short or unrecognised header", ErrBadEngineSnapshot)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, snapCRCTable); got != want {
		return fmt.Errorf("%w: computed %08x, stored %08x", ErrSnapshotChecksum, got, want)
	}
	return nil
}

func skipValue(br *bufio.Reader) error {
	kb, err := br.ReadByte()
	if err != nil {
		return err
	}
	switch formula.Kind(kb) {
	case formula.KindEmpty:
		return nil
	case formula.KindNumber:
		_, err := binary.ReadUvarint(br)
		return err
	case formula.KindString, formula.KindError:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if n > MaxSnapshotString {
			return fmt.Errorf("string length %d exceeds limit", n)
		}
		_, err = br.Discard(int(n))
		return err
	case formula.KindBool:
		_, err := br.ReadByte()
		return err
	default:
		return fmt.Errorf("unknown value kind %d", kb)
	}
}

func readValue(br *bufio.Reader, readString func() (string, error)) (formula.Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return formula.Value{}, err
	}
	switch formula.Kind(kb) {
	case formula.KindEmpty:
		return formula.Empty(), nil
	case formula.KindNumber:
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Num(math.Float64frombits(u)), nil
	case formula.KindString:
		s, err := readString()
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Str(s), nil
	case formula.KindBool:
		b, err := br.ReadByte()
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Boolean(b != 0), nil
	case formula.KindError:
		s, err := readString()
		if err != nil {
			return formula.Value{}, err
		}
		return formula.Errorf(s), nil
	default:
		return formula.Value{}, fmt.Errorf("unknown value kind %d", kb)
	}
}
