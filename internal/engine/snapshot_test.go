package engine

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	for _, name := range workload.ScenarioNames {
		t.Run(name, func(t *testing.T) {
			sheet, err := workload.BuildScenario(name, 60, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			e, err := Load(sheet, nil)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := RestoreSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if r.NumCells() != e.NumCells() {
				t.Fatalf("cells = %d, want %d", r.NumCells(), e.NumCells())
			}
			for at := range sheet.Cells {
				a, b := e.Value(at), r.Value(at)
				if a.String() != b.String() {
					t.Fatalf("cell %v: %v vs restored %v", at, a, b)
				}
				if r.Formula(at) != e.Formula(at) {
					t.Fatalf("cell %v: formula %q vs restored %q", at, e.Formula(at), r.Formula(at))
				}
			}
			// Dependency queries survive the round trip.
			seed := ref.MustRange("A1")
			if got, want := countCells(r.Dependents(seed)), countCells(e.Dependents(seed)); got != want {
				t.Fatalf("dependents = %d cells, want %d", got, want)
			}
			// The restored engine stays live: edits propagate. (Planning is
			// row-major: the data row is 2, not column B.)
			edit := ref.MustCell("B1")
			if name == "planning" {
				edit = ref.MustCell("A2")
			}
			dirty := r.SetValue(edit, formula.Num(9999))
			if len(dirty) == 0 {
				t.Fatal("edit on restored engine produced no dirty set")
			}
			r.RecalculateAll()
		})
	}
}

func TestEngineSnapshotDeterministic(t *testing.T) {
	sheet := workload.FinancialModel(30, rand.New(rand.NewSource(3)))
	e, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := e.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of the same engine differ")
	}
}

func TestSnapshotOversizedComputedValue(t *testing.T) {
	// A computed string can exceed MaxSnapshotString even when every source
	// string is within it (concatenation compounds). The snapshot must still
	// round-trip: the cached value is dropped and recomputed on read.
	e := New(nil)
	big := strings.Repeat("x", MaxSnapshotString/2+1)
	e.SetValue(ref.MustCell("A1"), formula.Str(big))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1&A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("C1"), "LEN(A1)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot failed on oversized computed value: %v", err)
	}
	r, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The oversized cached value comes back dirty (pending) and is
	// recomputed by the next recalculation, not by the (side-effect-free)
	// read itself.
	if !r.Dirty(ref.MustCell("B1")) || r.Pending() != 1 {
		t.Fatalf("B1 dirty=%v pending=%d, want dirty", r.Dirty(ref.MustCell("B1")), r.Pending())
	}
	r.RecalculateAll()
	if got := r.Value(ref.MustCell("B1")); len(got.Str) != len(big)*2 {
		t.Fatalf("B1 recomputed to %d bytes, want %d", len(got.Str), len(big)*2)
	}
	if got, want := r.Value(ref.MustCell("C1")), e.Value(ref.MustCell("C1")); got.Num != want.Num {
		t.Fatalf("C1 = %v, want %v", got, want)
	}
	if r.NumFormulas() != 2 {
		t.Fatalf("formulas = %d", r.NumFormulas())
	}
}

func TestRestoreSnapshotRejectsCorruptInput(t *testing.T) {
	sheet := workload.FinancialModel(10, rand.New(rand.NewSource(1)))
	e, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTTACO"),
		"truncated": good[:len(good)/2],
		// Magic followed by a huge cell count: must error, not allocate.
		"huge count": append([]byte("TACOE1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f),
		// Valid header, then a formula-cell record claiming a ~2^62-byte
		// source string: must hit the length cap, not make([]byte, 2^62).
		"huge string": append([]byte("TACOE1"),
			1,    // 1 cell
			1, 1, // A1
			1, // formula cell
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := RestoreSnapshot(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt snapshot restored without error")
			}
		})
	}
}

func TestLoadBulkMatchesLoad(t *testing.T) {
	sheet := workload.InventoryTracker(120, rand.New(rand.NewSource(5)))
	inc, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := LoadBulk(sheet)
	if err != nil {
		t.Fatal(err)
	}
	for at := range sheet.Cells {
		a, b := inc.Value(at), bulk.Value(at)
		if a.String() != b.String() {
			t.Fatalf("cell %v: incremental %v vs bulk %v", at, a, b)
		}
	}
	seed := ref.MustRange("B1")
	if got, want := countCells(bulk.Dependents(seed)), countCells(inc.Dependents(seed)); got != want {
		t.Fatalf("dependents = %d cells, want %d", got, want)
	}
}

func countCells(rs []ref.Range) int {
	n := 0
	for _, r := range rs {
		n += r.Size()
	}
	return n
}
