package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
	"taco/internal/workload"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	for _, name := range workload.ScenarioNames {
		t.Run(name, func(t *testing.T) {
			sheet, err := workload.BuildScenario(name, 60, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			e, err := Load(sheet, nil)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := RestoreSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if r.NumCells() != e.NumCells() {
				t.Fatalf("cells = %d, want %d", r.NumCells(), e.NumCells())
			}
			for at := range sheet.Cells {
				a, b := e.Value(at), r.Value(at)
				if a.String() != b.String() {
					t.Fatalf("cell %v: %v vs restored %v", at, a, b)
				}
				if r.Formula(at) != e.Formula(at) {
					t.Fatalf("cell %v: formula %q vs restored %q", at, e.Formula(at), r.Formula(at))
				}
			}
			// Dependency queries survive the round trip.
			seed := ref.MustRange("A1")
			if got, want := countCells(r.Dependents(seed)), countCells(e.Dependents(seed)); got != want {
				t.Fatalf("dependents = %d cells, want %d", got, want)
			}
			// The restored engine stays live: edits propagate. (Planning is
			// row-major: the data row is 2, not column B.)
			edit := ref.MustCell("B1")
			if name == "planning" {
				edit = ref.MustCell("A2")
			}
			dirty := r.SetValue(edit, formula.Num(9999))
			if len(dirty) == 0 {
				t.Fatal("edit on restored engine produced no dirty set")
			}
			r.RecalculateAll()
		})
	}
}

func TestEngineSnapshotDeterministic(t *testing.T) {
	sheet := workload.FinancialModel(30, rand.New(rand.NewSource(3)))
	e, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := e.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of the same engine differ")
	}
}

func TestSnapshotOversizedComputedValue(t *testing.T) {
	// A computed string can exceed MaxSnapshotString even when every source
	// string is within it (concatenation compounds). The snapshot must still
	// round-trip: the cached value is dropped and recomputed on read.
	e := New(nil)
	big := strings.Repeat("x", MaxSnapshotString/2+1)
	e.SetValue(ref.MustCell("A1"), formula.Str(big))
	if _, err := e.SetFormula(ref.MustCell("B1"), "A1&A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("C1"), "LEN(A1)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot failed on oversized computed value: %v", err)
	}
	r, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The oversized cached value comes back dirty (pending) and is
	// recomputed by the next recalculation, not by the (side-effect-free)
	// read itself.
	if !r.Dirty(ref.MustCell("B1")) || r.Pending() != 1 {
		t.Fatalf("B1 dirty=%v pending=%d, want dirty", r.Dirty(ref.MustCell("B1")), r.Pending())
	}
	r.RecalculateAll()
	if got := r.Value(ref.MustCell("B1")); len(got.Str) != len(big)*2 {
		t.Fatalf("B1 recomputed to %d bytes, want %d", len(got.Str), len(big)*2)
	}
	if got, want := r.Value(ref.MustCell("C1")), e.Value(ref.MustCell("C1")); got.Num != want.Num {
		t.Fatalf("C1 = %v, want %v", got, want)
	}
	if r.NumFormulas() != 2 {
		t.Fatalf("formulas = %d", r.NumFormulas())
	}
}

func TestRestoreSnapshotRejectsCorruptInput(t *testing.T) {
	sheet := workload.FinancialModel(10, rand.New(rand.NewSource(1)))
	e, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTTACO"),
		"truncated": good[:len(good)/2],
		// Magic followed by a huge cell count: must error, not allocate.
		"huge count": append([]byte("TACOE1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f),
		// Valid header, then a formula-cell record claiming a ~2^62-byte
		// source string: must hit the length cap, not make([]byte, 2^62).
		"huge string": append([]byte("TACOE1"),
			1,    // 1 cell
			1, 1, // A1
			1, // formula cell
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := RestoreSnapshot(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt snapshot restored without error")
			}
		})
	}
}

func TestLoadBulkMatchesLoad(t *testing.T) {
	sheet := workload.InventoryTracker(120, rand.New(rand.NewSource(5)))
	inc, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := LoadBulk(sheet)
	if err != nil {
		t.Fatal(err)
	}
	for at := range sheet.Cells {
		a, b := inc.Value(at), bulk.Value(at)
		if a.String() != b.String() {
			t.Fatalf("cell %v: incremental %v vs bulk %v", at, a, b)
		}
	}
	seed := ref.MustRange("B1")
	if got, want := countCells(bulk.Dependents(seed)), countCells(inc.Dependents(seed)); got != want {
		t.Fatalf("dependents = %d cells, want %d", got, want)
	}
}

func countCells(rs []ref.Range) int {
	n := 0
	for _, r := range rs {
		n += r.Size()
	}
	return n
}

// TestScanSnapshotCellsInRange checks the range-filtered snapshot scan
// against the full scan: identical in-range records in identical order, an
// exact snapshot-wide pending count, and nothing delivered from outside the
// rectangle — on a snapshot that also carries a dirty (kind 2) record both
// inside and outside the range.
func TestScanSnapshotCellsInRange(t *testing.T) {
	e := New(nil)
	big := strings.Repeat("y", MaxSnapshotString/2+1)
	for col := 1; col <= 8; col++ {
		for row := 1; row <= 20; row++ {
			e.SetValue(ref.Ref{Col: col, Row: row}, formula.Num(float64(col*100+row)))
		}
	}
	e.SetValue(ref.MustCell("A21"), formula.Str(big))
	// Oversized computed values snapshot as kind 2 (dirty): one inside the
	// queried range, one outside it.
	if _, err := e.SetFormula(ref.MustCell("C5"), "A21&A21"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("H20"), "A21&A21"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("D4"), "SUM(B1:B10)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	rng := ref.MustRange("B2:D6")
	var full []SnapshotCell
	if err := ScanSnapshotCells(bytes.NewReader(raw), func(sc SnapshotCell) bool {
		if rng.Contains(sc.At) {
			full = append(full, sc)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var filtered []SnapshotCell
	pending, err := ScanSnapshotCellsInRange(bytes.NewReader(raw), rng, func(sc SnapshotCell) bool {
		if !rng.Contains(sc.At) {
			t.Fatalf("out-of-range cell %v delivered", sc.At)
		}
		filtered = append(filtered, sc)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if pending != 2 {
		t.Fatalf("pending = %d, want 2 (one in range, one out)", pending)
	}
	if len(filtered) != len(full) {
		t.Fatalf("filtered %d cells, full scan saw %d in range", len(filtered), len(full))
	}
	for i := range full {
		if filtered[i].At != full[i].At || filtered[i].Src != full[i].Src ||
			filtered[i].Value != full[i].Value || filtered[i].Dirty != full[i].Dirty {
			t.Fatalf("record %d diverges: %+v vs %+v", i, filtered[i], full[i])
		}
	}
	// Early stop leaves the reader consistent and returns without error.
	n := 0
	if _, err := ScanSnapshotCellsInRange(bytes.NewReader(raw), rng, func(SnapshotCell) bool {
		n++
		return false
	}); err != nil || n != 1 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

// TestRecycleReusesColumnSlabs pins the spill/restore pooling: a restore
// after a Recycle rebuilds its columnar store from pooled slabs, and the
// recycled store retains nothing that could leak into the next tenant.
func TestRecycleReusesColumnSlabs(t *testing.T) {
	sheet := workload.FinancialModel(40, rand.New(rand.NewSource(9)))
	e, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	want := map[ref.Ref]string{}
	for at := range sheet.Cells {
		want[at] = e.Value(at).String()
	}
	raw := buf.Bytes()
	// Churn the round trip: every iteration recycles the previous engine's
	// slabs and the next restore draws on the pools. Values must stay exact
	// across reuse — stale pooled state would surface here.
	prev := e
	for i := 0; i < 5; i++ {
		prev.Recycle()
		r, err := RestoreSnapshot(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		for at, w := range want {
			if got := r.Value(at).String(); got != w {
				t.Fatalf("round %d: cell %v = %q, want %q", i, at, got, w)
			}
		}
		if got, wantN := r.NumCells(), len(want); got != wantN {
			t.Fatalf("round %d: %d cells, want %d", i, got, wantN)
		}
		prev = r
	}
}

// TestSnapshotChecksum pins the TACOE2 integrity trailer: a fresh snapshot
// verifies, any single flipped bit fails with ErrSnapshotChecksum, and a
// legacy TACOE1 file (no trailer) both passes the check and still restores.
func TestSnapshotChecksum(t *testing.T) {
	sheet := workload.FinancialModel(20, rand.New(rand.NewSource(11)))
	e, err := Load(sheet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if !bytes.HasPrefix(good, []byte("TACOE2")) {
		t.Fatalf("snapshot magic = %q, want TACOE2", good[:6])
	}
	if err := CheckSnapshotIntegrity(good); err != nil {
		t.Fatalf("fresh snapshot fails integrity check: %v", err)
	}
	for _, off := range []int{7, len(good) / 2, len(good) - 5} {
		flipped := bytes.Clone(good)
		flipped[off] ^= 0x10
		if err := CheckSnapshotIntegrity(flipped); !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrSnapshotChecksum", off, err)
		}
	}
	if err := CheckSnapshotIntegrity(good[:4]); !errors.Is(err, ErrBadEngineSnapshot) {
		t.Fatalf("short header: err = %v, want ErrBadEngineSnapshot", err)
	}

	// A legacy TACOE1 snapshot is the same stream with the old magic and no
	// trailer: it must pass the (vacuous) integrity check and restore.
	legacy := append([]byte("TACOE1"), good[6:len(good)-4]...)
	if err := CheckSnapshotIntegrity(legacy); err != nil {
		t.Fatalf("legacy snapshot fails integrity check: %v", err)
	}
	r, err := RestoreSnapshot(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy snapshot restore: %v", err)
	}
	for at := range sheet.Cells {
		if got, want := r.Value(at).String(), e.Value(at).String(); got != want {
			t.Fatalf("legacy cell %v = %q, want %q", at, got, want)
		}
	}
}

// TestRestoredEngineVectorizedDrain pins two restore-path regressions: a
// restored engine must keep the vectorized pattern-run drain enabled (the
// toggle defaults on and must survive the snapshot round trip), and its
// per-column formula counts must be rebuilt so post-restore edits — which
// maintain those counts — work at all.
func TestRestoredEngineVectorizedDrain(t *testing.T) {
	e := New(nil)
	e.SetValue(ref.MustCell("F1"), formula.Num(2))
	for r := 1; r <= 64; r++ {
		e.SetValue(ref.Ref{Col: 1, Row: r}, formula.Num(float64(r)))
		if _, err := e.SetFormula(ref.Ref{Col: 2, Row: r}, fmt.Sprintf("A%d*$F$1", r)); err != nil {
			t.Fatal(err)
		}
	}
	e.RecalculateAll()

	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Formula-count index is live: an edit that maintains it must not blow
	// up, and a formula overwrite keeps invalidation exact.
	if _, err := r.SetFormula(ref.MustCell("B1"), "A1*$F$1+1"); err != nil {
		t.Fatal(err)
	}
	r.SetRecalcParallelism(4)
	runs0 := mPatternRuns.Value()
	r.SetValue(ref.MustCell("F1"), formula.Num(3))
	r.RecalculateAll()
	if mPatternRuns.Value() == runs0 {
		t.Fatal("restored engine drained without pattern runs: toggle lost in restore")
	}
	if v := r.Value(ref.MustCell("B1")); v.Num != 1*3+1 {
		t.Fatalf("B1 = %v, want 4", v)
	}
	if v := r.Value(ref.MustCell("B64")); v.Num != 64*3 {
		t.Fatalf("B64 = %v, want 192", v)
	}
}
