package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// rangeFixture builds an engine exercising every awkward shape the bulk
// range resolver must handle: a dense column, sparse columns, text and
// error cells inside ranges, numeric text, booleans, and entirely empty
// columns between populated ones.
func rangeFixture(t testing.TB) *Engine {
	t.Helper()
	e := New(nil)
	set := func(a1 string, v formula.Value) {
		e.SetValue(ref.MustCell(a1), v)
	}
	setf := func(a1, src string) {
		if _, err := e.SetFormula(ref.MustCell(a1), src); err != nil {
			t.Fatalf("SetFormula(%s, %s): %v", a1, src, err)
		}
	}
	// Column B: dense numbers, rows 1..50.
	for row := 1; row <= 50; row++ {
		set(fmt.Sprintf("B%d", row), formula.Num(float64(row)*1.5))
	}
	// Column C: sparse — a handful of numbers, text, numeric text, a bool.
	set("C7", formula.Num(70))
	set("C15", formula.Str("hello"))
	set("C23", formula.Num(-4))
	set("C30", formula.Str("12"))
	set("C40", formula.Num(0.25))
	set("C44", formula.Boolean(true))
	// Column D: entirely empty (ranges below span it).
	// Column E: an error cell and more sparse numbers.
	setf("E5", "=1/0")
	set("E18", formula.Num(3))
	set("E33", formula.Num(9))
	// Column F: strings only.
	set("F2", formula.Str("x"))
	set("F48", formula.Str("y"))
	e.RecalculateAll()
	return e
}

// rangeBuiltinSrcs is the equivalence corpus: every range-consuming builtin
// with a bulk fast path, over sparse columns, dense columns, ranges
// crossing empty columns, reversed ranges, and single-cell ranges —
// plus the criteria shapes (blank-matching) that force the fallback.
var rangeBuiltinSrcs = []string{
	// Aggregates over dense, sparse, empty, and multi-column ranges.
	"=SUM(B1:B50)",
	"=SUM(C1:C50)",
	"=SUM(D1:D60)",
	"=SUM(B1:F60)",
	"=SUM(B50:B1)", // reversed: parser normalises corners
	"=SUM(B7:B7)",  // single-cell range
	"=SUM(C1:E60)", // spans the empty column D and the error in E5
	"=PRODUCT(C1:C50)",
	"=SUMSQ(B1:B10)",
	"=AVERAGE(B1:B50)",
	"=AVERAGE(C1:D60)",
	"=MIN(C1:C50)",
	"=MAX(C1:C50)",
	"=MIN(B3:C44)",
	"=COUNT(B1:F60)",
	"=COUNTA(B1:F60)",
	"=COUNTBLANK(B1:F60)",
	"=COUNTBLANK(D1:D60)",
	"=MEDIAN(B1:B50)",
	"=STDEV(B1:B49)",
	"=LARGE(B1:B50,3)",
	"=SMALL(C1:C50,2)",
	// Criteria: plain, comparison, text, and the blank-matching shapes
	// that must fall back (or compensate) yet stay equivalent.
	"=SUMIF(B1:B50,\">30\")",
	"=SUMIF(C1:C50,\">5\",B1:B50)",
	"=SUMIF(C1:C50,\"hello\",B1:B50)",
	"=SUMIF(C1:C50,0,B1:B50)",        // 0 matches blanks: per-cell fallback
	"=SUMIF(C1:C50,\"<100\",B1:B50)", // also matches blanks
	"=COUNTIF(B1:B50,\">=30\")",
	"=COUNTIF(C1:C60,\"hello\")",
	"=COUNTIF(C1:C60,\">=0\")", // matches blanks: scan + group compensation
	"=COUNTIF(D1:D60,0)",       // empty column, blank-matching criterion
	// Fold-path shapes: single-range SUM/AVERAGE (order-sensitive, folded),
	// order-free counts and extrema mixing ranges with scalars, error
	// propagation (and COUNT's deliberate error-blindness), and the
	// multi-arg SUM that must fall back to sequential accumulation.
	"=SUM(E1:E40)",          // error in E5 propagates through the fold
	"=AVERAGE(E1:E40)",      // ditto
	"=AVERAGE(D1:D60)",      // empty column: #DIV/0! on both paths
	"=SUM(B1:B50,C1:C50)",   // multi-arg: fold declines, streaming path
	"=MIN(B1:B50,3,C7)",     // range + scalar mix
	"=MAX(C1:C50,\"4\")",    // numeric-text scalar coerces
	"=MIN(E1:E40)",          // error propagates
	"=MAX(D1:D60)",          // empty: 0 on both paths
	"=COUNT(B1:B50,C1:C50)", // multi-range counts fold per range
	"=COUNT(E1:E40)",        // errors are not numbers, not propagated
	"=COUNTA(E1:E40)",       // errors are non-blank
	"=COUNTA(B1:B50,5,C1:C50)",
	// SUMPRODUCT: sparse second range, triple product, empty column.
	"=SUMPRODUCT(B1:B20,C1:C20)",
	"=SUMPRODUCT(B1:B20,C1:C20,E1:E20)",
	"=SUMPRODUCT(C1:C50,D1:D50)",
	// VLOOKUP: numeric hit, miss, text needle, and the blank-matching
	// needle 0 that forces the per-cell fallback.
	"=VLOOKUP(34.5,B1:C50,2)",
	"=VLOOKUP(-1,B1:C50,1)",
	"=VLOOKUP(\"hello\",C1:E50,2)",
	"=VLOOKUP(0,B1:C50,1)",
}

func valuesEqual(a, b formula.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == formula.KindNumber && math.IsNaN(a.Num) && math.IsNaN(b.Num) {
		return true
	}
	return a.Num == b.Num && a.Str == b.Str && a.Bool == b.Bool && a.Err == b.Err
}

// TestBulkRangeResolverEquivalence asserts the bulk (columnar) path and the
// per-cell CellValue path compute identical results for every range
// builtin, on the same quiesced engine.
func TestBulkRangeResolverEquivalence(t *testing.T) {
	e := rangeFixture(t)
	for _, src := range rangeBuiltinSrcs {
		ast, err := formula.Parse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		bulk := formula.Eval(ast, e.ValueResolver())
		percell := formula.Eval(ast, formula.ResolverFunc(e.Value))
		if !valuesEqual(bulk, percell) {
			t.Errorf("%s: bulk=%v percell=%v", src, bulk, percell)
		}
	}
}

// TestBulkRangeResolverThroughRecalc asserts the engine's own recalculation
// (which resolves ranges through the columnar evalResolver, evaluating
// dirty precedents on the way) agrees with per-cell evaluation of the same
// formula on the quiesced engine.
func TestBulkRangeResolverThroughRecalc(t *testing.T) {
	for i, src := range rangeBuiltinSrcs {
		e := rangeFixture(t)
		at := ref.Ref{Col: 10, Row: i + 1}
		if _, err := e.SetFormula(at, src); err != nil {
			t.Fatalf("SetFormula %s: %v", src, err)
		}
		e.RecalculateAll()
		got := e.Value(at)
		want := formula.Eval(formula.MustParse(src), formula.ResolverFunc(e.Value))
		if !valuesEqual(got, want) {
			t.Errorf("%s: recalc=%v percell=%v", src, got, want)
		}
	}
}

// TestBulkResolverEvaluatesDirtyPrecedents: a range scan must evaluate
// dirty formula cells it passes over, exactly like CellValue does.
func TestBulkResolverEvaluatesDirtyPrecedents(t *testing.T) {
	e := New(nil)
	e.SetValue(ref.MustCell("A1"), formula.Num(2))
	if _, err := e.SetFormula(ref.MustCell("B1"), "=A1*10"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("B2"), "=B1+1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetFormula(ref.MustCell("C1"), "=SUM(B1:B10)"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("C1")); v.Num != 41 {
		t.Fatalf("C1 = %v, want 41", v)
	}
	// Dirty the chain; recalculating only the SUM must pull the dirty
	// precedents through the bulk scan.
	e.SetValue(ref.MustCell("A1"), formula.Num(3))
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("C1")); v.Num != 61 {
		t.Fatalf("after edit, C1 = %v, want 61", v)
	}
}

// TestBulkResolverCycleInsideRange: a reference cycle inside a scanned
// range must surface as #CYCLE!, not hang or panic — matching the
// per-cell resolver's behaviour.
func TestBulkResolverCycleInsideRange(t *testing.T) {
	e := New(nil)
	if _, err := e.SetFormula(ref.MustCell("A1"), "=SUM(A1:A5)"); err != nil {
		t.Fatal(err)
	}
	e.RecalculateAll()
	if v := e.Value(ref.MustCell("A1")); !v.IsError() {
		t.Fatalf("self-referential SUM = %v, want error", v)
	}
}

// TestScanRangeMatchesPeek: the public side-effect-free columnar scan
// agrees with per-cell Peek over arbitrary rectangles, skipping exactly the
// unpopulated cells.
func TestScanRangeMatchesPeek(t *testing.T) {
	e := rangeFixture(t)
	ranges := []string{"A1:G60", "B1:B50", "D1:D60", "C10:E40", "B7", "F1:F60"}
	for _, rs := range ranges {
		rng := ref.MustRange(rs)
		got := map[ref.Ref]formula.Value{}
		e.ScanRange(rng, func(at ref.Ref, v formula.Value, src string, clean bool) bool {
			if !rng.Contains(at) {
				t.Fatalf("%s: scan yielded %v outside range", rs, at)
			}
			if !clean {
				t.Fatalf("%s: quiesced engine yielded dirty cell %v", rs, at)
			}
			if src != e.Formula(at) {
				t.Fatalf("%s: src mismatch at %v", rs, at)
			}
			got[at] = v
			return true
		})
		rng.Cells(func(at ref.Ref) bool {
			v, _ := e.Peek(at)
			sv, populated := got[at]
			if populated && !valuesEqual(sv, v) {
				t.Fatalf("%s: %v scan=%v peek=%v", rs, at, sv, v)
			}
			if !populated && e.Formula(at) == "" && v.Kind != formula.KindEmpty {
				t.Fatalf("%s: %v populated but not scanned", rs, at)
			}
			return true
		})
	}
}

// TestColumnStoreInvariants runs random interleaved sets, formula writes,
// overwrites, and clears, asserting the columnar store and the point-index
// map never diverge, and that snapshots round-trip the combined state.
func TestColumnStoreInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := New(nil)
	live := map[ref.Ref]bool{}
	for i := 0; i < 3000; i++ {
		at := ref.Ref{Col: 1 + rng.Intn(12), Row: 1 + rng.Intn(40)}
		switch rng.Intn(4) {
		case 0:
			e.SetValue(at, formula.Num(float64(i)))
			live[at] = true
		case 1:
			e.SetValue(at, formula.Str(fmt.Sprintf("s%d", i)))
			live[at] = true
		case 2:
			if _, err := e.SetFormula(at, fmt.Sprintf("=%d+1", i)); err != nil {
				t.Fatal(err)
			}
			live[at] = true
		default:
			e.ClearCell(at)
			delete(live, at)
		}
	}
	if got, want := e.store.count(), e.NumCells(); got != want {
		t.Fatalf("store holds %d cells, map holds %d", got, want)
	}
	if got, want := e.NumCells(), len(live); got != want {
		t.Fatalf("engine holds %d cells, want %d", got, want)
	}
	st := e.CellStats()
	if st.Cells != len(live) || st.Columns == 0 || st.LongestSlab == 0 {
		t.Fatalf("CellStats = %+v, want %d cells", st, len(live))
	}
	// Every live cell is scannable; nothing extra is.
	seen := map[ref.Ref]bool{}
	e.store.scanRange(ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 20, Row: 60}},
		func(at ref.Ref, c *cell) bool {
			if seen[at] {
				t.Fatalf("duplicate scan of %v", at)
			}
			seen[at] = true
			if !live[at] {
				t.Fatalf("scan yielded cleared cell %v", at)
			}
			if c != e.cells[at] {
				t.Fatalf("store and map disagree on the record at %v", at)
			}
			return true
		})
	if len(seen) != len(live) {
		t.Fatalf("scan yielded %d cells, want %d", len(seen), len(live))
	}
	// Row-major order check over a multi-column window.
	var prev ref.Ref
	first := true
	e.store.scanRange(ref.MustRange("A1:L40"), func(at ref.Ref, _ *cell) bool {
		if !first && !prev.Before(at) {
			t.Fatalf("scan out of row-major order: %v then %v", prev, at)
		}
		prev, first = at, false
		return true
	})
}

// TestScanRangeEarlyStop: returning false from the callback stops the scan
// on both the single-column and the merged multi-column paths.
func TestScanRangeEarlyStop(t *testing.T) {
	e := rangeFixture(t)
	for _, rs := range []string{"B1:B50", "B1:F60"} {
		n := 0
		e.ScanRange(ref.MustRange(rs), func(ref.Ref, formula.Value, string, bool) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("%s: scan visited %d cells after early stop, want 3", rs, n)
		}
	}
}
