package engine

import (
	"fmt"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// Range-aggregation benchmarks: SUM over a 10k-cell range, resolved through
// the columnar bulk path vs the per-cell map-probe path. cmd/tacoeval runs
// the same shapes standalone and records them in BENCH_eval.json; these
// exist so `go test -bench RangeSum` shows the ratio in-repo.

// benchGrid populates a cols×rows block, keeping every strideth cell.
func benchGrid(b *testing.B, cols, rows, stride int) (*Engine, ref.Range) {
	b.Helper()
	var pcells []ParsedCell
	i := 0
	for col := 1; col <= cols; col++ {
		for row := 1; row <= rows; row++ {
			if i++; i%stride != 0 {
				continue
			}
			pcells = append(pcells, ParsedCell{
				At:    ref.Ref{Col: col, Row: row},
				Value: formula.Num(float64(col*row) / 7),
			})
		}
	}
	e := LoadBulkParsed(pcells)
	return e, ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: cols, Row: rows}}
}

func benchmarkRangeSum(b *testing.B, stride int) {
	e, rng := benchGrid(b, 10, 1000, stride)
	ast := formula.MustParse(fmt.Sprintf("=SUM(%s)", rng))
	paths := []struct {
		name string
		res  formula.Resolver
	}{
		{"bulk", e.ValueResolver()},
		{"percell", formula.ResolverFunc(e.Value)},
	}
	want := formula.Eval(ast, paths[0].res)
	if got := formula.Eval(ast, paths[1].res); got != want {
		b.Fatalf("paths disagree: bulk=%v percell=%v", want, got)
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := formula.Eval(ast, p.res); v != want {
					b.Fatalf("SUM = %v, want %v", v, want)
				}
			}
		})
	}
}

func BenchmarkRangeSumDense(b *testing.B)  { benchmarkRangeSum(b, 1) }
func BenchmarkRangeSumSparse(b *testing.B) { benchmarkRangeSum(b, 10) }

// BenchmarkRangeSumColumn is the single-column shape: one contiguous slab
// scan against 10k map probes.
func BenchmarkRangeSumColumn(b *testing.B) {
	e, _ := benchGrid(b, 1, 10000, 1)
	ast := formula.MustParse("=SUM(A1:A10000)")
	for _, p := range []struct {
		name string
		res  formula.Resolver
	}{
		{"bulk", e.ValueResolver()},
		{"percell", formula.ResolverFunc(e.Value)},
	} {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				formula.Eval(ast, p.res)
			}
		})
	}
}
