package engine

import (
	"fmt"
	"math"
	"testing"

	"taco/internal/formula"
	"taco/internal/ref"
)

// TestFoldRangeMatchesScan cross-checks the batched column fold against the
// streaming scan it replaces, accumulator by accumulator, on the shared
// range fixture — including windows that start and end mid-slab, the
// unrolled block's tail, and columns mixing numbers, text, bools, blanks,
// and errors.
func TestFoldRangeMatchesScan(t *testing.T) {
	e := rangeFixture(t)
	// An explicit stored blank and a NaN-valued cell: both fold corner cases
	// (blanks count nowhere; NaN must obey the strict-comparison extrema).
	e.SetValue(ref.MustCell("B25"), formula.Empty())
	e.SetValue(ref.MustCell("C9"), formula.Num(math.NaN()))
	e.RecalculateAll()
	for _, rs := range []string{
		"B1:B50", "B2:B49", "B7:B7", "B45:B60", "C1:C50", "C1:C60",
		"D1:D60", "E1:E40", "E6:E40", "F1:F60", "B51:B90",
	} {
		rng := ref.MustRange(rs)
		fold, ok := e.store.foldRange(rng, nil)
		if !ok {
			t.Fatalf("%s: single-column fold refused", rs)
		}
		// Reference accumulation via the streaming scan, in the same order
		// with the same comparison semantics.
		want := formula.NumericFold{Min: math.Inf(1), Max: math.Inf(-1)}
		e.store.scanRange(rng, func(_ ref.Ref, c *cell) bool {
			v := c.value
			switch v.Kind {
			case formula.KindNumber:
				want.Sum += v.Num
				want.Count++
				want.NonEmpty++
				if v.Num < want.Min {
					want.Min = v.Num
				}
				if v.Num > want.Max {
					want.Max = v.Num
				}
			case formula.KindEmpty:
			case formula.KindError:
				want.NonEmpty++
				if !want.Err.IsError() {
					want.Err = v
				}
			default:
				want.NonEmpty++
			}
			return true
		})
		if fold.Count != want.Count || fold.NonEmpty != want.NonEmpty ||
			fold.Err != want.Err || fold.Sum != want.Sum && !(math.IsNaN(fold.Sum) && math.IsNaN(want.Sum)) {
			t.Errorf("%s: fold %+v, scan %+v", rs, fold, want)
		}
		if fold.Count > 0 && (fold.Min != want.Min || fold.Max != want.Max) {
			t.Errorf("%s: fold extrema (%v,%v), scan (%v,%v)", rs, fold.Min, fold.Max, want.Min, want.Max)
		}
	}
	// Multi-column rectangles decline the fold — row-major order across
	// columns is the heap merge's job.
	if _, ok := e.store.foldRange(ref.MustRange("B1:C50"), nil); ok {
		t.Fatal("multi-column fold did not decline")
	}
}

// TestFoldEvaluatesDirtyCells: the recalculation-path fold must evaluate
// dirty cells it passes over (and surface in-flight cycles as #CYCLE!),
// exactly like the streaming evalResolver.
func TestFoldEvaluatesDirtyCells(t *testing.T) {
	e := New(nil)
	e.SetValue(ref.MustCell("A1"), formula.Num(2))
	for i := 1; i <= 20; i++ {
		mustFormula(t, e, fmt.Sprintf("B%d", i), fmt.Sprintf("A1*%d", i))
	}
	mustFormula(t, e, "C1", "SUM(B1:B20)")
	e.RecalculateAll()
	e.SetValue(ref.MustCell("A1"), formula.Num(3)) // dirties the B column + C1
	// Evaluating only C1 must pull every dirty B through the fold.
	e.evaluate(ref.MustCell("C1"), e.cells[ref.MustCell("C1")])
	if v := e.Value(ref.MustCell("C1")); v.Num != 3*210 {
		t.Fatalf("C1 = %v, want %v", v, 3*210)
	}
	for i := 1; i <= 20; i++ {
		if e.Dirty(ref.Ref{Col: 2, Row: i}) {
			t.Fatalf("B%d left dirty by the fold", i)
		}
	}
}

// TestFoldUnrolledBlockBoundaries hammers the 4-cell blocked fast path's
// edges: slab lengths 0..9 of clean numbers with a disruptor (text, error,
// dirty cell) planted at every position, fold vs streaming per-cell SUM.
func TestFoldUnrolledBlockBoundaries(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for bad := -1; bad < n; bad++ {
			e := New(nil)
			for i := 0; i < n; i++ {
				at := ref.Ref{Col: 1, Row: i + 1}
				if i == bad {
					e.SetValue(at, formula.Str("x"))
				} else {
					e.SetValue(at, formula.Num(float64(i)*1.25+0.1))
				}
			}
			rng := ref.Range{Head: ref.Ref{Col: 1, Row: 1}, Tail: ref.Ref{Col: 1, Row: 10}}
			fold, ok := e.store.foldRange(rng, nil)
			if !ok {
				t.Fatal("fold refused")
			}
			sum, cnt := 0.0, 0
			e.store.scanRange(rng, func(_ ref.Ref, c *cell) bool {
				if c.value.Kind == formula.KindNumber {
					sum += c.value.Num
					cnt++
				}
				return true
			})
			if fold.Sum != sum || fold.Count != cnt {
				t.Fatalf("n=%d bad=%d: fold (%v,%d), scan (%v,%d)", n, bad, fold.Sum, fold.Count, sum, cnt)
			}
		}
	}
}
